// Tracesim: drive the trace-driven simulator on a synthetic DEC-like
// workload and print the paper's headline comparison — cache sharing's hit
// ratio benefit (Fig. 1) and summary cache's message economy versus ICP
// (Figs. 5–7) — from one program.
package main

import (
	"fmt"
	"log"

	sc "summarycache"
)

func main() {
	fmt.Println("generating a DEC-like trace (16 proxy groups)...")
	ts, err := sc.LoadTraceSet(sc.PresetDEC, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	st := ts.Stats
	fmt.Printf("  %d requests, %d clients, %d unique docs, infinite cache %.1f MB\n\n",
		st.Requests, st.Clients, st.UniqueDocs, float64(st.InfiniteCacheSize)/(1<<20))

	run := func(scheme sc.SimScheme, kind sc.SimSummaryKind, lf float64) sc.SimResult {
		r, err := sc.RunSim(sc.SimConfig{
			NumProxies: ts.Groups,
			CacheBytes: ts.CacheBytesPerProxy(0.10),
			Scheme:     scheme,
			Summary: sc.SimSummaryConfig{
				Kind: kind, UpdateThreshold: 0.01,
				LoadFactor: lf, AvgDocBytes: ts.AvgDocBytes,
			},
		}, ts.Requests)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	fmt.Println("benefit of sharing (cache = 10% of infinite):")
	noShare := run(sc.SimNoSharing, sc.SummaryOracle, 0)
	shared := run(sc.SimSimpleSharing, sc.SummaryOracle, 0)
	global := run(sc.SimGlobalCache, sc.SummaryOracle, 0)
	fmt.Printf("  no sharing:     %5.1f%% hit ratio\n", 100*noShare.HitRatio())
	fmt.Printf("  simple sharing: %5.1f%% hit ratio (remote hits %4.1f%%)\n",
		100*shared.HitRatio(), 100*float64(shared.RemoteHits)/float64(shared.Requests))
	fmt.Printf("  global cache:   %5.1f%% hit ratio\n\n", 100*global.HitRatio())

	fmt.Println("protocol cost of discovering those remote hits:")
	icp := run(sc.SimSimpleSharing, sc.SummaryICP, 0)
	blm := run(sc.SimSimpleSharing, sc.SummaryBloom, 8)
	fmt.Printf("  ICP:          %6.3f msgs/req, %6.1f bytes/req, hit %5.1f%%\n",
		icp.MessagesPerRequest(), icp.BytesPerRequest(), 100*icp.HitRatio())
	fmt.Printf("  summary cache: %6.3f msgs/req, %6.1f bytes/req, hit %5.1f%% (bloom lf=8)\n",
		blm.MessagesPerRequest(), blm.BytesPerRequest(), 100*blm.HitRatio())
	fmt.Printf("  reduction:     %.0fx fewer messages, %.0f%% fewer bytes, %.2f%% hit ratio given up\n",
		icp.MessagesPerRequest()/blm.MessagesPerRequest(),
		100*(1-blm.BytesPerRequest()/icp.BytesPerRequest()),
		100*(icp.HitRatio()-blm.HitRatio()))
	fmt.Printf("  summary memory: %.2f%% of cache size per peer (vs %.1f MB cache)\n",
		100*float64(blm.SummaryMemoryBytes)/float64(blm.Config.CacheBytes),
		float64(blm.Config.CacheBytes)/(1<<20))
}

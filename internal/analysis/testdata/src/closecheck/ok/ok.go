// Package ok is the unchecked-close negative fixture: every sanctioned
// way of handling (or explicitly dropping) a close error.
package ok

type handle struct{}

func (handle) Close() error { return nil }

type flusher struct{}

// Flush returns nothing, so ignoring it cannot lose an error.
func (flusher) Flush() {}

func fine() error {
	var h handle
	defer h.Close() // deferred Close: no error path left at unwind, exempt
	_ = h.Close()   // explicit drop: the author made a decision
	if err := h.Close(); err != nil {
		return err
	}
	var f flusher
	f.Flush()       // no error result: nothing to check
	defer f.Flush() // no error result: deferring cannot lose one either
	return nil
}

func folded() error {
	var h handle
	err := doWork()
	if cerr := h.Close(); err == nil {
		err = cerr
	}
	return err
}

func doWork() error { return nil }

package httpproxy

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/faultnet"
	"summarycache/internal/origin"
	"summarycache/internal/testutil/leakcheck"
)

// chaosScenario is the soak's fault schedule: 15% UDP loss each way plus
// delay-induced reordering and duplication on the ICP path, and a burst
// of HTTP-level faults (refused connects, stalls, truncated bodies, 503
// runs) on every outbound fetch. The seed is fixed so a failure replays.
func chaosScenario() faultnet.Scenario {
	udp := faultnet.Rates{
		Drop:      0.15,
		Duplicate: 0.05,
		Delay:     0.10,
		DelayMin:  time.Millisecond,
		DelayMax:  10 * time.Millisecond,
	}
	return faultnet.Scenario{
		Seed:     0xC4A05,
		Inbound:  udp,
		Outbound: udp,
		HTTP: faultnet.HTTPRates{
			ConnectFail: 0.05,
			Stall:       0.02,
			StallFor:    50 * time.Millisecond,
			Truncate:    0.05,
			Err5xx:      0.08,
			Burst:       2,
		},
	}
}

// TestChaosSoakSCICP is the end-to-end fault soak: a 3-proxy SC-ICP mesh
// under sustained UDP loss/reorder/duplication and origin fault bursts
// must (a) serve every client request with the correct body — failures
// degrade to origin fetches and false hits, never to client errors — and
// (b) reconverge every summary replica to the peer's authoritative filter
// once the faults clear.
func TestChaosSoakSCICP(t *testing.T) {
	leakcheck.Install(t)
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })

	base := chaosScenario()
	const nProxies = 3
	var proxies []*Proxy
	var injectors []*faultnet.Injector
	for i := 0; i < nProxies; i++ {
		inj := faultnet.New(base.Fork(int64(i)))
		p, err := Start(Config{
			Mode: ModeSCICP, CacheBytes: 32 << 20,
			Summary:      core.DirectoryConfig{ExpectedDocs: 2000, UpdateThreshold: 0.01},
			QueryTimeout: 300 * time.Millisecond,
			FetchTimeout: 2 * time.Second,
			FetchRetries: 8,
			FetchBackoff: 2 * time.Millisecond,
			// Generous threshold: injected flakiness should exhaust retries
			// and fall back, not amputate siblings mid-soak.
			BreakerThreshold: 10,
			BreakerCooldown:  200 * time.Millisecond,
			Faults:           inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
		injectors = append(injectors, inj)
	}
	for i, p := range proxies {
		for j, q := range proxies {
			if i != j {
				if err := p.AddPeer(q.ICPAddr(), q.URL()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// The soak: a shared working set small enough that sibling hits and
	// summary traffic actually occur, round-robined across the proxies.
	// Every response is checked byte-for-byte against the origin's
	// deterministic document body.
	const (
		docs     = 30
		requests = 240
		docSize  = 2048
	)
	for r := 0; r < requests; r++ {
		p := proxies[r%nProxies]
		path := fmt.Sprintf("chaos/doc%d", r%docs)
		u := origin.DocURL(org.URL(), path, docSize, 0)
		resp, err := http.Get(p.URL() + ProxyPath + "?url=" + url.QueryEscape(u))
		if err != nil {
			t.Fatalf("request %d: client-visible transport error: %v", r, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("request %d: body read: %v", r, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: client-visible status %d: %s", r, resp.StatusCode, body)
		}
		if len(body) != docSize {
			t.Fatalf("request %d: body %d bytes, want %d — a truncated fetch leaked to the client",
				r, len(body), docSize)
		}
	}

	// The injectors must actually have been in the path.
	for i, inj := range injectors {
		if inj.Total() == 0 {
			t.Fatalf("proxy %d: no faults injected — the soak exercised nothing", i)
		}
	}
	var totalRetries uint64
	for _, p := range proxies {
		st := p.Stats()
		if st.ClientRequests != requests/nProxies {
			t.Fatalf("stats lost requests: %+v", st)
		}
		totalRetries += st.Retries
	}
	if totalRetries == 0 {
		t.Fatal("no fetch retries across the whole soak — fault rates not biting")
	}

	// Faults clear. Drain the in-flight delayed datagrams, then resync and
	// require exact replica convergence: for every ordered pair (i,j),
	// proxy i's replica of j equals j's authoritative filter snapshot.
	for _, inj := range injectors {
		inj.SetEnabled(false)
	}
	time.Sleep(base.Inbound.DelayMax + 20*time.Millisecond)
	for _, p := range proxies {
		if err := p.Resync(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for i, p := range proxies {
		for j, q := range proxies {
			if i == j {
				continue
			}
			qID := q.ICPAddr().String()
			for {
				snap, ok := p.node.PeerSummaries().ReplicaSnapshot(qID)
				if ok && bytes.Equal(snap, q.node.Directory().FilterSnapshot()) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("proxy %d's replica of proxy %d never reconverged after faults cleared", i, j)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
}

// TestChaosDisabledInjectorIsInert: a proxy configured with a disabled
// injector behaves identically to one with none — no faults fire and no
// counters move (the nil/disabled paths the bench passthrough relies on).
func TestChaosDisabledInjectorIsInert(t *testing.T) {
	leakcheck.Install(t)
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	inj := faultnet.New(chaosScenario())
	inj.SetEnabled(false)
	p, err := Start(Config{
		Mode: ModeNone, CacheBytes: 1 << 20,
		Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	for i := 0; i < 50; i++ {
		u := origin.DocURL(org.URL(), fmt.Sprintf("inert%d", i), 256, 0)
		resp, err := http.Get(p.URL() + ProxyPath + "?url=" + url.QueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if inj.Total() != 0 {
		t.Fatalf("disabled injector recorded %d faults", inj.Total())
	}
	if st := p.Stats(); st.Retries != 0 {
		t.Fatalf("retries with disabled injector: %+v", st)
	}
}

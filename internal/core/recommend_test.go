package core

import (
	"strings"
	"testing"
	"time"
)

func TestRecommendValidation(t *testing.T) {
	if _, err := Recommend(0, 0, 0, 0); err == nil {
		t.Fatal("accepted zero cache size")
	}
	if _, err := Recommend(-1, 0, 0, 0); err == nil {
		t.Fatal("accepted negative cache size")
	}
}

// The paper's §V-F worked example: an 8 GB proxy stores ≈1M pages; at load
// factor 16 its Bloom summary is 2 MB per peer, and the counter array is
// ≈8 MB (4-bit counters over 16M positions → 8 MB).
func TestRecommendPaperWorkedExample(t *testing.T) {
	rec, err := Recommend(8<<30, 8192, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ExpectedDocs != 1<<20 {
		t.Fatalf("docs = %d, want 1M", rec.ExpectedDocs)
	}
	if got, want := rec.SummaryBytesPerPeer, uint64(2<<20); got != want {
		t.Fatalf("summary bytes = %d, want %d (the paper's 2 MB)", got, want)
	}
	if got, want := rec.CounterBytes, uint64(8<<20); got != want {
		t.Fatalf("counter bytes = %d, want %d (the paper's 8 MB)", got, want)
	}
	// 100 peers ≈ 200 MB of summaries, the §V-F total.
	if total := 99 * rec.SummaryBytesPerPeer / (1 << 20); total < 190 || total > 210 {
		t.Fatalf("100-proxy summary table = %d MB, want ≈200", total)
	}
	// False positives stay small at lf 16 with k=4.
	if rec.PredictedFalsePositiveRate > 0.005 {
		t.Fatalf("predicted fp %.4f too high", rec.PredictedFalsePositiveRate)
	}
	if !strings.Contains(rec.String(), "Bloom") {
		t.Error("String() missing content")
	}
}

func TestRecommendInterval(t *testing.T) {
	// 1M docs, 100 req/s at 50% misses: 1% of 1M = 10486 new docs →
	// ≈210 s between updates ("roughly every five minutes to an hour"
	// covers bigger caches / lower rates).
	rec, err := Recommend(8<<30, 8192, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SuggestedInterval < 100*time.Second || rec.SuggestedInterval > 600*time.Second {
		t.Fatalf("interval = %v, want minutes-scale", rec.SuggestedInterval)
	}
	// No rate given → no interval.
	rec, _ = Recommend(1<<30, 0, 0, 0)
	if rec.SuggestedInterval != 0 {
		t.Fatal("interval without rate")
	}
	if !strings.Contains(rec.String(), "summary-cache config") {
		t.Error("String() malformed")
	}
}

func TestRecommendTinyCache(t *testing.T) {
	rec, err := Recommend(1024, 8192, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ExpectedDocs != 1 || rec.FilterBits == 0 {
		t.Fatalf("tiny cache recommendation degenerate: %+v", rec)
	}
	// The recommendation must build a working directory.
	d, err := NewDirectory(rec.Directory)
	if err != nil {
		t.Fatal(err)
	}
	d.Insert("http://x/")
	if !d.Contains("http://x/") {
		t.Fatal("recommended directory unusable")
	}
}

// Command sclint runs the repository's project-specific static analysis
// suite (internal/analysis) over the module: invariants go vet cannot
// see — atomic-mixing, replay determinism, Stats()/scrape drift,
// discarded Close errors, stray printing in library code, lock-order
// cycles across the call graph, goroutines without a shutdown path, and
// decoder borrows escaping their handler (see internal/analysis).
//
// Usage:
//
//	go run ./cmd/sclint ./...          # whole module, plain output
//	go run ./cmd/sclint -json ./...    # machine-readable findings
//	go run ./cmd/sclint -rules stats-drift,determinism ./internal/bench
//	go run ./cmd/sclint -list          # rule catalog
//
// Package arguments are module-relative path prefixes ("./..." or "" is
// everything; "./internal/bench" restricts findings to that subtree).
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// Suppress a finding at one site with an in-source directive carrying a
// reason, on the offending line or the line directly above:
//
//	//lint:ignore sclint/<rule> <why this site is intentional>
//
// Declare an intentional lock hierarchy (consumed by lock-order) at
// package scope:
//
//	//lint:lockorder pkg.Type.fieldA < pkg.Type.fieldB <why A precedes B>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"summarycache/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam: flag parsing, rule
// selection, loading, and rendering, returning the process exit code
// (0 clean, 1 findings, 2 usage or load failure).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	ruleList := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "print the rule catalog and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sclint [-json] [-rules r1,r2] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rules := analysis.Rules()
	if *list {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-20s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	if *ruleList != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*ruleList, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []analysis.Rule
		for _, r := range rules {
			if want[r.Name()] {
				sel = append(sel, r)
				delete(want, r.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(stderr, "sclint: unknown rule %q (see -list)\n", name)
			return 2
		}
		rules = sel
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "sclint: %v\n", err)
		return 2
	}
	u, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintf(stderr, "sclint: %v\n", err)
		return 2
	}
	findings := analysis.Run(u, rules)
	findings = filterByArgs(findings, fs.Args())

	if *jsonOut {
		if err := analysis.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "sclint: %v\n", err)
			return 2
		}
	} else {
		analysis.WritePlain(stdout, findings)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "sclint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// filterByArgs keeps findings under the requested module-relative path
// prefixes. "./..." and "" mean everything; "./internal/bench" (with or
// without a trailing /...) keeps that subtree.
func filterByArgs(findings []analysis.Finding, args []string) []analysis.Finding {
	var prefixes []string
	for _, a := range args {
		a = strings.TrimSuffix(a, "/...")
		a = strings.TrimPrefix(a, "./")
		if a == "" || a == "." {
			return findings
		}
		prefixes = append(prefixes, a+"/")
	}
	if len(prefixes) == 0 {
		return findings
	}
	var out []analysis.Finding
	for _, f := range findings {
		for _, p := range prefixes {
			if strings.HasPrefix(f.File, p) || f.File == strings.TrimSuffix(p, "/") {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace codec: the text format is greppable but costs ~60 bytes and
// a strconv per field; replaying the paper's full-size traces (millions of
// records) benefits from a compact framing. The format is:
//
//	magic "SCTR" | version byte (1)
//	per record: varint(timeDelta) varint(client) varint(size)
//	            varint(versionDelta zig-zag) varint(len(url)) url bytes
//
// Deltas exploit monotone timestamps; URLs are stored verbatim (they
// dominate the size either way, but dedup tables would hurt streamability).

// binaryMagic identifies a binary trace stream.
var binaryMagic = [5]byte{'S', 'C', 'T', 'R', 1}

// ErrBadMagic reports a stream that is not a binary trace.
var ErrBadMagic = errors.New("trace: not a binary trace stream")

// maxBinaryURLLen guards against corrupt length prefixes.
const maxBinaryURLLen = 64 * 1024

// BinaryWriter emits the binary trace format.
type BinaryWriter struct {
	bw       *bufio.Writer
	started  bool
	lastTime int64
	buf      []byte
	n        int
}

// NewBinaryWriter wraps w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{bw: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
}

// Write emits one record.
func (w *BinaryWriter) Write(r Request) error {
	if !w.started {
		if _, err := w.bw.Write(binaryMagic[:]); err != nil {
			return err
		}
		w.started = true
	}
	if r.Time < w.lastTime {
		return fmt.Errorf("trace: binary format requires non-decreasing time (%d < %d)", r.Time, w.lastTime)
	}
	if r.Size < 0 {
		return fmt.Errorf("trace: negative size %d", r.Size)
	}
	if len(r.URL) > maxBinaryURLLen {
		return fmt.Errorf("trace: URL too long (%d bytes)", len(r.URL))
	}
	b := w.buf[:0]
	b = binary.AppendUvarint(b, uint64(r.Time-w.lastTime))
	b = binary.AppendVarint(b, int64(r.Client))
	b = binary.AppendUvarint(b, uint64(r.Size))
	b = binary.AppendVarint(b, r.Version)
	b = binary.AppendUvarint(b, uint64(len(r.URL)))
	w.buf = b
	if _, err := w.bw.Write(b); err != nil {
		return err
	}
	if _, err := w.bw.WriteString(r.URL); err != nil {
		return err
	}
	w.lastTime = r.Time
	w.n++
	return nil
}

// Count returns records written.
func (w *BinaryWriter) Count() int { return w.n }

// Flush flushes buffered output.
func (w *BinaryWriter) Flush() error { return w.bw.Flush() }

// BinaryReader parses the binary trace format.
type BinaryReader struct {
	br       *bufio.Reader
	started  bool
	lastTime int64
	urlBuf   []byte
}

// NewBinaryReader wraps r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next record, or io.EOF at end of stream.
func (r *BinaryReader) Read() (Request, error) {
	if !r.started {
		var magic [5]byte
		if _, err := io.ReadFull(r.br, magic[:]); err != nil {
			if err == io.EOF {
				return Request{}, io.EOF
			}
			return Request{}, err
		}
		if magic != binaryMagic {
			return Request{}, ErrBadMagic
		}
		r.started = true
	}
	dt, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return Request{}, io.EOF
		}
		return Request{}, err
	}
	client, err := binary.ReadVarint(r.br)
	if err != nil {
		return Request{}, unexpectedEOF(err)
	}
	size, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Request{}, unexpectedEOF(err)
	}
	version, err := binary.ReadVarint(r.br)
	if err != nil {
		return Request{}, unexpectedEOF(err)
	}
	urlLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Request{}, unexpectedEOF(err)
	}
	if urlLen > maxBinaryURLLen {
		return Request{}, fmt.Errorf("%w: URL length %d", ErrBadRecord, urlLen)
	}
	if cap(r.urlBuf) < int(urlLen) {
		r.urlBuf = make([]byte, urlLen)
	}
	buf := r.urlBuf[:urlLen]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return Request{}, unexpectedEOF(err)
	}
	r.lastTime += int64(dt)
	return Request{
		Time:    r.lastTime,
		Client:  int(client),
		Size:    int64(size),
		Version: version,
		URL:     string(buf),
	}, nil
}

// ReadAll slurps the remaining records.
func (r *BinaryReader) ReadAll() ([]Request, error) {
	var out []Request
	for {
		req, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, req)
	}
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadAllAuto detects the stream format — the binary magic versus the
// line-oriented text format — and reads every record. It is what
// cmd/simulate uses for -tracefile, so both formats Just Work.
func ReadAllAuto(r io.Reader) ([]Request, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(head) == len(binaryMagic) && [5]byte(head) == binaryMagic {
		return NewBinaryReader(br).ReadAll()
	}
	return NewReader(br).ReadAll()
}

package meshhealth

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"summarycache/internal/obs"
)

// TestPeerStatsScrapeParity is the Stats()==scrape contract for the
// summarycache_peer_* decision families: every PeerStats field must equal
// the value the registry exposes for the same peer label.
func TestPeerStatsScrapeParity(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(reg, obs.L("proxy", "p1"))

	for i := 0; i < 7; i++ {
		a.Nominated("peerA")
	}
	for i := 0; i < 4; i++ {
		a.RemoteHit("peerA")
	}
	a.FalseHit("peerA", "http://o/x", "")
	a.FalseHit("peerA", "http://o/y", "abc123")
	a.FalseMiss("peerA", "http://o/z", "")
	a.StaleHit("peerA", "http://o/w", "")
	a.Nominated("peerB")

	st := a.PeerStats("peerA")
	want := PeerStats{Nominations: 7, RemoteHits: 4, FalseHits: 2, FalseMisses: 1, StaleHits: 1}
	if st != want {
		t.Fatalf("PeerStats(peerA) = %+v, want %+v", st, want)
	}

	rec := httptest.NewRecorder()
	obs.NewHandler(reg, nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for family, v := range map[string]uint64{
		"summarycache_peer_nominations_total":  st.Nominations,
		"summarycache_peer_remote_hits_total":  st.RemoteHits,
		"summarycache_peer_false_hits_total":   st.FalseHits,
		"summarycache_peer_false_misses_total": st.FalseMisses,
		"summarycache_peer_stale_hits_total":   st.StaleHits,
	} {
		line := fmt.Sprintf(`%s{peer="peerA",proxy="p1"} %d`, family, v)
		if !strings.Contains(body, line) {
			t.Errorf("scrape missing %q\n%s", line, body)
		}
	}
	div := fmt.Sprintf(`summarycache_peer_divergence{peer="peerA",proxy="p1"} %g`, 2.0/7.0)
	if !strings.Contains(body, div) {
		t.Errorf("scrape missing %q", div)
	}

	if got := a.PeerStats("peerB"); got.Nominations != 1 || got.FalseHits != 0 {
		t.Errorf("PeerStats(peerB) = %+v", got)
	}
	if got := a.PeerStats("unknown"); got != (PeerStats{}) {
		t.Errorf("PeerStats(unknown) = %+v, want zero", got)
	}
}

func TestDivergence(t *testing.T) {
	if d := (PeerStats{}).Divergence(); d != 0 {
		t.Errorf("zero-nomination divergence = %v, want 0", d)
	}
	if d := (PeerStats{Nominations: 8, FalseHits: 2}).Divergence(); d != 0.25 {
		t.Errorf("divergence = %v, want 0.25", d)
	}
}

func TestRecentRingNewestFirstAndWrap(t *testing.T) {
	a := New(obs.NewRegistry(), obs.L("proxy", "p1"))
	for i := 0; i < recentCap+5; i++ {
		a.FalseHit("peerA", fmt.Sprintf("http://o/%d", i), "")
	}
	rec := a.Recent()
	if len(rec) != recentCap {
		t.Fatalf("Recent() returned %d entries, want %d", len(rec), recentCap)
	}
	for i, d := range rec {
		want := fmt.Sprintf("http://o/%d", recentCap+4-i)
		if d.URL != want {
			t.Fatalf("Recent()[%d].URL = %q, want %q", i, d.URL, want)
		}
	}
}

// TestRemovePeerRetiresSeries is the metric-lifecycle regression: after
// RemovePeer a departed peer must leave no series behind, and only the
// removing proxy's series may be touched when a registry is shared.
func TestRemovePeerRetiresSeries(t *testing.T) {
	reg := obs.NewRegistry()
	a1 := New(reg, obs.L("proxy", "p1"))
	a2 := New(reg, obs.L("proxy", "p2"))
	a1.FalseHit("peerA", "http://o/x", "")
	a2.FalseHit("peerA", "http://o/x", "")

	a1.RemovePeer("peerA")

	rec := httptest.NewRecorder()
	obs.NewHandler(reg, nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	if strings.Contains(body, `proxy="p1"`) {
		t.Errorf("p1's series survived RemovePeer:\n%s", body)
	}
	if !strings.Contains(body, `summarycache_peer_false_hits_total{peer="peerA",proxy="p2"} 1`) {
		t.Errorf("p2's series about the same peer was collaterally removed:\n%s", body)
	}
	if got := a1.PeerStats("peerA"); got != (PeerStats{}) {
		t.Errorf("PeerStats after RemovePeer = %+v, want zero", got)
	}

	// Rejoin restarts from zero with fresh series.
	a1.Nominated("peerA")
	if got := a1.PeerStats("peerA"); got.Nominations != 1 {
		t.Errorf("rejoined peer Nominations = %d, want 1", got.Nominations)
	}
}

func TestHandlerJSONAndHTML(t *testing.T) {
	reports := []Report{{
		Proxy: "127.0.0.1:8080",
		Node:  "127.0.0.1:3130",
		Mode:  "SC-ICP",
		Local: LocalReport{DirectoryDocs: 3, PendingFlips: 1, LastAdvertAgeMS: 12},
		Peers: []PeerReport{{
			Peer: "127.0.0.1:3131", Up: true, Breaker: "closed",
			HasReplica: true, FillRatio: 0.25, EstFalsePositive: 1e-3,
			Decisions:  PeerStats{Nominations: 10, FalseHits: 1},
			Divergence: 0.1,
		}},
		RecentFalse: []FalseDecision{{Kind: "false_hit", Peer: "127.0.0.1:3131",
			URL: "http://o/x", TraceID: "deadbeef"}},
	}}
	h := NewHandler(func() []Report { return reports })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/mesh?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("json Content-Type = %q", ct)
	}
	for _, want := range []string{`"proxy": "127.0.0.1:8080"`, `"fill_ratio": 0.25`, `"trace_id": "deadbeef"`} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("json body missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/mesh", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("html Content-Type = %q", ct)
	}
	for _, want := range []string{"mesh health", "127.0.0.1:3131", `/debug/traces?id=deadbeef`} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("html body missing %q", want)
		}
	}
}

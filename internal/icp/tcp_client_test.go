package icp

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// A canceled context must abort SendContext before any network I/O.
func TestTCPClientSendContextCanceled(t *testing.T) {
	c := NewTCPClient("127.0.0.1:1", TCPClientConfig{}) // nothing listens; must not matter
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.SendContext(ctx, NewQuery(1, "http://x/"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Stats().SendErrors != 1 {
		t.Fatalf("send errors = %d, want 1", c.Stats().SendErrors)
	}
}

// Config plumbing: the zero dial timeout falls back to the default; explicit
// values pass through.
func TestTCPClientConfigDefaults(t *testing.T) {
	if c := NewTCPClient("x:1", TCPClientConfig{}); c.cfg.DialTimeout != DefaultDialTimeout {
		t.Fatalf("dial timeout = %v, want default %v", c.cfg.DialTimeout, DefaultDialTimeout)
	}
	if c := NewTCPClient("x:1", TCPClientConfig{DialTimeout: 2 * time.Second}); c.cfg.DialTimeout != 2*time.Second {
		t.Fatalf("positional dial timeout not honored: %v", c.cfg.DialTimeout)
	}
	c := NewTCPClient("x:1", TCPClientConfig{DialTimeout: -1, WriteTimeout: time.Second})
	if c.cfg.DialTimeout != -1 || c.cfg.WriteTimeout != time.Second {
		t.Fatalf("explicit config not honored: %+v", c.cfg)
	}
}

// writeDeadline must pick the sooner of WriteTimeout and the context's
// deadline.
func TestTCPClientWriteDeadlineSelection(t *testing.T) {
	bg := context.Background()
	if _, ok := NewTCPClient("x:1", TCPClientConfig{}).writeDeadline(bg); ok {
		t.Fatal("deadline reported with neither timeout nor context deadline")
	}
	c := NewTCPClient("x:1", TCPClientConfig{WriteTimeout: time.Minute})
	d1, ok := c.writeDeadline(bg)
	if !ok || time.Until(d1) > time.Minute || time.Until(d1) < 50*time.Second {
		t.Fatalf("WriteTimeout deadline wrong: %v ok=%v", d1, ok)
	}
	ctx, cancel := context.WithTimeout(bg, time.Second)
	defer cancel()
	d2, ok := c.writeDeadline(ctx)
	if !ok || !d2.Before(d1) {
		t.Fatalf("context deadline (sooner) not preferred: %v vs %v", d2, d1)
	}
	far, cancelFar := context.WithTimeout(bg, time.Hour)
	defer cancelFar()
	d3, ok := c.writeDeadline(far)
	if !ok || d3.After(d1.Add(time.Minute)) {
		t.Fatalf("WriteTimeout (sooner) not preferred: %v", d3)
	}
}

// An already-expired write deadline must fail the send on both attempts —
// proof the per-send deadline is actually armed on the connection.
func TestTCPClientWriteTimeoutEnforced(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewTCPClient(srv.Addr().String(), TCPClientConfig{
		DialTimeout:  time.Second,
		WriteTimeout: time.Nanosecond, // expired by the time Write runs
	})
	defer c.Close()
	err = c.Send(NewQuery(1, "http://x/"))
	if err == nil {
		t.Fatal("send with expired write deadline succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		if !strings.Contains(err.Error(), "timeout") {
			t.Fatalf("err = %v, want a write timeout", err)
		}
	}
}

// A sane WriteTimeout must not poison subsequent sends: the deadline is
// re-armed per send and cleared after success.
func TestTCPClientWriteTimeoutClearedBetweenSends(t *testing.T) {
	got := make(chan Message, 4)
	srv, err := ListenTCP("127.0.0.1:0", func(_ *net.UDPAddr, m Message) { got <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewTCPClient(srv.Addr().String(), TCPClientConfig{
		DialTimeout:  time.Second,
		WriteTimeout: 2 * time.Second,
	})
	defer c.Close()
	for i := uint32(1); i <= 3; i++ {
		if err := c.SendContext(context.Background(), NewQuery(i, "http://x/")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := uint32(1); i <= 3; i++ {
		select {
		case m := <-got:
			if m.ReqNum != i {
				t.Fatalf("reqnum = %d, want %d", m.ReqNum, i)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("message %d never arrived", i)
		}
	}
	if c.Stats().Sent != 3 || c.Stats().SendErrors != 0 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

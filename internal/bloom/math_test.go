package bloom

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"summarycache/internal/hashing"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Pin the example constants published in §V-C: "for a bit array 10 times
// larger than the number of entries, the probability of a false positive is
// 1.2% for four hash functions, and 0.9% for the optimum case of five hash
// functions."
func TestPaperConstants(t *testing.T) {
	ex := PaperExampleRates()
	if !approxEq(ex["lf10_k4"], 0.0118, 0.0005) {
		t.Errorf("lf=10 k=4: got %.5f, want ≈0.0118 (paper: 1.2%%)", ex["lf10_k4"])
	}
	if !approxEq(ex["lf10_k5"], 0.0094, 0.0005) {
		t.Errorf("lf=10 k=5: got %.5f, want ≈0.0094 (paper: 0.9%%)", ex["lf10_k5"])
	}
	// The paper's trace configurations: lf=8 "1% to 2%" with 4 functions.
	if ex["lf8_k4"] < 0.01 || ex["lf8_k4"] > 0.03 {
		t.Errorf("lf=8 k=4: got %.5f, want in the paper's 1-2%% band", ex["lf8_k4"])
	}
}

func TestFalsePositiveRateEdges(t *testing.T) {
	if got := FalsePositiveRate(0, 10, 4); got != 1 {
		t.Errorf("m=0: got %v, want 1", got)
	}
	if got := FalsePositiveRate(100, 0, 4); got != 0 {
		t.Errorf("n=0: got %v, want 0", got)
	}
	if got := FalsePositiveRate(100, 10, 0); got != 1 {
		t.Errorf("k=0: got %v, want 1", got)
	}
	// Exact and approximate forms converge for large m.
	exact := FalsePositiveRate(1<<24, 1<<20, 4)
	approx := FalsePositiveRateApprox(1<<24, 1<<20, 4)
	if !approxEq(exact, approx, 1e-6) {
		t.Errorf("exact %.8f vs approx %.8f diverge", exact, approx)
	}
}

func TestFalsePositiveMonotonicity(t *testing.T) {
	// More memory → fewer false positives, at fixed n and k.
	const n = 100000
	prev := 1.0
	for lf := 2; lf <= 64; lf *= 2 {
		p := FalsePositiveRate(uint64(lf)*n, n, 4)
		if p >= prev {
			t.Fatalf("fp rate not decreasing in m: lf=%d p=%g prev=%g", lf, p, prev)
		}
		prev = p
	}
}

func TestOptimalK(t *testing.T) {
	cases := []struct {
		lf   float64
		want int
	}{
		{8, 6}, {16, 11}, {10, 7}, // ln2*lf rounded to the better neighbor
	}
	const n = 1 << 18
	for _, c := range cases {
		m := uint64(c.lf * n)
		got := OptimalK(m, n)
		if got != c.want {
			t.Errorf("OptimalK(lf=%v) = %d, want %d", c.lf, got, c.want)
		}
		// The optimum must not be beaten by its neighbors.
		for _, k := range []int{got - 1, got + 1} {
			if k >= 1 && FalsePositiveRate(m, n, k) < FalsePositiveRate(m, n, got) {
				t.Errorf("OptimalK(lf=%v)=%d beaten by k=%d", c.lf, got, k)
			}
		}
	}
	if OptimalK(100, 0) != 1 {
		t.Error("OptimalK with n=0 should return 1")
	}
}

// Figure 4's lower curve is the straight line (0.6185)^(m/n) on a log
// scale; the computed optimum must track it closely.
func TestPowerBoundTracksOptimum(t *testing.T) {
	const n = 1 << 18
	for lf := 4.0; lf <= 32; lf += 4 {
		bound := PowerBound(lf)
		actual := MinFalsePositiveRate(uint64(lf*n), n)
		if actual > bound*1.15 {
			t.Errorf("lf=%v: optimum %.3g exceeds power bound %.3g", lf, actual, bound)
		}
		if actual < bound*0.5 {
			t.Errorf("lf=%v: optimum %.3g implausibly below bound %.3g", lf, actual, bound)
		}
	}
}

// Monte-Carlo validation of the analytic false-positive rate using the real
// filter implementation — the empirical backing for Figure 4.
func TestEmpiricalFalsePositiveRate(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo")
	}
	const n = 20000
	for _, lf := range []int{8, 16} {
		m := uint64(lf * n)
		f := MustNewFilter(m, hashing.DefaultSpec)
		for i := 0; i < n; i++ {
			f.Add(fmt.Sprintf("http://member%d/", i))
		}
		trials, fps := 200000, 0
		for i := 0; i < trials; i++ {
			if f.Test(fmt.Sprintf("http://nonmember%d/", i)) {
				fps++
			}
		}
		got := float64(fps) / float64(trials)
		want := FalsePositiveRate(m, n, 4)
		if math.Abs(got-want) > want*0.25+0.0005 {
			t.Errorf("lf=%d: empirical fp %.5f vs analytic %.5f", lf, got, want)
		}
	}
}

func TestCounterOverflowProbability(t *testing.T) {
	// Paper: with 4 bits per count (j=16) overflow probability is minuscule.
	const n = 1 << 20
	p := CounterOverflowProbability(16*n, n, 4, 16)
	if p > 1e-10 {
		t.Errorf("overflow probability %.3g not minuscule", p)
	}
	// But with 1-bit counters (j=2) it is essentially certain for dense fills.
	p = CounterOverflowProbability(2*n, n, 4, 2)
	if p < 0.99 {
		t.Errorf("j=2 overflow bound %.3g should be ~1", p)
	}
}

func TestExpectedMaxCount(t *testing.T) {
	// At load factor 16 with k=4 the expected max counter is single-digit,
	// comfortably below the 4-bit saturation of 15.
	got := ExpectedMaxCount(16<<20, 1<<20, 4)
	if got < 2 || got >= 15 {
		t.Errorf("expected max count %v out of plausible band [2,15)", got)
	}
}

// Empirical check: with the paper's configuration the max counter stays
// far below 15.
func TestEmpiricalMaxCounter(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo")
	}
	const n = 50000
	c := MustNewCountingFilter(16*n, 4, hashing.DefaultSpec)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		c.Add(fmt.Sprintf("http://h%d/p%d", rng.Intn(1000), i), nil)
	}
	if max := c.MaxCount(); max >= 15 {
		t.Errorf("max counter %d saturated at paper's configuration", max)
	}
	if c.Saturations() != 0 {
		t.Errorf("unexpected saturations: %d", c.Saturations())
	}
}

func TestSizeForLoadFactor(t *testing.T) {
	cases := []struct {
		entries uint64
		lf      float64
		check   func(uint64) bool
	}{
		{0, 8, func(m uint64) bool { return m == 64 }},
		{1, 8, func(m uint64) bool { return m == 64 }},
		{1000, 8, func(m uint64) bool { return m >= 8000 && m%64 == 0 }},
		{1 << 30, 32, func(m uint64) bool { return m == MaxBits }},
	}
	for _, c := range cases {
		if got := SizeForLoadFactor(c.entries, c.lf); !c.check(got) {
			t.Errorf("SizeForLoadFactor(%d, %v) = %d fails invariant", c.entries, c.lf, got)
		}
	}
}

func BenchmarkFalsePositiveRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FalsePositiveRate(1<<24, 1<<20, 4)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair on a metric series.
type Label struct {
	Name, Value string
}

// Labels is an ordered label set. Order does not matter for identity;
// series are keyed by the sorted set.
type Labels []Label

// L builds a label set from alternating name, value strings:
// L("proxy", addr, "outcome", "miss"). It panics on an odd count —
// a compile-time-adjacent programmer error.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("obs: L requires an even number of arguments")
	}
	out := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Name: kv[i], Value: kv[i+1]})
	}
	return out
}

// With returns a copy of ls extended with more pairs.
func (ls Labels) With(kv ...string) Labels {
	return append(append(Labels(nil), ls...), L(kv...)...)
}

// key canonicalizes the set for series identity and exposition.
func (ls Labels) key() string {
	if len(ls) == 0 {
		return ""
	}
	s := append(Labels(nil), ls...)
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	var b strings.Builder
	for i, l := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// kind is the metric family type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance within a family. Exactly one of the
// value fields is set, matching the family kind.
type series struct {
	labels  string // canonical label key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// read-at-scrape functions for re-exporting externally owned counters
	// (e.g. icp.Conn's datagram accounting) without double bookkeeping.
	counterFn func() uint64
	gaugeFn   func() float64
}

type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series
	order  []string // insertion-ordered keys are re-sorted at exposition
}

// Registry is a concurrency-safe collection of metric families. Multiple
// components (proxies, nodes) may share one registry, distinguishing
// themselves by labels; registering the same name+labels twice returns the
// existing instrument, so restarts and shared wiring are idempotent.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, k kind) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, k))
	}
	return f
}

func (f *family) get(key string) *series {
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	key := labels.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, kindCounter).get(key)
	if s.counter == nil && s.counterFn == nil {
		s.counter = &Counter{}
	}
	if s.counter == nil {
		panic(fmt.Sprintf("obs: metric %q{%s} already registered as a counter func", name, key))
	}
	return s.counter
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for counters owned elsewhere (icp.Stats fields,
// LRU eviction counts): one source of truth, no double counting.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	key := labels.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, kindCounter).get(key)
	s.counterFn = fn
	s.counter = nil
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	key := labels.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, kindGauge).get(key)
	if s.gauge == nil && s.gaugeFn == nil {
		s.gauge = &Gauge{}
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q{%s} already registered as a gauge func", name, key))
	}
	return s.gauge
}

// GaugeFunc registers a gauge series computed from fn at scrape time
// (cache entries, peer-summary memory, peers up).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	key := labels.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, kindGauge).get(key)
	s.gaugeFn = fn
	s.gauge = nil
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket bounds on first use (nil bounds: DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	key := labels.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, kindHistogram).get(key)
	if s.hist == nil {
		s.hist = newHistogram(bounds)
	}
	return s.hist
}

// matchesKey reports whether the canonical series key contains every
// name="value" segment of ls. Segment boundaries are unambiguous because
// escapeLabel never leaves a raw `"` inside a value.
func matchesKey(key string, segs []string) bool {
	for _, seg := range segs {
		if key == seg ||
			strings.HasPrefix(key, seg+",") ||
			strings.HasSuffix(key, ","+seg) ||
			strings.Contains(key, ","+seg+",") {
			continue
		}
		return false
	}
	return true
}

// Unregister removes every series whose label set includes all of the given
// name="value" pairs, across every family. Families left empty are dropped
// entirely so Names() and the exposition stay in lockstep (the parity-test
// invariant). It returns the number of series removed.
//
// This is the peer-churn lifecycle hook: when a peer leaves the mesh, its
// peer-keyed gauges and counters (breaker state, divergence, per-peer
// decision counters) must not linger as stale series.
func (r *Registry) Unregister(ls Labels) int {
	if len(ls) == 0 {
		return 0
	}
	segs := make([]string, len(ls))
	for i, l := range ls {
		segs[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	removed := 0
	for name, f := range r.families {
		kept := f.order[:0]
		for _, key := range f.order {
			if matchesKey(key, segs) {
				delete(f.series, key)
				removed++
				continue
			}
			kept = append(kept, key)
		}
		f.order = kept
		if len(f.series) == 0 {
			delete(r.families, name)
			for i, n := range r.names {
				if n == name {
					r.names = append(r.names[:i], r.names[i+1:]...)
					break
				}
			}
		}
	}
	return removed
}

// Names returns the sorted names of every metric family ever registered,
// whether or not it has been scraped. This is the ground truth the
// Stats()==scrape parity tests diff the exposition against.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}

// snapshot returns families and series in deterministic (sorted) order for
// exposition, under the read lock. Series values are read outside the lock
// by the writers; the instruments themselves are atomic.
func (r *Registry) snapshot() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	out := make([]*family, 0, len(names))
	for _, n := range names {
		out = append(out, r.families[n])
	}
	return out
}

func (f *family) sortedSeries() []*series {
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	return out
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSeries(w io.Writer, name, suffix, labels, extraLabel string, value string) {
	io.WriteString(w, name)
	io.WriteString(w, suffix)
	if labels != "" || extraLabel != "" {
		io.WriteString(w, "{")
		io.WriteString(w, labels)
		if labels != "" && extraLabel != "" {
			io.WriteString(w, ",")
		}
		io.WriteString(w, extraLabel)
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, value)
	io.WriteString(w, "\n")
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, one line per series, and the
// cumulative _bucket/_sum/_count expansion for histograms.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.snapshot() {
		r.mu.RLock()
		ss := f.sortedSeries()
		r.mu.RUnlock()
		if len(ss) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch f.kind {
			case kindCounter:
				v := uint64(0)
				if s.counterFn != nil {
					v = s.counterFn()
				} else if s.counter != nil {
					v = s.counter.Value()
				}
				writeSeries(w, f.name, "", s.labels, "", strconv.FormatUint(v, 10))
			case kindGauge:
				var v float64
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				} else if s.gauge != nil {
					v = float64(s.gauge.Value())
				}
				writeSeries(w, f.name, "", s.labels, "", formatFloat(v))
			case kindHistogram:
				h := s.hist
				if h == nil {
					continue
				}
				counts := h.BucketCounts()
				var cum uint64
				for i, b := range h.bounds {
					cum += counts[i]
					writeSeries(w, f.name, "_bucket", s.labels,
						`le="`+formatFloat(b)+`"`, strconv.FormatUint(cum, 10))
				}
				cum += counts[len(counts)-1]
				writeSeries(w, f.name, "_bucket", s.labels, `le="+Inf"`, strconv.FormatUint(cum, 10))
				writeSeries(w, f.name, "_sum", s.labels, "", formatFloat(h.Sum()))
				writeSeries(w, f.name, "_count", s.labels, "", strconv.FormatUint(h.Count(), 10))
			}
		}
	}
}

// histJSON is the /debug/vars rendering of one histogram series.
type histJSON struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// WriteJSON renders the registry as a flat expvar-style JSON object:
// "name{labels}" -> number for counters and gauges, -> summary object for
// histograms. NaNs (empty histograms) render as zero, keeping the output
// valid JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	for _, f := range r.snapshot() {
		r.mu.RLock()
		ss := f.sortedSeries()
		r.mu.RUnlock()
		for _, s := range ss {
			key := f.name
			if s.labels != "" {
				key += "{" + s.labels + "}"
			}
			switch f.kind {
			case kindCounter:
				if s.counterFn != nil {
					out[key] = s.counterFn()
				} else if s.counter != nil {
					out[key] = s.counter.Value()
				}
			case kindGauge:
				if s.gaugeFn != nil {
					out[key] = s.gaugeFn()
				} else if s.gauge != nil {
					out[key] = s.gauge.Value()
				}
			case kindHistogram:
				if h := s.hist; h != nil {
					hj := histJSON{Count: h.Count(), Sum: h.Sum()}
					if hj.Count > 0 {
						hj.Mean = h.Mean()
						hj.P50 = h.Quantile(0.50)
						hj.P90 = h.Quantile(0.90)
						hj.P99 = h.Quantile(0.99)
					}
					out[key] = hj
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

package tracing

import (
	"testing"
	"time"
)

// recordingSink is a test SpanSink: it records every hook invocation and
// returns a fixed anomaly reason for request traces slower than threshold.
type recordingSink struct {
	spans     []Span
	finishes  int
	threshold time.Duration
	reason    string
}

func (s *recordingSink) OnSpan(node string, sp Span) { s.spans = append(s.spans, sp) }

func (s *recordingSink) OnFinish(node, kind, outcome string, d time.Duration) string {
	s.finishes++
	if kind == KindRequest && d > s.threshold {
		return s.reason
	}
	return ""
}

// TestSinkSeesAllTrafficAtHeadRateZero pins the decomposition contract:
// a sink observes every span and every finish even when head sampling
// would drop the trace, because metrics need the full population while
// retention only governs what /debug/traces keeps.
func TestSinkSeesAllTrafficAtHeadRateZero(t *testing.T) {
	sink := &recordingSink{threshold: time.Hour}
	tracer := New(Config{HeadRate: 0, Buffer: 8, Sink: sink})

	tr := tracer.StartRequest("n", "http://a/")
	tr.AddSpan(Span{Name: SpanLocalLookup, DurationUS: 10})
	tr.AddSpan(Span{Name: SpanOriginFetch, DurationUS: 900})
	tr.Finish("miss")

	if len(sink.spans) != 2 || sink.spans[0].Name != SpanLocalLookup || sink.spans[1].Name != SpanOriginFetch {
		t.Fatalf("sink saw spans %v, want local_lookup then origin_fetch", sink.spans)
	}
	if sink.finishes != 1 {
		t.Fatalf("sink saw %d finishes, want 1", sink.finishes)
	}
	if got := tr.Kept(); got != "" {
		t.Fatalf("fast trace kept = %q, want dropped — the sink must not affect retention when it returns no reason", got)
	}
}

// TestSinkAnomalyRetainsBreachingTrace is the SLO-breach retention
// regression test: a request trace whose OnFinish returns an anomaly
// reason (perfwatch returns "slo:<name>" past a latency threshold) must
// survive head sampling at rate zero via the tail-keep path, carrying
// that reason.
func TestSinkAnomalyRetainsBreachingTrace(t *testing.T) {
	sink := &recordingSink{threshold: 0, reason: "slo:client_p99"}
	tracer := New(Config{HeadRate: 0, Buffer: 8, Sink: sink})

	tr := tracer.StartRequest("n", "http://slow/")
	tr.Finish("miss")

	if got := tr.Kept(); got != "tail" {
		t.Fatalf("breaching trace kept = %q, want tail", got)
	}
	stored := tracer.Traces()
	if len(stored) != 1 {
		t.Fatalf("stored %d traces, want the breaching one", len(stored))
	}
	if got := stored[0].snapshotView().Anomaly; got != "slo:client_p99" {
		t.Fatalf("anomaly = %q, want slo:client_p99", got)
	}
}

// TestSinkDoesNotOverrideEarlierAnomaly: an explicit MarkAnomalous reason
// (e.g. false_hit) wins over the sink's SLO reason — first reason sticks.
func TestSinkDoesNotOverrideEarlierAnomaly(t *testing.T) {
	sink := &recordingSink{threshold: 0, reason: "slo:client_p99"}
	tracer := New(Config{HeadRate: 0, Buffer: 8, Sink: sink})

	tr := tracer.StartRequest("n", "http://a/")
	tr.MarkAnomalous("false_hit")
	tr.Finish("false_hit")

	if got := tr.Kept(); got != "tail" {
		t.Fatalf("kept = %q, want tail", got)
	}
	if got := tracer.Traces()[0].snapshotView().Anomaly; got != "false_hit" {
		t.Fatalf("anomaly = %q, want the earlier false_hit to win", got)
	}
}

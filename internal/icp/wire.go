// Package icp implements version 2 of the Internet Cache Protocol
// (RFC 2186) — the query/reply protocol Squid proxies use to discover
// remote cache hits — extended with the paper's ICP_OP_DIRUPDATE opcode
// (§VI-A) that carries summary-cache directory updates: a header fully
// specifying the Bloom hash functions followed by a stream of absolute
// bit-flip records, so updates tolerate loss and reordering over UDP.
//
// The wire layout is the RFC's 20-byte header:
//
//	Opcode(1) Version(1) MessageLength(2) RequestNumber(4)
//	Options(4) OptionData(4) SenderHostAddress(4)
//
// followed by an opcode-specific payload. The DIRUPDATE payload is the
// paper's extension header — FunctionNum(2) FunctionBits(2)
// BitArraySizeInBits(4) NumberOfUpdates(4) — followed by NumberOfUpdates
// 32-bit words whose most significant bit selects set-vs-clear and whose
// low 31 bits index the peer's bit array.
package icp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
)

// Opcode is an ICP operation code.
type Opcode uint8

// RFC 2186 opcodes plus the paper's directory-update extension.
const (
	OpInvalid     Opcode = 0
	OpQuery       Opcode = 1
	OpHit         Opcode = 2
	OpMiss        Opcode = 3
	OpErr         Opcode = 4
	OpSEcho       Opcode = 10
	OpDEcho       Opcode = 11
	OpMissNoFetch Opcode = 21
	OpDenied      Opcode = 22
	OpHitObj      Opcode = 23
	// OpDirUpdate is the summary-cache extension ("We added a new opcode
	// in ICP version 2, ICP_OP_DIRUPDATE, which stands for directory
	// update messages"). The paper assigns no number; we use 32, above the
	// RFC-defined range.
	OpDirUpdate Opcode = 32
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpInvalid:
		return "INVALID"
	case OpQuery:
		return "QUERY"
	case OpHit:
		return "HIT"
	case OpMiss:
		return "MISS"
	case OpErr:
		return "ERR"
	case OpSEcho:
		return "SECHO"
	case OpDEcho:
		return "DECHO"
	case OpMissNoFetch:
		return "MISS_NOFETCH"
	case OpDenied:
		return "DENIED"
	case OpHitObj:
		return "HIT_OBJ"
	case OpDirUpdate:
		return "DIRUPDATE"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// Version is the protocol version this package speaks.
const Version = 2

// OptionFullUpdate, set in a DIRUPDATE's Options field, announces that the
// message (stream) carries the sender's complete filter state: the
// receiver must reset its replica before applying. Senders use it to
// bootstrap a new neighbor or reinitialize a recovered one.
const OptionFullUpdate uint32 = 1 << 0

// HeaderLen is the fixed ICP header size.
const HeaderLen = 20

// DirUpdateHeaderLen is the paper's extension header size (after the ICP
// header). 20 + 12 = the 32-byte update header of the paper's Fig. 8 cost
// model.
const DirUpdateHeaderLen = 12

// MaxDatagram bounds an encoded message: the maximum UDP payload over
// IPv4 (65535 − 8 UDP − 20 IP), which also keeps the 16-bit ICP message
// length field valid.
const MaxDatagram = 65507

// MaxFlipsPerMessage is the most flip records one DIRUPDATE datagram holds.
const MaxFlipsPerMessage = (MaxDatagram - HeaderLen - DirUpdateHeaderLen) / 4

// bufPool recycles datagram-sized scratch buffers across the package's hot
// paths: Conn.Send/SendAsync encode into them, the UDP and multicast
// receive loops read into them, and the TCP framing borrows them too. The
// extra frameHeaderLen of capacity lets a maximum-size message and its TCP
// length prefix share one buffer without reallocating.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, MaxDatagram+frameHeaderLen)
		return &b
	},
}

// getBuf borrows an empty datagram-capacity buffer from the pool.
func getBuf() *[]byte {
	bp := bufPool.Get().(*[]byte)
	*bp = (*bp)[:0]
	return bp
}

// putBuf returns a buffer to the pool. Buffers that grew past the pooled
// capacity (none of this package's callers do that) are dropped rather
// than poisoning the pool with odd sizes.
func putBuf(bp *[]byte) {
	if cap(*bp) == MaxDatagram+frameHeaderLen {
		bufPool.Put(bp)
	}
}

// Wire format errors.
var (
	ErrTruncated    = errors.New("icp: truncated message")
	ErrBadVersion   = errors.New("icp: unsupported version")
	ErrBadLength    = errors.New("icp: message length mismatch")
	ErrTooLarge     = errors.New("icp: message exceeds maximum datagram")
	ErrBadURL       = errors.New("icp: URL missing NUL terminator")
	ErrFlipRange    = errors.New("icp: flip index exceeds 31 bits")
	ErrNotDirUpdate = errors.New("icp: message carries no directory update")
)

// DirUpdate is the decoded payload of an OpDirUpdate message.
type DirUpdate struct {
	Spec hashing.Spec // hash family (FunctionNum, FunctionBits)
	Bits uint32       // peer's bit-array size in bits
	// Flips are absolute set/clear records; applying them to a
	// same-geometry bloom.Filter is idempotent, which is what lets these
	// ride an unreliable transport.
	Flips []bloom.Flip
}

// WireBytes returns the size of the DIRUPDATE datagram that carried (or
// would carry) u — ICP header, extension header, and flip records. This is
// the per-peer byte accounting the mesh-health tracker charges for an
// applied update.
func (u *DirUpdate) WireBytes() int {
	if u == nil {
		return 0
	}
	return HeaderLen + DirUpdateHeaderLen + 4*len(u.Flips)
}

// Message is one ICP datagram.
type Message struct {
	Op         Opcode
	Version    uint8
	ReqNum     uint32
	Options    uint32
	OptionData uint32
	SenderAddr uint32

	// URL is the query/reply subject (OpQuery, OpHit, OpMiss, ...).
	URL string
	// RequesterAddr is the extra host field carried by OpQuery payloads.
	RequesterAddr uint32
	// Update is the OpDirUpdate payload.
	Update *DirUpdate
}

// Clone returns a deep copy of m that shares no memory with decoder
// scratch: the DirUpdate and its flip slice are freshly allocated. Handlers
// that must retain a borrowed Message past their return use this.
func (m Message) Clone() Message {
	if m.Update != nil {
		u := *m.Update
		u.Flips = append([]bloom.Flip(nil), m.Update.Flips...)
		m.Update = &u
	}
	return m
}

// NewQuery builds a query for url.
func NewQuery(reqNum uint32, url string) Message {
	return Message{Op: OpQuery, Version: Version, ReqNum: reqNum, URL: url}
}

// NewReply builds a HIT/MISS-style reply echoing a query's request number
// and URL.
func NewReply(op Opcode, reqNum uint32, url string) Message {
	return Message{Op: op, Version: Version, ReqNum: reqNum, URL: url}
}

// NewDirUpdate builds a directory-update message.
func NewDirUpdate(reqNum uint32, spec hashing.Spec, bits uint32, flips []bloom.Flip) Message {
	return Message{
		Op: OpDirUpdate, Version: Version, ReqNum: reqNum,
		Update: &DirUpdate{Spec: spec, Bits: bits, Flips: flips},
	}
}

// hasURLPayload reports whether op carries a NUL-terminated URL payload.
func hasURLPayload(op Opcode) bool {
	switch op {
	case OpQuery, OpHit, OpMiss, OpMissNoFetch, OpDenied, OpErr, OpSEcho, OpDEcho, OpHitObj:
		return true
	}
	return false
}

// EncodedLen returns the encoded size of m in bytes.
func (m Message) EncodedLen() int {
	n := HeaderLen
	switch {
	case m.Op == OpDirUpdate && m.Update != nil:
		n += DirUpdateHeaderLen + 4*len(m.Update.Flips)
	case m.Op == OpQuery:
		n += 4 + len(m.URL) + 1
	case hasURLPayload(m.Op):
		n += len(m.URL) + 1
	}
	return n
}

// Append encodes m onto dst and returns the extended slice.
func (m Message) Append(dst []byte) ([]byte, error) {
	total := m.EncodedLen()
	if total > MaxDatagram {
		return dst, fmt.Errorf("%w: %d bytes", ErrTooLarge, total)
	}
	v := m.Version
	if v == 0 {
		v = Version
	}
	dst = append(dst, byte(m.Op), v)
	dst = binary.BigEndian.AppendUint16(dst, uint16(total))
	dst = binary.BigEndian.AppendUint32(dst, m.ReqNum)
	dst = binary.BigEndian.AppendUint32(dst, m.Options)
	dst = binary.BigEndian.AppendUint32(dst, m.OptionData)
	dst = binary.BigEndian.AppendUint32(dst, m.SenderAddr)
	switch {
	case m.Op == OpDirUpdate && m.Update != nil:
		u := m.Update
		dst = binary.BigEndian.AppendUint16(dst, uint16(u.Spec.FunctionNum))
		dst = binary.BigEndian.AppendUint16(dst, uint16(u.Spec.FunctionBits))
		dst = binary.BigEndian.AppendUint32(dst, u.Bits)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(u.Flips)))
		for _, f := range u.Flips {
			if f.Index >= 1<<31 {
				return dst, fmt.Errorf("%w: %d", ErrFlipRange, f.Index)
			}
			w := f.Index
			if f.Set {
				w |= 1 << 31
			}
			dst = binary.BigEndian.AppendUint32(dst, w)
		}
	case m.Op == OpQuery:
		dst = binary.BigEndian.AppendUint32(dst, m.RequesterAddr)
		dst = append(dst, m.URL...)
		dst = append(dst, 0)
	case hasURLPayload(m.Op):
		dst = append(dst, m.URL...)
		dst = append(dst, 0)
	}
	return dst, nil
}

// MarshalBinary encodes m.
func (m Message) MarshalBinary() ([]byte, error) {
	return m.Append(make([]byte, 0, m.EncodedLen()))
}

// parseHeader validates the fixed 20-byte header into m and returns the
// opcode-specific body. It allocates nothing.
func parseHeader(b []byte, m *Message) ([]byte, error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	m.Op = Opcode(b[0])
	m.Version = b[1]
	if m.Version != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, m.Version)
	}
	msgLen := int(binary.BigEndian.Uint16(b[2:4]))
	// A 16-bit length field cannot express datagrams above 64 KiB; such
	// messages are rejected at encode time.
	if msgLen != len(b) {
		return nil, fmt.Errorf("%w: header says %d, datagram is %d", ErrBadLength, msgLen, len(b))
	}
	m.ReqNum = binary.BigEndian.Uint32(b[4:8])
	m.Options = binary.BigEndian.Uint32(b[8:12])
	m.OptionData = binary.BigEndian.Uint32(b[12:16])
	m.SenderAddr = binary.BigEndian.Uint32(b[16:20])
	return b[HeaderLen:], nil
}

// parseDirUpdateHeader validates a DIRUPDATE extension header into u and
// returns the flip-record bytes and count. Flips are left for the caller,
// which decides where the decoded records live.
func parseDirUpdateHeader(body []byte, u *DirUpdate) (rest []byte, n int, err error) {
	if len(body) < DirUpdateHeaderLen {
		return nil, 0, ErrTruncated
	}
	u.Spec = hashing.Spec{
		FunctionNum:  int(binary.BigEndian.Uint16(body[0:2])),
		FunctionBits: int(binary.BigEndian.Uint16(body[2:4])),
	}
	u.Bits = binary.BigEndian.Uint32(body[4:8])
	n = int(binary.BigEndian.Uint32(body[8:12]))
	rest = body[DirUpdateHeaderLen:]
	if len(rest) != 4*n {
		return nil, 0, fmt.Errorf("%w: %d flip records declared, %d bytes present", ErrBadLength, n, len(rest))
	}
	return rest, n, nil
}

// decodeFlips appends the n flip records in rest onto dst.
func decodeFlips(dst []bloom.Flip, rest []byte, n int) []bloom.Flip {
	for i := 0; i < n; i++ {
		w := binary.BigEndian.Uint32(rest[4*i:])
		dst = append(dst, bloom.Flip{Index: w &^ (1 << 31), Set: w&(1<<31) != 0})
	}
	return dst
}

// Parse decodes one datagram into a fully caller-owned Message: the flip
// slice and DirUpdate are freshly allocated, so the result may be retained
// indefinitely. Hot receive loops use a Decoder instead, which reuses its
// scratch across messages.
func Parse(b []byte) (Message, error) {
	var m Message
	body, err := parseHeader(b, &m)
	if err != nil {
		return m, err
	}
	switch {
	case m.Op == OpDirUpdate:
		u := &DirUpdate{}
		rest, n, err := parseDirUpdateHeader(body, u)
		if err != nil {
			return m, err
		}
		u.Flips = decodeFlips(make([]bloom.Flip, 0, n), rest, n)
		m.Update = u
	case m.Op == OpQuery:
		if len(body) < 5 {
			return m, ErrTruncated
		}
		m.RequesterAddr = binary.BigEndian.Uint32(body[0:4])
		url, err := cutNUL(body[4:])
		if err != nil {
			return m, err
		}
		m.URL = url
	case hasURLPayload(m.Op):
		url, err := cutNUL(body)
		if err != nil {
			return m, err
		}
		m.URL = url
	}
	return m, nil
}

// A Decoder parses datagrams in place, without per-message allocation: the
// DirUpdate header and flip records decode into scratch the Decoder owns
// and reuses across calls. The returned Message's Update (and its Flips)
// are therefore only valid until the next Decode — exactly the borrow
// contract Handler documents. A decoded URL is still one string allocation
// (handlers retain URLs beyond the datagram's lifetime, so a view into the
// receive buffer would dangle); DIRUPDATE traffic, the mesh's volume
// driver, decodes with zero allocations steady-state.
//
// A Decoder must not be shared between goroutines without external
// serialization; each receive loop owns one.
type Decoder struct {
	upd   DirUpdate
	flips []bloom.Flip
}

// Decode parses one datagram. See the Decoder contract for the lifetime of
// the result.
func (d *Decoder) Decode(b []byte) (Message, error) {
	var m Message
	body, err := parseHeader(b, &m)
	if err != nil {
		return m, err
	}
	switch {
	case m.Op == OpDirUpdate:
		rest, n, err := parseDirUpdateHeader(body, &d.upd)
		if err != nil {
			return m, err
		}
		d.flips = decodeFlips(d.flips[:0], rest, n)
		d.upd.Flips = d.flips
		m.Update = &d.upd
	case m.Op == OpQuery:
		if len(body) < 5 {
			return m, ErrTruncated
		}
		m.RequesterAddr = binary.BigEndian.Uint32(body[0:4])
		url, err := cutNUL(body[4:])
		if err != nil {
			return m, err
		}
		m.URL = url
	case hasURLPayload(m.Op):
		url, err := cutNUL(body)
		if err != nil {
			return m, err
		}
		m.URL = url
	}
	return m, nil
}

func cutNUL(b []byte) (string, error) {
	if len(b) == 0 || b[len(b)-1] != 0 {
		return "", ErrBadURL
	}
	return string(b[:len(b)-1]), nil
}

// SplitUpdate partitions flips into DIRUPDATE messages of at most
// maxFlips records each (MaxFlipsPerMessage when maxFlips <= 0), all
// carrying the same spec and geometry. The prototype "sends updates
// whenever there are enough changes to fill an IP packet"; callers pick
// maxFlips accordingly (e.g. ~360 for a 1500-byte MTU).
func SplitUpdate(reqNum uint32, spec hashing.Spec, bits uint32, flips []bloom.Flip, maxFlips int) []Message {
	if maxFlips <= 0 || maxFlips > MaxFlipsPerMessage {
		maxFlips = MaxFlipsPerMessage
	}
	if len(flips) == 0 {
		return []Message{NewDirUpdate(reqNum, spec, bits, nil)}
	}
	var out []Message
	for start := 0; start < len(flips); start += maxFlips {
		end := start + maxFlips
		if end > len(flips) {
			end = len(flips)
		}
		out = append(out, NewDirUpdate(reqNum, spec, bits, flips[start:end]))
		reqNum++
	}
	return out
}

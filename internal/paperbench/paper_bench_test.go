// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkTableX/BenchmarkFigX runs the corresponding
// experiment and reports its headline quantities via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation;
// EXPERIMENTS.md records one full run against the paper's published
// values. Workload scale is set by the SUMMARYCACHE_SCALE environment
// variable (default 0.25; 1.0 ≈ 200k requests for the largest trace).
package paperbench

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"summarycache/internal/bench"
	"summarycache/internal/bloom"
	"summarycache/internal/experiments"
	"summarycache/internal/httpproxy"
	"summarycache/internal/sim"
	"summarycache/internal/tracegen"
)

func benchScale() float64 {
	if v := os.Getenv("SUMMARYCACHE_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.25
}

var (
	traceOnce sync.Once
	traceSets []experiments.TraceSet
	traceErr  error
)

func loadTraces(b *testing.B) []experiments.TraceSet {
	b.Helper()
	traceOnce.Do(func() {
		traceSets, traceErr = experiments.LoadAll(benchScale())
	})
	if traceErr != nil {
		b.Fatal(traceErr)
	}
	return traceSets
}

func traceByName(b *testing.B, name string) experiments.TraceSet {
	b.Helper()
	for _, ts := range loadTraces(b) {
		if ts.Name == name {
			return ts
		}
	}
	b.Fatalf("trace %s not loaded", name)
	return experiments.TraceSet{}
}

// BenchmarkTableI regenerates Table I: per-trace statistics (requests,
// clients, infinite cache size, maximum hit ratios under infinite cache).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sets := loadTraces(b)
		for _, ts := range sets {
			s := experiments.TableI(ts)
			if s.Requests == 0 {
				b.Fatal("empty trace")
			}
		}
	}
	for _, ts := range loadTraces(b) {
		s := experiments.TableI(ts)
		b.ReportMetric(100*s.MaxHitRatio, "maxHit%_"+ts.Name)
	}
}

// BenchmarkFig1 regenerates Figure 1: hit ratios of no-sharing / simple /
// single-copy / global(-10%) cooperative caching at cache sizes 0.5–20% of
// infinite, for every trace.
func BenchmarkFig1(b *testing.B) {
	sets := loadTraces(b)
	var rows []experiments.Fig1Row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, ts := range sets {
			r, err := experiments.Fig1(ts, nil)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, r...)
		}
	}
	// Headline metrics: the 10%-cache comparison on DEC.
	for _, r := range rows {
		if r.Trace == "DEC" && r.CacheFrac == 0.10 {
			b.ReportMetric(100*r.HitRatio, "hit%_"+r.Scheme.String())
		}
	}
}

// BenchmarkFig2 regenerates Figure 2: total hit ratio and error ratios
// versus the summary update threshold (0–10%), exact-directory summaries.
func BenchmarkFig2(b *testing.B) {
	sets := loadTraces(b)
	var last []experiments.Fig2Row
	for i := 0; i < b.N; i++ {
		for _, ts := range sets {
			rows, err := experiments.Fig2(ts, nil)
			if err != nil {
				b.Fatal(err)
			}
			if ts.Name == "DEC" {
				last = rows
			}
		}
	}
	for _, r := range last {
		b.ReportMetric(100*r.HitRatio, fmt.Sprintf("hit%%_th%g", 100*r.Threshold))
	}
}

// BenchmarkFig4 regenerates Figure 4: the Bloom filter false-positive
// probability versus bits per entry, at k=4 and at the optimal k,
// validated against the closed-form (0.6185)^(m/n) bound.
func BenchmarkFig4(b *testing.B) {
	const n = 1 << 20
	var p4, popt float64
	for i := 0; i < b.N; i++ {
		for _, lf := range []float64{2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32} {
			m := uint64(lf * n)
			p4 = bloom.FalsePositiveRate(m, n, 4)
			popt = bloom.MinFalsePositiveRate(m, n)
			if popt > p4+1e-15 {
				b.Fatal("optimal k beaten by k=4")
			}
		}
	}
	b.ReportMetric(100*bloom.FalsePositiveRateApprox(10*n, n, 4), "fp%_lf10_k4")
	b.ReportMetric(100*bloom.FalsePositiveRateApprox(10*n, n, 5), "fp%_lf10_k5")
	_ = p4
}

// summaryRowsFor runs the Figs. 5–8 / Table III comparison once per trace
// and caches it for the per-figure benchmarks.
var (
	sumOnce sync.Once
	sumRows map[string][]experiments.SummaryRow
	sumErr  error
)

func summaryRows(b *testing.B) map[string][]experiments.SummaryRow {
	b.Helper()
	sets := loadTraces(b)
	sumOnce.Do(func() {
		sumRows = make(map[string][]experiments.SummaryRow)
		for _, ts := range sets {
			rows, err := experiments.SummaryComparison(ts, nil)
			if err != nil {
				sumErr = err
				return
			}
			sumRows[ts.Name] = rows
		}
	})
	if sumErr != nil {
		b.Fatal(sumErr)
	}
	return sumRows
}

func reportSummaryMetric(b *testing.B, trace string, metric func(experiments.SummaryRow) float64) {
	for _, r := range summaryRows(b)[trace] {
		b.ReportMetric(metric(r), r.Label())
	}
}

// BenchmarkFig5 regenerates Figure 5: total hit ratio under each summary
// representation (ICP, exact-directory, server-name, Bloom 8/16/32).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		summaryRows(b)
	}
	reportSummaryMetric(b, "DEC", func(r experiments.SummaryRow) float64 { return 100 * r.HitRatio })
}

// BenchmarkFig6 regenerates Figure 6: false-hit ratio (per request, across
// all peers) under each summary representation.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		summaryRows(b)
	}
	reportSummaryMetric(b, "DEC", func(r experiments.SummaryRow) float64 { return 100 * r.FalseHit })
}

// BenchmarkFig7 regenerates Figure 7: inter-proxy protocol messages per
// user request under each summary representation versus ICP.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		summaryRows(b)
	}
	reportSummaryMetric(b, "DEC", func(r experiments.SummaryRow) float64 { return r.MsgsPerReq })
}

// BenchmarkFig8 regenerates Figure 8: inter-proxy protocol bytes per user
// request under the paper's message-size model.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		summaryRows(b)
	}
	reportSummaryMetric(b, "DEC", func(r experiments.SummaryRow) float64 { return r.BytesPerReq })
}

// BenchmarkTableIII regenerates Table III: summary memory as a percentage
// of the proxy cache size for each representation.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		summaryRows(b)
	}
	reportSummaryMetric(b, "DEC", func(r experiments.SummaryRow) float64 { return r.MemoryPct })
}

// BenchmarkAmortization is the update-batching ablation behind the Fig. 7
// discussion: the total message factor versus ICP as update batches grow
// from per-document (tiny-cache regime) to the prototype's packet-fill
// rule and beyond, toward the paper's big-cache regime.
func BenchmarkAmortization(b *testing.B) {
	ts := traceByName(b, "DEC")
	var rows []experiments.AmortRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.UpdateAmortization(ts, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ICPFactor, fmt.Sprintf("xICP_batch%d", r.MinUpdateDocs))
	}
}

// BenchmarkScalability regenerates the §V-F extrapolation: protocol
// messages per request and summary-table memory as the mesh grows, Bloom
// summary cache versus quadratic ICP.
func BenchmarkScalability(b *testing.B) {
	var rows []experiments.ScaleRow
	var err error
	counts := []int{4, 8, 16}
	reqs := 3000
	if benchScale() >= 1 {
		counts = []int{4, 8, 16, 32, 64}
		reqs = 4000
	}
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Scalability(counts, reqs)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MsgsPerReq, fmt.Sprintf("sc_msgs/req_n%d", r.Proxies))
		b.ReportMetric(r.ICPMsgsPerReq, fmt.Sprintf("icp_msgs/req_n%d", r.Proxies))
	}
}

// --- networked prototype benchmarks (Tables II, IV, V) ---

// benchLatency is the origin delay for networked benchmarks (the paper
// uses 1 s; loopback runs scale it down and compare ratios).
const benchLatency = 5 * time.Millisecond

func syntheticConfig(mode httpproxy.Mode, hitRatio float64) bench.SyntheticConfig {
	return bench.SyntheticConfig{
		Mode:              mode,
		Proxies:           4,
		ClientsPerProxy:   8,
		RequestsPerClient: 50,
		InherentHitRatio:  hitRatio,
		Disjoint:          true,
		OriginLatency:     benchLatency,
		CacheBytes:        32 << 20,
		Seed:              42,
	}
}

// BenchmarkTableII regenerates Table II: the no-ICP / ICP / SC-ICP
// comparison on the synthetic benchmark with no inter-proxy hits (ICP's
// worst case), at a 25% inherent hit ratio. Metrics: hit ratio, mean
// client latency (ms), and total UDP datagrams per mode.
func BenchmarkTableII(b *testing.B) {
	modes := []httpproxy.Mode{httpproxy.ModeNone, httpproxy.ModeICP, httpproxy.ModeSCICP}
	results := map[httpproxy.Mode]bench.Result{}
	for i := 0; i < b.N; i++ {
		for _, m := range modes {
			r, err := bench.RunSynthetic(syntheticConfig(m, 0.25))
			if err != nil {
				b.Fatal(err)
			}
			results[m] = r
		}
	}
	for _, m := range modes {
		r := results[m]
		b.ReportMetric(100*r.HitRatio, "hit%_"+m.String())
		b.ReportMetric(float64(r.MeanLatency.Microseconds())/1000, "lat_ms_"+m.String())
		b.ReportMetric(float64(r.UDPSent+r.UDPReceived), "udp_"+m.String())
	}
}

func replayBench(b *testing.B, a bench.Assignment) {
	reqs, _, err := tracegen.GeneratePreset(tracegen.UPisa, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	if len(reqs) > 3000 {
		reqs = reqs[:3000]
	}
	modes := []httpproxy.Mode{httpproxy.ModeNone, httpproxy.ModeICP, httpproxy.ModeSCICP}
	results := map[httpproxy.Mode]bench.Result{}
	for i := 0; i < b.N; i++ {
		for _, m := range modes {
			r, err := bench.RunReplay(bench.ReplayConfig{
				Mode: m, Proxies: 4, Workers: 20, Assignment: a,
				Trace: reqs, OriginLatency: benchLatency,
				CacheBytes: 16 << 20, MinUpdateFlips: 40,
			})
			if err != nil {
				b.Fatal(err)
			}
			results[m] = r
		}
	}
	for _, m := range modes {
		r := results[m]
		b.ReportMetric(100*r.HitRatio, "hit%_"+m.String())
		b.ReportMetric(float64(r.MeanLatency.Microseconds())/1000, "lat_ms_"+m.String())
		b.ReportMetric(float64(r.UDPSent+r.UDPReceived), "udp_"+m.String())
	}
}

// BenchmarkTableIV regenerates Table IV: the UPisa trace replay in the
// paper's experiment 3 (client-bound assignment), no-ICP vs ICP vs SC-ICP.
func BenchmarkTableIV(b *testing.B) { replayBench(b, bench.ClientBound) }

// BenchmarkTableV regenerates Table V: the UPisa trace replay in the
// paper's experiment 4 (round-robin assignment).
func BenchmarkTableV(b *testing.B) { replayBench(b, bench.RoundRobin) }

// BenchmarkSimThroughput measures raw simulator speed (requests simulated
// per second), the practical limit on experiment scale.
func BenchmarkSimThroughput(b *testing.B) {
	ts := traceByName(b, "UPisa")
	cfg := sim.Config{
		NumProxies: ts.Groups,
		CacheBytes: ts.CacheBytesPerProxy(0.10),
		Scheme:     sim.SimpleSharing,
		Summary: sim.SummaryConfig{
			Kind: sim.Bloom, UpdateThreshold: 0.01, LoadFactor: 16,
			AvgDocBytes: ts.AvgDocBytes,
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, ts.Requests); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ts.Requests)*b.N)/b.Elapsed().Seconds(), "reqs/s")
}

// BenchmarkHierarchy runs the parent/child extension (§VIII) on DEC:
// sibling mesh alone versus mesh + parent, reporting the origin-traffic
// reduction the extra tier buys.
func BenchmarkHierarchy(b *testing.B) {
	ts := traceByName(b, "DEC")
	var rows []experiments.HierarchyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Hierarchy(ts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		label := "flat"
		if r.WithParent {
			label = "parent"
		}
		b.ReportMetric(100*(r.HitRatio+r.ParentHitRatio), "served%_"+label)
	}
}

// BenchmarkDigestVsDelta runs the §VI transfer-strategy ablation on DEC,
// reporting update bytes per request for bit-flip deltas versus whole
// arrays at the threshold extremes.
func BenchmarkDigestVsDelta(b *testing.B) {
	ts := traceByName(b, "DEC")
	var rows []experiments.DigestRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.DigestVsDelta(ts, []float64{0.01, 0.10, 0.50})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.DeltaBytesReq, fmt.Sprintf("delta_B/req_th%g", 100*r.Threshold))
		b.ReportMetric(r.DigestBytesReq, fmt.Sprintf("digest_B/req_th%g", 100*r.Threshold))
	}
}

// BenchmarkLoadFactorSweep traces the memory↔false-hit knee on DEC.
func BenchmarkLoadFactorSweep(b *testing.B) {
	ts := traceByName(b, "DEC")
	var rows []experiments.LoadFactorRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.LoadFactorSweep(ts, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(100*r.FalseHit, fmt.Sprintf("falseHit%%_lf%g", r.LoadFactor))
	}
}

// Package buildtag exercises the loader's build-constraint filtering: the
// sibling excluded.go is gated behind a tag that is never set and references
// an identifier that does not exist, so including it would produce a type
// error. The loader must skip it and type-check this file alone.
package buildtag

// Kept is the only declaration the loader should see in this package.
func Kept() int { return 1 }

// Package ok is the stats-drift negative fixture: every registered
// counter has a matching exported Stats field, including a suffix match
// ("requests" → ClientRequests).
package ok

import "statsdrift/obs"

// Stats mirrors every registered counter.
type Stats struct {
	QueriesSent    uint64
	ClientRequests uint64
}

type metrics struct {
	queries  *obs.Counter
	requests *obs.Counter
}

func newMetrics(reg *obs.Registry) metrics {
	reg.CounterFunc("summarycache_ok_untracked_total", "callback-backed; rule skips CounterFunc", nil, func() uint64 { return 0 })
	return metrics{
		queries:  reg.Counter("summarycache_ok_queries_sent_total", "exact field match", nil),
		requests: reg.Counter("summarycache_ok_requests_total", "suffix field match", nil),
	}
}

package tracegen

import (
	"fmt"
	"math/rand"
	"testing"

	"summarycache/internal/stats"
	"summarycache/internal/trace"
)

func TestAnalyzeEmpty(t *testing.T) {
	st := AnalyzePopularity(nil)
	if st.UniqueDocs != 0 || st.Alpha != 0 {
		t.Fatalf("empty analysis = %+v", st)
	}
}

// A pure Zipf stream must fit back close to its configured exponent.
func TestFitZipfRecoversAlpha(t *testing.T) {
	for _, alpha := range []float64{0.6, 0.8, 1.0} {
		z := stats.MustNewZipf(20000, alpha)
		rng := rand.New(rand.NewSource(int64(alpha * 100)))
		reqs := make([]trace.Request, 200000)
		for i := range reqs {
			reqs[i] = trace.Request{URL: fmt.Sprintf("http://d/%d", z.Sample(rng)), Client: 0, Size: 1}
		}
		st := AnalyzePopularity(reqs)
		if d := st.Alpha - alpha; d < -0.12 || d > 0.12 {
			t.Errorf("alpha=%.2f: fitted %.3f, off by %.3f", alpha, st.Alpha, d)
		}
	}
}

// Generated preset traces must exhibit Zipf-like skew: strong top-share
// concentration and a fitted alpha in the web-trace band.
func TestPresetTracesAreZipfLike(t *testing.T) {
	reqs, cfg, err := GeneratePreset(DEC, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	st := AnalyzePopularity(reqs)
	if st.UniqueDocs == 0 {
		t.Fatal("no documents")
	}
	// Top 10% of documents must absorb far more than 10% of requests.
	if st.Top10Share < 0.3 {
		t.Errorf("top-10%% share %.3f too uniform", st.Top10Share)
	}
	if st.Top1Share >= st.Top10Share {
		t.Error("top-1% share cannot exceed top-10% share")
	}
	// Fitted skew should be in the neighborhood of the configured alpha
	// (locality reuse steepens the head slightly).
	if st.Alpha < cfg.ZipfAlpha-0.25 || st.Alpha > cfg.ZipfAlpha+0.45 {
		t.Errorf("fitted alpha %.3f far from configured %.2f", st.Alpha, cfg.ZipfAlpha)
	}
	// Web traces have substantial one-timer mass.
	if st.OneTimers < 0.1 || st.OneTimers > 0.95 {
		t.Errorf("one-timer fraction %.3f implausible", st.OneTimers)
	}
}

func TestFitZipfDegenerate(t *testing.T) {
	if fitZipf([]int{1, 1, 1}) != 0 {
		t.Error("all one-timers should not fit")
	}
	if fitZipf([]int{5, 5}) != 0 {
		t.Error("two points should not fit")
	}
	if fitZipf(nil) != 0 {
		t.Error("empty should not fit")
	}
}

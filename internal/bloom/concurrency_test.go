package bloom

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"testing"

	"summarycache/internal/hashing"
)

// Lock-free probes racing CAS writers: Test must never crash, and after the
// writers finish every added key must test positive.
func TestFilterTestVsApplyRace(t *testing.T) {
	f := MustNewFilter(1<<16, hashing.DefaultSpec)
	const keysPerWriter = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.Test(fmt.Sprintf("w%d-k%d", i%4, i%keysPerWriter))
				f.TestIndexes(f.Indexes(fmt.Sprintf("probe%d", i)))
			}
		}(r)
	}
	var ww sync.WaitGroup
	for w := 0; w < 4; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < keysPerWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				var flips []Flip
				for _, idx := range f.Indexes(key) {
					flips = append(flips, Flip{Index: uint32(idx), Set: true})
				}
				if err := f.Apply(flips); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	for w := 0; w < 4; w++ {
		for i := 0; i < keysPerWriter; i++ {
			if !f.Test(fmt.Sprintf("w%d-k%d", w, i)) {
				t.Fatalf("false negative after concurrent Apply: w%d-k%d", w, i)
			}
		}
	}
}

// The incremental population count must stay exact under concurrent CAS
// set/clear and bulk replacement.
func TestFilterOnesCountExactUnderConcurrency(t *testing.T) {
	f := MustNewFilter(1<<14, hashing.DefaultSpec)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				idx := uint64(rng.Intn(1 << 14))
				if rng.Intn(2) == 0 {
					f.SetBit(idx)
				} else {
					f.ClearBit(idx)
				}
				if i%1000 == 0 && g == 0 {
					f.Reset()
				}
			}
		}(g)
	}
	wg.Wait()
	var actual uint64
	for i := range f.words {
		actual += uint64(bits.OnesCount64(f.words[i].Load()))
	}
	if got := f.OnesCount(); got != actual {
		t.Fatalf("OnesCount = %d, popcount of words = %d", got, actual)
	}
}

// LoadSnapshot racing CAS writers must keep ones exact and leave the filter
// equal to some interleaving (we only assert the count invariant and that
// Snapshot round-trips).
func TestFilterSnapshotRoundTripUnderLoad(t *testing.T) {
	f := MustNewFilter(4096, hashing.DefaultSpec)
	for i := 0; i < 200; i++ {
		f.Add(fmt.Sprintf("seed%d", i))
	}
	snap := f.Snapshot()
	g := MustNewFilter(4096, hashing.DefaultSpec)
	if err := g.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if !g.Test(fmt.Sprintf("seed%d", i)) {
			t.Fatalf("snapshot lost key seed%d", i)
		}
	}
	if g.OnesCount() != f.OnesCount() {
		t.Fatalf("ones %d != %d after snapshot", g.OnesCount(), f.OnesCount())
	}
}

// The protocol-critical invariant: a replica built purely from drained
// journal flips must converge to the source's bit filter, even when flips
// were produced by racing Add/Remove and drained concurrently. Per-bit
// temporal order inside the journal is what makes this hold.
func TestCountingJournalReplicaConverges(t *testing.T) {
	cf := MustNewCountingFilter(1<<15, 4, hashing.DefaultSpec)
	cf.EnableJournal()
	replica := MustNewFilter(1<<15, hashing.DefaultSpec)

	var rmu sync.Mutex // replica applications must not interleave with each other
	drain := func() {
		flips := cf.DrainJournal()
		rmu.Lock()
		if err := replica.Apply(flips); err != nil {
			t.Error(err)
		}
		rmu.Unlock()
	}

	var wg sync.WaitGroup
	stopDrain := make(chan struct{})
	var dw sync.WaitGroup
	dw.Add(1)
	go func() { // concurrent drainer, like the publication loop
		defer dw.Done()
		for {
			select {
			case <-stopDrain:
				return
			default:
				drain()
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 17))
			live := map[string]int{}
			for i := 0; i < 4000; i++ {
				k := fmt.Sprintf("g%d-%d", g, rng.Intn(300))
				if live[k] > 0 && rng.Intn(3) == 0 {
					cf.Remove(k, nil)
					live[k]--
				} else {
					cf.Add(k, nil)
					live[k]++
				}
			}
			// Drain down to a deterministic end state: everything removed.
			for k, n := range live {
				for j := 0; j < n; j++ {
					cf.Remove(k, nil)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopDrain)
	dw.Wait()
	drain() // final catch-up

	src := cf.BitFilter()
	want, got := src.Snapshot(), replica.Snapshot()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("replica diverges from source at byte %d: %02x vs %02x (ones src=%d replica=%d)",
				i, want[i], got[i], src.OnesCount(), replica.OnesCount())
		}
	}
	if cf.OnesCount() != 0 {
		// All keys were removed (saturation aside); with 4-bit counters and
		// ≤ ~24 adds per key collisions can saturate, so only sanity-check.
		t.Logf("residual ones after full removal (saturated counters): %d", cf.OnesCount())
	}
}

// Parallel Add/Remove with per-goroutine key spaces: entries accounting and
// lock-free Test visibility.
func TestCountingParallelAddRemove(t *testing.T) {
	cf := MustNewCountingFilter(1<<15, 4, hashing.DefaultSpec)
	var wg sync.WaitGroup
	const (
		workers = 8
		keys    = 500
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				cf.Add(fmt.Sprintf("g%d-%d", g, i), nil)
			}
			for i := 0; i < keys; i += 2 {
				cf.Remove(fmt.Sprintf("g%d-%d", g, i), nil)
			}
		}(g)
	}
	stop := make(chan struct{})
	var pw sync.WaitGroup
	pw.Add(1)
	go func() { // lock-free probes racing the writers
		defer pw.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				cf.Test(fmt.Sprintf("g%d-%d", i%workers, i%keys))
				i++
			}
		}
	}()
	wg.Wait()
	close(stop)
	pw.Wait()
	if got, want := cf.Entries(), uint64(workers*keys/2); got != want {
		t.Fatalf("entries = %d, want %d", got, want)
	}
	for g := 0; g < workers; g++ {
		for i := 1; i < keys; i += 2 {
			if !cf.Test(fmt.Sprintf("g%d-%d", g, i)) {
				t.Fatalf("false negative for surviving key g%d-%d", g, i)
			}
		}
	}
}

// BenchmarkParallelTest measures the lock-free probe path under contention.
func BenchmarkParallelTest(b *testing.B) {
	f := MustNewFilter(1<<20, hashing.DefaultSpec)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://bench/doc%d", i)
		f.Add(keys[i])
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			f.Test(keys[i%len(keys)])
			i++
		}
	})
}

package origin

import (
	"io"
	"net/http"
	"testing"
	"time"
)

func startTest(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestSizedBody(t *testing.T) {
	s := startTest(t, Config{})
	for _, size := range []int{0, 1, 1000, 100000} {
		resp, body := get(t, DocURL(s.URL(), "doc1", int64(size), 0))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if len(body) != size {
			t.Fatalf("size %d: got %d bytes", size, len(body))
		}
	}
	st := s.Stats()
	if st.Requests != 4 || st.BodyBytes != 101001 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDefaultSize(t *testing.T) {
	s := startTest(t, Config{DefaultSize: 500})
	_, body := get(t, s.URL()+"/plain")
	if len(body) != 500 {
		t.Fatalf("default size: got %d", len(body))
	}
}

func TestVersionHeader(t *testing.T) {
	s := startTest(t, Config{})
	resp, _ := get(t, DocURL(s.URL(), "doc", 10, 7))
	if got := resp.Header.Get(VersionHeader); got != "7" {
		t.Fatalf("version header = %q", got)
	}
}

func TestBadSize(t *testing.T) {
	s := startTest(t, Config{})
	for _, q := range []string{"?size=abc", "?size=-5"} {
		resp, _ := get(t, s.URL()+"/doc"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", q, resp.StatusCode)
		}
	}
}

func TestMaxSizeCap(t *testing.T) {
	s := startTest(t, Config{MaxSize: 1000})
	_, body := get(t, DocURL(s.URL(), "doc", 5000, 0))
	if len(body) != 1000 {
		t.Fatalf("cap: got %d bytes", len(body))
	}
}

func TestLatency(t *testing.T) {
	const delay = 80 * time.Millisecond
	s := startTest(t, Config{Latency: delay})
	start := time.Now()
	get(t, DocURL(s.URL(), "doc", 10, 0))
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("response after %v, want ≥ %v", elapsed, delay)
	}
}

func TestHead(t *testing.T) {
	s := startTest(t, Config{})
	resp, err := http.Head(DocURL(s.URL(), "doc", 1234, 0))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.ContentLength != 1234 {
		t.Fatalf("HEAD content-length = %d", resp.ContentLength)
	}
	if s.Stats().BodyBytes != 0 {
		t.Fatal("HEAD transferred body bytes")
	}
}

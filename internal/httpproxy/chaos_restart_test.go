package httpproxy

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"path/filepath"
	"testing"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/faultnet"
	"summarycache/internal/origin"
	"summarycache/internal/persist"
	"summarycache/internal/testutil/leakcheck"
)

// TestChaosWarmRestartSCICP is the warm-restart soak: a 2-proxy SC-ICP
// mesh runs under injected faults, one proxy is killed mid-soak without
// a shutdown checkpoint (the in-process kill -9), and a replacement is
// booted on the same persist directory. The replacement must (a) serve
// the original working set from its recovered cache at least as well as
// the cold boot did, (b) restore a directory that exactly matches the
// recovered cache, and (c) reconverge bit-exactly with its sibling in
// both directions after re-peering — all with zero client-visible
// errors.
func TestChaosWarmRestartSCICP(t *testing.T) {
	leakcheck.Install(t)
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })

	base := chaosScenario()
	persistDir := filepath.Join(t.TempDir(), "nodeA")
	mkConfig := func(inj *faultnet.Injector, withPersist bool) Config {
		cfg := Config{
			Mode: ModeSCICP, CacheBytes: 32 << 20,
			Summary:          core.DirectoryConfig{ExpectedDocs: 2000, UpdateThreshold: 0.01},
			QueryTimeout:     300 * time.Millisecond,
			FetchTimeout:     2 * time.Second,
			FetchRetries:     8,
			FetchBackoff:     2 * time.Millisecond,
			BreakerThreshold: 10,
			BreakerCooldown:  200 * time.Millisecond,
			Faults:           inj,
		}
		if withPersist {
			cfg.Persist = &persist.Config{
				Dir:              persistDir,
				Fsync:            persist.FsyncInterval,
				FsyncInterval:    20 * time.Millisecond,
				SnapshotInterval: 50 * time.Millisecond,
			}
		}
		return cfg
	}

	injA := faultnet.New(base.Fork(1))
	injB := faultnet.New(base.Fork(2))
	a, err := Start(mkConfig(injA, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Start(mkConfig(injB, false))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.AddPeer(b.ICPAddr(), b.URL()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(a.ICPAddr(), a.URL()); err != nil {
		t.Fatal(err)
	}
	oldAAddr := a.ICPAddr()

	const (
		docs    = 25
		docSize = 2048
	)
	get := func(p *Proxy, r int) {
		t.Helper()
		path := fmt.Sprintf("restart/doc%d", r%docs)
		u := origin.DocURL(org.URL(), path, docSize, 0)
		resp, err := http.Get(p.URL() + ProxyPath + "?url=" + url.QueryEscape(u))
		if err != nil {
			t.Fatalf("request %d: client-visible transport error: %v", r, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("request %d: body read: %v", r, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: client-visible status %d: %s", r, resp.StatusCode, body)
		}
		if len(body) != docSize {
			t.Fatalf("request %d: body %d bytes, want %d", r, len(body), docSize)
		}
	}

	// Cold soak: every document through A twice (miss then hit), with B
	// pulling a share so both summaries carry state.
	for r := 0; r < 2*docs; r++ {
		get(a, r)
	}
	for r := 0; r < docs; r += 3 {
		get(b, r)
	}
	coldHits := a.Stats().LocalHits
	if coldHits == 0 {
		t.Fatal("cold soak produced no local hits; the warm comparison is vacuous")
	}

	// Let the periodic snapshot loop capture the populated cache, then
	// keep mutating so the journal tail has records newer than the last
	// checkpoint: a purge (an evict record) and a re-fetch (an insert).
	time.Sleep(120 * time.Millisecond)
	purged := origin.DocURL(org.URL(), "restart/doc0", docSize, 0)
	if !a.Purge(purged) {
		t.Fatal("purge found nothing; doc0 should be cached")
	}
	get(a, 0)
	if a.PersistStats().Snapshots < 2 {
		t.Fatalf("snapshot loop never ticked: %+v", a.PersistStats())
	}

	// The crash: no final checkpoint. Recovery must reassemble the state
	// from the last periodic snapshot plus the journal tail.
	if err := a.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	a2, err := Start(mkConfig(nil, true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a2.Close() })
	rec := a2.Recovery()
	if !rec.Recovered || rec.Entries == 0 {
		t.Fatalf("nothing recovered: %+v", rec)
	}
	// The restored directory must agree exactly with the restored cache —
	// the invariant every summary the node now advertises rests on.
	if got, want := int(a2.node.Directory().Docs()), a2.CacheLen(); got != want {
		t.Fatalf("restored directory claims %d docs, cache holds %d (recovery %+v)", got, want, rec)
	}

	// Re-peer both directions (A2's ports are new) and let the mesh
	// settle with faults off.
	injB.SetEnabled(false)
	b.RemovePeer(oldAAddr)
	if err := a2.AddPeer(b.ICPAddr(), b.URL()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(a2.ICPAddr(), a2.URL()); err != nil {
		t.Fatal(err)
	}
	if err := a2.Resync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Resync(); err != nil {
		t.Fatal(err)
	}

	// Warm soak: the same working set again. The recovered cache must do
	// at least as well as the cold boot did on identical traffic.
	for r := 0; r < 2*docs; r++ {
		get(a2, r)
	}
	warmHits := a2.Stats().LocalHits
	if warmHits < coldHits {
		t.Fatalf("warm restart served fewer local hits than the cold boot: warm %d < cold %d (recovery %+v)",
			warmHits, coldHits, rec)
	}

	// Bit-exact reconvergence, both directions: each side's replica must
	// equal the other side's authoritative filter once updates drain.
	a2.FlushSummary()
	b.FlushSummary()
	deadline := time.Now().Add(10 * time.Second)
	converged := func(p, q *Proxy) bool {
		snap, ok := p.node.PeerSummaries().ReplicaSnapshot(q.ICPAddr().String())
		return ok && bytes.Equal(snap, q.node.Directory().FilterSnapshot())
	}
	for !converged(a2, b) || !converged(b, a2) {
		if time.Now().After(deadline) {
			t.Fatalf("mesh never reconverged bit-exactly after the restart (a2->b %v, b->a2 %v)",
				converged(a2, b), converged(b, a2))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosWarmRestartCleanShutdown: a clean Close checkpoints the
// complete final state, so the next boot recovers everything without
// replaying a single journal record beyond the overlap window — and a
// second boot generation after that still works (generation chaining).
func TestChaosWarmRestartCleanShutdown(t *testing.T) {
	leakcheck.Install(t)
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	dir := t.TempDir()
	cfg := Config{
		Mode: ModeSCICP, CacheBytes: 8 << 20,
		Summary: core.DirectoryConfig{ExpectedDocs: 500, UpdateThreshold: 0.01},
		Persist: &persist.Config{Dir: dir, Fsync: persist.FsyncNever},
	}
	p, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const docs = 10
	for i := 0; i < docs; i++ {
		u := origin.DocURL(org.URL(), fmt.Sprintf("clean/doc%d", i), 512, 0)
		resp, err := http.Get(p.URL() + ProxyPath + "?url=" + url.QueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	for boot := 0; boot < 2; boot++ {
		p2, err := Start(cfg)
		if err != nil {
			t.Fatalf("boot %d: %v", boot, err)
		}
		rec := p2.Recovery()
		if !rec.Recovered || rec.Entries != docs {
			t.Fatalf("boot %d recovered %+v, want %d entries", boot, rec, docs)
		}
		if got := p2.CacheLen(); got != docs {
			t.Fatalf("boot %d cache holds %d docs, want %d", boot, got, docs)
		}
		if got, want := int(p2.node.Directory().Docs()), docs; got != want {
			t.Fatalf("boot %d directory claims %d docs, want %d", boot, got, want)
		}
		if err := p2.Close(); err != nil {
			t.Fatalf("boot %d close: %v", boot, err)
		}
	}
}

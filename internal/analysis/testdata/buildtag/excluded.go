//go:build neverenabled

// excluded.go must be dropped by the loader's build-constraint match: it
// references an undeclared identifier, so type-checking it alongside keep.go
// would fail the whole package.
package buildtag

func Broken() int { return doesNotExist }

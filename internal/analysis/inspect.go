package analysis

import "go/ast"

// walkStack traverses root in source order invoking fn for every node
// with the stack of enclosing nodes (outermost first, not including n
// itself). The stdlib has no parent links on ast nodes; several rules
// need "what context is this expression used in", which is exactly the
// enclosing-node stack.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// parent returns the immediate enclosing node, or nil at the root.
func parent(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// grandparent returns the second enclosing node, or nil.
func grandparent(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

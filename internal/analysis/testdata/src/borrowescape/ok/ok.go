// Package ok consumes borrowed messages within the contract: clone
// before keeping, copy scalars and owned strings, copy flip values,
// and read-only callees.
package ok

import (
	"net"

	"borrowescape/internal/icp"
)

type consumer struct {
	last  icp.Message
	url   string
	bits  uint32
	flips []icp.Flip
	total uint64
}

// Handle is registered as an icp.Handler below: everything it keeps is
// cloned or copied by value.
func (c *consumer) Handle(from *net.UDPAddr, m icp.Message) {
	c.last = m.Clone() // Clone launders the borrow
	c.url = m.URL      // URL strings are owned by contract
	if m.Update != nil {
		c.bits = m.Update.Bits                           // scalar copy
		c.flips = append(c.flips[:0], m.Update.Flips...) // flip values copied out
		apply(c, m.Update)                               // callee only reads
	}
	local := m // a local carrier that dies with the call
	_ = local
}

// apply reads the update without retaining anything borrow-carrying.
func apply(c *consumer, u *icp.DirUpdate) {
	for _, f := range u.Flips {
		c.total += f.Word
	}
}

var _ icp.Handler = (*consumer)(nil).Handle

// reencode clones a decoded message before handing it on.
var republish chan icp.Message

func reencode(d *icp.Decoder, frame []byte) {
	m, _ := d.Decode(frame)
	republish <- m.Clone()
}

// Package httpproxy implements the caching Web proxy of the paper's
// prototype experiments: an HTTP forward proxy with an LRU document cache
// that can cooperate with sibling proxies in one of three modes — no
// cooperation (the paper's "no-ICP" baseline), classic ICP (query every
// sibling on every miss), or summary-cache enhanced ICP (probe the local
// replicas of sibling summaries and query only promising siblings). It is
// the Go analog of the paper's modified Squid.
package httpproxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/faultnet"
	"summarycache/internal/icp"
	"summarycache/internal/lru"
	"summarycache/internal/meshhealth"
	"summarycache/internal/obs"
	"summarycache/internal/perfwatch"
	"summarycache/internal/persist"
	"summarycache/internal/tracing"
)

// docVersionHeader carries a document's version number on sibling and
// origin responses; versionParam is the query parameter that names the
// wanted version in version-aware mode (the test origin's convention).
const (
	docVersionHeader = "X-Doc-Version"
	versionParam     = "v"
)

// Resilience defaults. Each Config field below accepts 0 for the default
// and a negative value to disable the bound entirely (the seed's
// unbounded behavior, kept reachable for experiments).
const (
	// DefaultFetchTimeout bounds one HTTP fetch attempt end to end.
	DefaultFetchTimeout = 10 * time.Second
	// DefaultFetchRetries is how many times a retryable origin fetch
	// failure is retried (3 attempts total).
	DefaultFetchRetries = 2
	// DefaultFetchBackoff is the first retry's backoff; it doubles per
	// attempt, capped at 32× with ±50% jitter.
	DefaultFetchBackoff = 50 * time.Millisecond
	// maxBackoffFactor caps the exponential growth (50ms default base
	// tops out at 1.6s).
	maxBackoffFactor = 32
	// DefaultBreakerThreshold is the consecutive sibling-fetch failures
	// that trip a peer's circuit breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long a tripped breaker stays open
	// before admitting a half-open probe fetch.
	DefaultBreakerCooldown = 5 * time.Second
	// DefaultReadHeaderTimeout bounds a client's request-header write, so
	// slow-header (slowloris-style) clients cannot pin handler resources.
	DefaultReadHeaderTimeout = 10 * time.Second
	// DefaultIdleTimeout reclaims idle keep-alive client connections.
	DefaultIdleTimeout = 2 * time.Minute
)

// Mode selects the cooperation protocol.
type Mode int

// The three configurations of Tables II, IV and V.
const (
	// ModeNone: proxies do not cooperate (the "no-ICP" rows).
	ModeNone Mode = iota
	// ModeICP: classic ICP — multicast a query to every sibling on every
	// local miss (the "ICP" rows).
	ModeICP
	// ModeSCICP: summary-cache enhanced ICP (the "SC-ICP" rows).
	ModeSCICP
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "no-ICP"
	case ModeICP:
		return "ICP"
	case ModeSCICP:
		return "SC-ICP"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// CacheOnlyPath is the sibling-fetch endpoint: it serves a document from
// the cache without ever fetching on a miss, so sibling fetches cannot
// recurse (a sibling proxy "can not ask a sibling proxy to fetch a
// document from the server").
const CacheOnlyPath = "/__summarycache/cacheonly"

// ProxyPath is the explicit-form proxy endpoint for clients that do not
// speak absolute-form HTTP: GET /__summarycache/proxy?url=<target>.
const ProxyPath = "/__summarycache/proxy"

// Config parameterizes a Proxy.
type Config struct {
	// ListenAddr is the HTTP listen address (default "127.0.0.1:0").
	ListenAddr string
	// ICPAddr is the UDP listen address for ICP traffic (default
	// "127.0.0.1:0"; unused in ModeNone).
	ICPAddr string
	// Mode selects the cooperation protocol.
	Mode Mode
	// CacheBytes is the document-cache capacity (the paper's benchmark
	// gives each proxy 75 MB).
	CacheBytes int64
	// MaxObjectSize caps cacheable documents (0: the paper's 250 KB).
	MaxObjectSize int64
	// CacheShards sets the document cache's lock-stripe count (0: derived
	// from GOMAXPROCS; see lru.Config.Shards). Sharding only engages when
	// the capacity is large enough that every shard can hold a
	// maximum-size object, so small test caches keep exact LRU order.
	CacheShards int
	// Summary configures the local directory summary (ModeSCICP).
	Summary core.DirectoryConfig
	// ICP tunes the ICP plane's pooling and batching: the send-ring depth
	// behind asynchronous DIRUPDATE transmission and the publication-path
	// flip coalescing (see icp.Config). The zero value selects every
	// default.
	ICP icp.Config
	// MinUpdateFlips forwards to core.NodeConfig.MinFlipsToPublish
	// (ModeSCICP): 0 keeps the prototype's fill-an-IP-packet batching.
	MinUpdateFlips int
	// ParentURL, when set, routes misses through a parent proxy's
	// ProxyPath endpoint instead of contacting origins directly — the
	// hierarchical configuration of the paper's §VIII ("a proxy ... can
	// ask a parent proxy to [fetch a document from the server]").
	ParentURL string
	// VersionAware makes the proxy distinguish document versions: the
	// versionParam query parameter is stripped from the target to form the
	// cache key, the stored version rides the docVersionHeader on sibling
	// responses, and a delivered version that does not match the wanted one
	// is classified stale — a local stale copy counts as a miss, a stale
	// sibling delivery as a stale hit (the paper's remote stale hits).
	// Default off: the target string is the cache key and versions are
	// never compared, the seed's behavior.
	VersionAware bool
	// FalseMissAuditEvery, when positive, audits every Nth unresolved
	// lookup for false misses by querying the siblings whose summaries said
	// no (ModeSCICP; forwarded to core.NodeConfig.FalseMissAuditEvery).
	// Accounting only — a detected false miss never changes the lookup's
	// result. 0: auditing disabled.
	FalseMissAuditEvery int
	// SingleCopy enables the paper's single-copy sharing scheme: a
	// document served by a sibling is NOT cached locally ("a proxy does
	// not cache documents fetched from another proxy"), conserving space
	// at the cost of repeated sibling fetches. Default (false) is the
	// ICP-style simple sharing the paper's prototype implements.
	SingleCopy bool
	// QueryTimeout bounds ICP query waits.
	QueryTimeout time.Duration
	// FetchTimeout bounds each HTTP fetch attempt — origin, parent, or
	// sibling — covering dial, response headers, and body. One hung
	// origin must cost at most one timeout, never a wedged handler
	// goroutine. 0: DefaultFetchTimeout; negative: unbounded.
	FetchTimeout time.Duration
	// FetchRetries is how many times a failed origin fetch is retried.
	// Transport errors, 5xx statuses and truncated bodies are retryable;
	// other non-200 statuses are permanent. 0: DefaultFetchRetries;
	// negative: no retries.
	FetchRetries int
	// FetchBackoff is the initial retry backoff, doubled each retry and
	// capped, with ±50% jitter so a mesh recovering from a shared origin
	// outage does not retry in lockstep. 0: DefaultFetchBackoff.
	FetchBackoff time.Duration
	// BreakerThreshold trips a sibling's circuit breaker after this many
	// consecutive failed cache-only fetches; while open, nominated
	// documents go straight to the origin (a false hit, not an error) and
	// the SC-ICP node drops the sibling's summary so it stops attracting
	// nominations. 0: DefaultBreakerThreshold; negative: breaker disabled.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before one
	// half-open probe fetch is admitted. 0: DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// ReadHeaderTimeout bounds how long the listener waits for a client's
	// request headers. 0: DefaultReadHeaderTimeout; negative: unbounded.
	ReadHeaderTimeout time.Duration
	// IdleTimeout reclaims idle keep-alive client connections.
	// 0: DefaultIdleTimeout; negative: unbounded.
	IdleTimeout time.Duration
	// Faults, when set, injects that scenario's faults into this proxy's
	// network edges: its ICP UDP socket (loss, delay, duplication,
	// reordering) and its outbound HTTP transport (connect failures,
	// stalls, truncated bodies, 5xx bursts). The injected-fault counters
	// register in the metrics registry. Nil: zero-overhead passthrough —
	// no wrapper is interposed at all.
	Faults *faultnet.Injector
	// Metrics, when set, is the registry the proxy (and its SC-ICP node)
	// instruments itself against; series carry a proxy="<http addr>"
	// label so a whole mesh can share one registry and one /metrics
	// exposition. Nil: a private registry is created.
	Metrics *obs.Registry
	// Logger, when set, receives structured events from the proxy's
	// protocol node (peer transitions, summary publications). Nil:
	// events are discarded.
	Logger *slog.Logger
	// Tracer, when set, records a distributed trace per client request —
	// spans for the local lookup, each peer summary consulted (with its
	// decision audit), the ICP round-trip, sibling fetches, and origin
	// fetches — retained per the tracer's head/tail sampling policy and
	// served at /debug/traces. A whole mesh may share one Tracer (as with
	// Metrics) or each proxy may own one. Nil: tracing disabled; the
	// local-hit hot path performs no extra allocation.
	Tracer *tracing.Tracer
	// Persist, when set, enables warm restarts: the document cache, the
	// local directory filter, and the peer summary replicas are
	// checkpointed to Persist.Dir (every Persist.SnapshotInterval, and
	// once more on a clean Close), with cache mutations journaled between
	// checkpoints. A proxy restarted on the same directory recovers its
	// state before serving — see Recovery for what the boot found. Nil:
	// persistence disabled, the seed's memory-only behavior.
	Persist *persist.Config
	// Perf, when set, receives the sub-span stage timings only this layer
	// can see — document-cache get/insert and the SC-ICP node's DIRUPDATE
	// encode/apply and per-reply RTT — completing the per-stage latency
	// decomposition the Watch assembles from the tracer's spans. Wire the
	// same Watch as Tracer's Config.Sink to get the span-level stages and
	// the SLO engine. Nil: no timing hooks are installed at all.
	Perf *perfwatch.Watch
}

// Stats counts proxy activity.
type Stats struct {
	ClientRequests uint64
	LocalHits      uint64
	RemoteHits     uint64 // misses served from a sibling cache
	Misses         uint64 // served from the origin
	// FalseHits counts requests that fell through to the origin after a
	// sibling indication failed: summaries nominated candidates that all
	// replied MISS, or a sibling claimed a HIT it could not deliver.
	FalseHits uint64
	// StaleHits counts sibling deliveries of an out-of-date version
	// (version-aware mode; the request still fell through to the origin).
	StaleHits uint64
	// LocalStale counts local lookups that found a cached but out-of-date
	// version (version-aware mode; treated as misses).
	LocalStale    uint64
	OriginFetches uint64
	PeerFetches   uint64 // sibling cache-only fetches issued
	// Retries counts additional origin fetch attempts after retryable
	// failures (each logical fetch still counts once in OriginFetches).
	Retries uint64
	// BreakerSkips counts sibling fetches suppressed by an open circuit
	// breaker (each becomes an origin fallback, classed a false hit).
	BreakerSkips uint64
	// HTTPMessages approximates the paper's TCP packet accounting at the
	// application level: every HTTP transaction is a request plus a
	// response.
	HTTPMessages uint64
	// InflightRequests is the instantaneous number of client requests
	// being served (the summarycache_proxy_inflight_requests gauge).
	InflightRequests int64
	// RequestSeconds summarizes client request latency across all
	// outcomes (the summarycache_proxy_request_seconds histograms).
	RequestSeconds obs.HistogramSnapshot
	// UDP mirrors the paper's netstat UDP counters (zero in ModeNone).
	UDP icp.Stats
	// Node carries summary-protocol counters (ModeSCICP only).
	Node core.NodeStats
}

// Request outcomes, the label values splitting the latency histogram: the
// hit classes of the paper's tables plus the false-hit class its summary
// analysis revolves around.
const (
	outcomeLocalHit  = "local_hit"
	outcomeRemoteHit = "remote_hit"
	outcomeMiss      = "miss"
	outcomeFalseHit  = "false_hit"
	outcomeStaleHit  = "stale_hit"
)

// proxyMetrics are the registry-backed instruments behind Stats.
type proxyMetrics struct {
	clientReqs, localHits, remoteHits *obs.Counter
	misses, falseHits                 *obs.Counter
	staleHits, localStale             *obs.Counter
	originFetches, peerFetches        *obs.Counter
	retries, breakerSkips             *obs.Counter
	inflight                          *obs.Gauge
	latency                           map[string]*obs.Histogram // by outcome
}

func newProxyMetrics(reg *obs.Registry, labels obs.Labels) proxyMetrics {
	m := proxyMetrics{
		clientReqs: reg.Counter("summarycache_proxy_requests_total",
			"client requests served", labels),
		localHits: reg.Counter("summarycache_proxy_local_hits_total",
			"requests served from the local cache", labels),
		remoteHits: reg.Counter("summarycache_proxy_remote_hits_total",
			"requests served from a sibling cache", labels),
		misses: reg.Counter("summarycache_proxy_misses_total",
			"requests served from the origin", labels),
		falseHits: reg.Counter("summarycache_proxy_false_hits_total",
			"origin fetches preceded by a failed sibling indication", labels),
		staleHits: reg.Counter("summarycache_proxy_stale_hits_total",
			"sibling deliveries of an out-of-date document version", labels),
		localStale: reg.Counter("summarycache_proxy_local_stale_total",
			"local lookups that found a cached but out-of-date version", labels),
		originFetches: reg.Counter("summarycache_proxy_origin_fetches_total",
			"fetches issued to the origin (or parent)", labels),
		peerFetches: reg.Counter("summarycache_proxy_peer_fetches_total",
			"sibling cache-only fetches issued", labels),
		retries: reg.Counter("summarycache_proxy_retries_total",
			"origin fetch attempts repeated after retryable failures", labels),
		breakerSkips: reg.Counter("summarycache_proxy_breaker_skips_total",
			"sibling fetches suppressed by an open circuit breaker", labels),
		inflight: reg.Gauge("summarycache_proxy_inflight_requests",
			"client requests currently being served", labels),
		latency: make(map[string]*obs.Histogram),
	}
	for _, o := range []string{outcomeLocalHit, outcomeRemoteHit, outcomeMiss, outcomeFalseHit, outcomeStaleHit} {
		m.latency[o] = reg.Histogram("summarycache_proxy_request_seconds",
			"client request latency by outcome", labels.With("outcome", o), nil)
	}
	return m
}

// Proxy is a running caching proxy.
type Proxy struct {
	cfg   Config
	cache *lru.Cache // entries carry their document bodies (lru.Entry.Body)

	node    *core.Node // ModeSCICP
	icpConn *icp.Conn  // ModeICP

	peerMu   sync.RWMutex
	icpPeers []*net.UDPAddr
	peerHTTP map[string]string // ICP addr string -> sibling HTTP base URL

	// breakers holds one circuit per sibling (nil map entries never
	// exist; a nil breakers map means the breaker is disabled).
	brMu     sync.Mutex
	breakers map[string]*breaker

	// Resolved resilience knobs (Config defaults applied once at Start).
	fetchTimeout     time.Duration // 0: unbounded
	fetchRetries     int
	fetchBackoff     time.Duration
	breakerThreshold int // <= 0: disabled
	breakerCooldown  time.Duration

	ln     net.Listener
	srv    *http.Server
	client *http.Client

	metrics   proxyMetrics
	reg       *obs.Registry
	health    *obs.Health            // non-node modes; ModeSCICP delegates to the node
	tracer    *tracing.Tracer        // nil: tracing disabled
	decisions *meshhealth.Accounting // per-peer decision taxonomy

	// Warm-restart persistence (nil store: disabled).
	store       *persist.Store
	recovery    persist.RecoveryStats
	snapStop    chan struct{} // nil: no periodic snapshot loop
	snapDone    chan struct{}
	persistOnce sync.Once // shutdownPersist runs at most once
}

// resolveDuration applies the 0=default / negative=disabled convention.
func resolveDuration(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// resolveCount applies the 0=default / negative=disabled convention.
func resolveCount(v, def int) int {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// Start launches a proxy.
func Start(cfg Config) (*Proxy, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.ICPAddr == "" {
		cfg.ICPAddr = "127.0.0.1:0"
	}
	if cfg.CacheBytes <= 0 {
		return nil, fmt.Errorf("httpproxy: CacheBytes must be positive, got %d", cfg.CacheBytes)
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = core.DefaultQueryTimeout
	}
	p := &Proxy{
		cfg:              cfg,
		peerHTTP:         make(map[string]string),
		fetchTimeout:     resolveDuration(cfg.FetchTimeout, DefaultFetchTimeout),
		fetchRetries:     resolveCount(cfg.FetchRetries, DefaultFetchRetries),
		fetchBackoff:     resolveDuration(cfg.FetchBackoff, DefaultFetchBackoff),
		breakerThreshold: resolveCount(cfg.BreakerThreshold, DefaultBreakerThreshold),
		breakerCooldown:  resolveDuration(cfg.BreakerCooldown, DefaultBreakerCooldown),
	}
	if p.breakerThreshold > 0 {
		p.breakers = make(map[string]*breaker)
	}
	// The fetch client is bounded at every stage: dial, response headers
	// (so an origin that accepts but never answers costs one timeout, not
	// a wedged handler goroutine), and — via each attempt's context — the
	// body. Config.Faults interposes its fault-injecting transport here;
	// nil leaves the raw transport untouched.
	transport := &http.Transport{
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     30 * time.Second,
	}
	if p.fetchTimeout > 0 {
		transport.DialContext = (&net.Dialer{Timeout: p.fetchTimeout}).DialContext
		transport.ResponseHeaderTimeout = p.fetchTimeout
	}
	var rt http.RoundTripper = transport
	if cfg.Faults != nil {
		rt = cfg.Faults.Transport(rt)
	}
	p.client = &http.Client{Transport: rt}
	cacheCfg := lru.Config{
		Capacity:      cfg.CacheBytes,
		Shards:        cfg.CacheShards,
		MaxObjectSize: cfg.MaxObjectSize,
		OnInsert:      p.onInsert,
		OnEvict:       p.onEvict,
	}
	if perf := cfg.Perf; perf != nil {
		// Map the cache's op names onto perfwatch stages without a
		// per-call string concatenation.
		cacheCfg.OpTiming = func(op string, d time.Duration) {
			switch op {
			case lru.OpGet:
				perf.StageTiming(perfwatch.StageLRUGet, d)
			case lru.OpInsert:
				perf.StageTiming(perfwatch.StageLRUInsert, d)
			}
		}
	}
	cache, err := lru.NewCache(cacheCfg)
	if err != nil {
		return nil, err
	}
	p.cache = cache

	// The HTTP listener comes first: its bound address labels every
	// metric series this proxy registers.
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("httpproxy: listen %q: %w", cfg.ListenAddr, err)
	}
	p.ln = ln
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p.reg = reg
	labels := obs.L("proxy", ln.Addr().String())
	p.metrics = newProxyMetrics(reg, labels)
	p.registerCacheMetrics(reg, labels)
	p.tracer = cfg.Tracer
	p.decisions = meshhealth.New(reg, labels)

	var sockWrap icp.SocketWrapper
	if cfg.Faults != nil {
		inj := cfg.Faults
		sockWrap = func(c icp.PacketConn) icp.PacketConn { return inj.WrapUDP(c) }
		for _, kind := range faultnet.Kinds {
			kind := kind
			reg.CounterFunc("summarycache_faultnet_injected_total",
				"faults injected into this proxy's network paths",
				labels.With("kind", kind),
				func() uint64 { return inj.Count(kind) })
		}
	}

	switch cfg.Mode {
	case ModeNone:
		// no protocol endpoint
	case ModeICP:
		conn, err := icp.ListenWith(cfg.ICPAddr, icp.ListenConfig{
			Handler: p.handleICP,
			Wrap:    sockWrap,
			Config:  cfg.ICP,
		})
		if err != nil {
			_ = ln.Close() // the ICP listen failure is the error worth reporting
			return nil, err
		}
		p.icpConn = conn
		conn.Start()
	case ModeSCICP:
		nodeCfg := core.NodeConfig{
			ListenAddr:          cfg.ICPAddr,
			Directory:           cfg.Summary,
			HasDocument:         p.cache.Contains,
			MinFlipsToPublish:   cfg.MinUpdateFlips,
			QueryTimeout:        cfg.QueryTimeout,
			SocketWrapper:       sockWrap,
			ICP:                 cfg.ICP,
			Metrics:             reg,
			Logger:              cfg.Logger,
			Tracer:              cfg.Tracer,
			Decisions:           p.decisions,
			FalseMissAuditEvery: cfg.FalseMissAuditEvery,
		}
		if cfg.Perf != nil {
			// Only set for a live Watch: the node gates on a nil func, so
			// a disabled Watch must not install a non-nil method value.
			nodeCfg.StageTiming = cfg.Perf.StageTiming
		}
		node, err := core.NewNode(nodeCfg)
		if err != nil {
			_ = ln.Close() // the node startup failure is the error worth reporting
			return nil, err
		}
		p.node = node
	default:
		_ = ln.Close() // the unknown-mode error is the one worth reporting
		return nil, fmt.Errorf("httpproxy: unknown mode %v", cfg.Mode)
	}
	if p.node == nil {
		p.health = obs.NewHealth()
	}

	// Persistence comes after the protocol endpoint exists (recovery
	// reinstalls directory and replica state into the node) and before the
	// listener serves (the first client request must see the warm cache).
	if err := p.startPersistence(reg, labels); err != nil {
		_ = ln.Close()
		_ = p.closeProtocol()
		return nil, err
	}

	// The listener is hardened against slow-header clients and idle
	// connection buildup; both bounds are configurable, neither can be
	// accidentally unbounded.
	p.srv = &http.Server{
		Handler:           p,
		ReadHeaderTimeout: resolveDuration(cfg.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		IdleTimeout:       resolveDuration(cfg.IdleTimeout, DefaultIdleTimeout),
	}
	go p.srv.Serve(ln)
	return p, nil
}

// registerCacheMetrics re-exports the document cache's own accounting
// (entries, bytes, evictions by cause, staleness invalidations) into the
// registry as scrape-time reads — one source of truth.
func (p *Proxy) registerCacheMetrics(reg *obs.Registry, labels obs.Labels) {
	reg.GaugeFunc("summarycache_cache_entries",
		"documents in the local cache", labels,
		func() float64 { return float64(p.cache.Len()) })
	reg.GaugeFunc("summarycache_cache_bytes",
		"bytes in the local cache", labels,
		func() float64 { return float64(p.cache.Bytes()) })
	reg.CounterFunc("summarycache_cache_evictions_total",
		"documents displaced by LRU replacement", labels.With("reason", "capacity"),
		func() uint64 { return p.cache.Counters().EvictedCapacity })
	reg.CounterFunc("summarycache_cache_evictions_total",
		"documents explicitly removed", labels.With("reason", "removed"),
		func() uint64 { return p.cache.Counters().Removed })
	reg.CounterFunc("summarycache_cache_invalidations_total",
		"staleness invalidations: cached documents replaced by a new version",
		labels,
		func() uint64 { return p.cache.Counters().Updated })
	reg.CounterFunc("summarycache_cache_lock_contentions_total",
		"shard-lock acquisitions that found the lock held", labels,
		func() uint64 { return p.cache.Counters().LockContentions })
	reg.CounterFunc("summarycache_cache_clock_ticks_total",
		"recency-clock advances (one per stamped cache operation)", labels,
		func() uint64 { return p.cache.ClockTicks() })
	for i := 0; i < p.cache.Shards(); i++ {
		i := i
		sl := labels.With("shard", strconv.Itoa(i))
		reg.GaugeFunc("summarycache_cache_shard_entries",
			"documents held by this cache shard", sl,
			func() float64 { return float64(p.cache.ShardStat(i).Entries) })
		reg.GaugeFunc("summarycache_cache_shard_bytes",
			"bytes held by this cache shard", sl,
			func() float64 { return float64(p.cache.ShardStat(i).Bytes) })
		reg.CounterFunc("summarycache_cache_shard_lock_contentions_total",
			"contended lock acquisitions on this cache shard", sl,
			func() uint64 { return p.cache.ShardStat(i).LockContentions })
	}
}

// Registry returns the registry the proxy instruments itself against —
// what an admin endpoint serves.
func (p *Proxy) Registry() *obs.Registry { return p.reg }

// Health returns the peer up/down tracker backing /healthz. In ModeSCICP
// it is the protocol node's tracker (driven by StartHealthChecks); in the
// other modes peers are registered but never probed, so they stay up.
func (p *Proxy) Health() *obs.Health {
	if p.node != nil {
		return p.node.Health()
	}
	return p.health
}

// StartHealthChecks begins probing SC-ICP peers (no-op stop function in
// the other modes, which have no prober). The prober's verdicts are fed
// to the per-sibling circuit breakers — a peer found down by UDP probing
// has its breaker forced open (no point attempting HTTP fetches), and a
// recovery resets it (the probe round-trip is the mesh-level half-open
// trial) — before any caller-supplied OnChange observes the transition.
func (p *Proxy) StartHealthChecks(cfg core.HealthConfig) (stop func()) {
	if p.node == nil {
		return func() {}
	}
	user := cfg.OnChange
	cfg.OnChange = func(peer *net.UDPAddr, up bool) {
		if br := p.breakerFor(peer.String()); br != nil {
			if up {
				br.Reset()
			} else {
				br.ForceOpen()
			}
		}
		if user != nil {
			user(peer, up)
		}
	}
	return p.node.StartHealthChecks(cfg)
}

func (p *Proxy) closeProtocol() error {
	var firstErr error
	if p.icpConn != nil {
		firstErr = p.icpConn.Close()
	}
	if p.node != nil {
		if err := p.node.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close shuts the proxy down. Both the HTTP listener and the protocol
// endpoint are torn down regardless of errors; the first failure is
// reported. With persistence enabled, a final checkpoint captures the
// complete state so the next boot replays no journal.
func (p *Proxy) Close() error {
	err := p.srv.Close()
	if perr := p.closeProtocol(); err == nil {
		err = perr
	}
	if serr := p.shutdownPersist(true); err == nil {
		err = serr
	}
	return err
}

// CloseAbrupt tears the proxy down without the final checkpoint — the
// crash persistence is built for, usable in-process where a real kill -9
// is not. Whatever the journal holds at this instant is exactly what a
// killed process would leave behind (a kill preserves the page cache, so
// unsynced appends survive it just as they survive this). The next Start
// on the same persist directory must recover by snapshot-plus-journal
// replay.
func (p *Proxy) CloseAbrupt() error {
	err := p.srv.Close()
	if perr := p.closeProtocol(); err == nil {
		err = perr
	}
	if serr := p.shutdownPersist(false); err == nil {
		err = serr
	}
	return err
}

// URL returns the proxy's HTTP base URL.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// ICPAddr returns the proxy's ICP endpoint (nil in ModeNone).
func (p *Proxy) ICPAddr() *net.UDPAddr {
	switch p.cfg.Mode {
	case ModeICP:
		return p.icpConn.Addr()
	case ModeSCICP:
		return p.node.Addr()
	}
	return nil
}

// Mode returns the cooperation mode.
func (p *Proxy) Mode() Mode { return p.cfg.Mode }

// AddPeer registers a sibling by its ICP endpoint and HTTP base URL.
// Re-adding a known ICP endpoint updates its HTTP URL in place.
func (p *Proxy) AddPeer(icpAddr *net.UDPAddr, httpURL string) error {
	if p.cfg.Mode == ModeNone {
		return errors.New("httpproxy: ModeNone proxies have no peers")
	}
	id := icpAddr.String()
	p.peerMu.Lock()
	if _, known := p.peerHTTP[id]; !known {
		p.icpPeers = append(p.icpPeers, icpAddr)
	}
	p.peerHTTP[id] = httpURL
	p.peerMu.Unlock()
	p.registerBreaker(id)
	if p.cfg.Mode == ModeSCICP {
		return p.node.AddPeer(icpAddr)
	}
	p.health.SetPeer(id, true)
	return nil
}

// RemovePeer drops a sibling: its ICP endpoint, HTTP mapping, circuit
// breaker, summary replica (ModeSCICP), decision accounting, and — the
// part peer churn gets wrong by default — every metric series labeled
// with the departed peer, so /metrics stops exposing stale series.
func (p *Proxy) RemovePeer(icpAddr *net.UDPAddr) {
	id := icpAddr.String()
	p.peerMu.Lock()
	if _, known := p.peerHTTP[id]; known {
		delete(p.peerHTTP, id)
		kept := p.icpPeers[:0]
		for _, a := range p.icpPeers {
			if a.String() != id {
				kept = append(kept, a)
			}
		}
		p.icpPeers = kept
	}
	p.peerMu.Unlock()
	if p.breakers != nil {
		p.brMu.Lock()
		delete(p.breakers, id)
		p.brMu.Unlock()
	}
	if p.node != nil {
		p.node.RemovePeer(icpAddr)
	} else if p.health != nil {
		p.health.RemovePeer(id)
	}
	p.decisions.RemovePeer(id)
	// Sweep anything else labeled for this peer under the proxy's label
	// set (the breaker-state gauge in particular).
	p.reg.Unregister(obs.L("proxy", p.ln.Addr().String(), "peer", id))
}

// registerBreaker creates the sibling's circuit (once) and exposes its
// state as a gauge: 0 closed, 1 open, 2 half-open.
func (p *Proxy) registerBreaker(id string) {
	if p.breakers == nil {
		return
	}
	p.brMu.Lock()
	_, exists := p.breakers[id]
	if !exists {
		p.breakers[id] = newBreaker(p.breakerThreshold, p.breakerCooldown)
	}
	br := p.breakers[id]
	p.brMu.Unlock()
	if !exists {
		p.reg.GaugeFunc("summarycache_proxy_breaker_state",
			"sibling circuit state (0 closed, 1 open, 2 half-open)",
			obs.L("proxy", p.ln.Addr().String(), "peer", id),
			func() float64 { return float64(br.State()) })
	}
}

// breakerFor returns the sibling's circuit, or nil when disabled/unknown.
func (p *Proxy) breakerFor(id string) *breaker {
	if p.breakers == nil {
		return nil
	}
	p.brMu.Lock()
	defer p.brMu.Unlock()
	return p.breakers[id]
}

// BreakerState reports the sibling's circuit position (BreakerClosed for
// unknown peers or when the breaker is disabled) — diagnostics and tests.
func (p *Proxy) BreakerState(icpAddr string) BreakerState {
	if br := p.breakerFor(icpAddr); br != nil {
		return br.State()
	}
	return BreakerClosed
}

// markPeerDown feeds an externally detected sibling failure (a tripped
// breaker) to whichever health tracker this mode carries.
func (p *Proxy) markPeerDown(peer *net.UDPAddr) {
	if p.node != nil {
		p.node.MarkPeerDown(peer)
		return
	}
	p.health.SetPeer(peer.String(), false)
}

// markPeerUp feeds a recovery (a successful half-open probe).
func (p *Proxy) markPeerUp(peer *net.UDPAddr) {
	if p.node != nil {
		_ = p.node.MarkPeerUp(peer)
		return
	}
	p.health.SetPeer(peer.String(), true)
}

// Resync re-ships this proxy's full summary state to every SC-ICP peer —
// the full-resync path invoked wholesale after a lossy episode clears, so
// replicas across the mesh reconverge without waiting for organic update
// traffic. No-op in the other modes.
func (p *Proxy) Resync() error {
	if p.node == nil {
		return nil
	}
	return p.node.ResyncPeers()
}

// Stats snapshots the counters. The values are read from the same
// registry-backed instruments /metrics exposes, so a scrape and a Stats
// call taken at the same quiescent moment agree exactly.
func (p *Proxy) Stats() Stats {
	s := Stats{
		ClientRequests:   p.metrics.clientReqs.Value(),
		LocalHits:        p.metrics.localHits.Value(),
		RemoteHits:       p.metrics.remoteHits.Value(),
		Misses:           p.metrics.misses.Value(),
		FalseHits:        p.metrics.falseHits.Value(),
		StaleHits:        p.metrics.staleHits.Value(),
		LocalStale:       p.metrics.localStale.Value(),
		OriginFetches:    p.metrics.originFetches.Value(),
		PeerFetches:      p.metrics.peerFetches.Value(),
		Retries:          p.metrics.retries.Value(),
		BreakerSkips:     p.metrics.breakerSkips.Value(),
		InflightRequests: p.metrics.inflight.Value(),
	}
	for _, h := range p.metrics.latency {
		snap := h.Snapshot()
		s.RequestSeconds.Count += snap.Count
		s.RequestSeconds.Sum += snap.Sum
	}
	s.HTTPMessages = 2 * (s.ClientRequests + s.OriginFetches + s.PeerFetches)
	switch p.cfg.Mode {
	case ModeICP:
		s.UDP = p.icpConn.Stats()
	case ModeSCICP:
		s.Node = p.node.Stats()
		s.UDP = s.Node.UDP
	}
	return s
}

// CacheLen returns the number of cached documents (tests/diagnostics).
func (p *Proxy) CacheLen() int { return p.cache.Len() }

// FlushSummary forces publication of pending summary deltas (ModeSCICP).
func (p *Proxy) FlushSummary() {
	if p.node != nil {
		p.node.PublishNow()
	}
}

// Purge removes a document from the local cache, reporting whether it was
// present. The removal flows through the normal eviction path, so the
// summary directory records the deletion — though whether peers learn of
// it depends on the publication policy (a high MinUpdateFlips leaves their
// replicas stale, the setup behind every false hit).
func (p *Proxy) Purge(target string) bool {
	return p.cache.Remove(target)
}

// Tracer returns the tracer the proxy records request traces into (nil
// when tracing is disabled) — what an admin mux serves at /debug/traces.
func (p *Proxy) Tracer() *tracing.Tracer { return p.tracer }

// Decisions returns the per-peer decision accounting (never nil after
// Start) — the live false-hit/false-miss/stale-hit taxonomy.
func (p *Proxy) Decisions() *meshhealth.Accounting { return p.decisions }

// MeshReport assembles this proxy's mesh-health view: local advertisement
// staleness, one row per sibling (replica health, breaker, wire bytes,
// attributed decisions), and the recent false-decision trail.
func (p *Proxy) MeshReport() meshhealth.Report {
	rep := meshhealth.Report{
		Proxy: p.ln.Addr().String(),
		Mode:  p.cfg.Mode.String(),
	}
	if a := p.ICPAddr(); a != nil {
		rep.Node = a.String()
	}
	rep.Local.CacheEntries = p.cache.Len()
	rep.Local.CacheBytes = p.cache.Bytes()
	rep.Local.LastAdvertAgeMS = -1
	if p.recovery.Recovered {
		rep.Local.Recoveries = 1 // refined from node accounting below
		rep.Local.RecoveredEntries = p.recovery.Entries
	}
	var replicas map[string]core.PeerHealth
	if p.node != nil {
		st := p.node.Stats()
		rep.Local.DirectoryDocs = int64(p.node.Directory().Docs())
		rep.Local.PendingFlips = p.node.Directory().PendingFlips()
		rep.Local.UpdatesSent = st.UpdatesSent
		rep.Local.UpdateEvents = st.UpdateEvents
		rep.Local.Recoveries = st.Recoveries
		rep.Local.FullBytesOut = st.UpdateFullBytes
		rep.Local.DeltaBytesOut = st.UpdateDeltaBytes
		if age, ok := p.node.LastAdvertAge(); ok {
			rep.Local.LastAdvertAgeMS = float64(age.Microseconds()) / 1e3
		}
		all := p.node.PeerSummaries().HealthAll()
		replicas = make(map[string]core.PeerHealth, len(all))
		for _, h := range all {
			replicas[h.Peer] = h
		}
	}
	upSet := make(map[string]bool)
	up, _ := p.Health().Snapshot()
	for _, id := range up {
		upSet[id] = true
	}
	p.peerMu.RLock()
	peers := append([]*net.UDPAddr(nil), p.icpPeers...)
	p.peerMu.RUnlock()
	for _, peer := range peers {
		id := peer.String()
		pr := meshhealth.PeerReport{Peer: id, Up: upSet[id]}
		if p.breakers != nil {
			pr.Breaker = p.BreakerState(id).String()
		}
		if h, ok := replicas[id]; ok {
			pr.HasReplica = true
			pr.Generation = h.Generation
			pr.UpdateAgeMS = float64(h.UpdateAge.Microseconds()) / 1e3
			pr.FillRatio = h.FillRatio
			pr.EstFalsePositive = h.EstFalsePositive
			pr.FilterBits = h.FilterBits
			pr.FullUpdates = h.FullUpdates
			pr.DeltaUpdates = h.DeltaUpdates
			pr.BytesIn = h.BytesIn
		}
		if p.node != nil {
			pr.UpdatesSent, pr.BytesOut = p.node.PeerOut(id)
		}
		pr.Decisions = p.decisions.PeerStats(id)
		pr.Divergence = pr.Decisions.Divergence()
		rep.Peers = append(rep.Peers, pr)
	}
	rep.RecentFalse = p.decisions.Recent()
	return rep
}

// MeshHandler serves MeshReport at /debug/mesh (HTML, or JSON with
// ?format=json), rebuilt per request so the view is always live.
func (p *Proxy) MeshHandler() http.Handler {
	return meshhealth.NewHandler(func() []meshhealth.Report {
		return []meshhealth.Report{p.MeshReport()}
	})
}

// --- cache body bookkeeping ---

func (p *Proxy) onInsert(e lru.Entry) {
	if p.node != nil {
		p.node.HandleInsert(e.Key)
	}
}

func (p *Proxy) onEvict(e lru.Entry, ev lru.Event) {
	if ev == lru.EvictUpdated {
		// The superseding insert journals the new version; at replay the
		// version mismatch retires the old body without an evict record.
		return
	}
	if p.node != nil {
		p.node.HandleEvict(e.Key)
	}
	if p.store != nil {
		// A failed append is counted (JournalErrors) and degrades recovery
		// fidelity, never service.
		_ = p.store.AppendEvict(e.Key)
	}
}

func (p *Proxy) cachedBody(key string) ([]byte, int64, bool) {
	e, ok := p.cache.Get(key)
	if !ok {
		return nil, 0, false
	}
	return e.Body, e.Version, true
}

func (p *Proxy) storeBody(key string, version int64, body []byte) {
	// The payload rides the entry itself, so entry and body are stored —
	// and later evicted — atomically. An uncacheable document (too large)
	// is refused by Put and simply dropped.
	stored := p.cache.Put(lru.Entry{Key: key, Size: int64(len(body)), Version: version, Body: body})
	if stored && p.store != nil {
		// Journaled after the Put so recovery never claims a document the
		// cache refused; the body itself lives only in snapshots (an insert
		// newer than the last checkpoint replays as a counted lost insert).
		_ = p.store.AppendInsert(key, int64(len(body)), version)
	}
}

// --- ICP handling (ModeICP) ---

func (p *Proxy) handleICP(from *net.UDPAddr, m icp.Message) {
	if m.Op != icp.OpQuery {
		return
	}
	start := time.Now()
	op := icp.OpMiss
	if p.cache.Contains(m.URL) {
		op = icp.OpHit
	}
	_ = p.icpConn.Send(from, icp.NewReply(op, m.ReqNum, m.URL))
	if p.tracer != nil {
		// Classic ICP queries every sibling on every miss, so a MISS
		// answer is ordinary — not the anomaly it is under SC-ICP.
		p.tracer.ICPAnswer(p.icpConn.Addr().String(), from.String(), m.ReqNum,
			m.URL, op == icp.OpHit, start, false)
	}
}

// --- HTTP serving ---

// ServeHTTP implements http.Handler: absolute-form requests are proxied;
// ProxyPath?url= is the explicit form; CacheOnlyPath?url= serves siblings.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == CacheOnlyPath:
		p.serveCacheOnly(w, r)
	case r.URL.Path == ProxyPath:
		target := urlParam(r.URL.RawQuery)
		if target == "" {
			http.Error(w, "missing url parameter", http.StatusBadRequest)
			return
		}
		p.serveProxy(w, r, target)
	case r.URL.IsAbs():
		p.serveProxy(w, r, r.URL.String())
	default:
		http.Error(w, "not a proxy request", http.StatusBadRequest)
	}
}

// urlParam extracts the url query parameter without building the full
// url.Values map (two allocations per request on the proxy's hottest
// entrypoint). Unescaping only runs when the value actually contains
// percent-escapes or '+'.
func urlParam(rawQuery string) string {
	for len(rawQuery) > 0 {
		pair := rawQuery
		if i := strings.IndexByte(pair, '&'); i >= 0 {
			pair, rawQuery = pair[:i], pair[i+1:]
		} else {
			rawQuery = ""
		}
		v, ok := strings.CutPrefix(pair, "url=")
		if !ok {
			continue
		}
		if strings.IndexByte(v, '%') < 0 && strings.IndexByte(v, '+') < 0 {
			return v
		}
		dec, err := url.QueryUnescape(v)
		if err != nil {
			return ""
		}
		return dec
	}
	return ""
}

func (p *Proxy) serveCacheOnly(w http.ResponseWriter, r *http.Request) {
	key := urlParam(r.URL.RawQuery)
	body, version, ok := p.cachedBody(key)
	if !ok {
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	if version != 0 {
		// The sibling compares this against the version it wants — the
		// stale-hit detection of version-aware mode.
		w.Header().Set(docVersionHeader, strconv.FormatInt(version, 10))
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (p *Proxy) serveProxy(w http.ResponseWriter, r *http.Request, target string) {
	p.metrics.clientReqs.Inc()
	p.metrics.inflight.Inc()
	start := time.Now()
	// The listener-address string is only materialized when a tracer is
	// installed, so the disabled path adds no allocation.
	var tr *tracing.Trace
	if p.tracer != nil {
		tr = p.tracer.StartRequest(p.ln.Addr().String(), target)
	}
	outcome := p.serveProxyClassified(w, r, target, tr)
	if outcome != "" {
		p.metrics.latency[outcome].ObserveDuration(time.Since(start))
		tr.Finish(outcome)
	} else {
		tr.Finish("error")
	}
	p.metrics.inflight.Dec()
}

// serveProxyClassified serves the request and returns its outcome class
// for the latency histogram ("" for malformed or failed requests, which
// measure client errors rather than cache behavior). tr is nil for
// untraced requests.
func (p *Proxy) serveProxyClassified(w http.ResponseWriter, r *http.Request, target string, tr *tracing.Trace) string {
	if _, err := url.Parse(target); err != nil {
		http.Error(w, "bad target url", http.StatusBadRequest)
		return ""
	}

	// In version-aware mode the cache identity is the target with the
	// version parameter stripped; everywhere below — local lookup, ICP
	// queries, summary probes, sibling fetches — operates on the key, so
	// the whole mesh agrees on one identity per document. The origin fetch
	// alone uses the full target (the origin needs the wanted version).
	key, wanted := target, int64(0)
	if p.cfg.VersionAware {
		key, wanted = splitVersion(target)
	}

	lookupStart := time.Now()
	body, cachedVersion, cached := p.cachedBody(key)
	staleLocal := cached && p.cfg.VersionAware && cachedVersion != wanted
	if cached && !staleLocal {
		if tr != nil {
			tr.AddSpan(tracing.Span{
				Name:       tracing.SpanLocalLookup,
				Start:      lookupStart,
				DurationUS: time.Since(lookupStart).Microseconds(),
				Actual:     "hit",
			})
		}
		p.metrics.localHits.Inc()
		writeDoc(w, body)
		return outcomeLocalHit
	}
	if staleLocal {
		// A cached but out-of-date copy is a miss in the paper's hit
		// accounting; the fresh fetch below replaces it.
		p.metrics.localStale.Inc()
	}
	if tr != nil {
		actual := "miss"
		if staleLocal {
			actual = "stale_local"
		}
		tr.AddSpan(tracing.Span{
			Name:       tracing.SpanLocalLookup,
			Start:      lookupStart,
			DurationUS: time.Since(lookupStart).Microseconds(),
			Actual:     actual,
		})
	}

	// Local miss: try siblings per the cooperation mode. The trace rides
	// the context down through the node's lookup (summary probes, ICP
	// round-trip) and the fetch helpers — attached only when tracing, so
	// the untraced path skips the context allocation too.
	ctx := r.Context()
	if tr != nil {
		ctx = tracing.NewContext(ctx, tr)
	}
	body, ok, falseHit, staleHit := p.tryRemote(ctx, key, wanted)
	if ok {
		p.metrics.remoteHits.Inc()
		if !p.cfg.SingleCopy {
			p.storeBody(key, wanted, body) // simple sharing: cache the remote copy
		}
		writeDoc(w, body)
		return outcomeRemoteHit
	}
	if falseHit {
		// Tail-based sampling: a false hit is always worth keeping.
		tr.MarkAnomalous("false_hit")
	}

	body, version, err := p.fetchOrigin(ctx, target)
	if err != nil {
		http.Error(w, "origin fetch failed: "+err.Error(), http.StatusBadGateway)
		return ""
	}
	if p.cfg.VersionAware && version == 0 {
		version = wanted // origin did not echo a version header
	}
	p.metrics.misses.Inc()
	p.storeBody(key, version, body)
	writeDoc(w, body)
	if staleHit {
		p.metrics.staleHits.Inc()
		return outcomeStaleHit
	}
	if falseHit {
		p.metrics.falseHits.Inc()
		return outcomeFalseHit
	}
	return outcomeMiss
}

// splitVersion derives a target URL's version-aware cache identity: the
// URL with the version parameter stripped, plus the wanted version (0 when
// the target carries none or does not parse).
func splitVersion(target string) (key string, version int64) {
	u, err := url.Parse(target)
	if err != nil {
		return target, 0
	}
	q := u.Query()
	v := q.Get(versionParam)
	if v == "" {
		return target, 0
	}
	version, err = strconv.ParseInt(v, 10, 64)
	if err != nil {
		return target, 0
	}
	q.Del(versionParam)
	u.RawQuery = q.Encode()
	return u.String(), version
}

func writeDoc(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// tryRemote resolves a local miss against the siblings. It returns the
// document when some sibling both claimed and delivered a usable copy;
// falseHit reports a failed indication — a claimed HIT that was not
// delivered, or summary candidates that all replied MISS (the paper's
// false hits) — and staleHit a delivered copy of the wrong version
// (version-aware mode; the paper's remote stale hits).
func (p *Proxy) tryRemote(ctx context.Context, key string, wanted int64) (body []byte, ok, falseHit, staleHit bool) {
	switch p.cfg.Mode {
	case ModeICP:
		p.peerMu.RLock()
		peers := append([]*net.UDPAddr(nil), p.icpPeers...)
		p.peerMu.RUnlock()
		if len(peers) == 0 {
			return nil, false, false, false
		}
		qctx, cancel := context.WithTimeout(ctx, p.cfg.QueryTimeout)
		defer cancel()
		qstart := time.Now()
		hit, from, reqNum, err := p.icpConn.QueryAll(qctx, peers, key)
		if tr := tracing.FromContext(ctx); tr != nil {
			// Adopt the exchange's derived ID so the answering proxies'
			// traces join this one.
			tr.SetICPExchange(p.icpConn.Addr().String(), reqNum)
			s := tracing.Span{
				Name:       tracing.SpanICPQuery,
				Start:      qstart,
				DurationUS: time.Since(qstart).Microseconds(),
				ReqNum:     reqNum,
				Actual:     "all_miss",
			}
			if hit {
				s.Actual = "hit:" + from.String()
			}
			if err != nil {
				s.Err = err.Error()
			}
			tr.AddSpan(s)
		}
		if err != nil || !hit {
			// Classic ICP asked everyone; an all-miss round is an
			// ordinary miss, not a false indication.
			return nil, false, false, false
		}
		return p.finishPeerFetch(ctx, from, key, wanted)
	case ModeSCICP:
		from, candidates, err := p.node.Lookup(ctx, key)
		if err != nil {
			return nil, false, false, false
		}
		if from == nil {
			// Summaries nominated candidates but every reply was MISS.
			return nil, false, candidates > 0, false
		}
		return p.finishPeerFetch(ctx, from, key, wanted)
	}
	return nil, false, false, false
}

// finishPeerFetch fetches the document a sibling claimed to have and
// classifies the result: delivered fresh, delivered stale, or not
// delivered at all — the last two charged to the claiming sibling in the
// per-peer decision accounting.
func (p *Proxy) finishPeerFetch(ctx context.Context, from *net.UDPAddr, key string, wanted int64) (body []byte, ok, falseHit, staleHit bool) {
	id := from.String()
	body, version, ok := p.fetchPeer(ctx, from, key)
	if !ok {
		// A claimed HIT that was not delivered (eviction race, dark
		// sibling, open breaker) is a false hit charged to the claimer.
		p.decisions.FalseHit(id, key, traceIDFrom(ctx))
		return nil, false, true, false
	}
	if p.cfg.VersionAware && version != wanted {
		p.decisions.StaleHit(id, key, traceIDFrom(ctx))
		if tr := tracing.FromContext(ctx); tr != nil {
			tr.MarkAnomalous("stale_hit")
		}
		return nil, false, false, true
	}
	return body, true, false, false
}

// traceIDFrom extracts the context's trace ID for decision attribution
// ("" when untraced).
func traceIDFrom(ctx context.Context) string {
	if tr := tracing.FromContext(ctx); tr != nil {
		return tr.ID().String()
	}
	return ""
}

func (p *Proxy) fetchPeer(ctx context.Context, peer *net.UDPAddr, target string) (body []byte, version int64, ok bool) {
	id := peer.String()
	actual := "failed"
	if tr := tracing.FromContext(ctx); tr != nil {
		start := time.Now()
		defer func() {
			tr.AddSpan(tracing.Span{
				Name:       tracing.SpanPeerFetch,
				Peer:       id,
				Start:      start,
				DurationUS: time.Since(start).Microseconds(),
				Actual:     actual,
			})
		}()
	}
	br := p.breakerFor(id)
	if br != nil && !br.Allow() {
		// The sibling's circuit is open: skip the doomed fetch and let the
		// caller fall through to the origin (a false hit, not an error).
		p.metrics.breakerSkips.Inc()
		actual = "breaker_open"
		if tr := tracing.FromContext(ctx); tr != nil {
			tr.MarkAnomalous("breaker_open")
		}
		return nil, 0, false
	}
	p.peerMu.RLock()
	base := p.peerHTTP[id]
	p.peerMu.RUnlock()
	if base == "" {
		return nil, 0, false
	}
	p.metrics.peerFetches.Inc()
	body, version, ok = p.fetchPeerOnce(ctx, base, target)
	if br != nil {
		if ok {
			if br.Success() {
				// The half-open probe delivered: restore the sibling in the
				// health tracker (and, under SC-ICP, re-ship full state so
				// its replica of us reconverges).
				p.markPeerUp(peer)
			}
		} else if br.Failure() {
			// Threshold crossed: under SC-ICP this also drops the sibling's
			// summary replica, so it stops attracting nominations while dark.
			p.markPeerDown(peer)
		}
	}
	if ok {
		actual = "ok"
	}
	return body, version, ok
}

// fetchPeerOnce issues one bounded cache-only fetch against a sibling,
// reporting the delivered document's version (0 when the sibling sent
// none). Sibling fetches are never retried — the origin fallback is
// always available and strictly cheaper than a second trip to a flaky
// sibling.
func (p *Proxy) fetchPeerOnce(ctx context.Context, base, target string) (body []byte, version int64, ok bool) {
	if p.fetchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.fetchTimeout)
		defer cancel()
	}
	u := base + CacheOnlyPath + "?url=" + url.QueryEscape(target)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, 0, false // race: sibling evicted it (a false hit after all)
	}
	body, err = readBody(resp)
	if err != nil {
		return nil, 0, false
	}
	if v := resp.Header.Get(docVersionHeader); v != "" {
		version, _ = strconv.ParseInt(v, 10, 64)
	}
	return body, version, true
}

// readBody slurps a response body, sizing the buffer from Content-Length
// when the server declared one — one exact allocation instead of
// io.ReadAll's grow-and-copy doublings. A body shorter than declared
// surfaces as io.ReadFull's unexpected-EOF error, the same truncation
// signal io.ReadAll's callers already classify as retryable. The cap
// applies identically to declared and unknown-length (chunked / -1)
// bodies: anything past it is an error, never a silently truncated body
// that would be cached or forwarded as complete.
func readBody(resp *http.Response) ([]byte, error) {
	return readBodyLimit(resp, maxDeclaredBody)
}

// errBodyTooLarge marks a response whose body exceeds the cache's body
// cap. Callers classify it as transient (retryable / fall back to the
// origin), exactly like a truncated read: in both cases the proxy does
// not hold a complete document it could serve or cache.
var errBodyTooLarge = errors.New("httpproxy: response body exceeds cap")

// readBodyLimit is readBody with the cap as a parameter, so tests can
// exercise the over-cap paths without materializing 64 MB bodies.
func readBodyLimit(resp *http.Response, limit int64) ([]byte, error) {
	n := resp.ContentLength
	if n > limit {
		// Don't read what we will refuse to serve: fail before burning
		// bandwidth on a body the cache would have to throw away.
		return nil, fmt.Errorf("%w: declared %d > %d", errBodyTooLarge, n, limit)
	}
	if n < 0 {
		// Unknown length (chunked or close-delimited): read through a
		// limit one byte past the cap so overflow is detectable, and
		// refuse the body rather than passing a truncated prefix off as
		// the complete document.
		body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
		if err != nil {
			return nil, err
		}
		if int64(len(body)) > limit {
			return nil, fmt.Errorf("%w: unknown length exceeds %d", errBodyTooLarge, limit)
		}
		return body, nil
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(resp.Body, body); err != nil {
		return nil, err
	}
	// Content-Length overrun would mean a server bug; the transport already
	// truncates reads at the declared length, so body is complete here.
	return body, nil
}

// maxDeclaredBody caps the size of any cached or relayed document body.
// Declared lengths above it fail fast without reading; unknown-length
// bodies are read up to the cap and fail if they exceed it — the header
// of a hostile server never sizes an allocation past this bound.
const maxDeclaredBody = 64 << 20

// fetchOrigin fetches a document from the origin (or the parent proxy),
// retrying retryable failures — transport errors, 5xx statuses, truncated
// bodies — up to fetchRetries times with capped exponential backoff and
// ±50% jitter. Each attempt is individually bounded by fetchTimeout, so a
// hung origin costs at most (retries+1) × timeout, never a wedged handler.
func (p *Proxy) fetchOrigin(ctx context.Context, target string) (body []byte, version int64, err error) {
	retried := 0
	if tr := tracing.FromContext(ctx); tr != nil {
		start := time.Now()
		defer func() {
			s := tracing.Span{
				Name:       tracing.SpanOriginFetch,
				Start:      start,
				DurationUS: time.Since(start).Microseconds(),
				Actual:     "ok",
				Retries:    retried,
			}
			if err != nil {
				s.Actual, s.Err = "failed", err.Error()
			}
			tr.AddSpan(s)
		}()
	}
	p.metrics.originFetches.Inc()
	fetchURL := target
	if p.cfg.ParentURL != "" {
		fetchURL = p.cfg.ParentURL + ProxyPath + "?url=" + url.QueryEscape(target)
	}
	var retryable bool
	for attempt := 0; ; attempt++ {
		body, version, retryable, err = p.fetchOriginOnce(ctx, fetchURL)
		if err == nil || !retryable || attempt >= p.fetchRetries {
			return body, version, err
		}
		if sleepErr := p.backoff(ctx, attempt); sleepErr != nil {
			return nil, 0, err // the client gave up; report the fetch failure
		}
		retried++
		p.metrics.retries.Inc()
	}
}

// backoff sleeps before retry number attempt+1: fetchBackoff doubled per
// attempt (capped at maxBackoffFactor×) with ±50% jitter, so a mesh
// recovering from a shared origin outage does not retry in lockstep. It
// returns early with the context's error if the client goes away.
func (p *Proxy) backoff(ctx context.Context, attempt int) error {
	factor := int64(1) << min(attempt, 30)
	if factor > maxBackoffFactor {
		factor = maxBackoffFactor
	}
	d := time.Duration(factor) * p.fetchBackoff
	if d > 0 {
		d = d/2 + rand.N(d) // uniform in [0.5d, 1.5d)
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// fetchOriginOnce issues one bounded fetch attempt and classifies any
// failure: retryable (transport error, 5xx, truncated body) or permanent
// (any other non-200 status — a 404 will not improve on retry).
func (p *Proxy) fetchOriginOnce(ctx context.Context, fetchURL string) (body []byte, version int64, retryable bool, err error) {
	if p.fetchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.fetchTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fetchURL, nil)
	if err != nil {
		return nil, 0, false, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, 0, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, 0, resp.StatusCode >= 500, fmt.Errorf("origin status %d", resp.StatusCode)
	}
	body, err = readBody(resp)
	if err != nil {
		return nil, 0, true, err
	}
	if v := resp.Header.Get(docVersionHeader); v != "" {
		version, _ = strconv.ParseInt(v, 10, 64)
	}
	return body, version, false, nil
}

package bloom

import (
	"math"
)

// This file implements the analysis of §V-C of the paper ("Bloom Filters —
// The Math") and the quantities plotted in Figure 4.

// FalsePositiveRate returns the probability that a membership probe for a
// key not in the set answers "present", after inserting n keys into a
// filter of m bits with k hash functions:
//
//	p = (1 - (1 - 1/m)^(k n))^k
//
// computed in log space for numerical stability.
func FalsePositiveRate(m, n uint64, k int) float64 {
	if m == 0 || k <= 0 {
		return 1
	}
	if n == 0 {
		return 0
	}
	// (1 - 1/m)^(kn) = exp(kn * log(1 - 1/m)); use Log1p for precision.
	zero := math.Exp(float64(k) * float64(n) * math.Log1p(-1/float64(m)))
	return math.Pow(1-zero, float64(k))
}

// FalsePositiveRateApprox returns the standard approximation
// p ≈ (1 - e^{-kn/m})^k used throughout the paper's discussion.
func FalsePositiveRateApprox(m, n uint64, k int) float64 {
	if m == 0 || k <= 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// OptimalK returns the integer number of hash functions minimizing the
// false-positive rate for a filter of m bits holding n keys. The real-valued
// optimum is ln2 · m/n; the paper notes k "must be an integer and in
// practice we might chose a value less than optimal to reduce computational
// overhead". Both floor and ceiling of the real optimum are evaluated and
// the better one returned (minimum 1).
func OptimalK(m, n uint64) int {
	if n == 0 {
		return 1
	}
	real := math.Ln2 * float64(m) / float64(n)
	lo := int(math.Floor(real))
	hi := int(math.Ceil(real))
	if lo < 1 {
		lo = 1
	}
	if hi < 1 {
		hi = 1
	}
	if FalsePositiveRate(m, n, lo) <= FalsePositiveRate(m, n, hi) {
		return lo
	}
	return hi
}

// MinFalsePositiveRate returns the false-positive probability at the
// optimal k, which the paper bounds as (0.6185)^(m/n) — the straight line
// of Figure 4's lower curve.
func MinFalsePositiveRate(m, n uint64) float64 {
	return FalsePositiveRate(m, n, OptimalK(m, n))
}

// PowerBound returns the paper's closed-form bound (0.6185)^(m/n) on the
// minimal false-positive probability.
func PowerBound(loadFactor float64) float64 {
	return math.Pow(0.6185, loadFactor)
}

// ExpectedMaxCount returns the asymptotic expected maximum counter value
// after inserting n keys with k hash functions into m counters, per the
// paper's citation of Knuth: Γ⁻¹-style growth ln(m)/ln(ln(m)) scaled by the
// load; we expose the simpler engineering observable instead: the expected
// number of counters with value ≥ j,
//
//	E[#counters ≥ j] ≤ m · C(nk, j) (1/m)^j ≤ m · (e n k / (j m))^j
//
// CounterOverflowProbability specializes it to Pr[any counter ≥ j].
func ExpectedMaxCount(m, n uint64, k int) float64 {
	// Find the smallest j where the expectation drops below 1; that is the
	// typical maximum.
	for j := 1; j < 64; j++ {
		if expectedCountersAtLeast(m, n, k, j) < 1 {
			return float64(j - 1)
		}
	}
	return 64
}

func expectedCountersAtLeast(m, n uint64, k int, j int) float64 {
	// m * (e*n*k/(j*m))^j, in log space.
	x := float64(j) * (1 + math.Log(float64(n)*float64(k)) - math.Log(float64(j)*float64(m)))
	return math.Exp(math.Log(float64(m)) + x)
}

// CounterOverflowProbability bounds Pr[max counter ≥ j] after inserting n
// keys with k functions into m counters:
//
//	Pr ≤ m · (e n k / (j m))^j
//
// With j = 16, k = 4 or 5, and the paper's load factors this is on the
// order of 1e-11 or smaller — "minuscule" — justifying 4-bit counters.
func CounterOverflowProbability(m, n uint64, k int, j int) float64 {
	p := expectedCountersAtLeast(m, n, k, j)
	if p > 1 {
		return 1
	}
	return p
}

// PaperExampleRates returns the example table from §V-C giving the
// false-positive probability at selected (load factor, k) points; used by
// tests and the filtermath example to check our math against the paper's
// published constants.
//
//	m/n = 8,  k = 4 → 0.024 ;  m/n = 8,  k = 6(opt) → 0.0216
//	m/n = 16, k = 4 → 0.0024;  m/n = 16, k = 11(opt) → 0.000459
//	m/n = 10, k = 4 → 0.0117 (the "1.2%" of §V-C)
//	m/n = 10, k = 5 → 0.00943 (the "0.9%" optimum case)
func PaperExampleRates() map[string]float64 {
	const n = 1 << 20
	return map[string]float64{
		"lf8_k4":   FalsePositiveRateApprox(8*n, n, 4),
		"lf16_k4":  FalsePositiveRateApprox(16*n, n, 4),
		"lf10_k4":  FalsePositiveRateApprox(10*n, n, 4),
		"lf10_k5":  FalsePositiveRateApprox(10*n, n, 5),
		"lf32_k4":  FalsePositiveRateApprox(32*n, n, 4),
		"lf16_opt": MinFalsePositiveRate(16*n, n),
	}
}

// SizeForLoadFactor returns the bit-array size for an expected number of
// entries at a given load factor (bits per entry), rounded up to a multiple
// of 64 and clamped to [64, MaxBits]. The paper's configurations use load
// factors 8, 16, and 32 with the entry count estimated as cacheBytes/8KB.
func SizeForLoadFactor(expectedEntries uint64, loadFactor float64) uint64 {
	if expectedEntries == 0 {
		expectedEntries = 1
	}
	bits := uint64(math.Ceil(float64(expectedEntries) * loadFactor))
	if bits < 64 {
		bits = 64
	}
	bits = (bits + 63) &^ 63
	if bits > MaxBits {
		bits = MaxBits
	}
	return bits
}

package httpproxy

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/meshhealth"
	"summarycache/internal/obs"
	"summarycache/internal/origin"
)

func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	obs.NewHandler(reg, nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	return rec.Body.String()
}

// TestRemovePeerDropsMetricSeries is the peer-churn metric-lifecycle
// regression: every series labeled with a departed peer — the breaker
// gauge, the node's replica-health series, the decision counters — must
// disappear from /metrics when RemovePeer drops the peer.
func TestRemovePeerDropsMetricSeries(t *testing.T) {
	m := newMesh(t, 2, ModeSCICP, 0)
	p1, p2 := m.proxies[0], m.proxies[1]
	peerID := p2.ICPAddr().String()

	// Provoke decision series for the peer too.
	p1.Decisions().FalseHit(peerID, "http://o/x", "")

	before := scrape(t, p1.Registry())
	if !strings.Contains(before, `peer="`+peerID+`"`) {
		t.Fatalf("expected per-peer series before removal:\n%s", before)
	}
	if !strings.Contains(before, "summarycache_proxy_breaker_state") {
		t.Fatalf("expected breaker gauge before removal:\n%s", before)
	}

	p1.RemovePeer(p2.ICPAddr())

	after := scrape(t, p1.Registry())
	if strings.Contains(after, `peer="`+peerID+`"`) {
		t.Errorf("stale per-peer series survived RemovePeer:\n%s", after)
	}
	if got := p1.BreakerState(peerID); got != BreakerClosed {
		t.Errorf("BreakerState after removal = %v", got)
	}

	// Re-adding the peer must restore a working breaker gauge.
	if err := p1.AddPeer(p2.ICPAddr(), p2.URL()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scrape(t, p1.Registry()), `summarycache_proxy_breaker_state{peer="`+peerID+`"`) {
		t.Error("breaker gauge not re-registered after peer rejoined")
	}
}

// waitForUpdates flushes src's summary until dst has applied at least one
// DIRUPDATE from it.
func waitForUpdates(t *testing.T, src, dst *Proxy) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		src.FlushSummary()
		if dst.Stats().Node.UpdatesReceived > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("peer never received a summary update")
}

func TestVersionAwareStaleClassification(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	var proxies []*Proxy
	for i := 0; i < 2; i++ {
		p, err := Start(Config{
			Mode:         ModeSCICP,
			CacheBytes:   8 << 20,
			VersionAware: true,
			Summary:      core.DirectoryConfig{ExpectedDocs: 2000, UpdateThreshold: 0.01},
			QueryTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
	}
	p1, p2 := proxies[0], proxies[1]
	for _, pair := range [][2]*Proxy{{p1, p2}, {p2, p1}} {
		if err := pair[0].AddPeer(pair[1].ICPAddr(), pair[1].URL()); err != nil {
			t.Fatal(err)
		}
	}

	m := &mesh{origin: org, proxies: proxies}
	// p1 caches version 1 and advertises it.
	m.fetch(t, p1, origin.DocURL(org.URL(), "doc", 2048, 1))
	waitForUpdates(t, p1, p2)

	// p2 wants version 2: p1's summary nominates the (version-stripped)
	// key, p1 confirms HIT, but delivers version 1 — a stale hit.
	m.fetch(t, p2, origin.DocURL(org.URL(), "doc", 2048, 2))
	st := p2.Stats()
	if st.StaleHits != 1 {
		t.Fatalf("StaleHits = %d, want 1 (stats %+v)", st.StaleHits, st)
	}
	if st.RemoteHits != 0 {
		t.Errorf("RemoteHits = %d, want 0: a stale delivery must not count as remote hit", st.RemoteHits)
	}
	ps := p2.Decisions().PeerStats(p1.ICPAddr().String())
	if ps.StaleHits != 1 {
		t.Errorf("per-peer StaleHits = %d, want 1 (%+v)", ps.StaleHits, ps)
	}

	// The fresh version 2 was stored; re-requesting it is a local hit,
	// and requesting version 3 finds the local copy stale.
	m.fetch(t, p2, origin.DocURL(org.URL(), "doc", 2048, 2))
	if st := p2.Stats(); st.LocalHits != 1 {
		t.Errorf("LocalHits = %d, want 1", st.LocalHits)
	}
	m.fetch(t, p2, origin.DocURL(org.URL(), "doc", 2048, 3))
	if st := p2.Stats(); st.LocalStale != 1 {
		t.Errorf("LocalStale = %d, want 1 (stats %+v)", st.LocalStale, st)
	}

	// Stats()==scrape parity for the new counters.
	body := scrape(t, p2.Registry())
	for _, want := range []string{
		"summarycache_proxy_stale_hits_total{", "summarycache_proxy_local_stale_total{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestFalseMissAudit(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	var proxies []*Proxy
	for i := 0; i < 2; i++ {
		p, err := Start(Config{
			Mode:       ModeSCICP,
			CacheBytes: 8 << 20,
			// Never auto-publish: p2's replica of p1 stays empty, so p1's
			// copies are invisible to the summary — every shared doc is a
			// false miss.
			MinUpdateFlips:      1 << 20,
			FalseMissAuditEvery: 1,
			Summary:             core.DirectoryConfig{ExpectedDocs: 2000},
			QueryTimeout:        2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
	}
	p1, p2 := proxies[0], proxies[1]
	for _, pair := range [][2]*Proxy{{p1, p2}, {p2, p1}} {
		if err := pair[0].AddPeer(pair[1].ICPAddr(), pair[1].URL()); err != nil {
			t.Fatal(err)
		}
	}
	m := &mesh{origin: org, proxies: proxies}

	u := m.docURL("doc", 2048)
	m.fetch(t, p1, u) // p1 caches it, unadvertised
	m.fetch(t, p2, u) // p2: no candidates, audit finds p1's copy

	st := p2.Stats()
	if st.Node.FalseMisses != 1 {
		t.Fatalf("FalseMisses = %d, want 1 (node stats %+v)", st.Node.FalseMisses, st.Node)
	}
	if st.Node.AuditQueries == 0 {
		t.Error("AuditQueries = 0, want > 0")
	}
	if st.RemoteHits != 0 {
		t.Errorf("RemoteHits = %d: the audit must not change the lookup result", st.RemoteHits)
	}
	ps := p2.Decisions().PeerStats(p1.ICPAddr().String())
	if ps.FalseMisses != 1 {
		t.Errorf("per-peer FalseMisses = %d, want 1 (%+v)", ps.FalseMisses, ps)
	}
}

func TestDebugMeshEndpointLiveMesh(t *testing.T) {
	m := newMesh(t, 3, ModeSCICP, 0)
	p1, p2 := m.proxies[0], m.proxies[1]

	// Warm and advertise so p2 holds a replica of p1.
	m.fetch(t, p1, m.docURL("a", 1024))
	m.fetch(t, p1, m.docURL("b", 1024))
	waitForUpdates(t, p1, p2)
	m.fetch(t, p2, m.docURL("a", 1024)) // remote hit through the mesh

	rep := p2.MeshReport()
	if len(rep.Peers) != 2 {
		t.Fatalf("MeshReport has %d peers, want 2", len(rep.Peers))
	}
	if rep.Mode != "SC-ICP" || rep.Node == "" {
		t.Errorf("report header: %+v", rep)
	}
	if rep.Local.LastAdvertAgeMS < 0 && rep.Local.UpdatesSent > 0 {
		t.Errorf("LastAdvertAgeMS = %v with UpdatesSent = %d", rep.Local.LastAdvertAgeMS, rep.Local.UpdatesSent)
	}
	var p1row *meshhealth.PeerReport
	for i := range rep.Peers {
		if rep.Peers[i].Peer == p1.ICPAddr().String() {
			p1row = &rep.Peers[i]
		}
	}
	if p1row == nil {
		t.Fatalf("no row for p1 in %+v", rep.Peers)
	}
	if !p1row.HasReplica || p1row.FillRatio <= 0 || p1row.FilterBits == 0 {
		t.Errorf("p1 replica health not populated: %+v", p1row)
	}
	if p1row.EstFalsePositive <= 0 || p1row.EstFalsePositive >= 1 {
		t.Errorf("EstFalsePositive = %v, want (0,1)", p1row.EstFalsePositive)
	}
	if p1row.BytesIn == 0 {
		t.Errorf("BytesIn = 0 after applied updates: %+v", p1row)
	}
	if p1row.Decisions.Nominations == 0 || p1row.Decisions.RemoteHits == 0 {
		t.Errorf("decision attribution missing: %+v", p1row.Decisions)
	}

	// The handler serves the same content at /debug/mesh.
	srv := httptest.NewServer(p2.MeshHandler())
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []meshhealth.Report
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Peers) != 2 {
		t.Fatalf("served report shape: %+v", got)
	}

	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	html, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(html), p1.ICPAddr().String()) {
		t.Errorf("HTML view missing peer row:\n%s", html)
	}
}

// Package pos is the stray-printing positive fixture: library code
// writing straight to stdout/stderr.
package pos

import (
	"fmt"
	"log"
)

func noisy(n int) {
	fmt.Println("summary rebuilt") // want stray-printing
	fmt.Printf("n=%d\n", n)        // want stray-printing
	log.Printf("n=%d", n)          // want stray-printing
	println("debug leftover")      // want stray-printing
}

package core

import (
	"reflect"
	"testing"

	"summarycache/internal/bloom"
)

func TestCoalesceFlips(t *testing.T) {
	f := func(idx uint32, set bool) bloom.Flip { return bloom.Flip{Index: idx, Set: set} }

	cases := []struct {
		name string
		in   []bloom.Flip
		want []bloom.Flip
	}{
		{"empty", nil, nil},
		{"single", []bloom.Flip{f(1, true)}, []bloom.Flip{f(1, true)}},
		{
			"no duplicates untouched",
			[]bloom.Flip{f(1, true), f(2, false), f(3, true)},
			[]bloom.Flip{f(1, true), f(2, false), f(3, true)},
		},
		{
			"last record per bit wins",
			[]bloom.Flip{f(5, true), f(7, true), f(5, false)},
			[]bloom.Flip{f(7, true), f(5, false)},
		},
		{
			"set-clear-set collapses to final set",
			[]bloom.Flip{f(9, true), f(9, false), f(9, true)},
			[]bloom.Flip{f(9, true)},
		},
		{
			"survivors keep relative order",
			[]bloom.Flip{f(1, true), f(2, true), f(3, true), f(1, false), f(4, true)},
			[]bloom.Flip{f(2, true), f(3, true), f(1, false), f(4, true)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := append([]bloom.Flip(nil), tc.in...)
			got := coalesceFlips(in)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("coalesceFlips(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

// Coalescing must be deterministic: the survivor sequence is a function of
// the input sequence alone, never of map iteration order.
func TestCoalesceFlipsDeterministic(t *testing.T) {
	in := make([]bloom.Flip, 0, 64)
	for i := 0; i < 64; i++ {
		in = append(in, bloom.Flip{Index: uint32(i % 7), Set: i%2 == 0})
	}
	first := coalesceFlips(append([]bloom.Flip(nil), in...))
	for i := 0; i < 20; i++ {
		got := coalesceFlips(append([]bloom.Flip(nil), in...))
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d diverged: %v vs %v", i, got, first)
		}
	}
	if len(first) != 7 {
		t.Fatalf("expected 7 survivors (one per distinct bit), got %d", len(first))
	}
}

// Applying a coalesced batch to a filter replica must land it in the same
// state as applying the verbatim batch — the property that makes eliding
// redundant flips safe on the wire.
func TestCoalesceFlipsPreservesFinalState(t *testing.T) {
	in := []bloom.Flip{
		{Index: 3, Set: true},
		{Index: 3, Set: false},
		{Index: 8, Set: true},
		{Index: 3, Set: true},
		{Index: 8, Set: false},
		{Index: 15, Set: true},
	}
	apply := func(flips []bloom.Flip) map[uint32]bool {
		state := make(map[uint32]bool)
		for _, fl := range flips {
			state[fl.Index] = fl.Set
		}
		return state
	}
	verbatim := apply(in)
	coalesced := apply(coalesceFlips(append([]bloom.Flip(nil), in...)))
	if !reflect.DeepEqual(verbatim, coalesced) {
		t.Fatalf("final state diverged: verbatim %v coalesced %v", verbatim, coalesced)
	}
}

package icp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
)

func TestOpcodeStrings(t *testing.T) {
	ops := []Opcode{OpInvalid, OpQuery, OpHit, OpMiss, OpErr, OpSEcho, OpDEcho,
		OpMissNoFetch, OpDenied, OpHitObj, OpDirUpdate, Opcode(99)}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("empty string for opcode %d", op)
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	m := NewQuery(42, "http://example.com/x")
	m.RequesterAddr = 0x7f000001
	m.SenderAddr = 0x0a000001
	buf, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != m.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(buf), m.EncodedLen())
	}
	// Query payload: 20 header + 4 requester + URL + NUL.
	if want := 20 + 4 + len(m.URL) + 1; len(buf) != want {
		t.Fatalf("query size %d, want %d", len(buf), want)
	}
	got, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpQuery || got.ReqNum != 42 || got.URL != m.URL ||
		got.RequesterAddr != m.RequesterAddr || got.SenderAddr != m.SenderAddr {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	for _, op := range []Opcode{OpHit, OpMiss, OpMissNoFetch, OpDenied, OpErr} {
		m := NewReply(op, 7, "http://a/b")
		buf, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Parse(buf)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if got.Op != op || got.URL != "http://a/b" || got.ReqNum != 7 {
			t.Fatalf("%v: round trip mismatch: %+v", op, got)
		}
	}
}

func TestDirUpdateRoundTrip(t *testing.T) {
	flips := []bloom.Flip{
		{Index: 0, Set: true},
		{Index: 12345, Set: false},
		{Index: 1<<31 - 1, Set: true},
	}
	m := NewDirUpdate(9, hashing.DefaultSpec, 1<<20, flips)
	buf, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// 20 ICP header + 12 extension header + 4 per flip; the extension
	// header is the paper's "32 bytes of header" for Bloom updates.
	if want := 32 + 4*len(flips); len(buf) != want {
		t.Fatalf("update size %d, want %d", len(buf), want)
	}
	got, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Update == nil {
		t.Fatal("no update decoded")
	}
	u := got.Update
	if u.Spec != hashing.DefaultSpec || u.Bits != 1<<20 {
		t.Fatalf("update header mismatch: %+v", u)
	}
	if len(u.Flips) != len(flips) {
		t.Fatalf("got %d flips", len(u.Flips))
	}
	for i := range flips {
		if u.Flips[i] != flips[i] {
			t.Fatalf("flip %d: %+v != %+v", i, u.Flips[i], flips[i])
		}
	}
}

func TestDirUpdateEmptyFlips(t *testing.T) {
	m := NewDirUpdate(1, hashing.DefaultSpec, 4096, nil)
	buf, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 32 {
		t.Fatalf("empty update size %d, want 32", len(buf))
	}
	got, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Update == nil || len(got.Update.Flips) != 0 {
		t.Fatalf("bad empty update: %+v", got)
	}
}

func TestFlipIndexRangeRejected(t *testing.T) {
	m := NewDirUpdate(1, hashing.DefaultSpec, 10, []bloom.Flip{{Index: 1 << 31, Set: true}})
	if _, err := m.MarshalBinary(); err == nil {
		t.Fatal("accepted 32-bit flip index")
	}
}

func TestParseErrors(t *testing.T) {
	valid, _ := NewQuery(1, "http://a/").MarshalBinary()

	short := valid[:10]
	if _, err := Parse(short); err != ErrTruncated {
		t.Errorf("short: err = %v", err)
	}

	badVer := append([]byte(nil), valid...)
	badVer[1] = 3
	if _, err := Parse(badVer); err == nil {
		t.Error("accepted version 3")
	}

	badLen := append([]byte(nil), valid...)
	badLen[2], badLen[3] = 0xFF, 0xFF
	if _, err := Parse(badLen); err == nil {
		t.Error("accepted length mismatch")
	}

	noNul := append([]byte(nil), valid...)
	noNul[len(noNul)-1] = 'x'
	if _, err := Parse(noNul); err == nil {
		t.Error("accepted unterminated URL")
	}

	// Truncated query body (header claims correct length but body < 5).
	q := NewQuery(1, "")
	b, _ := q.MarshalBinary()
	b = b[:22]
	b[2], b[3] = 0, 22
	if _, err := Parse(b); err == nil {
		t.Error("accepted truncated query body")
	}

	// DIRUPDATE with flip count not matching the payload.
	du, _ := NewDirUpdate(1, hashing.DefaultSpec, 10, []bloom.Flip{{Index: 1, Set: true}}).MarshalBinary()
	du[31] = 2 // claim 2 updates, carry 1
	if _, err := Parse(du); err == nil {
		t.Error("accepted flip count mismatch")
	}

	// DIRUPDATE too short for its extension header.
	du2, _ := NewDirUpdate(1, hashing.DefaultSpec, 10, nil).MarshalBinary()
	du2 = du2[:24]
	du2[2], du2[3] = 0, 24
	if _, err := Parse(du2); err != ErrTruncated {
		t.Errorf("truncated dirupdate: err = %v", err)
	}
}

func TestOversizeRejected(t *testing.T) {
	flips := make([]bloom.Flip, MaxFlipsPerMessage+1)
	m := NewDirUpdate(1, hashing.DefaultSpec, 1<<30, flips)
	if _, err := m.MarshalBinary(); err == nil {
		t.Fatal("accepted oversize datagram")
	}
}

func TestSplitUpdate(t *testing.T) {
	flips := make([]bloom.Flip, 1000)
	for i := range flips {
		flips[i] = bloom.Flip{Index: uint32(i), Set: i%2 == 0}
	}
	msgs := SplitUpdate(100, hashing.DefaultSpec, 1<<20, flips, 300)
	if len(msgs) != 4 {
		t.Fatalf("got %d messages, want 4", len(msgs))
	}
	var total int
	seen := map[uint32]bool{}
	for _, m := range msgs {
		if m.Op != OpDirUpdate || m.Update == nil {
			t.Fatalf("bad split message: %+v", m)
		}
		if len(m.Update.Flips) > 300 {
			t.Fatalf("chunk of %d flips exceeds max", len(m.Update.Flips))
		}
		if seen[m.ReqNum] {
			t.Fatal("duplicate request number in split")
		}
		seen[m.ReqNum] = true
		total += len(m.Update.Flips)
		// Every chunk must round-trip.
		buf, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(buf); err != nil {
			t.Fatal(err)
		}
	}
	if total != 1000 {
		t.Fatalf("split lost flips: %d", total)
	}
	// Empty input still produces one (empty) update message.
	if msgs := SplitUpdate(1, hashing.DefaultSpec, 10, nil, 0); len(msgs) != 1 {
		t.Fatalf("empty split: %d messages", len(msgs))
	}
}

// Applying a split update stream must reproduce applying the whole journal.
func TestSplitUpdateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := bloom.MustNewCountingFilter(1<<14, 4, hashing.DefaultSpec)
	var journal []bloom.Flip
	for i := 0; i < 2000; i++ {
		journal = c.Add(randURL(rng), journal)
	}
	whole := bloom.MustNewFilter(1<<14, hashing.DefaultSpec)
	if err := whole.Apply(journal); err != nil {
		t.Fatal(err)
	}
	chunked := bloom.MustNewFilter(1<<14, hashing.DefaultSpec)
	for _, m := range SplitUpdate(1, hashing.DefaultSpec, 1<<14, journal, 97) {
		buf, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Parse(buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := chunked.Apply(got.Update.Flips); err != nil {
			t.Fatal(err)
		}
	}
	if string(whole.Snapshot()) != string(chunked.Snapshot()) {
		t.Fatal("chunked update diverged from whole journal")
	}
}

func randURL(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 8+rng.Intn(20))
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return "http://" + string(b[:4]) + ".com/" + string(b[4:])
}

// Property: any URL round-trips through query encode/parse.
func TestQuickQueryRoundTrip(t *testing.T) {
	prop := func(reqNum uint32, urlBytes []byte) bool {
		url := ""
		for _, c := range urlBytes {
			if c == 0 {
				c = '_' // NUL-terminated wire format cannot carry NULs
			}
			url += string(rune(c))
		}
		if len(url) > MaxDatagram-HeaderLen-10 {
			return true
		}
		m := NewQuery(reqNum, url)
		buf, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := Parse(buf)
		return err == nil && got.URL == url && got.ReqNum == reqNum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary byte garbage never panics the parser.
func TestQuickParseNoPanic(t *testing.T) {
	prop := func(b []byte) bool {
		_, _ = Parse(b)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeQuery(b *testing.B) {
	m := NewQuery(1, "http://www.example.com/path/to/document.html")
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = m.Append(buf[:0])
	}
}

func BenchmarkParseQuery(b *testing.B) {
	buf, _ := NewQuery(1, "http://www.example.com/path/to/document.html").MarshalBinary()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDirUpdate(b *testing.B) {
	flips := make([]bloom.Flip, 360)
	for i := range flips {
		flips[i] = bloom.Flip{Index: uint32(i * 13), Set: i%2 == 0}
	}
	m := NewDirUpdate(1, hashing.DefaultSpec, 1<<20, flips)
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = m.Append(buf[:0])
	}
}

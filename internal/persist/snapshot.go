package persist

import (
	"encoding/binary"
	"fmt"
	"os"

	"summarycache/internal/core"
	"summarycache/internal/delta"
	"summarycache/internal/hashing"
	"summarycache/internal/lru"
)

// Snapshot frame kinds: the first byte of every frame payload in a
// snap-<gen> file. A journal file instead opens with frameJournalHdr and
// then carries raw delta.JournalRecord frames (whose first byte is the
// record op, disjoint from these).
const (
	frameSnapHdr    byte = 'H' // magic + generation
	frameEntry      byte = 'E' // one LRU entry, MRU→LRU file order
	frameDirectory  byte = 'D' // counting-filter state blob
	frameReplica    byte = 'R' // one peer replica
	frameEnd        byte = 'Z' // commit marker: absent ⇒ torn snapshot
	frameJournalHdr byte = 'J' // journal magic + generation
)

// snapMagic/jrnlMagic brand the header frames (and version the format).
const (
	snapMagic = "scSNAP1"
	jrnlMagic = "scJRNL1"
)

func snapHeader(gen uint64) []byte {
	b := append([]byte{frameSnapHdr}, snapMagic...)
	return binary.AppendUvarint(b, gen)
}

func journalHeader(gen uint64) []byte {
	b := append([]byte{frameJournalHdr}, jrnlMagic...)
	return binary.AppendUvarint(b, gen)
}

// parseHeader validates a header frame of the given kind and returns its
// generation.
func parseHeader(payload []byte, kind byte, magic string) (uint64, error) {
	if len(payload) < 1+len(magic) || payload[0] != kind || string(payload[1:1+len(magic)]) != magic {
		return 0, fmt.Errorf("persist: bad header frame")
	}
	gen, n := binary.Uvarint(payload[1+len(magic):])
	if n <= 0 {
		return 0, fmt.Errorf("persist: bad header generation")
	}
	return gen, nil
}

// appendEntryFrame serializes one cache entry:
// 'E' uvarint keylen, key, varint size, varint version, uvarint bodylen, body.
func appendEntryFrame(dst []byte, e lru.Entry) []byte {
	payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(e.Key)+len(e.Body)+16)
	payload = append(payload, frameEntry)
	payload = binary.AppendUvarint(payload, uint64(len(e.Key)))
	payload = append(payload, e.Key...)
	payload = binary.AppendVarint(payload, e.Size)
	payload = binary.AppendVarint(payload, e.Version)
	payload = binary.AppendUvarint(payload, uint64(len(e.Body)))
	payload = append(payload, e.Body...)
	return delta.AppendFrame(dst, payload)
}

func decodeEntryFrame(payload []byte) (lru.Entry, error) {
	var e lru.Entry
	rest, ok := takeBytesAfterKind(payload, frameEntry)
	if !ok {
		return e, fmt.Errorf("persist: not an entry frame")
	}
	key, rest, ok := takeString(rest)
	if !ok {
		return e, fmt.Errorf("persist: entry key")
	}
	e.Key = key
	if e.Size, rest, ok = takeVarint(rest); !ok {
		return e, fmt.Errorf("persist: entry size")
	}
	if e.Version, rest, ok = takeVarint(rest); !ok {
		return e, fmt.Errorf("persist: entry version")
	}
	blen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < blen {
		return e, fmt.Errorf("persist: entry body")
	}
	if blen > 0 {
		e.Body = append([]byte(nil), rest[n:n+int(blen)]...)
	}
	return e, nil
}

// appendReplicaFrame serializes one peer replica:
// 'R' key-string peer, uvarint k, uvarint funcbits, uvarint bits,
// uvarint generation, uvarint len(filter), filter.
func appendReplicaFrame(dst []byte, r core.ReplicaState) []byte {
	payload := make([]byte, 0, 1+5*binary.MaxVarintLen64+len(r.Peer)+len(r.Filter))
	payload = append(payload, frameReplica)
	payload = binary.AppendUvarint(payload, uint64(len(r.Peer)))
	payload = append(payload, r.Peer...)
	payload = binary.AppendUvarint(payload, uint64(r.Spec.FunctionNum))
	payload = binary.AppendUvarint(payload, uint64(r.Spec.FunctionBits))
	payload = binary.AppendUvarint(payload, r.Bits)
	payload = binary.AppendUvarint(payload, r.Generation)
	payload = binary.AppendUvarint(payload, uint64(len(r.Filter)))
	payload = append(payload, r.Filter...)
	return delta.AppendFrame(dst, payload)
}

func decodeReplicaFrame(payload []byte) (core.ReplicaState, error) {
	var r core.ReplicaState
	rest, ok := takeBytesAfterKind(payload, frameReplica)
	if !ok {
		return r, fmt.Errorf("persist: not a replica frame")
	}
	if r.Peer, rest, ok = takeString(rest); !ok {
		return r, fmt.Errorf("persist: replica peer")
	}
	var vals [4]uint64
	for i := range vals {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return r, fmt.Errorf("persist: replica header")
		}
		vals[i] = v
		rest = rest[n:]
	}
	r.Spec = hashing.Spec{FunctionNum: int(vals[0]), FunctionBits: int(vals[1])}
	r.Bits = vals[2]
	r.Generation = vals[3]
	flen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < flen {
		return r, fmt.Errorf("persist: replica filter")
	}
	r.Filter = append([]byte(nil), rest[n:n+int(flen)]...)
	return r, nil
}

func takeBytesAfterKind(payload []byte, kind byte) ([]byte, bool) {
	if len(payload) < 1 || payload[0] != kind {
		return nil, false
	}
	return payload[1:], true
}

func takeString(b []byte) (s string, rest []byte, ok bool) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return "", b, false
	}
	return string(b[n : n+int(l)]), b[n+int(l):], true
}

func takeVarint(b []byte) (v int64, rest []byte, ok bool) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, b, false
	}
	return v, b[n:], true
}

// encodeSnapshot renders a complete snapshot file image for gen.
func encodeSnapshot(gen uint64, data SnapshotData) []byte {
	size := 64
	for i := range data.Entries {
		size += len(data.Entries[i].Key) + len(data.Entries[i].Body) + 32
	}
	size += len(data.Directory) + 16
	for i := range data.Replicas {
		size += len(data.Replicas[i].Peer) + len(data.Replicas[i].Filter) + 48
	}
	out := make([]byte, 0, size)
	out = delta.AppendFrame(out, snapHeader(gen))
	for _, e := range data.Entries {
		out = appendEntryFrame(out, e)
	}
	if data.Directory != nil {
		out = delta.AppendFrame(out, append([]byte{frameDirectory}, data.Directory...))
	}
	for _, r := range data.Replicas {
		out = appendReplicaFrame(out, r)
	}
	out = delta.AppendFrame(out, []byte{frameEnd})
	return out
}

// decodeSnapshot parses and validates a snapshot file image end-to-end.
// Any framing violation, wrong generation, or missing end frame makes
// the whole snapshot invalid — recovery then falls back one generation,
// whose journal chain still reaches the present.
func decodeSnapshot(img []byte, wantGen uint64) (SnapshotData, error) {
	var data SnapshotData
	payload, rest, err := delta.NextFrame(img)
	if err != nil || payload == nil {
		return data, fmt.Errorf("persist: snapshot header: %v", err)
	}
	gen, err := parseHeader(payload, frameSnapHdr, snapMagic)
	if err != nil {
		return data, err
	}
	if gen != wantGen {
		return data, fmt.Errorf("persist: snapshot generation %d, file named %d", gen, wantGen)
	}
	sealed := false
	for !sealed {
		payload, rest, err = delta.NextFrame(rest)
		if err != nil {
			return data, fmt.Errorf("persist: snapshot frame: %w", err)
		}
		if payload == nil {
			return data, fmt.Errorf("persist: snapshot missing end frame (torn write)")
		}
		switch payload[0] {
		case frameEntry:
			e, err := decodeEntryFrame(payload)
			if err != nil {
				return data, err
			}
			data.Entries = append(data.Entries, e)
		case frameDirectory:
			data.Directory = append([]byte(nil), payload[1:]...)
		case frameReplica:
			r, err := decodeReplicaFrame(payload)
			if err != nil {
				return data, err
			}
			data.Replicas = append(data.Replicas, r)
		case frameEnd:
			sealed = true
		default:
			return data, fmt.Errorf("persist: unknown snapshot frame kind %d", payload[0])
		}
	}
	return data, nil
}

// Checkpoint writes a new snapshot generation from data and rotates the
// journal ahead of it: mutations that race the capture land in the new
// generation's journal and replay idempotently over the snapshot. On
// success, generations older than the previous one are pruned (two
// snapshot/journal pairs always remain for corruption fallback).
func (s *Store) Checkpoint(data SnapshotData) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("persist: store closed")
	}
	// Rotate first: seal the old journal, open gen+1. Records appended
	// from here on belong to the new generation; any that describe
	// mutations already visible in `data` replay as no-ops.
	if err := s.syncJournalLocked(); err != nil {
		s.mu.Unlock()
		s.snapshotErrors.Add(1)
		return err
	}
	if s.jf != nil {
		if err := s.jf.Close(); err != nil {
			s.mu.Unlock()
			s.snapshotErrors.Add(1)
			return fmt.Errorf("persist: close journal: %w", err)
		}
		s.jf = nil
	}
	s.gen++
	gen := s.gen
	if err := s.ensureJournalLocked(); err != nil {
		s.mu.Unlock()
		s.snapshotErrors.Add(1)
		return err
	}
	s.mu.Unlock()

	// Encode and write the snapshot outside the lock: appends may proceed
	// into the new journal while the (possibly large) image is written.
	img := encodeSnapshot(gen, data)
	tmp := s.path(snapPrefix, gen) + ".tmp"
	if err := writeFileSync(tmp, img); err != nil {
		s.snapshotErrors.Add(1)
		return err
	}
	if err := os.Rename(tmp, s.path(snapPrefix, gen)); err != nil {
		s.snapshotErrors.Add(1)
		return fmt.Errorf("persist: commit snapshot: %w", err)
	}
	if err := s.syncDir(); err != nil {
		s.snapshotErrors.Add(1)
		return fmt.Errorf("persist: sync dir: %w", err)
	}
	s.snapshots.Add(1)
	s.snapshotBytes.Add(uint64(len(img)))
	s.prune(gen)
	s.log.Info("checkpoint written", "gen", gen,
		"entries", len(data.Entries), "replicas", len(data.Replicas), "bytes", len(img))
	return nil
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("persist: write %s: %w", path, werr)
	}
	return nil
}

// prune deletes generations older than cur-1. The previous pair stays:
// if snap-<cur> is later found corrupt, recovery replays
// snap-<cur-1> + jrnl-<cur-1> + jrnl-<cur>.
func (s *Store) prune(cur uint64) {
	snaps, jrnls, err := s.scan()
	if err != nil {
		s.log.Warn("prune scan failed", "err", err)
		return
	}
	for _, g := range snaps {
		if g+1 < cur {
			if err := os.Remove(s.path(snapPrefix, g)); err != nil {
				s.log.Warn("prune snapshot failed", "gen", g, "err", err)
			}
		}
	}
	for _, g := range jrnls {
		if g+1 < cur {
			if err := os.Remove(s.path(jrnlPrefix, g)); err != nil {
				s.log.Warn("prune journal failed", "gen", g, "err", err)
			}
		}
	}
}

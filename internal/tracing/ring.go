package tracing

import "sync/atomic"

// ring is a bounded lock-free trace store: a fixed slot array written by
// an atomically claimed monotone cursor, overwriting oldest-first. Writers
// never block and never allocate beyond the trace itself; readers take a
// consistent-enough snapshot by loading each slot's pointer (a reader
// racing a writer sees either the old or the new trace, both complete,
// since traces are stored only after Finish).
type ring struct {
	slots []atomic.Pointer[Trace]
	head  atomic.Uint64 // next write position (monotone; slot = head % len)
}

func (r *ring) init(n int) {
	r.slots = make([]atomic.Pointer[Trace], n)
}

// put stores a completed trace, displacing the oldest when full.
func (r *ring) put(t *Trace) {
	i := r.head.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// snapshot returns the stored traces, newest first.
func (r *ring) snapshot() []*Trace {
	n := uint64(len(r.slots))
	head := r.head.Load()
	count := head
	if count > n {
		count = n
	}
	out := make([]*Trace, 0, count)
	for off := uint64(1); off <= count; off++ {
		if t := r.slots[(head-off)%n].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

package icp

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
)

// someFlips builds a deterministic flip batch for encode/decode guards.
func someFlips(n int) []bloom.Flip {
	flips := make([]bloom.Flip, n)
	for i := range flips {
		flips[i] = bloom.Flip{Index: uint32(i * 37), Set: i%3 != 0}
	}
	return flips
}

// The encode path must not allocate once the destination buffer exists:
// Conn.Send/SendAsync and WriteFrame all append into pooled buffers, so a
// hidden allocation here would silently tax every datagram.
func TestAppendZeroAlloc(t *testing.T) {
	m := NewDirUpdate(7, hashing.DefaultSpec, 1<<20, someFlips(360))
	buf := make([]byte, 0, MaxDatagram)
	if n := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = m.Append(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Append allocated %v times per run, want 0", n)
	}

	q := NewQuery(9, "http://example.com/some/doc")
	if n := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = q.Append(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("query Append allocated %v times per run, want 0", n)
	}
}

// A Decoder must decode DIRUPDATE datagrams — the mesh's volume driver —
// with zero steady-state allocations, reusing its flip scratch across
// messages.
func TestDecoderDirUpdateZeroAlloc(t *testing.T) {
	m := NewDirUpdate(7, hashing.DefaultSpec, 1<<20, someFlips(360))
	wire, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	if _, err := dec.Decode(wire); err != nil { // first call may grow scratch
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		got, err := dec.Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		if got.Update == nil || len(got.Update.Flips) != 360 {
			t.Fatal("bad decode")
		}
	}); n != 0 {
		t.Fatalf("Decode allocated %v times per run, want 0", n)
	}
}

// URL-carrying opcodes pay exactly one allocation — the URL string itself,
// which handlers retain past the datagram's lifetime by design.
func TestDecoderURLSingleAlloc(t *testing.T) {
	wire, err := NewQuery(3, "http://example.com/doc").MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	if n := testing.AllocsPerRun(100, func() {
		if _, err := dec.Decode(wire); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Fatalf("URL decode allocated %v times per run, want <= 1", n)
	}
}

// discardPacketConn satisfies PacketConn with no real socket, so the send
// path's allocation behavior is measured without syscall noise.
type discardPacketConn struct{}

func (discardPacketConn) ReadFromUDP(b []byte) (int, *net.UDPAddr, error) {
	return 0, nil, errors.New("not readable")
}
func (discardPacketConn) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	return len(b), nil
}
func (discardPacketConn) Close() error        { return nil }
func (discardPacketConn) LocalAddr() net.Addr { return &net.UDPAddr{} }

// stubConn builds a Conn over a stub socket without binding anything; the
// send path needs no running loops.
func stubConn() *Conn {
	return &Conn{
		pc:       discardPacketConn{},
		pending:  make(map[uint32]chan reply),
		done:     make(chan struct{}),
		sendQ:    make(chan outgoing, DefaultSendQueue),
		sendStop: make(chan struct{}),
		sendDone: make(chan struct{}),
	}
}

// The synchronous UDP send path must be allocation-free steady-state: the
// encode buffer comes from the pool and returns to it after the write.
func TestSendZeroAlloc(t *testing.T) {
	c := stubConn()
	to := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 4827}
	m := NewDirUpdate(7, hashing.DefaultSpec, 1<<20, someFlips(360))
	if err := c.Send(to, m); err != nil { // prime the pool
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := c.Send(to, m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Send allocated %v times per run, want 0", n)
	}
	if got := c.Stats().Sent; got == 0 {
		t.Fatal("sends not counted")
	}
}

// WriteFrame shares the datagram pool: a steady-state TCP frame write must
// not allocate either.
func TestWriteFrameZeroAlloc(t *testing.T) {
	m := NewDirUpdate(7, hashing.DefaultSpec, 1<<20, someFlips(360))
	var sink bytes.Buffer
	sink.Grow(2 * MaxDatagram)
	if _, err := WriteFrame(&sink, m); err != nil { // prime pool and buffer
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		sink.Reset()
		if _, err := WriteFrame(&sink, m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("WriteFrame allocated %v times per run, want 0", n)
	}
}

// Clone must produce a Message that survives the next Decode.
func TestMessageClone(t *testing.T) {
	m := NewDirUpdate(7, hashing.DefaultSpec, 1<<20, someFlips(8))
	wire, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	borrowed, err := dec.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	kept := borrowed.Clone()
	// Overwrite the decoder scratch with a different update.
	other, _ := NewDirUpdate(8, hashing.DefaultSpec, 1<<20, someFlips(3)).MarshalBinary()
	if _, err := dec.Decode(other); err != nil {
		t.Fatal(err)
	}
	if kept.Update == nil || len(kept.Update.Flips) != 8 {
		t.Fatalf("clone did not survive decoder reuse: %+v", kept.Update)
	}
	for i, f := range kept.Update.Flips {
		if f != (bloom.Flip{Index: uint32(i * 37), Set: i%3 != 0}) {
			t.Fatalf("clone flip %d corrupted: %+v", i, f)
		}
	}
}

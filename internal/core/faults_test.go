package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
	"summarycache/internal/icp"
)

// These tests exercise the protocol's fault-tolerance claims: update
// messages carry absolute set/clear records precisely so that "loss of
// previous update messages would [not] have cascading effects" and the
// stream can ride "a unreliable multicast protocol" (§VI-A).

// driveDirectory applies a random add/remove workload and returns the
// update messages a node would emit, chunked like the wire protocol.
func driveDirectory(t testing.TB, seed int64, ops int) (*Directory, []icp.Message) {
	t.Helper()
	d, err := NewDirectory(DirectoryConfig{ExpectedDocs: 500, UpdateThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	live := map[string]bool{}
	var msgs []icp.Message
	reqNum := uint32(1)
	for i := 0; i < ops; i++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			k := fmt.Sprintf("http://h%d/d%d", rng.Intn(40), rng.Intn(800))
			if !live[k] {
				live[k] = true
				d.Insert(k)
			}
		} else {
			for k := range live {
				delete(live, k)
				d.Remove(k)
				break
			}
		}
		if d.ShouldPublish() {
			chunk := icp.SplitUpdate(reqNum, d.Spec(), uint32(d.Bits()), d.Drain(), 50)
			reqNum += uint32(len(chunk))
			msgs = append(msgs, chunk...)
		}
	}
	chunk := icp.SplitUpdate(reqNum, d.Spec(), uint32(d.Bits()), d.Drain(), 50)
	msgs = append(msgs, chunk...)
	return d, msgs
}

// replicaFromMessages applies msgs (possibly a lossy subset) to a fresh
// PeerTable and returns the replica's candidate function.
func replicaFromMessages(t testing.TB, msgs []icp.Message) *PeerTable {
	t.Helper()
	pt := NewPeerTable()
	for _, m := range msgs {
		if err := pt.ApplyUpdate("p", m.Update, false); err != nil {
			t.Fatal(err)
		}
	}
	return pt
}

// Lossless delivery reproduces the local filter exactly.
func TestUpdateStreamLossless(t *testing.T) {
	d, msgs := driveDirectory(t, 1, 3000)
	pt := replicaFromMessages(t, msgs)
	local := localBitFilter(t, d)
	replica := replicaFilter(t, pt, d)
	if string(local.Snapshot()) != string(replica.Snapshot()) {
		t.Fatal("lossless replica diverged from local filter")
	}
}

// Duplicated and reordered-within-independence delivery is harmless:
// replaying every message twice yields the identical replica. (Absolute
// records are idempotent; full ordering robustness would require
// per-position versions, which the paper's protocol does not claim.)
func TestUpdateStreamDuplication(t *testing.T) {
	d, msgs := driveDirectory(t, 2, 3000)
	doubled := make([]icp.Message, 0, 2*len(msgs))
	for _, m := range msgs {
		doubled = append(doubled, m, m)
	}
	pt := replicaFromMessages(t, doubled)
	local := localBitFilter(t, d)
	replica := replicaFilter(t, pt, d)
	if string(local.Snapshot()) != string(replica.Snapshot()) {
		t.Fatal("duplicated delivery diverged")
	}
}

// Message loss corrupts only the bits the lost messages carried — no
// cascade — and a subsequent full-state update heals the replica entirely.
func TestUpdateStreamLossAndRecovery(t *testing.T) {
	d, msgs := driveDirectory(t, 3, 3000)
	rng := rand.New(rand.NewSource(99))
	var delivered []icp.Message
	lost := 0
	for _, m := range msgs {
		if rng.Float64() < 0.3 {
			lost++
			continue
		}
		delivered = append(delivered, m)
	}
	if lost == 0 {
		t.Fatal("test needs losses")
	}
	pt := replicaFromMessages(t, delivered)
	local := localBitFilter(t, d)
	replica := replicaFilter(t, pt, d)

	// Bound the damage: differing bits ≤ bits carried by lost messages.
	var lostBits int
	for _, m := range msgs {
		if !contains(delivered, m.ReqNum) {
			lostBits += len(m.Update.Flips)
		}
	}
	if diff := snapshotDiffBits(local, replica); diff > lostBits {
		t.Fatalf("loss cascaded: %d bits differ, only %d were lost", diff, lostBits)
	}

	// Recovery: a full-state update (reset + snapshot flips) heals.
	full := &icp.DirUpdate{Spec: d.Spec(), Bits: uint32(d.Bits()), Flips: d.SnapshotFlips()}
	if err := pt.ApplyUpdate("p", full, true); err != nil {
		t.Fatal(err)
	}
	replica = replicaFilter(t, pt, d)
	if string(local.Snapshot()) != string(replica.Snapshot()) {
		t.Fatal("full-state update did not heal the replica")
	}
}

// Property: under arbitrary loss patterns, applying any subset of the
// update stream never panics and never produces an out-of-range state,
// and full-state recovery always converges.
func TestQuickLossRecoveryConverges(t *testing.T) {
	prop := func(seed int64, lossPct uint8) bool {
		d, msgs := driveDirectory(t, seed, 600)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		pt := NewPeerTable()
		p := float64(lossPct%90) / 100
		for _, m := range msgs {
			if rng.Float64() < p {
				continue
			}
			if err := pt.ApplyUpdate("p", m.Update, false); err != nil {
				return false
			}
		}
		full := &icp.DirUpdate{Spec: d.Spec(), Bits: uint32(d.Bits()), Flips: d.SnapshotFlips()}
		if err := pt.ApplyUpdate("p", full, true); err != nil {
			return false
		}
		local := localBitFilter(t, d)
		replica := replicaFilter(t, pt, d)
		return string(local.Snapshot()) == string(replica.Snapshot())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- helpers ---

func contains(msgs []icp.Message, reqNum uint32) bool {
	for _, m := range msgs {
		if m.ReqNum == reqNum {
			return true
		}
	}
	return false
}

// localBitFilter reconstructs the directory's current bit filter through
// its snapshot flips (the same path a bootstrap uses).
func localBitFilter(t testing.TB, d *Directory) *bloom.Filter {
	t.Helper()
	f := bloom.MustNewFilter(d.Bits(), d.Spec())
	if err := f.Apply(d.SnapshotFlips()); err != nil {
		t.Fatal(err)
	}
	return f
}

// replicaFilter reads peer "p"'s replica filter directly (same package).
func replicaFilter(t testing.TB, pt *PeerTable, d *Directory) *bloom.Filter {
	t.Helper()
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	ps := pt.peers["p"]
	if ps == nil {
		t.Fatal("replica missing")
	}
	return ps.filter
}

func snapshotDiffBits(a, b *bloom.Filter) int {
	sa, sb := a.Snapshot(), b.Snapshot()
	diff := 0
	for i := range sa {
		x := sa[i] ^ sb[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	return diff
}

// The hash spec in every update allows the receiver to verify coherence;
// a peer that restarts with a different spec must be re-learned, not
// merged.
func TestSpecChangeIsolation(t *testing.T) {
	pt := NewPeerTable()
	u1 := &icp.DirUpdate{Spec: hashing.Spec{FunctionNum: 4, FunctionBits: 32}, Bits: 1024,
		Flips: []bloom.Flip{{Index: 3, Set: true}}}
	if err := pt.ApplyUpdate("p", u1, false); err != nil {
		t.Fatal(err)
	}
	u2 := &icp.DirUpdate{Spec: hashing.Spec{FunctionNum: 6, FunctionBits: 20}, Bits: 1024,
		Flips: []bloom.Flip{{Index: 5, Set: true}}}
	if err := pt.ApplyUpdate("p", u2, false); err != nil {
		t.Fatal(err)
	}
	pt.mu.RLock()
	f := pt.peers["p"].filter
	pt.mu.RUnlock()
	if f.OnesCount() != 1 {
		t.Fatalf("spec change merged old state: %d bits set", f.OnesCount())
	}
	if f.Spec() != u2.Spec {
		t.Fatalf("replica kept old spec %v", f.Spec())
	}
}

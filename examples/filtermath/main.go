// Filtermath: reproduce Figure 4 and the §V-C analysis — the
// false-positive probability of a Bloom filter as a function of bits per
// entry, analytically and by Monte-Carlo against the real implementation,
// plus the counting-filter overflow bound that justifies 4-bit counters.
package main

import (
	"fmt"
	"math/rand"

	sc "summarycache"
)

func main() {
	fmt.Println("Figure 4: false-positive probability vs bits per entry")
	fmt.Printf("%-12s %-12s %-14s %-10s %-12s\n",
		"bits/entry", "k=4 (paper)", "optimal k", "p @ opt k", "bound .6185^r")
	const n = 1 << 16
	for _, r := range []float64{2, 4, 6, 8, 10, 12, 16, 20, 24, 32} {
		m := uint64(r * n)
		kOpt := sc.OptimalK(m, n)
		fmt.Printf("%-12g %-12.2e k=%-11d %-10.2e %-12.2e\n",
			r,
			sc.FalsePositiveRate(m, n, 4),
			kOpt,
			sc.MinFalsePositiveRate(m, n),
			sc.PowerBound(r),
		)
	}

	fmt.Println("\n§V-C worked example (\"bit array 10 times larger than the entries\"):")
	fmt.Printf("  k=4: %.4f (paper: 1.2%%)   k=5 (optimal): %.4f (paper: 0.9%%)\n",
		sc.FalsePositiveRateApprox(10*n, n, 4),
		sc.FalsePositiveRateApprox(10*n, n, 5))

	fmt.Println("\nMonte-Carlo validation against the real filter (lf=8, k=4):")
	rng := rand.New(rand.NewSource(1))
	const members = 50_000
	f := sc.MustNewFilter(8*members, sc.DefaultHashSpec)
	for i := 0; i < members; i++ {
		f.Add(fmt.Sprintf("http://site%d.net/page%d", rng.Intn(5000), i))
	}
	trials, fps := 500_000, 0
	for i := 0; i < trials; i++ {
		if f.Test(fmt.Sprintf("http://other%d.org/doc%d", rng.Intn(5000), i)) {
			fps++
		}
	}
	fmt.Printf("  empirical: %.4f   analytic: %.4f   fill ratio: %.3f\n",
		float64(fps)/float64(trials),
		sc.FalsePositiveRate(8*members, members, 4),
		f.FillRatio())

	fmt.Println("\ncounting-filter overflow (why 4-bit counters suffice, §V-C):")
	fmt.Printf("%-14s %-22s\n", "counter bits", "Pr[any counter overflows]")
	for _, bits := range []int{2, 3, 4, 5} {
		j := 1 << bits
		fmt.Printf("%-14d %.3g\n", bits,
			sc.CounterOverflowProbability(16*(1<<20), 1<<20, 4, j))
	}
	fmt.Println("\nexpected maximum counter at the paper's configuration (lf=16, k=4):",
		sc.ExpectedMaxCount(16*(1<<20), 1<<20, 4))
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 0.8); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("accepted alpha=0")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("accepted alpha<0")
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := MustNewZipf(1000, 0.8)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(1000) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	z := MustNewZipf(10000, 0.8)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, z.N())
	const trials = 200000
	for i := 0; i < trials; i++ {
		counts[z.Sample(rng)]++
	}
	// Rank 0 should be sampled roughly Prob(0)*trials times.
	want := z.Prob(0) * trials
	if math.Abs(float64(counts[0])-want) > want*0.1 {
		t.Errorf("rank 0 sampled %d times, want ≈%.0f", counts[0], want)
	}
	// Popularity must be broadly decreasing: top 1% of ranks attract far
	// more than 1% of requests under alpha=0.8.
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if float64(top)/trials < 0.15 {
		t.Errorf("top-1%% share %.3f too small for Zipf(0.8)", float64(top)/trials)
	}
}

func TestZipfSampleInRange(t *testing.T) {
	prop := func(seed int64) bool {
		z := MustNewZipf(50, 1.0)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if s := z.Sample(rng); s < 0 || s >= 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParetoBounds(t *testing.T) {
	p := Pareto{Alpha: 1.1, Min: 1024, Max: 250 * 1024}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		x := p.Sample(rng)
		if x < 1024 || x > 250*1024 {
			t.Fatalf("sample %d outside bounds", x)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	p := Pareto{Alpha: 1.1, Min: 1024, Max: 10 << 20}
	rng := rand.New(rand.NewSource(3))
	var big int
	const trials = 100000
	for i := 0; i < trials; i++ {
		if p.Sample(rng) > 100*1024 {
			big++
		}
	}
	// P(X > 100k) ≈ (min/100k)^alpha ≈ 0.0064 for the unbounded law.
	frac := float64(big) / trials
	if frac < 0.003 || frac > 0.02 {
		t.Errorf("tail mass %.4f outside heavy-tail band", frac)
	}
}

func TestParetoMean(t *testing.T) {
	p := Pareto{Alpha: 1.5, Min: 1000, Max: 0}
	if got, want := p.Mean(), 3000.0; math.Abs(got-want) > 1 {
		t.Errorf("unbounded mean = %v, want %v", got, want)
	}
	if !math.IsInf(Pareto{Alpha: 1, Min: 1}.Mean(), 1) {
		t.Error("alpha<=1 mean should be +Inf")
	}
	// Truncated mean must be finite and between min and max.
	tr := Pareto{Alpha: 1.1, Min: 1024, Max: 250 * 1024}
	m := tr.Mean()
	if m < 1024 || m > 250*1024 {
		t.Errorf("truncated mean %v out of range", m)
	}
	// Empirical agreement.
	rng := rand.New(rand.NewSource(4))
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(float64(tr.Sample(rng)))
	}
	if math.Abs(w.Mean()-m) > m*0.05 {
		t.Errorf("empirical mean %v vs analytic %v", w.Mean(), m)
	}
}

func TestParetoDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if got := (Pareto{Alpha: 0, Min: 100}).Sample(rng); got != 100 {
		t.Errorf("degenerate alpha: got %d", got)
	}
}

func TestStackSamplerValidation(t *testing.T) {
	if _, err := NewStackSampler(0, 1); err == nil {
		t.Error("accepted capacity 0")
	}
	if _, err := NewStackSampler(10, 0); err == nil {
		t.Error("accepted alpha 0")
	}
}

func TestStackSamplerReuseEmpty(t *testing.T) {
	s := MustNewStackSampler(8, 1)
	rng := rand.New(rand.NewSource(6))
	if _, ok := s.Reuse(rng); ok {
		t.Fatal("Reuse on empty stack returned ok")
	}
}

func TestStackSamplerRecencyBias(t *testing.T) {
	s := MustNewStackSampler(100, 1.5)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		s.Record(i)
	}
	// Measure depth bias directly: record a fresh item, then draw once. The
	// just-recorded item sits at depth 0, which Zipf(100, 1.5) selects with
	// probability ≈ 0.41 — vastly above the uniform 1%.
	const trials = 10000
	hits := 0
	for i := 0; i < trials; i++ {
		fresh := 1000 + i
		s.Record(fresh)
		if v, ok := s.Reuse(rng); ok && v == fresh {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.3 || frac > 0.55 {
		t.Errorf("depth-0 reuse fraction %.3f, want ≈0.41", frac)
	}
}

func TestStackSamplerEviction(t *testing.T) {
	s := MustNewStackSampler(4, 1)
	for i := 0; i < 10; i++ {
		s.Record(i)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	// Recording an existing item must not grow the stack.
	s.Record(9)
	if s.Len() != 4 {
		t.Fatalf("duplicate record grew stack to %d", s.Len())
	}
}

func TestStackSamplerConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := MustNewStackSampler(16, 1.2)
		for i := 0; i < 200; i++ {
			if rng.Intn(2) == 0 {
				s.Record(rng.Intn(40))
			} else if v, ok := s.Reuse(rng); ok {
				_ = v
			}
			if s.Len() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Fatal("zero value not empty")
	}
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.Mean() != 5 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Variance()-32.0/7) > 1e-9 {
		t.Errorf("variance = %v, want %v", w.Variance(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
	if w.String() == "" {
		t.Error("empty String()")
	}
}

func TestWelfordMerge(t *testing.T) {
	prop := func(ai, bi []int16) bool {
		var wa, wb, all Welford
		for _, v := range ai {
			x := float64(v)
			wa.Add(x)
			all.Add(x)
		}
		for _, v := range bi {
			x := float64(v)
			wb.Add(x)
			all.Add(x)
		}
		wa.Merge(wb)
		if wa.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return math.Abs(wa.Mean()-all.Mean()) < 1e-6*(1+math.Abs(all.Mean())) &&
			math.Abs(wa.Variance()-all.Variance()) < 1e-6*(1+all.Variance())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyRecorder(t *testing.T) {
	var l LatencyRecorder
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	if got := l.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := l.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := l.Percentile(0); got != 1*time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio not 0")
	}
	r.Add(true)
	r.Add(false)
	r.Add(true)
	r.Add(true)
	if r.Value() != 0.75 || r.Percent() != 75 {
		t.Errorf("ratio = %v", r.Value())
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := MustNewZipf(1<<20, 0.8)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Sample(rng)
	}
}

func BenchmarkParetoSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DefaultPareto.Sample(rng)
	}
}

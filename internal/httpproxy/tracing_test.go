package httpproxy

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/obs"
	"summarycache/internal/origin"
	"summarycache/internal/tracing"
)

// traceSummary / traceView mirror the /debug/traces JSON shapes.
type traceSummary struct {
	ID      string `json:"id"`
	Node    string `json:"node"`
	Kind    string `json:"kind"`
	URL     string `json:"url"`
	Outcome string `json:"outcome"`
	Anomaly string `json:"anomaly,omitempty"`
	Kept    string `json:"kept"`
	Spans   int    `json:"spans"`
}

type traceView struct {
	ID      string         `json:"id"`
	Node    string         `json:"node"`
	Kind    string         `json:"kind"`
	URL     string         `json:"url"`
	Outcome string         `json:"outcome"`
	Anomaly string         `json:"anomaly,omitempty"`
	Kept    string         `json:"kept"`
	Spans   []tracing.Span `json:"spans"`
}

func getTraceJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp.StatusCode
}

func findSpan(spans []tracing.Span, name, peer string) *tracing.Span {
	for i := range spans {
		if spans[i].Name == name && (peer == "" || spans[i].Peer == peer) {
			return &spans[i]
		}
	}
	return nil
}

// TestFalseHitTraceAcrossMesh is the end-to-end acceptance test: a
// 3-proxy SC-ICP mesh where proxy B's summary replica at proxy A is
// deliberately stale (B purged the document but never published the
// deletion). A request through A then false-hits: A's summary probe
// predicts B has it, B answers MISS, and the origin serves the document.
// Fetching /debug/traces from A's and B's admin endpoints must show
//
//	(a) one false-hit trace whose querying-side and answering-side spans
//	    share a single trace ID, correlated via the ICP RequestNumber,
//	(b) a decision audit naming the probed Bloom bit indices and the
//	    stale replica generation, and
//	(c) tail-based sampling keeping it even though the head rate is 0.
func TestFalseHitTraceAcrossMesh(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })

	// Per-proxy registries and tracers, head rate 0: only tail-kept
	// (anomalous) traces survive.
	var proxies []*Proxy
	var tracers []*tracing.Tracer
	var admins []*httptest.Server
	for i := 0; i < 3; i++ {
		reg := obs.NewRegistry()
		tracer := tracing.New(tracing.Config{HeadRate: 0, Buffer: 64, Registry: reg})
		p, err := Start(Config{
			Mode:       ModeSCICP,
			CacheBytes: 8 << 20,
			Summary: core.DirectoryConfig{
				ExpectedDocs: 2000, UpdateThreshold: 0.01,
			},
			// Deletions must stay unpublished so A's replica of B goes
			// stale: no threshold publication can ever trip.
			MinUpdateFlips: 1 << 20,
			QueryTimeout:   2 * time.Second,
			Metrics:        reg,
			Tracer:         tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		admin := httptest.NewServer(obs.NewHandler(reg, p.Health(),
			obs.Mount{Pattern: "/debug/traces", Handler: tracer.Handler()}))
		t.Cleanup(admin.Close)
		proxies = append(proxies, p)
		tracers = append(tracers, tracer)
		admins = append(admins, admin)
	}
	for i, p := range proxies {
		for j, q := range proxies {
			if i != j {
				if err := p.AddPeer(q.ICPAddr(), q.URL()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	a, b := proxies[0], proxies[1]
	m := &mesh{origin: org, proxies: proxies}

	// Seed B with the document and publish the insertion, so A's replica
	// of B's summary says "B has it".
	doc := m.docURL("traced/stale-doc", 2048)
	m.fetch(t, b, doc)
	b.FlushSummary()
	waitForCandidate(t, a, doc)

	// Now make that replica stale: B drops the document, and with the
	// publication threshold out of reach the deletion flip never ships.
	if !b.Purge(doc) {
		t.Fatal("purge: document was not cached at B")
	}
	if b.CacheLen() != 0 {
		t.Fatalf("B still caches %d documents after purge", b.CacheLen())
	}

	// The false hit: A misses locally, its replica nominates B, B answers
	// MISS, the origin serves it.
	m.fetch(t, a, doc)
	if st := a.Stats(); st.FalseHits != 1 {
		t.Fatalf("A stats = %+v, want exactly one false hit", st)
	}

	// A normal request through A (an ordinary miss) must NOT be retained
	// at head rate 0 — only the tail-kept false hit survives.
	m.fetch(t, a, m.docURL("traced/ordinary", 1024))

	// (c) The false-hit trace survived head rate 0, kept by tail sampling.
	var list struct {
		Count  int            `json:"count"`
		Traces []traceSummary `json:"traces"`
	}
	if code := getTraceJSON(t, admins[0].URL+"/debug/traces?outcome=false_hit", &list); code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", code)
	}
	if list.Count != 1 {
		t.Fatalf("A retained %d false-hit traces, want 1: %+v", list.Count, list.Traces)
	}
	got := list.Traces[0]
	if got.Kept != "tail" {
		t.Errorf("kept = %q, want tail (head rate is 0)", got.Kept)
	}
	if got.Anomaly != "false_hit" || got.URL != doc {
		t.Errorf("trace summary = %+v", got)
	}
	var all struct {
		Count int `json:"count"`
	}
	getTraceJSON(t, admins[0].URL+"/debug/traces", &all)
	if all.Count != 1 {
		t.Errorf("A retained %d traces total, want only the false hit", all.Count)
	}

	// The querying side's full view: local lookup, audited summary probe,
	// ICP round-trip, origin fetch.
	var aViews []traceView
	if code := getTraceJSON(t, admins[0].URL+"/debug/traces?id="+got.ID, &aViews); code != http.StatusOK {
		t.Fatalf("id view status %d", code)
	}
	if len(aViews) != 1 || aViews[0].Kind != tracing.KindRequest {
		t.Fatalf("A id view = %+v, want one request trace", aViews)
	}
	spans := aViews[0].Spans
	if s := findSpan(spans, tracing.SpanLocalLookup, ""); s == nil || s.Actual != "miss" {
		t.Errorf("local_lookup span = %+v, want actual=miss", s)
	}
	bID := b.ICPAddr().String()
	probe := findSpan(spans, tracing.SpanSummaryProbe, bID)
	if probe == nil {
		t.Fatalf("no summary_probe span for B (%s) in %+v", bID, spans)
	}
	// (b) The decision audit: the lie is fully attributed — predicted hit
	// against a named replica generation, probed at named bit indices,
	// answered miss.
	if probe.Predicted != "hit" || probe.Actual != "miss" {
		t.Errorf("probe predicted=%q actual=%q, want hit/miss", probe.Predicted, probe.Actual)
	}
	if probe.Audit == nil {
		t.Fatal("summary_probe span carries no audit")
	}
	if len(probe.Audit.BitIndexes) == 0 {
		t.Error("audit names no probed bit indices")
	}
	for _, idx := range probe.Audit.BitIndexes {
		if idx >= probe.Audit.FilterBits {
			t.Errorf("bit index %d outside filter of %d bits", idx, probe.Audit.FilterBits)
		}
	}
	if probe.Audit.Generation == 0 {
		t.Error("audit names no replica generation (stale filter unattributable)")
	}
	q := findSpan(spans, tracing.SpanICPQuery, "")
	if q == nil {
		t.Fatalf("no icp_query span in %+v", spans)
	}
	if q.Actual != "all_miss" {
		t.Errorf("icp_query actual = %q, want all_miss", q.Actual)
	}
	if findSpan(spans, tracing.SpanOriginFetch, "") == nil {
		t.Errorf("no origin_fetch span in %+v", spans)
	}

	// (a) The answering side: B retained an icp_answer trace under the
	// SAME ID, derived independently from (querier addr, RequestNumber).
	// B finishes its trace just after sending the reply, so poll briefly.
	var bViews []traceView
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		bViews = nil
		if code := getTraceJSON(t, admins[1].URL+"/debug/traces?id="+got.ID, &bViews); code == http.StatusOK {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(bViews) != 1 || bViews[0].Kind != tracing.KindICPAnswer {
		t.Fatalf("B id view = %+v, want one icp_answer trace sharing ID %s", bViews, got.ID)
	}
	bv := bViews[0]
	if bv.Anomaly != "false_hit_answered" || bv.Kept != "tail" {
		t.Errorf("B answer trace = %+v, want tail-kept false_hit_answered", bv)
	}
	ans := findSpan(bv.Spans, tracing.SpanICPAnswer, "")
	if ans == nil {
		t.Fatalf("no icp_answer span in %+v", bv.Spans)
	}
	if ans.Predicted != "hit" || ans.Actual != "miss" {
		t.Errorf("answer span predicted=%q actual=%q, want hit/miss", ans.Predicted, ans.Actual)
	}
	// The correlation key itself: both sides recorded the same ICP
	// RequestNumber, and hashing it with the querier address reproduces
	// the shared trace ID.
	if ans.ReqNum != q.ReqNum {
		t.Errorf("answer reqNum %d != query reqNum %d", ans.ReqNum, q.ReqNum)
	}
	wantID, _ := tracing.ParseID(got.ID)
	if derived := tracing.IDFromICP(a.ICPAddr().String(), q.ReqNum); derived != wantID {
		t.Errorf("IDFromICP(%s, %d) = %v, want %s", a.ICPAddr(), q.ReqNum, derived, got.ID)
	}

	// Tracer counters registered in the obs registry agree with the store.
	if tracers[0].Traces()[0].ID() != wantID {
		t.Error("tracer store and handler disagree")
	}
	srv := admins[0]
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	series := parseProm(t, resp.Body)
	if v := series["summarycache_trace_kept_tail_total"]; v != 1 {
		t.Errorf("trace_kept_tail_total = %v, want 1", v)
	}
	if v := series["summarycache_trace_sampled_total"]; v != 0 {
		t.Errorf("trace_sampled_total = %v, want 0 at head rate 0", v)
	}
	if v := series["summarycache_trace_dropped_total"]; v < 1 {
		t.Errorf("trace_dropped_total = %v, want >=1 (the ordinary miss)", v)
	}
}

// TestDisabledTracingLocalHitNoExtraAllocs is the bounded-overhead
// acceptance check at the proxy layer: with tracing disabled (nil
// Tracer), the tracing hooks around the local-hit path add zero
// allocations over the bare cache lookup.
func TestDisabledTracingLocalHitNoExtraAllocs(t *testing.T) {
	m := newMesh(t, 1, ModeNone, 0)
	p := m.proxies[0]
	u := m.docURL("allocs/doc", 4096)
	m.fetch(t, p, u) // warm the cache
	if p.tracer != nil {
		t.Fatal("test needs a proxy with tracing disabled")
	}

	baseline := testing.AllocsPerRun(500, func() {
		if _, _, ok := p.cachedBody(u); !ok {
			t.Fatal("document fell out of cache")
		}
	})
	withHooks := testing.AllocsPerRun(500, func() {
		// The exact hook sequence serveProxy/serveProxyClassified run on
		// a local hit when p.tracer == nil.
		var tr *tracing.Trace
		if p.tracer != nil {
			tr = p.tracer.StartRequest("x", u)
		}
		if _, _, ok := p.cachedBody(u); !ok {
			t.Fatal("document fell out of cache")
		}
		if tr != nil {
			tr.AddSpan(tracing.Span{Name: tracing.SpanLocalLookup})
		}
		tr.Finish(outcomeLocalHit)
	})
	if withHooks != baseline {
		t.Fatalf("disabled tracing adds %v allocs per local hit (baseline %v)",
			withHooks-baseline, baseline)
	}
}

// TestTracedRemoteHit covers the happy cooperative path: the summary is
// fresh, the nominated peer confirms, and the sibling delivers. At head
// rate 1 the trace is head-kept with peer_fetch recorded.
func TestTracedRemoteHit(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	tracer := tracing.New(tracing.Config{HeadRate: 1, Buffer: 64})
	var proxies []*Proxy
	for i := 0; i < 2; i++ {
		p, err := Start(Config{
			Mode:       ModeSCICP,
			CacheBytes: 8 << 20,
			Summary: core.DirectoryConfig{
				ExpectedDocs: 2000, UpdateThreshold: 0.01,
			},
			QueryTimeout: 2 * time.Second,
			Tracer:       tracer, // one shared tracer, as with a shared registry
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
	}
	for i, p := range proxies {
		for j, q := range proxies {
			if i != j {
				if err := p.AddPeer(q.ICPAddr(), q.URL()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	a, b := proxies[0], proxies[1]
	m := &mesh{origin: org, proxies: proxies}

	doc := m.docURL("traced/shared-doc", 2048)
	m.fetch(t, b, doc)
	b.FlushSummary()
	waitForCandidate(t, a, doc)
	m.fetch(t, a, doc)
	if st := a.Stats(); st.RemoteHits != 1 {
		t.Fatalf("A stats = %+v, want one remote hit", st)
	}

	// With one shared tracer, Find on the request's ID yields the
	// querying-side request AND B's answering-side trace.
	var req *tracing.Trace
	for _, tr := range tracer.Traces() {
		if tr.Outcome() == outcomeRemoteHit {
			req = tr
		}
	}
	if req == nil {
		t.Fatal("no remote_hit trace retained at head rate 1")
	}
	if req.Kept() != "head" {
		t.Errorf("remote-hit trace kept = %q, want head", req.Kept())
	}
	matches := tracer.Find(req.ID())
	if len(matches) != 2 {
		t.Fatalf("Find(%v) = %d traces, want request + answer", req.ID(), len(matches))
	}
	spans := req.Spans()
	probe := findSpan(spans, tracing.SpanSummaryProbe, b.ICPAddr().String())
	if probe == nil || probe.Predicted != "hit" || probe.Actual != "hit" {
		t.Errorf("probe span = %+v, want a confirmed hit prediction", probe)
	}
	fetch := findSpan(spans, tracing.SpanPeerFetch, b.ICPAddr().String())
	if fetch == nil || fetch.Actual != "ok" {
		t.Errorf("peer_fetch span = %+v, want ok", fetch)
	}
	if findSpan(spans, tracing.SpanOriginFetch, "") != nil {
		t.Error("remote hit must not record an origin fetch")
	}
}

// TestTracedClassicICP exercises the ModeICP instrumentation: the query
// fan-out span and the answering side under classic ICP semantics (a
// MISS answer is ordinary, not anomalous).
func TestTracedClassicICP(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	tracer := tracing.New(tracing.Config{HeadRate: 1, Buffer: 64})
	var proxies []*Proxy
	for i := 0; i < 2; i++ {
		p, err := Start(Config{
			Mode:         ModeICP,
			CacheBytes:   8 << 20,
			QueryTimeout: 2 * time.Second,
			Tracer:       tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
	}
	for i, p := range proxies {
		for j, q := range proxies {
			if i != j {
				if err := p.AddPeer(q.ICPAddr(), q.URL()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	a := proxies[0]
	m := &mesh{origin: org, proxies: proxies}

	doc := m.docURL("traced/icp-doc", 1024)
	m.fetch(t, a, doc) // miss: queries B (which answers MISS), then origin

	var req *tracing.Trace
	for _, tr := range tracer.Traces() {
		if tr.Outcome() == outcomeMiss {
			req = tr
		}
	}
	if req == nil {
		t.Fatal("no miss trace retained")
	}
	q := findSpan(req.Spans(), tracing.SpanICPQuery, "")
	if q == nil || q.Actual != "all_miss" {
		t.Fatalf("icp_query span = %+v, want all_miss", q)
	}
	// B's answering-side trace shares the ID but is NOT anomalous: under
	// classic ICP everyone is queried, so a MISS answer is ordinary.
	matches := tracer.Find(req.ID())
	if len(matches) != 2 {
		t.Fatalf("Find = %d traces, want request + answer", len(matches))
	}
	for _, tr := range matches {
		if tr.Outcome() == "icp_miss" && tr.Kept() != "head" {
			t.Errorf("classic-ICP miss answer kept = %q, want head (not tail)", tr.Kept())
		}
	}
}

// Package ok spawns goroutines that all have a reachable shutdown
// path: stop-channel selects, labeled breaks, closed-channel ranges,
// bounded conditions and the closed-conn error-return idiom.
package ok

import "sync"

var n int

func work() { n++ }

type pump struct {
	stop chan struct{}
	in   chan int
	wg   sync.WaitGroup
}

func (p *pump) Start() {
	// Stop-channel select: the case returns.
	go func() {
		for {
			select {
			case <-p.stop:
				return
			case v := <-p.in:
				n += v
			}
		}
	}()
	// A labeled break exits the outer loop.
	go func() {
	drain:
		for {
			select {
			case <-p.stop:
				break drain
			case v := <-p.in:
				n += v
			}
		}
	}()
	// Ranging a channel ends when the channel closes.
	go func() {
		for v := range p.in {
			n += v
		}
	}()
	// Condition loops are bounded by their condition.
	go func() {
		for i := 0; i < 64; i++ {
			work()
		}
	}()
	// The closed-conn idiom: a receive failure returns.
	go p.read()
	p.wg.Add(1)
	// Bounded work, announced through a WaitGroup.
	go func() {
		defer p.wg.Done()
		work()
	}()
}

func (p *pump) read() {
	for {
		v, ok := <-p.in
		if !ok {
			return
		}
		n += v
	}
}

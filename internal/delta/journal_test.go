package delta

import (
	"errors"
	"testing"
)

// TestJournalRecordRoundTrip walks a framed record stream back out
// byte-exactly.
func TestJournalRecordRoundTrip(t *testing.T) {
	recs := []JournalRecord{
		{Op: JournalInsert, Key: "http://a/1", Size: 2048, Version: 7},
		{Op: JournalEvict, Key: "http://a/1"},
		{Op: JournalInsert, Key: "", Size: 0, Version: -3},
		{Op: JournalInsert, Key: "k", Size: 1 << 40, Version: 1},
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendJournalRecord(buf, r)
	}
	var got []JournalRecord
	for len(buf) > 0 {
		payload, rest, err := NextFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		r, err := DecodeJournalRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
		buf = rest
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

// TestNextFrameTornTail: a stream cut mid-frame yields every complete
// frame then ErrTornFrame — the crash-recovery contract.
func TestNextFrameTornTail(t *testing.T) {
	var buf []byte
	buf = AppendJournalRecord(buf, JournalRecord{Op: JournalInsert, Key: "a", Size: 1, Version: 1})
	whole := len(buf)
	buf = AppendJournalRecord(buf, JournalRecord{Op: JournalEvict, Key: "a"})
	for cut := whole + 1; cut < len(buf); cut++ {
		b := buf[:cut]
		payload, rest, err := NextFrame(b)
		if err != nil {
			t.Fatalf("cut %d: first frame should survive: %v", cut, err)
		}
		if _, err := DecodeJournalRecord(payload); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if _, _, err := NextFrame(rest); !errors.Is(err, ErrTornFrame) {
			t.Fatalf("cut %d: want ErrTornFrame, got %v", cut, err)
		}
	}
}

// TestNextFrameCorruption: flipped payload bytes and absurd lengths are
// ErrCorruptFrame, ending the valid prefix.
func TestNextFrameCorruption(t *testing.T) {
	buf := AppendJournalRecord(nil, JournalRecord{Op: JournalInsert, Key: "abc", Size: 9, Version: 2})
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0xFF
	if _, _, err := NextFrame(bad); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("payload flip: want ErrCorruptFrame, got %v", err)
	}
	huge := append([]byte(nil), buf...)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, err := NextFrame(huge); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("huge length: want ErrCorruptFrame, got %v", err)
	}
	if payload, rest, err := NextFrame(nil); payload != nil || rest != nil || err != nil {
		t.Fatal("empty buffer is a clean end, not an error")
	}
}

package faultnet

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosRates is a representative schedule used across the tests.
var chaosRates = Rates{Drop: 0.2, Duplicate: 0.1, Delay: 0.1, DelayMin: time.Millisecond, DelayMax: 3 * time.Millisecond}

// TestDeciderDeterminism is the package's core contract: the same seed
// and rates produce the same verdict (and delay) sequence, event by event.
func TestDeciderDeterminism(t *testing.T) {
	a := newDecider(42, 7)
	b := newDecider(42, 7)
	diffSeed := newDecider(43, 7)
	diverged := false
	for i := 0; i < 10000; i++ {
		va, da := a.udpVerdict(chaosRates)
		vb, db := b.udpVerdict(chaosRates)
		if va != vb || da != db {
			t.Fatalf("event %d: (%v,%v) != (%v,%v)", i, va, da, vb, db)
		}
		if vc, dc := diffSeed.udpVerdict(chaosRates); vc != va || dc != da {
			diverged = true
		}
	}
	if !diverged {
		t.Error("a different seed produced an identical 10k-event sequence")
	}
}

func TestDeciderRatesRoughlyHonored(t *testing.T) {
	d := newDecider(1, 1)
	counts := map[Verdict]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		v, _ := d.udpVerdict(chaosRates)
		counts[v]++
	}
	check := func(v Verdict, want float64) {
		got := float64(counts[v]) / n
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("%v rate %.3f, want ~%.3f", v, got, want)
		}
	}
	check(Drop, 0.2)
	check(Duplicate, 0.1)
	check(Delay, 0.1)
	check(Pass, 0.6)
}

// scriptConn is a fake socket recording outbound writes and serving a
// scripted inbound queue.
type scriptConn struct {
	mu     sync.Mutex
	writes []string
	inbox  []string
}

func (s *scriptConn) ReadFromUDP(b []byte) (int, *net.UDPAddr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.inbox) == 0 {
		return 0, nil, io.EOF
	}
	msg := s.inbox[0]
	s.inbox = s.inbox[1:]
	return copy(b, msg), &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}, nil
}

func (s *scriptConn) WriteToUDP(b []byte, _ *net.UDPAddr) (int, error) {
	s.mu.Lock()
	s.writes = append(s.writes, string(b))
	s.mu.Unlock()
	return len(b), nil
}

func (s *scriptConn) Close() error        { return nil }
func (s *scriptConn) LocalAddr() net.Addr { return &net.UDPAddr{} }

func (s *scriptConn) wireLog() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.writes...)
}

// TestWrapUDPDeterministicSchedule drives the same write sequence through
// two injectors built from the same scenario and requires the on-wire
// result to be identical (drop/duplicate only — delays land asynchronously
// and are exercised separately).
func TestWrapUDPDeterministicSchedule(t *testing.T) {
	scen := Scenario{Seed: 99, Outbound: Rates{Drop: 0.3, Duplicate: 0.2}}
	run := func() []string {
		raw := &scriptConn{}
		c := New(scen).WrapUDP(raw)
		addr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
		for i := 0; i < 400; i++ {
			msg := string(rune('a' + i%26))
			if _, err := c.WriteToUDP([]byte(msg), addr); err != nil {
				t.Fatal(err)
			}
		}
		return raw.wireLog()
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("wire logs differ in length: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("wire logs diverge at %d: %q vs %q", i, first[i], second[i])
		}
	}
	if len(first) == 400 {
		t.Error("no faults fired at 30% drop + 20% duplicate over 400 writes")
	}
}

func TestWrapUDPInboundDrop(t *testing.T) {
	scen := Scenario{Seed: 5, Inbound: Rates{Drop: 0.5}}
	inj := New(scen)
	raw := &scriptConn{}
	for i := 0; i < 200; i++ {
		raw.inbox = append(raw.inbox, "m")
	}
	c := inj.WrapUDP(raw)
	buf := make([]byte, 16)
	delivered := 0
	for {
		_, _, err := c.ReadFromUDP(buf)
		if err != nil {
			break
		}
		delivered++
	}
	dropped := inj.Count(KindUDPDropIn)
	if delivered+int(dropped) != 200 {
		t.Fatalf("delivered %d + dropped %d != 200", delivered, dropped)
	}
	if dropped < 60 || dropped > 140 {
		t.Errorf("dropped %d of 200 at rate 0.5", dropped)
	}
}

// TestInjectorDisabledPassthrough checks the kill switch: every event
// passes and no decision stream is consumed.
func TestInjectorDisabledPassthrough(t *testing.T) {
	inj := New(Scenario{Seed: 1, Outbound: Rates{Drop: 1}, Inbound: Rates{Drop: 1}})
	inj.SetEnabled(false)
	raw := &scriptConn{inbox: []string{"x"}}
	c := inj.WrapUDP(raw)
	addr := &net.UDPAddr{}
	for i := 0; i < 50; i++ {
		if _, err := c.WriteToUDP([]byte("y"), addr); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(raw.wireLog()); got != 50 {
		t.Fatalf("disabled injector dropped writes: %d of 50 on the wire", got)
	}
	buf := make([]byte, 4)
	if _, _, err := c.ReadFromUDP(buf); err != nil {
		t.Fatalf("disabled injector ate the inbound datagram: %v", err)
	}
	if inj.Total() != 0 {
		t.Errorf("disabled injector counted %d faults", inj.Total())
	}
}

// countingRT is a base transport recording calls and serving fixed bodies.
type countingRT struct {
	calls int
	body  string
}

func (c *countingRT) RoundTrip(req *http.Request) (*http.Response, error) {
	c.calls++
	return &http.Response{
		StatusCode:    http.StatusOK,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{},
		Body:          io.NopCloser(strings.NewReader(c.body)),
		ContentLength: int64(len(c.body)),
		Request:       req,
	}, nil
}

func testReq(t *testing.T, ctx context.Context) *http.Request {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://origin.test/doc", nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestTransportConnectFail(t *testing.T) {
	base := &countingRT{body: "hello"}
	rt := New(Scenario{Seed: 3, HTTP: HTTPRates{ConnectFail: 1}}).Transport(base)
	_, err := rt.RoundTrip(testReq(t, context.Background()))
	if !errors.Is(err, ErrInjectedConnect) {
		t.Fatalf("err = %v, want ErrInjectedConnect", err)
	}
	if base.calls != 0 {
		t.Errorf("base transport reached %d times through a connect failure", base.calls)
	}
}

func TestTransport5xxBurst(t *testing.T) {
	base := &countingRT{body: "hello"}
	inj := New(Scenario{Seed: 3, HTTP: HTTPRates{Err5xx: 0.3, Burst: 3}})
	rt := inj.Transport(base)
	var codes []int
	for i := 0; i < 60; i++ {
		resp, err := rt.RoundTrip(testReq(t, context.Background()))
		if err != nil {
			t.Fatal(err)
		}
		codes = append(codes, resp.StatusCode)
		resp.Body.Close()
	}
	// Every injected 503 must come in runs of exactly Burst (or end the
	// sequence early).
	run := 0
	for i, c := range codes {
		if c == http.StatusServiceUnavailable {
			run++
			continue
		}
		if run != 0 && run%3 != 0 {
			t.Fatalf("503 run of %d before index %d; bursts must be multiples of 3", run, i)
		}
		run = 0
	}
	if inj.Count(KindHTTP5xx) == 0 {
		t.Error("no 503 injected at rate 0.3 over 60 requests")
	}
}

func TestTransportTruncate(t *testing.T) {
	base := &countingRT{body: strings.Repeat("x", 1000)}
	rt := New(Scenario{Seed: 3, HTTP: HTTPRates{Truncate: 1}}).Transport(base)
	resp, err := rt.RoundTrip(testReq(t, context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want ErrUnexpectedEOF", err)
	}
	if len(body) >= 1000 {
		t.Errorf("truncated body still delivered %d of 1000 bytes", len(body))
	}
}

func TestTransportStallRespectsContext(t *testing.T) {
	base := &countingRT{body: "hello"}
	rt := New(Scenario{Seed: 3, HTTP: HTTPRates{Stall: 1, StallFor: time.Minute}}).Transport(base)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := rt.RoundTrip(testReq(t, ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("stall ignored the request context")
	}
}

func TestNilInjectorPassthrough(t *testing.T) {
	var inj *Injector
	base := &countingRT{body: "b"}
	if got := inj.Transport(base); got != http.RoundTripper(base) {
		t.Error("nil injector did not return the base transport unchanged")
	}
	raw := &scriptConn{}
	if got := inj.WrapUDP(raw); got != PacketConn(raw) {
		t.Error("nil injector did not return the raw socket unchanged")
	}
}

func TestScenarioFork(t *testing.T) {
	s := Scenario{Seed: 7, Outbound: chaosRates}
	a, b := s.Fork(1), s.Fork(2)
	if a.Seed == b.Seed || a.Seed == s.Seed {
		t.Errorf("forks did not derive distinct seeds: %d %d %d", s.Seed, a.Seed, b.Seed)
	}
	if a.Outbound != s.Outbound {
		t.Error("fork changed the rates")
	}
}

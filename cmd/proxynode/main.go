// Command proxynode runs one cooperating caching proxy — the deployable
// unit of the summary-cache system. Point browsers (or the repository's
// benchmark clients) at its HTTP port; peer it with sibling proxynodes via
// -peer flags (repeatable, "udpAddr,httpURL").
//
// Example 3-node mesh on one machine:
//
//	proxynode -http=127.0.0.1:3128 -icp=127.0.0.1:3130 -mode=scicp \
//	    -admin=127.0.0.1:9128 \
//	    -peer=127.0.0.1:3131,http://127.0.0.1:3129 &
//	proxynode -http=127.0.0.1:3129 -icp=127.0.0.1:3131 -mode=scicp \
//	    -admin=127.0.0.1:9129 \
//	    -peer=127.0.0.1:3130,http://127.0.0.1:3128 &
//
// The -admin listener serves the observability plane: Prometheus metrics
// at /metrics, expvar-style JSON at /debug/vars, pprof profiles at
// /debug/pprof/, peer-health (with build info) at /healthz, mesh health
// (per-peer summary divergence and false-decision accounting) at
// /debug/mesh, and — when -trace-sample or -trace-buffer enables
// tracing — request traces with summary-decision audits at /debug/traces.
// The -slo-latency-p99 and -slo-false-hit flags add named service-level
// objectives with error-budget burn-rate tracking at /debug/slo; with
// -perf-profile-capture, an SLO breach additionally captures a
// rate-limited ring of pprof profiles served at /debug/perf, and the
// breaching requests' traces are always retained at /debug/traces.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	sc "summarycache"
)

type peerList []string

func (p *peerList) String() string     { return strings.Join(*p, ";") }
func (p *peerList) Set(v string) error { *p = append(*p, v); return nil }

var (
	httpAddr  = flag.String("http", "127.0.0.1:3128", "HTTP listen address")
	icpAddr   = flag.String("icp", "127.0.0.1:3130", "ICP (UDP) listen address")
	adminAddr = flag.String("admin", "", "admin listen address serving /metrics, /debug/vars, /debug/pprof/ and /healthz (empty: disabled)")
	mode      = flag.String("mode", "scicp", "cooperation mode: none, icp, scicp")
	cacheMB   = flag.Int64("cache-mb", 256, "cache capacity in MB")
	threshold = flag.Float64("threshold", 0.01, "summary update threshold (scicp)")
	loadf     = flag.Float64("load-factor", 16, "Bloom filter bits per expected document (scicp)")
	statsSec  = flag.Duration("stats-interval", 30*time.Second, "stats logging interval (0: off)")
	healthSec = flag.Duration("health-interval", 0, "peer health-probe interval (scicp; 0: off)")
	parentURL = flag.String("parent", "", "parent proxy HTTP base URL (hierarchical mode)")
	logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat = flag.String("log-format", "text", "log format: text, json")
	traceRate = flag.Float64("trace-sample", 0,
		"head-sampling rate in [0,1] for request traces; anomalous traces (false hits, timeouts) are always kept once tracing is on")
	traceBuf = flag.Int("trace-buffer", 0,
		"trace ring-buffer capacity (0 with -trace-sample=0: tracing disabled entirely)")
	sloLatency = flag.Duration("slo-latency-p99", 0,
		"client latency SLO: requests slower than this are error-budget burn (budget 0.01) and their traces are always retained (0: no latency objective)")
	sloFalseHit = flag.Float64("slo-false-hit", 0,
		"false-hit ratio SLO ceiling: false hits over client requests above this ratio burn the error budget (0: no false-hit objective)")
	perfCapture = flag.Bool("perf-profile-capture", false,
		"on SLO breach, capture a rate-limited ring of pprof profiles (5s CPU + heap/mutex/block), served at /debug/perf")
	sloEvalSec = flag.Duration("slo-interval", 10*time.Second,
		"SLO evaluation window length")
	persistDir = flag.String("persist-dir", "",
		"warm-restart persistence directory: the cache, directory filter and peer replicas are checkpointed there and recovered on the next start (empty: persistence off)")
	persistFsync = flag.String("persist-fsync", "",
		"journal fsync policy: always, interval, never (empty: interval)")
	persistFsyncSec = flag.Duration("persist-fsync-interval", 0,
		"background journal sync cadence under the interval policy (0: 1s)")
	persistSnapSec = flag.Duration("persist-snapshot-interval", 30*time.Second,
		"periodic checkpoint cadence (0: only the boot and shutdown checkpoints)")
	peers peerList
)

func main() {
	flag.Var(&peers, "peer", "sibling proxy as udpAddr,httpURL (repeatable)")
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proxynode:", err)
		os.Exit(1)
	}
}

func parseMode(s string) (sc.ProxyMode, error) {
	switch strings.ToLower(s) {
	case "none":
		return sc.ProxyModeNone, nil
	case "icp":
		return sc.ProxyModeICP, nil
	case "scicp", "sc-icp":
		return sc.ProxyModeSCICP, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

// newLogger builds the slog handler the -log-level and -log-format flags
// describe.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

func run() error {
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	log, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	reg := sc.NewRegistry()
	sc.RegisterRuntimeMetrics(reg)

	// The performance watch is built before the proxy (it wires into the
	// tracer and the proxy config), so the false-hit ratio objective reads
	// the proxy through a reference filled in after StartProxy.
	var proxyRef *sc.Proxy
	var watch *sc.PerfWatch
	if *sloLatency > 0 || *sloFalseHit > 0 || *perfCapture {
		var objectives []sc.PerfObjective
		if *sloLatency > 0 {
			objectives = append(objectives, sc.PerfObjective{
				Name:      "client_p99",
				Threshold: *sloLatency,
				Budget:    0.01,
			})
		}
		if *sloFalseHit > 0 {
			objectives = append(objectives, sc.PerfObjective{
				Name:   "false_hit_ratio",
				Budget: *sloFalseHit,
				Num: func() uint64 {
					if proxyRef == nil {
						return 0
					}
					return proxyRef.Stats().FalseHits
				},
				Den: func() uint64 {
					if proxyRef == nil {
						return 0
					}
					return proxyRef.Stats().ClientRequests
				},
			})
		}
		watch = sc.NewPerfWatch(sc.PerfConfig{
			Registry:   reg,
			Logger:     log,
			Objectives: objectives,
			Capture:    sc.PerfCaptureConfig{Enabled: *perfCapture},
		})
	}

	var tracer *sc.Tracer
	if *traceRate > 0 || *traceBuf > 0 || watch != nil {
		if *traceRate < 0 || *traceRate > 1 {
			return fmt.Errorf("-trace-sample %v outside [0,1]", *traceRate)
		}
		// The watch needs the tracer's span stream even when no explicit
		// tracing flags are set: at head rate 0 only SLO-breaching
		// (anomalous) traces are retained, but every span still feeds the
		// per-stage histograms.
		cfg := sc.TracerConfig{
			HeadRate: *traceRate,
			Buffer:   *traceBuf,
			Registry: reg,
			Logger:   log,
		}
		if watch != nil {
			cfg.Sink = watch
		}
		tracer = sc.NewTracer(cfg)
	}
	var persistCfg *sc.PersistConfig
	if *persistDir != "" {
		policy, err := sc.ParsePersistFsyncPolicy(*persistFsync)
		if err != nil {
			return err
		}
		persistCfg = &sc.PersistConfig{
			Dir:              *persistDir,
			Fsync:            policy,
			FsyncInterval:    *persistFsyncSec,
			SnapshotInterval: *persistSnapSec,
		}
	}
	cacheBytes := *cacheMB << 20
	p, err := sc.StartProxy(sc.ProxyConfig{
		ListenAddr: *httpAddr,
		ICPAddr:    *icpAddr,
		Mode:       m,
		CacheBytes: cacheBytes,
		Summary: sc.DirectoryConfig{
			ExpectedDocs:    uint64(cacheBytes / 8192),
			LoadFactor:      *loadf,
			UpdateThreshold: *threshold,
		},
		ParentURL: *parentURL,
		Persist:   persistCfg,
		Metrics:   reg,
		Logger:    log,
		Tracer:    tracer,
		Perf:      watch,
	})
	if err != nil {
		return err
	}
	defer p.Close()
	proxyRef = p
	if watch != nil {
		watchStop := make(chan struct{})
		go watch.Run(*sloEvalSec, watchStop)
		defer close(watchStop)
	}
	attrs := []any{"mode", m.String(), "http", p.URL()}
	if m != sc.ProxyModeNone {
		attrs = append(attrs, "icp", p.ICPAddr().String())
	}
	if rec := p.Recovery(); rec.Recovered {
		log.Info("warm restart: recovered persisted state",
			"dir", *persistDir, "snapshot_gen", rec.SnapshotGen,
			"entries", rec.Entries, "journal_records", rec.JournalRecords,
			"torn_tail", rec.TornTail)
	}
	log.Info("proxy up", attrs...)

	if *adminAddr != "" {
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("admin listen %q: %w", *adminAddr, err)
		}
		var mounts []sc.Mount
		endpoints := "/metrics /debug/vars /debug/pprof/ /healthz"
		if tracer != nil {
			mounts = append(mounts, sc.Mount{Pattern: "/debug/traces", Handler: tracer.Handler()})
			endpoints += " /debug/traces"
		}
		if watch != nil {
			mounts = append(mounts,
				sc.Mount{Pattern: "/debug/slo", Handler: watch.SLOHandler()},
				sc.Mount{Pattern: "/debug/perf", Handler: watch.PerfHandler()})
			endpoints += " /debug/slo /debug/perf"
		}
		mounts = append(mounts, sc.Mount{Pattern: "/debug/mesh", Handler: p.MeshHandler()})
		endpoints += " /debug/mesh"
		admin := &http.Server{Handler: sc.NewAdminHandler(reg, p.Health(), mounts...)}
		go admin.Serve(ln)
		defer admin.Close()
		log.Info("admin endpoint up", "addr", ln.Addr().String(),
			"endpoints", endpoints)
	}

	for _, spec := range peers {
		parts := strings.SplitN(spec, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -peer %q: want udpAddr,httpURL", spec)
		}
		ua, err := net.ResolveUDPAddr("udp", parts[0])
		if err != nil {
			return fmt.Errorf("bad peer UDP address %q: %w", parts[0], err)
		}
		if err := p.AddPeer(ua, parts[1]); err != nil {
			return err
		}
		log.Info("peered", "icp", parts[0], "http", parts[1])
	}
	if *healthSec > 0 {
		stop := p.StartHealthChecks(sc.HealthConfig{Interval: *healthSec})
		defer stop()
	}

	logStats := func(msg string) {
		st := p.Stats()
		log.Info(msg,
			"requests", st.ClientRequests,
			"local_hits", st.LocalHits,
			"remote_hits", st.RemoteHits,
			"misses", st.Misses,
			"false_hits", st.FalseHits,
			"origin_fetches", st.OriginFetches,
			"udp_sent", st.UDP.Sent,
			"udp_received", st.UDP.Received,
			"udp_send_errors", st.UDP.SendErrors,
			"cached_docs", p.CacheLen(),
		)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsSec > 0 {
		t := time.NewTicker(*statsSec)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-stop:
			// The final partial interval would otherwise be lost: flush a
			// last stats line before exiting.
			logStats("final stats")
			log.Info("shutting down")
			return nil
		case <-tick:
			logStats("stats")
		}
	}
}

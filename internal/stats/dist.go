// Package stats provides the statistical machinery behind the workload
// generator and the evaluation harness: Zipf document popularity, the
// Pareto (heavy-tailed) document-size distribution used by the Wisconsin
// Proxy Benchmark, an LRU-stack temporal-locality sampler, and small online
// summary-statistics helpers.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^alpha. Unlike math/rand's Zipf it supports alpha ≤ 1, which is
// the regime reported for Web traces (the studies the paper cites measure
// alpha ≈ 0.7–0.8). Sampling is by inverse transform over the precomputed
// CDF (binary search, O(log n)).
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent alpha > 0.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: Zipf n must be positive, got %d", n)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("stats: Zipf alpha must be positive, got %v", alpha)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{n: n, cdf: cdf}, nil
}

// MustNewZipf is NewZipf, panicking on error.
func MustNewZipf(n int, alpha float64) *Zipf {
	z, err := NewZipf(n, alpha)
	if err != nil {
		panic(err)
	}
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Sample draws a rank using rng.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= z.n {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Pareto is the bounded Pareto document-size distribution of the Wisconsin
// Proxy Benchmark: density ∝ x^(-alpha-1) on [Min, Max]. The paper's
// benchmark uses a Pareto body with a heavy tail; we bound it at the
// paper's 250 KB cacheability limit by default so workloads exercise the
// cache-bypass path without unbounded objects.
type Pareto struct {
	Alpha float64
	Min   float64
	Max   float64 // 0 means unbounded
}

// DefaultPareto matches the benchmark configuration referenced by the
// paper's Table II experiments: alpha 1.1 with an ~8 KB mean after
// bounding — the paper's "average document size (8 K)".
var DefaultPareto = Pareto{Alpha: 1.1, Min: 1024, Max: 10 << 20}

// Sample draws a size in bytes.
func (p Pareto) Sample(rng *rand.Rand) int64 {
	if p.Alpha <= 0 || p.Min <= 0 {
		return int64(p.Min)
	}
	for i := 0; i < 64; i++ {
		u := rng.Float64()
		if u == 0 {
			continue
		}
		x := p.Min / math.Pow(u, 1/p.Alpha)
		if p.Max <= 0 || x <= p.Max {
			return int64(x)
		}
	}
	if p.Max > 0 {
		return int64(p.Max)
	}
	return int64(p.Min)
}

// Mean returns the analytic mean of the (possibly truncated-by-rejection)
// distribution. For the unbounded case it is alpha*min/(alpha-1) when
// alpha > 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	if p.Max <= 0 {
		return p.Alpha * p.Min / (p.Alpha - 1)
	}
	// Truncated Pareto mean.
	a, l, h := p.Alpha, p.Min, p.Max
	num := math.Pow(l, a) / (1 - math.Pow(l/h, a)) * a / (a - 1) *
		(1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
	return num
}

// StackSampler models temporal locality with an LRU-stack distance
// distribution: with probability pLocal the next reference repeats a
// recently used item, drawn from the reuse stack at a Zipf-distributed
// depth; otherwise the caller supplies a fresh draw from the popularity
// distribution. This is the "temporal locality patterns observed in [real
// traces]" mechanism the benchmark clients use.
type StackSampler struct {
	depth *Zipf
	stack []int
	pos   map[int]int // value -> index in stack, for O(1) move-to-front bookkeeping
	cap   int
}

// NewStackSampler builds a sampler with the given stack capacity and depth
// skew (higher alpha → stronger recency preference).
func NewStackSampler(capacity int, depthAlpha float64) (*StackSampler, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("stats: stack capacity must be positive, got %d", capacity)
	}
	z, err := NewZipf(capacity, depthAlpha)
	if err != nil {
		return nil, err
	}
	return &StackSampler{depth: z, cap: capacity, pos: make(map[int]int, capacity)}, nil
}

// MustNewStackSampler is NewStackSampler, panicking on error.
func MustNewStackSampler(capacity int, depthAlpha float64) *StackSampler {
	s, err := NewStackSampler(capacity, depthAlpha)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the current stack occupancy.
func (s *StackSampler) Len() int { return len(s.stack) }

// Reuse attempts to draw a previously referenced item; ok is false when the
// stack is empty. The drawn item moves to the top of the stack.
func (s *StackSampler) Reuse(rng *rand.Rand) (v int, ok bool) {
	if len(s.stack) == 0 {
		return 0, false
	}
	d := s.depth.Sample(rng)
	if d >= len(s.stack) {
		d = rng.Intn(len(s.stack))
	}
	// Stack top is the end of the slice.
	idx := len(s.stack) - 1 - d
	v = s.stack[idx]
	s.touch(v, idx)
	return v, true
}

// Record pushes a (possibly new) reference onto the stack top, evicting the
// coldest entry when full.
func (s *StackSampler) Record(v int) {
	if idx, ok := s.pos[v]; ok {
		s.touch(v, idx)
		return
	}
	if len(s.stack) >= s.cap {
		cold := s.stack[0]
		delete(s.pos, cold)
		copy(s.stack, s.stack[1:])
		s.stack = s.stack[:len(s.stack)-1]
		for i, u := range s.stack {
			s.pos[u] = i
		}
	}
	s.stack = append(s.stack, v)
	s.pos[v] = len(s.stack) - 1
}

func (s *StackSampler) touch(v int, idx int) {
	copy(s.stack[idx:], s.stack[idx+1:])
	s.stack[len(s.stack)-1] = v
	for i := idx; i < len(s.stack); i++ {
		s.pos[s.stack[i]] = i
	}
}

// Command okmain shows that main packages are exempt from the
// unchecked-close and stray-printing rules: a CLI's teardown and output
// belong to it.
package main

import "fmt"

type handle struct{}

func (handle) Close() error { return nil }

func main() {
	var h handle
	h.Close()
	fmt.Println("done")
}

// Package obs is the repository's unified observability layer: atomic
// counters, gauges and log-bucketed latency histograms collected in a
// concurrency-safe labeled Registry, exposed over an admin http.Handler
// (Prometheus text exposition at /metrics, expvar-style JSON at
// /debug/vars, net/http/pprof at /debug/pprof/, and /healthz backed by
// peer up/down state), plus structured-event helpers over log/slog.
//
// The paper's entire evaluation is message, byte, hit-class and latency
// accounting (Tables II/IV/V, Figs. 5-8); obs turns those same signals
// into live, scrapeable instrumentation so a deployed mesh can be
// monitored and profiled, not only benchmarked offline. Everything is
// stdlib-only.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry so they appear in the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (in-flight requests, peers
// up, cached bytes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add increments by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the histogram bounds used when none are given:
// log-scaled (factor 2) from 100µs to ~105s, in seconds. Two decades of
// sub-millisecond resolution cover loopback cache hits; the top covers the
// paper's 1s-latency origins with room for retries.
func DefaultLatencyBuckets() []float64 {
	out := make([]float64, 21)
	b := 100e-6
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// Histogram counts observations into fixed upper-bound buckets and keeps
// the running sum, Prometheus-style (cumulative on exposition, per-bucket
// internally). Bounds are in seconds for latency histograms but any unit
// works. Safe for concurrent use.
type Histogram struct {
	bounds []float64       // sorted upper bounds; implicit +Inf after
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a latency sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns per-bucket (non-cumulative) counts; the final
// element is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// HistogramSnapshot is the scalar summary of a Histogram — the form a
// Stats struct can carry so snapshot and scrape read the same instrument
// (full bucket vectors stay exposition-only).
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count uint64
	// Sum is the sum of all observed values.
	Sum float64
}

// Snapshot returns the histogram's scalar summary.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing it, the same estimate Prometheus's
// histogram_quantile computes. With zero observations every quantile is 0:
// a defined, JSON-marshalable value (NaN breaks encoding/json and reads as
// "missing" on dashboards, where 0 reads correctly as "no data yet"). A
// NaN q is a caller error and returns NaN; a quantile landing in the +Inf
// bucket reports the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) { // +Inf bucket
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Mean returns the average observed value (NaN with no observations).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	return h.Sum() / float64(n)
}

package icp

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Directory updates can be large ("on the order of several hundreds KB"
// for full summaries), and the paper notes that "due to the size of these
// messages, it is perhaps better to send them via TCP ... since the
// collection of cooperating proxies is relatively static, the proxies can
// just maintain a permanent TCP connection with each other to exchange
// update messages". This file provides that channel: ICP messages framed
// over persistent TCP connections.
//
// Framing: a 4-byte big-endian length followed by the standard encoded
// ICP message. MaxDatagram bounds a frame, like the UDP path.

// frameHeaderLen is the length prefix size.
const frameHeaderLen = 4

// ErrFrameTooLarge reports an oversized frame on the TCP channel.
var ErrFrameTooLarge = errors.New("icp: TCP frame exceeds maximum message size")

// WriteFrame writes one framed message to w. The frame is assembled in a
// pooled buffer (sized for header + MaxDatagram), so a steady-state send
// allocates nothing.
func WriteFrame(w io.Writer, m Message) (int, error) {
	bp := getBuf()
	defer putBuf(bp)
	buf := append(*bp, 0, 0, 0, 0)
	buf, err := m.Append(buf)
	if err != nil {
		return 0, err
	}
	*bp = buf
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-frameHeaderLen))
	return w.Write(buf)
}

// ReadFrame reads one framed message from r. The returned Message owns its
// memory; the connection-serving loop uses readFrameInto with a Decoder to
// avoid the per-frame allocations.
func ReadFrame(r io.Reader) (Message, int, error) {
	var dec Decoder
	m, n, err := readFrameInto(r, nil, &dec)
	if err != nil {
		return m, n, err
	}
	return m.Clone(), n, nil
}

// readFrameInto reads one frame into scratch (grown as needed, reused
// across calls) and decodes it in place via dec. The returned Message
// borrows both until the next call.
func readFrameInto(r io.Reader, scratch *[]byte, dec *Decoder) (Message, int, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxDatagram {
		return Message{}, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	var local []byte
	if scratch == nil {
		scratch = &local
	}
	if uint32(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	body := (*scratch)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, 0, err
	}
	m, err := dec.Decode(body)
	return m, frameHeaderLen + int(n), err
}

// TCPServer accepts persistent update connections and delivers each framed
// message to the handler with the remote address.
type TCPServer struct {
	ln      net.Listener
	handler Handler

	recv, recvB, dropped atomic.Uint64

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// ListenTCP starts an update-channel server on addr.
func ListenTCP(addr string, handler Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("icp: tcp listen %q: %w", addr, err)
	}
	s := &TCPServer{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// Stats reports receive counters.
func (s *TCPServer) Stats() Stats {
	return Stats{Received: s.recv.Load(), RecvBytes: s.recvB.Load(), Dropped: s.dropped.Load()}
}

// Close stops accepting and closes all connections, reporting the first
// teardown error (the listener's close still runs either way).
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var firstErr error
	for c := range s.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.mu.Unlock()
	if err := s.ln.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

func (s *TCPServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // already shut down; nothing to do with the error
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *TCPServer) serve(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close() // unwinding; no error path left
	}()
	br := bufio.NewReader(conn)
	from, _ := conn.RemoteAddr().(*net.TCPAddr)
	udpFrom := &net.UDPAddr{}
	if from != nil {
		udpFrom = &net.UDPAddr{IP: from.IP, Port: from.Port}
	}
	// Per-connection frame scratch and in-place Decoder: steady-state
	// frames are read and decoded without allocating (Handler borrow
	// contract applies).
	var scratch []byte
	var dec Decoder
	for {
		m, n, err := readFrameInto(br, &scratch, &dec)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.dropped.Add(1)
			}
			return
		}
		s.recv.Add(1)
		s.recvB.Add(uint64(n))
		if s.handler != nil {
			s.handler(udpFrom, m)
		}
	}
}

// DefaultDialTimeout bounds connection establishment to a peer's update
// channel when TCPClientConfig leaves DialTimeout zero.
const DefaultDialTimeout = 5 * time.Second

// TCPClientConfig tunes a TCPClient's I/O deadlines.
type TCPClientConfig struct {
	// DialTimeout bounds connection establishment (DefaultDialTimeout
	// when 0; negative disables the bound).
	DialTimeout time.Duration
	// WriteTimeout, when positive, sets a per-send write deadline so one
	// stalled peer cannot wedge the publication loop indefinitely. 0: no
	// deadline beyond any context the caller passes to SendContext.
	WriteTimeout time.Duration
}

// TCPClient maintains one persistent connection to a peer's update
// channel, reconnecting lazily after failures.
type TCPClient struct {
	addr string
	cfg  TCPClientConfig

	mu   sync.Mutex
	conn net.Conn

	sent, sentB, reconnects, sendErrs atomic.Uint64
}

// NewTCPClient prepares a client for the peer's update address; the
// connection is established on first Send. This config form is the one
// canonical constructor (the positional dial-timeout form and the
// NewTCPClientWithConfig spelling of earlier revisions both folded into
// it). A zero DialTimeout means DefaultDialTimeout; negative disables the
// bound.
func NewTCPClient(addr string, cfg TCPClientConfig) *TCPClient {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	return &TCPClient{addr: addr, cfg: cfg}
}

// Addr returns the peer address.
func (c *TCPClient) Addr() string { return c.addr }

// Stats reports send counters; Dropped counts reconnects.
func (c *TCPClient) Stats() Stats {
	return Stats{
		Sent:       c.sent.Load(),
		SentBytes:  c.sentB.Load(),
		Dropped:    c.reconnects.Load(),
		SendErrors: c.sendErrs.Load(),
	}
}

// Send transmits one framed message, dialing or redialing as needed. One
// retry covers a connection that went stale between sends.
func (c *TCPClient) Send(m Message) error {
	return c.SendContext(context.Background(), m)
}

// SendContext is Send honoring ctx: cancellation aborts between attempts,
// and a ctx deadline tightens both the dial and the per-send write
// deadline (alongside any configured WriteTimeout).
func (c *TCPClient) SendContext(ctx context.Context, m Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			c.sendErrs.Add(1)
			return fmt.Errorf("icp: send to %s: %w", c.addr, err)
		}
		if c.conn == nil {
			d := net.Dialer{}
			if c.cfg.DialTimeout > 0 {
				d.Timeout = c.cfg.DialTimeout
			}
			conn, err := d.DialContext(ctx, "tcp", c.addr)
			if err != nil {
				c.sendErrs.Add(1)
				return fmt.Errorf("icp: dial %s: %w", c.addr, err)
			}
			c.conn = conn
			if attempt > 0 {
				c.reconnects.Add(1)
			}
		}
		if deadline, ok := c.writeDeadline(ctx); ok {
			c.conn.SetWriteDeadline(deadline)
		}
		n, err := WriteFrame(c.conn, m)
		if err == nil {
			c.conn.SetWriteDeadline(time.Time{})
			c.sent.Add(1)
			c.sentB.Add(uint64(n))
			return nil
		}
		_ = c.conn.Close() // write already failed; that error wins
		c.conn = nil
		if attempt == 1 || ctx.Err() != nil {
			c.sendErrs.Add(1)
			return fmt.Errorf("icp: send to %s: %w", c.addr, err)
		}
	}
	return nil
}

// writeDeadline combines the configured WriteTimeout with ctx's deadline,
// whichever is sooner.
func (c *TCPClient) writeDeadline(ctx context.Context) (time.Time, bool) {
	var t time.Time
	if c.cfg.WriteTimeout > 0 {
		t = time.Now().Add(c.cfg.WriteTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (t.IsZero() || d.Before(t)) {
		t = d
	}
	return t, !t.IsZero()
}

// Close drops the connection.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

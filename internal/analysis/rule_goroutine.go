package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// goroutineLifecycleRule demands that every goroutine spawned from
// library (non-main) code can actually exit. The leak it targets is the
// loop with no way out: `for { ... }` whose body has no return, no
// break binding to it, and no terminating call — including the classic
// near-miss `for { select { case <-stop: break } }`, where the break
// binds to the select and the loop spins forever. The check follows the
// static call graph, so `go c.readLoop()` is judged by readLoop's body
// (and by what readLoop unconditionally calls), not just by the go
// statement's own literal.
//
// A loop that exits on a closed channel, a done/stop select case, an
// error return from a blocking read (the closed-conn idiom), or a
// bounded condition all pass; main packages are exempt — the process
// exit is their shutdown path.
type goroutineLifecycleRule struct {
	u      *Universe
	perPkg map[*Package][]pendingFinding
}

func (r *goroutineLifecycleRule) Name() string { return RuleGoroutineLifecycle }

func (r *goroutineLifecycleRule) Doc() string {
	return "goroutines spawned from library code must have a reachable shutdown path (no unconditional loop without an exit)"
}

func (r *goroutineLifecycleRule) Check(pkg *Package, report ReportFunc) {
	if pkg.Universe == nil {
		return
	}
	if r.u != pkg.Universe {
		r.analyze(pkg.Universe)
		r.u = pkg.Universe
	}
	for _, f := range r.perPkg[pkg] {
		report(f.pos, "%s", f.msg)
	}
}

func (r *goroutineLifecycleRule) analyze(u *Universe) {
	r.perPkg = map[*Package][]pendingFinding{}
	s := u.summaries()
	for _, site := range s.goStmts {
		pkg, stmt := site.pkg, site.stmt
		var (
			name  string
			pos   token.Pos
			chain []string
		)
		switch fun := ast.Unparen(stmt.Call.Fun).(type) {
		case *ast.FuncLit:
			fi := s.lits[fun]
			if fi == nil {
				continue
			}
			name = "this goroutine"
			pos, chain = s.foreverOf(fi)
		default:
			fn, ok := calleeOf(pkg, stmt.Call).(*types.Func)
			if !ok {
				continue // func-typed values and interface methods resolve dynamically
			}
			name = funcName(fn)
			pos, chain = s.loopsForever(fn)
		}
		if pos == token.NoPos {
			continue
		}
		p := u.Fset.Position(pos)
		where := fmt.Sprintf("%s:%d", filepathBase(p.Filename), p.Line)
		msg := fmt.Sprintf(
			"goroutine has no shutdown path: %s loops forever at %s (no return, binding break, or terminating call); select on a stop channel or let a closed conn's error end the loop",
			name, where)
		if len(chain) > 0 {
			msg = fmt.Sprintf(
				"goroutine has no shutdown path: %s reaches %s, which loops forever at %s (no return, binding break, or terminating call); select on a stop channel or let a closed conn's error end the loop",
				name, strings.Join(chain, " -> "), where)
		}
		r.perPkg[pkg] = append(r.perPkg[pkg], pendingFinding{pos: stmt.Pos(), msg: msg})
	}
}

// Package lru implements the Web-proxy document cache used throughout the
// paper's evaluation: least-recently-used replacement over a byte-capacity
// budget, with the paper's policy that "documents larger than 250 KB are
// not cached", version (last-modified/size) tracking for staleness
// detection, an eviction callback that feeds cache-summary deltas, and a
// Touch operation supporting the single-copy sharing scheme ("the other
// proxy marks the document as most-recently-accessed").
package lru

import (
	"container/list"
	"errors"
	"sync"
)

// DefaultMaxObjectSize is the paper's cacheability limit: 250 KB.
const DefaultMaxObjectSize = 250 * 1024

// Entry is one cached document.
type Entry struct {
	Key     string // document URL
	Size    int64  // body size in bytes
	Version int64  // last-modified timestamp or content fingerprint; a
	// mismatch on a later request is a staleness signal (the
	// paper counts such hits as misses / remote stale hits)
}

// Event describes why an entry left or entered the cache, for observers.
type Event int

// Eviction causes reported to the OnEvict callback.
const (
	EvictCapacity Event = iota // displaced by LRU replacement
	EvictRemoved               // explicitly removed (e.g. consistency purge)
	EvictUpdated               // replaced by a new version of the same key
)

// Config customizes a Cache.
type Config struct {
	// MaxObjectSize rejects documents larger than this many bytes
	// (DefaultMaxObjectSize when 0; negative disables the limit).
	MaxObjectSize int64
	// OnInsert, if non-nil, observes every insertion of a key not already
	// cached. Version-only refreshes of a cached key do not fire it (the
	// directory membership — what cache summaries track — is unchanged);
	// they fire OnEvict with EvictUpdated instead.
	OnInsert func(Entry)
	// OnEvict, if non-nil, observes every departure with its cause.
	OnEvict func(Entry, Event)
}

// ErrBadCapacity reports a non-positive cache capacity.
var ErrBadCapacity = errors.New("lru: capacity must be positive")

// Cache is a byte-budget LRU cache of documents. It is safe for concurrent
// use.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	maxObj   int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	onInsert func(Entry)
	onEvict  func(Entry, Event)

	hits, misses uint64
	// Lifetime departures by cause (Counters): LRU displacement, explicit
	// removal, and version replacement — the staleness invalidations the
	// paper counts as remote stale hits.
	evCapacity, evRemoved, evUpdated uint64
}

// New creates a cache holding at most capacity bytes.
func New(capacity int64, cfg Config) (*Cache, error) {
	if capacity <= 0 {
		return nil, ErrBadCapacity
	}
	maxObj := cfg.MaxObjectSize
	if maxObj == 0 {
		maxObj = DefaultMaxObjectSize
	}
	return &Cache{
		capacity: capacity,
		maxObj:   maxObj,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		onInsert: cfg.OnInsert,
		onEvict:  cfg.OnEvict,
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(capacity int64, cfg Config) *Cache {
	c, err := New(capacity, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Capacity returns the byte budget.
func (c *Cache) Capacity() int64 { return c.capacity }

// MaxObjectSize returns the per-document cacheability limit (<0: none).
func (c *Cache) MaxObjectSize() int64 { return c.maxObj }

// Len returns the number of cached documents.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the bytes currently cached.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Cacheable reports whether a document of the given size may be stored.
func (c *Cache) Cacheable(size int64) bool {
	if size < 0 {
		return false
	}
	if c.maxObj >= 0 && size > c.maxObj {
		return false
	}
	return size <= c.capacity
}

// Get returns the entry for key and promotes it to most recently used.
// The second result reports presence; it does not imply freshness — compare
// Entry.Version against the request's expected version for that.
func (c *Cache) Get(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(Entry), true
}

// Peek returns the entry without promoting it and without touching hit
// accounting. Summaries and tests use this.
func (c *Cache) Peek(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return Entry{}, false
	}
	return el.Value.(Entry), true
}

// Contains reports presence without promotion or accounting.
func (c *Cache) Contains(key string) bool {
	_, ok := c.Peek(key)
	return ok
}

// Touch promotes key to most recently used without reading it, the
// operation single-copy sharing performs on the owning proxy when a peer
// serves a remote hit. It reports whether the key was present.
func (c *Cache) Touch(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.MoveToFront(el)
	return true
}

// event is a deferred callback notification; callbacks fire after the
// cache lock is released so they may do slow work (network sends) or
// re-enter the cache without deadlocking.
type event struct {
	entry Entry
	evict bool
	why   Event
}

func (c *Cache) fire(evs []event) {
	for _, ev := range evs {
		if ev.evict {
			if c.onEvict != nil {
				c.onEvict(ev.entry, ev.why)
			}
		} else if c.onInsert != nil {
			c.onInsert(ev.entry)
		}
	}
}

// Put inserts or updates a document, evicting LRU entries as needed to fit.
// It reports whether the document was stored; uncacheable documents (too
// large) are rejected with stored == false and leave the cache unchanged.
func (c *Cache) Put(e Entry) (stored bool) {
	if !c.Cacheable(e.Size) {
		return false
	}
	var evs []event
	c.mu.Lock()
	if el, ok := c.items[e.Key]; ok {
		old := el.Value.(Entry)
		c.bytes += e.Size - old.Size
		el.Value = e
		c.ll.MoveToFront(el)
		if old.Version != e.Version {
			c.evUpdated++
			evs = append(evs, event{entry: old, evict: true, why: EvictUpdated})
		}
		evs = c.evictOverflowLocked(evs)
		c.mu.Unlock()
		c.fire(evs)
		return true
	}
	c.bytes += e.Size
	c.items[e.Key] = c.ll.PushFront(e)
	evs = append(evs, event{entry: e})
	evs = c.evictOverflowLocked(evs)
	c.mu.Unlock()
	c.fire(evs)
	return true
}

// Remove deletes key, reporting whether it was present.
func (c *Cache) Remove(key string) bool {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		return false
	}
	evs := c.removeElementLocked(el, EvictRemoved, nil)
	c.mu.Unlock()
	c.fire(evs)
	return true
}

func (c *Cache) evictOverflowLocked(evs []event) []event {
	for c.bytes > c.capacity {
		back := c.ll.Back()
		if back == nil {
			return evs
		}
		evs = c.removeElementLocked(back, EvictCapacity, evs)
	}
	return evs
}

func (c *Cache) removeElementLocked(el *list.Element, why Event, evs []event) []event {
	e := el.Value.(Entry)
	c.ll.Remove(el)
	delete(c.items, e.Key)
	c.bytes -= e.Size
	switch why {
	case EvictCapacity:
		c.evCapacity++
	case EvictRemoved:
		c.evRemoved++
	}
	return append(evs, event{entry: e, evict: true, why: why})
}

// Keys returns all cached keys from most to least recently used.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(Entry).Key)
	}
	return out
}

// Entries returns all cached entries from most to least recently used.
func (c *Cache) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(Entry))
	}
	return out
}

// Stats returns lifetime (hits, misses) counted by Get.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Counters is a snapshot of the cache's lifetime activity.
type Counters struct {
	Hits, Misses uint64
	// EvictedCapacity counts LRU displacements, Removed explicit
	// removals (consistency purges), Updated version replacements —
	// the staleness invalidations of the paper's modified-document
	// accounting.
	EvictedCapacity, Removed, Updated uint64
}

// Counters snapshots all lifetime counters at once.
func (c *Cache) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counters{
		Hits:            c.hits,
		Misses:          c.misses,
		EvictedCapacity: c.evCapacity,
		Removed:         c.evRemoved,
		Updated:         c.evUpdated,
	}
}

// Clear empties the cache without firing eviction callbacks.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.bytes = 0
}

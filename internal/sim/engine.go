package sim

import (
	"fmt"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
	"summarycache/internal/lru"
	"summarycache/internal/trace"
)

// proxyState is one simulated proxy: its document cache plus its summary
// pipeline and the new-document counter that drives the update threshold.
type proxyState struct {
	cache *lru.Cache
	sum   summarizer
	// newDocs counts documents added since the last summary publication —
	// the paper delays updates "until the percentage of cached documents
	// that are new ... reaches a threshold".
	newDocs int
}

// Run replays reqs through a mesh configured by cfg and returns the
// aggregated metrics. The replay is deterministic.
func Run(cfg Config, reqs []trace.Request) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg.Summary.applyDefaults()
	res := Result{Config: cfg}

	switch cfg.Scheme {
	case GlobalCache, GlobalCacheShrunk:
		return runGlobal(cfg, reqs)
	case NoSharing, SimpleSharing, SingleCopySharing:
		// fallthrough to mesh simulation below
	default:
		return Result{}, fmt.Errorf("sim: unknown scheme %v", cfg.Scheme)
	}

	n := cfg.NumProxies
	proxies := make([]*proxyState, n)
	var family *hashing.Family
	var filterBits uint64
	if cfg.Summary.Kind == Bloom || cfg.Summary.Kind == BloomDigest {
		entries := uint64(cfg.CacheBytes / cfg.Summary.AvgDocBytes)
		filterBits = bloom.SizeForLoadFactor(entries, cfg.Summary.LoadFactor)
		family = hashing.MustNew(cfg.Summary.HashSpec)
	}
	for i := range proxies {
		p := &proxyState{}
		switch cfg.Summary.Kind {
		case Oracle:
			p.sum = oracleSummary{}
		case ICP:
			p.sum = icpSummary{}
		case ExactDirectory:
			p.sum = newExactDirSummary(PaperMessageModel)
		case ServerName:
			p.sum = newServerNameSummary(PaperMessageModel)
		case Bloom:
			p.sum = newBloomSummary(PaperMessageModel, filterBits, cfg.Summary.CounterBits, cfg.Summary.HashSpec, false)
		case BloomDigest:
			p.sum = newBloomSummary(PaperMessageModel, filterBits, cfg.Summary.CounterBits, cfg.Summary.HashSpec, true)
		default:
			return Result{}, fmt.Errorf("sim: unknown summary kind %v", cfg.Summary.Kind)
		}
		sum := p.sum
		// Shards: 1 — the simulator models a single proxy's exact global
		// LRU; sharding would perturb eviction order and hit ratios.
		cache, err := lru.NewCache(lru.Config{
			Capacity:      cfg.CacheBytes,
			Shards:        1,
			MaxObjectSize: cfg.MaxObjectSize,
			OnInsert:      func(e lru.Entry) { sum.insert(e.Key) },
			OnEvict: func(e lru.Entry, ev lru.Event) {
				if ev != lru.EvictUpdated {
					sum.remove(e.Key)
				}
			},
		})
		if err != nil {
			return Result{}, err
		}
		p.cache = cache
		proxies[i] = p
	}

	trackTraffic := cfg.Summary.Kind != Oracle
	idxBuf := make([]uint64, cfg.Summary.HashSpec.FunctionNum)

	var parent *lru.Cache
	if cfg.ParentCacheBytes > 0 {
		var err error
		parent, err = lru.NewCache(lru.Config{Capacity: cfg.ParentCacheBytes, Shards: 1, MaxObjectSize: cfg.MaxObjectSize})
		if err != nil {
			return Result{}, err
		}
	}

	for _, req := range reqs {
		res.Requests++
		res.RequestBytes += uint64(req.Size)
		home := req.Group(n)
		p := proxies[home]

		if e, ok := p.cache.Get(req.URL); ok {
			if e.Version == req.Version {
				res.LocalHits++
				res.HitBytes += uint64(req.Size)
				continue
			}
			res.LocalStale++ // stale local copy: treated as a miss
		}

		if cfg.Scheme != NoSharing && n > 1 {
			// Prepare the probe key once for all peers.
			pk := probeKey{url: req.URL}
			switch cfg.Summary.Kind {
			case ServerName:
				pk.server = ServerOf(req.URL)
			case Bloom, BloomDigest:
				if _, err := family.IndexesInto(idxBuf, req.URL, filterBits); err != nil {
					return Result{}, err
				}
				pk.idx = idxBuf
			}

			freshPeer, stalePeer := -1, -1
			probed := 0
			for j := 0; j < n; j++ {
				if j == home {
					continue
				}
				if cfg.Summary.Kind == Oracle {
					// Oracle discovery: consult true contents, no messages.
					if e, ok := proxies[j].cache.Peek(req.URL); ok {
						if e.Version == req.Version {
							if freshPeer < 0 {
								freshPeer = j
							}
						} else if stalePeer < 0 {
							stalePeer = j
						}
					}
					continue
				}
				if !proxies[j].sum.probe(pk) {
					continue
				}
				probed++
				res.QueryMessages++
				res.ReplyMessages++
				res.QueryBytes += uint64(PaperMessageModel.QueryHeader + len(req.URL))
				if e, ok := proxies[j].cache.Peek(req.URL); ok {
					if e.Version == req.Version {
						if freshPeer < 0 {
							freshPeer = j
						}
					} else if stalePeer < 0 {
						stalePeer = j
					}
				}
			}

			if freshPeer >= 0 {
				res.RemoteHits++
				res.HitBytes += uint64(req.Size)
				// Serving a remote hit is an access on the owner.
				proxies[freshPeer].cache.Touch(req.URL)
				if cfg.Scheme == SimpleSharing {
					insertDocument(&res, proxies, p, req, cfg, trackTraffic)
				}
				continue
			}
			if trackTraffic && probed > 0 {
				if stalePeer >= 0 {
					res.RemoteStaleHits++
				} else if cfg.Summary.Kind != ICP {
					// A summary claimed a copy no peer had. ICP makes no
					// such claim — its fruitless queries are just misses.
					res.FalseHits++
				}
			}
			if cfg.Summary.Kind == Oracle && stalePeer >= 0 {
				res.RemoteStaleHits++
			}
			// False miss: a summary-directed scheme failed to discover an
			// actually fresh remote copy.
			if cfg.Summary.Kind != Oracle && cfg.Summary.Kind != ICP {
				for j := 0; j < n && freshPeer < 0; j++ {
					if j == home {
						continue
					}
					if e, ok := proxies[j].cache.Peek(req.URL); ok && e.Version == req.Version {
						// Was it probed? If its summary said no, it is a
						// false miss.
						if !proxies[j].sum.probe(pk) {
							res.FalseMisses++
						}
						freshPeer = j // stop scanning; accounting only
					}
				}
				freshPeer = -1
			}
		}

		// Miss: ask the parent (if any), else the origin; cache locally.
		if parent != nil {
			if e, ok := parent.Get(req.URL); ok && e.Version == req.Version {
				res.ParentHits++
			} else {
				// Parent fetches from the origin and caches it on the way.
				parent.Put(lru.Entry{Key: req.URL, Size: req.Size, Version: req.Version})
			}
		}
		insertDocument(&res, proxies, p, req, cfg, trackTraffic)
	}

	// Final memory accounting (per-peer summary copy + local counters).
	if n > 0 {
		res.SummaryMemoryBytes = proxies[0].sum.memoryBytes()
		res.CounterMemoryBytes = proxies[0].sum.counterBytes()
		if bs, ok := proxies[0].sum.(*bloomSummary); ok {
			if bs.flipEvents > 0 {
				res.BitsFlippedPerEvent = float64(bs.flipsTotal) / float64(bs.flipEvents)
			}
			for _, p := range proxies {
				if b, ok := p.sum.(*bloomSummary); ok {
					res.CounterSaturations += b.counting.Saturations()
				}
			}
		}
	}
	return res, nil
}

// insertDocument stores a fetched document in p's cache and, when the
// update threshold is crossed, publishes p's summary to all peers.
func insertDocument(res *Result, proxies []*proxyState, p *proxyState, req trace.Request, cfg Config, trackTraffic bool) {
	wasNew := !p.cache.Contains(req.URL)
	stored := p.cache.Put(lru.Entry{Key: req.URL, Size: req.Size, Version: req.Version})
	if !stored || !wasNew {
		return
	}
	p.newDocs++
	if !trackTraffic || cfg.Summary.Kind == ICP {
		return
	}
	// Publish when new documents reach the threshold fraction of the
	// directory (threshold 0 publishes every change).
	docs := p.cache.Len()
	if docs == 0 {
		return
	}
	if p.newDocs < cfg.Summary.MinUpdateDocs {
		return
	}
	if float64(p.newDocs) >= cfg.Summary.UpdateThreshold*float64(docs) {
		msgBytes := p.sum.publish()
		p.newDocs = 0
		peers := uint64(len(proxies) - 1)
		res.UpdateEvents++
		res.UpdateMessages += peers
		res.UpdateBytes += peers * uint64(msgBytes)
	}
}

// runGlobal simulates the unified global cache (with optional 10% shrink).
func runGlobal(cfg Config, reqs []trace.Request) (Result, error) {
	res := Result{Config: cfg}
	total := cfg.CacheBytes * int64(cfg.NumProxies)
	if cfg.Scheme == GlobalCacheShrunk {
		total = total * 9 / 10
	}
	cache, err := lru.NewCache(lru.Config{Capacity: total, Shards: 1, MaxObjectSize: cfg.MaxObjectSize})
	if err != nil {
		return Result{}, err
	}
	for _, req := range reqs {
		res.Requests++
		res.RequestBytes += uint64(req.Size)
		if e, ok := cache.Get(req.URL); ok {
			if e.Version == req.Version {
				res.LocalHits++
				res.HitBytes += uint64(req.Size)
				continue
			}
			res.LocalStale++
		}
		cache.Put(lru.Entry{Key: req.URL, Size: req.Size, Version: req.Version})
	}
	return res, nil
}

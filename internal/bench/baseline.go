package bench

import (
	"container/list"
	"sync"

	"summarycache/internal/hashing"
)

// This file freezes the seed's single-lock designs — one mutex around the
// whole LRU cache, one RWMutex around the Bloom bit array — as reference
// implementations, so the concurrent-load microbenchmarks (RunMicro) can
// report before/after numbers from one binary instead of checking out an
// old commit. They are deliberately minimal: just the operations the
// benchmarks drive, with the same data structures the seed used.

// mutexCache is the pre-sharding LRU: a single mutex serializing every
// Get and Put across all cores.
type mutexCache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	// The seed counted hits and misses under the same mutex.
	hits, misses uint64
}

type mutexEntry struct {
	key  string
	size int64
}

func newMutexCache(capacity int64) *mutexCache {
	return &mutexCache{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *mutexCache) Get(key string) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*mutexEntry).size, true
}

func (c *mutexCache) Put(key string, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*mutexEntry)
		c.bytes += size - ent.size
		ent.size = size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&mutexEntry{key: key, size: size})
		c.bytes += size
	}
	for c.bytes > c.capacity {
		back := c.ll.Back()
		if back == nil {
			return
		}
		ent := back.Value.(*mutexEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.bytes -= ent.size
	}
}

// rwmutexFilter is the pre-PR Bloom filter: plain uint64 words guarded by
// an RWMutex, so every probe pays a contended RLock.
type rwmutexFilter struct {
	mu      sync.RWMutex
	m       uint64
	words   []uint64
	family  *hashing.Family
	scratch sync.Pool
}

func newRWMutexFilter(m uint64, spec hashing.Spec) *rwmutexFilter {
	f := &rwmutexFilter{m: m, words: make([]uint64, (m+63)/64), family: hashing.MustNew(spec)}
	k := spec.FunctionNum
	f.scratch = sync.Pool{New: func() any { b := make([]uint64, k); return &b }}
	return f
}

func (f *rwmutexFilter) Indexes(key string) []uint64 {
	idx, err := f.family.Indexes(make([]uint64, 0, f.family.Spec().FunctionNum), key, f.m)
	if err != nil {
		panic(err)
	}
	return idx
}

func (f *rwmutexFilter) Add(key string) {
	bufp := f.scratch.Get().(*[]uint64)
	n, err := f.family.IndexesInto(*bufp, key, f.m)
	if err != nil {
		panic(err)
	}
	f.mu.Lock()
	for _, i := range (*bufp)[:n] {
		f.words[i/64] |= 1 << (i % 64)
	}
	f.mu.Unlock()
	f.scratch.Put(bufp)
}

func (f *rwmutexFilter) Test(key string) bool {
	bufp := f.scratch.Get().(*[]uint64)
	n, err := f.family.IndexesInto(*bufp, key, f.m)
	if err != nil {
		panic(err)
	}
	ok := f.TestIndexes((*bufp)[:n])
	f.scratch.Put(bufp)
	return ok
}

func (f *rwmutexFilter) TestIndexes(idx []uint64) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, i := range idx {
		if f.words[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

package bloom

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"summarycache/internal/hashing"
)

// DefaultCounterBits is the counter width the paper recommends: "it seems
// that 4 bits per count would be amply sufficient" (§V-C).
const DefaultCounterBits = 4

// ErrBadCounterBits reports an unsupported counter width.
var ErrBadCounterBits = errors.New("bloom: counter width must be in [1,16] bits")

// maxStripes bounds the counter-lock striping (power of two). Stripes are
// keyed by counter-word index, so two updates contend only when their
// counters share a word whose stripe is also claimed by the other — with 64
// stripes the collision probability under a handful of writer threads is
// a few percent.
const maxStripes = 64

// CountingFilter is the paper's counting Bloom filter: alongside each bit
// of the array it keeps a small saturating counter of how many inserted
// keys hash to that position, so keys can be deleted. When a counter rises
// from 0 the bit turns on; when it falls to 0 the bit turns off; those
// transitions are the Flips that feed the directory-update protocol.
//
// Counters saturate at their maximum value and never decrement once
// saturated ("if the count ever exceeds 15, we can simply let it stay at
// 15"), trading a vanishing false-negative probability — bounded by
// CounterOverflowProbability — for fixed memory. CountingFilter is safe for
// concurrent use.
//
// Concurrency: counters live in atomic words read lock-free by Test; writes
// stripe-lock by word index, so Add and Remove on different regions of the
// array proceed in parallel. When journaling is enabled (EnableJournal),
// each bit transition is appended to its stripe's journal segment under the
// same stripe lock that performed the transition — flips for one bit are
// therefore always journaled in their true temporal order (set-then-clear
// can never be drained as clear-then-set), while flips for different bits
// commute because the wire format is absolute.
type CountingFilter struct {
	m        uint64
	cbits    uint   // counter width in bits
	cmax     uint64 // saturation value (2^cbits - 1)
	counters []atomic.Uint64
	perWord  uint // counters packed per 64-bit word
	smask    uint64
	stripes  []cfStripe
	ones     atomic.Int64
	n        atomic.Int64 // net insertions (adds - removes), for load accounting
	family   *hashing.Family
	scratch  sync.Pool // *[]uint64 probe buffers

	saturations atomic.Uint64 // counters that ever hit cmax
	underflows  atomic.Uint64 // decrement attempts on a zero counter

	journaling bool         // set once by EnableJournal before concurrent use
	pending    atomic.Int64 // total flips across stripe journals
}

// cfStripe is one lock stripe plus its segment of the flip journal.
//
// Whole-filter operations (Reset, RestoreState) hold every stripe lock at
// once; they always acquire in ascending index order, so nested same-class
// acquisition cannot deadlock.
//
//lint:lockorder bloom.cfStripe.mu < bloom.cfStripe.mu stripes are always locked in ascending index order
type cfStripe struct {
	mu      sync.Mutex
	journal []Flip
	_       [40]byte // pad toward a cache line to curb false sharing
}

// NewCountingFilter creates a counting filter of mBits positions with
// counterBits-wide saturating counters.
func NewCountingFilter(mBits uint64, counterBits uint, spec hashing.Spec) (*CountingFilter, error) {
	if mBits == 0 || mBits > MaxBits {
		return nil, ErrBadSize
	}
	if counterBits < 1 || counterBits > 16 {
		return nil, ErrBadCounterBits
	}
	fam, err := hashing.New(spec)
	if err != nil {
		return nil, err
	}
	perWord := uint(64 / counterBits)
	words := (mBits + uint64(perWord) - 1) / uint64(perWord)
	stripes := maxStripes
	for uint64(stripes) > words {
		stripes >>= 1
	}
	if stripes < 1 {
		stripes = 1
	}
	c := &CountingFilter{
		m:        mBits,
		cbits:    counterBits,
		cmax:     (uint64(1) << counterBits) - 1,
		counters: make([]atomic.Uint64, words),
		perWord:  perWord,
		smask:    uint64(stripes - 1),
		stripes:  make([]cfStripe, stripes),
		family:   fam,
	}
	k := spec.FunctionNum
	c.scratch.New = func() any { b := make([]uint64, k); return &b }
	return c, nil
}

// MustNewCountingFilter is NewCountingFilter, panicking on error.
func MustNewCountingFilter(mBits uint64, counterBits uint, spec hashing.Spec) *CountingFilter {
	c, err := NewCountingFilter(mBits, counterBits, spec)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the number of counter positions (== filter bits).
func (c *CountingFilter) Size() uint64 { return c.m }

// CounterBits returns the configured counter width.
func (c *CountingFilter) CounterBits() uint { return c.cbits }

// Spec returns the hash-function specification.
func (c *CountingFilter) Spec() hashing.Spec { return c.family.Spec() }

// MemoryBytes returns the bytes consumed by the counter array — the "plus
// another 8 MB to represent its own counters" term in the paper's §V-F
// extrapolation.
func (c *CountingFilter) MemoryBytes() uint64 { return uint64(len(c.counters)) * 8 }

// word and shift locate counter i inside the packed array.
func (c *CountingFilter) locate(i uint64) (w uint64, sh uint64) {
	return i / uint64(c.perWord), (i % uint64(c.perWord)) * uint64(c.cbits)
}

// get reads counter i with one atomic load (no lock).
func (c *CountingFilter) get(i uint64) uint64 {
	w, sh := c.locate(i)
	return (c.counters[w].Load() >> sh) & c.cmax
}

// setLocked writes counter i; the caller holds i's stripe lock, which
// exclusively owns every counter in i's word.
func (c *CountingFilter) setLocked(i, v uint64) {
	w, sh := c.locate(i)
	c.counters[w].Store(c.counters[w].Load()&^(c.cmax<<sh) | v<<sh)
}

// stripeOf returns the lock stripe owning counter i's word.
func (c *CountingFilter) stripeOf(i uint64) *cfStripe {
	w, _ := c.locate(i)
	return &c.stripes[w&c.smask]
}

// EnableJournal turns on internal flip journaling: every subsequent bit
// transition is recorded (in per-bit temporal order) for DrainJournal.
// Call once, before the filter is shared between goroutines.
func (c *CountingFilter) EnableJournal() { c.journaling = true }

// PendingFlips returns the number of journaled flips not yet drained.
func (c *CountingFilter) PendingFlips() int {
	n := c.pending.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// DrainJournal removes and returns all journaled flips. Flips touching the
// same bit appear in their true temporal order; flips for different bits
// are in no particular order (they commute — the wire format is absolute).
func (c *CountingFilter) DrainJournal() []Flip {
	var out []Flip
	for s := range c.stripes {
		st := &c.stripes[s]
		st.mu.Lock()
		if len(st.journal) > 0 {
			out = append(out, st.journal...)
			c.pending.Add(-int64(len(st.journal)))
			st.journal = nil
		}
		st.mu.Unlock()
	}
	return out
}

// journalLocked records one transition under its stripe's lock.
func (st *cfStripe) journalLocked(c *CountingFilter, fl Flip) {
	st.journal = append(st.journal, fl)
	c.pending.Add(1)
}

// Add inserts key, incrementing its k counters. Bit transitions 0→1 are
// appended to flips, which is returned (append semantics; pass nil to
// discard-later or a reused buffer to avoid allocation).
func (c *CountingFilter) Add(key string, flips []Flip) []Flip {
	bufp := c.scratch.Get().(*[]uint64)
	defer c.scratch.Put(bufp)
	n, _ := c.family.IndexesInto(*bufp, key, c.m)
	for _, i := range (*bufp)[:n] {
		st := c.stripeOf(i)
		st.mu.Lock()
		v := c.get(i)
		switch {
		case v == c.cmax:
			c.saturations.Add(1) // stuck; stays at cmax
		case v == 0:
			c.setLocked(i, 1)
			c.ones.Add(1)
			fl := Flip{Index: uint32(i), Set: true}
			flips = append(flips, fl)
			if c.journaling {
				st.journalLocked(c, fl)
			}
		default:
			c.setLocked(i, v+1)
		}
		st.mu.Unlock()
	}
	c.n.Add(1)
	return flips
}

// Remove deletes key, decrementing its k counters. Bit transitions 1→0 are
// appended to flips. Removing a key that was never added corrupts the
// filter, exactly as with any counting Bloom filter; callers (the cache)
// guarantee delete-after-insert discipline.
func (c *CountingFilter) Remove(key string, flips []Flip) []Flip {
	bufp := c.scratch.Get().(*[]uint64)
	defer c.scratch.Put(bufp)
	n, _ := c.family.IndexesInto(*bufp, key, c.m)
	for _, i := range (*bufp)[:n] {
		st := c.stripeOf(i)
		st.mu.Lock()
		v := c.get(i)
		switch {
		case v == c.cmax:
			// Saturated counters are never decremented; see type docs.
		case v == 1:
			c.setLocked(i, 0)
			c.ones.Add(-1)
			fl := Flip{Index: uint32(i), Set: false}
			flips = append(flips, fl)
			if c.journaling {
				st.journalLocked(c, fl)
			}
		case v > 1:
			c.setLocked(i, v-1)
		default:
			// v == 0: underflow attempt. Saturate at zero — wrapping to
			// cmax would assert membership for up to perWord unrelated
			// keys. Crash recovery hits this legitimately: the journal
			// overlap window can double-apply an eviction (restore +
			// replay), and the second decrement must be a counted no-op.
			c.underflows.Add(1)
		}
		st.mu.Unlock()
	}
	for {
		cur := c.n.Load()
		if cur <= 0 || c.n.CompareAndSwap(cur, cur-1) {
			break
		}
	}
	return flips
}

// Test reports whether key may be in the set (all k counters nonzero).
// Lock-free: k atomic loads.
func (c *CountingFilter) Test(key string) bool {
	bufp := c.scratch.Get().(*[]uint64)
	defer c.scratch.Put(bufp)
	n, _ := c.family.IndexesInto(*bufp, key, c.m)
	for _, i := range (*bufp)[:n] {
		if c.get(i) == 0 {
			return false
		}
	}
	return true
}

// Count returns the counter value at position i (for tests and diagnostics).
func (c *CountingFilter) Count(i uint64) (uint64, error) {
	if i >= c.m {
		return 0, ErrIndexRange
	}
	return c.get(i), nil
}

// Entries returns the net number of keys currently represented.
func (c *CountingFilter) Entries() uint64 {
	n := c.n.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

// OnesCount returns the number of nonzero positions (set bits in the
// derived bit filter).
func (c *CountingFilter) OnesCount() uint64 {
	n := c.ones.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

// FillRatio returns the fraction of nonzero positions.
func (c *CountingFilter) FillRatio() float64 {
	return float64(c.OnesCount()) / float64(c.m)
}

// Saturations returns how many increment attempts found an already-saturated
// counter — a direct observable for the §V-C overflow analysis.
func (c *CountingFilter) Saturations() uint64 { return c.saturations.Load() }

// Underflows returns how many decrement attempts found a zero counter and
// were saturated at zero instead of wrapping. Steady-state operation keeps
// this at 0 (the cache guarantees delete-after-insert discipline); crash
// recovery may raise it when the journal's overlap window double-applies
// an eviction.
func (c *CountingFilter) Underflows() uint64 { return c.underflows.Load() }

// BitFilter materializes the derived plain filter (bit i set iff counter i
// nonzero). This is the array a proxy ships to a new neighbor before delta
// updates begin. Under concurrent writers the result is a weakly consistent
// snapshot; that is safe for the protocol because any transition racing the
// scan is also journaled and will reach the peer as an absolute flip.
func (c *CountingFilter) BitFilter() *Filter {
	f := MustNewFilter(c.m, c.family.Spec())
	for i := uint64(0); i < c.m; i++ {
		if c.get(i) != 0 {
			f.set(i)
		}
	}
	return f
}

// Reset zeroes all counters and discards any journaled flips.
func (c *CountingFilter) Reset() {
	for s := range c.stripes {
		c.stripes[s].mu.Lock()
	}
	for i := range c.counters {
		c.counters[i].Store(0)
	}
	for s := range c.stripes {
		c.pending.Add(-int64(len(c.stripes[s].journal)))
		c.stripes[s].journal = nil
	}
	c.ones.Store(0)
	c.n.Store(0)
	c.saturations.Store(0)
	c.underflows.Store(0)
	for s := len(c.stripes) - 1; s >= 0; s-- {
		c.stripes[s].mu.Unlock()
	}
}

// MaxCount returns the largest counter value currently stored. Exposed so
// tests can check the §V-C expected-maximum-count analysis empirically.
func (c *CountingFilter) MaxCount() uint64 {
	var max uint64
	for i := uint64(0); i < c.m; i++ {
		if v := c.get(i); v > max {
			max = v
		}
	}
	return max
}

func (c *CountingFilter) String() string {
	return fmt.Sprintf("counting-bloom{m=%d k=%d cbits=%d entries=%d fill=%.4f}",
		c.m, c.family.Spec().FunctionNum, c.cbits, c.Entries(), c.FillRatio())
}

// Package sim sits on a determinism-scoped path (suffix internal/sim):
// every nondeterminism leak here must be flagged.
package sim

import (
	"math/rand"
	"time"
)

type replay struct{ seeds map[string]int64 }

func (r *replay) step() int64 {
	t := time.Now().UnixNano() // want determinism: wall clock in a replay path
	var total int64
	for _, s := range r.seeds { // want determinism: map iteration order
		total += s
	}
	total += int64(rand.Intn(10)) // want determinism: global generator
	return t + total
}

// seeded is the approved pattern: constructors build a per-stream
// generator from an explicit seed; *rand.Rand methods are methods, not
// global functions.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// elapsed reads the wall clock twice more: Since and Until are Now in
// disguise.
func elapsed(start time.Time) time.Duration {
	d := time.Since(start) // want determinism: wall-clock Since
	d += time.Until(start) // want determinism: wall-clock Until
	return d
}

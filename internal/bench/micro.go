package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
	"summarycache/internal/httpproxy"
	"summarycache/internal/lru"
)

// This file holds the hot-path microbenchmarks behind BENCH_PR3.json: the
// sharded LRU and lock-free Bloom probes measured under concurrent load
// against the frozen single-lock baselines in baseline.go, plus an
// end-to-end SC-ICP mesh throughput figure. proxybench -experiment=micro
// runs them and emits the JSON.

// MicroConfig parameterizes RunMicro.
type MicroConfig struct {
	// Goroutines is the parallel worker count (0: GOMAXPROCS).
	Goroutines int
	// Duration bounds each timed scenario (0: 500ms).
	Duration time.Duration
	// Keys is the cache/filter working-set size (0: 8192).
	Keys int
	// MeshClients and MeshRequests size the end-to-end SC-ICP throughput
	// run (0: 8 clients per proxy × 400 timed requests each on a 4-proxy
	// mesh, after MeshWarmup requests per client off the clock).
	MeshClients, MeshRequests int
	// MeshWarmup is the per-client warmup request count for the mesh
	// scenario (0: 30; negative: no warmup). Warmup fills the caches,
	// establishes connections and completes the full-state summary pushes
	// before the measurement window opens, so the scenario reports
	// steady-state throughput rather than mesh cold-start amortization.
	MeshWarmup int
	// Sweeps overrides the full-sweep count (0: microSweeps). CI smoke
	// runs use 1 to halve wall time; committed BENCH files keep the
	// default for its decorrelation value.
	Sweeps int
	Seed   int64
}

func (c *MicroConfig) applyDefaults() {
	if c.Goroutines <= 0 {
		c.Goroutines = runtime.GOMAXPROCS(0)
	}
	if c.Duration <= 0 {
		c.Duration = 500 * time.Millisecond
	}
	if c.Keys <= 0 {
		c.Keys = 8192
	}
	if c.MeshClients <= 0 {
		c.MeshClients = 8
	}
	if c.MeshRequests <= 0 {
		c.MeshRequests = 400
	}
	if c.MeshWarmup == 0 {
		c.MeshWarmup = 30
	}
	if c.MeshWarmup < 0 {
		c.MeshWarmup = 0
	}
	if c.Sweeps <= 0 {
		c.Sweeps = microSweeps
	}
}

// MicroMeasurement is one implementation's numbers for one scenario.
type MicroMeasurement struct {
	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P99Micros float64 `json:"p99_us"`
}

// MicroScenario compares the PR's implementation against the frozen
// single-lock baseline for one workload. Baseline is nil for end-to-end
// scenarios that have no in-binary pre-PR counterpart.
type MicroScenario struct {
	Name       string            `json:"name"`
	Goroutines int               `json:"goroutines"`
	Current    MicroMeasurement  `json:"current"`
	Baseline   *MicroMeasurement `json:"baseline,omitempty"`
	// Speedup is Current.OpsPerSec / Baseline.OpsPerSec (0 when no
	// baseline exists).
	Speedup float64 `json:"speedup,omitempty"`
}

// MicroResult is the full BENCH_PR3.json payload.
type MicroResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is the hardware parallelism actually available; when it is
	// below GOMAXPROCS the parallel scenarios timeslice on shared cores
	// and understate the sharded/lock-free speedups (lock contention
	// largely vanishes on one core).
	NumCPU     int             `json:"num_cpu"`
	DurationMS int64           `json:"scenario_duration_ms"`
	Scenarios  []MicroScenario `json:"scenarios"`
}

// Scenario returns the named scenario, or nil.
func (r *MicroResult) Scenario(name string) *MicroScenario {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// latSampleEvery controls how often an op's latency is individually timed;
// timing every ~100ns operation would measure the clock, not the cache.
const latSampleEvery = 64

// microTrials is the best-of-N trial count. A single timed draw of a
// ~100ns loop swings ±15% with scheduler and frequency noise, all of it
// downward-biased; taking the fastest of N runs is the standard defence
// and is what makes the benchdiff floor meaningful run to run.
const microTrials = 3

// microSweeps repeats the whole scenario list and keeps each scenario's
// best measurement across sweeps. Back-to-back trials share whatever
// multi-second throttling window the host is in; a second full sweep
// minutes later samples a different window, which is the only defence
// against noise that is correlated across one sweep.
const microSweeps = 2

// measure drives op from workers goroutines for d and aggregates
// throughput plus sampled p99 latency, keeping the fastest of
// microTrials runs. op receives the worker index and a per-worker op
// counter; it must be safe for concurrent use.
func measure(workers int, d time.Duration, op func(worker, i int)) MicroMeasurement {
	// Discarded warmup: the first pass over a fresh cache faults the maps
	// and lists into cache, trains branch predictors and lets the CPU
	// governor ramp, all of which otherwise land in trial 1 and make
	// best-of-N a race against the warmup tax instead of a noise filter.
	measureOnce(workers, d/4, op)
	best := measureOnce(workers, d, op)
	for t := 1; t < microTrials; t++ {
		if m := measureOnce(workers, d, op); m.OpsPerSec > best.OpsPerSec {
			best = m
		}
	}
	return best
}

func measureOnce(workers int, d time.Duration, op func(worker, i int)) MicroMeasurement {
	var stop atomic.Bool
	counts := make([]uint64, workers)
	samples := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	//lint:ignore sclint/determinism wall-clock timing is what measure() exists to produce
	start := time.Now()
	timer := time.AfterFunc(d, func() { stop.Store(true) })
	defer timer.Stop()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n uint64
			for i := 0; !stop.Load(); i++ {
				if i%latSampleEvery == 0 {
					//lint:ignore sclint/determinism sampled op latency is the measurement itself
					t0 := time.Now()
					op(w, i)
					//lint:ignore sclint/determinism sampled op latency is the measurement itself
					samples[w] = append(samples[w], time.Since(t0))
				} else {
					op(w, i)
				}
				n++
			}
			counts[w] = n
		}(w)
	}
	wg.Wait()
	//lint:ignore sclint/determinism wall-clock throughput is the benchmark's measured output
	wall := time.Since(start)

	var m MicroMeasurement
	var all []time.Duration
	for w := 0; w < workers; w++ {
		m.Ops += counts[w]
		all = append(all, samples[w]...)
	}
	m.OpsPerSec = float64(m.Ops) / wall.Seconds()
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		p := (len(all) * 99) / 100
		if p >= len(all) {
			p = len(all) - 1
		}
		m.P99Micros = float64(all[p]) / float64(time.Microsecond)
	}
	return m
}

func compare(name string, workers int, cur, base MicroMeasurement) MicroScenario {
	s := MicroScenario{Name: name, Goroutines: workers, Current: cur, Baseline: &base}
	if base.OpsPerSec > 0 {
		s.Speedup = cur.OpsPerSec / base.OpsPerSec
	}
	return s
}

// RunMicro executes the concurrent-load microbenchmarks and the mesh
// throughput run, merging each scenario's best measurement across
// microSweeps full sweeps (see the constant's comment for why best-of-N
// within a sweep is not enough).
func RunMicro(cfg MicroConfig) (MicroResult, error) {
	cfg.applyDefaults()
	res, err := runMicroSweep(cfg)
	if err != nil {
		return res, err
	}
	for s := 1; s < cfg.Sweeps; s++ {
		again, err := runMicroSweep(cfg)
		if err != nil {
			return res, err
		}
		mergeBestSweep(&res, again)
	}
	return res, nil
}

// mergeBestSweep keeps, per scenario, the fastest current and baseline
// measurements seen in either sweep — each draw of a bit-identical loop
// estimates the same true rate, and the fastest draw is the one least
// disturbed by the host.
func mergeBestSweep(dst *MicroResult, src MicroResult) {
	for i := range dst.Scenarios {
		d := &dst.Scenarios[i]
		s := src.Scenario(d.Name)
		if s == nil {
			continue
		}
		if s.Current.OpsPerSec > d.Current.OpsPerSec {
			d.Current = s.Current
		}
		if d.Baseline != nil && s.Baseline != nil && s.Baseline.OpsPerSec > d.Baseline.OpsPerSec {
			d.Baseline = s.Baseline
		}
		if d.Baseline != nil && d.Baseline.OpsPerSec > 0 {
			d.Speedup = d.Current.OpsPerSec / d.Baseline.OpsPerSec
		}
	}
}

func runMicroSweep(cfg MicroConfig) (MicroResult, error) {
	cfg.applyDefaults()
	res := MicroResult{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), DurationMS: cfg.Duration.Milliseconds()}

	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://server%d.example/doc%d", i%64, i)
	}
	const objSize = 1024

	// --- Cache reads: sharded LRU vs one big mutex. Capacity holds the
	// whole working set, so this isolates lock contention on the hit path
	// (Get moves the entry to its shard's MRU position either way).
	capacity := int64(cfg.Keys) * objSize * 2
	sharded := lru.MustNewCache(lru.Config{Capacity: capacity, MaxObjectSize: objSize})
	mtx := newMutexCache(capacity)
	for i, k := range keys {
		sharded.Put(lru.Entry{Key: k, Size: objSize, Version: int64(i)})
		mtx.Put(k, objSize)
	}
	getOp := func(c *lru.Cache) func(int, int) {
		return func(w, i int) { c.Get(keys[(w*2053+i)%len(keys)]) }
	}
	baseGetOp := func(w, i int) { mtx.Get(keys[(w*2053+i)%len(keys)]) }
	// single_get_1shard is the degenerate configuration (Shards: 1), whose
	// hot path skips hashing and recency stamps and is instruction-for-
	// instruction the seed's: existing single-threaded deployments see it.
	oneShard := lru.MustNewCache(lru.Config{Capacity: capacity, Shards: 1, MaxObjectSize: objSize})
	for i, k := range keys {
		oneShard.Put(lru.Entry{Key: k, Size: objSize, Version: int64(i)})
	}
	res.Scenarios = append(res.Scenarios,
		compare("parallel_get", cfg.Goroutines,
			measure(cfg.Goroutines, cfg.Duration, getOp(sharded)),
			measure(cfg.Goroutines, cfg.Duration, baseGetOp)),
		compare("single_get", 1,
			measure(1, cfg.Duration, getOp(sharded)),
			measure(1, cfg.Duration, baseGetOp)),
		compare("single_get_1shard", 1,
			measure(1, cfg.Duration, getOp(oneShard)),
			measure(1, cfg.Duration, baseGetOp)))

	// --- Summary probes: lock-free atomic word loads vs RWMutex RLock.
	// Index sets are precomputed once per URL, as in PeerTable.ProbeAll
	// where one URL is probed against every peer replica; each op probes
	// all four replicas.
	const peerReplicas = 4
	bits := uint64(1) << 20
	lockFree := make([]*bloom.Filter, peerReplicas)
	locked := make([]*rwmutexFilter, peerReplicas)
	for p := range lockFree {
		lockFree[p] = bloom.MustNewFilter(bits, hashing.DefaultSpec)
		locked[p] = newRWMutexFilter(bits, hashing.DefaultSpec)
	}
	idx := make([][]uint64, len(keys))
	for i, k := range keys {
		idx[i] = lockFree[0].Indexes(k)
		if i%3 == 0 { // a realistic mix of hits and misses
			for p := range lockFree {
				lockFree[p].Add(k)
				locked[p].Add(k)
			}
		}
	}
	probeOp := func(w, i int) {
		ix := idx[(w*2053+i)%len(idx)]
		for _, f := range lockFree {
			f.TestIndexes(ix)
		}
	}
	baseProbeOp := func(w, i int) {
		ix := idx[(w*2053+i)%len(idx)]
		for _, f := range locked {
			f.TestIndexes(ix)
		}
	}
	res.Scenarios = append(res.Scenarios,
		compare("parallel_probe_all", cfg.Goroutines,
			measure(cfg.Goroutines, cfg.Duration, probeOp),
			measure(cfg.Goroutines, cfg.Duration, baseProbeOp)),
		compare("single_probe_all", 1,
			measure(1, cfg.Duration, probeOp),
			measure(1, cfg.Duration, baseProbeOp)))

	// --- Mixed insert/probe: 1 insert per 8 reads with eviction churn
	// (capacity holds half the working set), the proxy's steady state.
	mixCap := int64(cfg.Keys) * objSize / 2
	mixSharded := lru.MustNewCache(lru.Config{Capacity: mixCap, MaxObjectSize: objSize})
	mixMtx := newMutexCache(mixCap)
	mixOp := func(w, i int) {
		k := keys[(w*2053+i)%len(keys)]
		if i%8 == 0 {
			mixSharded.Put(lru.Entry{Key: k, Size: objSize})
		} else {
			mixSharded.Get(k)
		}
	}
	baseMixOp := func(w, i int) {
		k := keys[(w*2053+i)%len(keys)]
		if i%8 == 0 {
			mixMtx.Put(k, objSize)
		} else {
			mixMtx.Get(k)
		}
	}
	res.Scenarios = append(res.Scenarios,
		compare("mixed_insert_probe", cfg.Goroutines,
			measure(cfg.Goroutines, cfg.Duration, mixOp),
			measure(cfg.Goroutines, cfg.Duration, baseMixOp)))

	// --- End-to-end: requests/sec through a live 4-proxy SC-ICP mesh on
	// loopback (shared URL universe, zero origin latency, so protocol and
	// cache work dominate). MeshWarmup requests per client run off the
	// clock first, so the figure is steady-state throughput rather than
	// one amortization of mesh cold start (connection establishment,
	// cold caches, full-state pushes). No in-binary baseline — compare
	// across commits via the committed JSON.
	//
	// The micro scenarios above leave megabytes of dead cache entries
	// behind; collect them now so the mesh pays for its own garbage, not
	// for sweeping its predecessors' (the same leveling testing.B does
	// between benchmarks).
	runtime.GC()
	mesh, err := RunSynthetic(SyntheticConfig{
		Mode:              httpproxy.ModeSCICP,
		Proxies:           4,
		ClientsPerProxy:   cfg.MeshClients,
		RequestsPerClient: cfg.MeshRequests,
		WarmupRequests:    cfg.MeshWarmup,
		InherentHitRatio:  0.45,
		Disjoint:          false,
		OriginLatency:     0,
		CacheBytes:        64 << 20,
		Seed:              cfg.Seed + 42,
	})
	if err != nil {
		return res, err
	}
	res.Scenarios = append(res.Scenarios, MicroScenario{
		Name:       "mesh_scicp_throughput",
		Goroutines: 4 * cfg.MeshClients,
		Current: MicroMeasurement{
			Ops:       mesh.Requests,
			OpsPerSec: float64(mesh.Requests) / mesh.Wall.Seconds(),
			P99Micros: float64(mesh.P90Latency) / float64(time.Microsecond), // recorder exposes p90
		},
	})
	return res, nil
}

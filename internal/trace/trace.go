// Package trace defines the HTTP request-trace model used by the simulator
// and the trace-replay benchmark: a compact record format mirroring the
// fields the paper's traces provide (timestamp, client, URL, document size,
// last-modified), a line-oriented codec, and the per-trace statistics of
// the paper's Table I (requests, clients, infinite cache size, maximum
// achievable hit and byte-hit ratios under an infinite cache with perfect
// consistency).
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Request is one trace record. Version models the document's last-modified
// time (or size fingerprint): when a request carries a Version different
// from the cached copy's, the paper counts the access as a miss ("if a
// request hits on a document whose last-modified time or size is changed,
// we count it as a cache miss").
type Request struct {
	Time    int64  // seconds since trace start
	Client  int    // client identifier
	URL     string // document URL (no whitespace)
	Size    int64  // document size in bytes
	Version int64  // last-modified generation
}

// Group returns the proxy group for the request's client under the paper's
// partitioning rule: "a client is put in a group if its clientID mod the
// group size equals the group ID".
func (r Request) Group(numGroups int) int {
	if numGroups <= 0 {
		return 0
	}
	g := r.Client % numGroups
	if g < 0 {
		g += numGroups
	}
	return g
}

// Writer emits requests in the trace text format:
//
//	time client size version url
//
// one record per line, space separated. Close flushes buffered output.
type Writer struct {
	bw *bufio.Writer
	n  int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriter(w)} }

// Write emits one record.
func (w *Writer) Write(r Request) error {
	if strings.ContainsAny(r.URL, " \t\n") {
		return fmt.Errorf("trace: URL %q contains whitespace", r.URL)
	}
	if _, err := fmt.Fprintf(w.bw, "%d %d %d %d %s\n", r.Time, r.Client, r.Size, r.Version, r.URL); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// ErrBadRecord reports a malformed trace line.
var ErrBadRecord = errors.New("trace: malformed record")

// Reader parses the trace text format. Lines starting with '#' and blank
// lines are skipped.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{sc: sc}
}

// Read returns the next record, or io.EOF at end of input.
func (r *Reader) Read() (Request, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := ParseRecord(line)
		if err != nil {
			return Request{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return req, nil
	}
	if err := r.sc.Err(); err != nil {
		return Request{}, err
	}
	return Request{}, io.EOF
}

// ReadAll slurps the remaining records.
func (r *Reader) ReadAll() ([]Request, error) {
	var out []Request
	for {
		req, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, req)
	}
}

// ParseRecord parses a single trace line.
func ParseRecord(line string) (Request, error) {
	f := strings.Fields(line)
	if len(f) != 5 {
		return Request{}, fmt.Errorf("%w: want 5 fields, got %d", ErrBadRecord, len(f))
	}
	t, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("%w: time: %v", ErrBadRecord, err)
	}
	client, err := strconv.Atoi(f[1])
	if err != nil {
		return Request{}, fmt.Errorf("%w: client: %v", ErrBadRecord, err)
	}
	size, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("%w: size: %v", ErrBadRecord, err)
	}
	if size < 0 {
		return Request{}, fmt.Errorf("%w: negative size", ErrBadRecord)
	}
	ver, err := strconv.ParseInt(f[3], 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("%w: version: %v", ErrBadRecord, err)
	}
	return Request{Time: t, Client: client, Size: size, Version: ver, URL: f[4]}, nil
}

// CacheableLimit is the document-size cutoff used for the cacheable-doc
// statistics, matching the paper's proxy policy that "documents larger
// than 250 KB are not cached".
const CacheableLimit = 250 * 1024

// Stats summarizes a trace, reproducing the columns of the paper's Table I.
type Stats struct {
	Name              string
	Requests          uint64
	Clients           int
	UniqueDocs        uint64
	TotalBytes        uint64 // bytes transferred if nothing were cached
	InfiniteCacheSize uint64 // total size of unique documents (latest versions)
	DurationSeconds   int64
	MaxHitRatio       float64 // hit ratio with infinite cache, perfect consistency
	MaxByteHitRatio   float64
	// CacheableDocs/CacheableBytes cover only documents at or under
	// CacheableLimit — the population a proxy cache (and therefore a
	// cache summary) actually holds. Their ratio is the right average
	// document size for sizing Bloom filters (the paper's "8 K").
	CacheableDocs  uint64
	CacheableBytes uint64
}

// AvgCacheableDocBytes returns the average size of cacheable documents
// (8192 when the trace has none).
func (s Stats) AvgCacheableDocBytes() int64 {
	if s.CacheableDocs == 0 {
		return 8192
	}
	return int64(s.CacheableBytes / s.CacheableDocs)
}

// ComputeStats scans requests and derives Table I statistics. A request is
// an infinite-cache hit iff the URL was seen before with the same Version;
// a version change is a (cold) miss and updates the stored version, exactly
// matching the simulator's consistency model.
func ComputeStats(name string, reqs []Request) Stats {
	s := Stats{Name: name}
	type docState struct {
		version int64
		size    int64
	}
	docs := make(map[string]docState)
	clients := make(map[int]struct{})
	var hits, byteHits, bytes uint64
	var minT, maxT int64
	for i, r := range reqs {
		if i == 0 {
			minT, maxT = r.Time, r.Time
		} else {
			if r.Time < minT {
				minT = r.Time
			}
			if r.Time > maxT {
				maxT = r.Time
			}
		}
		s.Requests++
		bytes += uint64(r.Size)
		clients[r.Client] = struct{}{}
		if st, ok := docs[r.URL]; ok && st.version == r.Version {
			hits++
			byteHits += uint64(r.Size)
		} else {
			docs[r.URL] = docState{version: r.Version, size: r.Size}
		}
	}
	s.Clients = len(clients)
	s.UniqueDocs = uint64(len(docs))
	s.TotalBytes = bytes
	for _, st := range docs {
		s.InfiniteCacheSize += uint64(st.size)
		if st.size <= CacheableLimit {
			s.CacheableDocs++
			s.CacheableBytes += uint64(st.size)
		}
	}
	if s.Requests > 0 {
		s.MaxHitRatio = float64(hits) / float64(s.Requests)
		s.DurationSeconds = maxT - minT
	}
	if bytes > 0 {
		s.MaxByteHitRatio = float64(byteHits) / float64(bytes)
	}
	return s
}

// String renders the stats as a Table I row.
func (s Stats) String() string {
	return fmt.Sprintf("%-9s reqs=%-8d clients=%-5d docs=%-8d infCache=%.1fMB dur=%ds maxHit=%.1f%% maxByteHit=%.1f%%",
		s.Name, s.Requests, s.Clients, s.UniqueDocs,
		float64(s.InfiniteCacheSize)/(1<<20), s.DurationSeconds,
		100*s.MaxHitRatio, 100*s.MaxByteHitRatio)
}

package obs

import (
	"sort"
	"sync"
)

// Health tracks peer up/down state for the /healthz endpoint and the
// peers-up gauge. The node layer feeds it from peer registration and from
// HealthConfig.OnChange transitions; a peer is presumed up when registered
// and flips down only when the health prober says so.
type Health struct {
	mu    sync.RWMutex
	peers map[string]bool // id -> up
}

// NewHealth creates an empty tracker.
func NewHealth() *Health {
	return &Health{peers: make(map[string]bool)}
}

// SetPeer records the peer's current state, adding it if unknown.
func (h *Health) SetPeer(id string, up bool) {
	h.mu.Lock()
	h.peers[id] = up
	h.mu.Unlock()
}

// RemovePeer forgets the peer entirely (it no longer affects health).
func (h *Health) RemovePeer(id string) {
	h.mu.Lock()
	delete(h.peers, id)
	h.mu.Unlock()
}

// UpCount returns how many known peers are up.
func (h *Health) UpCount() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := 0
	for _, up := range h.peers {
		if up {
			n++
		}
	}
	return n
}

// Snapshot returns the up and down peer id lists, sorted.
func (h *Health) Snapshot() (up, down []string) {
	h.mu.RLock()
	for id, ok := range h.peers {
		if ok {
			up = append(up, id)
		} else {
			down = append(down, id)
		}
	}
	h.mu.RUnlock()
	sort.Strings(up)
	sort.Strings(down)
	return up, down
}

// Healthy reports whether no known peer is down. A node with no peers is
// healthy: it serves from its own cache.
func (h *Health) Healthy() bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, up := range h.peers {
		if !up {
			return false
		}
	}
	return true
}

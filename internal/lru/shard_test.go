package lru

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestShardCountResolution(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want int
	}{
		// Default 250 KB limit exceeds these capacities: one shard, exact LRU.
		{"tiny default", Config{Capacity: 300}, 1},
		{"tiny explicit", Config{Capacity: 5000, Shards: 16}, 1},
		// Unlimited object size means one document can fill the cache.
		{"unlimited", Config{Capacity: 64 << 20, MaxObjectSize: -1, Shards: 8}, 1},
		// 8 MB over 250 KB documents: at most 32 shards.
		{"clamped", Config{Capacity: 8 << 20, Shards: 64}, 32},
		// Requests round up to the next power of two.
		{"round up", Config{Capacity: 64 << 20, Shards: 5}, 8},
		{"exact", Config{Capacity: 64 << 20, Shards: 4}, 4},
		// 1 KB objects in a 64 KB cache with a big request: 64 shards.
		{"small objects", Config{Capacity: 64 << 10, MaxObjectSize: 1 << 10, Shards: 256}, 64},
	}
	for _, tc := range cases {
		c := MustNewCache(tc.cfg)
		if got := c.Shards(); got != tc.want {
			t.Errorf("%s: shards = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestShardBudgetsSumToCapacity(t *testing.T) {
	c := MustNewCache(Config{Capacity: 1<<20 + 7, MaxObjectSize: 1 << 10, Shards: 8})
	var sum int64
	for i := range c.shards {
		if c.shards[i].capacity < c.MaxObjectSize() {
			t.Fatalf("shard %d budget %d below max object size", i, c.shards[i].capacity)
		}
		sum += c.shards[i].capacity
	}
	if sum != c.Capacity() {
		t.Fatalf("shard budgets sum to %d, want %d", sum, c.Capacity())
	}
}

// With multiple shards the recency-stamp merge must still produce a global
// MRU-first order for Keys and Entries.
func TestGlobalMRUOrderAcrossShards(t *testing.T) {
	c := MustNewCache(Config{Capacity: 64 << 10, MaxObjectSize: 1 << 10, Shards: 8})
	if c.Shards() < 2 {
		t.Fatal("want a multi-shard cache for this test")
	}
	for i := 0; i < 10; i++ {
		c.Put(Entry{Key: fmt.Sprintf("k%d", i), Size: 100})
	}
	c.Get("k3") // most recent
	keys := c.Keys()
	if len(keys) != 10 || keys[0] != "k3" {
		t.Fatalf("keys = %v, want k3 first", keys)
	}
	if keys[1] != "k9" || keys[len(keys)-1] != "k0" {
		t.Fatalf("keys = %v, want k9 second and k0 last", keys)
	}
	entries := c.Entries()
	for i, e := range entries {
		if e.Key != keys[i] {
			t.Fatalf("Entries order diverges from Keys at %d: %s vs %s", i, e.Key, keys[i])
		}
	}
}

// The eviction-callback accounting invariant under parallel load: each
// goroutine owns a disjoint key space (callback order per key is then
// well-defined), and after the storm the insert/evict stream must mirror
// the cache contents exactly — the property that keeps a Bloom-filter
// summary consistent with a live concurrent cache.
func TestParallelCallbackAccounting(t *testing.T) {
	var mu sync.Mutex
	mirror := map[string]bool{}
	c := MustNewCache(Config{
		Capacity:      256 << 10,
		MaxObjectSize: 4 << 10,
		Shards:        8,
		OnInsert: func(e Entry) {
			mu.Lock()
			mirror[e.Key] = true
			mu.Unlock()
		},
		OnEvict: func(e Entry, ev Event) {
			if ev == EvictUpdated {
				return
			}
			mu.Lock()
			delete(mirror, e.Key)
			mu.Unlock()
		},
	})
	if c.Shards() < 2 {
		t.Fatal("want a multi-shard cache for this test")
	}
	workers := 4 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3000; i++ {
				k := fmt.Sprintf("g%d-%d", g, rng.Intn(200))
				switch rng.Intn(4) {
				case 0, 1:
					c.Put(Entry{Key: k, Size: int64(rng.Intn(2048) + 1), Version: int64(rng.Intn(3))})
				case 2:
					c.Get(k)
				case 3:
					c.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()

	if c.Bytes() > c.Capacity() {
		t.Fatalf("bytes %d exceed capacity %d", c.Bytes(), c.Capacity())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(mirror) != c.Len() {
		t.Fatalf("mirror has %d keys, cache has %d", len(mirror), c.Len())
	}
	for _, k := range c.Keys() {
		if !mirror[k] {
			t.Fatalf("cache key %q missing from mirror", k)
		}
	}
	var sum int64
	for _, e := range c.Entries() {
		sum += e.Size
	}
	if sum != c.Bytes() {
		t.Fatalf("entry sizes sum to %d, Bytes reports %d", sum, c.Bytes())
	}
}

// Shared-key stress under the race detector: Get/Put/Touch/Remove/iterate
// from many goroutines on overlapping keys.
func TestParallelSharedKeys(t *testing.T) {
	c := MustNewCache(Config{Capacity: 1 << 20, MaxObjectSize: 8 << 10, Shards: 0})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 31))
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", rng.Intn(64))
				switch rng.Intn(5) {
				case 0:
					c.Put(Entry{Key: k, Size: int64(rng.Intn(4096) + 1)})
				case 1:
					c.Get(k)
				case 2:
					c.Touch(k)
				case 3:
					c.Remove(k)
				case 4:
					if i%500 == 0 {
						c.Keys()
						c.Counters()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > c.Capacity() {
		t.Fatal("capacity violated under concurrency")
	}
	cnt := c.Counters()
	if cnt.Hits+cnt.Misses == 0 {
		t.Fatal("no accesses recorded")
	}
}

// BenchmarkParallelGet measures the sharded read path under contention.
func BenchmarkParallelGet(b *testing.B) {
	c := MustNewCache(Config{Capacity: 64 << 20})
	keys := make([]string, 8192)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://bench/doc%d", i)
		c.Put(Entry{Key: keys[i], Size: 2048})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(keys[i%len(keys)])
			i++
		}
	})
}

package core

import (
	"sync"
	"testing"
	"time"
)

// TestNodeCloseConcurrent is the regression test for the double-close
// race: two concurrent Close calls could both observe the publish-timer
// channel open and both close it, panicking. Close must be idempotent.
func TestNodeCloseConcurrent(t *testing.T) {
	for i := 0; i < 20; i++ {
		n, err := NewNode(NodeConfig{
			ListenAddr:      "127.0.0.1:0",
			Directory:       DirectoryConfig{ExpectedDocs: 100},
			HasDocument:     func(string) bool { return false },
			PublishInterval: time.Hour, // arms stopTimer, the racy channel
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := n.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}()
		}
		wg.Wait()
	}
}

// TestNodeCloseWithoutTimer covers the PublishInterval=0 path (nil
// stopTimer) under the same concurrent shutdown.
func TestNodeCloseWithoutTimer(t *testing.T) {
	n, err := NewNode(NodeConfig{
		ListenAddr:  "127.0.0.1:0",
		Directory:   DirectoryConfig{ExpectedDocs: 100},
		HasDocument: func(string) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.Close()
		}()
	}
	wg.Wait()
	if err := n.Close(); err != nil {
		t.Errorf("repeated Close: %v", err)
	}
}

// TestMarkPeerDownUp exercises the external failure feed the HTTP circuit
// breaker drives: down drops the replica (no more nominations) and flips
// health; up restores health and re-ships full state so the peer's
// replica of us reconverges.
func TestMarkPeerDownUp(t *testing.T) {
	mk := func() *Node {
		n, err := NewNode(NodeConfig{
			ListenAddr:  "127.0.0.1:0",
			Directory:   DirectoryConfig{ExpectedDocs: 200, UpdateThreshold: 0.01},
			HasDocument: func(string) bool { return true },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	a, b := mk(), mk()
	if err := a.AddPeer(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(a.Addr()); err != nil {
		t.Fatal(err)
	}
	const doc = "http://example.test/doc"
	b.HandleInsert(doc)
	b.PublishNow()
	waitFor(t, "b's summary to reach a", func() bool {
		return len(a.PeerSummaries().Candidates(doc)) == 1
	})

	bID := b.Addr().String()
	a.MarkPeerDown(b.Addr())
	if got := a.PeerSummaries().Candidates(doc); len(got) != 0 {
		t.Fatalf("candidates after MarkPeerDown = %v, want none", got)
	}
	if up, down := a.Health().Snapshot(); len(down) != 1 || down[0] != bID {
		t.Fatalf("health after down: up=%v down=%v", up, down)
	}

	if err := a.MarkPeerUp(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if a.Health().UpCount() != 1 {
		t.Fatal("health not restored by MarkPeerUp")
	}
	// MarkPeerUp re-ships A's full state: B's replica of A must converge
	// to A's own filter.
	waitFor(t, "b's replica of a to converge", func() bool {
		snap, ok := b.PeerSummaries().ReplicaSnapshot(a.Addr().String())
		if !ok {
			return false
		}
		want := a.Directory().FilterSnapshot()
		return string(snap) == string(want)
	})
}

// Quickstart: build a cache-directory summary with a counting Bloom
// filter, ship it to a "peer" as directory-update messages over the wire
// format, and probe the peer's replica — the summary-cache protocol in
// thirty lines.
package main

import (
	"fmt"
	"log"

	sc "summarycache"
)

func main() {
	// A proxy summarizes its cache directory with a counting Bloom filter.
	dir, err := sc.NewDirectory(sc.DirectoryConfig{
		ExpectedDocs:    10_000, // ≈ cache bytes / 8 KB average document
		LoadFactor:      16,     // bits per document (paper's recommendation)
		UpdateThreshold: 0.01,   // publish after 1% of the directory is new
	})
	if err != nil {
		log.Fatal(err)
	}

	// Documents enter and leave the cache; the directory journals bit flips.
	for i := 0; i < 500; i++ {
		dir.Insert(fmt.Sprintf("http://www.example.com/page/%d.html", i))
	}
	dir.Remove("http://www.example.com/page/17.html")

	// Publication: drain the journal into ICP_OP_DIRUPDATE datagrams.
	flips := dir.Drain()
	msgs := sc.SplitUpdate(1, dir.Spec(), uint32(dir.Bits()), flips, 360)
	fmt.Printf("directory of %d docs -> %d bit flips -> %d update datagrams\n",
		dir.Docs(), len(flips), len(msgs))

	// A peer replays the datagrams (possibly reordered or duplicated — the
	// flips are absolute, so that is safe) into its replica.
	peers := sc.NewPeerTable()
	for _, m := range msgs {
		wire, err := m.MarshalBinary() // what actually crosses the network
		if err != nil {
			log.Fatal(err)
		}
		decoded, err := sc.ParseICP(wire)
		if err != nil {
			log.Fatal(err)
		}
		if err := peers.ApplyUpdate("proxyA", decoded.Update, false); err != nil {
			log.Fatal(err)
		}
	}

	// On a local miss the peer probes replicas before sending any query.
	for _, url := range []string{
		"http://www.example.com/page/42.html", // cached at proxyA
		"http://www.example.com/page/17.html", // was removed
		"http://elsewhere.org/never-seen",     // never cached
	} {
		fmt.Printf("probe %-40s -> candidates %v\n", url, peers.Candidates(url))
	}

	// The economics: one summary costs bits, not a directory.
	fmt.Printf("replica memory: %d bytes for %d documents (%.1f bits/doc)\n",
		peers.MemoryBytes(), dir.Docs(),
		8*float64(peers.MemoryBytes())/float64(dir.Docs()))
	fmt.Printf("analytic false-positive rate at this load: %.4f\n",
		sc.FalsePositiveRate(dir.Bits(), uint64(dir.Docs()), dir.Spec().FunctionNum))
}

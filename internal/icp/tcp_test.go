package icp

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		NewQuery(1, "http://a/"),
		NewDirUpdate(2, hashing.DefaultSpec, 4096, []bloom.Flip{{Index: 7, Set: true}}),
		NewReply(OpHit, 3, "http://b/"),
	}
	for _, m := range msgs {
		if _, err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, _, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.ReqNum != want.ReqNum || got.URL != want.URL {
			t.Fatalf("frame %d: got %+v", i, got)
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadFrameOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("accepted oversize frame")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	m := NewQuery(1, "http://a/")
	if _, err := WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-3]
	if _, _, err := ReadFrame(bytes.NewReader(short)); err == nil {
		t.Fatal("accepted truncated frame")
	}
}

func TestTCPServerClient(t *testing.T) {
	var mu sync.Mutex
	var got []Message
	srv, err := ListenTCP("127.0.0.1:0", func(from *net.UDPAddr, m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewTCPClient(srv.Addr().String(), TCPClientConfig{DialTimeout: time.Second})
	defer cli.Close()

	flips := []bloom.Flip{{Index: 1, Set: true}, {Index: 9, Set: false}}
	for i := 0; i < 10; i++ {
		if err := cli.Send(NewDirUpdate(uint32(i), hashing.DefaultSpec, 1024, flips)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 10 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("server received %d messages, want 10", len(got))
	}
	for i, m := range got {
		if m.Op != OpDirUpdate || m.ReqNum != uint32(i) || len(m.Update.Flips) != 2 {
			t.Fatalf("message %d mangled: %+v", i, m)
		}
	}
	if cli.Stats().Sent != 10 {
		t.Fatalf("client stats: %+v", cli.Stats())
	}
	if srv.Stats().Received != 10 {
		t.Fatalf("server stats: %+v", srv.Stats())
	}
}

// The client must survive a server restart on the same port (the paper's
// "permanent TCP connection" still has to handle proxy restarts).
func TestTCPClientReconnect(t *testing.T) {
	received := make(chan Message, 16)
	handler := func(_ *net.UDPAddr, m Message) { received <- m }
	srv, err := ListenTCP("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	cli := NewTCPClient(addr, TCPClientConfig{DialTimeout: time.Second})
	defer cli.Close()

	if err := cli.Send(NewQuery(1, "http://pre/")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-received:
	case <-time.After(2 * time.Second):
		t.Fatal("first message not delivered")
	}

	srv.Close()
	// Restart on the same port.
	srv2, err := ListenTCP(addr, handler)
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer srv2.Close()

	// The stale connection fails once; Send retries with a fresh dial.
	// Depending on timing the kernel may accept one write into a dead
	// socket, so allow a couple of attempts.
	var delivered bool
	for i := 0; i < 5 && !delivered; i++ {
		if err := cli.Send(NewQuery(uint32(2+i), "http://post/")); err != nil {
			continue
		}
		select {
		case <-received:
			delivered = true
		case <-time.After(300 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("client did not recover after server restart")
	}
}

func TestTCPClientDialFailure(t *testing.T) {
	cli := NewTCPClient("127.0.0.1:1", TCPClientConfig{DialTimeout: 100 * time.Millisecond})
	defer cli.Close()
	if err := cli.Send(NewQuery(1, "http://x/")); err == nil {
		t.Fatal("send to dead address succeeded")
	}
}

func TestTCPServerDoubleClose(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close errored")
	}
}

// Large full-state updates (hundreds of KB, the paper's concern) must
// traverse the TCP channel intact.
func TestTCPLargeUpdate(t *testing.T) {
	received := make(chan Message, 1)
	srv, err := ListenTCP("127.0.0.1:0", func(_ *net.UDPAddr, m Message) { received <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewTCPClient(srv.Addr().String(), TCPClientConfig{DialTimeout: time.Second})
	defer cli.Close()

	flips := make([]bloom.Flip, MaxFlipsPerMessage)
	for i := range flips {
		flips[i] = bloom.Flip{Index: uint32(i), Set: i%2 == 0}
	}
	if err := cli.Send(NewDirUpdate(1, hashing.DefaultSpec, 1<<26, flips)); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-received:
		if len(m.Update.Flips) != len(flips) {
			t.Fatalf("received %d flips, want %d", len(m.Update.Flips), len(flips))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("large update not delivered")
	}
}

package bloom

import (
	"errors"
	"fmt"
	"sync"

	"summarycache/internal/hashing"
)

// DefaultCounterBits is the counter width the paper recommends: "it seems
// that 4 bits per count would be amply sufficient" (§V-C).
const DefaultCounterBits = 4

// ErrBadCounterBits reports an unsupported counter width.
var ErrBadCounterBits = errors.New("bloom: counter width must be in [1,16] bits")

// CountingFilter is the paper's counting Bloom filter: alongside each bit
// of the array it keeps a small saturating counter of how many inserted
// keys hash to that position, so keys can be deleted. When a counter rises
// from 0 the bit turns on; when it falls to 0 the bit turns off; those
// transitions are the Flips that feed the directory-update protocol.
//
// Counters saturate at their maximum value and never decrement once
// saturated ("if the count ever exceeds 15, we can simply let it stay at
// 15"), trading a vanishing false-negative probability — bounded by
// CounterOverflowProbability — for fixed memory. CountingFilter is safe for
// concurrent use.
type CountingFilter struct {
	mu          sync.Mutex
	m           uint64
	cbits       uint   // counter width in bits
	cmax        uint64 // saturation value (2^cbits - 1)
	counters    []uint64
	perWord     uint // counters packed per 64-bit word
	ones        uint64
	n           uint64 // net insertions (adds - removes), for load accounting
	family      *hashing.Family
	scratch     []uint64
	saturations uint64 // counters that ever hit cmax
}

// NewCountingFilter creates a counting filter of mBits positions with
// counterBits-wide saturating counters.
func NewCountingFilter(mBits uint64, counterBits uint, spec hashing.Spec) (*CountingFilter, error) {
	if mBits == 0 || mBits > MaxBits {
		return nil, ErrBadSize
	}
	if counterBits < 1 || counterBits > 16 {
		return nil, ErrBadCounterBits
	}
	fam, err := hashing.New(spec)
	if err != nil {
		return nil, err
	}
	perWord := uint(64 / counterBits)
	words := (mBits + uint64(perWord) - 1) / uint64(perWord)
	return &CountingFilter{
		m:        mBits,
		cbits:    counterBits,
		cmax:     (uint64(1) << counterBits) - 1,
		counters: make([]uint64, words),
		perWord:  perWord,
		family:   fam,
		scratch:  make([]uint64, spec.FunctionNum),
	}, nil
}

// MustNewCountingFilter is NewCountingFilter, panicking on error.
func MustNewCountingFilter(mBits uint64, counterBits uint, spec hashing.Spec) *CountingFilter {
	c, err := NewCountingFilter(mBits, counterBits, spec)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the number of counter positions (== filter bits).
func (c *CountingFilter) Size() uint64 { return c.m }

// CounterBits returns the configured counter width.
func (c *CountingFilter) CounterBits() uint { return c.cbits }

// Spec returns the hash-function specification.
func (c *CountingFilter) Spec() hashing.Spec { return c.family.Spec() }

// MemoryBytes returns the bytes consumed by the counter array — the "plus
// another 8 MB to represent its own counters" term in the paper's §V-F
// extrapolation.
func (c *CountingFilter) MemoryBytes() uint64 { return uint64(len(c.counters)) * 8 }

func (c *CountingFilter) get(i uint64) uint64 {
	w := i / uint64(c.perWord)
	sh := (i % uint64(c.perWord)) * uint64(c.cbits)
	return (c.counters[w] >> sh) & c.cmax
}

func (c *CountingFilter) set(i, v uint64) {
	w := i / uint64(c.perWord)
	sh := (i % uint64(c.perWord)) * uint64(c.cbits)
	c.counters[w] = c.counters[w]&^(c.cmax<<sh) | v<<sh
}

// Add inserts key, incrementing its k counters. Bit transitions 0→1 are
// appended to flips, which is returned (append semantics; pass nil to
// discard-later or a reused buffer to avoid allocation).
func (c *CountingFilter) Add(key string, flips []Flip) []Flip {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, _ := c.family.IndexesInto(c.scratch, key, c.m)
	for _, i := range c.scratch[:n] {
		v := c.get(i)
		switch {
		case v == c.cmax:
			c.saturations++ // stuck; stays at cmax
		case v == 0:
			c.set(i, 1)
			c.ones++
			flips = append(flips, Flip{Index: uint32(i), Set: true})
		default:
			c.set(i, v+1)
		}
	}
	c.n++
	return flips
}

// Remove deletes key, decrementing its k counters. Bit transitions 1→0 are
// appended to flips. Removing a key that was never added corrupts the
// filter, exactly as with any counting Bloom filter; callers (the cache)
// guarantee delete-after-insert discipline.
func (c *CountingFilter) Remove(key string, flips []Flip) []Flip {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, _ := c.family.IndexesInto(c.scratch, key, c.m)
	for _, i := range c.scratch[:n] {
		v := c.get(i)
		switch {
		case v == c.cmax:
			// Saturated counters are never decremented; see type docs.
		case v == 1:
			c.set(i, 0)
			c.ones--
			flips = append(flips, Flip{Index: uint32(i), Set: false})
		case v > 1:
			c.set(i, v-1)
		default:
			// v == 0: underflow attempt; leave at zero.
		}
	}
	if c.n > 0 {
		c.n--
	}
	return flips
}

// Test reports whether key may be in the set (all k counters nonzero).
func (c *CountingFilter) Test(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, _ := c.family.IndexesInto(c.scratch, key, c.m)
	for _, i := range c.scratch[:n] {
		if c.get(i) == 0 {
			return false
		}
	}
	return true
}

// Count returns the counter value at position i (for tests and diagnostics).
func (c *CountingFilter) Count(i uint64) (uint64, error) {
	if i >= c.m {
		return 0, ErrIndexRange
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.get(i), nil
}

// Entries returns the net number of keys currently represented.
func (c *CountingFilter) Entries() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// OnesCount returns the number of nonzero positions (set bits in the
// derived bit filter).
func (c *CountingFilter) OnesCount() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ones
}

// FillRatio returns the fraction of nonzero positions.
func (c *CountingFilter) FillRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.ones) / float64(c.m)
}

// Saturations returns how many increment attempts found an already-saturated
// counter — a direct observable for the §V-C overflow analysis.
func (c *CountingFilter) Saturations() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saturations
}

// BitFilter materializes the derived plain filter (bit i set iff counter i
// nonzero). This is the array a proxy ships to a new neighbor before delta
// updates begin.
func (c *CountingFilter) BitFilter() *Filter {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := MustNewFilter(c.m, c.family.Spec())
	for i := uint64(0); i < c.m; i++ {
		if c.get(i) != 0 {
			f.setLocked(i)
		}
	}
	return f
}

// Reset zeroes all counters.
func (c *CountingFilter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.counters {
		c.counters[i] = 0
	}
	c.ones, c.n, c.saturations = 0, 0, 0
}

// MaxCount returns the largest counter value currently stored. Exposed so
// tests can check the §V-C expected-maximum-count analysis empirically.
func (c *CountingFilter) MaxCount() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max uint64
	for i := uint64(0); i < c.m; i++ {
		if v := c.get(i); v > max {
			max = v
		}
	}
	return max
}

func (c *CountingFilter) String() string {
	return fmt.Sprintf("counting-bloom{m=%d k=%d cbits=%d entries=%d fill=%.4f}",
		c.m, c.family.Spec().FunctionNum, c.cbits, c.Entries(), c.FillRatio())
}

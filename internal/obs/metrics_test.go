package obs

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestDefaultLatencyBuckets(t *testing.T) {
	b := DefaultLatencyBuckets()
	if len(b) != 21 {
		t.Fatalf("bucket count = %d, want 21", len(b))
	}
	if b[0] != 100e-6 {
		t.Fatalf("first bound = %v, want 100µs", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %v <= %v", i, b[i], b[i-1])
		}
		if got := b[i] / b[i-1]; math.Abs(got-2) > 1e-9 {
			t.Fatalf("bucket ratio at %d = %v, want 2", i, got)
		}
	}
	if b[len(b)-1] < 100 {
		t.Fatalf("top bound %vs does not cover slow origins", b[len(b)-1])
	}
}

func TestHistogramBucketMath(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 3.0, 8.0, 100.0} {
		h.Observe(v)
	}
	// Bucket upper bounds are inclusive (Prometheus le semantics):
	// 0.5 and 1.0 land in le=1; 1.5 in le=2; 3.0 in le=4; the rest +Inf.
	want := []uint64{2, 1, 1, 2}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if want := 0.5 + 1 + 1.5 + 3 + 8 + 100; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	if want := (0.5 + 1 + 1.5 + 3 + 8 + 100) / 6; h.Mean() != want {
		t.Fatalf("mean = %v, want %v", h.Mean(), want)
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	// One observation per unit bucket: the quantile estimate is exact at
	// bucket edges (linear interpolation, the histogram_quantile rule).
	bounds := make([]float64, 10)
	h := func() *Histogram {
		for i := range bounds {
			bounds[i] = float64(i + 1)
		}
		h := newHistogram(bounds)
		for i := 0; i < 10; i++ {
			h.Observe(float64(i) + 0.5)
		}
		return h
	}()
	cases := []struct{ q, want float64 }{
		{0.1, 1}, {0.5, 5}, {0.9, 9}, {1.0, 10},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	// Zero observations: every quantile is 0 — defined and
	// JSON-marshalable, unlike the NaN it used to return.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if b, err := json.Marshal(h.Quantile(0.5)); err != nil || string(b) != "0" {
		t.Fatalf("empty quantile must marshal as 0: %s, %v", b, err)
	}
	h.Observe(1000) // +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("quantile in +Inf bucket = %v, want largest finite bound 2", got)
	}
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram(nil)
	h.ObserveDuration(250 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if got := h.Sum(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("sum = %v, want 0.25", got)
	}
}

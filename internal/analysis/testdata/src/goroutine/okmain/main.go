// Binaries are exempt: process exit is their shutdown path.
package main

func spin() {
	for {
	}
}

func main() {
	go spin()
	select {}
}

// Package summarycache is a from-scratch Go reproduction of Fan, Cao,
// Almeida and Broder, "Summary Cache: A Scalable Wide-Area Web Cache
// Sharing Protocol" (SIGCOMM 1998 / IEEE ToN 8(3), 2000).
//
// The library lives under internal/ as one package per subsystem:
//
//   - internal/hashing — the paper's MD5 hash-group derivation
//   - internal/bloom — Bloom filters, counting Bloom filters, and the
//     §V-C analysis (Figure 4)
//   - internal/lru — the byte-budget proxy document cache
//   - internal/icp — ICP v2 wire protocol + the ICP_OP_DIRUPDATE extension
//   - internal/core — the summary-cache protocol engine (Directory,
//     PeerTable, Node)
//   - internal/httpproxy — a caching forward proxy with no-ICP / ICP /
//     SC-ICP cooperation
//   - internal/origin, internal/bench — the Wisconsin-benchmark-style
//     networked evaluation harness (Tables II, IV, V)
//   - internal/trace, internal/tracegen, internal/stats — workload
//     substrate (the paper's proprietary traces are synthesized; see
//     DESIGN.md §4)
//   - internal/sim, internal/experiments — the trace-driven simulator and
//     per-figure experiment drivers (Figures 1–2, 5–8, Tables I, III)
//
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation; EXPERIMENTS.md records measured-vs-published
// values. Start with examples/quickstart.
//
// The tree is kept clean under the project's own analyzer (see
// internal/analysis and README §Static analysis); CI enforces it, and
// the generate directive below reruns the gate locally:
//
//go:generate go run ./cmd/sclint ./...
package summarycache

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the intra-module summary layer the whole-program rules
// (lock-order, goroutine-lifecycle, borrow-escape) share: one pass over
// every type-checked function body extracts a resolved static call
// graph, lock-acquisition facts and loop-termination facts. Because the
// loader's chainImporter serves universe-internal imports from the
// freshly checked packages, *types.Func objects are pointer-identical
// across packages, so the graph spans the whole universe without any
// name-based matching.
//
// The facts are deliberately lexical: held-lock tracking follows source
// order inside a body (a Lock pushes, the matching Unlock pops, a
// deferred Unlock holds to the end), which is exact for the
// straight-line critical sections this module writes and conservative
// elsewhere. TryLock acquisitions are ignored — a failed TryLock cannot
// deadlock, and the shard fast path relies on exactly that.

// heldLock is one lock class on the held stack, with the acquisition
// site that put it there.
type heldLock struct {
	class *types.Var
	pos   token.Pos
}

// lockAcq is one blocking acquisition and the snapshot of what was
// already held when it happened (outermost first).
type lockAcq struct {
	class *types.Var
	pos   token.Pos
	held  []heldLock
}

// callSite is one statically resolved call and the locks held across it.
type callSite struct {
	callee *types.Func
	pos    token.Pos
	held   []heldLock
}

// funcInfo is the per-function summary.
type funcInfo struct {
	obj  *types.Func // nil for function literals
	pkg  *Package
	name string // rendered name for diagnostics

	acquires []lockAcq
	calls    []callSite
	badLoop  token.Pos // first loop/select that provably never exits (NoPos: none)

	// Lazily memoised transitive facts (0 unset, 1 computing, 2 done).
	mayAcqState  int
	mayAcq       map[*types.Var]token.Pos
	foreverState int
	foreverPos   token.Pos
	foreverChain []string
}

// summaries is the universe-wide summary table, built once per Universe
// and shared by every rule that needs the call graph.
type summaries struct {
	u     *Universe
	funcs map[*types.Func]*funcInfo
	lits  map[*ast.FuncLit]*funcInfo
	// goStmts records every go statement in non-main library code with
	// the package it appears in, so the lifecycle rule does not re-walk.
	goStmts []goSite
}

type goSite struct {
	pkg  *Package
	stmt *ast.GoStmt
}

// summaries returns the lazily built summary layer for this universe.
func (u *Universe) summaries() *summaries {
	if u.sums == nil {
		u.sums = buildSummaries(u)
	}
	return u.sums
}

func buildSummaries(u *Universe) *summaries {
	s := &summaries{
		u:     u,
		funcs: map[*types.Func]*funcInfo{},
		lits:  map[*ast.FuncLit]*funcInfo{},
	}
	for _, pkg := range u.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{obj: obj, pkg: pkg, name: funcName(obj)}
				scanBody(pkg, fd.Body, fi)
				s.funcs[obj] = fi
			}
			// Function literals are summarised separately with an empty
			// held set: a closure body runs in whatever context calls it
			// (often another goroutine), so the spawner's held locks do
			// not carry in. Nested literals each get their own entry; the
			// enclosing body scan prunes them, so nothing double-counts.
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					fi := &funcInfo{pkg: pkg, name: "func literal"}
					scanBody(pkg, n.Body, fi)
					s.lits[n] = fi
				case *ast.GoStmt:
					if !pkg.IsMain() {
						s.goStmts = append(s.goStmts, goSite{pkg: pkg, stmt: n})
					}
				}
				return true
			})
		}
	}
	return s
}

// funcName renders a *types.Func for diagnostics: pkg.Func or
// pkg.(*Recv).Method.
func funcName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// --- body scanning ---------------------------------------------------

// scanBody fills fi's acquires, calls and badLoop facts from body.
func scanBody(pkg *Package, body *ast.BlockStmt, fi *funcInfo) {
	var held []heldLock
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // summarised on its own, with an empty held set
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to the end of the
			// body — exactly what not popping models. Other deferred
			// calls run at unwind time and are not ordered against the
			// body's acquisitions, so they contribute no edges.
			return false
		case *ast.GoStmt:
			// A spawned goroutine does not run under the spawner's held
			// locks, and the spawner does not block on it: neither lock
			// edges nor call-graph edges flow through a go statement.
			return false
		case *ast.CallExpr:
			if class, op := lockOp(pkg, n); op != lockOpNone {
				switch op {
				case lockOpAcquire:
					if class != nil {
						fi.acquires = append(fi.acquires, lockAcq{class: class, pos: n.Pos(), held: snapshotHeld(held)})
						held = append(held, heldLock{class: class, pos: n.Pos()})
					}
				case lockOpRelease:
					if class != nil {
						held = popHeld(held, class)
					}
				}
				return true
			}
			if fn, ok := calleeOf(pkg, n).(*types.Func); ok {
				fi.calls = append(fi.calls, callSite{callee: fn, pos: n.Pos(), held: snapshotHeld(held)})
			}
		}
		return true
	})

	// Labels for labeled-break resolution, then loop facts.
	labels := map[ast.Stmt]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		if l, ok := n.(*ast.LabeledStmt); ok {
			labels[l.Stmt] = l.Label.Name
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			// Same-class locks taken inside a loop body without a
			// matching release in the same iteration pile up across
			// iterations: a self-edge on that class (lock N+1 acquired
			// while lock N is held). The striped-filter reset pattern —
			// lock all stripes ascending, then unlock — is exactly this
			// and is sanctioned by annotation, not by silence.
			for _, acq := range loopImbalance(pkg, n.Body) {
				fi.acquires = append(fi.acquires, acq)
			}
			if n.Cond == nil && fi.badLoop == token.NoPos && !loopHasExit(pkg, n.Body, labels[n]) {
				fi.badLoop = n.Pos()
			}
		case *ast.RangeStmt:
			for _, acq := range loopImbalance(pkg, n.Body) {
				fi.acquires = append(fi.acquires, acq)
			}
		case *ast.SelectStmt:
			// select{} blocks forever by definition.
			if len(n.Body.List) == 0 && fi.badLoop == token.NoPos {
				fi.badLoop = n.Pos()
			}
		}
		return true
	})
}

func snapshotHeld(held []heldLock) []heldLock {
	if len(held) == 0 {
		return nil
	}
	out := make([]heldLock, len(held))
	copy(out, held)
	return out
}

// popHeld removes the innermost held entry of class, if any.
func popHeld(held []heldLock, class *types.Var) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].class == class {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}

// --- lock classification ---------------------------------------------

const (
	lockOpNone = iota
	lockOpAcquire
	lockOpRelease
	lockOpTry
)

// lockOp classifies a call as a sync.Mutex/RWMutex operation and
// resolves the lock's class: the struct field or package-level variable
// the mutex lives in. Instance identity is deliberately collapsed to the
// declaration — every shard's s.mu is one class — which is what makes
// order cycles detectable at all.
func lockOp(pkg *Package, call *ast.CallExpr) (*types.Var, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, lockOpNone
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, lockOpNone
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, lockOpNone
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return nil, lockOpNone
	}
	var op int
	switch fn.Name() {
	case "Lock", "RLock":
		op = lockOpAcquire
	case "Unlock", "RUnlock":
		op = lockOpRelease
	case "TryLock", "TryRLock":
		op = lockOpTry
	default:
		return nil, lockOpNone
	}
	return lockClass(pkg, sel.X), op
}

// lockClass resolves the variable a mutex expression denotes: a struct
// field (s.mu, c.stripes[i].mu) or a package-level var. Local mutexes
// return nil and are ignored — a lock no other goroutine can name
// cannot participate in a cross-goroutine order cycle that this
// analysis could attribute.
func lockClass(pkg *Package, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok {
			if v.IsField() {
				return v
			}
			if isPkgLevel(v) {
				return v
			}
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok && isPkgLevel(v) {
			return v
		}
	case *ast.StarExpr:
		return lockClass(pkg, e.X)
	}
	return nil
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// loopImbalance finds lock classes acquired inside a loop body more
// often (lexically) than they are released there, and synthesises a
// self-edge acquisition for each: iteration N+1's Lock happens with
// iteration N's still held. Deferred releases do not count — a deferred
// Unlock in a loop runs at function exit, not per iteration.
func loopImbalance(pkg *Package, body ast.Node) []lockAcq {
	type bal struct {
		locks, unlocks int
		first          token.Pos
	}
	counts := map[*types.Var]*bal{}
	var order []*types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			class, op := lockOp(pkg, n)
			if class == nil {
				return true
			}
			b := counts[class]
			if b == nil {
				b = &bal{}
				counts[class] = b
				order = append(order, class)
			}
			switch op {
			case lockOpAcquire:
				b.locks++
				if b.first == token.NoPos {
					b.first = n.Pos()
				}
			case lockOpRelease:
				b.unlocks++
			}
		}
		return true
	})
	var out []lockAcq
	for _, class := range order {
		b := counts[class]
		if b.locks > b.unlocks && b.first != token.NoPos {
			out = append(out, lockAcq{
				class: class,
				pos:   b.first,
				held:  []heldLock{{class: class, pos: b.first}},
			})
		}
	}
	return out
}

// --- loop termination ------------------------------------------------

// loopHasExit reports whether an unconditional for-loop's body contains
// a reachable way out: a return, a break that binds to this loop (or
// names its label), a goto, or a terminating call (panic, os.Exit,
// runtime.Goexit, log.Fatal*). Breaks inside nested for/range/select/
// switch statements bind to those, not to this loop — the classic
// leak-on-Close bug is `for { select { case <-stop: break } }`.
func loopHasExit(pkg *Package, body *ast.BlockStmt, label string) bool {
	exit := false
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		if exit {
			return
		}
		depth := 0
		for _, a := range stack {
			switch a.(type) {
			case *ast.FuncLit:
				return // a nested closure's returns do not exit this loop
			case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
				depth++
			}
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			switch n.Tok {
			case token.BREAK:
				if n.Label != nil {
					if label != "" && n.Label.Name == label {
						exit = true
					}
				} else if depth == 0 {
					exit = true
				}
			case token.GOTO:
				exit = true // conservatively assume the target leaves the loop
			}
		case *ast.CallExpr:
			if isTerminalCall(pkg, n) {
				exit = true
			}
		}
	})
	return exit
}

// isTerminalCall reports calls that never return.
func isTerminalCall(pkg *Package, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	fn, ok := calleeOf(pkg, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
	}
	return false
}

// --- transitive closures ---------------------------------------------

// mayAcquire returns every lock class fn (or anything it statically
// calls) may acquire, each with its earliest acquisition site. Cycles in
// the call graph contribute nothing on the back edge, which is sound
// for reachability.
func (s *summaries) mayAcquire(fn *types.Func) map[*types.Var]token.Pos {
	fi := s.funcs[fn]
	if fi == nil {
		return nil
	}
	switch fi.mayAcqState {
	case 2:
		return fi.mayAcq
	case 1:
		return nil
	}
	fi.mayAcqState = 1
	out := map[*types.Var]token.Pos{}
	add := func(class *types.Var, pos token.Pos) {
		if old, ok := out[class]; !ok || pos < old {
			out[class] = pos
		}
	}
	for _, a := range fi.acquires {
		add(a.class, a.pos)
	}
	for _, c := range fi.calls {
		for class, pos := range s.mayAcquire(c.callee) {
			add(class, pos)
		}
	}
	fi.mayAcq = out
	fi.mayAcqState = 2
	return out
}

// foreverOf reports whether fi can never exit once entered: it contains
// a no-exit unconditional loop, or (transitively) calls a function that
// does. The chain names the calls from fi down to the looping function.
func (s *summaries) foreverOf(fi *funcInfo) (token.Pos, []string) {
	if fi.badLoop != token.NoPos {
		return fi.badLoop, nil
	}
	for _, c := range fi.calls {
		if pos, chain := s.loopsForever(c.callee); pos != token.NoPos {
			return pos, append([]string{funcName(c.callee)}, chain...)
		}
	}
	return token.NoPos, nil
}

// loopsForever is foreverOf keyed by *types.Func, memoised, with a
// cycle guard (recursion is not a proof of non-termination).
func (s *summaries) loopsForever(fn *types.Func) (token.Pos, []string) {
	fi := s.funcs[fn]
	if fi == nil {
		return token.NoPos, nil
	}
	switch fi.foreverState {
	case 2:
		return fi.foreverPos, fi.foreverChain
	case 1:
		return token.NoPos, nil
	}
	fi.foreverState = 1
	pos, chain := s.foreverOf(fi)
	fi.foreverPos, fi.foreverChain = pos, chain
	fi.foreverState = 2
	return pos, chain
}

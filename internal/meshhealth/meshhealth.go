// Package meshhealth is the live mesh-health observability layer: it
// classifies every proxy lookup into the paper's decision taxonomy with
// per-peer attribution, keeps the evidence as metric series in an obs
// registry, and renders the combined peer-table view at /debug/mesh.
//
// The paper's evaluation (Figs. 4–8) rests on four quantities — false
// hits, false misses, stale hits, and inter-proxy message/byte overhead.
// The node layer counts them globally; this package pins each event on
// the specific peer whose summary caused it, which is what an operator
// needs to see *which* replica has drifted and what its update stream
// costs.
//
// Taxonomy (per lookup, as observed live):
//
//   - local hit: the local cache held a fresh copy.
//   - remote hit: a peer's summary nominated it, the peer confirmed over
//     ICP, and delivery succeeded with a fresh copy.
//   - false hit: a peer's summary nominated it but the peer answered MISS
//     (or could not deliver) — the summary lied; attributed to that peer.
//   - false miss: a peer's summary said no, but an audit ICP query
//     contradicted the negative probe with a HIT — the replica was stale
//     the other way; attributed to that peer.
//   - stale hit: the peer delivered a copy whose version did not match
//     the request — counted, then treated as a miss.
package meshhealth

import (
	"sync"
	"time"

	"summarycache/internal/obs"
)

// PeerStats is the exported snapshot of one peer's decision counters —
// the Stats() side of the Stats()==scrape parity contract for the
// summarycache_peer_* families.
type PeerStats struct {
	// Nominations counts lookups in which this peer's summary matched.
	Nominations uint64 `json:"nominations"`
	// RemoteHits counts remote hits served by this peer.
	RemoteHits uint64 `json:"remote_hits"`
	// FalseHits counts nominations this peer's summary got wrong.
	FalseHits uint64 `json:"false_hits"`
	// FalseMisses counts audit contradictions of this peer's negative
	// probes.
	FalseMisses uint64 `json:"false_misses"`
	// StaleHits counts stale-version deliveries by this peer.
	StaleHits uint64 `json:"stale_hits"`
}

// Divergence is the observed per-peer summary divergence: the fraction of
// this peer's nominations that turned out to be lies. It is the live
// counterpart of the replica's estimated false-positive probability.
func (s PeerStats) Divergence() float64 {
	if s.Nominations == 0 {
		return 0
	}
	return float64(s.FalseHits) / float64(s.Nominations)
}

// FalseDecision is one recent false decision kept for the /debug/mesh
// evidence trail; TraceID links into /debug/traces?id= when the request
// was traced.
type FalseDecision struct {
	Kind    string    `json:"kind"` // false_hit | false_miss | stale_hit
	Peer    string    `json:"peer"`
	URL     string    `json:"url"`
	TraceID string    `json:"trace_id,omitempty"`
	Time    time.Time `json:"time"`
}

type peerCounters struct {
	nominations *obs.Counter
	remoteHits  *obs.Counter
	falseHits   *obs.Counter
	falseMisses *obs.Counter
	staleHits   *obs.Counter
}

// recentCap bounds the false-decision ring.
const recentCap = 64

// Accounting is the per-peer decision accountant for one proxy. All event
// methods are cheap (map lookup + atomic increment) and run only on
// decision events — after the ICP round trip, never on the summary-probe
// fast path. The zero-peer registration is lazy: series exist from a
// peer's first event, and RemovePeer retires them so churn leaves no
// stale series behind.
type Accounting struct {
	reg  *obs.Registry
	base obs.Labels

	mu     sync.Mutex
	peers  map[string]*peerCounters
	recent []FalseDecision // ring, newest at (next-1+cap)%cap
	next   int
	filled bool
}

// New creates an Accounting writing per-peer series into reg, labeled
// base plus peer="<id>". reg must be non-nil.
func New(reg *obs.Registry, base obs.Labels) *Accounting {
	return &Accounting{
		reg:    reg,
		base:   base,
		peers:  make(map[string]*peerCounters),
		recent: make([]FalseDecision, recentCap),
	}
}

func (a *Accounting) forPeer(id string) *peerCounters {
	pc := a.peers[id]
	if pc != nil {
		return pc
	}
	ls := a.base.With("peer", id)
	pc = &peerCounters{
		nominations: a.reg.Counter("summarycache_peer_nominations_total",
			"Lookups in which this peer's summary matched (the peer was queried).", ls),
		remoteHits: a.reg.Counter("summarycache_peer_remote_hits_total",
			"Remote hits served by this peer.", ls),
		falseHits: a.reg.Counter("summarycache_peer_false_hits_total",
			"Nominations this peer's summary got wrong (peer answered MISS or failed to deliver).", ls),
		falseMisses: a.reg.Counter("summarycache_peer_false_misses_total",
			"Audit ICP answers contradicting this peer's negative summary probe.", ls),
		staleHits: a.reg.Counter("summarycache_peer_stale_hits_total",
			"Stale-version deliveries by this peer.", ls),
	}
	a.peers[id] = pc
	stats := pc
	a.reg.GaugeFunc("summarycache_peer_divergence",
		"Observed divergence of this peer's summary: false hits per nomination.", ls,
		func() float64 {
			return PeerStats{
				Nominations: stats.nominations.Value(),
				FalseHits:   stats.falseHits.Value(),
			}.Divergence()
		})
	return pc
}

// Nominated records that peer's summary matched a lookup.
func (a *Accounting) Nominated(peer string) {
	a.mu.Lock()
	pc := a.forPeer(peer)
	a.mu.Unlock()
	pc.nominations.Inc()
}

// RemoteHit records a remote hit served by peer.
func (a *Accounting) RemoteHit(peer string) {
	a.mu.Lock()
	pc := a.forPeer(peer)
	a.mu.Unlock()
	pc.remoteHits.Inc()
}

func (a *Accounting) noteFalse(kind, peer, url, traceID string) *peerCounters {
	a.mu.Lock()
	pc := a.forPeer(peer)
	a.recent[a.next] = FalseDecision{Kind: kind, Peer: peer, URL: url, TraceID: traceID, Time: time.Now()}
	a.next++
	if a.next == len(a.recent) {
		a.next = 0
		a.filled = true
	}
	a.mu.Unlock()
	return pc
}

// FalseHit records that peer's summary nominated url but the peer had no
// usable copy.
func (a *Accounting) FalseHit(peer, url, traceID string) {
	a.noteFalse("false_hit", peer, url, traceID).falseHits.Inc()
}

// FalseMiss records that an audit query contradicted peer's negative
// summary probe for url.
func (a *Accounting) FalseMiss(peer, url, traceID string) {
	a.noteFalse("false_miss", peer, url, traceID).falseMisses.Inc()
}

// StaleHit records that peer delivered a stale version of url.
func (a *Accounting) StaleHit(peer, url, traceID string) {
	a.noteFalse("stale_hit", peer, url, traceID).staleHits.Inc()
}

// PeerStats snapshots one peer's decision counters (zero value for an
// unseen peer).
func (a *Accounting) PeerStats(peer string) PeerStats {
	a.mu.Lock()
	pc := a.peers[peer]
	a.mu.Unlock()
	if pc == nil {
		return PeerStats{}
	}
	return PeerStats{
		Nominations: pc.nominations.Value(),
		RemoteHits:  pc.remoteHits.Value(),
		FalseHits:   pc.falseHits.Value(),
		FalseMisses: pc.falseMisses.Value(),
		StaleHits:   pc.staleHits.Value(),
	}
}

// Peers returns the ids with recorded decision activity.
func (a *Accounting) Peers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.peers))
	for id := range a.peers {
		out = append(out, id)
	}
	return out
}

// Recent returns the retained false decisions, newest first.
func (a *Accounting) Recent() []FalseDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.next
	if a.filled {
		n = len(a.recent)
	}
	out := make([]FalseDecision, 0, n)
	for i := 0; i < n; i++ {
		idx := (a.next - 1 - i + len(a.recent)) % len(a.recent)
		if !a.recent[idx].Time.IsZero() {
			out = append(out, a.recent[idx])
		}
	}
	return out
}

// RemovePeer retires peer's decision series — the metric-lifecycle hook
// for peer churn. Counters restart from zero if the peer rejoins.
func (a *Accounting) RemovePeer(peer string) {
	a.mu.Lock()
	delete(a.peers, peer)
	a.mu.Unlock()
	a.reg.Unregister(a.base.With("peer", peer))
}

package lru

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewCache(Config{Capacity: 0}); err != ErrBadCapacity {
		t.Fatalf("err = %v, want ErrBadCapacity", err)
	}
	if _, err := NewCache(Config{Capacity: -5}); err != ErrBadCapacity {
		t.Fatalf("err = %v, want ErrBadCapacity", err)
	}
}

func TestPutGet(t *testing.T) {
	c := MustNewCache(Config{Capacity: 1000})
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	if !c.Put(Entry{Key: "a", Size: 100, Version: 1}) {
		t.Fatal("Put rejected cacheable entry")
	}
	e, ok := c.Get("a")
	if !ok || e.Size != 100 || e.Version != 1 {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if c.Len() != 1 || c.Bytes() != 100 {
		t.Fatalf("len=%d bytes=%d", c.Len(), c.Bytes())
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	var evicted []string
	c := MustNewCache(Config{Capacity: 300, OnEvict: func(e Entry, ev Event) {
		if ev == EvictCapacity {
			evicted = append(evicted, e.Key)
		}
	}})
	c.Put(Entry{Key: "a", Size: 100})
	c.Put(Entry{Key: "b", Size: 100})
	c.Put(Entry{Key: "c", Size: 100})
	c.Get("a") // promote a; LRU order is now b, c, a
	c.Put(Entry{Key: "d", Size: 100})
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if c.Contains("b") || !c.Contains("a") || !c.Contains("c") || !c.Contains("d") {
		t.Fatal("wrong survivors after eviction")
	}
}

func TestEvictionMultiple(t *testing.T) {
	c := MustNewCache(Config{Capacity: 250})
	for i := 0; i < 5; i++ {
		c.Put(Entry{Key: fmt.Sprintf("k%d", i), Size: 50})
	}
	// Inserting a 200-byte doc must displace several LRU entries.
	c.Put(Entry{Key: "big", Size: 200})
	if c.Bytes() > 250 {
		t.Fatalf("bytes %d exceeds capacity", c.Bytes())
	}
	if !c.Contains("big") || !c.Contains("k4") {
		t.Fatal("MRU entries should survive")
	}
	if c.Contains("k0") || c.Contains("k1") {
		t.Fatal("LRU entries should be gone")
	}
}

func TestMaxObjectSize(t *testing.T) {
	c := MustNewCache(Config{Capacity: 10 << 20}) // default 250 KB limit
	if c.Put(Entry{Key: "huge", Size: 251 * 1024}) {
		t.Fatal("accepted document over the 250 KB paper limit")
	}
	if !c.Put(Entry{Key: "ok", Size: 250 * 1024}) {
		t.Fatal("rejected document at the limit")
	}
	unlimited := MustNewCache(Config{Capacity: 10 << 20, MaxObjectSize: -1})
	if !unlimited.Put(Entry{Key: "huge", Size: 5 << 20}) {
		t.Fatal("unlimited cache rejected large doc")
	}
	custom := MustNewCache(Config{Capacity: 10 << 20, MaxObjectSize: 1000})
	if custom.Put(Entry{Key: "x", Size: 1001}) {
		t.Fatal("custom limit not applied")
	}
	if custom.Put(Entry{Key: "neg", Size: -1}) {
		t.Fatal("accepted negative size")
	}
	if c.Put(Entry{Key: "overcap", Size: 11 << 20}) {
		t.Fatal("accepted doc exceeding whole capacity")
	}
}

func TestUpdateSameKey(t *testing.T) {
	var inserts, updates int
	c := MustNewCache(Config{
		Capacity: 1000,
		OnInsert: func(Entry) { inserts++ },
		OnEvict: func(_ Entry, ev Event) {
			if ev == EvictUpdated {
				updates++
			}
		},
	})
	c.Put(Entry{Key: "a", Size: 100, Version: 1})
	c.Put(Entry{Key: "a", Size: 300, Version: 2}) // new version
	if c.Len() != 1 || c.Bytes() != 300 {
		t.Fatalf("len=%d bytes=%d after update", c.Len(), c.Bytes())
	}
	e, _ := c.Peek("a")
	if e.Version != 2 {
		t.Fatalf("version = %d, want 2", e.Version)
	}
	if inserts != 1 || updates != 1 {
		t.Fatalf("inserts=%d updates=%d, want 1/1 (version refresh keeps directory membership)", inserts, updates)
	}
	// Re-putting the identical version is a refresh, not an update event.
	c.Put(Entry{Key: "a", Size: 300, Version: 2})
	if inserts != 1 || updates != 1 {
		t.Fatalf("identical re-put fired callbacks: inserts=%d updates=%d", inserts, updates)
	}
}

func TestTouch(t *testing.T) {
	c := MustNewCache(Config{Capacity: 200})
	c.Put(Entry{Key: "a", Size: 100})
	c.Put(Entry{Key: "b", Size: 100})
	if !c.Touch("a") {
		t.Fatal("Touch miss on present key")
	}
	if c.Touch("zzz") {
		t.Fatal("Touch hit on absent key")
	}
	c.Put(Entry{Key: "c", Size: 100}) // displaces LRU, which is now b
	if !c.Contains("a") || c.Contains("b") {
		t.Fatal("Touch did not promote")
	}
	// Touch must not affect hit accounting.
	if h, _ := c.Stats(); h != 0 {
		t.Fatalf("Touch counted as hit: %d", h)
	}
}

func TestRemove(t *testing.T) {
	var removed []Event
	c := MustNewCache(Config{Capacity: 1000, OnEvict: func(_ Entry, ev Event) { removed = append(removed, ev) }})
	c.Put(Entry{Key: "a", Size: 10})
	if !c.Remove("a") {
		t.Fatal("Remove missed present key")
	}
	if c.Remove("a") {
		t.Fatal("Remove hit absent key")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("cache not empty after remove")
	}
	if len(removed) != 1 || removed[0] != EvictRemoved {
		t.Fatalf("events = %v", removed)
	}
}

func TestKeysOrder(t *testing.T) {
	c := MustNewCache(Config{Capacity: 1000})
	c.Put(Entry{Key: "a", Size: 1})
	c.Put(Entry{Key: "b", Size: 1})
	c.Put(Entry{Key: "c", Size: 1})
	c.Get("a")
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "c" || keys[2] != "b" {
		t.Fatalf("keys = %v, want [a c b] (MRU first)", keys)
	}
	entries := c.Entries()
	if len(entries) != 3 || entries[0].Key != "a" {
		t.Fatalf("entries = %v", entries)
	}
}

func TestClear(t *testing.T) {
	evictions := 0
	c := MustNewCache(Config{Capacity: 1000, OnEvict: func(Entry, Event) { evictions++ }})
	c.Put(Entry{Key: "a", Size: 10})
	c.Clear()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("Clear left state behind")
	}
	if evictions != 0 {
		t.Fatal("Clear fired eviction callbacks")
	}
}

// Invariant: bytes == sum of entry sizes, never exceeds capacity, and the
// entry set matches the key set — under arbitrary operation sequences.
func TestQuickInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNewCache(Config{Capacity: 5000, MaxObjectSize: -1})
		for op := 0; op < 500; op++ {
			k := fmt.Sprintf("k%d", rng.Intn(60))
			switch rng.Intn(4) {
			case 0, 1:
				c.Put(Entry{Key: k, Size: int64(rng.Intn(500) + 1), Version: int64(rng.Intn(3))})
			case 2:
				c.Get(k)
			case 3:
				c.Remove(k)
			}
		}
		if c.Bytes() > c.Capacity() {
			return false
		}
		var sum int64
		seen := map[string]bool{}
		for _, e := range c.Entries() {
			sum += e.Size
			if seen[e.Key] {
				return false // duplicate key in list
			}
			seen[e.Key] = true
			if got, ok := c.Peek(e.Key); !ok || got.Key != e.Key || got.Size != e.Size || got.Version != e.Version {
				return false
			}
		}
		return sum == c.Bytes() && len(seen) == c.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The insert/evict callback stream must balance: applying it to a set
// reproduces the cache contents. This is exactly what keeps a Bloom-filter
// summary consistent with the cache.
func TestCallbackStreamMirrorsCache(t *testing.T) {
	mirror := map[string]bool{}
	c := MustNewCache(Config{
		Capacity:      3000,
		MaxObjectSize: -1,
		OnInsert:      func(e Entry) { mirror[e.Key] = true },
		OnEvict: func(e Entry, ev Event) {
			if ev != EvictUpdated {
				delete(mirror, e.Key)
			}
		},
	})
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 2000; op++ {
		k := fmt.Sprintf("k%d", rng.Intn(100))
		switch rng.Intn(3) {
		case 0, 1:
			c.Put(Entry{Key: k, Size: int64(rng.Intn(200) + 1)})
		case 2:
			c.Remove(k)
		}
	}
	if len(mirror) != c.Len() {
		t.Fatalf("mirror has %d keys, cache has %d", len(mirror), c.Len())
	}
	for _, k := range c.Keys() {
		if !mirror[k] {
			t.Fatalf("cache key %q missing from mirror", k)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := MustNewCache(Config{Capacity: 100000})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("g%d-%d", g, i%50)
				c.Put(Entry{Key: k, Size: 10})
				c.Get(k)
				c.Touch(k)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Bytes() > c.Capacity() {
		t.Fatal("capacity violated under concurrency")
	}
}

func BenchmarkPutGet(b *testing.B) {
	c := MustNewCache(Config{Capacity: 1 << 24})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := fmt.Sprintf("k%d", i%10000)
		c.Put(Entry{Key: k, Size: 1024})
		c.Get(k)
	}
}

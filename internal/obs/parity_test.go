package obs

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
)

// scrapeFamilies GETs /metrics from a handler serving reg and returns the
// set of family names announced by "# TYPE name kind" headers.
func scrapeFamilies(t *testing.T, reg *Registry) map[string]bool {
	t.Helper()
	srv := httptest.NewServer(NewHandler(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/metrics status = %d, body %q", resp.StatusCode, body)
	}

	families := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 3 && fields[0] == "#" && fields[1] == "TYPE" {
			families[fields[2]] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return families
}

// TestStatsScrapeParity pins the registration==exposition invariant from
// the other side of sclint's stats-drift rule: every name the registry
// has ever seen appears in a /metrics scrape, and the scrape invents no
// families the registry does not know about. A metric silently dropped
// from the exposition path (or leaked into it) fails here.
func TestStatsScrapeParity(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("parity_requests_total", "plain counter", L("proxy", "a")).Add(1)
	reg.Counter("parity_requests_total", "plain counter", L("proxy", "b")).Add(2) // second series, same family
	reg.CounterFunc("parity_evictions_total", "callback counter", nil, func() uint64 { return 7 })
	reg.Gauge("parity_inflight", "plain gauge", nil).Set(3)
	reg.GaugeFunc("parity_entries", "callback gauge", nil, func() float64 { return 42 })
	reg.Histogram("parity_seconds", "latency", nil, []float64{0.1, 1}).Observe(0.5)

	names := reg.Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	registered := map[string]bool{}
	for _, n := range names {
		if registered[n] {
			t.Errorf("Names() returned duplicate %q", n)
		}
		registered[n] = true
	}
	if len(registered) != 5 {
		t.Errorf("got %d registered families %v, want 5", len(registered), names)
	}

	scraped := scrapeFamilies(t, reg)
	for n := range registered {
		if !scraped[n] {
			t.Errorf("registered metric %q missing from /metrics scrape", n)
		}
	}
	for n := range scraped {
		if !registered[n] {
			t.Errorf("/metrics exposes %q which was never registered", n)
		}
	}
}

// Package nostats registers counters but exports no Stats struct, so
// the stats-drift rule skips it entirely (mirrors internal/tracing).
package nostats

import "statsdrift/obs"

type metrics struct{ spans *obs.Counter }

func newMetrics(reg *obs.Registry) metrics {
	return metrics{spans: reg.Counter("summarycache_nostats_spans_started_total", "no Stats struct here", nil)}
}

package obs

import (
	rm "runtime/metrics"
)

// runtimeSamples are the runtime/metrics samples re-exported at /metrics.
// The mutex-wait total is the one the ROADMAP hot-path-reclaim item needs:
// together with the LRU shard-contention counters it tells an operator
// whether probe/insert latency is lock time or work.
var runtimeSamples = []struct {
	name string // our family name
	help string
	src  string // runtime/metrics key
}{
	{
		name: "summarycache_runtime_mutex_wait_seconds",
		help: "Cumulative time goroutines have spent blocked on mutexes (runtime /sync/mutex/wait/total:seconds).",
		src:  "/sync/mutex/wait/total:seconds",
	},
	{
		name: "summarycache_runtime_goroutines",
		help: "Current live goroutine count (runtime /sched/goroutines:goroutines).",
		src:  "/sched/goroutines:goroutines",
	},
	{
		name: "summarycache_runtime_gc_cycles",
		help: "Completed GC cycles (runtime /gc/cycles/total:gc-cycles).",
		src:  "/gc/cycles/total:gc-cycles",
	},
}

// RegisterRuntimeMetrics exposes a small set of runtime/metrics samples as
// gauges on r, read at scrape time. Registration is idempotent — shared
// registries and repeated admin-handler construction are safe.
func RegisterRuntimeMetrics(r *Registry) {
	for _, s := range runtimeSamples {
		src := s.src
		r.GaugeFunc(s.name, s.help, nil, func() float64 { return readRuntimeSample(src) })
	}
}

func readRuntimeSample(name string) float64 {
	sample := []rm.Sample{{Name: name}}
	rm.Read(sample)
	switch sample[0].Value.Kind() {
	case rm.KindFloat64:
		return sample[0].Value.Float64()
	case rm.KindUint64:
		return float64(sample[0].Value.Uint64())
	default:
		return 0
	}
}

package bench

import (
	"testing"
	"time"

	"summarycache/internal/httpproxy"
	"summarycache/internal/tracegen"
)

func TestReadCPU(t *testing.T) {
	c := ReadCPU()
	if !c.Valid {
		t.Skip("/proc/self/stat unavailable")
	}
	if c.User < 0 || c.System < 0 {
		t.Fatalf("negative CPU: %+v", c)
	}
	// Burn some CPU and confirm the counter moves (or at least doesn't go
	// backwards).
	x := 0
	for i := 0; i < 50_000_000; i++ {
		x += i % 7
	}
	_ = x
	d := ReadCPU().Sub(c)
	if !d.Valid || d.User < 0 || d.System < 0 {
		t.Fatalf("CPU went backwards: %+v", d)
	}
}

// smallSynthetic is a fast configuration shared by the mode tests.
func smallSynthetic(mode httpproxy.Mode, hitRatio float64, disjoint bool) SyntheticConfig {
	return SyntheticConfig{
		Mode:              mode,
		Proxies:           4,
		ClientsPerProxy:   3,
		RequestsPerClient: 30,
		InherentHitRatio:  hitRatio,
		Disjoint:          disjoint,
		OriginLatency:     2 * time.Millisecond,
		CacheBytes:        16 << 20,
		Seed:              1,
	}
}

func TestSyntheticNoICP(t *testing.T) {
	r, err := RunSynthetic(smallSynthetic(httpproxy.ModeNone, 0.45, true))
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 4*3*30 {
		t.Fatalf("requests = %d", r.Requests)
	}
	// The inherent hit ratio must be visible (revisits hit the cache).
	if r.HitRatio < 0.25 || r.HitRatio > 0.60 {
		t.Errorf("hit ratio %.3f outside plausible band for 45%% revisits", r.HitRatio)
	}
	if r.UDPSent != 0 || r.UDPReceived != 0 {
		t.Error("no-ICP run produced UDP traffic")
	}
	if r.RemoteHitRatio != 0 {
		t.Error("disjoint no-ICP run produced remote hits")
	}
	if r.MeanLatency <= 0 {
		t.Error("no latency recorded")
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

// The paper's Table II comparison: with disjoint URL spaces (no remote
// hits), ICP's UDP overhead is pure waste — (N-1) queries per miss plus as
// many replies — while SC-ICP sends almost nothing. Hit ratios match.
func TestSyntheticICPOverheadVsSCICP(t *testing.T) {
	icp, err := RunSynthetic(smallSynthetic(httpproxy.ModeICP, 0.25, true))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := RunSynthetic(smallSynthetic(httpproxy.ModeSCICP, 0.25, true))
	if err != nil {
		t.Fatal(err)
	}
	none, err := RunSynthetic(smallSynthetic(httpproxy.ModeNone, 0.25, true))
	if err != nil {
		t.Fatal(err)
	}

	// Hit ratios are statistically identical across modes (same seeds).
	for _, r := range []Result{icp, sc} {
		if d := r.HitRatio - none.HitRatio; d > 0.05 || d < -0.05 {
			t.Errorf("%v hit ratio %.3f deviates from no-ICP %.3f", r.Mode, r.HitRatio, none.HitRatio)
		}
	}
	// ICP sends ~2×(N-1)×misses datagrams (query+reply per peer).
	misses := float64(icp.Requests) * (1 - icp.HitRatio)
	wantQueries := misses * 3
	if float64(icp.UDPSent) < wantQueries*0.8 {
		t.Errorf("ICP UDP sent %d, want ≈%0.f queries (+replies received %d)",
			icp.UDPSent, wantQueries, icp.UDPReceived)
	}
	// SC-ICP must slash UDP query traffic. Updates remain, so compare
	// against ICP's total with a generous factor.
	if sc.UDPSent*5 > icp.UDPSent {
		t.Errorf("SC-ICP UDP %d not ≪ ICP UDP %d", sc.UDPSent, icp.UDPSent)
	}
}

func TestSyntheticSharedURLsProduceRemoteHits(t *testing.T) {
	cfg := smallSynthetic(httpproxy.ModeICP, 0.3, false) // shared URL space
	r, err := RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.RemoteHitRatio == 0 {
		t.Error("shared URL space produced no remote hits under ICP")
	}
}

func TestAssignmentString(t *testing.T) {
	if ClientBound.String() == "" || RoundRobin.String() == "" {
		t.Fatal("empty assignment strings")
	}
}

func TestReplayBothAssignments(t *testing.T) {
	reqs, _, err := tracegen.GeneratePreset(tracegen.UPisa, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) > 800 {
		reqs = reqs[:800]
	}
	for _, a := range []Assignment{ClientBound, RoundRobin} {
		r, err := RunReplay(ReplayConfig{
			Mode:          httpproxy.ModeSCICP,
			Proxies:       4,
			Workers:       8,
			Assignment:    a,
			Trace:         reqs,
			OriginLatency: time.Millisecond,
			CacheBytes:    8 << 20,
		})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if r.Requests != uint64(len(reqs)) {
			t.Errorf("%v: served %d of %d requests", a, r.Requests, len(reqs))
		}
		if r.HitRatio <= 0 {
			t.Errorf("%v: zero hit ratio replaying a skewed trace", a)
		}
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	if _, err := RunReplay(ReplayConfig{Mode: httpproxy.ModeNone}); err == nil {
		t.Fatal("accepted empty trace")
	}
}

// The headline of Tables IV/V: replaying a real-ish trace, SC-ICP keeps
// ICP's remote hits while sending far fewer datagrams.
func TestReplayICPvsSCICP(t *testing.T) {
	reqs, _, err := tracegen.GeneratePreset(tracegen.UPisa, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) > 1500 {
		reqs = reqs[:1500]
	}
	run := func(mode httpproxy.Mode) Result {
		r, err := RunReplay(ReplayConfig{
			Mode: mode, Proxies: 4, Workers: 8, Assignment: RoundRobin,
			Trace: reqs, OriginLatency: time.Millisecond, CacheBytes: 8 << 20,
			// At this miniature scale the prototype's fill-an-IP-packet
			// batching would delay summaries past the whole replay; batch
			// every ~10 documents instead.
			MinUpdateFlips: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	icp := run(httpproxy.ModeICP)
	sc := run(httpproxy.ModeSCICP)
	if icp.RemoteHitRatio == 0 {
		t.Fatal("replay produced no remote hits under ICP; workload too cold")
	}
	if sc.HitRatio < icp.HitRatio*0.9 {
		t.Errorf("SC-ICP hit ratio %.3f lost too much vs ICP %.3f", sc.HitRatio, icp.HitRatio)
	}
	if sc.UDPSent >= icp.UDPSent {
		t.Errorf("SC-ICP UDP %d not below ICP %d", sc.UDPSent, icp.UDPSent)
	}
}

func TestParseProcStat(t *testing.T) {
	// 52 fields as on a modern kernel; comm contains spaces and parens.
	line := "1234 (weird (comm) name) S 1 1 1 0 -1 4194304 500 0 0 0 250 75 0 0 20 0 8 0 100 1000000 200 18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 3 0 0 0 0 0 0 0 0 0 0 0 0 0"
	c := parseProcStat(line)
	if !c.Valid {
		t.Fatal("valid line rejected")
	}
	if c.User != 2500*time.Millisecond {
		t.Errorf("utime = %v, want 2.5s (250 ticks)", c.User)
	}
	if c.System != 750*time.Millisecond {
		t.Errorf("stime = %v, want 750ms (75 ticks)", c.System)
	}
	for _, bad := range []string{
		"",
		"no parens at all",
		"1 (x) S 1 2 3", // too few fields
		"1 (x) S 1 1 1 0 -1 4194304 500 0 0 0 abc 75 0 0 20 0 8 0 100", // non-numeric utime
	} {
		if parseProcStat(bad).Valid {
			t.Errorf("accepted malformed line %q", bad)
		}
	}
}

// Round-robin assignment balances proxy load better than client-bound
// assignment when clients are skewed — the paper's Table IV/V contrast.
func TestReplayLoadBalance(t *testing.T) {
	reqs, _, err := tracegen.GeneratePreset(tracegen.UPisa, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) > 1000 {
		reqs = reqs[:1000]
	}
	run := func(a Assignment) Result {
		r, err := RunReplay(ReplayConfig{
			Mode: httpproxy.ModeNone, Proxies: 4, Workers: 8, Assignment: a,
			Trace: reqs, OriginLatency: time.Millisecond, CacheBytes: 8 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cb := run(ClientBound)
	rr := run(RoundRobin)
	if len(cb.PerProxyRequests) != 4 || len(rr.PerProxyRequests) != 4 {
		t.Fatalf("per-proxy counts missing: %v / %v", cb.PerProxyRequests, rr.PerProxyRequests)
	}
	if rr.LoadCV > cb.LoadCV+1e-9 {
		t.Errorf("round-robin CV %.4f should be ≤ client-bound CV %.4f "+
			"(the paper's load-balance observation)", rr.LoadCV, cb.LoadCV)
	}
	if rr.LoadCV < 0 || cb.LoadCV < 0 {
		t.Fatal("negative CV")
	}
}

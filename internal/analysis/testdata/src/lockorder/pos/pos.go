// Package pos exercises every lock-order failure shape: a two-lock
// cycle, a cycle closed through a call, a same-class self-edge, a
// violation of a declared hierarchy and a malformed declaration.
package pos

import "sync"

type tableA struct{ mu sync.Mutex }

type tableB struct{ mu sync.Mutex }

// ab and ba acquire the two classes in opposite orders: a cycle, with
// one finding at each closing acquisition.
func ab(a *tableA, b *tableB) {
	a.mu.Lock()
	b.mu.Lock() // want lock-order: cycle
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *tableA, b *tableB) {
	b.mu.Lock()
	a.mu.Lock() // want lock-order: cycle
	a.mu.Unlock()
	b.mu.Unlock()
}

type ringC struct{ mu sync.Mutex }

type ringD struct{ mu sync.Mutex }

func lockD(d *ringD) {
	d.mu.Lock()
	d.mu.Unlock()
}

// cThenD closes the C→D edge through a call into lockD; dThenC holds D
// while taking C directly — a cycle only the call graph can see.
func cThenD(c *ringC, d *ringD) {
	c.mu.Lock()
	lockD(d) // want lock-order: cycle via call
	c.mu.Unlock()
}

func dThenC(c *ringC, d *ringD) {
	d.mu.Lock()
	c.mu.Lock() // want lock-order: cycle
	c.mu.Unlock()
	d.mu.Unlock()
}

type striped struct{ stripes [4]stripe }

type stripe struct{ mu sync.Mutex }

// resetAll locks every stripe and only then releases them: iteration
// N+1's Lock runs with iteration N's still held — a same-class
// self-edge, unsanctioned in this package.
func (s *striped) resetAll() {
	for i := range s.stripes {
		s.stripes[i].mu.Lock() // want lock-order: self-edge
	}
	for i := range s.stripes {
		s.stripes[i].mu.Unlock()
	}
}

type front struct{ mu sync.Mutex }

type back struct{ mu sync.Mutex }

//lint:lockorder pos.front.mu < pos.back.mu the request path owns front and always takes it first

// frontThenBack follows the declared hierarchy: silent.
func frontThenBack(f *front, b *back) {
	f.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	f.mu.Unlock()
}

// backThenFront contradicts it: reported as a violation, not a cycle.
func backThenFront(f *front, b *back) {
	b.mu.Lock()
	f.mu.Lock() // want lock-order: violates declared hierarchy
	f.mu.Unlock()
	b.mu.Unlock()
}

//lint:lockorder pos.front.mu pos.back.mu missing the < separator

package perfwatch

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"summarycache/internal/obs"
)

// Objective kinds. Latency and error-rate objectives accumulate over the
// completed-request stream the Watch sees as a SpanSink; ratio objectives
// read a pair of cumulative counters the caller supplies (e.g. false hits
// over client requests), so they can express any taxonomy ceiling.
const (
	KindLatency   = "latency"
	KindErrorRate = "error_rate"
	KindRatio     = "ratio"
)

// Objective is one named service-level objective. The SLO engine follows
// the SRE burn-rate formulation: over each evaluation window the bad
// fraction (bad events / total events) is divided by the error Budget
// (the bad fraction the objective tolerates); a burn rate of 1 means the
// budget is being consumed exactly as fast as it accrues, and the
// objective breaches when burn reaches BurnThreshold.
type Objective struct {
	// Name identifies the objective in metrics ({slo="<name>"}), the
	// /debug/slo report, breach logs and trace anomaly reasons.
	Name string
	// Kind selects the event stream: KindLatency (bad = request slower
	// than Threshold), KindErrorRate (bad = request with outcome "error"),
	// or KindRatio (bad/total read from Num/Den). Inferred when empty:
	// Num set → ratio, Threshold set → latency, otherwise error_rate.
	Kind string
	// Threshold is the per-request latency ceiling for latency objectives;
	// a request slower than this is a bad event and its trace is marked
	// anomalous ("slo:<name>") so tail sampling retains it.
	Threshold time.Duration
	// Budget is the tolerated bad fraction (e.g. 0.01 for a p99
	// objective, or the false-hit ratio ceiling). Defaults to 0.01.
	Budget float64
	// Num and Den are cumulative counter readers for ratio objectives
	// (numerator = bad events, denominator = total events).
	Num, Den func() uint64
	// BurnThreshold is the burn rate at which the objective breaches
	// (default 1: the window's bad fraction reached the budget).
	BurnThreshold float64
}

// kind resolves the objective kind, inferring it when unset.
func (o Objective) kind() string {
	if o.Kind != "" {
		return o.Kind
	}
	if o.Num != nil {
		return KindRatio
	}
	if o.Threshold > 0 {
		return KindLatency
	}
	return KindErrorRate
}

// SLOStatus is one objective's state at the last evaluation — the JSON
// row /debug/slo serves.
type SLOStatus struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// ThresholdSeconds is the latency ceiling (latency objectives only).
	ThresholdSeconds float64 `json:"threshold_seconds,omitempty"`
	// Budget is the tolerated bad fraction.
	Budget float64 `json:"budget"`
	// WindowTotal/WindowBad are the event counts of the last evaluation
	// window (the delta since the previous evaluation).
	WindowTotal uint64 `json:"window_total"`
	WindowBad   uint64 `json:"window_bad"`
	// BadFraction is WindowBad/WindowTotal (0 on an empty window).
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate is BadFraction/Budget: 1 means the error budget burns
	// exactly as fast as it accrues.
	BurnRate float64 `json:"burn_rate"`
	// Breached reports whether BurnRate reached the objective's
	// BurnThreshold in the last window.
	Breached bool `json:"breached"`
	// Breaches counts evaluations that newly entered the breached state
	// (rising edges) over the watch's lifetime.
	Breaches uint64 `json:"breaches_total"`
	// TotalEvents/TotalBad are the cumulative counts since startup.
	TotalEvents uint64 `json:"total_events"`
	TotalBad    uint64 `json:"total_bad"`
}

// sloState is one objective plus its accumulators and metric series.
type sloState struct {
	o      Objective
	kind   string
	reason string // precomputed "slo:<name>" anomaly reason

	bad, total atomic.Uint64 // cumulative (latency/error_rate kinds)
	burnBits   atomic.Uint64 // float64 bits of the last burn rate

	// Guarded by Watch.evalMu.
	lastBad, lastTotal uint64
	breachedNow        bool
	breachCount        uint64

	breachedG *obs.Gauge
	breaches  *obs.Counter
}

func newSLOState(o Objective, reg *obs.Registry, base obs.Labels) *sloState {
	if o.Budget <= 0 {
		o.Budget = 0.01
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 1
	}
	s := &sloState{
		o:      o,
		kind:   o.kind(),
		reason: "slo:" + o.Name,
	}
	ls := base.With("slo", o.Name)
	reg.GaugeFunc("summarycache_slo_burn_rate",
		"error-budget burn rate at the last evaluation (1 = budget consumed as fast as it accrues)",
		ls, func() float64 { return math.Float64frombits(s.burnBits.Load()) })
	s.breachedG = reg.Gauge("summarycache_slo_breached",
		"whether the objective's burn rate reached its threshold in the last window (0/1)", ls)
	s.breaches = reg.Counter("summarycache_slo_breaches_total",
		"evaluations that newly entered the breached state", ls)
	return s
}

// onRequest accounts one completed request trace. It returns a non-empty
// anomaly reason when this single request breached a latency objective's
// threshold, so the trace is retained by tail sampling.
func (s *sloState) onRequest(outcome string, d time.Duration) string {
	switch s.kind {
	case KindLatency:
		s.total.Add(1)
		if d > s.o.Threshold {
			s.bad.Add(1)
			return s.reason
		}
	case KindErrorRate:
		s.total.Add(1)
		if outcome == "error" {
			s.bad.Add(1)
		}
	}
	return ""
}

// read returns the cumulative (bad, total) event counts.
func (s *sloState) read() (bad, total uint64) {
	if s.kind == KindRatio {
		return s.o.Num(), s.o.Den()
	}
	return s.bad.Load(), s.total.Load()
}

// evaluate closes the current window (everything since the previous
// evaluation), updates the burn/breached series, and returns the status.
// Caller holds Watch.evalMu.
func (s *sloState) evaluate() SLOStatus {
	bad, total := s.read()
	dBad, dTotal := bad-s.lastBad, total-s.lastTotal
	s.lastBad, s.lastTotal = bad, total
	frac := 0.0
	if dTotal > 0 {
		frac = float64(dBad) / float64(dTotal)
	}
	burn := frac / s.o.Budget
	s.burnBits.Store(math.Float64bits(burn))
	breached := dTotal > 0 && burn >= s.o.BurnThreshold
	if breached && !s.breachedNow {
		s.breachCount++
		s.breaches.Inc()
	}
	s.breachedNow = breached
	if breached {
		s.breachedG.Set(1)
	} else {
		s.breachedG.Set(0)
	}
	st := SLOStatus{
		Name:        s.o.Name,
		Kind:        s.kind,
		Budget:      s.o.Budget,
		WindowTotal: dTotal,
		WindowBad:   dBad,
		BadFraction: frac,
		BurnRate:    burn,
		Breached:    breached,
		Breaches:    s.breachCount,
		TotalEvents: total,
		TotalBad:    bad,
	}
	if s.kind == KindLatency {
		st.ThresholdSeconds = s.o.Threshold.Seconds()
	}
	return st
}

// Evaluate closes every objective's window, updating the burn-rate and
// breached series, and triggers a profile capture when any objective
// breached. It returns the per-objective statuses (also retained for
// /debug/slo). Call it periodically (see Run) or explicitly in tests.
func (w *Watch) Evaluate() []SLOStatus {
	if w == nil {
		return nil
	}
	w.evalMu.Lock()
	defer w.evalMu.Unlock()
	out := make([]SLOStatus, 0, len(w.slos))
	for _, s := range w.slos {
		st := s.evaluate()
		out = append(out, st)
		if st.Breached {
			w.log.Warn("slo breached",
				"slo", st.Name, "kind", st.Kind,
				"burn_rate", st.BurnRate, "bad", st.WindowBad, "total", st.WindowTotal)
			w.capturer.Trigger(fmt.Sprintf("slo:%s burn=%.2f", st.Name, st.BurnRate))
		}
	}
	w.lastEval = time.Now()
	w.last = out
	return out
}

// Status returns the statuses of the most recent evaluation (evaluating
// once if none has happened yet) and its timestamp.
func (w *Watch) Status() ([]SLOStatus, time.Time) {
	if w == nil {
		return nil, time.Time{}
	}
	w.evalMu.Lock()
	have := w.last != nil
	last, when := w.last, w.lastEval
	w.evalMu.Unlock()
	if !have {
		return w.Evaluate(), time.Now()
	}
	return last, when
}

// Run evaluates every interval (default 10s) until stop is closed. It is
// the binaries' evaluation loop; tests call Evaluate directly.
func (w *Watch) Run(interval time.Duration, stop <-chan struct{}) {
	if w == nil {
		return
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.Evaluate()
		}
	}
}

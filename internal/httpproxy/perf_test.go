package httpproxy

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/faultnet"
	"summarycache/internal/obs"
	"summarycache/internal/origin"
	"summarycache/internal/perfwatch"
	"summarycache/internal/tracing"
)

// spanStages are the stages derived from request-trace spans; their sum
// is the decomposed portion of end-to-end request latency.
var spanStages = []string{
	tracing.SpanLocalLookup,
	tracing.SpanSummaryProbe,
	tracing.SpanICPQuery,
	tracing.SpanPeerFetch,
	tracing.SpanOriginFetch,
}

// waitForRequestCount polls until the watch's "request" stage has
// absorbed n samples (trace Finish runs in the handler goroutine, so the
// client can observe the response a beat before the sink does).
func waitForRequestCount(t *testing.T, w *perfwatch.Watch, n uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, s := range w.Stages() {
			if s.Stage == perfwatch.StageRequest && s.Count >= n {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("request stage never reached %d samples", n)
}

// TestPerfSLOBreachEndToEnd is the performance-observability acceptance
// test: a 2-proxy SC-ICP mesh whose origin path stalls (faultnet HTTP
// Stall on every fetch) must
//
//	(a) attribute each client request's latency to stages — the sum of
//	    the span-derived stages approximately equals the end-to-end
//	    "request" stage (the stall lives in origin_fetch, so nothing is
//	    lost to an unattributed gap),
//	(b) trip the latency SLO: every stalled request exceeds the
//	    threshold, the evaluated burn rate breaches, and
//	(c) on breach, capture a pprof profile ring entry and retain every
//	    breaching trace at head rate 0 with an "slo:" anomaly, visible
//	    at /debug/traces, /debug/slo and /debug/perf.
func TestPerfSLOBreachEndToEnd(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })

	const (
		stallFor  = 300 * time.Millisecond
		threshold = 100 * time.Millisecond
		docs      = 5
	)
	reg := obs.NewRegistry()
	watch := perfwatch.New(perfwatch.Config{
		Registry: reg,
		Objectives: []perfwatch.Objective{{
			Name:      "client_p99",
			Threshold: threshold,
			Budget:    0.01,
		}},
		Capture: perfwatch.CaptureConfig{
			Enabled:     true,
			CPUDuration: 20 * time.Millisecond,
			MinInterval: time.Hour,
		},
	})
	tracer := tracing.New(tracing.Config{HeadRate: 0, Buffer: 64, Registry: reg, Sink: watch})

	var proxies []*Proxy
	for i := 0; i < 2; i++ {
		inj := faultnet.New(faultnet.Scenario{
			Seed: int64(i + 1),
			HTTP: faultnet.HTTPRates{Stall: 1, StallFor: stallFor},
		})
		p, err := Start(Config{
			Mode:       ModeSCICP,
			CacheBytes: 8 << 20,
			Summary: core.DirectoryConfig{
				ExpectedDocs: 2000, UpdateThreshold: 0.01,
			},
			QueryTimeout: 2 * time.Second,
			FetchTimeout: 5 * time.Second,
			Faults:       inj,
			Metrics:      reg,
			Tracer:       tracer,
			Perf:         watch,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
	}
	for i, p := range proxies {
		for j, q := range proxies {
			if i != j {
				if err := p.AddPeer(q.ICPAddr(), q.URL()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	admin := httptest.NewServer(obs.NewHandler(reg, proxies[0].Health(),
		obs.Mount{Pattern: "/debug/traces", Handler: tracer.Handler()},
		obs.Mount{Pattern: "/debug/slo", Handler: watch.SLOHandler()},
		obs.Mount{Pattern: "/debug/perf", Handler: watch.PerfHandler()},
	))
	t.Cleanup(admin.Close)

	m := &mesh{origin: org, proxies: proxies}
	a := proxies[0]
	for i := 0; i < docs; i++ {
		m.fetch(t, a, m.docURL("perf/doc"+string(rune('0'+i)), 2048))
	}
	// A repeat request is a local hit — fast, under the threshold; its
	// trace must NOT be retained below.
	m.fetch(t, a, m.docURL("perf/doc0", 2048))
	waitForRequestCount(t, watch, docs+1)

	// (a) Latency fully attributed: stage sum ≈ request sum. The stalled
	// origin fetch dominates, so the decomposed share must be high; it
	// can never meaningfully exceed the total (stages are sequential).
	var reqSum, stageSum float64
	byStage := map[string]perfwatch.StageSummary{}
	for _, s := range watch.Stages() {
		byStage[s.Stage] = s
	}
	reqSum = byStage[perfwatch.StageRequest].Sum
	for _, name := range spanStages {
		stageSum += byStage[name].Sum
	}
	if reqSum == 0 {
		t.Fatal("request stage absorbed no time")
	}
	if cov := stageSum / reqSum; cov < 0.75 || cov > 1.05 {
		t.Fatalf("stage sum %.4fs covers %.2f of request sum %.4fs, want ~1 (within [0.75, 1.05])",
			stageSum, cov, reqSum)
	}
	if byStage[tracing.SpanOriginFetch].Sum < float64(docs)*stallFor.Seconds() {
		t.Fatalf("origin_fetch sum %.3fs, want >= %d stalls of %v",
			byStage[tracing.SpanOriginFetch].Sum, docs, stallFor)
	}

	// (b) The SLO breaches: all stalled requests are bad events.
	var status *perfwatch.SLOStatus
	for _, s := range watch.Evaluate() {
		if s.Name == "client_p99" {
			s := s
			status = &s
		}
	}
	if status == nil {
		t.Fatal("client_p99 objective missing from Evaluate")
	}
	if !status.Breached || status.WindowBad != docs || status.WindowTotal != docs+1 {
		t.Fatalf("slo status = %+v, want breached with %d/%d bad", status, docs, docs+1)
	}

	// (c1) The breach captured a profile ring entry.
	watch.Capturer().Wait()
	caps := watch.Capturer().Captures()
	if len(caps) != 1 || !strings.HasPrefix(caps[0].Reason, "slo:client_p99") {
		t.Fatalf("captures = %+v, want one with reason slo:client_p99", caps)
	}
	if len(caps[0].Profiles["heap"]) == 0 {
		t.Fatal("capture has no heap profile")
	}

	// (c2) Every breaching trace survived head rate 0 via tail keep,
	// carrying the slo anomaly; the fast local hit did not.
	var list struct {
		Count  int            `json:"count"`
		Traces []traceSummary `json:"traces"`
	}
	if code := getTraceJSON(t, admin.URL+"/debug/traces", &list); code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", code)
	}
	if list.Count != docs {
		t.Fatalf("retained %d traces, want the %d breaching ones only", list.Count, docs)
	}
	for _, tr := range list.Traces {
		if tr.Kept != "tail" || !strings.HasPrefix(tr.Anomaly, "slo:client_p99") {
			t.Fatalf("trace %+v, want kept=tail with slo:client_p99 anomaly", tr)
		}
	}

	// (c3) The debug endpoints agree.
	var slo struct {
		Objectives []perfwatch.SLOStatus `json:"objectives"`
	}
	if code := getTraceJSON(t, admin.URL+"/debug/slo?format=json", &slo); code != http.StatusOK {
		t.Fatalf("/debug/slo status %d", code)
	}
	if len(slo.Objectives) != 1 || !slo.Objectives[0].Breached {
		t.Fatalf("/debug/slo = %+v, want the breached objective", slo.Objectives)
	}
	var perfList []struct {
		Reason   string         `json:"reason"`
		Profiles map[string]int `json:"profile_bytes"`
	}
	if code := getTraceJSON(t, admin.URL+"/debug/perf?format=json", &perfList); code != http.StatusOK {
		t.Fatalf("/debug/perf status %d", code)
	}
	if len(perfList) != 1 || perfList[0].Profiles["heap"] == 0 {
		t.Fatalf("/debug/perf = %+v, want the capture with its heap profile", perfList)
	}

	// The sub-span stages only this layer feeds (LRU ops) saw traffic
	// too: every request ran at least one cache lookup.
	if byStage[perfwatch.StageLRUGet].Count < docs {
		t.Fatalf("lru_get count = %d, want >= %d", byStage[perfwatch.StageLRUGet].Count, docs)
	}
	if byStage[perfwatch.StageLRUInsert].Count < docs {
		t.Fatalf("lru_insert count = %d, want >= %d", byStage[perfwatch.StageLRUInsert].Count, docs)
	}
}

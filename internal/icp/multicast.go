package icp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// MulticastGroup is a shared unreliable-delivery channel for directory
// updates: the paper observes that "update messages can be transferred via
// a nonreliable multicast scheme" because the absolute bit-flip records
// tolerate loss. One DIRUPDATE datagram to the group replaces N−1
// unicasts.
//
// Senders transmit from their ordinary unicast Conn (so receivers identify
// the origin proxy by source address); MulticastGroup only *receives*.
type MulticastGroup struct {
	pc      *net.UDPConn
	group   *net.UDPAddr
	handler Handler

	recv, recvB, dropped atomic.Uint64

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// ErrNotMulticast reports a group address outside the multicast range.
var ErrNotMulticast = errors.New("icp: address is not multicast")

// JoinMulticast joins group (e.g. "239.255.77.77:4827") on the given
// interface (nil: system default) and delivers every decoded message to
// handler along with its source address. The caller typically ignores
// messages whose source is itself.
func JoinMulticast(group string, ifi *net.Interface, handler Handler) (*MulticastGroup, error) {
	ga, err := net.ResolveUDPAddr("udp", group)
	if err != nil {
		return nil, fmt.Errorf("icp: resolve group %q: %w", group, err)
	}
	if !ga.IP.IsMulticast() {
		return nil, fmt.Errorf("%w: %v", ErrNotMulticast, ga.IP)
	}
	pc, err := net.ListenMulticastUDP("udp", ifi, ga)
	if err != nil {
		return nil, fmt.Errorf("icp: join %q: %w", group, err)
	}
	m := &MulticastGroup{pc: pc, group: ga, handler: handler, done: make(chan struct{})}
	go m.readLoop()
	return m, nil
}

// Group returns the group address (the destination senders use).
func (m *MulticastGroup) Group() *net.UDPAddr { return m.group }

// Stats reports receive-side counters.
func (m *MulticastGroup) Stats() Stats {
	return Stats{Received: m.recv.Load(), RecvBytes: m.recvB.Load(), Dropped: m.dropped.Load()}
}

// Close leaves the group.
func (m *MulticastGroup) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	err := m.pc.Close()
	<-m.done
	return err
}

func (m *MulticastGroup) readLoop() {
	defer close(m.done)
	// One reusable receive buffer plus an in-place Decoder: a steady-state
	// group datagram is received and decoded with zero allocations (the
	// Handler borrow contract applies, as on Conn).
	buf := make([]byte, MaxDatagram)
	var dec Decoder
	for {
		n, from, err := m.pc.ReadFromUDP(buf)
		if err != nil {
			m.mu.Lock()
			closed := m.closed
			m.mu.Unlock()
			if closed {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		m.recv.Add(1)
		m.recvB.Add(uint64(n))
		msg, err := dec.Decode(buf[:n])
		if err != nil {
			m.dropped.Add(1)
			continue
		}
		if m.handler != nil {
			m.handler(from, msg)
		}
	}
}

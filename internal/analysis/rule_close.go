package analysis

import (
	"go/ast"
	"go/types"
)

// uncheckedCloseRule flags non-deferred calls to Close, Flush or Sync
// whose error result is silently discarded in library code. At a bare
// call statement the caller is still in a position to act on the error
// (propagate it, log it, or at minimum write `_ =` to mark the drop
// deliberate); silently losing it hides failed resource teardown — the
// class of bug behind half-flushed journals and leaked sockets.
//
// Deferred calls split by method: defer f.Close() stays exempt — at
// unwind time there is no error path left, and the idiom is ubiquitous;
// flagging it would bury real findings. But defer f.Flush() and defer
// f.Sync() ARE flagged: those calls exist to make buffered or persisted
// data durable, and deferring them discards the one signal that the
// write-back failed — a half-flushed snapshot or journal then reads as
// torn at the next recovery with no error ever surfaced. Flush/Sync
// belong on the explicit error path; only the last-resort Close belongs
// in a defer.
//
// Also deliberately exempt:
//   - _ = f.Close() — the drop is explicit and greppable;
//   - main packages (cmd/, examples/) — process exit is the handler;
//   - methods whose signature returns no error (csv.Writer.Flush).
type uncheckedCloseRule struct{}

func (uncheckedCloseRule) Name() string { return RuleUncheckedClose }

func (uncheckedCloseRule) Doc() string {
	return "non-deferred Close/Flush/Sync calls in library code must not silently discard their error (and Flush/Sync must not hide in a defer)"
}

var closeLikeNames = map[string]bool{"Close": true, "Flush": true, "Sync": true}

// returnsError reports whether fn's final result is the error type.
func returnsError(fn *types.Func) bool {
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

func (uncheckedCloseRule) Check(pkg *Package, report ReportFunc) {
	if pkg.IsMain() {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			deferred := false
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				// A bare call *statement* discards results (go statements
				// are a distinct kind and fall outside this match).
				call, _ = ast.Unparen(stmt.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				// Deferred Flush/Sync lose the durability error at unwind
				// time; only Close is exempt there.
				call = stmt.Call
				deferred = true
			}
			if call == nil {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !closeLikeNames[sel.Sel.Name] {
				return true
			}
			if deferred && sel.Sel.Name == "Close" {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !returnsError(fn) {
				return true
			}
			if deferred {
				report(call.Pos(),
					"deferred %s.%s discards its durability error; call it on the error path (only Close belongs in a defer)",
					types.ExprString(sel.X), sel.Sel.Name)
				return true
			}
			report(call.Pos(),
				"error from %s.%s is silently discarded; handle it or assign to _ to make the drop explicit",
				types.ExprString(sel.X), sel.Sel.Name)
			return true
		})
	}
}

package bloom_test

import (
	"fmt"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
)

// Build a plain filter, probe it, and inspect the analytic false-positive
// rate — the §V-C basics.
func ExampleFilter() {
	f := bloom.MustNewFilter(8*1000, hashing.DefaultSpec) // load factor 8 for 1000 docs
	f.Add("http://example.com/index.html")
	fmt.Println(f.Test("http://example.com/index.html"))
	fmt.Println(f.Test("http://example.com/other.html"))
	fmt.Printf("%.3f\n", bloom.FalsePositiveRate(f.Size(), 1000, f.K()))
	// Output:
	// true
	// false
	// 0.024
}

// A counting filter supports deletion and journals the bit flips that
// become directory-update messages.
func ExampleCountingFilter() {
	c := bloom.MustNewCountingFilter(1<<12, 4, hashing.DefaultSpec)
	setFlips := c.Add("http://example.com/doc", nil)
	fmt.Println("flips on insert:", len(setFlips))
	fmt.Println("present:", c.Test("http://example.com/doc"))
	clearFlips := c.Remove("http://example.com/doc", nil)
	fmt.Println("flips on remove:", len(clearFlips))
	fmt.Println("present:", c.Test("http://example.com/doc"))
	// Output:
	// flips on insert: 4
	// present: true
	// flips on remove: 4
	// present: false
}

// Replaying a flip journal into a remote replica reproduces the local
// directory — the invariant the wire protocol rests on.
func ExampleFilter_Apply() {
	local := bloom.MustNewCountingFilter(1<<10, 4, hashing.DefaultSpec)
	remote := bloom.MustNewFilter(1<<10, hashing.DefaultSpec)

	var journal []bloom.Flip
	journal = local.Add("http://a/", journal)
	journal = local.Add("http://b/", journal)
	journal = local.Remove("http://a/", journal)

	if err := remote.Apply(journal); err != nil {
		panic(err)
	}
	fmt.Println(remote.Test("http://a/"), remote.Test("http://b/"))
	// Output:
	// false true
}

// OptimalK and the load-factor tradeoff of Figure 4.
func ExampleOptimalK() {
	const n = 1 << 20
	for _, lf := range []uint64{8, 10, 16} {
		m := lf * n
		fmt.Printf("lf=%d: k*=%d p*=%.4f p(k=4)=%.4f\n",
			lf, bloom.OptimalK(m, n), bloom.MinFalsePositiveRate(m, n),
			bloom.FalsePositiveRate(m, n, 4))
	}
	// Output:
	// lf=8: k*=6 p*=0.0216 p(k=4)=0.0240
	// lf=10: k*=7 p*=0.0082 p(k=4)=0.0118
	// lf=16: k*=11 p*=0.0005 p(k=4)=0.0024
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomicMixingRule enforces the lock-free invariant behind the PR-3 Bloom
// probe and sharded-LRU paths: once a memory location is touched through
// sync/atomic, every access must go through the atomic API. Two shapes are
// checked per package:
//
//  1. function-style — a struct field passed as &x.f to an atomic
//     function (atomic.AddUint64, atomic.LoadInt32, ...) anywhere in the
//     package must not be read or written plainly anywhere else;
//  2. typed — a value of a typed atomic (atomic.Uint64, atomic.Bool,
//     atomic.Pointer[T], ...) may only be used as a method receiver or
//     have its address taken; copying, overwriting or comparing it
//     plainly bypasses the atomic protocol (and silently copies the
//     value out from under concurrent writers).
type atomicMixingRule struct{}

func (atomicMixingRule) Name() string { return RuleAtomicMixing }

func (atomicMixingRule) Doc() string {
	return "a field accessed via sync/atomic anywhere must never be read or written plainly elsewhere"
}

// isAtomicFunc reports whether obj is one of sync/atomic's access
// functions (not a typed-atomic method).
func isAtomicFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// isAtomicNamed reports whether t is a typed atomic from sync/atomic
// (atomic.Uint64, atomic.Bool, atomic.Value, instantiated
// atomic.Pointer[T], ...).
func isAtomicNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// atomicElem returns whether seq's element type (slice, array or map
// value) is a typed atomic.
func atomicElem(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isAtomicNamed(u.Elem())
	case *types.Array:
		return isAtomicNamed(u.Elem())
	case *types.Map:
		return isAtomicNamed(u.Elem())
	}
	return false
}

// calleeOf resolves the object a call expression invokes, seeing through
// parenthesization. Returns nil for calls it cannot resolve (builtins,
// function-typed variables, conversions).
func calleeOf(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fun.Sel]
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	}
	return nil
}

// atomicArgField returns the field object when expr has the shape
// &x.f (the first argument of every sync/atomic access function).
func atomicArgField(pkg *Package, expr ast.Expr) *types.Var {
	un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

func (r atomicMixingRule) Check(pkg *Package, report ReportFunc) {
	// Pass 1: which plain fields does this package access atomically,
	// and where (the first site anchors the diagnostic).
	atomicFields := map[*types.Var]token.Position{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !isAtomicFunc(calleeOf(pkg, call)) {
				return true
			}
			if v := atomicArgField(pkg, call.Args[0]); v != nil {
				if _, seen := atomicFields[v]; !seen {
					atomicFields[v] = pkg.Fset.Position(call.Pos())
				}
			}
			return true
		})
	}

	for _, f := range pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				r.checkPlainField(pkg, n, stack, atomicFields, report)
				r.checkTypedUse(pkg, n, stack, report)
			case *ast.IndexExpr:
				r.checkTypedUse(pkg, n, stack, report)
			case *ast.RangeStmt:
				if n.Value != nil && atomicElem(pkg.Info.TypeOf(n.X)) {
					report(n.Value.Pos(),
						"ranging with a value variable copies each %s element out of its slot; range by index and use the atomic API",
						pkg.Info.TypeOf(n.X))
				}
			}
		})
	}
}

// checkPlainField flags non-atomic uses of fields the package accesses
// through sync/atomic functions elsewhere.
func (atomicMixingRule) checkPlainField(pkg *Package, sel *ast.SelectorExpr, stack []ast.Node,
	atomicFields map[*types.Var]token.Position, report ReportFunc) {
	v, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	first, tracked := atomicFields[v]
	if !tracked {
		return
	}
	// The only sanctioned context is &x.f as the location argument of a
	// sync/atomic call.
	if un, ok := parent(stack).(*ast.UnaryExpr); ok && un.Op == token.AND {
		if call, ok := grandparent(stack).(*ast.CallExpr); ok && isAtomicFunc(calleeOf(pkg, call)) {
			return
		}
	}
	report(sel.Pos(),
		"field %s is accessed with sync/atomic at %s:%d; this plain access races with it",
		v.Name(), filepathBase(first.Filename), first.Line)
}

// checkTypedUse flags typed-atomic values used outside the atomic API.
func (atomicMixingRule) checkTypedUse(pkg *Package, n ast.Expr, stack []ast.Node, report ReportFunc) {
	tv, ok := pkg.Info.Types[n]
	if !ok || !tv.IsValue() || !isAtomicNamed(tv.Type) {
		return
	}
	t := tv.Type
	switch p := parent(stack).(type) {
	case *ast.SelectorExpr:
		// x.f.Load() — n is the receiver of a method selection. Typed
		// atomics export only methods, so any selection on n is fine.
		if p.X == n {
			return
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return // &x.f — passing the location, not the value
		}
	}
	report(n.Pos(),
		"%s value used outside its atomic API (copied, overwritten or compared plainly); use Load/Store/Add/CompareAndSwap", t)
}

// filepathBase trims a position filename to its final element for
// compact in-message anchors.
func filepathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

package meshhealth

// Report is one node's complete mesh-health view: its own advertisement
// state plus one row per peer. The httpproxy layer assembles it from the
// core peer table, the circuit breakers, and the decision accounting;
// /debug/mesh renders it as JSON or HTML.
type Report struct {
	// Proxy is the HTTP listen address; Node the ICP address (empty when
	// the proxy runs without a summary node, e.g. ModeNone/ModeICP).
	Proxy string `json:"proxy"`
	Node  string `json:"node,omitempty"`
	Mode  string `json:"mode"`

	Local LocalReport  `json:"local"`
	Peers []PeerReport `json:"peers"`

	// RecentFalse is the evidence trail: the latest false decisions with
	// trace-ID links into /debug/traces.
	RecentFalse []FalseDecision `json:"recent_false_decisions,omitempty"`
}

// LocalReport is the local-advertisement staleness view: how far the
// local directory has drifted ahead of what the peers have been told.
type LocalReport struct {
	// DirectoryDocs is the local directory's document count.
	DirectoryDocs int64 `json:"directory_docs"`
	// PendingFlips counts bit flips journaled but not yet advertised.
	PendingFlips int `json:"pending_flips"`
	// LastAdvertAgeMS is milliseconds since the last published update
	// (-1: never published).
	LastAdvertAgeMS float64 `json:"last_advert_age_ms"`
	// UpdatesSent / UpdateEvents count DIRUPDATE messages and publish
	// events; FullBytesOut and DeltaBytesOut split the advertised bytes
	// by update kind.
	UpdatesSent   uint64 `json:"updates_sent"`
	UpdateEvents  uint64 `json:"update_events"`
	FullBytesOut  uint64 `json:"full_bytes_out"`
	DeltaBytesOut uint64 `json:"delta_bytes_out"`
	// CacheEntries / CacheBytes describe the document cache backing the
	// directory.
	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	// Recoveries counts warm restarts this node recovered persisted state
	// on; RecoveredEntries is the document count the most recent recovery
	// reinstalled (both zero when persistence is off).
	Recoveries       uint64 `json:"recoveries"`
	RecoveredEntries int    `json:"recovered_entries"`
}

// PeerReport is one peer row of the mesh table: replica health, breaker
// state, wire accounting, and attributed decisions.
type PeerReport struct {
	Peer string `json:"peer"`
	// Up is the health tracker's view; Breaker the circuit-breaker state
	// ("closed", "open", "half-open"; empty when the proxy keeps no
	// breaker for this peer).
	Up      bool   `json:"up"`
	Breaker string `json:"breaker,omitempty"`

	// Replica health (zeroed when no replica is initialized yet).
	HasReplica       bool    `json:"has_replica"`
	Generation       uint64  `json:"generation"`
	UpdateAgeMS      float64 `json:"update_age_ms"`
	FillRatio        float64 `json:"fill_ratio"`
	EstFalsePositive float64 `json:"est_false_positive"`
	FilterBits       uint64  `json:"filter_bits"`

	// Wire accounting: updates and bytes received from the peer, and
	// updates and bytes sent to it.
	FullUpdates  uint64 `json:"full_updates"`
	DeltaUpdates uint64 `json:"delta_updates"`
	BytesIn      uint64 `json:"bytes_in"`
	UpdatesSent  uint64 `json:"updates_sent"`
	BytesOut     uint64 `json:"bytes_out"`

	// Decisions are the attributed lookup outcomes; Divergence is
	// FalseHits/Nominations.
	Decisions  PeerStats `json:"decisions"`
	Divergence float64   `json:"divergence"`
}

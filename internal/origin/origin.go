// Package origin implements the synthetic Web-server farm of the paper's
// benchmark experiments: an HTTP server that delays each reply by a
// configurable latency ("the process waits for one second before sending
// the reply to simulate the network latency") and answers with a body of
// the size encoded in the request URL ("each request's URL carries the
// size of the request in the trace file, and the server replies with the
// specified number of bytes").
package origin

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// SizeParam is the query parameter carrying the desired body size in bytes.
const SizeParam = "size"

// VersionParam is the query parameter carrying the document generation; it
// is echoed in the VersionHeader so caches can detect staleness.
const VersionParam = "v"

// VersionHeader echoes the document generation.
const VersionHeader = "X-Doc-Version"

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// Latency delays every response (the paper uses 1 s; benchmarks here
	// scale it down and report ratios).
	Latency time.Duration
	// DefaultSize is the body size when the URL carries none (default 8 KB,
	// the paper's average document size).
	DefaultSize int64
	// MaxSize caps response bodies as a safety valve (default 16 MB).
	MaxSize int64
}

// Stats counts server activity.
type Stats struct {
	Requests  uint64
	BodyBytes uint64
}

// Server is a running synthetic origin.
type Server struct {
	cfg      Config
	ln       net.Listener
	srv      *http.Server
	requests atomic.Uint64
	bytes    atomic.Uint64
}

// Start launches the server.
func Start(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.DefaultSize <= 0 {
		cfg.DefaultSize = 8 * 1024
	}
	if cfg.MaxSize <= 0 {
		cfg.MaxSize = 16 << 20
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("origin: listen %q: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln}
	s.srv = &http.Server{Handler: s}
	go s.srv.Serve(ln)
	return s, nil
}

// URL returns the server's base URL (http://host:port).
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() }

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{Requests: s.requests.Load(), BodyBytes: s.bytes.Load()}
}

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	sizeStr, verStr := scanParams(r.URL.RawQuery)
	size := s.cfg.DefaultSize
	if sizeStr != "" {
		n, err := strconv.ParseInt(sizeStr, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad size", http.StatusBadRequest)
			return
		}
		size = n
	}
	if size > s.cfg.MaxSize {
		size = s.cfg.MaxSize
	}
	if s.cfg.Latency > 0 {
		select {
		case <-time.After(s.cfg.Latency):
		case <-r.Context().Done():
			return
		}
	}
	if verStr != "" {
		w.Header().Set(VersionHeader, verStr)
	}
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	if r.Method == http.MethodHead {
		return
	}
	written, _ := writeBody(w, size)
	s.bytes.Add(uint64(written))
}

// scanParams extracts the size and v query parameters in one pass over the
// raw query, replacing two full url.Values parses (and their per-request
// map allocations) on the benchmark's hottest server path. DocURL emits
// neither percent-escapes nor '+' in these values, and escaped forms of
// the bare names do not occur, so raw comparison is exact here.
func scanParams(rawQuery string) (size, version string) {
	for len(rawQuery) > 0 {
		pair := rawQuery
		if i := strings.IndexByte(pair, '&'); i >= 0 {
			pair, rawQuery = pair[:i], pair[i+1:]
		} else {
			rawQuery = ""
		}
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			continue
		}
		switch pair[:eq] {
		case SizeParam:
			size = pair[eq+1:]
		case VersionParam:
			version = pair[eq+1:]
		}
	}
	return size, version
}

// bodyChunk is the pre-filled block writeBody streams from; filling it once
// at startup instead of per call keeps the per-request work at the writes
// themselves.
var bodyChunk = func() [32 * 1024]byte {
	var chunk [32 * 1024]byte
	for i := range chunk {
		chunk[i] = byte('a' + i%26)
	}
	return chunk
}()

// writeBody streams size deterministic bytes without allocating the whole
// body.
func writeBody(w http.ResponseWriter, size int64) (int64, error) {
	const chunkSize = int64(len(bodyChunk))
	chunk := &bodyChunk
	var written int64
	for written < size {
		n := size - written
		if n > chunkSize {
			n = chunkSize
		}
		m, err := w.Write(chunk[:n])
		written += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// DocURL builds a document URL on base for the given path, size and
// version — the form the trace-replay benchmark requests.
func DocURL(base, path string, size, version int64) string {
	return fmt.Sprintf("%s/%s?%s=%d&%s=%d", base, path, SizeParam, size, VersionParam, version)
}

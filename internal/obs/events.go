package obs

import (
	"io"
	"log/slog"
)

// Structured event logging: the mesh's state transitions (peer up/down,
// summary publications, filter rebuilds) are emitted as slog events so
// operators can correlate them with the metric timelines. Components take
// a *slog.Logger in their config; these helpers supply the defaults.

// NopLogger returns a logger that discards everything — the default for
// library components whose caller did not ask for event logging, keeping
// tests and benchmarks quiet without nil checks at every call site.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// OrNop returns l, or a discarding logger when l is nil.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}

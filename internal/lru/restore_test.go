package lru

import (
	"fmt"
	"testing"
)

// TestRestoreRoundTrip: Entries() → Restore() on a fresh cache
// reproduces membership, bytes, and the global recency order, without
// firing callbacks.
func TestRestoreRoundTrip(t *testing.T) {
	src := MustNewCache(Config{Capacity: 1 << 20, Shards: 4})
	for i := 0; i < 50; i++ {
		src.Put(Entry{Key: fmt.Sprintf("k%02d", i), Size: 100, Version: int64(i), Body: []byte{byte(i)}})
	}
	src.Get("k03") // promote so the order is not just insertion order
	src.Get("k07")
	snap := src.Entries()

	fired := 0
	dst := MustNewCache(Config{
		Capacity: 1 << 20, Shards: 4,
		OnInsert: func(Entry) { fired++ },
		OnEvict:  func(Entry, Event) { fired++ },
	})
	stored, dropped := dst.Restore(snap)
	if stored != len(snap) || len(dropped) != 0 {
		t.Fatalf("stored %d dropped %d, want %d/0", stored, len(dropped), len(snap))
	}
	if fired != 0 {
		t.Fatalf("Restore fired %d callbacks", fired)
	}
	if dst.Bytes() != src.Bytes() || dst.Len() != src.Len() {
		t.Fatalf("bytes/len %d/%d want %d/%d", dst.Bytes(), dst.Len(), src.Bytes(), src.Len())
	}
	gotKeys, wantKeys := dst.Keys(), src.Keys()
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("recency order diverges at %d: got %q want %q", i, gotKeys[i], wantKeys[i])
		}
	}
	e, ok := dst.Peek("k07")
	if !ok || e.Version != 7 || len(e.Body) != 1 || e.Body[0] != 7 {
		t.Fatalf("restored entry lost payload: %+v %v", e, ok)
	}
}

// TestRestoreShrunkCapacity: when the snapshot no longer fits, the most
// recently used entries survive and the dropped tail is reported.
func TestRestoreShrunkCapacity(t *testing.T) {
	src := MustNewCache(Config{Capacity: 1000, Shards: 1})
	for i := 0; i < 10; i++ {
		src.Put(Entry{Key: fmt.Sprintf("k%d", i), Size: 100})
	}
	dst := MustNewCache(Config{Capacity: 500, Shards: 1})
	stored, dropped := dst.Restore(src.Entries())
	if stored != 5 || len(dropped) != 5 {
		t.Fatalf("stored %d dropped %d, want 5/5", stored, len(dropped))
	}
	// MRU half (k9..k5) kept, LRU half (k4..k0) dropped.
	for i := 5; i < 10; i++ {
		if !dst.Contains(fmt.Sprintf("k%d", i)) {
			t.Fatalf("MRU entry k%d was dropped", i)
		}
	}
	for _, k := range dropped {
		if dst.Contains(k) {
			t.Fatalf("dropped key %q still present", k)
		}
	}
	if dst.Bytes() != 500 {
		t.Fatalf("bytes %d, want 500", dst.Bytes())
	}
}

// TestRestoreSkipsPresent: a key already cached is left untouched and
// counted as stored, not dropped — the caller must not dir.Remove it.
func TestRestoreSkipsPresent(t *testing.T) {
	dst := MustNewCache(Config{Capacity: 1000, Shards: 1})
	dst.Put(Entry{Key: "a", Size: 10, Version: 99})
	stored, dropped := dst.Restore([]Entry{{Key: "a", Size: 10, Version: 1}, {Key: "b", Size: 10, Version: 2}})
	if stored != 2 || len(dropped) != 0 {
		t.Fatalf("stored %d dropped %d, want 2/0", stored, len(dropped))
	}
	e, _ := dst.Peek("a")
	if e.Version != 99 {
		t.Fatalf("Restore overwrote a live entry: version %d", e.Version)
	}
}

package core

import (
	"net"
	"sync"
	"testing"
	"time"
)

// newHealthNode builds a node with fast health probing for tests.
func newHealthNode(t *testing.T, docs map[string]bool, mu *sync.Mutex) *Node {
	t.Helper()
	n, err := NewNode(NodeConfig{
		ListenAddr: "127.0.0.1:0",
		Directory:  DirectoryConfig{ExpectedDocs: 200},
		HasDocument: func(u string) bool {
			mu.Lock()
			defer mu.Unlock()
			return docs[u]
		},
		MinFlipsToPublish: 1,
		QueryTimeout:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHealthDetectsFailureAndRecovery(t *testing.T) {
	var muA, muB sync.Mutex
	docsA, docsB := map[string]bool{}, map[string]bool{}
	a := newHealthNode(t, docsA, &muA)
	b := newHealthNode(t, docsB, &muB)
	if err := a.AddPeer(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(a.Addr()); err != nil {
		t.Fatal(err)
	}

	// b caches a doc; a learns about it.
	const url = "http://health/doc"
	muB.Lock()
	docsB[url] = true
	muB.Unlock()
	b.HandleInsert(url)
	b.PublishNow()
	waitFor(t, "replication", func() bool {
		return len(a.PeerSummaries().Candidates(url)) == 1
	})

	var mu sync.Mutex
	events := []bool{}
	stop := a.StartHealthChecks(HealthConfig{
		Interval:         50 * time.Millisecond,
		Timeout:          40 * time.Millisecond,
		FailureThreshold: 2,
		OnChange: func(_ *net.UDPAddr, up bool) {
			mu.Lock()
			events = append(events, up)
			mu.Unlock()
		},
	})
	defer stop()

	// Kill b: a must mark it down and drop its summary.
	bAddr := b.Addr()
	b.Close()
	waitFor(t, "failure detection", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) >= 1 && !events[0]
	})
	waitFor(t, "summary drop", func() bool {
		return len(a.PeerSummaries().Candidates(url)) == 0
	})

	// Restart a node on the same UDP address ("recovery").
	b2, err := NewNode(NodeConfig{
		ListenAddr: bAddr.String(),
		Directory:  DirectoryConfig{ExpectedDocs: 200},
		HasDocument: func(string) bool {
			return false
		},
		MinFlipsToPublish: 1,
	})
	if err != nil {
		t.Skipf("could not rebind %v: %v", bAddr, err)
	}
	defer b2.Close()

	waitFor(t, "recovery detection", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) >= 2 && events[len(events)-1]
	})
	// On recovery, a re-ships its full state to b2: b2's replica of a gets
	// initialized even though b2 never called AddPeer.
	muA.Lock()
	docsA["http://a-doc/"] = true
	muA.Unlock()
	a.HandleInsert("http://a-doc/")
	a.PublishNow()
	waitFor(t, "reinitialization", func() bool {
		return len(b2.PeerSummaries().Candidates("http://a-doc/")) == 1
	})
}

func TestHealthStopIdempotent(t *testing.T) {
	var mu sync.Mutex
	n := newHealthNode(t, map[string]bool{}, &mu)
	stop := n.StartHealthChecks(HealthConfig{Interval: 20 * time.Millisecond})
	stop()
	stop() // must not panic or deadlock
}

func TestHealthConfigDefaults(t *testing.T) {
	cfg := HealthConfig{}
	cfg.applyDefaults()
	if cfg.Interval <= 0 || cfg.Timeout <= 0 || cfg.FailureThreshold <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Timeout >= cfg.Interval {
		t.Fatalf("timeout %v should be below interval %v", cfg.Timeout, cfg.Interval)
	}
}

package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
	"summarycache/internal/icp"
)

// PeerTable holds this proxy's replicas of every neighbor's summary — "an
// additional bit array is added to the data structure for each neighbor.
// The structure is initialized when the first summary update message is
// received from the neighbor." Keys are opaque peer identifiers (the node
// layer uses UDP address strings). PeerTable is safe for concurrent use.
type PeerTable struct {
	mu        sync.RWMutex
	peers     map[string]*peerSummary
	onRebuild func(peer, reason string)
}

type peerSummary struct {
	filter *bloom.Filter
	spec   hashing.Spec
	// updates counts applied DIRUPDATE messages; it doubles as the
	// replica's generation in decision audits (a stale prediction names
	// the generation it was made against).
	updates uint64
	// changed is when the last update was applied — the replica's age.
	changed time.Time
	// Mesh-health accounting, per the paper's overhead quantities
	// (Figs. 6–8): what each peer's summary stream costs on the wire and
	// how it arrives. These survive geometry changes and full resets —
	// they describe the peer relationship, not one replica incarnation.
	fullUpdates  uint64
	deltaUpdates uint64
	bytesIn      uint64
	flipsApplied uint64
	rebuilds     uint64
}

// NewPeerTable creates an empty table.
func NewPeerTable() *PeerTable {
	return &PeerTable{peers: make(map[string]*peerSummary)}
}

// SetRebuildObserver installs a callback fired (outside the table lock)
// whenever a peer's replica filter is built from scratch: first contact,
// a geometry change announced in an update, or a full-state reset. The
// node layer uses it for the filter-rebuild counter and event log.
func (pt *PeerTable) SetRebuildObserver(fn func(peer, reason string)) {
	pt.mu.Lock()
	pt.onRebuild = fn
	pt.mu.Unlock()
}

// Len returns the number of peers with initialized summaries.
func (pt *PeerTable) Len() int {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	return len(pt.peers)
}

// Peers returns the known peer identifiers, sorted.
func (pt *PeerTable) Peers() []string {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	out := make([]string, 0, len(pt.peers))
	for id := range pt.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ApplyUpdate folds a decoded directory update from peer into its replica,
// creating or re-creating the replica when the update announces a new
// geometry (every update message carries the full hash specification "so
// that receivers can verify the information"). When full is true the
// replica is reset before applying — the full-state bootstrap a recovered
// neighbor sends.
func (pt *PeerTable) ApplyUpdate(peer string, u *icp.DirUpdate, full bool) error {
	if u == nil {
		return icp.ErrNotDirUpdate
	}
	if err := u.Spec.Validate(); err != nil {
		return fmt.Errorf("core: update from %s: %w", peer, err)
	}
	if u.Bits == 0 {
		return fmt.Errorf("core: update from %s announces empty bit array", peer)
	}
	pt.mu.Lock()
	rebuilt := ""
	ps := pt.peers[peer]
	if ps == nil || ps.spec != u.Spec || ps.filter.Size() != uint64(u.Bits) {
		f, err := bloom.NewFilter(uint64(u.Bits), u.Spec)
		if err != nil {
			pt.mu.Unlock()
			return fmt.Errorf("core: update from %s: %w", peer, err)
		}
		next := &peerSummary{filter: f, spec: u.Spec}
		if ps == nil {
			rebuilt = "first-contact"
		} else {
			rebuilt = "geometry-change"
			// Keep the relationship-level health accounting across the
			// replica rebuild; only the bit array starts over.
			next.fullUpdates = ps.fullUpdates
			next.deltaUpdates = ps.deltaUpdates
			next.bytesIn = ps.bytesIn
			next.flipsApplied = ps.flipsApplied
			next.rebuilds = ps.rebuilds
		}
		ps = next
		pt.peers[peer] = ps
	} else if full {
		ps.filter.Reset()
		rebuilt = "full-reset"
	}
	if err := ps.filter.Apply(u.Flips); err != nil {
		pt.mu.Unlock()
		return fmt.Errorf("core: update from %s: %w", peer, err)
	}
	ps.updates++
	ps.changed = time.Now()
	if full {
		ps.fullUpdates++
	} else {
		ps.deltaUpdates++
	}
	ps.bytesIn += uint64(u.WireBytes())
	ps.flipsApplied += uint64(len(u.Flips))
	if rebuilt != "" {
		ps.rebuilds++
	}
	fn := pt.onRebuild
	pt.mu.Unlock()
	if rebuilt != "" && fn != nil {
		fn(peer, rebuilt)
	}
	return nil
}

// Candidates returns the peers whose summaries indicate url may be cached
// there — the set the node will actually query. Peers without an
// initialized summary are never candidates (no false misses result beyond
// those the delayed summary already causes: an uninitialized peer is
// treated as unknown, matching the prototype).
func (pt *PeerTable) Candidates(url string) []string {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	var out []string
	for id, ps := range pt.peers {
		if ps.filter.Test(url) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// SummaryProbe is the audited result of consulting one peer summary for
// one URL: the full evidence behind the nominate/skip decision, recorded
// in a trace's summary-probe span.
type SummaryProbe struct {
	// Peer is the replica's identifier (the node layer's UDP address).
	Peer string
	// Match is the summary's verdict: all probed bits set.
	Match bool
	// BitIndexes are the k bit positions probed, under the replica's
	// geometry.
	BitIndexes []uint64
	// Generation is the number of updates applied to the replica when it
	// was probed.
	Generation uint64
	// Age is how long ago the replica last changed.
	Age time.Duration
	// FilterBits is the replica's bit-array size.
	FilterBits uint64
}

// ProbeAll consults every initialized peer summary for url and returns
// the full audit: one SummaryProbe per peer, sorted, matching and
// non-matching alike. It is the traced sibling of Candidates — it
// allocates the evidence Candidates deliberately avoids, so the node only
// calls it for requests that carry a trace.
func (pt *PeerTable) ProbeAll(url string) []SummaryProbe {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	out := make([]SummaryProbe, 0, len(pt.peers))
	for id, ps := range pt.peers {
		idx := ps.filter.Indexes(url)
		out = append(out, SummaryProbe{
			Peer:       id,
			Match:      ps.filter.TestIndexes(idx),
			BitIndexes: idx,
			Generation: ps.updates,
			Age:        time.Since(ps.changed),
			FilterBits: ps.filter.Size(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// PeerHealth is the mesh-health snapshot of one peer's summary replica:
// how full (and therefore how trustworthy) the filter is, how stale it may
// be, and what the peer's update stream has cost on the wire. Fields map
// onto the paper's evaluation quantities — EstFalsePositive is the
// fill-ratio^k bound behind the false-hit rows of Tables 4–5, and the
// byte counts are the Fig. 7–8 overhead, measured per peer.
type PeerHealth struct {
	// Peer is the replica's identifier (the node layer's UDP address).
	Peer string `json:"peer"`
	// Generation is the number of updates applied to the current replica
	// incarnation (reset when the geometry changes).
	Generation uint64 `json:"generation"`
	// UpdateAge is how long ago the last DIRUPDATE was applied.
	UpdateAge time.Duration `json:"update_age"`
	// FillRatio is the fraction of set bits in the replica.
	FillRatio float64 `json:"fill_ratio"`
	// EstFalsePositive is FillRatio^k — the replica's estimated
	// false-positive probability, hence this peer's expected false-hit
	// contribution per negative document.
	EstFalsePositive float64 `json:"est_false_positive"`
	// FilterBits is the replica's bit-array size; K its hash count.
	FilterBits uint64 `json:"filter_bits"`
	K          int    `json:"k"`
	// FullUpdates / DeltaUpdates split applied updates by kind; BytesIn is
	// their total wire cost; FlipsApplied the total bit-flip records.
	FullUpdates  uint64 `json:"full_updates"`
	DeltaUpdates uint64 `json:"delta_updates"`
	BytesIn      uint64 `json:"bytes_in"`
	FlipsApplied uint64 `json:"flips_applied"`
	// Rebuilds counts replica re-creations (first contact, geometry
	// change, full reset).
	Rebuilds uint64 `json:"rebuilds"`
}

func (ps *peerSummary) health(id string) PeerHealth {
	fill := ps.filter.FillRatio()
	k := ps.filter.K()
	est := 1.0
	for i := 0; i < k; i++ {
		est *= fill
	}
	return PeerHealth{
		Peer:             id,
		Generation:       ps.updates,
		UpdateAge:        time.Since(ps.changed),
		FillRatio:        fill,
		EstFalsePositive: est,
		FilterBits:       ps.filter.Size(),
		K:                k,
		FullUpdates:      ps.fullUpdates,
		DeltaUpdates:     ps.deltaUpdates,
		BytesIn:          ps.bytesIn,
		FlipsApplied:     ps.flipsApplied,
		Rebuilds:         ps.rebuilds,
	}
}

// Health returns the mesh-health snapshot for one peer (false when the
// peer has no initialized replica).
func (pt *PeerTable) Health(peer string) (PeerHealth, bool) {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	ps := pt.peers[peer]
	if ps == nil {
		return PeerHealth{}, false
	}
	return ps.health(peer), true
}

// HealthAll snapshots every initialized peer replica, sorted by peer id.
// FillRatio costs a popcount over the replica (O(bits/64)); callers are
// admin endpoints and scrapes, not the probe path.
func (pt *PeerTable) HealthAll() []PeerHealth {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	out := make([]PeerHealth, 0, len(pt.peers))
	for id, ps := range pt.peers {
		out = append(out, ps.health(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Drop removes a peer's replica (Squid's neighbor-failure handling).
func (pt *PeerTable) Drop(peer string) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	delete(pt.peers, peer)
}

// ReplicaSnapshot returns a copy of the peer's replica bit array (and
// whether a replica exists). Chaos tests compare it against the peer's
// own Directory.FilterSnapshot to prove the mesh reconverged after a
// lossy episode.
func (pt *PeerTable) ReplicaSnapshot(peer string) ([]byte, bool) {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	ps := pt.peers[peer]
	if ps == nil {
		return nil, false
	}
	return ps.filter.Snapshot(), true
}

// ReplicaState is one peer replica serialized for warm-restart
// persistence: enough to rebuild the peerSummary so a restarted proxy
// resumes nominating peers immediately instead of treating every
// neighbor as unknown until its next full update.
type ReplicaState struct {
	Peer       string       // peer identifier (UDP address string)
	Spec       hashing.Spec // replica hash family
	Bits       uint64       // replica bit-array size
	Generation uint64       // applied-update count (decision-audit generation)
	Filter     []byte       // bit array, bloom.Filter.Snapshot layout
}

// ExportReplicas serializes every initialized peer replica, sorted by
// peer id.
func (pt *PeerTable) ExportReplicas() []ReplicaState {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	out := make([]ReplicaState, 0, len(pt.peers))
	for id, ps := range pt.peers {
		out = append(out, ReplicaState{
			Peer:       id,
			Spec:       ps.spec,
			Bits:       ps.filter.Size(),
			Generation: ps.updates,
			Filter:     ps.filter.Snapshot(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// RestoreReplica installs a persisted replica for st.Peer, replacing any
// existing one. The restored replica may be stale — the peer kept
// publishing while this node was down — but a stale replica only costs
// the usual false hits/misses the protocol already tolerates, and the
// next full or delta update repairs it. The rebuild observer fires with
// reason "restored".
func (pt *PeerTable) RestoreReplica(st ReplicaState) error {
	if err := st.Spec.Validate(); err != nil {
		return fmt.Errorf("core: restore replica %s: %w", st.Peer, err)
	}
	f, err := bloom.NewFilter(st.Bits, st.Spec)
	if err != nil {
		return fmt.Errorf("core: restore replica %s: %w", st.Peer, err)
	}
	if err := f.LoadSnapshot(st.Filter); err != nil {
		return fmt.Errorf("core: restore replica %s: %w", st.Peer, err)
	}
	pt.mu.Lock()
	ps := &peerSummary{
		filter:  f,
		spec:    st.Spec,
		updates: st.Generation,
		changed: time.Now(),
	}
	if prev := pt.peers[st.Peer]; prev != nil {
		ps.fullUpdates = prev.fullUpdates
		ps.deltaUpdates = prev.deltaUpdates
		ps.bytesIn = prev.bytesIn
		ps.flipsApplied = prev.flipsApplied
		ps.rebuilds = prev.rebuilds
	}
	ps.rebuilds++
	pt.peers[st.Peer] = ps
	fn := pt.onRebuild
	pt.mu.Unlock()
	if fn != nil {
		fn(st.Peer, "restored")
	}
	return nil
}

// Updates returns how many update messages have been applied for peer.
func (pt *PeerTable) Updates(peer string) uint64 {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	if ps := pt.peers[peer]; ps != nil {
		return ps.updates
	}
	return 0
}

// MemoryBytes returns the total bytes of all peer summary replicas — the
// quantity the paper's §V-F extrapolates to ~200 MB for 100 proxies.
func (pt *PeerTable) MemoryBytes() uint64 {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	var total uint64
	for _, ps := range pt.peers {
		total += (ps.filter.Size() + 7) / 8
	}
	return total
}

package httpproxy

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/origin"
)

// --- breaker state machine ---

func TestBreakerStateMachine(t *testing.T) {
	const cooldown = 50 * time.Millisecond
	b := newBreaker(3, cooldown)

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker not closed/allowing")
	}
	// Failures below the threshold keep it closed; a success resets the run.
	b.Failure()
	b.Failure()
	if b.Success() {
		t.Fatal("success in closed state reported a recovery")
	}
	b.Failure()
	b.Failure()
	if tripped := b.Failure(); !tripped {
		t.Fatal("third consecutive failure did not trip")
	}
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("tripped breaker still allowing")
	}

	// Cooldown elapses: exactly one probe is admitted (half-open).
	time.Sleep(cooldown + 10*time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe admitted after cooldown")
	}
	if b.State() != BreakerHalfOpen || b.Allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// Failed probe: back to open, silently (peer already marked down).
	if tripped := b.Failure(); tripped {
		t.Fatal("failed half-open probe reported a fresh trip")
	}
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not reopen")
	}

	// Second probe succeeds: recovered.
	time.Sleep(cooldown + 10*time.Millisecond)
	if !b.Allow() {
		t.Fatal("no second probe admitted")
	}
	if recovered := b.Success(); !recovered {
		t.Fatal("successful probe did not report recovery")
	}
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("recovered breaker not closed")
	}

	// External control from the health prober.
	b.ForceOpen()
	if b.State() != BreakerOpen {
		t.Fatal("ForceOpen did not open")
	}
	b.Reset()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("Reset did not close")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for _, s := range []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen, BreakerState(7)} {
		if s.String() == "" {
			t.Errorf("empty string for state %d", int(s))
		}
	}
}

// --- origin fetch retry pipeline ---

// flakyOrigin serves 512-byte documents after failing the first failN
// requests with the given status.
type flakyOrigin struct {
	ln    net.Listener
	calls atomic.Int64
}

func startFlakyOrigin(t *testing.T, failN int64, failStatus int) *flakyOrigin {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &flakyOrigin{ln: ln}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.calls.Add(1) <= failN {
			w.WriteHeader(failStatus)
			return
		}
		io.WriteString(w, strings.Repeat("x", 512))
	})}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return f
}

func (f *flakyOrigin) url() string { return "http://" + f.ln.Addr().String() + "/doc" }

func TestFetchRetriesTransient5xx(t *testing.T) {
	f := startFlakyOrigin(t, 2, http.StatusServiceUnavailable)
	p, err := Start(Config{
		Mode: ModeNone, CacheBytes: 1 << 20,
		FetchRetries: 3, FetchBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	resp, err := http.Get(p.URL() + ProxyPath + "?url=" + url.QueryEscape(f.url()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 512 {
		t.Fatalf("status %d, %d bytes — retries did not mask the 503 burst", resp.StatusCode, len(body))
	}
	st := p.Stats()
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if st.OriginFetches != 1 {
		t.Fatalf("OriginFetches = %d, want 1 (retries are not separate logical fetches)", st.OriginFetches)
	}
	if got := f.calls.Load(); got != 3 {
		t.Fatalf("origin saw %d attempts, want 3", got)
	}
}

func TestFetch4xxIsPermanent(t *testing.T) {
	f := startFlakyOrigin(t, 1<<30, http.StatusNotFound) // always 404
	p, err := Start(Config{
		Mode: ModeNone, CacheBytes: 1 << 20,
		FetchRetries: 3, FetchBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	resp, err := http.Get(p.URL() + ProxyPath + "?url=" + url.QueryEscape(f.url()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if got := f.calls.Load(); got != 1 {
		t.Fatalf("origin saw %d attempts for a 404, want 1 (no retry)", got)
	}
	if st := p.Stats(); st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", st.Retries)
	}
}

// TestUnresponsiveOriginBounded is the regression test for the unbounded
// fetch: an origin that accepts the connection and never answers must cost
// at most (retries+1) × FetchTimeout, not a forever-wedged handler.
func TestUnresponsiveOriginBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { // accept and hold connections open, never responding
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	p, err := Start(Config{
		Mode: ModeNone, CacheBytes: 1 << 20,
		FetchTimeout: 150 * time.Millisecond,
		FetchRetries: 1, FetchBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	start := time.Now()
	resp, err := http.Get(p.URL() + ProxyPath + "?url=" +
		url.QueryEscape("http://"+ln.Addr().String()+"/hang"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("unresponsive origin took %v, want bounded by per-attempt timeouts", elapsed)
	}
}

// TestSlowHeaderClientDisconnected verifies ReadHeaderTimeout: a client
// that connects and never finishes its request headers is cut loose
// instead of pinning a connection.
func TestSlowHeaderClientDisconnected(t *testing.T) {
	p, err := Start(Config{
		Mode: ModeNone, CacheBytes: 1 << 20,
		ReadHeaderTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	conn, err := net.Dial("tcp", p.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a partial request line and stall.
	if _, err := conn.Write([]byte("GET /__summarycache/pro")); err != nil {
		t.Fatal(err)
	}
	// The server must cut the connection loose shortly after the timeout
	// (Go writes an error status first); what it must NOT do is hold the
	// connection open waiting for the rest of the headers.
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := io.ReadAll(conn)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server kept the slow-header connection open past ReadHeaderTimeout")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("connection closed after %v, want ≈ReadHeaderTimeout", elapsed)
	}
	if strings.Contains(string(reply), "200 OK") {
		t.Fatalf("server answered a half-written request line: %q", reply)
	}
}

// --- circuit breaker in the mesh ---

// TestBreakerSkipsAsFalseHits: under classic ICP, a sibling whose ICP
// endpoint answers HIT but whose HTTP endpoint is dark trips its breaker;
// subsequent nominations are skipped (counted) and served from the origin
// as false hits — clients never see an error.
func TestBreakerSkipsAsFalseHits(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	mk := func(threshold int) *Proxy {
		p, err := Start(Config{
			Mode: ModeICP, CacheBytes: 8 << 20,
			QueryTimeout:     time.Second,
			BreakerThreshold: threshold,
			BreakerCooldown:  time.Hour, // never half-open during this test
			FetchBackoff:     time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	a, b := mk(1), mk(1)
	// A records a dead HTTP endpoint for B: ICP answers flow, fetches fail.
	deadURL := "http://127.0.0.1:1"
	if err := a.AddPeer(b.ICPAddr(), deadURL); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(a.ICPAddr(), a.URL()); err != nil {
		t.Fatal(err)
	}

	fetchOK := func(p *Proxy, u string) {
		t.Helper()
		resp, err := http.Get(p.URL() + ProxyPath + "?url=" + url.QueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("client saw status %d: %s", resp.StatusCode, body)
		}
	}
	u1 := origin.DocURL(org.URL(), "d1", 1024, 0)
	u2 := origin.DocURL(org.URL(), "d2", 1024, 0)
	fetchOK(b, u1) // B caches both documents
	fetchOK(b, u2)

	// First request through A: B claims HIT, fetch fails, breaker (threshold
	// 1) trips; the request falls back to the origin and still succeeds.
	fetchOK(a, u1)
	if got := a.BreakerState(b.ICPAddr().String()); got != BreakerOpen {
		t.Fatalf("breaker state after failed fetch = %v, want open", got)
	}
	st := a.Stats()
	if st.FalseHits != 1 || st.PeerFetches != 1 {
		t.Fatalf("stats after trip = %+v, want 1 false hit / 1 peer fetch", st)
	}
	// The trip marked B down in the health tracker.
	if up, down := a.Health().Snapshot(); len(up) != 0 || len(down) != 1 {
		t.Fatalf("health after trip: up=%v down=%v", up, down)
	}

	// Second request: B still answers HIT, but the open breaker skips the
	// doomed fetch entirely — no new peer fetch, another clean false hit.
	fetchOK(a, u2)
	st = a.Stats()
	if st.BreakerSkips != 1 {
		t.Fatalf("BreakerSkips = %d, want 1", st.BreakerSkips)
	}
	if st.PeerFetches != 1 {
		t.Fatalf("PeerFetches = %d, want 1 (open breaker must suppress the fetch)", st.PeerFetches)
	}
	if st.FalseHits != 2 {
		t.Fatalf("FalseHits = %d, want 2", st.FalseHits)
	}
}

// TestBreakerTripRecoverySCICP walks the full failure/recovery loop under
// SC-ICP: a tripped breaker drops the sibling's summary replica (no more
// nominations, health down); after the sibling resyncs and the cooldown
// passes, the half-open probe fetch succeeds, the breaker closes, and
// MarkPeerUp restores health and replica convergence.
func TestBreakerTripRecoverySCICP(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	const cooldown = 100 * time.Millisecond
	mk := func() *Proxy {
		p, err := Start(Config{
			Mode: ModeSCICP, CacheBytes: 8 << 20,
			Summary:          core.DirectoryConfig{ExpectedDocs: 2000, UpdateThreshold: 0.01},
			QueryTimeout:     time.Second,
			BreakerThreshold: 1,
			BreakerCooldown:  cooldown,
			FetchBackoff:     time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	a, b := mk(), mk()
	bID := b.ICPAddr().String()
	// A starts with a dead HTTP endpoint for B.
	if err := a.AddPeer(b.ICPAddr(), "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(a.ICPAddr(), a.URL()); err != nil {
		t.Fatal(err)
	}

	fetchOK := func(p *Proxy, u string) {
		t.Helper()
		resp, err := http.Get(p.URL() + ProxyPath + "?url=" + url.QueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("client saw status %d", resp.StatusCode)
		}
	}
	u1 := origin.DocURL(org.URL(), "r1", 1024, 0)
	fetchOK(b, u1)
	b.FlushSummary()
	waitForCandidate(t, a, u1)

	// Nomination → ICP HIT → fetch against the dead endpoint → trip.
	fetchOK(a, u1)
	if got := a.BreakerState(bID); got != BreakerOpen {
		t.Fatalf("breaker = %v, want open", got)
	}
	// The trip dropped B's replica: no candidates, health down.
	if c := a.node.PeerSummaries().Candidates(u1); len(c) != 0 {
		t.Fatalf("candidates after trip = %v, want none", c)
	}
	if a.Health().UpCount() != 0 {
		t.Fatal("health still up after trip")
	}

	// B comes back: fix the HTTP endpoint and resync summaries (the
	// operational recovery path; organically B's next DIRUPDATE does this).
	// A fresh document cached only on B carries the probe — u1 landed in
	// A's cache during the origin fallback, so it would be a local hit.
	u2 := origin.DocURL(org.URL(), "r2", 1024, 0)
	fetchOK(b, u2)
	if err := a.AddPeer(b.ICPAddr(), b.URL()); err != nil {
		t.Fatal(err)
	}
	if err := b.Resync(); err != nil {
		t.Fatal(err)
	}
	waitForCandidate(t, a, u2)
	time.Sleep(cooldown + 20*time.Millisecond)

	// Half-open probe: nomination admitted, fetch succeeds, circuit closes.
	fetchOK(a, u2)
	if got := a.BreakerState(bID); got != BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", got)
	}
	if a.Health().UpCount() != 1 {
		t.Fatal("MarkPeerUp did not restore health")
	}
	st := a.Stats()
	if st.RemoteHits != 1 {
		t.Fatalf("stats after recovery = %+v, want the probe counted as a remote hit", st)
	}
}

// TestHealthProberDrivesBreaker: the UDP health prober's down verdict
// forces the breaker open, and its up verdict resets it — before any
// caller-supplied OnChange observes the transition.
func TestHealthProberDrivesBreaker(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	mk := func() *Proxy {
		p, err := Start(Config{
			Mode: ModeSCICP, CacheBytes: 8 << 20,
			Summary:      core.DirectoryConfig{ExpectedDocs: 500},
			QueryTimeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	t.Cleanup(func() { a.Close() })
	bID := b.ICPAddr().String()
	if err := a.AddPeer(b.ICPAddr(), b.URL()); err != nil {
		t.Fatal(err)
	}

	transitions := make(chan bool, 8)
	stop := a.StartHealthChecks(core.HealthConfig{
		Interval:         20 * time.Millisecond,
		Timeout:          50 * time.Millisecond,
		FailureThreshold: 2,
		OnChange:         func(_ *net.UDPAddr, up bool) { transitions <- up },
	})
	t.Cleanup(stop)

	// Kill B outright: probes go unanswered, the prober marks it down, and
	// the chained OnChange must have already forced the breaker open.
	b.Close()
	select {
	case up := <-transitions:
		if up {
			t.Fatal("first transition was up")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("prober never marked the dead peer down")
	}
	if got := a.BreakerState(bID); got != BreakerOpen {
		t.Fatalf("breaker after prober down = %v, want open", got)
	}
}

// TestBreakerDisabled: a negative threshold turns the breaker off — fetch
// failures never trip anything and fall back to the origin every time.
func TestBreakerDisabled(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	mk := func() *Proxy {
		p, err := Start(Config{
			Mode: ModeICP, CacheBytes: 8 << 20,
			QueryTimeout:     time.Second,
			BreakerThreshold: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	a, b := mk(), mk()
	if err := a.AddPeer(b.ICPAddr(), "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(a.ICPAddr(), a.URL()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		u := origin.DocURL(org.URL(), fmt.Sprintf("nd%d", i), 256, 0)
		resp, err := http.Get(b.URL() + ProxyPath + "?url=" + url.QueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resp, err = http.Get(a.URL() + ProxyPath + "?url=" + url.QueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	st := a.Stats()
	if st.PeerFetches != 3 || st.BreakerSkips != 0 {
		t.Fatalf("disabled breaker stats = %+v, want every fetch attempted", st)
	}
	if got := a.BreakerState(b.ICPAddr().String()); got != BreakerClosed {
		t.Fatalf("disabled breaker reports %v", got)
	}
}

package delta

// The persistence journal's record codec and the length+CRC frame format
// shared by the warm-restart snapshot and journal files (internal/
// persist). The journal is the on-disk analog of the counting filter's
// in-memory flip journal: each cache mutation appends one O(record)
// framed entry, so hot-path writes never serialize the whole filter.
//
// Frame layout (little-endian):
//
//	uint32 payload length
//	uint32 CRC-32C (Castagnoli) of the payload
//	payload bytes
//
// A reader walks frames until the buffer ends cleanly, ends mid-frame
// (ErrTornFrame — the tolerated crash tail), or hits a CRC/length
// violation (ErrCorruptFrame). Both error kinds end the valid prefix;
// replay uses everything before them.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// frameHeaderLen is the fixed per-frame overhead: length + CRC.
const frameHeaderLen = 8

// MaxFrameLen bounds a single frame's payload (64 MB body + record
// overhead headroom); anything larger is treated as corruption rather
// than trusted as an allocation size.
const MaxFrameLen = 80 << 20

// ErrTornFrame reports a buffer that ends mid-frame — the expected shape
// of the final frame after a crash, tolerated by replay.
var ErrTornFrame = errors.New("delta: torn frame at end of buffer")

// ErrCorruptFrame reports a frame whose length is implausible or whose
// payload fails its CRC.
var ErrCorruptFrame = errors.New("delta: corrupt frame")

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one length+CRC framed payload to dst.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// NextFrame parses the first frame of b, returning its payload and the
// remaining bytes. An empty b returns (nil, nil, nil): the clean end of
// the stream. The returned payload aliases b.
func NextFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) == 0 {
		return nil, nil, nil
	}
	if len(b) < frameHeaderLen {
		return nil, b, ErrTornFrame
	}
	n := binary.LittleEndian.Uint32(b)
	sum := binary.LittleEndian.Uint32(b[4:])
	if n > MaxFrameLen {
		return nil, b, fmt.Errorf("%w: frame length %d", ErrCorruptFrame, n)
	}
	if uint32(len(b)-frameHeaderLen) < n {
		return nil, b, ErrTornFrame
	}
	payload = b[frameHeaderLen : frameHeaderLen+int(n)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, b, fmt.Errorf("%w: CRC mismatch", ErrCorruptFrame)
	}
	return payload, b[frameHeaderLen+int(n):], nil
}

// Journal record opcodes.
const (
	// JournalInsert records a document entering the cache (or changing
	// version in place). Replay treats an insert whose key already exists
	// at the same version as confirmation; at a different version the
	// snapshot body is stale and the entry is dropped for refetch.
	JournalInsert byte = 1
	// JournalEvict records a document leaving the cache. Replay of an
	// eviction for an absent key is a counted no-op (the overlap window
	// between journal rotation and snapshot capture can double-record).
	JournalEvict byte = 2
)

// JournalRecord is one cache mutation in the persistence journal.
type JournalRecord struct {
	Op      byte
	Key     string
	Size    int64 // body size (JournalInsert only)
	Version int64 // document version (JournalInsert only)
}

// AppendJournalRecord appends r to dst as one framed record.
func AppendJournalRecord(dst []byte, r JournalRecord) []byte {
	payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+binary.MaxVarintLen32+len(r.Key))
	payload = append(payload, r.Op)
	payload = binary.AppendUvarint(payload, uint64(len(r.Key)))
	payload = append(payload, r.Key...)
	payload = binary.AppendVarint(payload, r.Size)
	payload = binary.AppendVarint(payload, r.Version)
	return AppendFrame(dst, payload)
}

// DecodeJournalRecord parses one record payload (the frame's contents,
// CRC already verified by NextFrame).
func DecodeJournalRecord(payload []byte) (JournalRecord, error) {
	var r JournalRecord
	if len(payload) < 1 {
		return r, fmt.Errorf("%w: empty journal record", ErrCorruptFrame)
	}
	r.Op = payload[0]
	if r.Op != JournalInsert && r.Op != JournalEvict {
		return r, fmt.Errorf("%w: unknown journal op %d", ErrCorruptFrame, r.Op)
	}
	rest := payload[1:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return r, fmt.Errorf("%w: journal key length", ErrCorruptFrame)
	}
	rest = rest[n:]
	r.Key = string(rest[:klen])
	rest = rest[klen:]
	var ok bool
	if r.Size, rest, ok = takeVarint(rest); !ok {
		return r, fmt.Errorf("%w: journal size", ErrCorruptFrame)
	}
	if r.Version, _, ok = takeVarint(rest); !ok {
		return r, fmt.Errorf("%w: journal version", ErrCorruptFrame)
	}
	return r, nil
}

// takeVarint reads one signed varint off the front of b.
func takeVarint(b []byte) (v int64, rest []byte, ok bool) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, b, false
	}
	return v, b[n:], true
}

module summarycache

go 1.22

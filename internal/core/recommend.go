package core

import (
	"fmt"
	"time"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
)

// Recommendation packages the paper's §V-E "Recommended Configurations"
// for a proxy of a given cache size: "The update threshold should be
// between 1% and 10% ... The summary should be in the form of a Bloom
// filter. A load factor between 8 and 16 works well ... Based on the load
// factor, four or more hash functions should be used. ... For hash
// functions, we recommend taking disjoint groups of bits from the 128-bit
// MD5 signature of the URL."
type Recommendation struct {
	Directory DirectoryConfig
	// ExpectedDocs is the entry estimate behind the sizing
	// (cache bytes / average document size).
	ExpectedDocs uint64
	// FilterBits is the resulting Bloom array size.
	FilterBits uint64
	// SummaryBytesPerPeer is the memory each neighbor dedicates to this
	// proxy's summary.
	SummaryBytesPerPeer uint64
	// CounterBytes is the local counting-filter memory.
	CounterBytes uint64
	// PredictedFalsePositiveRate is the per-filter analytic rate at full
	// occupancy.
	PredictedFalsePositiveRate float64
	// SuggestedInterval translates the threshold into a time-based update
	// period given a request rate and miss ratio (the paper: "roughly
	// every five minutes to an hour").
	SuggestedInterval time.Duration
}

// Recommend derives the paper's recommended configuration. avgDocBytes is
// the proxy's mean cacheable document size (0: the paper's 8 KB);
// requestsPerSecond and missRatio, when positive, also derive a time-based
// update interval equivalent to the 1% threshold.
func Recommend(cacheBytes int64, avgDocBytes int64, requestsPerSecond, missRatio float64) (Recommendation, error) {
	if cacheBytes <= 0 {
		return Recommendation{}, fmt.Errorf("core: cacheBytes must be positive, got %d", cacheBytes)
	}
	if avgDocBytes <= 0 {
		avgDocBytes = 8192 // the paper's average document size
	}
	docs := uint64(cacheBytes / avgDocBytes)
	if docs == 0 {
		docs = 1
	}
	const (
		loadFactor = 16   // paper: "between 8 and 16 works well"
		threshold  = 0.01 // paper: "between 1% and 10%"; pick the safe end
	)
	dir := DirectoryConfig{
		ExpectedDocs:    docs,
		LoadFactor:      loadFactor,
		HashSpec:        hashing.DefaultSpec, // 4 × 32-bit MD5 groups
		CounterBits:     4,                   // §V-C: "amply sufficient"
		UpdateThreshold: threshold,
	}
	bits := bloom.SizeForLoadFactor(docs, loadFactor)
	rec := Recommendation{
		Directory:                  dir,
		ExpectedDocs:               docs,
		FilterBits:                 bits,
		SummaryBytesPerPeer:        (bits + 7) / 8,
		CounterBytes:               (bits*uint64(dir.CounterBits) + 7) / 8,
		PredictedFalsePositiveRate: bloom.FalsePositiveRate(bits, docs, dir.HashSpec.FunctionNum),
	}
	if requestsPerSecond > 0 && missRatio > 0 && missRatio <= 1 {
		// New documents accumulate at ≈ requestRate × missRatio; the
		// threshold trips after threshold × docs of them.
		newDocsPerSecond := requestsPerSecond * missRatio
		rec.SuggestedInterval = time.Duration(threshold * float64(docs) / newDocsPerSecond * float64(time.Second))
	}
	return rec, nil
}

// String renders the recommendation as a human-readable configuration.
func (r Recommendation) String() string {
	s := fmt.Sprintf("summary-cache config: %d docs expected, %d-bit Bloom filter (lf %g, k=%d), "+
		"%.2f%% predicted false positives, %d B/peer summary, %d B counters, %.0f%% update threshold",
		r.ExpectedDocs, r.FilterBits, r.Directory.LoadFactor, r.Directory.HashSpec.FunctionNum,
		100*r.PredictedFalsePositiveRate, r.SummaryBytesPerPeer, r.CounterBytes,
		100*r.Directory.UpdateThreshold)
	if r.SuggestedInterval > 0 {
		s += fmt.Sprintf(", ≈%v between updates", r.SuggestedInterval.Round(time.Second))
	}
	return s
}

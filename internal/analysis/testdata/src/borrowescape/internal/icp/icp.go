// Package icp mirrors the module's ICP wire layer just enough for the
// borrow-escape fixtures: a value Message borrowing decoder-owned state
// (Update and its Flips), a Clone that deep-copies it, a Handler
// callback type and a Decoder whose Decode hands out the borrow.
package icp

import "net"

// Flip is a plain value; copying one carries no borrow.
type Flip struct{ Word, Mask uint64 }

// DirUpdate is decoder scratch: Flips aliases the decode buffer.
type DirUpdate struct {
	Bits  uint32
	Flips []Flip
}

// Message is passed to handlers by value; URL is owned, Update is
// borrowed until the handler returns.
type Message struct {
	URL    string
	Update *DirUpdate
}

// Clone deep-copies the borrowed parts.
func (m Message) Clone() Message {
	c := m
	if m.Update != nil {
		u := *m.Update
		u.Flips = append([]Flip(nil), m.Update.Flips...)
		c.Update = &u
	}
	return c
}

// Handler receives a borrowed Message, valid only for the call.
type Handler func(from *net.UDPAddr, m Message)

// Decoder decodes frames into reusable scratch.
type Decoder struct {
	scratch Message
	flips   []Flip
	update  DirUpdate
}

// Decode returns a Message borrowing d's scratch until the next Decode.
func (d *Decoder) Decode(b []byte) (Message, error) {
	d.flips = append(d.flips[:0], Flip{Word: uint64(len(b))})
	d.update = DirUpdate{Bits: 1, Flips: d.flips}
	d.scratch = Message{URL: string(b), Update: &d.update}
	return d.scratch, nil
}

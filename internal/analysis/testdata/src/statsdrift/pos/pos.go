// Package pos is the stats-drift positive fixture: it exports a Stats
// struct, registers two counters, and only one of them has a matching
// Stats field.
package pos

import "statsdrift/obs"

// Stats is the exported snapshot; FramesDropped is deliberately absent.
type Stats struct {
	QueriesSent uint64
}

type metrics struct {
	queries *obs.Counter
	dropped *obs.Counter
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		queries: reg.Counter("summarycache_pos_queries_sent_total", "queries sent", nil),
		dropped: reg.Counter("summarycache_pos_frames_dropped_total", "frames dropped", nil), // want stats-drift
	}
}

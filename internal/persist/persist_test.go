package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"summarycache/internal/core"
	"summarycache/internal/hashing"
	"summarycache/internal/lru"
	"summarycache/internal/testutil/leakcheck"
)

func entry(i int) lru.Entry {
	return lru.Entry{
		Key:     fmt.Sprintf("http://origin/doc%03d", i),
		Size:    64,
		Version: int64(1000 + i),
		Body:    []byte(fmt.Sprintf("body-%03d", i)),
	}
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustRecover(t *testing.T, s *Store) *Recovered {
	t.Helper()
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestCheckpointRecoverRoundTrip: snapshot + journal replay reproduces
// entries (bodies, versions, MRU order), the directory blob, and the
// replica set.
func TestCheckpointRecoverRoundTrip(t *testing.T) {
	leakcheck.Install(t)
	dir := t.TempDir()
	s := openStore(t, dir)
	if rec := mustRecover(t, s); rec.Stats.Recovered {
		t.Fatal("empty dir claimed recovery")
	}

	var entries []lru.Entry
	for i := 9; i >= 0; i-- { // MRU first
		entries = append(entries, entry(i))
	}
	replica := core.ReplicaState{
		Peer: "127.0.0.1:4001", Spec: hashing.DefaultSpec,
		Bits: 256, Generation: 42, Filter: make([]byte, 32),
	}
	replica.Filter[3] = 0xA5
	data := SnapshotData{Entries: entries, Directory: []byte("dirblob"), Replicas: []core.ReplicaState{replica}}
	if err := s.Checkpoint(data); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot activity: a fresh insert, an eviction, a version bump.
	if err := s.AppendInsert("http://origin/new", 10, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvict(entries[9].Key); err != nil { // evict the LRU one (doc0)
		t.Fatal(err)
	}
	if err := s.AppendInsert(entries[8].Key, 64, 9999); err != nil { // doc1 version bump
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	rec := mustRecover(t, s2)
	st := rec.Stats
	if !st.Recovered || st.TornTail {
		t.Fatalf("stats: %+v", st)
	}
	if st.SnapshotEntries != 10 || st.JournalRecords != 3 ||
		st.LostInserts != 1 || st.ReplayedEvicts != 1 || st.StaleVersions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if len(rec.Entries) != 8 {
		t.Fatalf("recovered %d entries, want 8", len(rec.Entries))
	}
	// doc9..doc2 in MRU order; doc0 evicted, doc1 dropped stale.
	for i, e := range rec.Entries {
		want := entry(9 - i)
		if e.Key != want.Key || e.Version != want.Version || string(e.Body) != string(want.Body) {
			t.Fatalf("entry %d: got %+v want %+v", i, e, want)
		}
	}
	if len(rec.Removed) != 2 {
		t.Fatalf("removed %v, want doc0+doc1", rec.Removed)
	}
	if string(rec.Directory) != "dirblob" {
		t.Fatalf("directory blob %q", rec.Directory)
	}
	if len(rec.Replicas) != 1 || rec.Replicas[0].Peer != replica.Peer ||
		rec.Replicas[0].Generation != 42 || rec.Replicas[0].Filter[3] != 0xA5 {
		t.Fatalf("replicas: %+v", rec.Replicas)
	}
}

// TestRecoverTornJournalTail: truncating the journal mid-record keeps
// every record before the tear and flags TornTail.
func TestRecoverTornJournalTail(t *testing.T) {
	leakcheck.Install(t)
	dir := t.TempDir()
	s := openStore(t, dir)
	mustRecover(t, s)
	if err := s.Checkpoint(SnapshotData{Entries: []lru.Entry{entry(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvict(entry(1).Key); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendInsert("http://late/doc", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record.
	jpath := filepath.Join(dir, genName(jrnlPrefix, 1))
	fi, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jpath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	rec := mustRecover(t, openStore(t, dir))
	if !rec.Stats.TornTail {
		t.Fatal("torn tail not detected")
	}
	if rec.Stats.ReplayedEvicts != 1 || len(rec.Entries) != 0 {
		t.Fatalf("valid prefix lost: %+v entries=%d", rec.Stats, len(rec.Entries))
	}
}

// TestRecoverCorruptSnapshotFallsBack: a snapshot with a flipped byte is
// rejected whole; recovery falls back one generation and replays BOTH
// journals (the old generation's and the newer one's).
func TestRecoverCorruptSnapshotFallsBack(t *testing.T) {
	leakcheck.Install(t)
	dir := t.TempDir()
	s := openStore(t, dir)
	mustRecover(t, s)
	if err := s.Checkpoint(SnapshotData{Entries: []lru.Entry{entry(1)}}); err != nil { // gen 1
		t.Fatal(err)
	}
	if err := s.AppendInsert("http://gen1/extra", 3, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(SnapshotData{Entries: []lru.Entry{entry(1), entry(2)}}); err != nil { // gen 2
		t.Fatal(err)
	}
	if err := s.AppendEvict(entry(1).Key); err != nil { // gen-2 journal
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt gen-2's snapshot body.
	spath := filepath.Join(dir, genName(snapPrefix, 2))
	img, err := os.ReadFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0xFF
	if err := os.WriteFile(spath, img, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := mustRecover(t, openStore(t, dir))
	if rec.Stats.SnapshotsSkipped != 1 || rec.Stats.SnapshotGen != 1 {
		t.Fatalf("stats: %+v", rec.Stats)
	}
	// Base gen-1 snapshot has doc1. Journal gen-1: lost insert (extra).
	// Journal gen-2: evict doc1. Final: empty, with doc1 removed.
	if len(rec.Entries) != 0 || len(rec.Removed) != 1 || rec.Removed[0] != entry(1).Key {
		t.Fatalf("entries=%v removed=%v", rec.Entries, rec.Removed)
	}
	if rec.Stats.LostInserts != 1 || rec.Stats.ReplayedEvicts != 1 {
		t.Fatalf("stats: %+v", rec.Stats)
	}
}

// TestRecoverOverlapWindowIdempotent: a record present in both the
// snapshot and the rotated journal (the overlap window) replays as a
// no-op — same entries, and a doubled eviction surfaces as DoubleEvicts,
// not a lost document.
func TestRecoverOverlapWindowIdempotent(t *testing.T) {
	leakcheck.Install(t)
	dir := t.TempDir()
	s := openStore(t, dir)
	mustRecover(t, s)
	e1, e2 := entry(1), entry(2)
	if err := s.Checkpoint(SnapshotData{Entries: []lru.Entry{e2, e1}}); err != nil {
		t.Fatal(err)
	}
	// Overlap: the same inserts recorded again in the new journal, plus a
	// doubled eviction of a key the snapshot never had.
	if err := s.AppendInsert(e1.Key, e1.Size, e1.Version); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendInsert(e2.Key, e2.Size, e2.Version); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvict("http://never/was"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvict("http://never/was"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rec := mustRecover(t, openStore(t, dir))
	if len(rec.Entries) != 2 || len(rec.Removed) != 0 {
		t.Fatalf("entries=%d removed=%v", len(rec.Entries), rec.Removed)
	}
	// The re-inserts refreshed recency: e2 was journaled last, so it is MRU.
	if rec.Entries[0].Key != e2.Key || rec.Entries[1].Key != e1.Key {
		t.Fatalf("order: %q, %q", rec.Entries[0].Key, rec.Entries[1].Key)
	}
	if rec.Stats.DoubleEvicts != 2 || rec.Stats.LostInserts != 0 {
		t.Fatalf("stats: %+v", rec.Stats)
	}
}

// TestCheckpointPrunes: after the third checkpoint only the last two
// generation pairs remain on disk.
func TestCheckpointPrunes(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	mustRecover(t, s)
	for i := 0; i < 3; i++ {
		if err := s.Checkpoint(SnapshotData{Entries: []lru.Entry{entry(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	snaps, jrnls, err := s.scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0] != 2 || snaps[1] != 3 {
		t.Fatalf("snapshots on disk: %v", snaps)
	}
	if len(jrnls) != 2 || jrnls[0] != 2 || jrnls[1] != 3 {
		t.Fatalf("journals on disk: %v", jrnls)
	}
	if got := s.Stats().Snapshots; got != 3 {
		t.Fatalf("snapshot count %d", got)
	}
}

// TestFsyncPolicies: always syncs per append; never leaves it to close.
func TestFsyncPolicies(t *testing.T) {
	always, err := Open(Config{Dir: t.TempDir(), Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer always.Close()
	if _, err := always.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := always.Checkpoint(SnapshotData{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := always.AppendInsert(fmt.Sprintf("k%d", i), 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := always.Stats().JournalFsyncs; got != 3 {
		t.Fatalf("always: %d fsyncs, want 3", got)
	}

	never := openStore(t, t.TempDir())
	mustRecover(t, never)
	if err := never.Checkpoint(SnapshotData{}); err != nil {
		t.Fatal(err)
	}
	if err := never.AppendInsert("k", 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := never.Stats().JournalFsyncs; got != 0 {
		t.Fatalf("never: %d fsyncs before close", got)
	}
}

// TestParseFsyncPolicy rejects unknown policies and defaults empty.
func TestParseFsyncPolicy(t *testing.T) {
	for _, ok := range []string{"always", "interval", "never", ""} {
		if _, err := ParseFsyncPolicy(ok); err != nil {
			t.Fatalf("%q: %v", ok, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

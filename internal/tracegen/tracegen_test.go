package tracegen

import (
	"testing"

	"summarycache/internal/trace"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Requests: 0, Clients: 1, Docs: 1},
		{Requests: 1, Clients: 0, Docs: 1},
		{Requests: 1, Clients: 1, Docs: 0},
		{Requests: 1, Clients: 1, Docs: 1, SharedFraction: 1.5},
		{Requests: 1, Clients: 1, Docs: 1, LocalityProb: -0.1},
		{Requests: 1, Clients: 1, Docs: 1, ModifyRate: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate accepted invalid config", i)
		}
	}
}

func TestGenerateBasicShape(t *testing.T) {
	cfg := Config{
		Name: "t", Seed: 1, Requests: 5000, Clients: 20, Groups: 4,
		Docs: 1000, SharedFraction: 0.7, LocalityProb: 0.4, ModifyRate: 0.01,
	}
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 5000 {
		t.Fatalf("got %d requests", len(reqs))
	}
	var lastT int64 = -1
	for i, r := range reqs {
		if r.Client < 0 || r.Client >= 20 {
			t.Fatalf("request %d: client %d out of range", i, r.Client)
		}
		if r.Size <= 0 {
			t.Fatalf("request %d: non-positive size %d", i, r.Size)
		}
		if r.URL == "" {
			t.Fatalf("request %d: empty URL", i)
		}
		if r.Time < lastT {
			t.Fatalf("request %d: time went backwards", i)
		}
		lastT = r.Time
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "t", Seed: 7, Requests: 2000, Clients: 10, Docs: 500,
		SharedFraction: 0.5, LocalityProb: 0.3}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// A document's size must be stable across all references to it (versions
// change, size identity stays — matching how the sim detects staleness via
// version alone).
func TestSizeStablePerURL(t *testing.T) {
	cfg := Config{Name: "t", Seed: 3, Requests: 10000, Clients: 10, Docs: 300,
		SharedFraction: 0.9, LocalityProb: 0.4, ModifyRate: 0.02}
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int64{}
	for _, r := range reqs {
		if prev, ok := sizes[r.URL]; ok && prev != r.Size {
			t.Fatalf("URL %s changed size %d → %d", r.URL, prev, r.Size)
		}
		sizes[r.URL] = r.Size
	}
}

// Versions must be monotone non-decreasing per URL.
func TestVersionsMonotone(t *testing.T) {
	cfg := Config{Name: "t", Seed: 4, Requests: 10000, Clients: 5, Docs: 200,
		SharedFraction: 1, LocalityProb: 0.5, ModifyRate: 0.05}
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vers := map[string]int64{}
	bumps := 0
	for _, r := range reqs {
		if prev, ok := vers[r.URL]; ok {
			if r.Version < prev {
				t.Fatalf("URL %s version regressed %d → %d", r.URL, prev, r.Version)
			}
			if r.Version > prev {
				bumps++
			}
		}
		vers[r.URL] = r.Version
	}
	if bumps == 0 {
		t.Fatal("ModifyRate 0.05 produced no version bumps")
	}
}

// Temporal locality must raise the single-cache hit ratio well above the
// no-locality baseline.
func TestLocalityRaisesHitRatio(t *testing.T) {
	base := Config{Name: "t", Seed: 5, Requests: 30000, Clients: 20, Docs: 20000,
		SharedFraction: 1.0, LocalityProb: 0}
	warm := base
	warm.LocalityProb = 0.6
	cold, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Generate(warm)
	if err != nil {
		t.Fatal(err)
	}
	hrCold := trace.ComputeStats("cold", cold).MaxHitRatio
	hrHot := trace.ComputeStats("hot", hot).MaxHitRatio
	if hrHot <= hrCold {
		t.Fatalf("locality did not raise max hit ratio: hot=%.3f cold=%.3f", hrHot, hrCold)
	}
}

// SharedFraction controls overlap between clients: with 0 sharing, no URL
// should be requested by two different clients.
func TestPrivateDocsDisjoint(t *testing.T) {
	cfg := Config{Name: "t", Seed: 6, Requests: 5000, Clients: 8, Docs: 100,
		SharedFraction: 0, LocalityProb: 0}
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	owner := map[string]int{}
	for _, r := range reqs {
		if prev, ok := owner[r.URL]; ok && prev != r.Client {
			t.Fatalf("private URL %s requested by clients %d and %d", r.URL, prev, r.Client)
		}
		owner[r.URL] = r.Client
	}
}

func TestURLServerRatio(t *testing.T) {
	cfg := Config{Name: "t", Seed: 8, Requests: 40000, Clients: 10, Docs: 5000,
		SharedFraction: 1, LocalityProb: 0, URLsPerServer: 10}
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	urls := map[string]bool{}
	servers := map[string]bool{}
	for _, r := range reqs {
		urls[r.URL] = true
		// Server name is the host component.
		host := r.URL[len("http://"):]
		for i := 0; i < len(host); i++ {
			if host[i] == '/' {
				host = host[:i]
				break
			}
		}
		servers[host] = true
	}
	ratio := float64(len(urls)) / float64(len(servers))
	if ratio < 5 || ratio > 15 {
		t.Errorf("URL:server ratio %.1f, want ≈10 (paper's observation)", ratio)
	}
}

func TestPresets(t *testing.T) {
	if len(Presets()) != 5 {
		t.Fatal("expected 5 presets")
	}
	for _, p := range Presets() {
		cfg, err := PresetConfig(p, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if cfg.Name != string(p) {
			t.Errorf("%s: name mismatch %q", p, cfg.Name)
		}
		reqs, gcfg, err := GeneratePreset(p, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(reqs) != gcfg.Requests {
			t.Errorf("%s: got %d requests, want %d", p, len(reqs), gcfg.Requests)
		}
		s := trace.ComputeStats(string(p), reqs)
		if s.MaxHitRatio <= 0.05 {
			t.Errorf("%s: implausibly low max hit ratio %.3f", p, s.MaxHitRatio)
		}
		// Group partitioning must populate every group at this scale.
		groups := map[int]bool{}
		for _, r := range reqs {
			groups[r.Group(gcfg.Groups)] = true
		}
		if len(groups) != gcfg.Groups {
			t.Errorf("%s: only %d of %d groups populated", p, len(groups), gcfg.Groups)
		}
	}
	if _, err := PresetConfig("nope", 1); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := PresetConfig(DEC, 0); err == nil {
		t.Error("zero scale accepted")
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := Config{Name: "b", Seed: 1, Requests: 10000, Clients: 50, Docs: 5000,
		SharedFraction: 0.7, LocalityProb: 0.4, ModifyRate: 0.005}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Command tracegen synthesizes HTTP request traces with the statistical
// shape of the paper's workloads and writes them in the repository's trace
// text format (one "time client size version url" record per line).
//
// Usage:
//
//	tracegen -preset=DEC -scale=1.0 -out=dec.trace
//	tracegen -requests=100000 -clients=500 -docs=30000 -out=custom.trace
package main

import (
	"flag"
	"fmt"
	"os"

	sc "summarycache"
)

var (
	preset  = flag.String("preset", "", "paper trace preset: DEC, UCB, UPisa, Questnet, NLANR (empty: custom)")
	scale   = flag.Float64("scale", 1.0, "preset scale factor")
	out     = flag.String("out", "", "output file (default stdout)")
	format  = flag.String("format", "text", "output format: text (greppable) or binary (compact)")
	doStats = flag.Bool("stats", true, "print Table I statistics to stderr")

	requests = flag.Int("requests", 100000, "custom: number of requests")
	clients  = flag.Int("clients", 500, "custom: number of clients")
	docs     = flag.Int("docs", 30000, "custom: shared document universe")
	groups   = flag.Int("groups", 8, "custom: proxy group count (metadata)")
	zipf     = flag.Float64("zipf", 0.8, "custom: popularity skew")
	shared   = flag.Float64("shared", 0.7, "custom: shared-reference fraction")
	locality = flag.Float64("locality", 0.4, "custom: temporal-locality probability")
	modify   = flag.Float64("modify", 0.005, "custom: per-reference modification rate")
	seed     = flag.Int64("seed", 1, "custom: RNG seed")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var reqs []sc.TraceRequest
	var name string
	var err error
	if *preset != "" {
		var cfg sc.TraceGenConfig
		reqs, cfg, err = sc.GeneratePreset(sc.TracePreset(*preset), *scale)
		if err != nil {
			return err
		}
		name = cfg.Name
	} else {
		cfg := sc.TraceGenConfig{
			Name: "custom", Seed: *seed,
			Requests: *requests, Clients: *clients, Groups: *groups,
			Docs: *docs, ZipfAlpha: *zipf,
			SharedFraction: *shared, LocalityProb: *locality, ModifyRate: *modify,
		}
		reqs, err = sc.GenerateTrace(cfg)
		if err != nil {
			return err
		}
		name = cfg.Name
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	switch *format {
	case "text":
		w := sc.NewTraceWriter(dst)
		for _, r := range reqs {
			if err := w.Write(r); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
	case "binary":
		w := sc.NewTraceBinaryWriter(dst)
		for _, r := range reqs {
			if err := w.Write(r); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -format %q", *format)
	}
	if *doStats {
		fmt.Fprintln(os.Stderr, sc.ComputeTraceStats(name, reqs))
	}
	return nil
}

package core

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"summarycache/internal/bloom"
	"summarycache/internal/icp"
	"summarycache/internal/obs"
	"summarycache/internal/tracing"
)

// DecisionSink receives per-peer lookup attributions — the paper's
// decision taxonomy pinned on the specific peer whose summary caused each
// outcome. internal/meshhealth's Accounting implements it; the node calls
// it only on decision events (after the ICP round trip), never on the
// summary-probe fast path.
type DecisionSink interface {
	// Nominated: peer's summary matched, so the peer was queried.
	Nominated(peer string)
	// RemoteHit: peer confirmed the hit that resolved the lookup.
	RemoteHit(peer string)
	// FalseHit: peer's summary nominated url but the peer answered MISS.
	FalseHit(peer, url, traceID string)
	// FalseMiss: an audit query contradicted peer's negative probe.
	FalseMiss(peer, url, traceID string)
}

// DefaultQueryTimeout bounds how long a node waits for ICP replies before
// treating unanswered queries as misses (Squid behaves the same way).
const DefaultQueryTimeout = 500 * time.Millisecond

// DefaultMaxFlipsPerUpdate keeps update datagrams near one Ethernet MTU
// (the prototype "sends updates whenever there are enough changes to fill
// an IP packet": 360 flips ≈ 32 + 1440 bytes).
const DefaultMaxFlipsPerUpdate = 360

// NodeConfig configures a summary-cache ICP node.
type NodeConfig struct {
	// ListenAddr is the UDP address to bind ("127.0.0.1:0" for tests).
	ListenAddr string
	// Directory sizes the local summary.
	Directory DirectoryConfig
	// HasDocument answers peers' ICP queries against the real cache. It
	// must be fast and non-blocking; it runs on the receive goroutine.
	HasDocument func(url string) bool
	// MaxFlipsPerUpdate bounds each DIRUPDATE datagram (default ~MTU).
	MaxFlipsPerUpdate int
	// MinFlipsToPublish delays threshold-triggered publication until at
	// least this many bit flips are pending, mirroring the paper's
	// prototype which "sends updates whenever there are enough changes to
	// fill an IP packet". Default: MaxFlipsPerUpdate (one full packet).
	// Set to 1 to publish on every threshold trip regardless of batch
	// size. PublishNow always bypasses this.
	MinFlipsToPublish int
	// PublishInterval, when positive, additionally publishes pending
	// deltas on a timer — the paper's alternative to the threshold rule
	// ("the update can occur upon regular time intervals"). The paper
	// estimates the thresholds translate to "an update frequency of
	// roughly every five minutes to an hour" on its traces.
	PublishInterval time.Duration
	// QueryTimeout bounds Lookup's wait for ICP replies.
	QueryTimeout time.Duration
	// MulticastGroup, when set (e.g. "239.255.77.77:4827"), joins the
	// group and sends each directory update once to it instead of
	// unicasting to every peer — the paper's suggested transport
	// ("update messages can be transferred via a nonreliable multicast
	// scheme"; loss is safe because flips are absolute). Queries and
	// replies stay unicast. All cooperating nodes must join the same
	// group.
	MulticastGroup string
	// MulticastInterface optionally pins the interface for the group
	// (nil: system default).
	MulticastInterface *net.Interface
	// TCPUpdateAddr, when set (e.g. "127.0.0.1:0"), accepts directory
	// updates over persistent TCP connections — the paper's preferred
	// transport for large updates ("the proxies can just maintain a
	// permanent TCP connection with each other to exchange update
	// messages"). Peers added with AddPeerTCP receive this node's updates
	// over TCP; queries and replies stay on UDP.
	TCPUpdateAddr string
	// UpdateDialTimeout bounds dialing a TCP update peer (0: the ICP
	// package's DefaultDialTimeout; negative: unbounded).
	UpdateDialTimeout time.Duration
	// UpdateWriteTimeout, when positive, puts a write deadline on every
	// TCP update send so one stalled peer cannot wedge publication.
	UpdateWriteTimeout time.Duration
	// Metrics, when set, is the registry the node instruments itself
	// against; series carry a node="<udp addr>" label so several nodes
	// can share one registry. Nil: a private registry is created (the
	// counters behind Stats always exist either way).
	Metrics *obs.Registry
	// Logger, when set, receives structured protocol events (peer
	// up/down transitions, summary publications, peer filter rebuilds).
	// Nil: events are discarded.
	Logger *slog.Logger
	// SocketWrapper, when set, decorates the node's bound UDP socket
	// before use — the fault-injection hook (internal/faultnet) that lets
	// tests and chaos benchmarks impose loss, delay, duplication and
	// reordering on this node's ICP traffic. Nil: the raw socket, with no
	// interposed call.
	SocketWrapper icp.SocketWrapper
	// Tracer, when set, records the node's side of distributed request
	// traces: decision audits on traced Lookups (which summaries matched,
	// at which bit indices and generation, and what each peer actually
	// answered) and answering-side spans for incoming peer queries,
	// correlated with the querier's trace via the ICP RequestNumber.
	// Nil: tracing disabled; the lookup hot path is unchanged.
	Tracer *tracing.Tracer
	// Decisions, when set, receives per-peer lookup attributions (false
	// hits pinned on the peer whose summary lied, remote hits on the peer
	// that served them). Nil: no per-peer accounting.
	Decisions DecisionSink
	// StageTiming, when set, receives the sub-span stage timings the node
	// owns, keyed by the perfwatch stage names: per-reply ICP RTT
	// ("icp_reply"), DIRUPDATE encoding ("dirupdate_encode") and applying
	// a received DIRUPDATE ("dirupdate_apply"). Nil (the default) leaves
	// every path untouched beyond one nil check.
	StageTiming func(stage string, d time.Duration)
	// ICP tunes the UDP endpoint's pooling and batching (send-ring depth)
	// and the publication path's flip coalescing
	// (icp.Config.DisableFlipCoalescing). The zero value selects every
	// default.
	ICP icp.Config
	// FalseMissAuditEvery, when positive, samples every Nth unresolved
	// lookup (no remote hit) and ICP-queries the peers whose summaries
	// said NO. A HIT answer contradicts the negative probe — the paper's
	// false miss, observed live. The audit adds one extra query fan-out
	// per sampled lookup and never changes the lookup result; it is
	// accounting only. 0 (default): disabled.
	FalseMissAuditEvery int
}

// NodeStats counts a node's protocol activity.
type NodeStats struct {
	QueriesSent      uint64 // ICP queries issued by Lookup
	QueriesReceived  uint64 // peer queries answered
	RemoteHits       uint64 // Lookups resolved by a peer HIT
	FalseHits        uint64 // Lookups whose candidates all replied MISS
	FalseMisses      uint64 // audit answers contradicting a negative probe
	AuditQueries     uint64 // extra ICP queries sent by the false-miss audit
	UpdatesSent      uint64 // DIRUPDATE datagrams sent
	UpdatesReceived  uint64 // DIRUPDATE datagrams applied
	UpdateEvents     uint64 // threshold-triggered publications
	FlipsPublished   uint64 // bit flips shipped in updates
	FlipsCoalesced   uint64 // redundant same-bit flips elided before shipping
	UpdateFullBytes  uint64 // advertised bytes in full-state shipments
	UpdateDeltaBytes uint64 // advertised bytes in delta publications
	FilterRebuilds   uint64 // peer replicas created, re-created or reset
	Recoveries       uint64 // warm-restart recoveries applied to this node
	// QueryRTTSeconds summarizes the Lookup ICP fan-out round-trip-time
	// histogram (summarycache_node_query_rtt_seconds).
	QueryRTTSeconds obs.HistogramSnapshot
	UDP             icp.Stats
}

// nodeMetrics are the registry-backed instruments behind NodeStats: the
// Stats snapshot and the /metrics exposition read the very same counters,
// so the two can never disagree.
type nodeMetrics struct {
	queriesSent, queriesRecv          *obs.Counter
	remoteHits, falseHits             *obs.Counter
	falseMisses, auditQueries         *obs.Counter
	updatesSent, updatesRecv          *obs.Counter
	updateEvents                      *obs.Counter
	flipsPublished                    *obs.Counter
	flipsCoalesced                    *obs.Counter
	updateFullBytes, updateDeltaBytes *obs.Counter
	filterRebuilds                    *obs.Counter
	recoveries                        *obs.Counter
	queryRTT                          *obs.Histogram
}

func newNodeMetrics(reg *obs.Registry, labels obs.Labels) nodeMetrics {
	return nodeMetrics{
		queriesSent: reg.Counter("summarycache_node_queries_sent_total",
			"ICP queries issued by Lookup", labels),
		queriesRecv: reg.Counter("summarycache_node_queries_received_total",
			"peer ICP queries answered", labels),
		remoteHits: reg.Counter("summarycache_node_remote_hits_total",
			"Lookups resolved by a peer HIT", labels),
		falseHits: reg.Counter("summarycache_node_false_hits_total",
			"Lookups whose queried candidates all replied MISS", labels),
		falseMisses: reg.Counter("summarycache_node_false_misses_total",
			"audit ICP answers contradicting a negative summary probe", labels),
		auditQueries: reg.Counter("summarycache_node_audit_queries_total",
			"extra ICP queries sent by the false-miss audit", labels),
		updatesSent: reg.Counter("summarycache_node_updates_sent_total",
			"DIRUPDATE messages sent", labels),
		updatesRecv: reg.Counter("summarycache_node_updates_received_total",
			"DIRUPDATE messages applied", labels),
		updateEvents: reg.Counter("summarycache_node_update_events_total",
			"threshold- or timer-triggered summary publications", labels),
		flipsPublished: reg.Counter("summarycache_node_flips_published_total",
			"bit flips shipped in directory updates", labels),
		flipsCoalesced: reg.Counter("summarycache_node_flips_coalesced_total",
			"redundant same-bit flips elided by publication coalescing", labels),
		updateFullBytes: reg.Counter("summarycache_node_update_full_bytes_total",
			"advertised DIRUPDATE bytes in full-state shipments", labels),
		updateDeltaBytes: reg.Counter("summarycache_node_update_delta_bytes_total",
			"advertised DIRUPDATE bytes in delta publications", labels),
		filterRebuilds: reg.Counter("summarycache_node_filter_rebuilds_total",
			"peer summary replicas created, re-created or reset", labels),
		recoveries: reg.Counter("summarycache_node_recoveries_total",
			"warm-restart recoveries applied (directory and replicas restored from disk)", labels),
		queryRTT: reg.Histogram("summarycache_node_query_rtt_seconds",
			"round-trip time of Lookup's ICP query fan-out", labels, nil),
	}
}

// Node is a summary-cache enhanced ICP endpoint: it answers peer queries
// from the local cache, maintains the local Directory and publishes its
// deltas when the update threshold trips, replicates peer summaries from
// incoming DIRUPDATEs, and resolves local misses by querying only the
// peers whose summaries show promise.
type Node struct {
	cfg   NodeConfig
	conn  *icp.Conn
	dir   *Directory
	peers *PeerTable

	mu        sync.RWMutex
	peerAddrs map[string]*net.UDPAddr
	publishMu sync.Mutex // serializes threshold publications

	// Per-peer outbound update accounting (updates and bytes sent to each
	// registered neighbor; multicast sends are not per-peer and are only
	// counted at the node level).
	outMu   sync.Mutex
	peerOut map[string]*peerOutCounters
	// lastAdvert is when this node last shipped any summary state (delta
	// publication or full-state bootstrap), unix nanos; 0 = never.
	lastAdvert atomic.Int64
	// auditSeq drives FalseMissAuditEvery sampling.
	auditSeq atomic.Uint64

	metrics nodeMetrics
	reg     *obs.Registry
	health  *obs.Health
	log     *slog.Logger
	tracer  *tracing.Tracer // nil: tracing disabled

	stopTimer chan struct{}       // closes on Close when PublishInterval is set
	closeOnce sync.Once           // makes Close idempotent and race-free
	closeErr  error               // the first Close's result, returned by all
	mcast     *icp.MulticastGroup // nil unless MulticastGroup configured
	groupAddr *net.UDPAddr

	localIPsOnce sync.Once
	localIPs     []net.IP

	tcpSrv   *icp.TCPServer
	tcpMu    sync.Mutex
	tcpPeers map[string]*icp.TCPClient // peer UDP addr -> update channel
}

// NewNode opens the UDP endpoint and starts serving.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.HasDocument == nil {
		return nil, fmt.Errorf("core: NodeConfig.HasDocument is required")
	}
	if cfg.MaxFlipsPerUpdate <= 0 {
		cfg.MaxFlipsPerUpdate = DefaultMaxFlipsPerUpdate
	}
	if cfg.MinFlipsToPublish <= 0 {
		cfg.MinFlipsToPublish = cfg.MaxFlipsPerUpdate
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = DefaultQueryTimeout
	}
	dir, err := NewDirectory(cfg.Directory)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		dir:       dir,
		peers:     NewPeerTable(),
		peerAddrs: make(map[string]*net.UDPAddr),
		peerOut:   make(map[string]*peerOutCounters),
		tcpPeers:  make(map[string]*icp.TCPClient),
		health:    obs.NewHealth(),
		log:       obs.OrNop(cfg.Logger),
		tracer:    cfg.Tracer,
	}
	conn, err := icp.ListenWith(cfg.ListenAddr, icp.ListenConfig{
		Handler: n.handle,
		Wrap:    cfg.SocketWrapper,
		Config:  cfg.ICP,
	})
	if err != nil {
		return nil, err
	}
	n.conn = conn
	n.initMetrics(cfg.Metrics)
	if cfg.MulticastGroup != "" {
		mg, err := icp.JoinMulticast(cfg.MulticastGroup, cfg.MulticastInterface, n.handleMulticast)
		if err != nil {
			_ = conn.Close() // the join failure is the error worth reporting
			return nil, err
		}
		n.mcast = mg
		n.groupAddr = mg.Group()
	}
	if cfg.TCPUpdateAddr != "" {
		srv, err := icp.ListenTCP(cfg.TCPUpdateAddr, n.handleTCPUpdate)
		if err != nil {
			_ = n.Close() // the listen failure is the error worth reporting
			return nil, err
		}
		n.tcpSrv = srv
	}
	if cfg.PublishInterval > 0 {
		n.stopTimer = make(chan struct{})
		go n.publishLoop(cfg.PublishInterval)
	}
	conn.Start() // all handler dependencies are wired; begin serving
	return n, nil
}

// initMetrics wires the node's instruments into reg (or a private registry
// when nil), labeling every series with the node's bound address, and
// re-exports the UDP endpoint's own counters so netstat-style accounting
// and protocol counters live in one exposition.
func (n *Node) initMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	n.reg = reg
	labels := obs.L("node", n.Addr().String())
	n.metrics = newNodeMetrics(reg, labels)
	n.log = n.log.With("node", n.Addr().String())
	st := func(f func(icp.Stats) uint64) func() uint64 {
		return func() uint64 { return f(n.conn.Stats()) }
	}
	reg.CounterFunc("summarycache_udp_sent_total",
		"UDP datagrams sent by the ICP endpoint", labels,
		st(func(s icp.Stats) uint64 { return s.Sent }))
	reg.CounterFunc("summarycache_udp_received_total",
		"UDP datagrams received by the ICP endpoint", labels,
		st(func(s icp.Stats) uint64 { return s.Received }))
	reg.CounterFunc("summarycache_udp_sent_bytes_total",
		"UDP bytes sent by the ICP endpoint", labels,
		st(func(s icp.Stats) uint64 { return s.SentBytes }))
	reg.CounterFunc("summarycache_udp_received_bytes_total",
		"UDP bytes received by the ICP endpoint", labels,
		st(func(s icp.Stats) uint64 { return s.RecvBytes }))
	reg.CounterFunc("summarycache_udp_dropped_total",
		"undecodable or unroutable datagrams", labels,
		st(func(s icp.Stats) uint64 { return s.Dropped }))
	reg.CounterFunc("summarycache_udp_send_errors_total",
		"UDP transmissions rejected by the network layer", labels,
		st(func(s icp.Stats) uint64 { return s.SendErrors }))
	reg.GaugeFunc("summarycache_node_peers_up",
		"registered peers currently believed up", labels,
		func() float64 { return float64(n.health.UpCount()) })
	reg.GaugeFunc("summarycache_node_peers_known",
		"registered peer addresses", labels,
		func() float64 {
			n.mu.RLock()
			defer n.mu.RUnlock()
			return float64(len(n.peerAddrs))
		})
	reg.GaugeFunc("summarycache_node_peer_summary_bytes",
		"memory held by peer summary replicas", labels,
		func() float64 { return float64(n.peers.MemoryBytes()) })
	reg.GaugeFunc("summarycache_node_directory_docs",
		"documents summarized in the local directory", labels,
		func() float64 { return float64(n.dir.Docs()) })
	reg.GaugeFunc("summarycache_node_pending_flips",
		"unpublished bit flips in the directory journal", labels,
		func() float64 { return float64(n.dir.PendingFlips()) })
	n.peers.SetRebuildObserver(func(peer, reason string) {
		n.metrics.filterRebuilds.Inc()
		n.log.Info("peer filter rebuilt", "peer", peer, "reason", reason)
	})
}

// Metrics returns the registry the node instruments itself against.
func (n *Node) Metrics() *obs.Registry { return n.reg }

// Health returns the peer up/down tracker backing /healthz. Peers are
// presumed up when registered; StartHealthChecks drives transitions.
func (n *Node) Health() *obs.Health { return n.health }

// TCPUpdateAddr returns the TCP update-channel address (nil if disabled).
func (n *Node) TCPUpdateAddr() net.Addr {
	if n.tcpSrv == nil {
		return nil
	}
	return n.tcpSrv.Addr()
}

// handleTCPUpdate consumes updates from the TCP channel. The TCP source
// port is ephemeral, so the sender embeds its ICP (UDP) port in the
// message's OptionData; combined with the connection's source IP that
// reconstructs the peer identity used for summaries and queries.
func (n *Node) handleTCPUpdate(from *net.UDPAddr, m icp.Message) {
	if m.Op != icp.OpDirUpdate {
		return
	}
	id := from
	if m.OptionData != 0 {
		id = &net.UDPAddr{IP: from.IP, Port: int(m.OptionData)}
	}
	full := m.Options&icp.OptionFullUpdate != 0
	if err := n.applyUpdate(id.String(), m.Update, full); err == nil {
		n.metrics.updatesRecv.Inc()
	}
}

// AddPeerTCP registers a neighbor whose updates travel over a persistent
// TCP connection to tcpAddr; queries still go to udpAddr. The full current
// state is shipped immediately, as with AddPeer.
func (n *Node) AddPeerTCP(udpAddr *net.UDPAddr, tcpAddr string) error {
	n.mu.Lock()
	n.peerAddrs[udpAddr.String()] = udpAddr
	n.mu.Unlock()
	n.tcpMu.Lock()
	n.tcpPeers[udpAddr.String()] = icp.NewTCPClient(tcpAddr, icp.TCPClientConfig{
		DialTimeout:  n.cfg.UpdateDialTimeout,
		WriteTimeout: n.cfg.UpdateWriteTimeout,
	})
	n.tcpMu.Unlock()
	n.health.SetPeer(udpAddr.String(), true)
	n.registerPeerMetrics(udpAddr.String())
	return n.sendFullState(udpAddr)
}

// publishLoop implements time-based updates: any pending deltas are
// published every interval, regardless of the threshold.
func (n *Node) publishLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			n.PublishNow()
		case <-n.stopTimer:
			return
		}
	}
}

// Addr returns the node's bound UDP address.
func (n *Node) Addr() *net.UDPAddr { return n.conn.Addr() }

// isSelf reports whether from is this node's own endpoint. When the node
// is bound to the unspecified address, any local interface IP with the
// node's port is self (loopbacked multicast arrives with a concrete
// source IP).
func (n *Node) isSelf(from *net.UDPAddr) bool {
	own := n.Addr()
	if from.Port != own.Port {
		return false
	}
	if from.IP.Equal(own.IP) {
		return true
	}
	if !own.IP.IsUnspecified() {
		return false
	}
	n.localIPsOnce.Do(func() {
		if addrs, err := net.InterfaceAddrs(); err == nil {
			for _, a := range addrs {
				if ipn, ok := a.(*net.IPNet); ok {
					n.localIPs = append(n.localIPs, ipn.IP)
				}
			}
		}
	})
	for _, ip := range n.localIPs {
		if from.IP.Equal(ip) {
			return true
		}
	}
	return false
}

// Directory exposes the local summary (diagnostics and tests).
func (n *Node) Directory() *Directory { return n.dir }

// PeerSummaries exposes the peer replica table (diagnostics and tests).
func (n *Node) PeerSummaries() *PeerTable { return n.peers }

// Close shuts the node down. It is idempotent and safe to call
// concurrently: all callers observe the first shutdown's result. (The
// previous check-then-close of the publish-timer channel let two
// concurrent Close calls both take the not-yet-closed branch and panic on
// the second close.)
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		if n.stopTimer != nil {
			close(n.stopTimer)
		}
		// Every endpoint is torn down regardless of earlier failures; the
		// first error is what all Close callers observe.
		record := func(err error) {
			if n.closeErr == nil {
				n.closeErr = err
			}
		}
		if n.mcast != nil {
			record(n.mcast.Close())
		}
		if n.tcpSrv != nil {
			record(n.tcpSrv.Close())
		}
		n.tcpMu.Lock()
		for _, c := range n.tcpPeers {
			record(c.Close())
		}
		n.tcpMu.Unlock()
		record(n.conn.Close())
	})
	return n.closeErr
}

// handleMulticast consumes group traffic: directory updates from peers
// (our own loopbacked datagrams are ignored by source address).
func (n *Node) handleMulticast(from *net.UDPAddr, m icp.Message) {
	if m.Op != icp.OpDirUpdate || n.isSelf(from) {
		return
	}
	full := m.Options&icp.OptionFullUpdate != 0
	if err := n.applyUpdate(from.String(), m.Update, full); err == nil {
		n.metrics.updatesRecv.Inc()
	}
}

// Stats snapshots the node's counters. The values are read from the same
// registry-backed instruments /metrics exposes, so a scrape and a Stats
// call taken at the same quiescent moment agree exactly.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		QueriesSent:      n.metrics.queriesSent.Value(),
		QueriesReceived:  n.metrics.queriesRecv.Value(),
		RemoteHits:       n.metrics.remoteHits.Value(),
		FalseHits:        n.metrics.falseHits.Value(),
		FalseMisses:      n.metrics.falseMisses.Value(),
		AuditQueries:     n.metrics.auditQueries.Value(),
		UpdatesSent:      n.metrics.updatesSent.Value(),
		UpdatesReceived:  n.metrics.updatesRecv.Value(),
		UpdateEvents:     n.metrics.updateEvents.Value(),
		FlipsPublished:   n.metrics.flipsPublished.Value(),
		FlipsCoalesced:   n.metrics.flipsCoalesced.Value(),
		UpdateFullBytes:  n.metrics.updateFullBytes.Value(),
		UpdateDeltaBytes: n.metrics.updateDeltaBytes.Value(),
		FilterRebuilds:   n.metrics.filterRebuilds.Value(),
		Recoveries:       n.metrics.recoveries.Value(),
		QueryRTTSeconds:  n.metrics.queryRTT.Snapshot(),
		UDP:              n.conn.Stats(),
	}
}

// AddPeer registers a neighbor and bootstraps it with this node's full
// summary state so its replica starts correct.
func (n *Node) AddPeer(addr *net.UDPAddr) error {
	n.mu.Lock()
	n.peerAddrs[addr.String()] = addr
	n.mu.Unlock()
	n.health.SetPeer(addr.String(), true)
	n.registerPeerMetrics(addr.String())
	return n.sendFullState(addr)
}

// MarkPeerDown records an externally detected failure of a registered
// neighbor — typically the HTTP layer's circuit breaker tripping on
// consecutive failed sibling fetches. The peer's summary replica is
// dropped so a sibling that cannot deliver documents stops attracting
// nominations, and /healthz reports it down. The peer stays registered:
// its next directory update (proof of life) rebuilds the replica, and
// MarkPeerUp restores it fully.
func (n *Node) MarkPeerDown(addr *net.UDPAddr) {
	id := addr.String()
	n.peers.Drop(id)
	n.health.SetPeer(id, false)
	n.log.Warn("peer marked down", "peer", id, "source", "external")
}

// MarkPeerUp records an externally detected recovery (a circuit breaker's
// half-open probe succeeding): /healthz reports the peer up again and
// this node re-ships its full summary state so the recovered neighbor's
// replica of us restarts correct — the same resync path the health
// prober's recovery transition uses.
func (n *Node) MarkPeerUp(addr *net.UDPAddr) error {
	id := addr.String()
	n.health.SetPeer(id, true)
	n.log.Info("peer marked up", "peer", id, "source", "external")
	return n.sendFullState(addr)
}

// ResyncPeers re-ships this node's full summary state to every registered
// neighbor — the full-resync path applied wholesale, e.g. after a lossy
// network episode ends and replicas across the mesh must reconverge.
func (n *Node) ResyncPeers() error {
	var firstErr error
	for _, addr := range n.PeerAddrs() {
		if err := n.sendFullState(addr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// NoteRecovery records that this node's directory and peer replicas were
// restored from a warm-restart snapshot (summarycache_node_recoveries_total
// and the event log). The proxy layer calls it once after applying a
// recovered state, before the reset-flagged full DIRUPDATE re-announce.
func (n *Node) NoteRecovery(entries, replicas int) {
	n.metrics.recoveries.Inc()
	if n.log != nil {
		n.log.Info("node recovered from snapshot",
			"entries", entries, "replicas", replicas)
	}
}

// RemovePeer forgets a neighbor and its summary. Every peer-labeled
// series the node registered for it is retired with it — peer churn must
// not leave stale series in the exposition.
func (n *Node) RemovePeer(addr *net.UDPAddr) {
	n.mu.Lock()
	delete(n.peerAddrs, addr.String())
	n.mu.Unlock()
	n.health.RemovePeer(addr.String())
	n.tcpMu.Lock()
	if c := n.tcpPeers[addr.String()]; c != nil {
		_ = c.Close() // the peer is being forgotten; its channel error with it
		delete(n.tcpPeers, addr.String())
	}
	n.tcpMu.Unlock()
	n.peers.Drop(addr.String())
	n.outMu.Lock()
	delete(n.peerOut, addr.String())
	n.outMu.Unlock()
	n.reg.Unregister(obs.L("node", n.Addr().String(), "peer", addr.String()))
}

// PeerAddrs returns the registered neighbor addresses.
func (n *Node) PeerAddrs() []*net.UDPAddr {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*net.UDPAddr, 0, len(n.peerAddrs))
	for _, a := range n.peerAddrs {
		out = append(out, a)
	}
	return out
}

// peerOutCounters accumulates what this node's update stream costs one
// registered neighbor on the wire.
type peerOutCounters struct {
	updates uint64
	bytes   uint64
}

// noteSent charges one successfully sent update message to a peer and to
// the node-level full/delta byte split.
func (n *Node) noteSent(id string, wire int, full bool) {
	n.outMu.Lock()
	po := n.peerOut[id]
	if po == nil {
		po = &peerOutCounters{}
		n.peerOut[id] = po
	}
	po.updates++
	po.bytes += uint64(wire)
	n.outMu.Unlock()
	if full {
		n.metrics.updateFullBytes.Add(uint64(wire))
	} else {
		n.metrics.updateDeltaBytes.Add(uint64(wire))
	}
}

// PeerOut returns the update messages and bytes this node has sent to one
// registered neighbor.
func (n *Node) PeerOut(id string) (updates, bytes uint64) {
	n.outMu.Lock()
	defer n.outMu.Unlock()
	if po := n.peerOut[id]; po != nil {
		return po.updates, po.bytes
	}
	return 0, 0
}

// LastAdvertAge returns how long ago this node last shipped summary state
// to anyone (false: never).
func (n *Node) LastAdvertAge() (time.Duration, bool) {
	ns := n.lastAdvert.Load()
	if ns == 0 {
		return 0, false
	}
	return time.Duration(time.Now().UnixNano() - ns), true
}

// registerPeerMetrics exposes a registered neighbor's replica health and
// wire accounting as peer-labeled series. All series are scrape-time
// callbacks reading the peer table (one source of truth), so they carry no
// probe-path cost. RemovePeer retires them.
func (n *Node) registerPeerMetrics(id string) {
	ls := obs.L("node", n.Addr().String(), "peer", id)
	pt := n.peers
	health := func(read func(PeerHealth) float64) func() float64 {
		return func() float64 {
			h, ok := pt.Health(id)
			if !ok {
				return 0
			}
			return read(h)
		}
	}
	n.reg.GaugeFunc("summarycache_peer_fill_ratio",
		"fraction of set bits in the peer's summary replica", ls,
		health(func(h PeerHealth) float64 { return h.FillRatio }))
	n.reg.GaugeFunc("summarycache_peer_est_false_positive",
		"estimated false-positive probability of the replica (fill^k)", ls,
		health(func(h PeerHealth) float64 { return h.EstFalsePositive }))
	n.reg.GaugeFunc("summarycache_peer_update_age_seconds",
		"seconds since the peer's last DIRUPDATE was applied", ls,
		health(func(h PeerHealth) float64 { return h.UpdateAge.Seconds() }))
	n.reg.CounterFunc("summarycache_peer_update_bytes_in_total",
		"DIRUPDATE bytes applied from this peer", ls,
		func() uint64 {
			h, _ := pt.Health(id)
			return h.BytesIn
		})
	n.reg.CounterFunc("summarycache_peer_updates_full_total",
		"full-state updates applied from this peer", ls,
		func() uint64 {
			h, _ := pt.Health(id)
			return h.FullUpdates
		})
	n.reg.CounterFunc("summarycache_peer_updates_delta_total",
		"delta updates applied from this peer", ls,
		func() uint64 {
			h, _ := pt.Health(id)
			return h.DeltaUpdates
		})
	n.reg.CounterFunc("summarycache_peer_updates_sent_total",
		"update messages sent to this peer", ls,
		func() uint64 {
			u, _ := n.PeerOut(id)
			return u
		})
	n.reg.CounterFunc("summarycache_peer_update_bytes_out_total",
		"update bytes sent to this peer", ls,
		func() uint64 {
			_, b := n.PeerOut(id)
			return b
		})
}

// HandleInsert records a document entering the local cache and publishes
// the summary if the update threshold trips.
func (n *Node) HandleInsert(url string) {
	n.dir.Insert(url)
	n.maybePublish()
}

// HandleEvict records a document leaving the local cache.
func (n *Node) HandleEvict(url string) {
	n.dir.Remove(url)
	n.maybePublish()
}

func (n *Node) maybePublish() {
	ready := func() bool {
		return n.dir.ShouldPublish() && n.dir.PendingFlips() >= n.cfg.MinFlipsToPublish
	}
	if !ready() {
		return
	}
	n.publishMu.Lock()
	defer n.publishMu.Unlock()
	if !ready() { // re-check under the lock
		return
	}
	n.publishLocked()
}

// PublishNow forces publication of any pending deltas.
func (n *Node) PublishNow() {
	n.publishMu.Lock()
	defer n.publishMu.Unlock()
	if n.dir.PendingFlips() == 0 {
		return
	}
	n.publishLocked()
}

func (n *Node) publishLocked() {
	flips := n.dir.Drain()
	if len(flips) == 0 {
		return
	}
	if !n.cfg.ICP.DisableFlipCoalescing {
		before := len(flips)
		flips = coalesceFlips(flips)
		if elided := before - len(flips); elided > 0 {
			n.metrics.flipsCoalesced.Add(uint64(elided))
		}
	}
	n.metrics.updateEvents.Inc()
	n.metrics.flipsPublished.Add(uint64(len(flips)))
	msgs := n.splitUpdate(flips)
	n.stampIdentity(msgs)
	n.log.Info("summary published", "flips", len(flips), "messages", len(msgs),
		"multicast", n.groupAddr != nil)
	n.lastAdvert.Store(time.Now().UnixNano())
	if n.groupAddr != nil {
		// One datagram to the group replaces N−1 unicasts; the cost is
		// charged at the node level only (no per-peer attribution).
		for _, m := range msgs {
			if err := n.conn.SendAsync(n.groupAddr, m); err == nil {
				n.metrics.updatesSent.Inc()
				n.metrics.updateDeltaBytes.Add(uint64(m.EncodedLen()))
			}
		}
		return
	}
	for _, addr := range n.PeerAddrs() {
		for _, m := range msgs {
			if err := n.sendUpdateAsync(addr, m); err == nil {
				n.metrics.updatesSent.Inc()
				n.noteSent(addr.String(), m.EncodedLen(), false)
			}
		}
	}
}

// coalesceFlips elides redundant same-bit records from a drained journal,
// keeping only the LAST flip of each bit index: flips are absolute
// set/clear records, so the final record alone determines the bit's state
// on every receiver — a burst that flips a bit back and forth between
// publications ships as one record instead of many. Relative order among
// the surviving records is preserved (and iteration is over the slice, so
// the result is deterministic for a given journal). The receiver-visible
// end state is bit-identical to shipping the verbatim journal.
func coalesceFlips(flips []bloom.Flip) []bloom.Flip {
	if len(flips) < 2 {
		return flips
	}
	last := make(map[uint32]int, len(flips))
	for i, f := range flips {
		last[f.Index] = i
	}
	if len(last) == len(flips) {
		return flips // no bit flipped twice; nothing to elide
	}
	out := flips[:0]
	for i, f := range flips {
		if last[f.Index] == i {
			out = append(out, f)
		}
	}
	return out
}

// splitUpdate encodes pending flips into DIRUPDATE messages, reporting
// the encoding time as the "dirupdate_encode" perfwatch stage when a
// StageTiming hook is wired.
func (n *Node) splitUpdate(flips []bloom.Flip) []icp.Message {
	st := n.cfg.StageTiming
	if st == nil {
		return icp.SplitUpdate(n.conn.NextReqNum(), n.dir.Spec(), uint32(n.dir.Bits()), flips, n.cfg.MaxFlipsPerUpdate)
	}
	t0 := time.Now()
	msgs := icp.SplitUpdate(n.conn.NextReqNum(), n.dir.Spec(), uint32(n.dir.Bits()), flips, n.cfg.MaxFlipsPerUpdate)
	st("dirupdate_encode", time.Since(t0))
	return msgs
}

// applyUpdate applies one received DIRUPDATE to the sender's replica,
// reporting the apply time as the "dirupdate_apply" perfwatch stage when
// a StageTiming hook is wired.
func (n *Node) applyUpdate(peer string, u *icp.DirUpdate, full bool) error {
	st := n.cfg.StageTiming
	if st == nil {
		return n.peers.ApplyUpdate(peer, u, full)
	}
	t0 := time.Now()
	err := n.peers.ApplyUpdate(peer, u, full)
	st("dirupdate_apply", time.Since(t0))
	return err
}

// stampIdentity embeds this node's ICP port into update messages so
// non-UDP transports can attribute them (see handleTCPUpdate).
func (n *Node) stampIdentity(msgs []icp.Message) {
	port := uint32(n.Addr().Port)
	for i := range msgs {
		msgs[i].OptionData = port
	}
}

// sendUpdate routes one update message to a peer over its preferred
// channel: the persistent TCP connection when one is registered, UDP
// otherwise. Transmission is synchronous — full-state bootstraps use this
// so the reset-flagged first message cannot be overtaken by its
// successors.
func (n *Node) sendUpdate(addr *net.UDPAddr, m icp.Message) error {
	n.tcpMu.Lock()
	cli := n.tcpPeers[addr.String()]
	n.tcpMu.Unlock()
	if cli != nil {
		return cli.Send(m)
	}
	return n.conn.Send(addr, m)
}

// sendUpdateAsync is sendUpdate for delta publications: UDP peers get the
// message through the endpoint's batched send ring (the publication loop
// rarely blocks on per-datagram syscalls; a full ring applies
// back-pressure instead of sending in-line, so the ring preserves FIFO
// order — absolute flip records must be applied last-write-wins per bit).
// TCP peers keep the synchronous framed channel, which already preserves
// order.
func (n *Node) sendUpdateAsync(addr *net.UDPAddr, m icp.Message) error {
	n.tcpMu.Lock()
	cli := n.tcpPeers[addr.String()]
	n.tcpMu.Unlock()
	if cli != nil {
		return cli.Send(m)
	}
	return n.conn.SendAsync(addr, m)
}

// sendFullState ships the entire filter to one peer, flagged so the peer
// resets its replica first.
func (n *Node) sendFullState(addr *net.UDPAddr) error {
	flips := n.dir.SnapshotFlips()
	msgs := n.splitUpdate(flips)
	n.stampIdentity(msgs)
	for i, m := range msgs {
		if i == 0 {
			m.Options |= icp.OptionFullUpdate
		}
		if err := n.sendUpdate(addr, m); err != nil {
			return err
		}
		n.metrics.updatesSent.Inc()
		n.noteSent(addr.String(), m.EncodedLen(), true)
	}
	n.lastAdvert.Store(time.Now().UnixNano())
	return nil
}

// Lookup resolves a local miss: probe the peer summaries, ICP-query only
// the candidate peers, and return the address of the first peer that
// confirmed a hit (nil when the document must be fetched from the origin).
// candidates reports how many peers were queried (0 means the summaries
// ruled everyone out and no message was sent).
//
// When ctx carries a tracing.Trace (tracing.NewContext), Lookup records
// the full decision audit on it: one summary-probe span per consulted
// peer — probed bit indices, replica generation and age, predicted
// verdict, and the peer's actual ICP answer — plus the query round-trip
// span, and re-keys the trace to the exchange's shared ID so the
// answering proxies' traces join it.
func (n *Node) Lookup(ctx context.Context, url string) (hit *net.UDPAddr, candidates int, err error) {
	tr := tracing.FromContext(ctx)
	var probes []SummaryProbe
	var ids []string
	probeStart := time.Now()
	if tr != nil {
		probes = n.peers.ProbeAll(url)
		for _, pr := range probes {
			if pr.Match {
				ids = append(ids, pr.Peer)
			}
		}
	} else {
		ids = n.peers.Candidates(url)
	}
	sink := n.cfg.Decisions
	if len(ids) == 0 {
		n.traceLookup(tr, false, probes, probeStart, nil, 0, 0, nil)
		n.auditFalseMiss(ctx, url, nil, tr)
		return nil, 0, nil
	}
	if sink != nil {
		for _, id := range ids {
			sink.Nominated(id)
		}
	}
	n.mu.RLock()
	addrs := make([]*net.UDPAddr, 0, len(ids))
	var unknown []string
	for _, id := range ids {
		if a := n.peerAddrs[id]; a != nil {
			addrs = append(addrs, a)
		} else {
			unknown = append(unknown, id)
		}
	}
	n.mu.RUnlock()
	// Summaries can arrive from peers we never explicitly registered (for
	// example over a multicast group, where the replica is keyed by the
	// datagram's source address); the key is itself the address to query.
	for _, id := range unknown {
		if a, err := net.ResolveUDPAddr("udp", id); err == nil {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		n.traceLookup(tr, false, probes, probeStart, nil, 0, 0, nil)
		n.auditFalseMiss(ctx, url, ids, tr)
		return nil, 0, nil
	}
	n.metrics.queriesSent.Add(uint64(len(addrs)))
	qctx, cancel := context.WithTimeout(ctx, n.cfg.QueryTimeout)
	defer cancel()
	var replies map[string]icp.Opcode
	var onReply func(*net.UDPAddr, icp.Opcode)
	if tr != nil || sink != nil {
		replies = make(map[string]icp.Opcode, len(addrs))
		// Invoked on this goroutine by QueryAllFunc; no lock needed.
		onReply = func(from *net.UDPAddr, op icp.Opcode) { replies[from.String()] = op }
	}
	start := time.Now()
	if st := n.cfg.StageTiming; st != nil {
		// Each peer's answer latency is one "icp_reply" sample — finer
		// than the whole fan-out RTT the icp_query span reports.
		prev := onReply
		onReply = func(from *net.UDPAddr, op icp.Opcode) {
			st("icp_reply", time.Since(start))
			if prev != nil {
				prev(from, op)
			}
		}
	}
	ok, from, reqNum, err := n.conn.QueryAllFunc(qctx, addrs, url, onReply)
	rtt := time.Since(start)
	n.metrics.queryRTT.ObserveDuration(rtt)
	n.traceLookup(tr, true, probes, probeStart, replies, reqNum, rtt, from)
	if err != nil {
		return nil, len(addrs), err
	}
	if ok {
		n.metrics.remoteHits.Inc()
		if sink != nil {
			sink.RemoteHit(from.String())
		}
		return from, len(addrs), nil
	}
	n.metrics.falseHits.Inc()
	if sink != nil {
		// Every candidate that answered MISS was nominated by a summary
		// that lied; unanswered candidates may just be down or lossy, so
		// they are not charged.
		for id, op := range replies {
			if op != icp.OpHit && op != icp.OpHitObj {
				sink.FalseHit(id, url, traceID(tr))
			}
		}
	}
	if tr != nil && len(replies) < len(addrs) {
		// Some candidates never answered inside the timeout — the
		// peer-down/timeout class of anomaly, kept by tail sampling.
		tr.MarkAnomalous("query_timeout")
	}
	n.auditFalseMiss(ctx, url, ids, tr)
	return nil, len(addrs), nil
}

// traceID returns tr's current ID as a hex string ("" when untraced) —
// the /debug/traces link key attached to false-decision records.
func traceID(tr *tracing.Trace) string {
	if tr == nil {
		return ""
	}
	return tr.ID().String()
}

// auditFalseMiss implements NodeConfig.FalseMissAuditEvery: after an
// unresolved lookup it ICP-queries the registered peers whose summaries
// said NO (the negative probes). A HIT answer is the paper's false miss,
// attributed to the answering peer. At most one false miss is counted per
// audited lookup — the event is the lookup, not the peer count. The
// lookup result is never changed; this is accounting only.
func (n *Node) auditFalseMiss(ctx context.Context, url string, nominated []string, tr *tracing.Trace) {
	every := n.cfg.FalseMissAuditEvery
	if every <= 0 {
		return
	}
	if c := n.auditSeq.Add(1); every > 1 && (c-1)%uint64(every) != 0 {
		return
	}
	nom := make(map[string]bool, len(nominated))
	for _, id := range nominated {
		nom[id] = true
	}
	n.mu.RLock()
	addrs := make([]*net.UDPAddr, 0, len(n.peerAddrs))
	for id, a := range n.peerAddrs {
		if !nom[id] {
			addrs = append(addrs, a)
		}
	}
	n.mu.RUnlock()
	if len(addrs) == 0 {
		return
	}
	n.metrics.auditQueries.Add(uint64(len(addrs)))
	qctx, cancel := context.WithTimeout(ctx, n.cfg.QueryTimeout)
	defer cancel()
	ok, from, _, err := n.conn.QueryAllFunc(qctx, addrs, url, nil)
	if err != nil || !ok {
		return
	}
	n.metrics.falseMisses.Inc()
	if n.cfg.Decisions != nil {
		n.cfg.Decisions.FalseMiss(from.String(), url, traceID(tr))
	}
}

// traceLookup records the decision audit of one Lookup on tr: a
// summary-probe span per consulted peer and (when a query was sent) the
// ICP round-trip span. replies maps peer address to its actual answer;
// hit is the winning peer, nil when nobody confirmed.
func (n *Node) traceLookup(tr *tracing.Trace, queried bool, probes []SummaryProbe, probeStart time.Time,
	replies map[string]icp.Opcode, reqNum uint32, rtt time.Duration, hit *net.UDPAddr) {
	if tr == nil {
		return
	}
	if queried {
		tr.SetICPExchange(n.Addr().String(), reqNum)
	}
	probeDur := time.Since(probeStart).Microseconds()
	for _, pr := range probes {
		s := tracing.Span{
			Name:       tracing.SpanSummaryProbe,
			Peer:       pr.Peer,
			Start:      probeStart,
			DurationUS: probeDur,
			Predicted:  "miss",
			Actual:     "not_queried",
			Audit: &tracing.Audit{
				BitIndexes: pr.BitIndexes,
				Generation: pr.Generation,
				AgeMS:      float64(pr.Age.Microseconds()) / 1e3,
				FilterBits: pr.FilterBits,
			},
		}
		if pr.Match {
			s.Predicted = "hit"
			if queried {
				if op, answered := replies[pr.Peer]; answered {
					s.Actual = "miss"
					if op == icp.OpHit || op == icp.OpHitObj {
						s.Actual = "hit"
					}
				} else {
					s.Actual = "no_reply"
				}
			}
		}
		tr.AddSpan(s)
	}
	if queried {
		actual := "all_miss"
		if hit != nil {
			actual = "hit:" + hit.String()
		}
		tr.AddSpan(tracing.Span{
			Name:       tracing.SpanICPQuery,
			Start:      probeStart,
			DurationUS: rtt.Microseconds(),
			ReqNum:     reqNum,
			Actual:     actual,
		})
	}
}

// handle serves incoming unsolicited messages.
func (n *Node) handle(from *net.UDPAddr, m icp.Message) {
	switch m.Op {
	case icp.OpQuery:
		start := time.Now()
		n.metrics.queriesRecv.Inc()
		op := icp.OpMiss
		if n.cfg.HasDocument(m.URL) {
			op = icp.OpHit
		}
		_ = n.conn.Send(from, icp.NewReply(op, m.ReqNum, m.URL))
		if n.tracer != nil {
			// Under SC-ICP a query only arrives because the querier's
			// replica of our summary predicted a hit; a MISS answer is
			// therefore a false hit seen from the answering side —
			// anomalous, tail-kept.
			n.tracer.ICPAnswer(n.Addr().String(), from.String(), m.ReqNum, m.URL,
				op == icp.OpHit, start, true)
		}
	case icp.OpDirUpdate:
		full := m.Options&icp.OptionFullUpdate != 0
		if err := n.applyUpdate(from.String(), m.Update, full); err == nil {
			n.metrics.updatesRecv.Inc()
		}
	}
}

// Command simulate regenerates the paper's trace-driven results: Table I
// (trace statistics), Figure 1 (benefit of cache sharing), Figure 2
// (update-delay impact), Figures 5–8 and Table III (summary
// representations), the §V-F scalability extrapolation, the design-choice
// ablations, and the parent/child hierarchy extension.
//
// Usage:
//
//	simulate -experiment=all|table1|fig1|fig2|fig5678|table3|scale|amortization|ablations|hierarchy \
//	    [-scale=1.0] [-trace=DEC] [-tracefile=log.trace -groups=8] [-csv=outdir]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	"summarycache/internal/experiments"
	"summarycache/internal/trace"
	"summarycache/internal/tracegen"
)

var (
	experiment = flag.String("experiment", "all", "experiment to run: all, table1, fig1, fig2, fig5678, table3, scale, amortization, ablations, hierarchy")
	scale      = flag.Float64("scale", 0.25, "trace scale factor (1.0 ≈ 200k requests for the largest trace)")
	traceName  = flag.String("trace", "", "restrict to one trace (DEC, UCB, UPisa, Questnet, NLANR)")
	traceFile  = flag.String("tracefile", "", "run against an external trace file (the repository text format) instead of the presets")
	fileGroups = flag.Int("groups", 8, "proxy group count for -tracefile traces")
	csvDir     = flag.String("csv", "", "also write each experiment's data as CSV into this directory")
)

// csvOut opens <csvDir>/<name>.csv, or returns nil when -csv is unset.
func csvOut(name string) (io.WriteCloser, error) {
	if *csvDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(*csvDir, name+".csv"))
}

// emitCSV runs write against a csvOut file when enabled.
func emitCSV(name string, write func(io.Writer) error) error {
	f, err := csvOut(name)
	if err != nil {
		return err
	}
	if f == nil {
		return nil
	}
	defer f.Close()
	return write(f)
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run() error {
	var sets []experiments.TraceSet
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		reqs, err := trace.ReadAllAuto(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", *traceFile, err)
		}
		name := filepath.Base(*traceFile)
		fmt.Fprintf(os.Stderr, "loaded %d requests from %s\n", len(reqs), *traceFile)
		sets = append(sets, experiments.LoadFromRequests(name, reqs, *fileGroups))
	} else {
		for _, p := range tracegen.Presets() {
			if *traceName != "" && string(p) != *traceName {
				continue
			}
			fmt.Fprintf(os.Stderr, "generating %s trace (scale %g)...\n", p, *scale)
			ts, err := experiments.Load(p, *scale)
			if err != nil {
				return err
			}
			sets = append(sets, ts)
		}
	}
	if len(sets) == 0 {
		return fmt.Errorf("no traces selected (unknown -trace=%q?)", *traceName)
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	if want("table1") {
		if err := table1(sets); err != nil {
			return err
		}
	}
	if want("fig1") {
		if err := fig1(sets); err != nil {
			return err
		}
	}
	if want("fig2") {
		if err := fig2(sets); err != nil {
			return err
		}
	}
	if want("fig5678") || want("table3") {
		if err := summaryComparison(sets); err != nil {
			return err
		}
	}
	if want("scale") {
		if err := scalability(); err != nil {
			return err
		}
	}
	if want("amortization") {
		if err := amortization(sets); err != nil {
			return err
		}
	}
	if want("ablations") {
		if err := ablations(sets); err != nil {
			return err
		}
	}
	if want("hierarchy") {
		if err := hierarchy(sets); err != nil {
			return err
		}
	}
	return nil
}

func hierarchy(sets []experiments.TraceSet) error {
	fmt.Println("== Extension: parent/child hierarchy (paper §VIII, not simulated there) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tparent?\tsibling hit\tparent hit\torigin traffic")
	var all []experiments.HierarchyRow
	for _, ts := range sets {
		rows, err := experiments.Hierarchy(ts)
		if err != nil {
			return err
		}
		all = append(all, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%v\t%.2f%%\t%.2f%%\t%.2f%%\n",
				r.Trace, r.WithParent, 100*r.HitRatio, 100*r.ParentHitRatio, 100*r.OriginMissRate)
		}
	}
	w.Flush()
	fmt.Println()
	return emitCSV("hierarchy", func(out io.Writer) error {
		return experiments.HierarchyCSV(out, all)
	})
}

func ablations(sets []experiments.TraceSet) error {
	fmt.Println("== Ablation: delta vs whole-array (cache digest) updates, Bloom lf=16 ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tthreshold\tdelta B/req\tdigest B/req")
	var allDigest []experiments.DigestRow
	for _, ts := range sets {
		rows, err := experiments.DigestVsDelta(ts, nil)
		if err != nil {
			return err
		}
		allDigest = append(allDigest, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.0f%%\t%.1f\t%.1f\n", r.Trace, 100*r.Threshold, r.DeltaBytesReq, r.DigestBytesReq)
		}
	}
	w.Flush()

	fmt.Println("\n== Ablation: number of hash functions (Bloom lf=16, threshold=1%) ==")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tk\toptimal?\tfalse hit\tanalytic fp\thit ratio")
	var allK []experiments.HashKRow
	for _, ts := range sets {
		rows, err := experiments.HashKSweep(ts, nil)
		if err != nil {
			return err
		}
		allK = append(allK, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%v\t%.4f%%\t%.4f%%\t%.2f%%\n",
				r.Trace, r.K, r.Optimal, 100*r.FalseHit, 100*r.AnalyticFP, 100*r.HitRatio)
		}
	}
	w.Flush()

	fmt.Println("\n== Ablation: counting-filter counter width (Bloom lf=16, threshold=1%) ==")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tcounter bits\tsaturations\tfalse hit\tcounter memory (KB)")
	var allC []experiments.CounterRow
	for _, ts := range sets {
		rows, err := experiments.CounterWidthSweep(ts, nil)
		if err != nil {
			return err
		}
		allC = append(allC, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%d\t%.4f%%\t%.1f\n",
				r.Trace, r.CounterBits, r.Saturations, 100*r.FalseHit, float64(r.MemoryBytes)/1024)
		}
	}
	w.Flush()

	fmt.Println("\n== Ablation: Bloom load factor sweep (threshold=1%) ==")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tload factor\tfalse hit\tmsgs/req\tmemory/cache")
	var allLF []experiments.LoadFactorRow
	for _, ts := range sets {
		rows, err := experiments.LoadFactorSweep(ts, nil)
		if err != nil {
			return err
		}
		allLF = append(allLF, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%g\t%.4f%%\t%.3f\t%.3f%%\n",
				r.Trace, r.LoadFactor, 100*r.FalseHit, r.MsgsPerReq, r.MemoryPct)
		}
	}
	w.Flush()
	fmt.Println()
	for name, write := range map[string]func(io.Writer) error{
		"ablation_digest":      func(out io.Writer) error { return experiments.DigestCSV(out, allDigest) },
		"ablation_hashk":       func(out io.Writer) error { return experiments.HashKCSV(out, allK) },
		"ablation_counter":     func(out io.Writer) error { return experiments.CounterCSV(out, allC) },
		"ablation_load_factor": func(out io.Writer) error { return experiments.LoadFactorCSV(out, allLF) },
	} {
		if err := emitCSV(name, write); err != nil {
			return err
		}
	}
	return nil
}

func amortization(sets []experiments.TraceSet) error {
	fmt.Println("== Ablation: update-batch amortization (Bloom lf=16, threshold=1%) ==")
	fmt.Println("   (batch≈90 is the prototype's fill-an-IP-packet rule; the paper's")
	fmt.Println("    million-entry caches batch thousands of documents per update)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tbatch (docs)\thit ratio\tmsgs/req\tbytes/req\tvs ICP")
	var all []experiments.AmortRow
	for _, ts := range sets {
		rows, err := experiments.UpdateAmortization(ts, nil)
		if err != nil {
			return err
		}
		all = append(all, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.2f%%\t%.3f\t%.1f\t%.1fx\n",
				r.Trace, r.MinUpdateDocs, 100*r.HitRatio, r.MsgsPerReq, r.BytesPerReq, r.ICPFactor)
		}
	}
	w.Flush()
	fmt.Println()
	return emitCSV("amortization", func(out io.Writer) error {
		return experiments.AmortCSV(out, all)
	})
}

func table1(sets []experiments.TraceSet) error {
	fmt.Println("== Table I: trace statistics ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\trequests\tclients\tgroups\tunique docs\tinf cache (MB)\tmax hit\tmax byte hit")
	for _, ts := range sets {
		s := experiments.TableI(ts)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.1f\t%.1f%%\t%.1f%%\n",
			s.Name, s.Requests, s.Clients, ts.Groups, s.UniqueDocs,
			float64(s.InfiniteCacheSize)/(1<<20), 100*s.MaxHitRatio, 100*s.MaxByteHitRatio)
	}
	w.Flush()
	fmt.Println()
	return emitCSV("table1", func(out io.Writer) error {
		return experiments.TableICSV(out, sets)
	})
}

func fig1(sets []experiments.TraceSet) error {
	fmt.Println("== Figure 1: hit ratios under cooperative caching schemes ==")
	var all []experiments.Fig1Row
	for _, ts := range sets {
		rows, err := experiments.Fig1(ts, nil)
		if err != nil {
			return err
		}
		all = append(all, rows...)
		fmt.Printf("-- %s --\n", ts.Name)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprint(w, "cache size\t")
		for _, s := range experiments.Fig1Schemes {
			fmt.Fprintf(w, "%v\t", s)
		}
		fmt.Fprintln(w)
		for _, frac := range experiments.Fig1CacheFracs {
			fmt.Fprintf(w, "%.1f%%\t", 100*frac)
			for _, s := range experiments.Fig1Schemes {
				for _, r := range rows {
					if r.CacheFrac == frac && r.Scheme == s {
						fmt.Fprintf(w, "%.1f%%\t", 100*r.HitRatio)
					}
				}
			}
			fmt.Fprintln(w)
		}
		w.Flush()
	}
	fmt.Println()
	return emitCSV("fig1", func(out io.Writer) error {
		return experiments.Fig1CSV(out, all)
	})
}

func fig2(sets []experiments.TraceSet) error {
	fmt.Println("== Figure 2: impact of summary update delays (exact-directory, cache=10%) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tthreshold\thit ratio\tfalse miss\tfalse hit\tremote stale hit")
	var all []experiments.Fig2Row
	for _, ts := range sets {
		rows, err := experiments.Fig2(ts, nil)
		if err != nil {
			return err
		}
		all = append(all, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f%%\t%.2f%%\t%.3f%%\t%.3f%%\t%.3f%%\n",
				r.Trace, 100*r.Threshold, 100*r.HitRatio, 100*r.FalseMissRate,
				100*r.FalseHitRate, 100*r.StaleHitRate)
		}
	}
	w.Flush()
	fmt.Println()
	return emitCSV("fig2", func(out io.Writer) error {
		return experiments.Fig2CSV(out, all)
	})
}

func summaryComparison(sets []experiments.TraceSet) error {
	fmt.Println("== Figures 5-8 + Table III: summary representations (threshold=1%, cache=10%) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tsummary\thit ratio (F5)\tfalse hit (F6)\tmsgs/req (F7)\tbytes/req (F8)\tmemory/cache (T3)")
	var all []experiments.SummaryRow
	for _, ts := range sets {
		rows, err := experiments.SummaryComparison(ts, nil)
		if err != nil {
			return err
		}
		all = append(all, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.2f%%\t%.4f%%\t%.3f\t%.1f\t%.3f%%\n",
				r.Trace, r.Label(), 100*r.HitRatio, 100*r.FalseHit,
				r.MsgsPerReq, r.BytesPerReq, r.MemoryPct)
		}
	}
	w.Flush()
	fmt.Println()
	return emitCSV("fig5678_table3", func(out io.Writer) error {
		return experiments.SummaryCSV(out, all)
	})
}

func scalability() error {
	fmt.Println("== §V-F: scalability with the number of proxies (Bloom lf=16, threshold=1%) ==")
	rows, err := experiments.Scalability(nil, 4000)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "proxies\thit ratio\tSC msgs/req\tICP msgs/req\treduction\tsummary table (MB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2f%%\t%.3f\t%.3f\t%.1fx\t%.2f\n",
			r.Proxies, 100*r.HitRatio, r.MsgsPerReq, r.ICPMsgsPerReq,
			r.ICPMsgsPerReq/r.MsgsPerReq, r.SummaryTableMB)
	}
	w.Flush()
	fmt.Println()
	return emitCSV("scalability", func(out io.Writer) error {
		return experiments.ScaleCSV(out, rows)
	})
}

package tracing

import (
	"context"
	"testing"
	"time"

	"summarycache/internal/obs"
)

// TestNilTracerZeroAlloc is the acceptance check for the disabled path:
// the full hook sequence a local hit executes — start, span, context
// guard, finish — must not allocate when tracing is off. The proxy guards
// StartRequest and span construction behind a nil check, so the disabled
// hot path is exactly these nil-receiver calls.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tracer *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr := tracer.StartRequest("node", "http://doc/")
		tr.AddSpan(Span{Name: SpanLocalLookup, Actual: "hit"})
		tr.SetICPExchange("node", 1)
		tr.MarkAnomalous("never")
		tr.Finish("local_hit")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %v per request, want 0", allocs)
	}
	tracer.ICPAnswer("node", "peer", 1, "http://doc/", true, time.Time{}, false)
	if tracer.Traces() != nil {
		t.Fatal("nil tracer returned traces")
	}
}

func TestIDFromICP(t *testing.T) {
	a := IDFromICP("127.0.0.1:4000", 42)
	if b := IDFromICP("127.0.0.1:4000", 42); b != a {
		t.Fatalf("same exchange, different IDs: %v vs %v", a, b)
	}
	if b := IDFromICP("127.0.0.1:4001", 42); b == a {
		t.Fatal("different querier must yield a different ID")
	}
	if b := IDFromICP("127.0.0.1:4000", 43); b == a {
		t.Fatal("different reqNum must yield a different ID")
	}
	// Hex round-trip, the form /debug/traces?id= accepts.
	got, ok := ParseID(a.String())
	if !ok || got != a {
		t.Fatalf("ParseID(%q) = %v, %v", a.String(), got, ok)
	}
	for _, bad := range []string{"", "xyz", "00112233445566778899"} {
		if _, ok := ParseID(bad); ok {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}

func TestHeadSamplingKeepsEverythingAtRateOne(t *testing.T) {
	tracer := New(Config{HeadRate: 1, Buffer: 8})
	tr := tracer.StartRequest("n", "http://a/")
	tr.Finish("miss")
	if got := tr.Kept(); got != "head" {
		t.Fatalf("kept = %q, want head", got)
	}
	if n := len(tracer.Traces()); n != 1 {
		t.Fatalf("stored %d traces, want 1", n)
	}
	if tracer.sampled.Value() != 1 || tracer.dropped.Value() != 0 {
		t.Fatalf("counters: sampled=%d dropped=%d", tracer.sampled.Value(), tracer.dropped.Value())
	}
}

func TestTailSamplingKeepsAnomaliesAtRateZero(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := New(Config{HeadRate: 0, Buffer: 8, Registry: reg})

	normal := tracer.StartRequest("n", "http://a/")
	normal.Finish("miss")
	if got := normal.Kept(); got != "" {
		t.Fatalf("normal trace at head rate 0: kept = %q, want dropped", got)
	}

	anom := tracer.StartRequest("n", "http://b/")
	anom.MarkAnomalous("false_hit")
	anom.MarkAnomalous("second_reason_must_not_override")
	anom.Finish("false_hit")
	if got := anom.Kept(); got != "tail" {
		t.Fatalf("anomalous trace: kept = %q, want tail", got)
	}

	stored := tracer.Traces()
	if len(stored) != 1 || stored[0].Outcome() != "false_hit" {
		t.Fatalf("stored %v, want exactly the anomalous trace", stored)
	}
	if tracer.keptTail.Value() != 1 || tracer.dropped.Value() != 1 || tracer.sampled.Value() != 0 {
		t.Fatalf("counters: sampled=%d tail=%d dropped=%d, want 0/1/1",
			tracer.sampled.Value(), tracer.keptTail.Value(), tracer.dropped.Value())
	}
}

func TestFinishIdempotent(t *testing.T) {
	tracer := New(Config{HeadRate: 1, Buffer: 8})
	tr := tracer.StartRequest("n", "http://a/")
	tr.Finish("miss")
	tr.Finish("local_hit") // must not re-store or overwrite
	if got := tr.Outcome(); got != "miss" {
		t.Fatalf("outcome = %q, want first Finish to win", got)
	}
	if n := len(tracer.Traces()); n != 1 {
		t.Fatalf("double Finish stored %d traces, want 1", n)
	}
}

func TestRingOverwritesOldestNewestFirst(t *testing.T) {
	tracer := New(Config{HeadRate: 1, Buffer: 4})
	urls := []string{"u0", "u1", "u2", "u3", "u4", "u5"}
	for _, u := range urls {
		tracer.StartRequest("n", u).Finish("miss")
	}
	got := tracer.Traces()
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(got))
	}
	for i, want := range []string{"u5", "u4", "u3", "u2"} {
		if got[i].snapshotView().URL != want {
			t.Fatalf("slot %d = %s, want %s (newest first)", i, got[i].snapshotView().URL, want)
		}
	}
}

// TestICPCorrelation is the wire-level correlation property: the querying
// side (SetICPExchange) and the answering side (ICPAnswer) derive the same
// trace ID from the same (querier address, RequestNumber) pair.
func TestICPCorrelation(t *testing.T) {
	tracer := New(Config{HeadRate: 1, Buffer: 8})
	const querier = "127.0.0.1:7001"
	const reqNum uint32 = 99

	req := tracer.StartRequest("127.0.0.1:7001", "http://doc/")
	req.SetICPExchange(querier, reqNum)
	req.Finish("false_hit")

	tracer.ICPAnswer("127.0.0.1:7002", querier, reqNum, "http://doc/", false, time.Now(), true)

	matches := tracer.Find(req.ID())
	if len(matches) != 2 {
		t.Fatalf("Find(%v) = %d traces, want the request and the answer", req.ID(), len(matches))
	}
	var kinds []string
	for _, m := range matches {
		kinds = append(kinds, m.snapshotView().Kind)
	}
	if !((kinds[0] == KindRequest && kinds[1] == KindICPAnswer) ||
		(kinds[0] == KindICPAnswer && kinds[1] == KindRequest)) {
		t.Fatalf("kinds = %v, want one request and one icp_answer", kinds)
	}
}

func TestICPAnswerAnomalySemantics(t *testing.T) {
	tracer := New(Config{HeadRate: 0, Buffer: 8})
	// SC-ICP: a MISS answer means the querier's replica lied — tail-keep.
	tracer.ICPAnswer("n", "q:1", 1, "http://a/", false, time.Now(), true)
	// Classic ICP: a MISS answer is ordinary — dropped at head rate 0.
	tracer.ICPAnswer("n", "q:1", 2, "http://b/", false, time.Now(), false)
	// A HIT answer is never anomalous.
	tracer.ICPAnswer("n", "q:1", 3, "http://c/", true, time.Now(), true)

	stored := tracer.Traces()
	if len(stored) != 1 {
		t.Fatalf("stored %d answer traces, want only the SC-ICP false hit", len(stored))
	}
	v := stored[0].snapshotView()
	if v.Anomaly != "false_hit_answered" || v.Outcome != "icp_miss" || v.Kept != "tail" {
		t.Fatalf("answer trace = %+v", v)
	}
	if len(v.Spans) != 1 || v.Spans[0].Name != SpanICPAnswer ||
		v.Spans[0].Predicted != "hit" || v.Spans[0].Actual != "miss" {
		t.Fatalf("answer span = %+v", v.Spans)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must carry no trace")
	}
	tracer := New(Config{HeadRate: 1, Buffer: 8})
	tr := tracer.StartRequest("n", "http://a/")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("context did not round-trip the trace")
	}
}

// Package obs is a miniature stand-in for the real metrics registry,
// just enough surface for the stats-drift rule to recognise
// reg.Counter(...) registrations in the sibling fixtures.
package obs

// Label is one metric dimension.
type Label struct{ Name, Value string }

// Labels is the label set attached at registration time.
type Labels []Label

// Counter is a monotonically increasing metric.
type Counter struct{ n uint64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.n++ }

// Registry registers metrics by name.
type Registry struct{}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	_ = name
	_ = help
	_ = labels
	return &Counter{}
}

// CounterFunc registers a callback-backed counter; the stats-drift rule
// deliberately ignores it.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	_ = name
	_ = help
	_ = labels
	_ = fn
}

package obs

import (
	"sync"
	"testing"
)

// TestHistogramQuantileSingleBucket pins interpolation degenerate cases
// on a one-bound histogram: q=0 is the bucket's lower edge, q=1 its
// upper edge, and out-of-range q clamps rather than extrapolating.
func TestHistogramQuantileSingleBucket(t *testing.T) {
	h := newHistogram([]float64{1})
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
	}
	cases := []struct{ q, want float64 }{
		{0, 0},     // lower edge of the only bucket
		{0.5, 0.5}, // linear interpolation inside [0, 1]
		{1, 1},     // upper edge
		{-3, 0},    // clamped to q=0
		{2, 1},     // clamped to q=1
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileInfOnly: when every observation overflows the
// finite bounds, every quantile reports the largest finite bound — the
// histogram's honest "at least this much" answer.
func TestHistogramQuantileInfOnly(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(100)
	h.Observe(200)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 1 {
			t.Errorf("Quantile(%v) = %v, want largest finite bound 1", q, got)
		}
	}
}

// TestHistogramConcurrentObserveAndRead exercises Observe racing the
// read-side (BucketCounts, Count, Sum, Quantile, Snapshot) under -race,
// and checks the final counts are exact — no lost updates.
func TestHistogramConcurrentObserveAndRead(t *testing.T) {
	h := newHistogram([]float64{0.25, 0.5, 1})
	const writers, perWriter = 8, 5000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sum uint64
			for _, c := range h.BucketCounts() {
				sum += c
			}
			if sum > writers*perWriter {
				t.Error("bucket counts exceed observations")
				return
			}
			h.Quantile(0.99)
			h.Snapshot()
			_ = h.Sum()
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := float64(i) / float64(writers) // spread across buckets
			for j := 0; j < perWriter; j++ {
				h.Observe(v)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
	var sum uint64
	for _, c := range h.BucketCounts() {
		sum += c
	}
	if sum != writers*perWriter {
		t.Fatalf("bucket sum = %d, want %d", sum, writers*perWriter)
	}
}

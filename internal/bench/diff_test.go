package bench

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkResult(names []string, ops []float64) MicroResult {
	var r MicroResult
	for i, n := range names {
		r.Scenarios = append(r.Scenarios, MicroScenario{
			Name:    n,
			Current: MicroMeasurement{OpsPerSec: ops[i], P99Micros: 1},
		})
	}
	return r
}

func TestDiffMicro(t *testing.T) {
	old := mkResult([]string{"a", "b", "gone"}, []float64{1000, 2000, 500})
	new := mkResult([]string{"a", "b", "added"}, []float64{990, 1000, 42})
	d := DiffMicro(old, new)
	if len(d.Deltas) != 4 {
		t.Fatalf("got %d deltas, want 4: %+v", len(d.Deltas), d.Deltas)
	}
	if d.Deltas[0].Name != "a" || d.Deltas[0].Ratio != 0.99 {
		t.Errorf("delta a = %+v", d.Deltas[0])
	}
	if d.Deltas[1].Ratio != 0.5 {
		t.Errorf("delta b ratio = %v, want 0.5", d.Deltas[1].Ratio)
	}
	if d.Deltas[2].Missing != "new" || d.Deltas[3].Missing != "old" {
		t.Errorf("missing markers: %+v %+v", d.Deltas[2], d.Deltas[3])
	}

	regs := d.Regressions(0.95)
	// b (0.5x) plus the two missing scenarios; a (0.99x) passes.
	if len(regs) != 3 {
		t.Fatalf("Regressions(0.95) = %+v, want 3 entries", regs)
	}
	for _, r := range regs {
		if r.Name == "a" {
			t.Errorf("a (0.99x) flagged as regression")
		}
	}

	out := d.Format()
	for _, want := range []string{"scenario", "0.99x", "0.50x", "missing from new run", "missing from old run"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

// TestDiffMicroHostDrift: each scenario's frozen baseline runs identical
// code in both runs, so baseline movement calibrates out machine-speed
// drift between recording days.
func TestDiffMicroHostDrift(t *testing.T) {
	withBase := func(cur, base float64) MicroScenario {
		return MicroScenario{
			Name:     "a",
			Current:  MicroMeasurement{OpsPerSec: cur, P99Micros: 1},
			Baseline: &MicroMeasurement{OpsPerSec: base, P99Micros: 1},
		}
	}
	// Old run on a fast host (baseline 1000), new run on a host half as
	// fast (baseline 500): the raw ratio halves but the speedup-vs-
	// baseline is unchanged, so nothing actually regressed.
	old := MicroResult{Scenarios: []MicroScenario{withBase(2000, 1000),
		{Name: "nobase", Current: MicroMeasurement{OpsPerSec: 100}}}}
	new := MicroResult{Scenarios: []MicroScenario{withBase(1000, 500),
		{Name: "nobase", Current: MicroMeasurement{OpsPerSec: 52}}}}
	d := DiffMicro(old, new)
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(d.HostDrift, 0.5) {
		t.Fatalf("HostDrift = %v, want 0.5", d.HostDrift)
	}
	if a := d.Deltas[0]; a.Ratio != 0.5 || !approx(a.AdjustedRatio, 1.0) {
		t.Errorf("calibrated delta = %+v, want ratio 0.5 adjusted 1.0", a)
	}
	// The baseline-free scenario falls back to the global drift factor.
	if nb := d.Deltas[1]; !approx(nb.AdjustedRatio, 0.52/0.5) {
		t.Errorf("nobase AdjustedRatio = %v, want %v", nb.AdjustedRatio, 0.52/0.5)
	}
	if regs := d.Regressions(0.95); len(regs) != 0 {
		t.Errorf("Regressions = %+v, want none once drift is calibrated out", regs)
	}
	if got := (MicroDelta{Ratio: 0.9}).GatedRatio(); got != 0.9 {
		t.Errorf("GatedRatio without adjustment = %v, want raw 0.9", got)
	}
	if !strings.Contains(d.Format(), "host drift 0.50x") {
		t.Errorf("Format() missing drift note:\n%s", d.Format())
	}
}

// TestDiffMicroCalibrationSpread: the frozen baselines are bit-identical
// code, so a real host-speed change moves them together. When their
// individual drifts disagree beyond MaxCalibrationSpread, the apparent
// drift is per-loop noise and the gate must fall back to raw ratios
// rather than divide that noise into every verdict.
func TestDiffMicroCalibrationSpread(t *testing.T) {
	sc := func(name string, cur, base float64) MicroScenario {
		return MicroScenario{
			Name:     name,
			Current:  MicroMeasurement{OpsPerSec: cur, P99Micros: 1},
			Baseline: &MicroMeasurement{OpsPerSec: base, P99Micros: 1},
		}
	}
	// Baseline a moved 1.00x, baseline b moved 1.20x: a 1.20x spread. Both
	// scenarios' current code measures at raw parity (ratio 1.0); adjusting
	// scenario b by its own 1.20x "drift" would fail it at 0.83x.
	old := MicroResult{Scenarios: []MicroScenario{sc("a", 2000, 1000), sc("b", 3000, 1000)}}
	new := MicroResult{Scenarios: []MicroScenario{sc("a", 2000, 1000), sc("b", 3000, 1200)}}
	d := DiffMicro(old, new)
	if d.CalibrationSpread <= MaxCalibrationSpread {
		t.Fatalf("CalibrationSpread = %v, want > %v", d.CalibrationSpread, MaxCalibrationSpread)
	}
	for _, x := range d.Deltas {
		if x.AdjustedRatio != 0 {
			t.Errorf("delta %s AdjustedRatio = %v, want 0 (calibration discarded)", x.Name, x.AdjustedRatio)
		}
		if got := x.GatedRatio(); got != x.Ratio {
			t.Errorf("delta %s GatedRatio = %v, want raw %v", x.Name, got, x.Ratio)
		}
	}
	if regs := d.Regressions(0.95); len(regs) != 0 {
		t.Errorf("Regressions = %+v, want none at raw parity", regs)
	}
	if !strings.Contains(d.Format(), "calibration unreliable") {
		t.Errorf("Format() missing spread note:\n%s", d.Format())
	}
	// Two scenarios whose baselines agree keep drift adjustment: spread
	// 1.0 is within bounds and both adjusted ratios survive.
	agree := DiffMicro(old, MicroResult{Scenarios: []MicroScenario{sc("a", 1000, 500), sc("b", 1500, 500)}})
	if agree.CalibrationSpread > MaxCalibrationSpread {
		t.Fatalf("agreeing baselines: spread = %v, want <= %v", agree.CalibrationSpread, MaxCalibrationSpread)
	}
	for _, x := range agree.Deltas {
		if x.AdjustedRatio == 0 {
			t.Errorf("agreeing baselines: delta %s lost its AdjustedRatio", x.Name)
		}
	}
}

func TestLatestBenchFileAndLoad(t *testing.T) {
	dir := t.TempDir()
	if _, err := LatestBenchFile(dir); err == nil {
		t.Error("LatestBenchFile on empty dir: want error")
	}
	for _, name := range []string{"BENCH_PR3.json", "BENCH_PR6.json"} {
		if err := os.WriteFile(filepath.Join(dir, name),
			[]byte(`{"gomaxprocs":4,"scenarios":[{"name":"x","current":{"ops_per_sec":10}}]}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestBenchFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_PR6.json" {
		t.Errorf("LatestBenchFile = %q, want BENCH_PR6.json", got)
	}
	// The diff run's own output file must never be its baseline.
	got, err = LatestBenchFile(dir, "BENCH_PR6.json")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_PR3.json" {
		t.Errorf("LatestBenchFile with exclusion = %q, want BENCH_PR3.json", got)
	}
	if _, err := LatestBenchFile(dir, "BENCH_PR3.json", "BENCH_PR6.json"); err == nil {
		t.Error("LatestBenchFile with all files excluded: want error")
	}
	res, err := LoadMicroResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 1 || res.Scenarios[0].Current.OpsPerSec != 10 {
		t.Errorf("LoadMicroResult = %+v", res)
	}
	if _, err := LoadMicroResult(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("LoadMicroResult on missing file: want error")
	}
}

// Package pos is the stats-drift positive fixture: it exports a Stats
// struct and registers counters, a gauge and a histogram; one instrument
// of each kind is missing its Stats field.
package pos

import "statsdrift/obs"

// Stats is the exported snapshot; FramesDropped, InflightOps and
// OpSeconds are deliberately absent.
type Stats struct {
	QueriesSent uint64
}

type metrics struct {
	queries  *obs.Counter
	dropped  *obs.Counter
	inflight *obs.Gauge
	seconds  *obs.Histogram
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		queries:  reg.Counter("summarycache_pos_queries_sent_total", "queries sent", nil),
		dropped:  reg.Counter("summarycache_pos_frames_dropped_total", "frames dropped", nil), // want stats-drift
		inflight: reg.Gauge("summarycache_pos_inflight_ops", "ops in flight", nil),            // want stats-drift
		seconds:  reg.Histogram("summarycache_pos_op_seconds", "op latency", nil, nil),        // want stats-drift
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// borrowEscapeRule mechanically enforces the zero-alloc decode borrow
// contract from the ICP layer: a Message (and the *DirUpdate and flip
// slice hanging off it) produced by Decoder.Decode is valid only until
// the next decode, so a handler receiving one — and any function holding
// a freshly decoded one — must not let it outlive the call. Escapes are:
//
//   - storing it (or anything borrow-carrying derived from it) into a
//     struct field reached through a receiver/pointer parameter, or into
//     a package-level variable;
//   - sending it on a channel;
//   - handing it to a spawned goroutine (argument or closure capture);
//   - passing it to a callee whose summary says the parameter escapes.
//
// Clone() launders a value; so does copying value-typed data out of it
// (URL strings are owned by contract, counters are scalars, and
// append(nil, m.Update.Flips...) copies the flip values). Taint
// propagates only through borrow-carrying types — anything that
// transitively contains a pointer, slice, map, chan or interface —
// so storing m.Update.Bits or m.URL is clean by construction.
//
// Roots are found two ways: any function value with a borrowed-Message
// parameter used as a callback (assigned, passed, stored — not called)
// is treated as a handler and its Message parameters are borrowed; and
// every call to Decoder.Decode taints its Message result, with
// "returns a borrow" summaries propagating that through wrappers.
type borrowEscapeRule struct {
	u        *Universe
	perPkg   map[*Package][]pendingFinding
	sums     *summaries
	handlers map[*types.Func]bool
	litRoots map[*ast.FuncLit]bool

	escMemo  map[escKey]*escFact
	retMemo  map[*types.Func]*retFact
	carrying map[types.Type]bool
}

type escKey struct {
	fn    *types.Func
	param int // receiver is 0; value params follow
}

type escFact struct {
	state   int // 0 unset, 1 computing, 2 done
	escapes bool
}

type retFact struct {
	state int
	fresh []bool // result i derives from a Decode inside the callee
	pass  []bool // result i derives from a borrow-carrying parameter
}

func (r *borrowEscapeRule) Name() string { return RuleBorrowEscape }

func (r *borrowEscapeRule) Doc() string {
	return "a borrowed (decoder-owned) icp.Message/DirUpdate must not outlive the call without Clone()"
}

func (r *borrowEscapeRule) Check(pkg *Package, report ReportFunc) {
	if pkg.Universe == nil {
		return
	}
	if r.u != pkg.Universe {
		r.analyze(pkg.Universe)
		r.u = pkg.Universe
	}
	for _, f := range r.perPkg[pkg] {
		report(f.pos, "%s", f.msg)
	}
}

// --- type predicates --------------------------------------------------

// isICPPkg matches the module's internal/icp package and the fixture
// universes' internal/icp mirrors.
func isICPPkg(p *types.Package) bool {
	if p == nil {
		return false
	}
	return p.Path() == "internal/icp" || strings.HasSuffix(p.Path(), "/internal/icp")
}

// borrowedNamed reports whether t (or its pointee) is icp.Message or
// icp.DirUpdate — the decoder-owned types the contract is about.
func borrowedNamed(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return (name == "Message" || name == "DirUpdate") && isICPPkg(named.Obj().Pkg())
}

// borrowCarrying reports whether values of t can carry a borrow:
// anything transitively containing a pointer, slice, map, chan, func or
// interface. Strings are excluded — the decode contract hands the
// handler owned URL strings — so copying scalars and strings out of a
// borrowed message is clean by type alone.
func (r *borrowEscapeRule) borrowCarrying(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := r.carrying[t]; ok {
		return v
	}
	r.carrying[t] = false // cycle-breaker; overwritten below
	v := false
	switch u := t.Underlying().(type) {
	case *types.Basic:
		v = false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		v = true
	case *types.Array:
		v = r.borrowCarrying(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if r.borrowCarrying(u.Field(i).Type()) {
				v = true
				break
			}
		}
	}
	r.carrying[t] = v
	return v
}

// isCloneCall reports m.Clone() / u.Clone() on a borrowed type: the
// sanctioned laundering point.
func isCloneCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Clone" {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && borrowedNamed(recv.Type())
}

// decodeVec returns, for a call to (*icp.Decoder).Decode, which results
// are borrowed (nil when the call is not a Decode). Decode is the borrow
// source: its Message result aliases the decoder's scratch.
func decodeVec(pkg *Package, call *ast.CallExpr) []bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Decode" {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Decoder" || !isICPPkg(named.Obj().Pkg()) {
		return nil
	}
	res := fn.Type().(*types.Signature).Results()
	vec := make([]bool, res.Len())
	for i := range vec {
		vec[i] = borrowedNamed(res.At(i).Type())
	}
	return vec
}

// --- analysis ---------------------------------------------------------

func (r *borrowEscapeRule) analyze(u *Universe) {
	r.perPkg = map[*Package][]pendingFinding{}
	r.sums = u.summaries()
	r.escMemo = map[escKey]*escFact{}
	r.retMemo = map[*types.Func]*retFact{}
	r.carrying = map[types.Type]bool{}
	r.findHandlers(u)

	for _, pkg := range u.Pkgs {
		if pkg.IsMain() {
			continue
		}
		pkg := pkg
		report := func(pos token.Pos, msg string) {
			r.perPkg[pkg] = append(r.perPkg[pkg], pendingFinding{pos: pos, msg: msg})
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				objs := declParamObjs(pkg, fd)
				roots := map[types.Object]bool{}
				if r.handlers[obj] {
					for _, o := range objs {
						if o != nil && borrowedNamed(o.Type()) {
							roots[o] = true
						}
					}
				}
				fc := r.newFlow(pkg, report)
				for _, o := range objs {
					if o != nil {
						fc.params[o] = true
					}
				}
				fc.run(fd.Body, roots)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok || !r.litRoots[lit] {
					return true
				}
				roots := map[types.Object]bool{}
				fc := r.newFlow(pkg, report)
				for _, field := range lit.Type.Params.List {
					for _, name := range field.Names {
						if o := pkg.Info.Defs[name]; o != nil {
							fc.params[o] = true
							if borrowedNamed(o.Type()) {
								roots[o] = true
							}
						}
					}
				}
				fc.run(lit.Body, roots)
				return true
			})
		}
	}
}

// findHandlers marks every function (or literal) whose value — not a
// call of it — flows somewhere while carrying a borrowed-Message
// parameter in its signature. Registering n.handle as an icp.Handler,
// passing handleTCPUpdate to ListenTCP, storing a callback in a config
// struct: all make the target a handler whose Message parameters are
// borrowed at every invocation.
func (r *borrowEscapeRule) findHandlers(u *Universe) {
	r.handlers = map[*types.Func]bool{}
	r.litRoots = map[*ast.FuncLit]bool{}
	for _, pkg := range u.Pkgs {
		pkg := pkg
		for _, f := range pkg.Files {
			walkStack(f, func(n ast.Node, stack []ast.Node) {
				switch n := n.(type) {
				case *ast.Ident:
					if sel, ok := parent(stack).(*ast.SelectorExpr); ok && sel.Sel == n {
						return // handled at the selector
					}
					fn, ok := pkg.Info.Uses[n].(*types.Func)
					if !ok || !handlerish(fn.Type()) || isCallFun(stack, n) {
						return
					}
					r.handlers[fn] = true
				case *ast.SelectorExpr:
					fn, ok := pkg.Info.Uses[n.Sel].(*types.Func)
					if !ok || !handlerish(fn.Type()) || isCallFun(stack, n) {
						return
					}
					r.handlers[fn] = true
				case *ast.FuncLit:
					if t := pkg.Info.TypeOf(n); handlerish(t) && !isCallFun(stack, n) {
						r.litRoots[n] = true
					}
				}
			})
		}
	}
}

// handlerish reports a function type with at least one borrowed-Message
// parameter — the shape of icp.Handler and the TCP/multicast callbacks.
func handlerish(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if borrowedNamed(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isCallFun reports whether n is the function operand of its enclosing
// call (f in f(x)) — a call, not a value use.
func isCallFun(stack []ast.Node, n ast.Node) bool {
	call, ok := parent(stack).(*ast.CallExpr)
	return ok && ast.Unparen(call.Fun) == n
}

// declParamObjs returns the receiver (if any) followed by the declared
// parameter objects, nil for unnamed slots.
func declParamObjs(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range field.Names {
				out = append(out, pkg.Info.Defs[name])
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

// --- the flow walker --------------------------------------------------

type flowCtx struct {
	r       *borrowEscapeRule
	pkg     *Package
	report  func(pos token.Pos, msg string) // nil in facts mode
	tainted map[types.Object]bool
	params  map[types.Object]bool // this body's receiver+params
	escaped bool
	retVec  []bool // per-result borrow, filled at returns
}

func (r *borrowEscapeRule) newFlow(pkg *Package, report func(token.Pos, string)) *flowCtx {
	return &flowCtx{r: r, pkg: pkg, report: report, tainted: map[types.Object]bool{}, params: map[types.Object]bool{}}
}

func (fc *flowCtx) sink(pos token.Pos, msg string) {
	fc.escaped = true
	if fc.report != nil {
		fc.report(pos, msg)
	}
}

// run flows taint from roots through body in source order.
func (fc *flowCtx) run(body *ast.BlockStmt, roots map[types.Object]bool) {
	for o := range roots {
		fc.tainted[o] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A non-go closure runs (at most) within the call; captures
			// that then escape are beyond this pass — documented miss.
			return false
		case *ast.GoStmt:
			fc.goStmt(n)
			return false
		case *ast.SendStmt:
			if fc.taintedExpr(n.Value) {
				fc.sink(n.Pos(), "borrowed decoder data sent on a channel outlives the handler call; send a Clone() — the decoder reuses these buffers on the next frame")
			}
			return true
		case *ast.AssignStmt:
			fc.assign(n)
			return true
		case *ast.RangeStmt:
			fc.rangeStmt(n)
			return true
		case *ast.CallExpr:
			fc.call(n)
			return true
		case *ast.ReturnStmt:
			for i, e := range n.Results {
				if fc.taintedExpr(e) {
					for len(fc.retVec) <= i {
						fc.retVec = append(fc.retVec, false)
					}
					fc.retVec[i] = true
				}
			}
			return true
		}
		return true
	})
}

// goStmt flags borrowed data crossing into a spawned goroutine, which
// by construction outlives the current decode window.
func (fc *flowCtx) goStmt(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if fc.taintedExpr(arg) {
			fc.sink(arg.Pos(), "borrowed decoder data passed to a spawned goroutine; the goroutine races the decoder's buffer reuse — pass a Clone()")
		}
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if o := fc.pkg.Info.Uses[id]; o != nil && fc.tainted[o] {
				fc.sink(id.Pos(), "borrowed decoder data captured by a goroutine closure; the goroutine races the decoder's buffer reuse — capture a Clone()")
				return false
			}
			return true
		})
	}
}

// rangeStmt taints loop variables drawn from tainted collections when
// the element itself can carry the borrow (ranging flip values copies
// plain structs — clean; ranging a []*DirUpdate taints the pointer).
func (fc *flowCtx) rangeStmt(rs *ast.RangeStmt) {
	if !fc.taintedExpr(rs.X) {
		return
	}
	if v, ok := rs.Value.(*ast.Ident); ok && v.Name != "_" {
		if o := fc.pkg.Info.Defs[v]; o != nil && fc.r.borrowCarrying(o.Type()) {
			fc.tainted[o] = true
		}
	}
}

func (fc *flowCtx) assign(a *ast.AssignStmt) {
	// Multi-value form: x, y := f(...). The call's own argument check
	// happens when the walk descends into it; only lhs taint is here.
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			vec := fc.callResultVec(call)
			for i, lhs := range a.Lhs {
				if i < len(vec) && vec[i] {
					fc.assignTo(lhs, a.Rhs[0].Pos())
				}
			}
			return
		}
	}
	for i, rhs := range a.Rhs {
		if i >= len(a.Lhs) {
			break
		}
		if fc.taintedExpr(rhs) {
			fc.assignTo(a.Lhs[i], rhs.Pos())
		}
	}
}

// assignTo handles a tainted value landing in lhs: locals become
// carriers, non-local destinations are escapes.
func (fc *flowCtx) assignTo(lhs ast.Expr, pos token.Pos) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		o := fc.pkg.Info.Defs[lhs]
		if o == nil {
			o = fc.pkg.Info.Uses[lhs]
		}
		if o == nil {
			return
		}
		if v, ok := o.(*types.Var); ok && isPkgLevel(v) {
			fc.sink(pos, "borrowed decoder data stored in package variable "+v.Name()+" outlives the call; store a Clone() — the decoder reuses these buffers on the next frame")
			return
		}
		fc.tainted[o] = true
	default:
		root := lvalueRoot(lhs)
		if root == nil {
			fc.sink(pos, "borrowed decoder data stored through an untracked expression; the destination may outlive the call — store a Clone()")
			return
		}
		o := fc.pkg.Info.Uses[root]
		if o == nil {
			o = fc.pkg.Info.Defs[root]
		}
		v, ok := o.(*types.Var)
		if !ok {
			return
		}
		switch {
		case isPkgLevel(v):
			fc.sink(pos, "borrowed decoder data stored in package state ("+v.Name()+") outlives the call; store a Clone() — the decoder reuses these buffers on the next frame")
		case fc.params[o] && sharedParam(v.Type()) && !fc.tainted[o]:
			// A store through a pointer receiver/parameter (or into a
			// caller-shared slice/map) lands in memory that outlives this
			// call. Stores into already-borrowed memory are not escapes.
			fc.sink(pos, "borrowed decoder data stored in a field reached through "+v.Name()+" outlives the call; store a Clone() — the decoder reuses these buffers on the next frame")
		default:
			fc.tainted[o] = true // local carrier (or a value-receiver copy that dies here)
		}
	}
}

// sharedParam reports parameter types whose stores are visible to the
// caller after the call: pointers, slices, maps, chans and interfaces.
// A value receiver or value parameter is a copy; stores into it die with
// the frame.
func sharedParam(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// lvalueRoot walks x in x.f, x[i], *x chains down to the base ident.
func lvalueRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// call checks tainted arguments against callee escape summaries.
func (fc *flowCtx) call(call *ast.CallExpr) {
	args, fn := fc.callArgs(call)
	if fn == nil {
		return
	}
	if isCloneCall(fc.pkg, call) || decodeVec(fc.pkg, call) != nil {
		return
	}
	for i, arg := range args {
		if arg == nil || !fc.taintedExpr(arg) {
			continue
		}
		if fc.r.paramEscapes(fn, i) {
			fc.sink(arg.Pos(), "borrowed decoder data passed to "+funcName(fn)+", which retains its argument beyond the call; pass a Clone()")
		}
	}
}

// callArgs returns the receiver-prefixed argument list and the resolved
// static callee (nil for builtins, conversions and dynamic calls).
func (fc *flowCtx) callArgs(call *ast.CallExpr) ([]ast.Expr, *types.Func) {
	fn, ok := calleeOf(fc.pkg, call).(*types.Func)
	if !ok {
		return nil, nil
	}
	sig := fn.Type().(*types.Signature)
	args := make([]ast.Expr, 0, len(call.Args)+1)
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args = append(args, sel.X)
		} else {
			args = append(args, nil)
		}
	}
	args = append(args, call.Args...)
	return args, fn
}

// callResultVec reports which results of call are borrowed at this call
// site: Decode results always; wrapper results when the wrapper returns
// a fresh borrow, or passes a parameter through and a tainted argument
// feeds it.
func (fc *flowCtx) callResultVec(call *ast.CallExpr) []bool {
	if vec := decodeVec(fc.pkg, call); vec != nil {
		return vec
	}
	args, fn := fc.callArgs(call)
	if fn == nil {
		return nil
	}
	rf := fc.r.returnsBorrow(fn)
	if rf == nil {
		return nil
	}
	anyTainted := false
	for _, a := range args {
		if a != nil && fc.taintedExpr(a) {
			anyTainted = true
			break
		}
	}
	vec := make([]bool, len(rf.fresh))
	for i := range vec {
		vec[i] = rf.fresh[i] || (anyTainted && rf.pass[i])
	}
	return vec
}

// taintedExpr reports whether e evaluates to borrowed data, gated at
// each derivation step by the borrow-carrying type predicate.
func (fc *flowCtx) taintedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		o := fc.pkg.Info.Uses[e]
		if o == nil {
			o = fc.pkg.Info.Defs[e]
		}
		return o != nil && fc.tainted[o]
	case *ast.SelectorExpr:
		return fc.r.borrowCarrying(fc.pkg.Info.TypeOf(e)) && fc.taintedExpr(e.X)
	case *ast.IndexExpr:
		return fc.r.borrowCarrying(fc.pkg.Info.TypeOf(e)) && fc.taintedExpr(e.X)
	case *ast.SliceExpr:
		return fc.taintedExpr(e.X)
	case *ast.StarExpr:
		return fc.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && fc.taintedExpr(e.X)
	case *ast.TypeAssertExpr:
		return fc.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if fc.taintedExpr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return fc.taintedCall(e)
	}
	return false
}

func (fc *flowCtx) taintedCall(call *ast.CallExpr) bool {
	// Conversion T(x): taint follows the operand.
	if tv, ok := fc.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && fc.taintedExpr(call.Args[0])
	}
	// Builtins: append carries taint through its destination, and through
	// appended values only when those values can carry a borrow —
	// append([]Flip(nil), m.Update.Flips...) copies plain structs and is
	// the sanctioned flip-copy idiom.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fc.pkg.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() != "append" {
				return false
			}
			if len(call.Args) > 0 && fc.taintedExpr(call.Args[0]) {
				return true
			}
			for _, arg := range call.Args[1:] {
				t := fc.pkg.Info.TypeOf(arg)
				if call.Ellipsis != token.NoPos {
					if sl, ok := t.Underlying().(*types.Slice); ok {
						t = sl.Elem()
					}
				}
				if fc.r.borrowCarrying(t) && fc.taintedExpr(arg) {
					return true
				}
			}
			return false
		}
	}
	if isCloneCall(fc.pkg, call) {
		return false
	}
	vec := fc.callResultVec(call)
	return len(vec) > 0 && vec[0]
}

// --- interprocedural summaries ---------------------------------------

// paramEscapes reports whether fn's param (receiver-prefixed index)
// escapes fn: is stored non-locally, sent, captured by a goroutine, or
// passed onward to an escaping parameter. Unknown bodies are assumed
// non-escaping — the stdlib does not retain ICP messages.
func (r *borrowEscapeRule) paramEscapes(fn *types.Func, idx int) bool {
	key := escKey{fn: fn, param: idx}
	fact := r.escMemo[key]
	if fact == nil {
		fact = &escFact{}
		r.escMemo[key] = fact
	}
	switch fact.state {
	case 2:
		return fact.escapes
	case 1:
		return false // recursion: assume the cycle adds nothing
	}
	fact.state = 1
	fi := r.sums.funcs[fn]
	if fi == nil {
		fact.state = 2
		return false
	}
	fd := declOf(fi)
	if fd == nil {
		fact.state = 2
		return false
	}
	objs := declParamObjs(fi.pkg, fd)
	if idx >= len(objs) || objs[idx] == nil || !r.borrowCarrying(objs[idx].Type()) {
		fact.state = 2
		return false
	}
	fc := r.newFlow(fi.pkg, nil)
	for _, o := range objs {
		if o != nil {
			fc.params[o] = true
		}
	}
	fc.run(fd.Body, map[types.Object]bool{objs[idx]: true})
	fact.escapes = fc.escaped
	fact.state = 2
	return fact.escapes
}

// returnsBorrow summarises which results of fn are borrowed: fresh
// (derived from a Decode inside fn) or passed through from a
// borrow-carrying parameter.
func (r *borrowEscapeRule) returnsBorrow(fn *types.Func) *retFact {
	fact := r.retMemo[fn]
	if fact == nil {
		fact = &retFact{}
		r.retMemo[fn] = fact
	}
	switch fact.state {
	case 2:
		return fact
	case 1:
		return nil
	}
	fact.state = 1
	fi := r.sums.funcs[fn]
	if fi == nil {
		fact.state = 2
		return fact
	}
	fd := declOf(fi)
	if fd == nil {
		fact.state = 2
		return fact
	}
	nres := fn.Type().(*types.Signature).Results().Len()
	pad := func(vec []bool) []bool {
		for len(vec) < nres {
			vec = append(vec, false)
		}
		return vec
	}
	objs := declParamObjs(fi.pkg, fd)

	// Fresh borrows: flow with no parameter roots; Decode results taint
	// on their own.
	fc := r.newFlow(fi.pkg, nil)
	fc.run(fd.Body, nil)
	fact.fresh = pad(fc.retVec)

	// Pass-through: all borrow-carrying params tainted at once (a
	// superset per-result union; precise enough for wrappers).
	roots := map[types.Object]bool{}
	for _, o := range objs {
		if o != nil && r.borrowCarrying(o.Type()) {
			roots[o] = true
		}
	}
	fc = r.newFlow(fi.pkg, nil)
	fc.run(fd.Body, roots)
	fact.pass = pad(fc.retVec)
	fact.state = 2
	return fact
}

// declOf finds the *ast.FuncDecl for a summarised function by position.
func declOf(fi *funcInfo) *ast.FuncDecl {
	if fi.obj == nil {
		return nil
	}
	pos := fi.obj.Pos()
	for _, f := range fi.pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Pos() == pos {
					return fd
				}
			}
		}
	}
	return nil
}

package experiments

import (
	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
	"summarycache/internal/sim"
)

// This file holds the ablation studies behind the paper's design choices
// (DESIGN.md §3's ablation list): delta vs whole-array updates (§VI), the
// number of hash functions (§V-C/V-D), counting-filter counter width
// (§V-C), and the Bloom load factor beyond the paper's {8,16,32}.

// DigestRow compares delta updates against whole-bit-array updates (the
// Squid "cache digest" variant) at one update threshold.
type DigestRow struct {
	Trace          string
	Threshold      float64
	DeltaBytesReq  float64 // bytes/request, bit-flip deltas
	DigestBytesReq float64 // bytes/request, whole array per update
	HitRatio       float64 // identical filters → identical hit ratios
}

// DigestVsDelta sweeps the update threshold and reports the per-request
// update bytes under each transfer strategy. The paper: "The design of our
// protocol is geared toward small delay thresholds... If the delay
// threshold is large, then it is more economical to send the entire bit
// array." The crossover appears where the accumulated flips exceed
// m/8 bytes ÷ 4 bytes-per-flip.
func DigestVsDelta(ts TraceSet, thresholds []float64) ([]DigestRow, error) {
	if thresholds == nil {
		thresholds = []float64{0.01, 0.05, 0.10, 0.25, 0.50}
	}
	var rows []DigestRow
	for _, th := range thresholds {
		base := sim.Config{
			NumProxies: ts.Groups,
			CacheBytes: ts.CacheBytesPerProxy(0.10),
			Scheme:     sim.SimpleSharing,
		}
		run := func(kind sim.SummaryKind) (sim.Result, error) {
			cfg := base
			cfg.Summary = sim.SummaryConfig{
				Kind: kind, UpdateThreshold: th, LoadFactor: 16,
				AvgDocBytes: ts.AvgDocBytes,
			}
			return sim.Run(cfg, ts.Requests)
		}
		delta, err := run(sim.Bloom)
		if err != nil {
			return nil, err
		}
		digest, err := run(sim.BloomDigest)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DigestRow{
			Trace: ts.Name, Threshold: th,
			DeltaBytesReq:  float64(delta.UpdateBytes) / float64(delta.Requests),
			DigestBytesReq: float64(digest.UpdateBytes) / float64(digest.Requests),
			HitRatio:       delta.HitRatio(),
		})
	}
	return rows, nil
}

// HashKRow is one point of the hash-function-count ablation.
type HashKRow struct {
	Trace      string
	K          int
	Optimal    bool // K equals the analytic optimum for this load factor
	FalseHit   float64
	HitRatio   float64
	AnalyticFP float64 // per-filter false-positive prediction
}

// HashKSweep varies the number of hash functions at load factor 16. The
// paper uses 4 everywhere ("not the optimal choice for each configuration,
// but suffices") and notes the optimum is ln2·(m/n) ≈ 11 at lf 16; more
// functions cost more hashing per probe, fewer raise false hits.
func HashKSweep(ts TraceSet, ks []int) ([]HashKRow, error) {
	const lf = 16
	entries := uint64(ts.CacheBytesPerProxy(0.10) / ts.AvgDocBytes)
	if entries == 0 {
		entries = 1
	}
	mBits := bloom.SizeForLoadFactor(entries, lf)
	kOpt := bloom.OptimalK(mBits, entries)
	if ks == nil {
		ks = []int{2, 4, 6, 8, kOpt}
	}
	var rows []HashKRow
	for _, k := range ks {
		r, err := sim.Run(sim.Config{
			NumProxies: ts.Groups,
			CacheBytes: ts.CacheBytesPerProxy(0.10),
			Scheme:     sim.SimpleSharing,
			Summary: sim.SummaryConfig{
				Kind: sim.Bloom, UpdateThreshold: 0.01, LoadFactor: lf,
				AvgDocBytes: ts.AvgDocBytes,
				HashSpec:    hashing.Spec{FunctionNum: k, FunctionBits: 32},
			},
		}, ts.Requests)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HashKRow{
			Trace: ts.Name, K: k, Optimal: k == kOpt,
			FalseHit:   r.FalseHitRatio(),
			HitRatio:   r.HitRatio(),
			AnalyticFP: bloom.FalsePositiveRate(mBits, entries, k),
		})
	}
	return rows, nil
}

// CounterRow is one point of the counter-width ablation.
type CounterRow struct {
	Trace       string
	CounterBits uint
	Saturations uint64 // increments that found a saturated counter
	FalseHit    float64
	HitRatio    float64
	MemoryBytes uint64 // counter array per proxy
}

// CounterWidthSweep varies the counting-filter width. §V-C argues 4 bits
// suffice (overflow probability ~1e-11); narrower counters saturate, and
// because saturated counters are never decremented, stuck-at-one bits
// accumulate and inflate false hits — never false negatives.
func CounterWidthSweep(ts TraceSet, widths []uint) ([]CounterRow, error) {
	if widths == nil {
		widths = []uint{1, 2, 3, 4, 8}
	}
	var rows []CounterRow
	for _, w := range widths {
		r, err := sim.Run(sim.Config{
			NumProxies: ts.Groups,
			CacheBytes: ts.CacheBytesPerProxy(0.10),
			Scheme:     sim.SimpleSharing,
			Summary: sim.SummaryConfig{
				Kind: sim.Bloom, UpdateThreshold: 0.01, LoadFactor: 16,
				AvgDocBytes: ts.AvgDocBytes, CounterBits: w,
			},
		}, ts.Requests)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CounterRow{
			Trace: ts.Name, CounterBits: w,
			Saturations: r.CounterSaturations,
			FalseHit:    r.FalseHitRatio(),
			HitRatio:    r.HitRatio(),
			MemoryBytes: r.CounterMemoryBytes,
		})
	}
	return rows, nil
}

// LoadFactorRow is one point of the load-factor ablation.
type LoadFactorRow struct {
	Trace      string
	LoadFactor float64
	FalseHit   float64
	MsgsPerReq float64
	MemoryPct  float64
	HitRatio   float64
}

// LoadFactorSweep extends the paper's {8, 16, 32} comparison across a
// wider range, tracing the memory↔false-hit tradeoff curve of Figure 4 in
// the full system.
func LoadFactorSweep(ts TraceSet, lfs []float64) ([]LoadFactorRow, error) {
	if lfs == nil {
		lfs = []float64{2, 4, 8, 16, 32, 64}
	}
	var rows []LoadFactorRow
	for _, lf := range lfs {
		r, err := sim.Run(sim.Config{
			NumProxies: ts.Groups,
			CacheBytes: ts.CacheBytesPerProxy(0.10),
			Scheme:     sim.SimpleSharing,
			Summary: sim.SummaryConfig{
				Kind: sim.Bloom, UpdateThreshold: 0.01, LoadFactor: lf,
				AvgDocBytes: ts.AvgDocBytes,
			},
		}, ts.Requests)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LoadFactorRow{
			Trace: ts.Name, LoadFactor: lf,
			FalseHit:   r.FalseHitRatio(),
			MsgsPerReq: r.MessagesPerRequest(),
			MemoryPct:  100 * r.SummaryMemoryRatio(),
			HitRatio:   r.HitRatio(),
		})
	}
	return rows, nil
}

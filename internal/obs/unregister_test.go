package obs

import (
	"strings"
	"testing"
)

// TestUnregisterDropsPeerSeries is the peer-churn lifecycle regression: a
// removed peer's series must vanish from the exposition while unrelated
// series (same family, other peers) survive.
func TestUnregisterDropsPeerSeries(t *testing.T) {
	r := NewRegistry()
	base := L("proxy", "127.0.0.1:1")
	r.Counter("summarycache_test_hits_total", "h", base.With("peer", "a")).Add(3)
	r.Counter("summarycache_test_hits_total", "h", base.With("peer", "b")).Add(5)
	r.GaugeFunc("summarycache_test_breaker_state", "g", base.With("peer", "a"), func() float64 { return 1 })
	r.Counter("summarycache_test_requests_total", "r", base).Inc()

	removed := r.Unregister(base.With("peer", "a"))
	if removed != 2 {
		t.Fatalf("Unregister removed %d series, want 2", removed)
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if strings.Contains(out, `peer="a"`) {
		t.Fatalf("stale peer=a series survived unregistration:\n%s", out)
	}
	if !strings.Contains(out, `peer="b"`) {
		t.Fatalf("unrelated peer=b series was dropped:\n%s", out)
	}
	if !strings.Contains(out, "summarycache_test_requests_total") {
		t.Fatalf("unlabeled-peer series was dropped:\n%s", out)
	}

	// The breaker family had only peer=a series — it must be gone from
	// Names() too, keeping the Stats()==scrape parity invariant.
	for _, n := range r.Names() {
		if n == "summarycache_test_breaker_state" {
			t.Fatalf("empty family %q still listed in Names()", n)
		}
	}

	// Re-registering after removal must work (peer rejoins).
	r.Counter("summarycache_test_hits_total", "h", base.With("peer", "a")).Inc()
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `peer="a"`) {
		t.Fatalf("re-registered peer=a series missing:\n%s", b.String())
	}
}

// TestUnregisterValueBoundaries checks the segment matcher does not confuse
// a label value that embeds another pair's text with a real label pair.
func TestUnregisterValueBoundaries(t *testing.T) {
	r := NewRegistry()
	// Value contains a raw `peer="a"` — escaped in the canonical key, so it
	// must NOT match the peer=a segment.
	r.Counter("summarycache_test_x_total", "x", L("url", `q?peer="a"`, "peer", "b")).Inc()
	if n := r.Unregister(L("peer", "a")); n != 0 {
		t.Fatalf("Unregister matched inside an escaped value (removed %d)", n)
	}
	if n := r.Unregister(L("peer", "b")); n != 1 {
		t.Fatalf("Unregister missed the real pair (removed %d)", n)
	}
}

// Package tracegen synthesizes HTTP request traces with the statistical
// shape of the five proprietary traces used in the paper (DEC, UCB, UPisa,
// Questnet, NLANR), which are not publicly available. This is the
// substitution documented in DESIGN.md §4: Zipf document popularity,
// per-client LRU-stack temporal locality, Pareto document sizes, a
// configurable private/shared request mix (controlling how much inter-proxy
// overlap — and hence remote-hit opportunity — exists), and a document
// modification process that produces the cold misses and remote stale hits
// the paper accounts for.
package tracegen

import (
	"fmt"
	"math/rand"

	"summarycache/internal/stats"
	"summarycache/internal/trace"
)

// Config parameterizes a synthetic trace.
type Config struct {
	Name     string
	Seed     int64
	Requests int
	Clients  int
	Groups   int // proxy group count used downstream (metadata only here)

	Docs      int     // size of the document universe
	ZipfAlpha float64 // popularity skew of the shared document set
	// URLsPerServer controls how many distinct documents share one server
	// name; the paper observes "the ratio of different URLs to different
	// server names is about 10 to 1". Defaults to 10.
	URLsPerServer int

	// SharedFraction is the probability that a fresh (non-reuse) reference
	// draws from the globally shared popularity distribution; the remainder
	// draws from the client's private document set. Higher values produce
	// more inter-proxy overlap and thus more remote hits.
	SharedFraction float64
	// PrivateDocsPerClient sizes each client's private universe (default 200).
	PrivateDocsPerClient int

	// LocalityProb is the probability a request re-references a recently
	// used document from the client's LRU stack (temporal locality).
	LocalityProb float64
	// LocalityStack and LocalityAlpha configure the per-client reuse stack.
	LocalityStack int
	LocalityAlpha float64

	// Sizes draws document body sizes (bytes). Zero value uses
	// stats.DefaultPareto.
	Sizes stats.Pareto

	// ModifyRate is the per-reference probability that the referenced
	// document was modified since its last access (bumping its version and
	// producing a consistency miss / remote stale hit downstream).
	ModifyRate float64

	// RequestsPerSecond spaces the synthetic timestamps (default 10/s).
	RequestsPerSecond float64
}

func (c *Config) applyDefaults() {
	if c.URLsPerServer <= 0 {
		c.URLsPerServer = 10
	}
	if c.PrivateDocsPerClient <= 0 {
		c.PrivateDocsPerClient = 200
	}
	if c.LocalityStack <= 0 {
		c.LocalityStack = 64
	}
	if c.LocalityAlpha <= 0 {
		c.LocalityAlpha = 1.2
	}
	if c.Sizes == (stats.Pareto{}) {
		c.Sizes = stats.DefaultPareto
	}
	if c.RequestsPerSecond <= 0 {
		c.RequestsPerSecond = 10
	}
	if c.ZipfAlpha <= 0 {
		c.ZipfAlpha = 0.8
	}
	if c.Groups <= 0 {
		c.Groups = 1
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Requests <= 0 {
		return fmt.Errorf("tracegen: Requests must be positive, got %d", c.Requests)
	}
	if c.Clients <= 0 {
		return fmt.Errorf("tracegen: Clients must be positive, got %d", c.Clients)
	}
	if c.Docs <= 0 {
		return fmt.Errorf("tracegen: Docs must be positive, got %d", c.Docs)
	}
	if c.SharedFraction < 0 || c.SharedFraction > 1 {
		return fmt.Errorf("tracegen: SharedFraction must be in [0,1], got %v", c.SharedFraction)
	}
	if c.LocalityProb < 0 || c.LocalityProb > 1 {
		return fmt.Errorf("tracegen: LocalityProb must be in [0,1], got %v", c.LocalityProb)
	}
	if c.ModifyRate < 0 || c.ModifyRate > 1 {
		return fmt.Errorf("tracegen: ModifyRate must be in [0,1], got %v", c.ModifyRate)
	}
	return nil
}

// docID identifies a document: shared documents are [0, Docs); private
// documents are encoded per client above that range.
type docID int

// Generate synthesizes the trace. Output is deterministic for a given
// Config (including Seed).
func Generate(cfg Config) ([]trace.Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pop := stats.MustNewZipf(cfg.Docs, cfg.ZipfAlpha)
	privPop := stats.MustNewZipf(cfg.PrivateDocsPerClient, cfg.ZipfAlpha)

	sizes := make(map[docID]int64)
	versions := make(map[docID]int64)
	stacks := make([]*stats.StackSampler, cfg.Clients)
	for i := range stacks {
		stacks[i] = stats.MustNewStackSampler(cfg.LocalityStack, cfg.LocalityAlpha)
	}

	sizeOf := func(d docID) int64 {
		if s, ok := sizes[d]; ok {
			return s
		}
		s := cfg.Sizes.Sample(rng)
		sizes[d] = s
		return s
	}

	out := make([]trace.Request, 0, cfg.Requests)
	interval := 1.0 / cfg.RequestsPerSecond
	now := 0.0
	for i := 0; i < cfg.Requests; i++ {
		client := rng.Intn(cfg.Clients)
		st := stacks[client]
		var d docID
		if rng.Float64() < cfg.LocalityProb {
			if v, ok := st.Reuse(rng); ok {
				d = docID(v)
			} else {
				d = freshDoc(cfg, rng, pop, privPop, client)
			}
		} else {
			d = freshDoc(cfg, rng, pop, privPop, client)
		}
		st.Record(int(d))
		if rng.Float64() < cfg.ModifyRate {
			versions[d]++
		}
		out = append(out, trace.Request{
			Time:    int64(now),
			Client:  client,
			URL:     urlOf(cfg, d),
			Size:    sizeOf(d),
			Version: versions[d],
		})
		now += interval
	}
	return out, nil
}

func freshDoc(cfg Config, rng *rand.Rand, pop, privPop *stats.Zipf, client int) docID {
	if rng.Float64() < cfg.SharedFraction {
		return docID(pop.Sample(rng))
	}
	// Private document: disjoint per-client range above the shared universe.
	return docID(cfg.Docs + client*cfg.PrivateDocsPerClient + privPop.Sample(rng))
}

func urlOf(cfg Config, d docID) string {
	server := int(d) / cfg.URLsPerServer
	return fmt.Sprintf("http://s%d.example.com/doc%d.html", server, int(d))
}

// Preset names the five paper traces.
type Preset string

// The five trace presets, shaped after the paper's Table I workloads
// (scaled; see DESIGN.md §4).
const (
	DEC      Preset = "DEC"      // corporate proxy, 16 groups, large population
	UCB      Preset = "UCB"      // dial-in service, 8 groups
	UPisa    Preset = "UPisa"    // CS department, 8 groups, small population
	Questnet Preset = "Questnet" // regional network: requests are 12 child proxies' misses
	NLANR    Preset = "NLANR"    // 4 top-level cache hierarchy proxies
)

// Presets returns the five presets in the paper's order.
func Presets() []Preset { return []Preset{DEC, UCB, UPisa, Questnet, NLANR} }

// PresetConfig builds the configuration for a named preset at the given
// scale: scale 1.0 yields roughly 200k requests for the biggest trace;
// smaller scales shrink requests and document universe proportionally
// (keeping the requests:docs ratio, which is what hit ratios depend on).
func PresetConfig(p Preset, scale float64) (Config, error) {
	if scale <= 0 {
		return Config{}, fmt.Errorf("tracegen: scale must be positive, got %v", scale)
	}
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	switch p {
	case DEC:
		return Config{
			Name: "DEC", Seed: 101,
			Requests: n(200000), Clients: n(2000), Groups: 16,
			Docs: n(100000), ZipfAlpha: 0.75,
			SharedFraction: 0.75, PrivateDocsPerClient: 60,
			LocalityProb: 0.28, ModifyRate: 0.006,
		}, nil
	case UCB:
		return Config{
			Name: "UCB", Seed: 102,
			Requests: n(160000), Clients: n(1200), Groups: 8,
			Docs: n(85000), ZipfAlpha: 0.75,
			SharedFraction: 0.7, PrivateDocsPerClient: 70,
			LocalityProb: 0.25, ModifyRate: 0.006,
		}, nil
	case UPisa:
		return Config{
			Name: "UPisa", Seed: 103,
			Requests: n(120000), Clients: n(450), Groups: 8,
			Docs: n(60000), ZipfAlpha: 0.78,
			SharedFraction: 0.8, PrivateDocsPerClient: 100,
			LocalityProb: 0.22, ModifyRate: 0.005,
		}, nil
	case Questnet:
		// Child-proxy miss streams: each "client" is itself a proxy, so
		// temporal locality is largely filtered out and the stream is
		// colder; sharing across children remains.
		return Config{
			Name: "Questnet", Seed: 104,
			Requests: n(150000), Clients: 12, Groups: 12,
			Docs: n(130000), ZipfAlpha: 0.65,
			SharedFraction: 0.6, PrivateDocsPerClient: 5000,
			LocalityProb: 0.05, ModifyRate: 0.007,
		}, nil
	case NLANR:
		return Config{
			Name: "NLANR", Seed: 105,
			Requests: n(180000), Clients: n(800), Groups: 4,
			Docs: n(150000), ZipfAlpha: 0.7,
			SharedFraction: 0.7, PrivateDocsPerClient: 110,
			LocalityProb: 0.18, ModifyRate: 0.007,
		}, nil
	default:
		return Config{}, fmt.Errorf("tracegen: unknown preset %q", p)
	}
}

// GeneratePreset synthesizes a preset trace at the given scale.
func GeneratePreset(p Preset, scale float64) ([]trace.Request, Config, error) {
	cfg, err := PresetConfig(p, scale)
	if err != nil {
		return nil, Config{}, err
	}
	reqs, err := Generate(cfg)
	return reqs, cfg, err
}

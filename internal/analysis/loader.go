package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package of the universe
// under analysis. Test files (_test.go) are deliberately not loaded: every
// rule is scoped to library code, and leaving tests out keeps external
// test packages (package foo_test) from complicating the type-check.
type Package struct {
	Path  string // import path within the loaded universe
	Dir   string // absolute directory
	Name  string // package name from the source
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// SoftErrors are type-checker complaints tolerated during loading
	// (the rules still run on everything that resolved).
	SoftErrors []error
	// Universe links back to the run this package was loaded into, so
	// whole-program rules (lock-order, goroutine-lifecycle, borrow-escape)
	// can reach the shared call-graph summaries from a per-package Check.
	Universe *Universe
}

// IsMain reports whether this is a main package (cmd/, examples/) —
// several rules exempt binaries and apply to library code only.
func (p *Package) IsMain() bool { return p.Name == "main" }

// Universe is the full set of packages one analyzer run sees.
type Universe struct {
	Root string // filesystem root; finding paths are relative to it
	Fset *token.FileSet
	Pkgs []*Package // dependency (topological) order

	sums *summaries // lazily built per-function summary layer
}

// skipDir reports directories never descended into: VCS and tool state,
// and testdata trees (which hold deliberately broken fixture code).
func skipDir(name string) bool {
	return strings.HasPrefix(name, ".") || name == "testdata"
}

// modulePath reads the module path from root/go.mod, or returns "" when
// there is no module file (the fixture-universe case).
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// Load discovers, parses and type-checks every non-test package under
// root. When root holds a go.mod, import paths are derived from the
// module path; otherwise each directory's root-relative slash path is its
// import path (how fixture universes under testdata/src are loaded).
// Imports that resolve inside the universe are served from the freshly
// checked packages; everything else (the standard library) goes through
// the source importer, so the analyzer needs no compiled export data.
func Load(root string) (*Universe, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod := modulePath(root)
	fset := token.NewFileSet()

	type rawPkg struct {
		pkg     *Package
		imports map[string]bool
	}
	raw := map[string]*rawPkg{}
	walkErr := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		// Respect build constraints (//go:build lines and GOOS/GOARCH file
		// suffixes) so a package carrying an excluded file — a build-tagged
		// syscall layer, a wasm stub — still loads and type-checks cleanly
		// from the files that are actually part of this configuration.
		if match, err := build.Default.MatchFile(dir, d.Name()); err != nil || !match {
			return nil
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(rel)
		switch {
		case mod != "" && ip == ".":
			ip = mod
		case mod != "":
			ip = mod + "/" + ip
		case ip == ".":
			ip = "main"
		}
		rp := raw[ip]
		if rp == nil {
			rp = &rawPkg{pkg: &Package{Path: ip, Dir: dir, Fset: fset}, imports: map[string]bool{}}
			raw[ip] = rp
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		rp.pkg.Files = append(rp.pkg.Files, f)
		rp.pkg.Name = f.Name.Name
		for _, imp := range f.Imports {
			rp.imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("analysis: no Go packages under %s", root)
	}

	// Topological order over intra-universe imports so each package's
	// dependencies are checked (and importable) before it is.
	paths := make([]string, 0, len(raw))
	for ip := range raw {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(string) error
	visit = func(ip string) error {
		switch state[ip] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", ip)
		}
		state[ip] = visiting
		deps := make([]string, 0, len(raw[ip].imports))
		for dep := range raw[ip].imports {
			if _, ok := raw[dep]; ok {
				deps = append(deps, dep)
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[ip] = done
		order = append(order, ip)
		return nil
	}
	for _, ip := range paths {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}

	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	checked := map[string]*types.Package{}
	imp := chainImporter{local: checked, std: std}

	u := &Universe{Root: root, Fset: fset}
	for _, ip := range order {
		rp := raw[ip]
		// Deterministic file order: the parser saw files in WalkDir
		// (lexical) order already, but sort defensively by position.
		sort.Slice(rp.pkg.Files, func(i, j int) bool {
			return fset.Position(rp.pkg.Files[i].Pos()).Filename <
				fset.Position(rp.pkg.Files[j].Pos()).Filename
		})
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				rp.pkg.SoftErrors = append(rp.pkg.SoftErrors, err)
			},
		}
		tpkg, err := conf.Check(ip, fset, rp.pkg.Files, info)
		if err != nil && tpkg == nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", ip, err)
		}
		rp.pkg.Types = tpkg
		rp.pkg.Info = info
		rp.pkg.Universe = u
		checked[ip] = tpkg
		u.Pkgs = append(u.Pkgs, rp.pkg)
	}
	return u, nil
}

// chainImporter serves universe-internal imports from the packages this
// run has already checked and defers everything else to the standard
// library source importer.
type chainImporter struct {
	local map[string]*types.Package
	std   types.ImporterFrom
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c chainImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.ImportFrom(path, srcDir, 0)
}

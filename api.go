package summarycache

// This file is the public face of the library: the types and constructors
// a downstream user needs, aliased from the internal packages so the
// import graph stays one line — import "summarycache" — while the
// implementation keeps its per-subsystem layout.

import (
	"summarycache/internal/bloom"
	"summarycache/internal/core"
	"summarycache/internal/hashing"
	"summarycache/internal/httpproxy"
	"summarycache/internal/icp"
	"summarycache/internal/lru"
)

// --- the summary-cache protocol (internal/core) ---

// Directory maintains a proxy's own cache summary: a counting Bloom filter
// plus the journal of unpublished bit flips.
type Directory = core.Directory

// DirectoryConfig sizes a Directory.
type DirectoryConfig = core.DirectoryConfig

// PeerTable holds replicas of neighbors' summaries.
type PeerTable = core.PeerTable

// Node is a summary-cache enhanced ICP endpoint.
type Node = core.Node

// NodeConfig configures a Node.
type NodeConfig = core.NodeConfig

// NodeStats counts a Node's protocol activity.
type NodeStats = core.NodeStats

// HealthConfig parameterizes Node.StartHealthChecks.
type HealthConfig = core.HealthConfig

// Recommendation is the paper's §V-E recommended configuration.
type Recommendation = core.Recommendation

// NewDirectory builds a directory summary.
func NewDirectory(cfg DirectoryConfig) (*Directory, error) { return core.NewDirectory(cfg) }

// NewPeerTable creates an empty peer-summary table.
func NewPeerTable() *PeerTable { return core.NewPeerTable() }

// NewNode opens a summary-cache ICP endpoint.
func NewNode(cfg NodeConfig) (*Node, error) { return core.NewNode(cfg) }

// Recommend derives the paper's recommended configuration for a cache.
func Recommend(cacheBytes, avgDocBytes int64, requestsPerSecond, missRatio float64) (Recommendation, error) {
	return core.Recommend(cacheBytes, avgDocBytes, requestsPerSecond, missRatio)
}

// --- Bloom filters (internal/bloom) ---

// Filter is a plain Bloom filter (a peer-summary replica).
type Filter = bloom.Filter

// CountingFilter is the paper's counting Bloom filter.
type CountingFilter = bloom.CountingFilter

// Flip is one absolute set/clear bit record.
type Flip = bloom.Flip

// HashSpec describes a Bloom hash family (MD5 bit groups).
type HashSpec = hashing.Spec

// DefaultHashSpec is the paper's 4 × 32-bit MD5 configuration.
var DefaultHashSpec = hashing.DefaultSpec

// NewFilter creates a plain Bloom filter.
func NewFilter(bits uint64, spec HashSpec) (*Filter, error) { return bloom.NewFilter(bits, spec) }

// NewCountingFilter creates a counting Bloom filter.
func NewCountingFilter(bits uint64, counterBits uint, spec HashSpec) (*CountingFilter, error) {
	return bloom.NewCountingFilter(bits, counterBits, spec)
}

// FalsePositiveRate returns the analytic false-positive probability for a
// filter of m bits holding n keys with k hash functions.
func FalsePositiveRate(m, n uint64, k int) float64 { return bloom.FalsePositiveRate(m, n, k) }

// OptimalK returns the false-positive-minimizing number of hash functions.
func OptimalK(m, n uint64) int { return bloom.OptimalK(m, n) }

// --- the cache and the proxy (internal/lru, internal/httpproxy) ---

// Cache is the byte-budget LRU document cache.
type Cache = lru.Cache

// CacheConfig customizes a Cache.
type CacheConfig = lru.Config

// CacheEntry is one cached document.
type CacheEntry = lru.Entry

// NewCache creates a document cache.
func NewCache(capacity int64, cfg CacheConfig) (*Cache, error) { return lru.New(capacity, cfg) }

// Proxy is a caching HTTP forward proxy with cooperative peering.
type Proxy = httpproxy.Proxy

// ProxyConfig configures a Proxy.
type ProxyConfig = httpproxy.Config

// ProxyMode selects the cooperation protocol.
type ProxyMode = httpproxy.Mode

// The cooperation modes.
const (
	ProxyModeNone  = httpproxy.ModeNone
	ProxyModeICP   = httpproxy.ModeICP
	ProxyModeSCICP = httpproxy.ModeSCICP
)

// StartProxy launches a caching proxy.
func StartProxy(cfg ProxyConfig) (*Proxy, error) { return httpproxy.Start(cfg) }

// --- the wire protocol (internal/icp) ---

// ICPMessage is one ICP datagram.
type ICPMessage = icp.Message

// ICPOpcode is an ICP operation code.
type ICPOpcode = icp.Opcode

// DirUpdate is the decoded ICP_OP_DIRUPDATE payload.
type DirUpdate = icp.DirUpdate

// ParseICP decodes one ICP datagram.
func ParseICP(b []byte) (ICPMessage, error) { return icp.Parse(b) }

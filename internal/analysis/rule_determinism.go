package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// determinismRule guards the PR-4 replay contract: internal/faultnet,
// internal/sim and internal/bench re-run scenarios from a seed, and a
// replay must make bit-identical decisions. Three nondeterminism leaks
// are flagged inside those packages:
//
//   - time.Now, time.Since and time.Until — wall-clock reads differ
//     between runs (Since/Until are just Now in disguise); replay code
//     takes timestamps from the scenario, and genuine wall-clock
//     measurement (benchmark throughput timing) carries a //lint:ignore
//     with a reason;
//   - math/rand and math/rand/v2 package-level generator functions
//     (rand.Intn, rand.Float64, rand.Shuffle, ...) — the global
//     generator is shared, unseeded state; constructors (rand.New,
//     rand.NewSource, rand.NewPCG, rand.NewZipf, ...) are the approved
//     route to a seeded per-stream generator and stay legal;
//   - ranging over a map — iteration order changes run to run; iterate
//     a sorted key slice instead (or suppress where the loop provably
//     commutes).
type determinismRule struct{}

// determinismPaths are the import-path suffixes the rule applies to: the
// module's replay packages (matching by suffix also lets fixture
// universes opt in by directory layout).
var determinismPaths = []string{"internal/faultnet", "internal/sim", "internal/bench"}

func (determinismRule) Name() string { return RuleDeterminism }

func (determinismRule) Doc() string {
	return "replay packages (faultnet, sim, bench) must derive all randomness and ordering from seeded state"
}

func (determinismRule) applies(pkg *Package) bool {
	for _, s := range determinismPaths {
		if pkg.Path == s || strings.HasSuffix(pkg.Path, "/"+s) {
			return true
		}
	}
	return false
}

// randConstructor reports package-level math/rand functions that build
// seeded generators rather than consult the global one.
func randConstructor(name string) bool { return strings.HasPrefix(name, "New") }

func (r determinismRule) Check(pkg *Package, report ReportFunc) {
	if !r.applies(pkg) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn, ok := calleeOf(pkg, n).(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if fn.Type().(*types.Signature).Recv() != nil {
					return true // methods (e.g. on a seeded *rand.Rand) are fine
				}
				switch fn.Pkg().Path() {
				case "time":
					switch fn.Name() {
					case "Now":
						report(n.Pos(),
							"time.Now in a replay path; derive timestamps from the seeded scenario (suppress for wall-clock measurement)")
					case "Since", "Until":
						report(n.Pos(),
							"time.%s reads the wall clock in a replay path; derive durations from the seeded scenario (suppress for wall-clock measurement)",
							fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !randConstructor(fn.Name()) {
						report(n.Pos(),
							"%s.%s consults the shared global generator; use a seeded *rand.Rand (rand.New(rand.NewPCG(seed, stream)))",
							fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.RangeStmt:
				if t := pkg.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						report(n.Pos(),
							"map iteration order is nondeterministic in a replay path; iterate a sorted key slice")
					}
				}
			}
			return true
		})
	}
}

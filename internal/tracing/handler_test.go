package tracing

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func handlerFixture(t *testing.T) (*Tracer, *httptest.Server) {
	t.Helper()
	tracer := New(Config{HeadRate: 1, Buffer: 16})
	srv := httptest.NewServer(tracer.Handler())
	t.Cleanup(srv.Close)
	return tracer, srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp.StatusCode
}

type listResp struct {
	Count  int `json:"count"`
	Traces []struct {
		ID      string `json:"id"`
		Kind    string `json:"kind"`
		URL     string `json:"url"`
		Outcome string `json:"outcome"`
		Kept    string `json:"kept"`
		Spans   int    `json:"spans"`
	} `json:"traces"`
}

func TestHandlerListAndFilters(t *testing.T) {
	tracer, srv := handlerFixture(t)

	hit := tracer.StartRequest("n", "http://hit/")
	hit.AddSpan(Span{Name: SpanLocalLookup, Actual: "hit"})
	hit.Finish("local_hit")
	fh := tracer.StartRequest("n", "http://stale/")
	fh.MarkAnomalous("false_hit")
	fh.Finish("false_hit")
	tracer.ICPAnswer("n2", "n:1", 7, "http://stale/", false, time.Now(), true)

	var list listResp
	if code := getJSON(t, srv.URL, &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if list.Count != 3 || len(list.Traces) != 3 {
		t.Fatalf("count = %d, want 3", list.Count)
	}
	// Newest first: the answer trace finished last.
	if list.Traces[0].Kind != KindICPAnswer {
		t.Fatalf("first trace kind = %s, want newest (icp_answer)", list.Traces[0].Kind)
	}
	// Summaries elide span bodies but report the count.
	if list.Traces[2].Spans != 1 {
		t.Fatalf("span count = %d, want 1", list.Traces[2].Spans)
	}

	var fhs listResp
	getJSON(t, srv.URL+"?outcome=false_hit", &fhs)
	if fhs.Count != 1 || fhs.Traces[0].URL != "http://stale/" {
		t.Fatalf("outcome filter: %+v", fhs)
	}
	var answers listResp
	getJSON(t, srv.URL+"?kind=icp_answer", &answers)
	if answers.Count != 1 || answers.Traces[0].Kind != KindICPAnswer {
		t.Fatalf("kind filter: %+v", answers)
	}
}

func TestHandlerSingleTraceView(t *testing.T) {
	tracer, srv := handlerFixture(t)

	tr := tracer.StartRequest("n", "http://doc/")
	tr.SetICPExchange("n:icp", 41)
	tr.AddSpan(Span{
		Name: SpanSummaryProbe, Peer: "p1", Predicted: "hit", Actual: "miss",
		Audit: &Audit{BitIndexes: []uint64{3, 17, 99}, Generation: 5, AgeMS: 12.5},
	})
	tr.Finish("false_hit")
	// An answering-side trace on the same exchange joins the view.
	tracer.ICPAnswer("n2", "n:icp", 41, "http://doc/", false, time.Now(), true)

	var full []struct {
		ID    string `json:"id"`
		Kind  string `json:"kind"`
		Spans []Span `json:"spans"`
	}
	if code := getJSON(t, srv.URL+"?id="+tr.ID().String(), &full); code != http.StatusOK {
		t.Fatalf("id view status %d", code)
	}
	if len(full) != 2 {
		t.Fatalf("id view returned %d traces, want request + answer", len(full))
	}
	var probe *Span
	for _, v := range full {
		if v.ID != tr.ID().String() {
			t.Fatalf("trace %s in view for %s", v.ID, tr.ID())
		}
		for i := range v.Spans {
			if v.Spans[i].Name == SpanSummaryProbe {
				probe = &v.Spans[i]
			}
		}
	}
	if probe == nil || probe.Audit == nil {
		t.Fatal("summary-probe span with audit missing from id view")
	}
	if len(probe.Audit.BitIndexes) != 3 || probe.Audit.Generation != 5 {
		t.Fatalf("audit = %+v", probe.Audit)
	}

	if code := getJSON(t, srv.URL+"?id=zz", new(any)); code != http.StatusBadRequest {
		t.Fatalf("bad id: status %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"?id=00000000000000ff", new(any)); code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", code)
	}
}

package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: what /healthz reports so an
// operator polling a mesh can tell which build answered.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`     // main module path
	Version   string `json:"version,omitempty"`  // main module version
	Revision  string `json:"revision,omitempty"` // vcs.revision build setting
	Modified  bool   `json:"modified,omitempty"` // vcs.modified: dirty tree
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// ReadBuildInfo returns the binary's build identity from
// runtime/debug.ReadBuildInfo, computed once. Binaries built without
// module support report only the Go version.
func ReadBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		buildInfo.Path = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// Mount attaches an extra handler to the admin multiplexer — how a binary
// adds endpoints NewHandler does not know about (e.g. /debug/traces).
type Mount struct {
	Pattern string
	Handler http.Handler
}

// NewHandler builds the admin endpoint multiplexer:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   expvar-style JSON of the same metrics
//	/debug/pprof/ the standard net/http/pprof profile handlers
//	/healthz      200 when every known peer is up, 503 otherwise;
//	              the body carries the binary's build info
//
// health may be nil (no peer state: always 200 ok). Extra mounts are
// attached as given. The handler is meant for a loopback or otherwise
// access-controlled admin listener — pprof exposes stacks and heap
// contents.
func NewHandler(r *Registry, health *Health, mounts ...Mount) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		type resp struct {
			Status    string    `json:"status"`
			Build     BuildInfo `json:"build"`
			PeersUp   []string  `json:"peers_up,omitempty"`
			PeersDown []string  `json:"peers_down,omitempty"`
		}
		out := resp{Status: "ok", Build: ReadBuildInfo()}
		code := http.StatusOK
		if health != nil {
			out.PeersUp, out.PeersDown = health.Snapshot()
			if len(out.PeersDown) > 0 {
				out.Status = "degraded"
				code = http.StatusServiceUnavailable
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(out)
	})
	for _, m := range mounts {
		mux.Handle(m.Pattern, m.Handler)
	}
	return mux
}

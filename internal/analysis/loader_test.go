package analysis

import (
	"path/filepath"
	"testing"
)

// TestLoadSkipsBuildTagExcludedFiles loads a package whose directory holds a
// file gated behind an impossible build tag. That file references an
// undeclared identifier, so the test passes only if the loader filters it out
// before type-checking instead of folding it into the package.
func TestLoadSkipsBuildTagExcludedFiles(t *testing.T) {
	u, err := Load(filepath.Join("testdata", "buildtag"))
	if err != nil {
		t.Fatalf("Load(testdata/buildtag): %v", err)
	}
	if len(u.Pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(u.Pkgs))
	}
	pkg := u.Pkgs[0]
	if len(pkg.Files) != 1 {
		t.Fatalf("got %d files, want 1 (excluded.go should be dropped by its build constraint)", len(pkg.Files))
	}
	if name := filepath.Base(pkg.Fset.Position(pkg.Files[0].Pos()).Filename); name != "keep.go" {
		t.Fatalf("kept file = %s, want keep.go", name)
	}
	for _, e := range pkg.SoftErrors {
		t.Errorf("unexpected type error: %v", e)
	}
	if scope := pkg.Types.Scope(); scope.Lookup("Kept") == nil || scope.Lookup("Broken") != nil {
		t.Fatalf("package scope wrong: Kept present=%v Broken present=%v",
			scope.Lookup("Kept") != nil, scope.Lookup("Broken") != nil)
	}
}

package meshhealth

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
	"time"
)

// NewHandler serves the mesh-health view, meant to be mounted at
// /debug/mesh beside /debug/traces:
//
//	GET /debug/mesh              HTML peer table (one section per report)
//	GET /debug/mesh?format=json  the same as JSON
//
// report is called per request so the view is always live. Trace IDs in
// the recent-false-decision trail link to /debug/traces?id=<hex>.
func NewHandler(report func() []Report) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		reports := report()
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(reports)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeHTML(w, reports)
	})
}

func writeHTML(w http.ResponseWriter, reports []Report) {
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>mesh health</title><style>
body{font-family:monospace;margin:1.5em}
table{border-collapse:collapse;margin:0.5em 0 1.5em}
th,td{border:1px solid #999;padding:2px 8px;text-align:right}
th{background:#eee}
td.l,th.l{text-align:left}
.bad{color:#b00;font-weight:bold}
.dim{color:#777}
</style></head><body><h1>mesh health</h1>
<p class="dim">paper taxonomy: <b>false hit</b> = summary said yes, peer had no usable copy;
<b>false miss</b> = summary said no, an audit query found a copy;
<b>stale hit</b> = peer delivered an out-of-date version.</p>
`)
	for _, r := range reports {
		fmt.Fprintf(w, "<h2>%s (mode %s", html.EscapeString(r.Proxy), html.EscapeString(r.Mode))
		if r.Node != "" {
			fmt.Fprintf(w, ", icp %s", html.EscapeString(r.Node))
		}
		fmt.Fprint(w, ")</h2>\n")

		fmt.Fprint(w, `<table><tr><th class="l">local advertisement</th><th>value</th></tr>`)
		localRow := func(name, val string) {
			fmt.Fprintf(w, `<tr><td class="l">%s</td><td>%s</td></tr>`, name, val)
		}
		localRow("directory docs", fmt.Sprintf("%d", r.Local.DirectoryDocs))
		localRow("pending (unadvertised) flips", fmt.Sprintf("%d", r.Local.PendingFlips))
		if r.Local.LastAdvertAgeMS < 0 {
			localRow("last advert", "never")
		} else {
			localRow("last advert age", fmtMS(r.Local.LastAdvertAgeMS))
		}
		localRow("update events / messages", fmt.Sprintf("%d / %d", r.Local.UpdateEvents, r.Local.UpdatesSent))
		localRow("advert bytes full / delta", fmt.Sprintf("%d / %d", r.Local.FullBytesOut, r.Local.DeltaBytesOut))
		localRow("cache entries / bytes", fmt.Sprintf("%d / %d", r.Local.CacheEntries, r.Local.CacheBytes))
		if r.Local.Recoveries > 0 {
			localRow("warm recoveries / entries", fmt.Sprintf("%d / %d", r.Local.Recoveries, r.Local.RecoveredEntries))
		}
		fmt.Fprint(w, "</table>\n")

		fmt.Fprint(w, `<table><tr><th class="l">peer</th><th>up</th><th>breaker</th><th>gen</th><th>update age</th><th>fill</th><th>est FPR</th><th>bits</th><th>upd full/delta</th><th>bytes in</th><th>sent</th><th>bytes out</th><th>nom</th><th>rhit</th><th>fhit</th><th>fmiss</th><th>stale</th><th>divergence</th></tr>`)
		for _, p := range r.Peers {
			up := "yes"
			if !p.Up {
				up = `<span class="bad">no</span>`
			}
			age := "—"
			if p.HasReplica {
				age = fmtMS(p.UpdateAgeMS)
			}
			div := fmt.Sprintf("%.4f", p.Divergence)
			if p.Divergence > 0.05 {
				div = `<span class="bad">` + div + `</span>`
			}
			fmt.Fprintf(w,
				`<tr><td class="l">%s</td><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%.3f</td><td>%.2e</td><td>%d</td><td>%d/%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>`,
				html.EscapeString(p.Peer), up, html.EscapeString(p.Breaker),
				p.Generation, age, p.FillRatio, p.EstFalsePositive, p.FilterBits,
				p.FullUpdates, p.DeltaUpdates, p.BytesIn, p.UpdatesSent, p.BytesOut,
				p.Decisions.Nominations, p.Decisions.RemoteHits, p.Decisions.FalseHits,
				p.Decisions.FalseMisses, p.Decisions.StaleHits, div)
		}
		fmt.Fprint(w, "</table>\n")

		if len(r.RecentFalse) > 0 {
			fmt.Fprint(w, `<h3>recent false decisions</h3><table><tr><th class="l">kind</th><th class="l">peer</th><th class="l">url</th><th class="l">trace</th><th>age</th></tr>`)
			for _, d := range r.RecentFalse {
				link := `<span class="dim">untraced</span>`
				if d.TraceID != "" {
					link = fmt.Sprintf(`<a href="/debug/traces?id=%s">%s</a>`,
						html.EscapeString(d.TraceID), html.EscapeString(d.TraceID))
				}
				fmt.Fprintf(w, `<tr><td class="l">%s</td><td class="l">%s</td><td class="l">%s</td><td class="l">%s</td><td>%s</td></tr>`,
					html.EscapeString(d.Kind), html.EscapeString(d.Peer),
					html.EscapeString(d.URL), link, fmtMS(float64(time.Since(d.Time).Milliseconds())))
			}
			fmt.Fprint(w, "</table>\n")
		}
	}
	fmt.Fprint(w, "</body></html>\n")
}

func fmtMS(ms float64) string {
	d := time.Duration(ms * float64(time.Millisecond))
	switch {
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	case d < time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return d.Truncate(time.Second).String()
	}
}

package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"summarycache/internal/sim"
	"summarycache/internal/tracegen"
)

// parseCSV reads back what an emitter wrote and sanity-checks shape.
func parseCSV(t *testing.T, buf *bytes.Buffer, wantCols int, wantRows int) [][]string {
	t.Helper()
	recs, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != wantRows+1 {
		t.Fatalf("got %d records, want %d (header + rows)", len(recs), wantRows+1)
	}
	for i, rec := range recs {
		if len(rec) != wantCols {
			t.Fatalf("record %d has %d columns, want %d", i, len(rec), wantCols)
		}
	}
	return recs
}

func TestFig1CSV(t *testing.T) {
	rows := []Fig1Row{
		{Trace: "DEC", CacheFrac: 0.1, Scheme: sim.SimpleSharing, HitRatio: 0.375},
		{Trace: "DEC", CacheFrac: 0.1, Scheme: sim.GlobalCache, HitRatio: 0.402},
	}
	var buf bytes.Buffer
	if err := Fig1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf, 4, 2)
	if recs[1][2] != "simple" || recs[2][2] != "global" {
		t.Fatalf("scheme column wrong: %v", recs)
	}
	if v, err := strconv.ParseFloat(recs[1][3], 64); err != nil || v != 0.375 {
		t.Fatalf("hit ratio column: %v %v", v, err)
	}
}

func TestFig2CSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []Fig2Row{{Trace: "UCB", Threshold: 0.01, HitRatio: 0.369,
		FalseMissRate: 0.0003, FalseHitRate: 0.0004, StaleHitRate: 0.001}}
	if err := Fig2CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 6, 1)
}

func TestSummaryCSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []SummaryRow{{Trace: "UPisa", Kind: sim.Bloom, LoadFactor: 8,
		HitRatio: 0.4, FalseHit: 0.07, MsgsPerReq: 1.7, BytesPerReq: 160, MemoryPct: 0.14}}
	if err := SummaryCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf, 9, 1)
	if recs[1][1] != "bloom_8" {
		t.Fatalf("label column: %v", recs[1])
	}
}

func TestRemainingCSVEmitters(t *testing.T) {
	var buf bytes.Buffer
	if err := ScaleCSV(&buf, []ScaleRow{{Proxies: 16, HitRatio: 0.42, MsgsPerReq: 0.47, ICPMsgsPerReq: 10.1, SummaryTableMB: 0.01}}); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 5, 1)

	buf.Reset()
	if err := AmortCSV(&buf, []AmortRow{{Trace: "DEC", MinUpdateDocs: 90, HitRatio: 0.36, MsgsPerReq: 0.58, BytesPerReq: 300, ICPFactor: 19.9}}); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 6, 1)

	buf.Reset()
	if err := DigestCSV(&buf, []DigestRow{{Trace: "DEC", Threshold: 0.1, DeltaBytesReq: 287.5, DigestBytesReq: 287.2}}); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 4, 1)

	buf.Reset()
	if err := HashKCSV(&buf, []HashKRow{{Trace: "DEC", K: 4, Optimal: false, FalseHit: 0.02, AnalyticFP: 0.002}}); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 5, 1)

	buf.Reset()
	if err := CounterCSV(&buf, []CounterRow{{Trace: "DEC", CounterBits: 4, Saturations: 0, FalseHit: 0.02, MemoryBytes: 1 << 19}}); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 5, 1)

	buf.Reset()
	if err := LoadFactorCSV(&buf, []LoadFactorRow{{Trace: "DEC", LoadFactor: 16, FalseHit: 0.02, MsgsPerReq: 3.9, MemoryPct: 0.64}}); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 5, 1)

	buf.Reset()
	if err := HierarchyCSV(&buf, []HierarchyRow{{Trace: "DEC", WithParent: true, HitRatio: 0.37, ParentHitRatio: 0.1, OriginMissRate: 0.53}}); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 5, 1)
}

func TestTableICSV(t *testing.T) {
	ts := loadTest(t, tracegen.UPisa)
	var buf bytes.Buffer
	if err := TableICSV(&buf, []TraceSet{ts}); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf, 9, 1)
	if recs[1][0] != "UPisa" {
		t.Fatalf("name column: %v", recs[1])
	}
	if !strings.Contains(strings.Join(recs[0], ","), "max_hit_ratio") {
		t.Fatal("header malformed")
	}
}

// Package ok is the stats-drift negative fixture: every registered
// instrument has a matching exported Stats field, including a suffix
// match ("requests" → ClientRequests), a gauge, a histogram carried as
// its snapshot form, and an initialism normalization (rtt → RTT).
package ok

import "statsdrift/obs"

// Stats mirrors every registered instrument.
type Stats struct {
	QueriesSent     uint64
	ClientRequests  uint64
	InflightOps     int64
	QueryRTTSeconds obs.HistogramSnapshot
}

type metrics struct {
	queries  *obs.Counter
	requests *obs.Counter
	inflight *obs.Gauge
	rtt      *obs.Histogram
}

func newMetrics(reg *obs.Registry) metrics {
	reg.CounterFunc("summarycache_ok_untracked_total", "callback-backed; rule skips CounterFunc", nil, func() uint64 { return 0 })
	reg.GaugeFunc("summarycache_ok_derived_ratio", "callback-backed; rule skips GaugeFunc", nil, func() float64 { return 0 })
	return metrics{
		queries:  reg.Counter("summarycache_ok_queries_sent_total", "exact field match", nil),
		requests: reg.Counter("summarycache_ok_requests_total", "suffix field match", nil),
		inflight: reg.Gauge("summarycache_ok_inflight_ops", "gauge with exact field match", nil),
		rtt:      reg.Histogram("summarycache_ok_query_rtt_seconds", "histogram with initialism field match", nil, nil),
	}
}

// Package ok holds the sanctioned lock shapes: one global order,
// TryLock fast paths, per-iteration critical sections and a declared
// same-class instance order.
package ok

import "sync"

type shard struct{ mu sync.Mutex }

type clock struct{ mu sync.Mutex }

// Every path takes shard before clock — a DAG, nothing to report.
func evict(s *shard, c *clock) {
	s.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	s.mu.Unlock()
}

func evictViaCall(s *shard, c *clock) {
	s.mu.Lock()
	tick(c)
	s.mu.Unlock()
}

func tick(c *clock) {
	c.mu.Lock()
	c.mu.Unlock()
}

// A failed TryLock cannot deadlock: the reverse-order fast path is
// exempt by construction.
func fastPath(s *shard, c *clock) {
	c.mu.Lock()
	if s.mu.TryLock() {
		s.mu.Unlock()
	}
	c.mu.Unlock()
}

// Balanced per-iteration critical sections are not a self-edge.
func sweep(shards []*shard) {
	for _, s := range shards {
		s.mu.Lock()
		s.mu.Unlock()
	}
}

//lint:lockorder ok.pair.mu < ok.pair.mu pairs are always locked in ascending index order

type pair struct{ mu sync.Mutex }

// swap nests two pair locks; the declaration above sanctions the
// canonical instance order.
func swap(lo, hi *pair) {
	lo.mu.Lock()
	hi.mu.Lock()
	hi.mu.Unlock()
	lo.mu.Unlock()
}

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x", L("p", "1"))
	b := reg.Counter("x_total", "x", L("p", "1"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := reg.Counter("x_total", "x", L("p", "2"))
	if a == c {
		t.Fatal("different labels must return distinct counters")
	}
	// Label order must not matter for identity.
	d := reg.Counter("y_total", "y", L("a", "1", "b", "2"))
	e := reg.Counter("y_total", "y", L("b", "2", "a", "1"))
	if d != e {
		t.Fatal("label order must not affect series identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total", "z", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering z_total as a gauge should panic")
		}
	}()
	reg.Gauge("z_total", "z", nil)
}

// TestRegistryConcurrency exercises registration, updates and exposition
// from many goroutines at once; run under -race it is the registry's
// thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const iters = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Re-resolving through the registry each time exercises
				// the family/series lookup paths, not just the atomics.
				reg.Counter("conc_total", "shared counter", nil).Inc()
				reg.Counter("conc_labeled_total", "per-goroutine",
					L("g", fmt.Sprint(g))).Inc()
				reg.Gauge("conc_gauge", "gauge", nil).Set(int64(i))
				reg.Histogram("conc_seconds", "hist", nil, nil).Observe(float64(i) / iters)
			}
		}(g)
	}
	// Scrape concurrently with the writers.
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			reg.WritePrometheus(&buf)
			reg.WriteJSON(&bytes.Buffer{})
		}
	}()
	wg.Wait()
	scrape.Wait()

	if got := reg.Counter("conc_total", "shared counter", nil).Value(); got != goroutines*iters {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*iters)
	}
	for g := 0; g < goroutines; g++ {
		if got := reg.Counter("conc_labeled_total", "per-goroutine", L("g", fmt.Sprint(g))).Value(); got != iters {
			t.Fatalf("labeled counter g=%d = %d, want %d", g, got, iters)
		}
	}
	if got := reg.Histogram("conc_seconds", "hist", nil, nil).Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
}

func TestCounterFuncAndGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	n := uint64(41)
	reg.CounterFunc("ext_total", "externally owned", nil, func() uint64 { return n })
	reg.GaugeFunc("ext_gauge", "computed", nil, func() float64 { return 2.5 })
	n++
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, "ext_total 42\n") {
		t.Errorf("counter func not read at scrape time:\n%s", out)
	}
	if !strings.Contains(out, "ext_gauge 2.5\n") {
		t.Errorf("gauge func missing:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("j_total", "j", L("k", "v")).Add(3)
	h := reg.Histogram("j_seconds", "lat", nil, []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if got := out[`j_total{k="v"}`]; got != float64(3) {
		t.Errorf("j_total = %v, want 3", got)
	}
	hist, ok := out["j_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("j_seconds missing or not an object: %v", out["j_seconds"])
	}
	if hist["count"] != float64(2) {
		t.Errorf("histogram count = %v, want 2", hist["count"])
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "esc", L("v", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if want := `esc_total{v="a\"b\\c\nd"} 1`; !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped series %q missing:\n%s", want, buf.String())
	}
}

// Package core implements the summary-cache protocol of Fan, Cao, Almeida
// and Broder (SIGCOMM '98) as a reusable library: each proxy maintains a
// counting-Bloom-filter summary of its own cache directory (Directory),
// holds plain-filter replicas of every peer's summary (PeerTable), and
// binds the two to the ICP transport as the summary-cache enhanced ICP
// node (Node). On a local miss the node probes the peer summaries and
// queries only the proxies whose summaries show promise — the mechanism
// that cuts inter-proxy messages by the paper's factor of 25–60 versus
// query-everyone ICP.
package core

import (
	"fmt"
	"sync/atomic"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
)

// DirectoryConfig sizes a local directory summary.
type DirectoryConfig struct {
	// ExpectedDocs is the anticipated number of cached documents
	// (cache bytes / average document size; the paper uses 8 KB).
	ExpectedDocs uint64
	// LoadFactor is bits per expected document (paper recommends 8–16;
	// default 16).
	LoadFactor float64
	// HashSpec is the Bloom hash family (default: 4 × 32-bit MD5 groups).
	HashSpec hashing.Spec
	// CounterBits is the counting-filter width (default 4, per §V-C).
	CounterBits uint
	// UpdateThreshold delays publication until this fraction of the
	// directory is new (paper recommends 0.01–0.10; default 0.01).
	UpdateThreshold float64
}

func (c *DirectoryConfig) applyDefaults() {
	if c.LoadFactor <= 0 {
		c.LoadFactor = 16
	}
	if c.HashSpec == (hashing.Spec{}) {
		c.HashSpec = hashing.DefaultSpec
	}
	if c.CounterBits == 0 {
		c.CounterBits = 4
	}
	if c.UpdateThreshold == 0 {
		c.UpdateThreshold = 0.01
	}
}

// Directory is a proxy's summary of its own cache: the authoritative
// counting filter, plus the journal of bit flips not yet published to
// peers. It is safe for concurrent use.
//
// There is no directory-wide mutex: Insert and Remove ride the counting
// filter's striped word locks (which also order the flip journal per bit),
// Contains is a lock-free probe, and the document counters driving the
// publication threshold are atomics. Concurrent inserts through a loaded
// proxy therefore never serialize on one lock.
type Directory struct {
	counting  *bloom.CountingFilter
	spec      hashing.Spec
	bits      uint64
	threshold float64
	docs      atomic.Int64 // current directory size in documents
	newDocs   atomic.Int64 // documents added since the last Drain
}

// NewDirectory builds a directory summary.
func NewDirectory(cfg DirectoryConfig) (*Directory, error) {
	cfg.applyDefaults()
	if cfg.UpdateThreshold < 0 || cfg.UpdateThreshold > 1 {
		return nil, fmt.Errorf("core: UpdateThreshold must be in [0,1], got %v", cfg.UpdateThreshold)
	}
	bits := bloom.SizeForLoadFactor(cfg.ExpectedDocs, cfg.LoadFactor)
	cf, err := bloom.NewCountingFilter(bits, cfg.CounterBits, cfg.HashSpec)
	if err != nil {
		return nil, err
	}
	cf.EnableJournal()
	return &Directory{
		counting:  cf,
		spec:      cfg.HashSpec,
		bits:      bits,
		threshold: cfg.UpdateThreshold,
	}, nil
}

// Spec returns the hash family specification carried in update headers.
func (d *Directory) Spec() hashing.Spec { return d.spec }

// Bits returns the bit-array size carried in update headers.
func (d *Directory) Bits() uint64 { return d.bits }

// Docs returns the number of documents currently summarized.
func (d *Directory) Docs() int {
	n := d.docs.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Insert records a document entering the cache.
func (d *Directory) Insert(url string) {
	d.counting.Add(url, nil)
	d.docs.Add(1)
	d.newDocs.Add(1)
}

// Remove records a document leaving the cache.
func (d *Directory) Remove(url string) {
	d.counting.Remove(url, nil)
	for {
		cur := d.docs.Load()
		if cur <= 0 || d.docs.CompareAndSwap(cur, cur-1) {
			break
		}
	}
}

// Contains probes the live local summary (used to answer peer queries
// cheaply is NOT its purpose — queries consult the real cache; this exists
// for diagnostics and tests). Lock-free.
func (d *Directory) Contains(url string) bool {
	return d.counting.Test(url)
}

// ShouldPublish reports whether enough of the directory is new that peers
// should be updated ("the update can occur ... when a certain percentage of
// the cached documents are not reflected in the summary").
func (d *Directory) ShouldPublish() bool {
	pending := d.counting.PendingFlips()
	newDocs := d.newDocs.Load()
	if newDocs == 0 && pending == 0 {
		return false
	}
	docs := d.docs.Load()
	if docs <= 0 {
		return pending > 0
	}
	return float64(newDocs) >= d.threshold*float64(docs)
}

// PendingFlips returns the number of unpublished bit flips.
func (d *Directory) PendingFlips() int {
	return d.counting.PendingFlips()
}

// Drain removes and returns the unpublished flip journal, resetting the
// new-document counter. The caller ships the flips to peers (or discards
// them for a peer that will receive a full snapshot instead).
func (d *Directory) Drain() []bloom.Flip {
	out := d.counting.DrainJournal()
	d.newDocs.Store(0)
	return out
}

// FilterSnapshot returns a copy of the directory's plain bit array — the
// authoritative state a peer's replica should equal once the mesh has
// converged (see PeerTable.ReplicaSnapshot).
func (d *Directory) FilterSnapshot() []byte {
	return d.counting.BitFilter().Snapshot()
}

// StateSnapshot serializes the directory's counting filter (counter
// words, entry count, saturation state) for warm-restart persistence.
// Under concurrent writers the capture is weakly consistent; journal
// replay and the protocol's tolerance of summary slop absorb the skew.
func (d *Directory) StateSnapshot() []byte {
	return d.counting.StateSnapshot()
}

// RestoreState loads a StateSnapshot blob taken by a previous run,
// replacing the directory's contents. The blob's filter geometry must
// match this directory's configuration (bloom.ErrStateMismatch
// otherwise — the caller then rebuilds by re-inserting the restored
// keys instead). The document count is restored from the filter's entry
// accounting; the publication journal restarts empty, as a recovered
// node re-announces full state anyway.
func (d *Directory) RestoreState(data []byte) error {
	if err := d.counting.RestoreState(data); err != nil {
		return err
	}
	d.docs.Store(int64(d.counting.Entries()))
	d.newDocs.Store(0)
	return nil
}

// Underflows reports decrement attempts that found a zero counter (see
// bloom.CountingFilter.Underflows) — nonzero only when crash recovery
// double-applied an eviction in the journal's overlap window.
func (d *Directory) Underflows() uint64 { return d.counting.Underflows() }

// SnapshotFlips returns the full current state as set-bit flips — what a
// newly joined or recovered peer needs after resetting its replica
// ("reinitializes a failed neighbor's bit array when it recovers"). The
// journal is unaffected.
func (d *Directory) SnapshotFlips() []bloom.Flip {
	f := d.counting.BitFilter()
	var flips []bloom.Flip
	snap := f.Snapshot()
	for byteIdx, b := range snap {
		for bit := 0; bit < 8; bit++ {
			if b&(1<<bit) != 0 {
				flips = append(flips, bloom.Flip{Index: uint32(byteIdx*8 + bit), Set: true})
			}
		}
	}
	return flips
}

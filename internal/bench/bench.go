// Package bench is the Go analog of the Wisconsin Proxy Benchmark setup
// the paper uses for its prototype experiments (§IV, §VII): fleets of
// client workers issue requests with configurable inherent hit ratio and
// heavy-tailed (Pareto) document sizes against a mesh of cooperating
// proxies backed by a latency-injecting origin, measuring hit ratios,
// client latency, process CPU time, and UDP/HTTP message counts — the
// columns of Tables II, IV and V. It also replays traces in the paper's
// two modes: client-bound (experiment 3) and round-robin (experiment 4).
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/faultnet"
	"summarycache/internal/httpproxy"
	"summarycache/internal/obs"
	"summarycache/internal/origin"
	"summarycache/internal/perfwatch"
	"summarycache/internal/stats"
	"summarycache/internal/trace"
	"summarycache/internal/tracing"
)

// SyntheticConfig parameterizes a Table II-style run. The paper's full
// setup is 4 proxies × 30 clients × 200 requests with a 1 s origin delay;
// tests scale these down and the ratios survive.
type SyntheticConfig struct {
	Mode              httpproxy.Mode
	Proxies           int
	ClientsPerProxy   int
	RequestsPerClient int
	// InherentHitRatio is the revisit probability in each client's request
	// stream (the paper runs 25% and 45%).
	InherentHitRatio float64
	// WarmupRequests, when positive, has every client issue that many
	// requests from the front of its stream before the measurement window
	// opens: caches fill, TCP connections establish, and full-state
	// summary pushes complete off the clock. All clients finish warming,
	// then the mesh counters are snapshotted, the wall/CPU clocks start,
	// and the clients resume in unison; Result reports only the timed
	// window (counters are snapshot-subtracted). 0 (the default) keeps the
	// legacy cold-start measurement, including setup traffic, exactly as
	// earlier revisions reported it.
	WarmupRequests int
	// Disjoint keeps different clients' URL spaces non-overlapping ("the
	// requests issued by different clients do not overlap; there is no
	// remote cache hit. This is the worst-case scenario for ICP").
	// Non-disjoint runs draw from one sharedUniverse-document universe so
	// different clients' streams overlap and remote hits arise.
	Disjoint bool
	// Sizes draws document sizes (zero value: the benchmark's Pareto).
	Sizes stats.Pareto
	// OriginLatency delays origin replies (paper: 1 s; scale down here).
	OriginLatency time.Duration
	// CacheBytes per proxy (paper: 75 MB).
	CacheBytes int64
	// UpdateThreshold for SC-ICP summaries (default 0.01).
	UpdateThreshold float64
	// MinUpdateFlips forwards to the SC-ICP packet-fill batching (0 keeps
	// the prototype's one-IP-packet default).
	MinUpdateFlips int
	Seed           int64
	// Chaos, when set, runs the benchmark under fault injection: each
	// proxy wraps its network edges with an injector built from
	// Chaos.Fork(i), and the proxies get a resilient fetch pipeline
	// (generous retries, tight backoff) so injected faults degrade to
	// retries and false hits rather than failed runs. Nil: no injection
	// layer is interposed at all.
	Chaos *faultnet.Scenario
	// Metrics, when set, is shared by every proxy in the mesh so one
	// admin endpoint (proxybench -admin) exposes the whole run; each
	// proxy's series are distinguished by its proxy="<addr>" label.
	Metrics *obs.Registry
	// Tracer, when set, is shared by every proxy in the mesh so
	// /debug/traces on the admin endpoint shows correlated request and
	// answer traces from the whole run. Nil: tracing disabled.
	Tracer *tracing.Tracer
	// Perf, when set, is shared by every proxy so the run's latency is
	// decomposed per stage and its SLOs evaluated; wire the same Watch as
	// Tracer's sink to get the span-level stages. Nil: no timing hooks.
	Perf *perfwatch.Watch
}

// sharedUniverse is the document count of the non-Disjoint synthetic
// workload: one modest universe, small enough that different clients'
// streams overlap (the source of remote hits) and the whole request table
// can be precomputed before the clock starts.
const sharedUniverse = 500

func (c *SyntheticConfig) applyDefaults() {
	if c.Proxies <= 0 {
		c.Proxies = 4
	}
	if c.ClientsPerProxy <= 0 {
		c.ClientsPerProxy = 30
	}
	if c.RequestsPerClient <= 0 {
		c.RequestsPerClient = 200
	}
	if c.Sizes == (stats.Pareto{}) {
		c.Sizes = stats.Pareto{Alpha: 1.1, Min: 1024, Max: 200 * 1024}
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 75 << 20
	}
	if c.UpdateThreshold == 0 {
		c.UpdateThreshold = 0.01
	}
}

// Result is one benchmark run's measurements — a column of Table II/IV/V.
type Result struct {
	Mode     httpproxy.Mode
	Requests uint64
	Wall     time.Duration

	HitRatio       float64 // (local + remote) / requests, across the mesh
	LocalHitRatio  float64
	RemoteHitRatio float64

	MeanLatency time.Duration
	P90Latency  time.Duration

	CPU CPUSample // process CPU consumed during the run

	// UDP totals across all proxies (the ICP traffic).
	UDPSent, UDPReceived       uint64
	UDPSentBytes, UDPRecvBytes uint64
	// HTTPMessages approximates TCP traffic at the application level.
	HTTPMessages uint64
	// OriginRequests counts fetches that reached the servers.
	OriginRequests uint64
	// Retries counts fetch attempts repeated after retryable failures
	// across the mesh (nonzero only under chaos or a flaky origin).
	Retries uint64
	// FaultsInjected totals the faults the chaos layer injected across
	// every proxy (zero when SyntheticConfig.Chaos is nil).
	FaultsInjected uint64
	// PerProxyRequests is each proxy's client-request count; LoadCV is
	// their coefficient of variation (stddev/mean) — the paper's Table
	// IV/V load-balance observation ("the proxies are more load-balanced
	// in the fourth experiment than in the third") made quantitative.
	PerProxyRequests []uint64
	LoadCV           float64
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-7v reqs=%-6d hit=%5.1f%% (L %5.1f%% R %5.1f%%) lat=%-8v udp=%d/%d http=%d cpu=%v+%v",
		r.Mode, r.Requests, 100*r.HitRatio, 100*r.LocalHitRatio, 100*r.RemoteHitRatio,
		r.MeanLatency.Round(time.Millisecond), r.UDPSent, r.UDPReceived, r.HTTPMessages,
		r.CPU.User.Round(10*time.Millisecond), r.CPU.System.Round(10*time.Millisecond))
}

// testbed is a running origin + proxy mesh.
type testbed struct {
	origin    *origin.Server
	proxies   []*httpproxy.Proxy
	injectors []*faultnet.Injector // non-empty only under chaos
	client    *http.Client
}

func newTestbed(mode httpproxy.Mode, proxies int, cacheBytes int64, originLatency time.Duration, threshold float64, minFlips int, chaos *faultnet.Scenario, reg *obs.Registry, tracer *tracing.Tracer, perf *perfwatch.Watch) (*testbed, error) {
	org, err := origin.Start(origin.Config{Latency: originLatency})
	if err != nil {
		return nil, err
	}
	tb := &testbed{origin: org, client: &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 256, MaxIdleConns: 1024},
	}}
	for i := 0; i < proxies; i++ {
		cfg := httpproxy.Config{
			Mode:       mode,
			CacheBytes: cacheBytes,
			Summary: core.DirectoryConfig{
				ExpectedDocs:    uint64(cacheBytes / 8192),
				LoadFactor:      16,
				UpdateThreshold: threshold,
			},
			MinUpdateFlips: minFlips,
			QueryTimeout:   2 * time.Second,
			Metrics:        reg,
			Tracer:         tracer,
			Perf:           perf,
		}
		if chaos != nil {
			inj := faultnet.New(chaos.Fork(int64(i)))
			tb.injectors = append(tb.injectors, inj)
			cfg.Faults = inj
			// Ride out the injected faults: retries absorb transient
			// fetch failures so the run measures degradation, not deaths.
			cfg.FetchTimeout = 5 * time.Second
			cfg.FetchRetries = 8
			cfg.FetchBackoff = 2 * time.Millisecond
		}
		p, err := httpproxy.Start(cfg)
		if err != nil {
			tb.Close()
			return nil, err
		}
		tb.proxies = append(tb.proxies, p)
	}
	if mode != httpproxy.ModeNone {
		for i, p := range tb.proxies {
			for j, q := range tb.proxies {
				if i != j {
					if err := p.AddPeer(q.ICPAddr(), q.URL()); err != nil {
						tb.Close()
						return nil, err
					}
				}
			}
		}
	}
	return tb, nil
}

// Close tears the testbed down. Teardown errors are dropped: the bench
// run's results are already collected by the time the mesh is dismantled.
func (tb *testbed) Close() {
	for _, p := range tb.proxies {
		_ = p.Close()
	}
	if tb.origin != nil {
		_ = tb.origin.Close()
	}
}

// get issues one request through a proxy and returns its latency.
func (tb *testbed) get(p *httpproxy.Proxy, target string) (time.Duration, error) {
	return tb.getURL(p.URL() + httpproxy.ProxyPath + "?url=" + url.QueryEscape(target))
}

// getURL issues one pre-built proxy request and returns its latency; the
// synthetic client loop builds (or reuses) its URLs up front so the timed
// window measures the mesh, not the harness's string formatting.
func (tb *testbed) getURL(u string) (time.Duration, error) {
	//lint:ignore sclint/determinism latency measurement is the benchmark's output, not a replayed decision
	start := time.Now()
	resp, err := tb.client.Get(u)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("bench: proxy status %d for %s", resp.StatusCode, u)
	}
	//lint:ignore sclint/determinism per-request wall latency is the benchmark's measured output
	return time.Since(start), nil
}

// meshSnapshot freezes the testbed's counters at the start of a timed
// window so collect can report deltas; the zero value subtracts nothing
// (the legacy whole-run accounting).
type meshSnapshot struct {
	proxies    []httpproxy.Stats
	originReqs uint64
	faults     uint64
}

// snapshot captures the current mesh-wide counters.
func (tb *testbed) snapshot() meshSnapshot {
	s := meshSnapshot{originReqs: tb.origin.Stats().Requests}
	for _, p := range tb.proxies {
		s.proxies = append(s.proxies, p.Stats())
	}
	for _, inj := range tb.injectors {
		s.faults += inj.Total()
	}
	return s
}

// collect aggregates mesh-wide counters into r, subtracting base (taken
// when the measurement window opened) so warmup traffic does not pollute
// the reported figures.
func (tb *testbed) collect(r *Result, base meshSnapshot) {
	baseProxy := func(i int) httpproxy.Stats {
		if i < len(base.proxies) {
			return base.proxies[i]
		}
		return httpproxy.Stats{}
	}
	var clientReqs, localHits, remoteHits uint64
	for i, p := range tb.proxies {
		st, b := p.Stats(), baseProxy(i)
		clientReqs += st.ClientRequests - b.ClientRequests
		localHits += st.LocalHits - b.LocalHits
		remoteHits += st.RemoteHits - b.RemoteHits
		r.UDPSent += st.UDP.Sent - b.UDP.Sent
		r.UDPReceived += st.UDP.Received - b.UDP.Received
		r.UDPSentBytes += st.UDP.SentBytes - b.UDP.SentBytes
		r.UDPRecvBytes += st.UDP.RecvBytes - b.UDP.RecvBytes
		r.HTTPMessages += st.HTTPMessages - b.HTTPMessages
		r.Retries += st.Retries - b.Retries
	}
	for _, inj := range tb.injectors {
		r.FaultsInjected += inj.Total()
	}
	r.FaultsInjected -= base.faults
	r.Requests = clientReqs
	if clientReqs > 0 {
		r.HitRatio = float64(localHits+remoteHits) / float64(clientReqs)
		r.LocalHitRatio = float64(localHits) / float64(clientReqs)
		r.RemoteHitRatio = float64(remoteHits) / float64(clientReqs)
	}
	r.OriginRequests = tb.origin.Stats().Requests - base.originReqs

	var w stats.Welford
	for i, p := range tb.proxies {
		n := p.Stats().ClientRequests - baseProxy(i).ClientRequests
		r.PerProxyRequests = append(r.PerProxyRequests, n)
		w.Add(float64(n))
	}
	if w.Mean() > 0 {
		r.LoadCV = w.Stddev() / w.Mean()
	}
}

// RunSynthetic executes one Table II-style benchmark run.
func RunSynthetic(cfg SyntheticConfig) (Result, error) {
	cfg.applyDefaults()
	tb, err := newTestbed(cfg.Mode, cfg.Proxies, cfg.CacheBytes, cfg.OriginLatency, cfg.UpdateThreshold, cfg.MinUpdateFlips, cfg.Chaos, cfg.Metrics, cfg.Tracer, cfg.Perf)
	if err != nil {
		return Result{}, err
	}
	defer tb.Close()

	warm := cfg.WarmupRequests
	if warm < 0 {
		warm = 0
	}
	var lat stats.LatencyRecorder
	var wg, warmWG sync.WaitGroup
	warmWG.Add(cfg.Proxies * cfg.ClientsPerProxy)
	startTimed := make(chan struct{})
	errCh := make(chan error, cfg.Proxies*cfg.ClientsPerProxy)

	// Shared universe: every document's size and URL is a pure function of
	// its index, so the whole request table — per proxy, down to the final
	// escaped form — is built once here. Doing this per request (a PRNG
	// re-seed, a Pareto sample, two Sprintfs and a QueryEscape) used to
	// charge the harness's string formatting to the mesh's throughput.
	var sharedReqs [][]string
	if !cfg.Disjoint {
		targets := make([]string, sharedUniverse)
		for doc := range targets {
			// A document's size must not vary with the requester, or each
			// variant would be a distinct URL and overlap would vanish.
			size := cfg.Sizes.Sample(rand.New(rand.NewSource(int64(doc) + 917)))
			targets[doc] = origin.DocURL(tb.origin.URL(), fmt.Sprintf("c0/doc%d", doc), size, 0)
		}
		sharedReqs = make([][]string, cfg.Proxies)
		for pi := range sharedReqs {
			base := tb.proxies[pi].URL() + httpproxy.ProxyPath + "?url="
			reqs := make([]string, len(targets))
			for d, t := range targets {
				reqs[d] = base + url.QueryEscape(t)
			}
			sharedReqs[pi] = reqs
		}
	}

	clientID := 0
	for pi := 0; pi < cfg.Proxies; pi++ {
		for ci := 0; ci < cfg.ClientsPerProxy; ci++ {
			wg.Add(1)
			go func(proxy *httpproxy.Proxy, pi, id int) {
				defer wg.Done()
				warmed := false
				finishWarm := func() {
					if !warmed {
						warmed = true
						warmWG.Done()
					}
				}
				// An early error must still release the warmup barrier or
				// the coordinator would wait forever.
				defer finishWarm()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
				proxyBase := proxy.URL() + httpproxy.ProxyPath + "?url="
				var history []string
				for i := 0; i < warm+cfg.RequestsPerClient; i++ {
					if i == warm {
						// Warmup done: report in and hold until every
						// client is ready, so the timed window measures
						// only concurrent steady-state traffic.
						finishWarm()
						<-startTimed
					}
					var reqURL string
					if len(history) > 0 && rng.Float64() < cfg.InherentHitRatio {
						reqURL = history[rng.Intn(len(history))]
					} else {
						// Disjoint: per-client namespaces with effectively
						// unique documents (the Table II worst case).
						// Shared: one modest universe so different clients'
						// streams overlap and remote hits arise.
						if cfg.Disjoint {
							doc := rng.Intn(1 << 30)
							target := origin.DocURL(tb.origin.URL(),
								fmt.Sprintf("c%d/doc%d", id, doc),
								cfg.Sizes.Sample(rng), 0)
							reqURL = proxyBase + url.QueryEscape(target)
						} else {
							reqURL = sharedReqs[pi][rng.Intn(sharedUniverse)]
						}
						history = append(history, reqURL)
					}
					d, err := tb.getURL(reqURL)
					if err != nil {
						errCh <- err
						return
					}
					if i >= warm {
						lat.Record(d)
					}
				}
			}(tb.proxies[pi], pi, clientID)
			clientID++
		}
	}
	warmWG.Wait()
	var base meshSnapshot
	if warm > 0 {
		// Only a warmed run subtracts a baseline: the legacy cold-start
		// accounting (including mesh bootstrap traffic) stays bit-identical
		// for WarmupRequests == 0.
		base = tb.snapshot()
	}
	cpuStart := ReadCPU()
	//lint:ignore sclint/determinism wall-clock throughput is the benchmark's measured output
	wallStart := time.Now()
	close(startTimed)
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return Result{}, err
	}

	//lint:ignore sclint/determinism wall-clock run time is the benchmark's measured output
	res := Result{Mode: cfg.Mode, Wall: time.Since(wallStart)}
	res.CPU = ReadCPU().Sub(cpuStart)
	res.MeanLatency = lat.Mean()
	res.P90Latency = lat.Percentile(90)
	tb.collect(&res, base)
	return res, nil
}

// Assignment selects how trace requests map onto client workers.
type Assignment int

// The two replay modes of §VII.
const (
	// ClientBound preserves the binding between a trace client and its
	// requests; all of a client's requests go through the same proxy
	// (experiment 3 — order across clients is not preserved).
	ClientBound Assignment = iota
	// RoundRobin hands requests to workers round-robin regardless of the
	// originating client, preserving global order but not client binding
	// (experiment 4 — proxies are more load-balanced).
	RoundRobin
)

// String implements fmt.Stringer.
func (a Assignment) String() string {
	if a == ClientBound {
		return "client-bound"
	}
	return "round-robin"
}

// ReplayConfig parameterizes a trace-replay run (Tables IV and V).
type ReplayConfig struct {
	Mode    httpproxy.Mode
	Proxies int
	// Workers is the number of client processes (paper: 80 across 4
	// workstations).
	Workers    int
	Assignment Assignment
	// Trace supplies the requests; URLs are mapped onto the synthetic
	// origin, carrying each request's size ("each request's URL carries
	// the size of the request in the trace file, and the server replies
	// with the specified number of bytes").
	Trace         []trace.Request
	OriginLatency time.Duration
	CacheBytes    int64
	// UpdateThreshold for SC-ICP summaries (default 0.01).
	UpdateThreshold float64
	// MinUpdateFlips forwards to the SC-ICP packet-fill batching.
	MinUpdateFlips int
	// Chaos runs the replay under fault injection (see
	// SyntheticConfig.Chaos).
	Chaos *faultnet.Scenario
	// Metrics, when set, is shared by every proxy in the mesh (see
	// SyntheticConfig.Metrics).
	Metrics *obs.Registry
	// Tracer, when set, is shared by every proxy (see
	// SyntheticConfig.Tracer).
	Tracer *tracing.Tracer
	// Perf, when set, is shared by every proxy (see
	// SyntheticConfig.Perf).
	Perf *perfwatch.Watch
}

// RunReplay executes one trace-replay benchmark run.
func RunReplay(cfg ReplayConfig) (Result, error) {
	if cfg.Proxies <= 0 {
		cfg.Proxies = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 80
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 75 << 20
	}
	if cfg.UpdateThreshold == 0 {
		cfg.UpdateThreshold = 0.01
	}
	if len(cfg.Trace) == 0 {
		return Result{}, fmt.Errorf("bench: empty trace")
	}
	tb, err := newTestbed(cfg.Mode, cfg.Proxies, cfg.CacheBytes, cfg.OriginLatency, cfg.UpdateThreshold, cfg.MinUpdateFlips, cfg.Chaos, cfg.Metrics, cfg.Tracer, cfg.Perf)
	if err != nil {
		return Result{}, err
	}
	defer tb.Close()

	// Partition the trace across workers.
	queues := make([][]trace.Request, cfg.Workers)
	switch cfg.Assignment {
	case ClientBound:
		// A trace client's stream stays intact on one worker (and hence
		// one proxy).
		for _, req := range cfg.Trace {
			w := req.Group(cfg.Workers)
			queues[w] = append(queues[w], req)
		}
	case RoundRobin:
		for i, req := range cfg.Trace {
			queues[i%cfg.Workers] = append(queues[i%cfg.Workers], req)
		}
	default:
		return Result{}, fmt.Errorf("bench: unknown assignment %v", cfg.Assignment)
	}

	var lat stats.LatencyRecorder
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers)
	cpuStart := ReadCPU()
	//lint:ignore sclint/determinism wall-clock throughput is the benchmark's measured output
	wallStart := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		if len(queues[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, reqs []trace.Request) {
			defer wg.Done()
			proxy := tb.proxies[w%cfg.Proxies]
			for _, req := range reqs {
				target := origin.DocURL(tb.origin.URL(), "t/"+url.PathEscape(req.URL), req.Size, req.Version)
				d, err := tb.get(proxy, target)
				if err != nil {
					errCh <- err
					return
				}
				lat.Record(d)
			}
		}(w, queues[w])
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return Result{}, err
	}

	//lint:ignore sclint/determinism wall-clock run time is the benchmark's measured output
	res := Result{Mode: cfg.Mode, Wall: time.Since(wallStart)}
	res.CPU = ReadCPU().Sub(cpuStart)
	res.MeanLatency = lat.Mean()
	res.P90Latency = lat.Percentile(90)
	tb.collect(&res, meshSnapshot{})
	return res, nil
}

// Package leakcheck verifies that a test leaves no goroutines behind.
// It is stdlib-only: a snapshot of live goroutine stacks before the test
// body runs is diffed against the stacks at cleanup time, with a short
// retry window so goroutines that are mid-shutdown get a chance to exit.
//
// Usage, first thing in the test body so the cleanup runs last:
//
//	func TestSoak(t *testing.T) {
//		leakcheck.Install(t)
//		...
//	}
//
// Goroutines belonging to the runtime, the testing framework, or
// net/http's shared transport pool are filtered as benign; everything
// else that outlives the test is reported with its full stack.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Snapshot records the goroutines alive at one instant, keyed by ID.
type Snapshot struct {
	ids map[int64]bool
}

// Take captures the current goroutine set.
func Take() Snapshot {
	ids := map[int64]bool{}
	for _, g := range stacks() {
		ids[g.id] = true
	}
	return Snapshot{ids: ids}
}

// Install takes a snapshot now and registers a cleanup that fails the
// test if extra goroutines survive. Call it before any other t.Cleanup
// registration (cleanups run LIFO, so the first registered runs last,
// after the test's own teardown has stopped its goroutines).
func Install(t testing.TB) {
	t.Helper()
	snap := Take()
	t.Cleanup(func() { Check(t, snap) })
}

// Check fails t if goroutines not present in snap (and not benign) are
// still running. It retries for up to five seconds: shutdown is
// signalled before it completes, so the first look often races the
// final returns.
func Check(t testing.TB, snap Snapshot) {
	t.Helper()
	leaked := wait(snap, 5*time.Second)
	for _, g := range leaked {
		t.Errorf("leaked goroutine %d [%s]:\n%s", g.id, g.state, g.stack)
	}
}

// wait polls with backoff until no leaks remain or the deadline passes,
// returning whatever is still alive.
func wait(snap Snapshot, timeout time.Duration) []goroutine {
	deadline := time.Now().Add(timeout)
	delay := time.Millisecond
	for {
		leaked := diff(snap)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// diff returns the non-benign goroutines alive now that were not in snap.
func diff(snap Snapshot) []goroutine {
	var leaked []goroutine
	for _, g := range stacks() {
		if snap.ids[g.id] || benign(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// goroutine is one parsed runtime.Stack block.
type goroutine struct {
	id    int64
	state string
	stack string
}

// stacks parses runtime.Stack(buf, true) output: blocks separated by
// blank lines, each headed "goroutine N [state]:".
func stacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		g, ok := parseBlock(block)
		if ok {
			out = append(out, g)
		}
	}
	return out
}

// parseBlock extracts the ID and state from one stack block whose
// header reads `goroutine N [state]:` (blocked states carry a duration,
// "[chan receive, 2 minutes]").
func parseBlock(block string) (goroutine, bool) {
	block = strings.TrimSpace(block)
	header, rest, _ := strings.Cut(block, "\n")
	numAndState, ok := strings.CutPrefix(header, "goroutine ")
	if !ok {
		return goroutine{}, false
	}
	num, state, ok := strings.Cut(numAndState, " [")
	if !ok {
		return goroutine{}, false
	}
	var id int64
	if _, err := fmt.Sscanf(num, "%d", &id); err != nil {
		return goroutine{}, false
	}
	state, _, _ = strings.Cut(strings.TrimSuffix(state, "]:"), ",")
	return goroutine{id: id, state: state, stack: rest}, true
}

// benign reports whether a goroutine belongs to infrastructure that
// legitimately outlives a single test: the runtime, the testing
// framework itself, signal handling, and net/http's idle connection
// pool (persistConn readers/writers park until the global transport
// closes them).
func benign(g goroutine) bool {
	if g.state == "running" && strings.Contains(g.stack, "runtime.Stack") {
		return true // the snapshotting goroutine itself
	}
	for _, marker := range []string{
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.tRunner",
		"testing.runTests",
		"os/signal.signal_recv",
		"os/signal.loop",
		"runtime.goexit0",
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"net/http.(*persistConn).readLoop",
		"net/http.(*persistConn).writeLoop",
		"net/http.(*Transport).dialConn",
		"net/http.setRequestCancel",
	} {
		if strings.Contains(g.stack, marker) {
			return true
		}
	}
	return false
}

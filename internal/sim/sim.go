// Package sim is the trace-driven cache-sharing simulator behind the
// paper's evaluation: it replays an HTTP request trace against a mesh of
// cooperating proxy caches and reports hit ratios, error ratios (false
// hits, false misses, remote stale hits), inter-proxy message counts and
// message bytes under each cooperation scheme (Fig. 1) and each summary
// representation (Figs. 2, 5–8; Table III).
package sim

import (
	"fmt"

	"summarycache/internal/hashing"
)

// Scheme selects the cooperation model of §III.
type Scheme int

// The four cooperation schemes of Figure 1 (plus the shrunken-global
// control the paper adds to quantify duplicate-copy waste).
const (
	// NoSharing: proxies operate independently.
	NoSharing Scheme = iota
	// SimpleSharing: proxies serve each other's misses and the requester
	// caches fetched documents locally too (ICP-style; duplicate copies).
	SimpleSharing
	// SingleCopySharing: remote hits are served without the requester
	// caching a duplicate; the owner promotes the document instead.
	SingleCopySharing
	// GlobalCache: one unified cache of the combined size with global LRU.
	GlobalCache
	// GlobalCacheShrunk: GlobalCache with 10% less total space, the
	// paper's control for the effective-cache-size effect of duplicates.
	GlobalCacheShrunk
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case NoSharing:
		return "no-sharing"
	case SimpleSharing:
		return "simple"
	case SingleCopySharing:
		return "single-copy"
	case GlobalCache:
		return "global"
	case GlobalCacheShrunk:
		return "global-10%"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// SummaryKind selects how proxies learn about each other's contents.
type SummaryKind int

// Summary representations evaluated in §V.
const (
	// Oracle consults peers' true current contents with no messages —
	// the idealized discovery used for the Fig. 1 scheme comparison.
	Oracle SummaryKind = iota
	// ICP sends a query to every peer on every local miss (the baseline).
	ICP
	// ExactDirectory keeps a delayed copy of each peer's URL directory
	// (16-byte MD5 signatures on the wire/in memory).
	ExactDirectory
	// ServerName keeps a delayed copy of the set of server names of each
	// peer's cached URLs.
	ServerName
	// Bloom keeps a delayed Bloom filter of each peer's directory — the
	// paper's summary-cache proposal — propagated as bit-flip deltas.
	Bloom
	// BloomDigest is the Squid "cache digest" variant the paper's §VI
	// describes: identical filters, but each update ships the whole bit
	// array instead of deltas ("if the delay threshold is large, then it
	// is more economical to send the entire bit array; this approach is
	// adopted in the Cache Digest prototype in Squid 1.2b20").
	BloomDigest
)

// String implements fmt.Stringer.
func (k SummaryKind) String() string {
	switch k {
	case Oracle:
		return "oracle"
	case ICP:
		return "ICP"
	case ExactDirectory:
		return "exact-directory"
	case ServerName:
		return "server-name"
	case Bloom:
		return "bloom"
	case BloomDigest:
		return "bloom-digest"
	default:
		return fmt.Sprintf("summary(%d)", int(k))
	}
}

// SummaryConfig parameterizes the summary representation.
type SummaryConfig struct {
	Kind SummaryKind
	// UpdateThreshold delays summary propagation until this fraction of
	// cached documents is new (paper's §V-A; e.g. 0.01 for 1%). Zero means
	// summaries update on every directory change.
	UpdateThreshold float64
	// MinUpdateDocs additionally delays propagation until at least this
	// many new documents have accumulated — the paper's prototype
	// behaviour of sending updates "whenever there are enough changes to
	// fill an IP packet" (≈90 documents at 4 flips each). Zero keeps the
	// pure threshold rule. This matters at simulation scales where caches
	// hold only hundreds of documents: in the paper's regime (million-
	// entry caches) a 1% threshold already batches thousands of documents
	// and the two rules coincide.
	MinUpdateDocs int
	// LoadFactor is the Bloom bits-per-expected-entry ratio (paper: 8, 16,
	// 32). Only used by Bloom. Default 16.
	LoadFactor float64
	// HashSpec configures the Bloom hash family. Zero value means the
	// paper's default (4 functions × 32 bits of MD5).
	HashSpec hashing.Spec
	// CounterBits configures the local counting filter (default 4).
	CounterBits uint
	// AvgDocBytes estimates entries = cacheBytes/AvgDocBytes when sizing
	// the Bloom filter (paper: 8 KB). Default 8192.
	AvgDocBytes int64
}

func (sc *SummaryConfig) applyDefaults() {
	if sc.LoadFactor <= 0 {
		sc.LoadFactor = 16
	}
	if sc.HashSpec == (hashing.Spec{}) {
		sc.HashSpec = hashing.DefaultSpec
	}
	if sc.CounterBits == 0 {
		sc.CounterBits = 4
	}
	if sc.AvgDocBytes <= 0 {
		sc.AvgDocBytes = 8192
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// NumProxies is the number of cooperating proxies; clients are mapped
	// to proxies by clientID mod NumProxies (the paper's grouping rule).
	NumProxies int
	// CacheBytes is the per-proxy cache capacity in bytes.
	CacheBytes int64
	// MaxObjectSize caps cacheable documents (0: the paper's 250 KB;
	// negative: unlimited).
	MaxObjectSize int64
	// Scheme selects the cooperation model.
	Scheme Scheme
	// Summary configures content discovery for the sharing schemes.
	Summary SummaryConfig
	// ParentCacheBytes, when positive, adds a parent proxy above the mesh
	// (the hierarchical configuration of the paper's §VIII: children
	// forward misses the siblings cannot serve to a parent, which may
	// fetch from the origin). Zero disables the parent.
	ParentCacheBytes int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumProxies <= 0 {
		return fmt.Errorf("sim: NumProxies must be positive, got %d", c.NumProxies)
	}
	if c.CacheBytes <= 0 {
		return fmt.Errorf("sim: CacheBytes must be positive, got %d", c.CacheBytes)
	}
	if c.Summary.UpdateThreshold < 0 || c.Summary.UpdateThreshold > 1 {
		return fmt.Errorf("sim: UpdateThreshold must be in [0,1], got %v", c.Summary.UpdateThreshold)
	}
	return nil
}

// MessageModel holds the byte-size accounting constants of §V-D ("The
// average size of query messages in both ICP and other approaches is
// assumed to be 20 bytes of header and 50 bytes of average URL. The size of
// summary updates in exact-directory and server-name is assumed to be 20
// bytes of header and 16 bytes per change. The size of summary updates in
// Bloom filter based summaries is estimated at 32 bytes of header plus 4
// bytes per bit-flip."). We use the actual URL length instead of the 50-
// byte average.
type MessageModel struct {
	QueryHeader       int // per query/reply message
	DirUpdateHeader   int // exact-directory / server-name update header
	DirUpdatePerEntry int // bytes per directory change
	BloomUpdateHeader int // Bloom update header (the DIRUPDATE header)
	BloomUpdatePerBit int // bytes per bit-flip record
}

// PaperMessageModel is the accounting used for Figure 8.
var PaperMessageModel = MessageModel{
	QueryHeader:       20,
	DirUpdateHeader:   20,
	DirUpdatePerEntry: 16,
	BloomUpdateHeader: 32,
	BloomUpdatePerBit: 4,
}

// Result aggregates one run's metrics.
type Result struct {
	Config Config

	Requests uint64
	// Hits by where they were served.
	LocalHits  uint64
	RemoteHits uint64
	// Byte accounting ("results on byte hit ratios are very similar").
	RequestBytes uint64
	HitBytes     uint64
	// Error events.
	ParentHits      uint64 // misses served by the parent proxy's cache
	FalseHits       uint64 // summary said yes, no peer had a usable copy
	FalseMisses     uint64 // summary said no, a peer had a fresh copy
	RemoteStaleHits uint64 // a probed peer had only a stale copy
	LocalStale      uint64 // local copy present but stale (counted a miss)

	// Protocol traffic (queries exclude the HTTP fetch of remote hits,
	// matching the paper).
	QueryMessages  uint64
	ReplyMessages  uint64
	UpdateMessages uint64
	QueryBytes     uint64
	UpdateBytes    uint64

	// SummaryMemoryBytes is the per-proxy memory to store ONE peer summary
	// (multiply by NumProxies-1 for the full table), plus counters for the
	// local filter where applicable.
	SummaryMemoryBytes  uint64
	CounterMemoryBytes  uint64
	UpdateEvents        uint64 // summary publications (each fans out N-1 messages)
	BitsFlippedPerEvent float64
	// CounterSaturations counts increments that found an already-saturated
	// counting-filter counter (Bloom kinds; §V-C's overflow events).
	CounterSaturations uint64
}

// TotalHits returns local + remote hits (the paper's "total cache hit
// ratio" numerator; parent hits are reported separately).
func (r Result) TotalHits() uint64 { return r.LocalHits + r.RemoteHits }

// ByteHitRatio returns the fraction of requested bytes served from some
// cache (local or remote) — the quantity the paper reports as "similar" to
// the document hit ratio.
func (r Result) ByteHitRatio() float64 {
	if r.RequestBytes == 0 {
		return 0
	}
	return float64(r.HitBytes) / float64(r.RequestBytes)
}

// ParentHitRatio returns parent-cache hits per request.
func (r Result) ParentHitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.ParentHits) / float64(r.Requests)
}

// HitRatio returns the total cache hit ratio (local + remote), the
// quantity plotted in Figs. 1, 2 and 5.
func (r Result) HitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.TotalHits()) / float64(r.Requests)
}

// LocalHitRatio returns the local-only hit ratio.
func (r Result) LocalHitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.LocalHits) / float64(r.Requests)
}

// FalseHitRatio returns false hits per request (Fig. 6).
func (r Result) FalseHitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.FalseHits) / float64(r.Requests)
}

// StaleHitRatio returns remote stale hits per request (Fig. 2's bottom curve).
func (r Result) StaleHitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.RemoteStaleHits) / float64(r.Requests)
}

// MessagesPerRequest returns protocol messages per user request (Fig. 7):
// queries plus summary-update messages.
func (r Result) MessagesPerRequest() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.QueryMessages+r.UpdateMessages) / float64(r.Requests)
}

// BytesPerRequest returns protocol bytes per user request (Fig. 8).
func (r Result) BytesPerRequest() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.QueryBytes+r.UpdateBytes) / float64(r.Requests)
}

// SummaryMemoryRatio returns the whole summary table's memory as a
// fraction of the proxy cache size (Table III): one summary per peer.
func (r Result) SummaryMemoryRatio() float64 {
	if r.Config.CacheBytes <= 0 {
		return 0
	}
	peers := uint64(r.Config.NumProxies - 1)
	return float64(r.SummaryMemoryBytes*peers) / float64(r.Config.CacheBytes)
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%v/%v n=%d hit=%.2f%% (local %.2f%% remote %.2f%%) falseHit=%.3f%% stale=%.3f%% msgs/req=%.3f bytes/req=%.1f",
		r.Config.Scheme, r.Config.Summary.Kind, r.Requests,
		100*r.HitRatio(), 100*r.LocalHitRatio(), 100*float64(r.RemoteHits)/float64(max64(r.Requests, 1)),
		100*r.FalseHitRatio(), 100*r.StaleHitRatio(),
		r.MessagesPerRequest(), r.BytesPerRequest())
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

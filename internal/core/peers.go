package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
	"summarycache/internal/icp"
)

// PeerTable holds this proxy's replicas of every neighbor's summary — "an
// additional bit array is added to the data structure for each neighbor.
// The structure is initialized when the first summary update message is
// received from the neighbor." Keys are opaque peer identifiers (the node
// layer uses UDP address strings). PeerTable is safe for concurrent use.
type PeerTable struct {
	mu        sync.RWMutex
	peers     map[string]*peerSummary
	onRebuild func(peer, reason string)
}

type peerSummary struct {
	filter *bloom.Filter
	spec   hashing.Spec
	// updates counts applied DIRUPDATE messages; it doubles as the
	// replica's generation in decision audits (a stale prediction names
	// the generation it was made against).
	updates uint64
	// changed is when the last update was applied — the replica's age.
	changed time.Time
}

// NewPeerTable creates an empty table.
func NewPeerTable() *PeerTable {
	return &PeerTable{peers: make(map[string]*peerSummary)}
}

// SetRebuildObserver installs a callback fired (outside the table lock)
// whenever a peer's replica filter is built from scratch: first contact,
// a geometry change announced in an update, or a full-state reset. The
// node layer uses it for the filter-rebuild counter and event log.
func (pt *PeerTable) SetRebuildObserver(fn func(peer, reason string)) {
	pt.mu.Lock()
	pt.onRebuild = fn
	pt.mu.Unlock()
}

// Len returns the number of peers with initialized summaries.
func (pt *PeerTable) Len() int {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	return len(pt.peers)
}

// Peers returns the known peer identifiers, sorted.
func (pt *PeerTable) Peers() []string {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	out := make([]string, 0, len(pt.peers))
	for id := range pt.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ApplyUpdate folds a decoded directory update from peer into its replica,
// creating or re-creating the replica when the update announces a new
// geometry (every update message carries the full hash specification "so
// that receivers can verify the information"). When full is true the
// replica is reset before applying — the full-state bootstrap a recovered
// neighbor sends.
func (pt *PeerTable) ApplyUpdate(peer string, u *icp.DirUpdate, full bool) error {
	if u == nil {
		return icp.ErrNotDirUpdate
	}
	if err := u.Spec.Validate(); err != nil {
		return fmt.Errorf("core: update from %s: %w", peer, err)
	}
	if u.Bits == 0 {
		return fmt.Errorf("core: update from %s announces empty bit array", peer)
	}
	pt.mu.Lock()
	rebuilt := ""
	ps := pt.peers[peer]
	if ps == nil || ps.spec != u.Spec || ps.filter.Size() != uint64(u.Bits) {
		f, err := bloom.NewFilter(uint64(u.Bits), u.Spec)
		if err != nil {
			pt.mu.Unlock()
			return fmt.Errorf("core: update from %s: %w", peer, err)
		}
		if ps == nil {
			rebuilt = "first-contact"
		} else {
			rebuilt = "geometry-change"
		}
		ps = &peerSummary{filter: f, spec: u.Spec}
		pt.peers[peer] = ps
	} else if full {
		ps.filter.Reset()
		rebuilt = "full-reset"
	}
	if err := ps.filter.Apply(u.Flips); err != nil {
		pt.mu.Unlock()
		return fmt.Errorf("core: update from %s: %w", peer, err)
	}
	ps.updates++
	ps.changed = time.Now()
	fn := pt.onRebuild
	pt.mu.Unlock()
	if rebuilt != "" && fn != nil {
		fn(peer, rebuilt)
	}
	return nil
}

// Candidates returns the peers whose summaries indicate url may be cached
// there — the set the node will actually query. Peers without an
// initialized summary are never candidates (no false misses result beyond
// those the delayed summary already causes: an uninitialized peer is
// treated as unknown, matching the prototype).
func (pt *PeerTable) Candidates(url string) []string {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	var out []string
	for id, ps := range pt.peers {
		if ps.filter.Test(url) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// SummaryProbe is the audited result of consulting one peer summary for
// one URL: the full evidence behind the nominate/skip decision, recorded
// in a trace's summary-probe span.
type SummaryProbe struct {
	// Peer is the replica's identifier (the node layer's UDP address).
	Peer string
	// Match is the summary's verdict: all probed bits set.
	Match bool
	// BitIndexes are the k bit positions probed, under the replica's
	// geometry.
	BitIndexes []uint64
	// Generation is the number of updates applied to the replica when it
	// was probed.
	Generation uint64
	// Age is how long ago the replica last changed.
	Age time.Duration
	// FilterBits is the replica's bit-array size.
	FilterBits uint64
}

// ProbeAll consults every initialized peer summary for url and returns
// the full audit: one SummaryProbe per peer, sorted, matching and
// non-matching alike. It is the traced sibling of Candidates — it
// allocates the evidence Candidates deliberately avoids, so the node only
// calls it for requests that carry a trace.
func (pt *PeerTable) ProbeAll(url string) []SummaryProbe {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	out := make([]SummaryProbe, 0, len(pt.peers))
	for id, ps := range pt.peers {
		idx := ps.filter.Indexes(url)
		out = append(out, SummaryProbe{
			Peer:       id,
			Match:      ps.filter.TestIndexes(idx),
			BitIndexes: idx,
			Generation: ps.updates,
			Age:        time.Since(ps.changed),
			FilterBits: ps.filter.Size(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Drop removes a peer's replica (Squid's neighbor-failure handling).
func (pt *PeerTable) Drop(peer string) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	delete(pt.peers, peer)
}

// ReplicaSnapshot returns a copy of the peer's replica bit array (and
// whether a replica exists). Chaos tests compare it against the peer's
// own Directory.FilterSnapshot to prove the mesh reconverged after a
// lossy episode.
func (pt *PeerTable) ReplicaSnapshot(peer string) ([]byte, bool) {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	ps := pt.peers[peer]
	if ps == nil {
		return nil, false
	}
	return ps.filter.Snapshot(), true
}

// Updates returns how many update messages have been applied for peer.
func (pt *PeerTable) Updates(peer string) uint64 {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	if ps := pt.peers[peer]; ps != nil {
		return ps.updates
	}
	return 0
}

// MemoryBytes returns the total bytes of all peer summary replicas — the
// quantity the paper's §V-F extrapolates to ~200 MB for 100 proxies.
func (pt *PeerTable) MemoryBytes() uint64 {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	var total uint64
	for _, ps := range pt.peers {
		total += (ps.filter.Size() + 7) / 8
	}
	return total
}

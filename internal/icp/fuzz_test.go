package icp

import (
	"reflect"
	"testing"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
)

// mustWire encodes m for use as a fuzz seed, panicking on the (impossible
// for the fixed corpus) error path.
func mustWire(tb testing.TB, m Message) []byte {
	tb.Helper()
	b, err := m.MarshalBinary()
	if err != nil {
		tb.Fatalf("encode seed: %v", err)
	}
	return b
}

// FuzzDecoder cross-checks the in-place Decoder against the allocating
// Parse on arbitrary input: both must agree on whether a datagram is
// well-formed, and on every field of the result when it is. The seeds
// mirror the wire_test.go round-trip corpus plus its malformed vectors.
func FuzzDecoder(f *testing.F) {
	f.Add(mustWire(f, NewQuery(1, "http://example.com/a")))
	f.Add(mustWire(f, NewReply(OpHit, 2, "http://example.com/a")))
	f.Add(mustWire(f, NewReply(OpMiss, 3, "http://example.com/b")))
	f.Add(mustWire(f, NewDirUpdate(4, hashing.DefaultSpec, 1<<20, []bloom.Flip{
		{Index: 0, Set: true},
		{Index: 12345, Set: false},
		{Index: 1<<31 - 1, Set: true},
	})))
	f.Add(mustWire(f, NewDirUpdate(5, hashing.DefaultSpec, 1<<20, nil)))
	// Malformed vectors: short header, bad version, length mismatch,
	// unterminated URL, truncated flip table.
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(func() []byte {
		b := mustWire(f, NewQuery(6, "http://example.com/c"))
		b[1] = 99 // version
		return b
	}())
	f.Add(func() []byte {
		b := mustWire(f, NewQuery(7, "http://example.com/d"))
		return b[:len(b)-1] // drop the NUL
	}())
	f.Add(func() []byte {
		b := mustWire(f, NewDirUpdate(8, hashing.DefaultSpec, 1<<20, []bloom.Flip{{Index: 9, Set: true}}))
		return b[:len(b)-2] // truncate the flip table
	}())

	f.Fuzz(func(t *testing.T, b []byte) {
		want, wantErr := Parse(b)

		var dec Decoder
		got, gotErr := dec.Decode(b)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error disagreement: Parse=%v Decode=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		checkEqual(t, "fresh decoder", got, want)

		// A reused decoder must behave identically: decode something else
		// first so the scratch is dirty, then decode b again.
		scrap := mustWire(t, NewDirUpdate(9, hashing.DefaultSpec, 1<<20, []bloom.Flip{
			{Index: 7, Set: true}, {Index: 8, Set: false}, {Index: 9, Set: true},
		}))
		if _, err := dec.Decode(scrap); err != nil {
			t.Fatalf("decode scrap: %v", err)
		}
		again, err := dec.Decode(b)
		if err != nil {
			t.Fatalf("reused decoder rejected input Parse accepted: %v", err)
		}
		checkEqual(t, "reused decoder", again, want)

		// Round-trip stability: re-encoding a successful decode must
		// reproduce the canonical wire form of the parsed message.
		kept := again.Clone()
		re, err := kept.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		canon, err := want.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode parsed: %v", err)
		}
		if !reflect.DeepEqual(re, canon) {
			t.Fatalf("re-encode mismatch:\n decoder: %x\n parse:   %x", re, canon)
		}
	})
}

// checkEqual asserts two decoded Messages agree field-for-field, comparing
// Update payloads by value rather than pointer.
func checkEqual(t *testing.T, label string, got, want Message) {
	t.Helper()
	gu, wu := got.Update, want.Update
	got.Update, want.Update = nil, nil
	if got != want {
		t.Fatalf("%s: message mismatch:\n got  %+v\n want %+v", label, got, want)
	}
	if (gu == nil) != (wu == nil) {
		t.Fatalf("%s: update presence mismatch: got %v want %v", label, gu, wu)
	}
	if gu == nil {
		return
	}
	if gu.Spec != wu.Spec || gu.Bits != wu.Bits {
		t.Fatalf("%s: update header mismatch:\n got  %+v\n want %+v", label, gu, wu)
	}
	if len(gu.Flips) != len(wu.Flips) {
		t.Fatalf("%s: flip count mismatch: got %d want %d", label, len(gu.Flips), len(wu.Flips))
	}
	for i := range gu.Flips {
		if gu.Flips[i] != wu.Flips[i] {
			t.Fatalf("%s: flip %d mismatch: got %+v want %+v", label, i, gu.Flips[i], wu.Flips[i])
		}
	}
}

// Package pos leaks borrowed messages every way the rule catches:
// stores through the receiver, package state, channel sends, goroutine
// hand-offs and captures, retaining callees, and a freshly decoded
// message kept past the decode window.
package pos

import (
	"net"

	"borrowescape/internal/icp"
)

var lastUpdate *icp.DirUpdate

type recorder struct {
	last icp.Message
	ch   chan icp.Message
}

// Handle is registered as an icp.Handler below, so m is borrowed.
func (r *recorder) Handle(from *net.UDPAddr, m icp.Message) {
	r.last = m            // want borrow-escape: field store through the receiver
	lastUpdate = m.Update // want borrow-escape: package-variable store
	r.ch <- m             // want borrow-escape: channel send
	go inspect(m)         // want borrow-escape: goroutine argument
	go func() {           // want borrow-escape: goroutine capture
		inspect(m)
	}()
	stash(m.Update) // want borrow-escape: callee retains its argument
}

func inspect(m icp.Message) {}

// stash retains its argument; the escape summary catches callers.
func stash(u *icp.DirUpdate) { lastUpdate = u }

var _ icp.Handler = (*recorder)(nil).Handle

var keep icp.Message

// keepDecoded stores a freshly decoded message without Clone.
func keepDecoded(d *icp.Decoder, frame []byte) {
	m, _ := d.Decode(frame)
	keep = m // want borrow-escape: decode result stored in package state
}

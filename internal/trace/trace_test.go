package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Time: 0, Client: 3, URL: "http://a.com/x", Size: 1024, Version: 0},
		{Time: 5, Client: 0, URL: "http://b.com/y?q=1", Size: 99, Version: 2},
		{Time: 5, Client: -7, URL: "http://c.com/", Size: 0, Version: -1},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range reqs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("read %d records, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], reqs[i])
		}
	}
}

func TestWriterRejectsWhitespaceURL(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Request{URL: "http://a.com/has space"}); err == nil {
		t.Fatal("accepted URL with space")
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n0 1 10 0 http://a/\n  \n# trailing\n1 2 20 0 http://b/\n"
	got, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].URL != "http://a/" || got[1].Client != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestReaderErrors(t *testing.T) {
	bad := []string{
		"1 2 3 http://a/",        // 4 fields
		"x 2 3 0 http://a/",      // bad time
		"1 x 3 0 http://a/",      // bad client
		"1 2 x 0 http://a/",      // bad size
		"1 2 -5 0 http://a/",     // negative size
		"1 2 3 x http://a/",      // bad version
		"1 2 3 0 http://a/ more", // 6 fields
	}
	for _, line := range bad {
		if _, err := NewReader(strings.NewReader(line + "\n")).Read(); err == nil || err == io.EOF {
			t.Errorf("line %q: expected parse error, got %v", line, err)
		}
	}
}

func TestReadEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestGroup(t *testing.T) {
	cases := []struct {
		client, groups, want int
	}{
		{0, 4, 0}, {5, 4, 1}, {7, 4, 3}, {8, 4, 0},
		{3, 0, 0},  // degenerate group count
		{-3, 4, 1}, // negative client IDs still map into range
	}
	for _, c := range cases {
		if got := (Request{Client: c.client}).Group(c.groups); got != c.want {
			t.Errorf("Group(client=%d, n=%d) = %d, want %d", c.client, c.groups, got, c.want)
		}
	}
}

func TestQuickGroupInRange(t *testing.T) {
	prop := func(client int, groups uint8) bool {
		n := int(groups%16) + 1
		g := (Request{Client: client}).Group(n)
		return g >= 0 && g < n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	reqs := []Request{
		{Time: 0, Client: 1, URL: "a", Size: 100, Version: 0},
		{Time: 10, Client: 2, URL: "a", Size: 100, Version: 0}, // hit
		{Time: 20, Client: 1, URL: "b", Size: 50, Version: 0},
		{Time: 30, Client: 1, URL: "a", Size: 100, Version: 1}, // version change: miss
		{Time: 40, Client: 3, URL: "a", Size: 100, Version: 1}, // hit again
	}
	s := ComputeStats("test", reqs)
	if s.Requests != 5 || s.Clients != 3 || s.UniqueDocs != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxHitRatio != 0.4 {
		t.Errorf("MaxHitRatio = %v, want 0.4 (2 of 5)", s.MaxHitRatio)
	}
	if s.InfiniteCacheSize != 150 {
		t.Errorf("InfiniteCacheSize = %d, want 150", s.InfiniteCacheSize)
	}
	if s.TotalBytes != 450 {
		t.Errorf("TotalBytes = %d, want 450", s.TotalBytes)
	}
	if s.MaxByteHitRatio != 200.0/450 {
		t.Errorf("MaxByteHitRatio = %v", s.MaxByteHitRatio)
	}
	if s.DurationSeconds != 40 {
		t.Errorf("Duration = %d", s.DurationSeconds)
	}
	if !strings.Contains(s.String(), "test") {
		t.Error("String() missing name")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats("empty", nil)
	if s.Requests != 0 || s.MaxHitRatio != 0 || s.MaxByteHitRatio != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

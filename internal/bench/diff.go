package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"
)

// LoadMicroResult reads a committed microbenchmark report (a BENCH_*.json
// file written by cmd/proxybench -experiment=micro).
func LoadMicroResult(path string) (MicroResult, error) {
	var res MicroResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// LatestBenchFile returns the lexically last BENCH_*.json in dir — with the
// repository's BENCH_PR<n>.json convention, the most recent committed
// baseline. Files whose base name is in exclude are skipped (so a diff
// run's own output file is never its baseline). It errors when none
// remain.
func LatestBenchFile(dir string, exclude ...string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		skip := false
		for _, x := range exclude {
			if filepath.Base(matches[i]) == filepath.Base(x) {
				skip = true
			}
		}
		if !skip {
			return matches[i], nil
		}
	}
	return "", fmt.Errorf("no BENCH_*.json in %s", dir)
}

// MicroDelta compares one scenario across two runs. Ratio is
// new/old ops/sec: below 1.0 the scenario got slower.
type MicroDelta struct {
	Name         string  `json:"name"`
	OldOpsPerSec float64 `json:"old_ops_per_sec"`
	NewOpsPerSec float64 `json:"new_ops_per_sec"`
	Ratio        float64 `json:"ratio"`
	// AdjustedRatio is Ratio with host drift divided out. The two runs
	// may be days apart on a machine whose effective speed moved; each
	// scenario's frozen single-lock baseline is bit-identical code in
	// both runs, so its own movement measures the host, not the change
	// under test. Where the scenario carries baselines in both runs,
	// AdjustedRatio = speedup_new / speedup_old (same-workload
	// calibration); otherwise Ratio / MicroDiff.HostDrift; zero when no
	// calibration exists at all.
	AdjustedRatio float64 `json:"adjusted_ratio,omitempty"`
	OldP99Micros  float64 `json:"old_p99_us"`
	NewP99Micros  float64 `json:"new_p99_us"`
	// Missing marks a scenario present in only one of the runs; Ratio is
	// 0 and the scenario cannot pass a regression gate.
	Missing string `json:"missing,omitempty"`
}

// MicroDiff is the scenario-by-scenario comparison of two microbenchmark
// runs.
type MicroDiff struct {
	Deltas []MicroDelta
	// HostDrift is the geometric mean, over scenarios with frozen
	// baselines in both runs, of new/old baseline ops/sec — the
	// machine's overall speed change between the runs. Zero when no
	// scenario carries baselines in both.
	HostDrift float64
	// CalibrationSpread is max/min over those same per-scenario baseline
	// drifts. The frozen baselines are bit-identical code in both runs, so
	// a genuine host-speed change moves them together; a wide spread means
	// the apparent drift is per-loop measurement noise (code layout,
	// frequency excursions) that cannot calibrate anything. Above
	// MaxCalibrationSpread every AdjustedRatio is discarded and the gate
	// judges raw ratios. Zero with fewer than two calibrated scenarios.
	CalibrationSpread float64
}

// MaxCalibrationSpread bounds how much the frozen baselines may disagree
// with each other before drift adjustment is considered unreliable.
const MaxCalibrationSpread = 1.10

// DiffMicro pairs the scenarios of two runs by name, in the old run's
// order (new-only scenarios follow). Scenarios found in only one run are
// reported with Missing set rather than dropped, so a renamed or deleted
// scenario cannot silently escape a regression gate.
func DiffMicro(old, new MicroResult) MicroDiff {
	var d MicroDiff
	newByName := make(map[string]MicroScenario, len(new.Scenarios))
	for _, s := range new.Scenarios {
		newByName[s.Name] = s
	}
	var driftLogSum float64
	var driftN int
	minDrift, maxDrift := math.Inf(1), 0.0
	for _, o := range old.Scenarios {
		n, ok := newByName[o.Name]
		if ok && o.Baseline != nil && n.Baseline != nil &&
			o.Baseline.OpsPerSec > 0 && n.Baseline.OpsPerSec > 0 {
			drift := n.Baseline.OpsPerSec / o.Baseline.OpsPerSec
			driftLogSum += math.Log(drift)
			driftN++
			minDrift = math.Min(minDrift, drift)
			maxDrift = math.Max(maxDrift, drift)
		}
	}
	if driftN > 0 {
		d.HostDrift = math.Exp(driftLogSum / float64(driftN))
	}
	if driftN > 1 {
		d.CalibrationSpread = maxDrift / minDrift
	}
	seen := make(map[string]bool, len(old.Scenarios))
	for _, o := range old.Scenarios {
		seen[o.Name] = true
		n, ok := newByName[o.Name]
		if !ok {
			d.Deltas = append(d.Deltas, MicroDelta{
				Name: o.Name, OldOpsPerSec: o.Current.OpsPerSec,
				OldP99Micros: o.Current.P99Micros, Missing: "new",
			})
			continue
		}
		delta := MicroDelta{
			Name:         o.Name,
			OldOpsPerSec: o.Current.OpsPerSec,
			NewOpsPerSec: n.Current.OpsPerSec,
			OldP99Micros: o.Current.P99Micros,
			NewP99Micros: n.Current.P99Micros,
		}
		if o.Current.OpsPerSec > 0 {
			delta.Ratio = n.Current.OpsPerSec / o.Current.OpsPerSec
		}
		switch {
		case o.Baseline != nil && n.Baseline != nil &&
			o.Baseline.OpsPerSec > 0 && n.Baseline.OpsPerSec > 0 &&
			o.Current.OpsPerSec > 0:
			oldSpeedup := o.Current.OpsPerSec / o.Baseline.OpsPerSec
			newSpeedup := n.Current.OpsPerSec / n.Baseline.OpsPerSec
			delta.AdjustedRatio = newSpeedup / oldSpeedup
		case d.HostDrift > 0:
			delta.AdjustedRatio = delta.Ratio / d.HostDrift
		}
		d.Deltas = append(d.Deltas, delta)
	}
	for _, n := range new.Scenarios {
		if !seen[n.Name] {
			d.Deltas = append(d.Deltas, MicroDelta{
				Name: n.Name, NewOpsPerSec: n.Current.OpsPerSec,
				NewP99Micros: n.Current.P99Micros, Missing: "old",
			})
		}
	}
	if d.CalibrationSpread > MaxCalibrationSpread {
		// The calibration standards disagree with each other: whatever
		// moved them was not host speed, and dividing it out would inject
		// that noise into every verdict.
		for i := range d.Deltas {
			d.Deltas[i].AdjustedRatio = 0
		}
	}
	return d
}

// GatedRatio is the ratio a regression gate should judge: the
// drift-adjusted one when calibration exists, the raw one otherwise.
func (x MicroDelta) GatedRatio() float64 {
	if x.AdjustedRatio > 0 {
		return x.AdjustedRatio
	}
	return x.Ratio
}

// Regressions returns the deltas whose GatedRatio is below floor, plus
// any scenario missing from either run.
func (d MicroDiff) Regressions(floor float64) []MicroDelta {
	var out []MicroDelta
	for _, x := range d.Deltas {
		if x.Missing != "" || x.GatedRatio() < floor {
			out = append(out, x)
		}
	}
	return out
}

// Format renders the diff as an aligned table for terminal output.
func (d MicroDiff) Format() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\told ops/sec\tnew ops/sec\tratio\tadjusted\told p99\tnew p99")
	for _, x := range d.Deltas {
		if x.Missing != "" {
			fmt.Fprintf(w, "%s\t-\t-\tmissing from %s run\t-\t-\t-\n", x.Name, x.Missing)
			continue
		}
		adj := "-"
		if x.AdjustedRatio > 0 {
			adj = fmt.Sprintf("%.2fx", x.AdjustedRatio)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.2fx\t%s\t%.1fµs\t%.1fµs\n",
			x.Name, x.OldOpsPerSec, x.NewOpsPerSec, x.Ratio, adj,
			x.OldP99Micros, x.NewP99Micros)
	}
	switch {
	case d.CalibrationSpread > MaxCalibrationSpread:
		fmt.Fprintf(w, "(frozen baselines disagree with each other %.2fx > %.2fx: drift calibration unreliable, gating on raw ratios)\n",
			d.CalibrationSpread, MaxCalibrationSpread)
	case d.HostDrift > 0:
		fmt.Fprintf(w, "(host drift %.2fx by the frozen baselines; adjusted = ratio with drift divided out)\n", d.HostDrift)
	}
	_ = w.Flush() // a strings.Builder never errors
	return b.String()
}

// Package analysis is the engine behind cmd/sclint: a stdlib-only static
// analyzer (go/parser + go/ast + go/types with the source importer — no
// x/tools dependency) that loads every package in the module and enforces
// the project-specific invariants the previous PRs introduced and go vet
// cannot see:
//
//   - atomic-mixing — a field accessed through sync/atomic (function-style
//     on a plain integer, or a typed atomic.* value) must never be read or
//     written plainly elsewhere; the lock-free Bloom probe and LRU recency
//     paths are only correct if every access goes through the atomic API.
//   - determinism — internal/faultnet, internal/sim and internal/bench are
//     replay paths: a scenario re-run with the same seed must make the
//     same decisions. time.Now, the math/rand global generator, and map
//     iteration order all smuggle nondeterminism into a replay.
//   - stats-drift — every plain counter registered against an obs.Registry
//     must surface as an exported field of the package's Stats struct, the
//     PR-1 "Stats() == scrape" contract.
//   - unchecked-close — a non-deferred Close/Flush/Sync whose error result
//     is silently discarded in library code.
//   - stray-printing — fmt.Print*/log.Print*/println in library code;
//     only main packages (cmd/, examples/) may write to process streams,
//     libraries report through log/slog and internal/obs.
//
// Findings print as "file:line: [rule] message" and are suppressed, one
// site at a time, with an in-source directive that must carry a reason:
//
//	//lint:ignore sclint/<rule> <reason>
//
// placed on the offending line or on the line directly above it. The
// test suite pins each rule's behavior with positive and negative fixture
// packages under testdata/src and a golden findings file.
package analysis

package icp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts datagrams through a Conn; the networked benchmark's analog
// of the paper's netstat UDP counters.
type Stats struct {
	Sent       uint64
	Received   uint64
	SentBytes  uint64
	RecvBytes  uint64
	Dropped    uint64 // undecodable or unroutable datagrams
	SendErrors uint64 // transmissions the network layer rejected
}

// Handler consumes unsolicited inbound messages (queries from peers,
// directory updates). Replies to in-flight queries are routed internally
// and never reach the handler. Handlers run on the receive goroutine;
// blocking ones stall the socket.
//
// The Message is decoded in place: its Update field (and the Flips inside)
// borrow scratch owned by the receive loop and are only valid for the
// duration of the call. A handler that needs the update past its return
// must copy it (URL strings are owned and safe to retain).
type Handler func(from *net.UDPAddr, m Message)

// DefaultSendQueue is the depth, in datagrams, of a Conn's asynchronous
// send ring when Config.SendQueue is zero.
const DefaultSendQueue = 256

// Config tunes the ICP plane's pooling and batching machinery — the knobs
// behind the zero-allocation fast path. The zero value selects every
// default, so existing callers configure nothing.
type Config struct {
	// SendQueue is the depth of the asynchronous send ring in datagrams
	// (0: DefaultSendQueue). SendAsync enqueues loss-tolerant traffic
	// (directory updates) here; a dedicated sender goroutine drains the
	// ring in batches, so a burst of updates never blocks the caller on
	// per-datagram syscalls. When the ring is full, SendAsync blocks for
	// a slot (back-pressure) rather than dropping or sending in-line —
	// in-line sends would reorder absolute flip records, leaving peer
	// replicas stale.
	SendQueue int
	// DisableFlipCoalescing turns off per-peer DIRUPDATE flip coalescing
	// in the publication path (the core layer consumes this knob): by
	// default, when a burst of directory changes flips the same bit more
	// than once between publications, only the final state of each bit is
	// shipped. Flips are absolute set/clear records, so coalescing
	// preserves the receiver's final replica state exactly; disable it
	// only to reproduce the prototype's verbatim journal streams.
	DisableFlipCoalescing bool
}

// ListenConfig parameterizes ListenWith — the canonical configured form of
// opening an ICP endpoint.
type ListenConfig struct {
	// Handler consumes unsolicited inbound messages (may be nil to ignore
	// them).
	Handler Handler
	// Wrap, when set, decorates the bound socket before use — the
	// fault-injection hook. Nil: the raw socket, with no interposed call.
	Wrap SocketWrapper
	// Config tunes pooling and batching.
	Config Config
}

// ErrClosed is returned by operations on a closed Conn.
var ErrClosed = errors.New("icp: connection closed")

// PacketConn is the UDP socket surface a Conn drives. *net.UDPConn
// implements it; fault-injection wrappers (internal/faultnet) decorate it
// to impose loss, delay, duplication and reordering on the ICP traffic
// without the endpoint knowing.
type PacketConn interface {
	ReadFromUDP(b []byte) (int, *net.UDPAddr, error)
	WriteToUDP(b []byte, addr *net.UDPAddr) (int, error)
	Close() error
	LocalAddr() net.Addr
}

// SocketWrapper decorates the bound socket before the Conn uses it — the
// fault-injection hook. Nil means the raw socket.
type SocketWrapper func(PacketConn) PacketConn

// reply is one routed response to an in-flight query, attributed to its
// sender so a shared-RequestNumber fan-out can tell the peers apart.
type reply struct {
	m    Message
	from *net.UDPAddr
}

// outgoing is one encoded datagram queued on the send ring. buf is a
// pooled buffer the sender goroutine returns after the write.
type outgoing struct {
	to  *net.UDPAddr
	buf *[]byte
}

// Conn is an ICP endpoint over UDP: it serves peer queries via a Handler
// and issues queries with request-number matching and timeouts.
type Conn struct {
	pc      PacketConn
	handler Handler

	sent, recv, sentB, recvB, dropped, sendErrs atomic.Uint64
	nextReq                                     atomic.Uint32

	mu      sync.Mutex
	pending map[uint32]chan reply
	closed  bool
	started bool
	done    chan struct{}

	sendQ    chan outgoing
	sendStop chan struct{}
	sendDone chan struct{}
}

// Listen opens an ICP endpoint on addr ("127.0.0.1:0" for an ephemeral
// test port) with handler (which may be nil to ignore unsolicited
// traffic). The receive loop does NOT run until Start is called: callers
// typically finish wiring the state their handler closes over first —
// starting to serve inside the constructor would race with those
// assignments.
func Listen(addr string, handler Handler) (*Conn, error) {
	return ListenWith(addr, ListenConfig{Handler: handler})
}

// ListenWith is the configured form of Listen: the socket wrapper
// (fault injection) and the batching knobs ride one struct. (It replaces
// the positional ListenWrapped of earlier revisions.)
func ListenWith(addr string, cfg ListenConfig) (*Conn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("icp: resolve %q: %w", addr, err)
	}
	pc, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("icp: listen %q: %w", addr, err)
	}
	var sock PacketConn = pc
	if cfg.Wrap != nil {
		sock = cfg.Wrap(sock)
	}
	depth := cfg.Config.SendQueue
	if depth <= 0 {
		depth = DefaultSendQueue
	}
	c := &Conn{
		pc:       sock,
		handler:  cfg.Handler,
		pending:  make(map[uint32]chan reply),
		done:     make(chan struct{}),
		sendQ:    make(chan outgoing, depth),
		sendStop: make(chan struct{}),
		sendDone: make(chan struct{}),
	}
	return c, nil
}

// Start begins the receive loop and the send-ring drainer. It must be
// called exactly once, after the handler's dependencies are fully
// initialized. Datagrams arriving before Start sit in the socket buffer
// and are processed once it runs.
func (c *Conn) Start() {
	c.mu.Lock()
	if c.started || c.closed {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	go c.readLoop()
	go c.sendLoop()
}

// Addr returns the bound UDP address.
func (c *Conn) Addr() *net.UDPAddr { return c.pc.LocalAddr().(*net.UDPAddr) }

// Stats snapshots the traffic counters.
func (c *Conn) Stats() Stats {
	return Stats{
		Sent:       c.sent.Load(),
		Received:   c.recv.Load(),
		SentBytes:  c.sentB.Load(),
		RecvBytes:  c.recvB.Load(),
		Dropped:    c.dropped.Load(),
		SendErrors: c.sendErrs.Load(),
	}
}

// Close shuts the endpoint down and fails all in-flight queries.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, ch := range c.pending {
		close(ch)
	}
	c.pending = make(map[uint32]chan reply)
	started := c.started
	c.mu.Unlock()
	close(c.sendStop)
	err := c.pc.Close()
	if started {
		<-c.done
		<-c.sendDone
	}
	return err
}

// Send encodes and transmits m to the peer synchronously. The encoding
// buffer comes from the shared pool, so a steady-state send allocates
// nothing.
func (c *Conn) Send(to *net.UDPAddr, m Message) error {
	bp := getBuf()
	buf, err := m.Append(*bp)
	if err != nil {
		putBuf(bp)
		return err
	}
	*bp = buf
	err = c.write(to, bp)
	putBuf(bp)
	return err
}

// SendAsync encodes m into a pooled buffer and queues it on the send ring;
// the sender goroutine drains the ring in batches and returns the buffer.
// Use it for loss-tolerant traffic (directory updates) where the caller
// usually must not block on per-datagram syscalls. When the ring is full
// the call blocks until the drainer frees a slot (back-pressure) rather
// than sending in-line: an in-line send would overtake datagrams already
// queued, and DIRUPDATE flips are absolute records whose LAST write for a
// bit must win — delivering an older record after a newer one leaves the
// receiver's replica permanently stale. FIFO order through the ring is
// therefore a correctness property, not an optimization. Transmit errors
// on the asynchronous path surface only in the SendErrors counter.
func (c *Conn) SendAsync(to *net.UDPAddr, m Message) error {
	bp := getBuf()
	buf, err := m.Append(*bp)
	if err != nil {
		putBuf(bp)
		return err
	}
	*bp = buf
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		putBuf(bp)
		return ErrClosed
	}
	select {
	case c.sendQ <- outgoing{to: to, buf: bp}:
		c.mu.Unlock()
		return nil
	default:
	}
	c.mu.Unlock()
	// Ring full: the mesh is publishing faster than the socket drains.
	// Block for a slot so the datagram keeps its place in the sequence;
	// sendStop unblocks the wait if the endpoint closes underneath us.
	select {
	case c.sendQ <- outgoing{to: to, buf: bp}:
		return nil
	case <-c.sendStop:
		putBuf(bp)
		return ErrClosed
	}
}

// write transmits one encoded datagram and maintains the counters.
func (c *Conn) write(to *net.UDPAddr, bp *[]byte) error {
	n, err := c.pc.WriteToUDP(*bp, to)
	if err != nil {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return ErrClosed
		}
		// A rejected transmission is the only trace a flaky peer link
		// leaves on the sender; count it rather than losing it with the
		// discarded error.
		c.sendErrs.Add(1)
		return fmt.Errorf("icp: send to %v: %w", to, err)
	}
	c.sent.Add(1)
	c.sentB.Add(uint64(n))
	return nil
}

// sendLoop is the send ring's drainer: each wakeup writes every datagram
// queued at that moment before blocking again, so a publication burst
// costs one goroutine handoff rather than one per datagram.
func (c *Conn) sendLoop() {
	defer close(c.sendDone)
	for {
		select {
		case o := <-c.sendQ:
			c.drainOne(o)
			for {
				select {
				case o := <-c.sendQ:
					c.drainOne(o)
					continue
				default:
				}
				break
			}
		case <-c.sendStop:
			// Closed: release anything still queued without touching the
			// (already closed) socket.
			for {
				select {
				case o := <-c.sendQ:
					putBuf(o.buf)
					continue
				default:
				}
				return
			}
		}
	}
}

func (c *Conn) drainOne(o outgoing) {
	_ = c.write(o.to, o.buf) // async path: failures land in SendErrors
	putBuf(o.buf)
}

// NextReqNum returns a fresh request number. The 32-bit counter wraps
// naturally; reply routing keys on the number alone, so correctness only
// requires that concurrently in-flight queries carry distinct numbers —
// a node would need 2^32 simultaneous queries to collide.
func (c *Conn) NextReqNum() uint32 { return c.nextReq.Add(1) }

// SeedReqNum positions the request-number counter so the next allocation
// returns v+1. Tests use it to exercise the 2^32 wraparound without
// issuing four billion queries.
func (c *Conn) SeedReqNum(v uint32) { c.nextReq.Store(v) }

// register enrolls a pending query channel under reqNum.
func (c *Conn) register(reqNum uint32, ch chan reply) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.pending[reqNum] = ch
	return nil
}

func (c *Conn) unregister(reqNum uint32) {
	c.mu.Lock()
	delete(c.pending, reqNum)
	c.mu.Unlock()
}

// Query sends an ICP query for url to the peer and waits for its reply
// (HIT, MISS, MISS_NOFETCH, DENIED or ERR) until ctx is done. A lost
// datagram surfaces as ctx expiry — the caller treats it as a miss,
// exactly as Squid does.
func (c *Conn) Query(ctx context.Context, to *net.UDPAddr, url string) (Message, error) {
	reqNum := c.NextReqNum()
	ch := make(chan reply, 1)
	if err := c.register(reqNum, ch); err != nil {
		return Message{}, err
	}
	defer c.unregister(reqNum)

	if err := c.Send(to, NewQuery(reqNum, url)); err != nil {
		return Message{}, err
	}
	select {
	case r, ok := <-ch:
		if !ok {
			return Message{}, ErrClosed
		}
		return r.m, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// QueryAll fans one query out to several peers and returns the first HIT
// (false when every peer replied MISS-class or the context expired — a
// timeout is an ordinary miss, as in Squid). The whole fan-out shares a
// single RequestNumber, as Squid's sibling queries do; reqNum reports it
// so callers can correlate the exchange (the tracing layer derives the
// cross-proxy trace ID from it).
func (c *Conn) QueryAll(ctx context.Context, peers []*net.UDPAddr, url string) (hit bool, from *net.UDPAddr, reqNum uint32, err error) {
	return c.QueryAllFunc(ctx, peers, url, nil)
}

// QueryAllFunc is QueryAll with a per-reply observation hook: onReply
// (when non-nil) is invoked on the caller's goroutine for every reply
// that arrives before the fan-out resolves, attributed to its sender.
// The tracing layer uses it to record each peer's actual answer.
func (c *Conn) QueryAllFunc(ctx context.Context, peers []*net.UDPAddr, url string, onReply func(from *net.UDPAddr, op Opcode)) (hit bool, from *net.UDPAddr, reqNum uint32, err error) {
	if len(peers) == 0 {
		return false, nil, 0, nil
	}
	reqNum = c.NextReqNum()
	ch := make(chan reply, len(peers))
	if err := c.register(reqNum, ch); err != nil {
		return false, nil, reqNum, err
	}
	defer c.unregister(reqNum)

	q := NewQuery(reqNum, url)
	sent := 0
	var lastErr error
	for _, p := range peers {
		if err := c.Send(p, q); err != nil {
			lastErr = err
			continue
		}
		sent++
	}
	if sent == 0 {
		return false, nil, reqNum, lastErr
	}
	for i := 0; i < sent; i++ {
		select {
		case r, ok := <-ch:
			if !ok {
				return false, nil, reqNum, ErrClosed
			}
			if onReply != nil {
				onReply(r.from, r.m.Op)
			}
			if r.m.Op == OpHit || r.m.Op == OpHitObj {
				return true, r.from, reqNum, nil
			}
		case <-ctx.Done():
			return false, nil, reqNum, nil // timeouts are ordinary misses
		}
	}
	return false, nil, reqNum, nil
}

func (c *Conn) readLoop() {
	defer close(c.done)
	buf := make([]byte, MaxDatagram)
	var dec Decoder
	for {
		n, from, err := c.pc.ReadFromUDP(buf)
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			// Socket gone for another reason: stop the loop.
			return
		}
		c.recv.Add(1)
		c.recvB.Add(uint64(n))
		m, err := dec.Decode(buf[:n])
		if err != nil {
			c.dropped.Add(1)
			continue
		}
		if isReply(m.Op) {
			// Reply opcodes carry no DirUpdate payload, so the Message
			// crossing to the waiting goroutine holds only owned data
			// (the URL string); the decoder scratch never escapes.
			c.mu.Lock()
			ch := c.pending[m.ReqNum]
			c.mu.Unlock()
			if ch != nil {
				select {
				//lint:ignore sclint/borrow-escape reply opcodes carry no DirUpdate; only the owned URL string crosses, never decoder scratch
				case ch <- reply{m: m, from: from}:
				default:
				}
				continue
			}
			// Late reply after timeout: drop silently.
			c.dropped.Add(1)
			continue
		}
		if c.handler != nil {
			c.handler(from, m)
		}
	}
}

func isReply(op Opcode) bool {
	switch op {
	case OpHit, OpMiss, OpMissNoFetch, OpDenied, OpErr, OpHitObj:
		return true
	}
	return false
}

// WaitSettled polls until no datagrams arrive for the quiet duration or
// the deadline passes; tests use it to avoid sleeping fixed amounts.
func (c *Conn) WaitSettled(quiet, deadline time.Duration) {
	end := time.Now().Add(deadline)
	last := c.recv.Load()
	lastChange := time.Now()
	for time.Now().Before(end) {
		time.Sleep(quiet / 4)
		cur := c.recv.Load()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) >= quiet {
			return
		}
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// uncheckedCloseRule flags non-deferred calls to Close, Flush or Sync
// whose error result is silently discarded in library code. At a bare
// call statement the caller is still in a position to act on the error
// (propagate it, log it, or at minimum write `_ =` to mark the drop
// deliberate); silently losing it hides failed resource teardown — the
// class of bug behind half-flushed journals and leaked sockets.
//
// Deliberately exempt:
//   - defer f.Close() — at unwind time there is no error path left, and
//     the idiom is ubiquitous; flagging it would bury real findings;
//   - _ = f.Close() — the drop is explicit and greppable;
//   - main packages (cmd/, examples/) — process exit is the handler;
//   - methods whose signature returns no error (csv.Writer.Flush).
type uncheckedCloseRule struct{}

func (uncheckedCloseRule) Name() string { return RuleUncheckedClose }

func (uncheckedCloseRule) Doc() string {
	return "non-deferred Close/Flush/Sync calls in library code must not silently discard their error"
}

var closeLikeNames = map[string]bool{"Close": true, "Flush": true, "Sync": true}

// returnsError reports whether fn's final result is the error type.
func returnsError(fn *types.Func) bool {
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

func (uncheckedCloseRule) Check(pkg *Package, report ReportFunc) {
	if pkg.IsMain() {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Only bare call *statements* discard results; defer/go are
			// distinct statement kinds and fall outside this match.
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !closeLikeNames[sel.Sel.Name] {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !returnsError(fn) {
				return true
			}
			report(call.Pos(),
				"error from %s.%s is silently discarded; handle it or assign to _ to make the drop explicit",
				types.ExprString(sel.X), sel.Sel.Name)
			return true
		})
	}
}

package core_test

import (
	"fmt"

	"summarycache/internal/core"
	"summarycache/internal/icp"
)

// The directory → wire → replica pipeline, without sockets.
func ExampleDirectory() {
	dir, _ := core.NewDirectory(core.DirectoryConfig{
		ExpectedDocs: 1000, LoadFactor: 16, UpdateThreshold: 0.01,
	})
	dir.Insert("http://example.com/a")
	dir.Insert("http://example.com/b")
	dir.Remove("http://example.com/a")

	peers := core.NewPeerTable()
	update := &icp.DirUpdate{Spec: dir.Spec(), Bits: uint32(dir.Bits()), Flips: dir.Drain()}
	if err := peers.ApplyUpdate("neighbor-1", update, false); err != nil {
		panic(err)
	}
	fmt.Println(peers.Candidates("http://example.com/a"))
	fmt.Println(peers.Candidates("http://example.com/b"))
	// Output:
	// []
	// [neighbor-1]
}

// The paper's §V-E sizing rules for a given proxy.
func ExampleRecommend() {
	rec, _ := core.Recommend(8<<30, 8192, 0, 0) // the paper's 8 GB example
	fmt.Printf("expected docs: %d\n", rec.ExpectedDocs)
	fmt.Printf("summary per peer: %d MB\n", rec.SummaryBytesPerPeer>>20)
	fmt.Printf("counters: %d MB\n", rec.CounterBytes>>20)
	fmt.Printf("hash functions: %d\n", rec.Directory.HashSpec.FunctionNum)
	// Output:
	// expected docs: 1048576
	// summary per peer: 2 MB
	// counters: 8 MB
	// hash functions: 4
}

package perfwatch

import (
	"bytes"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"summarycache/internal/obs"
)

// CaptureConfig configures anomaly-triggered profile capture. The zero
// value disables capture entirely.
type CaptureConfig struct {
	// Enabled turns capture on.
	Enabled bool
	// Ring is the number of retained captures (default 4); older captures
	// are overwritten oldest-first, bounding memory no matter how long a
	// breach lasts.
	Ring int
	// CPUDuration is how long the CPU profile runs (default 5s). Heap,
	// mutex and block profiles are instantaneous snapshots taken after it.
	CPUDuration time.Duration
	// MinInterval rate-limits captures: triggers arriving sooner than
	// this after the previous capture started are dropped (default 1m).
	MinInterval time.Duration
	// MutexFraction and BlockRateNS seed runtime.SetMutexProfileFraction
	// and runtime.SetBlockProfileRate when capture is enabled, so the
	// mutex/block profiles have data (defaults 100 and 1ms). Negative
	// leaves the runtime setting untouched.
	MutexFraction int
	BlockRateNS   int
}

// Capture is one captured profile set.
type Capture struct {
	// Seq numbers captures monotonically from 1.
	Seq int `json:"seq"`
	// Reason is what tripped the capture (e.g. "slo:client_p99 burn=3.10").
	Reason string    `json:"reason"`
	Start  time.Time `json:"start"`
	// DurationMS is how long the whole capture took (dominated by the CPU
	// profile window).
	DurationMS float64 `json:"duration_ms"`
	// Err records a wholly failed capture (individual profile failures
	// just omit that profile).
	Err string `json:"error,omitempty"`
	// Profiles maps profile name (cpu, heap, mutex, block) to the raw
	// pprof-format bytes, served by /debug/perf.
	Profiles map[string][]byte `json:"-"`
}

// Capturer owns the bounded capture ring. Trigger is cheap and non-
// blocking: the capture itself (a multi-second CPU profile) runs on its
// own goroutine, at most one at a time, rate-limited by MinInterval.
type Capturer struct {
	cfg CaptureConfig
	log *slog.Logger

	captures *obs.Counter
	skipped  *obs.Counter

	inflight atomic.Bool

	mu   sync.Mutex
	last time.Time // start of the most recent admitted capture
	seq  int
	ring []*Capture
	done chan struct{} // closed+replaced per capture; tests wait on it
}

// newCapturer builds the capturer (nil when cfg.Enabled is false). It
// enables mutex and block profiling so those profiles carry data.
func newCapturer(cfg CaptureConfig, reg *obs.Registry, ls obs.Labels, log *slog.Logger) *Capturer {
	if !cfg.Enabled {
		return nil
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 4
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 5 * time.Second
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Minute
	}
	if cfg.MutexFraction == 0 {
		cfg.MutexFraction = 100
	}
	if cfg.BlockRateNS == 0 {
		cfg.BlockRateNS = int(time.Millisecond)
	}
	if cfg.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.MutexFraction)
	}
	if cfg.BlockRateNS > 0 {
		runtime.SetBlockProfileRate(cfg.BlockRateNS)
	}
	return &Capturer{
		cfg: cfg,
		log: obs.OrNop(log),
		captures: reg.Counter("summarycache_perf_captures_total",
			"anomaly-triggered profile captures completed", ls),
		skipped: reg.Counter("summarycache_perf_captures_skipped_total",
			"capture triggers dropped by rate limiting or an in-flight capture", ls),
	}
}

// Trigger requests a capture with the given reason. It returns whether a
// capture was started; triggers during an in-flight capture or within
// MinInterval of the previous one are counted and dropped. Safe on a nil
// Capturer.
func (c *Capturer) Trigger(reason string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	if !c.last.IsZero() && time.Since(c.last) < c.cfg.MinInterval {
		c.mu.Unlock()
		c.skipped.Inc()
		return false
	}
	if !c.inflight.CompareAndSwap(false, true) {
		c.mu.Unlock()
		c.skipped.Inc()
		return false
	}
	c.last = time.Now()
	c.seq++
	cp := &Capture{Seq: c.seq, Reason: reason, Start: c.last}
	done := make(chan struct{})
	c.done = done
	c.mu.Unlock()

	go func() {
		defer close(done)
		defer c.inflight.Store(false)
		c.run(cp)
		c.mu.Lock()
		c.ring = append(c.ring, cp)
		if len(c.ring) > c.cfg.Ring {
			c.ring = c.ring[len(c.ring)-c.cfg.Ring:]
		}
		c.mu.Unlock()
		c.captures.Inc()
		c.log.Info("perf capture completed",
			"seq", cp.Seq, "reason", cp.Reason,
			"profiles", len(cp.Profiles), "duration_ms", cp.DurationMS)
	}()
	return true
}

// run performs one capture into cp: a CPUDuration CPU profile, then
// heap, mutex and block snapshots. A profile that fails (e.g. another CPU
// profile already running via /debug/pprof) is omitted rather than
// failing the capture.
func (c *Capturer) run(cp *Capture) {
	cp.Profiles = make(map[string][]byte, 4)
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err == nil {
		time.Sleep(c.cfg.CPUDuration)
		pprof.StopCPUProfile()
		cp.Profiles["cpu"] = cpu.Bytes()
	} else {
		c.log.Warn("perf capture: cpu profile unavailable", "err", err)
	}
	for _, name := range []string{"heap", "mutex", "block"} {
		p := pprof.Lookup(name)
		if p == nil {
			continue
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 0); err != nil {
			c.log.Warn("perf capture: profile failed", "profile", name, "err", err)
			continue
		}
		cp.Profiles[name] = buf.Bytes()
	}
	cp.DurationMS = float64(time.Since(cp.Start)) / float64(time.Millisecond)
}

// Captures returns the retained captures, oldest first.
func (c *Capturer) Captures() []*Capture {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Capture(nil), c.ring...)
}

// Wait blocks until the most recently started capture finishes (returns
// immediately if none is running). Tests use it for determinism.
func (c *Capturer) Wait() {
	if c == nil {
		return
	}
	c.mu.Lock()
	done := c.done
	c.mu.Unlock()
	if done != nil {
		<-done
	}
}

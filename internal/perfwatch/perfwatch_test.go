package perfwatch

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"summarycache/internal/obs"
	"summarycache/internal/tracing"
)

func TestStageDecomposition(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(Config{Registry: reg})

	w.OnSpan("n1", tracing.Span{Name: tracing.SpanLocalLookup, DurationUS: 100})
	w.OnSpan("n1", tracing.Span{Name: tracing.SpanOriginFetch, DurationUS: 5000})
	w.OnSpan("n1", tracing.Span{Name: "never_heard_of_it", DurationUS: 10})
	w.StageTiming(StageLRUGet, 50*time.Microsecond)
	w.StageTiming(StageDirUpdateApply, 20*time.Microsecond)
	w.OnFinish("n1", tracing.KindRequest, "miss", 6*time.Millisecond)

	byStage := map[string]StageSummary{}
	for _, s := range w.Stages() {
		byStage[s.Stage] = s
	}
	for stage, wantCount := range map[string]uint64{
		tracing.SpanLocalLookup: 1,
		tracing.SpanOriginFetch: 1,
		StageOther:              1, // the unknown span name
		StageLRUGet:             1,
		StageDirUpdateApply:     1,
		StageRequest:            1,
	} {
		if got := byStage[stage].Count; got != wantCount {
			t.Errorf("stage %q count = %d, want %d", stage, got, wantCount)
		}
	}
	if first := w.Stages()[0].Stage; first != StageRequest {
		t.Errorf("Stages()[0] = %q, want %q first", first, StageRequest)
	}
	// The sink must not feed icp_answer traces into the request stage.
	w.OnFinish("n1", tracing.KindICPAnswer, "icp_hit", time.Millisecond)
	if got := w.stages[StageRequest].Count(); got != 1 {
		t.Errorf("request stage count after icp_answer finish = %d, want 1", got)
	}
}

func TestLatencySLOMarksBreachingRequests(t *testing.T) {
	w := New(Config{Objectives: []Objective{{
		Name:      "client_p99",
		Threshold: 10 * time.Millisecond,
		Budget:    0.01,
	}}})
	if r := w.OnFinish("n1", tracing.KindRequest, "local_hit", time.Millisecond); r != "" {
		t.Errorf("fast request returned anomaly %q, want none", r)
	}
	if r := w.OnFinish("n1", tracing.KindRequest, "miss", 50*time.Millisecond); r != "slo:client_p99" {
		t.Errorf("slow request returned %q, want slo:client_p99", r)
	}
}

func TestSLOEvaluateWindows(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(Config{Registry: reg, Objectives: []Objective{{
		Name:      "client_p99",
		Threshold: 10 * time.Millisecond,
		Budget:    0.1,
	}}})

	// Window 1: 1 bad of 4 → bad fraction 0.25, burn 2.5, breached.
	for i := 0; i < 3; i++ {
		w.OnFinish("n1", tracing.KindRequest, "local_hit", time.Millisecond)
	}
	w.OnFinish("n1", tracing.KindRequest, "miss", 50*time.Millisecond)
	st := w.Evaluate()
	if len(st) != 1 {
		t.Fatalf("Evaluate returned %d statuses, want 1", len(st))
	}
	if st[0].WindowBad != 1 || st[0].WindowTotal != 4 {
		t.Errorf("window = %d/%d, want 1/4", st[0].WindowBad, st[0].WindowTotal)
	}
	if !st[0].Breached || st[0].BurnRate != 2.5 {
		t.Errorf("burn = %v breached = %v, want 2.5 true", st[0].BurnRate, st[0].Breached)
	}
	if st[0].Breaches != 1 {
		t.Errorf("breaches = %d, want 1", st[0].Breaches)
	}

	// Window 2: empty → burn 0, not breached; breach count unchanged.
	st = w.Evaluate()
	if st[0].Breached || st[0].BurnRate != 0 || st[0].Breaches != 1 {
		t.Errorf("empty window: burn=%v breached=%v breaches=%d, want 0 false 1",
			st[0].BurnRate, st[0].Breached, st[0].Breaches)
	}

	// Window 3: all good traffic → burn 0.
	for i := 0; i < 10; i++ {
		w.OnFinish("n1", tracing.KindRequest, "local_hit", time.Millisecond)
	}
	if st = w.Evaluate(); st[0].BurnRate != 0 {
		t.Errorf("good window burn = %v, want 0", st[0].BurnRate)
	}
}

func TestRatioAndErrorRateObjectives(t *testing.T) {
	var num, den uint64
	w := New(Config{Objectives: []Objective{
		{
			Name:   "false_hit_ratio",
			Budget: 0.05,
			Num:    func() uint64 { return num },
			Den:    func() uint64 { return den },
		},
		{Name: "client_errors", Kind: KindErrorRate, Budget: 0.5},
	}})
	num, den = 2, 10 // ratio 0.2 over a 0.05 ceiling → burn 4
	w.OnFinish("n1", tracing.KindRequest, "error", time.Millisecond)
	w.OnFinish("n1", tracing.KindRequest, "local_hit", time.Millisecond)

	byName := map[string]SLOStatus{}
	for _, s := range w.Evaluate() {
		byName[s.Name] = s
	}
	if s := byName["false_hit_ratio"]; !s.Breached || s.BurnRate != 4 {
		t.Errorf("ratio objective burn=%v breached=%v, want 4 true", s.BurnRate, s.Breached)
	}
	if s := byName["client_errors"]; !s.Breached || s.BurnRate != 1 {
		t.Errorf("error-rate objective burn=%v breached=%v, want 1 true", s.BurnRate, s.Breached)
	}
}

func TestCaptureRingAndRateLimit(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(Config{
		Registry: reg,
		Capture: CaptureConfig{
			Enabled:     true,
			Ring:        2,
			CPUDuration: 10 * time.Millisecond,
			MinInterval: time.Hour,
		},
	})
	c := w.Capturer()
	if c == nil {
		t.Fatal("Capturer() = nil with capture enabled")
	}
	if !c.Trigger("slo:test burn=9.99") {
		t.Fatal("first Trigger refused")
	}
	if c.Trigger("again") {
		t.Error("second Trigger admitted inside MinInterval")
	}
	c.Wait()
	caps := c.Captures()
	if len(caps) != 1 {
		t.Fatalf("got %d captures, want 1", len(caps))
	}
	cp := caps[0]
	if cp.Reason != "slo:test burn=9.99" || cp.Seq != 1 {
		t.Errorf("capture = seq %d reason %q", cp.Seq, cp.Reason)
	}
	// CPU can be unavailable if another profile is live, but the
	// snapshot profiles always succeed.
	for _, name := range []string{"heap", "mutex", "block"} {
		if len(cp.Profiles[name]) == 0 {
			t.Errorf("profile %q empty", name)
		}
	}
}

func TestSLOBreachTriggersCapture(t *testing.T) {
	w := New(Config{
		Objectives: []Objective{{
			Name:      "client_p99",
			Threshold: time.Millisecond,
			Budget:    0.01,
		}},
		Capture: CaptureConfig{
			Enabled:     true,
			CPUDuration: 10 * time.Millisecond,
			MinInterval: time.Hour,
		},
	})
	w.OnFinish("n1", tracing.KindRequest, "miss", 50*time.Millisecond)
	w.Evaluate()
	w.Capturer().Wait()
	caps := w.Capturer().Captures()
	if len(caps) != 1 || !strings.HasPrefix(caps[0].Reason, "slo:client_p99") {
		t.Fatalf("captures after breach = %+v, want one with slo:client_p99 reason", caps)
	}
}

func TestHandlers(t *testing.T) {
	w := New(Config{
		Objectives: []Objective{{Name: "client_p99", Threshold: 10 * time.Millisecond}},
		Capture:    CaptureConfig{Enabled: true, CPUDuration: 5 * time.Millisecond, MinInterval: time.Hour},
	})
	w.OnFinish("n1", tracing.KindRequest, "miss", 50*time.Millisecond)
	w.Evaluate()
	w.Capturer().Wait()

	// /debug/slo JSON names the objective and carries the stage table.
	rec := httptest.NewRecorder()
	w.SLOHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo?format=json", nil))
	var v struct {
		Objectives []SLOStatus    `json:"objectives"`
		Stages     []StageSummary `json:"stages"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("slo json: %v", err)
	}
	if len(v.Objectives) != 1 || v.Objectives[0].Name != "client_p99" || len(v.Stages) == 0 {
		t.Errorf("slo view = %+v", v)
	}
	// HTML form renders too.
	rec = httptest.NewRecorder()
	w.SLOHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if !strings.Contains(rec.Body.String(), "client_p99") {
		t.Error("slo html missing objective name")
	}

	// /debug/perf lists the capture and serves raw profile bytes.
	rec = httptest.NewRecorder()
	w.PerfHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/perf?format=json", nil))
	var caps []struct {
		Seq      int            `json:"seq"`
		Profiles map[string]int `json:"profile_bytes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &caps); err != nil {
		t.Fatalf("perf json: %v", err)
	}
	if len(caps) != 1 || caps[0].Profiles["heap"] == 0 {
		t.Fatalf("perf listing = %+v", caps)
	}
	rec = httptest.NewRecorder()
	w.PerfHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/perf?capture=1&profile=heap", nil))
	if rec.Code != 200 || rec.Body.Len() == 0 {
		t.Errorf("raw profile: code %d, %d bytes", rec.Code, rec.Body.Len())
	}
	rec = httptest.NewRecorder()
	w.PerfHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/perf?capture=9&profile=heap", nil))
	if rec.Code != 404 {
		t.Errorf("missing capture: code %d, want 404", rec.Code)
	}
}

func TestNilWatchIsNoOp(t *testing.T) {
	var w *Watch
	w.StageTiming(StageLRUGet, time.Millisecond)
	w.OnSpan("n", tracing.Span{Name: "x"})
	if r := w.OnFinish("n", tracing.KindRequest, "miss", time.Second); r != "" {
		t.Errorf("nil OnFinish = %q", r)
	}
	if w.Evaluate() != nil || w.Stages() != nil || w.Capturer() != nil {
		t.Error("nil Watch returned non-nil state")
	}
	w.Capturer().Trigger("x")
	w.Capturer().Wait()
}

// The hot-path hooks must not allocate: they run on every request (and
// on every LRU op) once a Watch is wired.
func TestHotPathAllocs(t *testing.T) {
	w := New(Config{Objectives: []Objective{{
		Name:      "client_p99",
		Threshold: 10 * time.Millisecond,
	}}})
	span := tracing.Span{Name: tracing.SpanLocalLookup, DurationUS: 42}
	if allocs := testing.AllocsPerRun(1000, func() {
		w.OnSpan("n1", span)
	}); allocs != 0 {
		t.Errorf("OnSpan allocates %v per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		w.StageTiming(StageLRUGet, time.Microsecond)
	}); allocs != 0 {
		t.Errorf("StageTiming allocates %v per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		w.OnFinish("n1", tracing.KindRequest, "local_hit", time.Millisecond)
	}); allocs != 0 {
		t.Errorf("OnFinish allocates %v per call, want 0", allocs)
	}
}

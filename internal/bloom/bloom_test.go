package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"summarycache/internal/hashing"
)

var testSpec = hashing.DefaultSpec

func TestNewFilterValidation(t *testing.T) {
	if _, err := NewFilter(0, testSpec); err != ErrBadSize {
		t.Fatalf("size 0: err = %v, want ErrBadSize", err)
	}
	if _, err := NewFilter(MaxBits+1, testSpec); err != ErrBadSize {
		t.Fatalf("oversize: err = %v, want ErrBadSize", err)
	}
	if _, err := NewFilter(1024, hashing.Spec{FunctionNum: 0, FunctionBits: 32}); err == nil {
		t.Fatal("accepted invalid spec")
	}
	f, err := NewFilter(1, testSpec)
	if err != nil || f.Size() != 1 {
		t.Fatalf("1-bit filter: %v, %v", f, err)
	}
}

func TestFilterAddTest(t *testing.T) {
	f := MustNewFilter(1<<16, testSpec)
	keys := []string{"http://a/", "http://b/", "http://c/x/y", ""}
	for _, k := range keys {
		if f.Test(k) {
			t.Errorf("empty filter claims %q present", k)
		}
	}
	for _, k := range keys {
		f.Add(k)
	}
	for _, k := range keys {
		if !f.Test(k) {
			t.Errorf("no false negatives allowed: %q missing", k)
		}
	}
}

func TestFilterSetClearBit(t *testing.T) {
	f := MustNewFilter(128, testSpec)
	changed, err := f.SetBit(5)
	if err != nil || !changed {
		t.Fatalf("SetBit(5) = %v, %v", changed, err)
	}
	changed, err = f.SetBit(5)
	if err != nil || changed {
		t.Fatalf("second SetBit(5) = %v, %v, want no change", changed, err)
	}
	if f.OnesCount() != 1 {
		t.Fatalf("ones = %d, want 1", f.OnesCount())
	}
	changed, err = f.ClearBit(5)
	if err != nil || !changed {
		t.Fatalf("ClearBit(5) = %v, %v", changed, err)
	}
	if f.OnesCount() != 0 {
		t.Fatalf("ones = %d, want 0", f.OnesCount())
	}
	if _, err := f.SetBit(128); err != ErrIndexRange {
		t.Fatalf("out-of-range SetBit err = %v", err)
	}
	if _, err := f.ClearBit(1 << 40); err != ErrIndexRange {
		t.Fatalf("out-of-range ClearBit err = %v", err)
	}
}

func TestFilterApply(t *testing.T) {
	f := MustNewFilter(256, testSpec)
	flips := []Flip{{Index: 3, Set: true}, {Index: 250, Set: true}, {Index: 3, Set: false}}
	if err := f.Apply(flips); err != nil {
		t.Fatal(err)
	}
	if f.OnesCount() != 1 {
		t.Fatalf("ones = %d, want 1", f.OnesCount())
	}
	if err := f.Apply([]Flip{{Index: 256, Set: true}}); err == nil {
		t.Fatal("Apply accepted out-of-range index")
	}
}

// Absolute flips must be idempotent: applying an update message twice (UDP
// duplication) leaves the filter identical.
func TestFilterApplyIdempotent(t *testing.T) {
	f := MustNewFilter(1024, testSpec)
	flips := []Flip{{1, true}, {2, true}, {700, true}, {2, false}}
	if err := f.Apply(flips); err != nil {
		t.Fatal(err)
	}
	before := f.Snapshot()
	if err := f.Apply(flips); err != nil {
		t.Fatal(err)
	}
	after := f.Snapshot()
	if string(before) != string(after) {
		t.Fatal("Apply is not idempotent")
	}
}

func TestFilterSnapshotRoundTrip(t *testing.T) {
	f := MustNewFilter(1000, testSpec) // deliberately not a multiple of 64
	for i := 0; i < 300; i++ {
		f.Add(fmt.Sprintf("http://host%d/doc", i))
	}
	snap := f.Snapshot()
	if len(snap) != 125 {
		t.Fatalf("snapshot size = %d, want 125", len(snap))
	}
	g := MustNewFilter(1000, testSpec)
	if err := g.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if g.OnesCount() != f.OnesCount() {
		t.Fatalf("ones after load = %d, want %d", g.OnesCount(), f.OnesCount())
	}
	for i := 0; i < 300; i++ {
		if !g.Test(fmt.Sprintf("http://host%d/doc", i)) {
			t.Fatalf("key %d lost in snapshot round trip", i)
		}
	}
	if err := g.LoadSnapshot(snap[:10]); err == nil {
		t.Fatal("LoadSnapshot accepted wrong-size snapshot")
	}
}

func TestFilterClone(t *testing.T) {
	f := MustNewFilter(512, testSpec)
	f.Add("x")
	g := f.Clone()
	g.Add("y")
	if f.Test("y") {
		t.Fatal("clone shares storage with original")
	}
	if !g.Test("x") {
		t.Fatal("clone lost original contents")
	}
}

func TestFilterReset(t *testing.T) {
	f := MustNewFilter(512, testSpec)
	f.Add("x")
	f.Reset()
	if f.OnesCount() != 0 || f.Test("x") {
		t.Fatal("Reset did not clear filter")
	}
}

func TestCountingFilterValidation(t *testing.T) {
	if _, err := NewCountingFilter(0, 4, testSpec); err != ErrBadSize {
		t.Fatalf("err = %v, want ErrBadSize", err)
	}
	if _, err := NewCountingFilter(64, 0, testSpec); err != ErrBadCounterBits {
		t.Fatalf("err = %v, want ErrBadCounterBits", err)
	}
	if _, err := NewCountingFilter(64, 17, testSpec); err != ErrBadCounterBits {
		t.Fatalf("err = %v, want ErrBadCounterBits", err)
	}
}

func TestCountingAddRemove(t *testing.T) {
	c := MustNewCountingFilter(1<<14, 4, testSpec)
	var flips []Flip
	flips = c.Add("http://a/", flips)
	if len(flips) != 4 {
		t.Fatalf("first add produced %d flips, want 4 (all bits fresh)", len(flips))
	}
	for _, fl := range flips {
		if !fl.Set {
			t.Fatal("add produced a clear flip")
		}
	}
	if !c.Test("http://a/") {
		t.Fatal("added key not found")
	}
	if c.Entries() != 1 {
		t.Fatalf("entries = %d, want 1", c.Entries())
	}
	flips = c.Remove("http://a/", nil)
	if len(flips) != 4 {
		t.Fatalf("remove produced %d flips, want 4", len(flips))
	}
	for _, fl := range flips {
		if fl.Set {
			t.Fatal("remove produced a set flip")
		}
	}
	if c.Test("http://a/") {
		t.Fatal("removed key still present")
	}
	if c.OnesCount() != 0 || c.Entries() != 0 {
		t.Fatalf("filter not empty after removal: ones=%d entries=%d", c.OnesCount(), c.Entries())
	}
}

func TestCountingSharedBitsNoFlipUntilZero(t *testing.T) {
	c := MustNewCountingFilter(1<<14, 4, testSpec)
	c.Add("k", nil)
	flips := c.Add("k", nil) // same key again: counters 1→2, no bit transitions
	if len(flips) != 0 {
		t.Fatalf("duplicate add produced %d flips, want 0", len(flips))
	}
	flips = c.Remove("k", nil) // 2→1: still no transitions
	if len(flips) != 0 {
		t.Fatalf("first remove produced %d flips, want 0", len(flips))
	}
	if !c.Test("k") {
		t.Fatal("key vanished while count still positive")
	}
	flips = c.Remove("k", nil) // 1→0: four clear flips
	if len(flips) != 4 {
		t.Fatalf("final remove produced %d flips, want 4", len(flips))
	}
}

func TestCountingSaturation(t *testing.T) {
	c := MustNewCountingFilter(64, 2, testSpec) // tiny: counters max at 3
	for i := 0; i < 50; i++ {
		c.Add("k", nil)
	}
	if c.Saturations() == 0 {
		t.Fatal("expected saturations with 2-bit counters and 50 inserts")
	}
	if got := c.MaxCount(); got != 3 {
		t.Fatalf("max count = %d, want saturation value 3", got)
	}
	// Saturated counters never decrement: removing 50 times leaves the bits set.
	for i := 0; i < 50; i++ {
		c.Remove("k", nil)
	}
	if !c.Test("k") {
		t.Fatal("saturated counters were decremented")
	}
}

func TestCountingUnderflowIgnored(t *testing.T) {
	c := MustNewCountingFilter(1<<12, 4, testSpec)
	flips := c.Remove("never-added", nil)
	if len(flips) != 0 {
		t.Fatalf("underflow produced flips: %v", flips)
	}
	if v, _ := c.Count(0); v != 0 {
		t.Fatal("underflow modified counters")
	}
}

func TestCountingCountAccess(t *testing.T) {
	c := MustNewCountingFilter(128, 4, testSpec)
	if _, err := c.Count(128); err != ErrIndexRange {
		t.Fatalf("err = %v, want ErrIndexRange", err)
	}
}

func TestCountingBitFilterDerivation(t *testing.T) {
	c := MustNewCountingFilter(1<<12, 4, testSpec)
	keys := []string{"a", "b", "c", "d", "e"}
	for _, k := range keys {
		c.Add(k, nil)
	}
	f := c.BitFilter()
	for _, k := range keys {
		if !f.Test(k) {
			t.Fatalf("derived filter missing %q", k)
		}
	}
	if f.OnesCount() != c.OnesCount() {
		t.Fatalf("derived ones=%d, counting ones=%d", f.OnesCount(), c.OnesCount())
	}
}

// Core protocol invariant: replaying the flip journal into a remote plain
// filter reproduces exactly the bit filter derived from the local counting
// filter, across an arbitrary interleaving of adds and removes.
func TestFlipJournalEquivalence(t *testing.T) {
	const m = 1 << 13
	c := MustNewCountingFilter(m, 4, testSpec)
	remote := MustNewFilter(m, testSpec)
	rng := rand.New(rand.NewSource(42))
	live := map[string]bool{}
	var journal []Flip
	for step := 0; step < 5000; step++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			k := fmt.Sprintf("http://h%d/d%d", rng.Intn(50), rng.Intn(2000))
			if !live[k] {
				live[k] = true
				journal = c.Add(k, journal)
			}
		} else {
			for k := range live {
				delete(live, k)
				journal = c.Remove(k, journal)
				break
			}
		}
	}
	if err := remote.Apply(journal); err != nil {
		t.Fatal(err)
	}
	local := c.BitFilter()
	if remote.OnesCount() != local.OnesCount() {
		t.Fatalf("remote ones=%d, local ones=%d", remote.OnesCount(), local.OnesCount())
	}
	if string(remote.Snapshot()) != string(local.Snapshot()) {
		t.Fatal("journal replay diverged from local bit filter")
	}
	for k := range live {
		if !remote.Test(k) {
			t.Fatalf("live key %q missing from remote filter", k)
		}
	}
}

func TestCountingReset(t *testing.T) {
	c := MustNewCountingFilter(1<<10, 4, testSpec)
	c.Add("x", nil)
	c.Reset()
	if c.OnesCount() != 0 || c.Entries() != 0 || c.Test("x") {
		t.Fatal("Reset did not clear counting filter")
	}
}

func TestCountingMemoryBytes(t *testing.T) {
	c := MustNewCountingFilter(1<<20, 4, testSpec)
	// 2^20 counters at 4 bits = 512 KiB.
	if got := c.MemoryBytes(); got != 1<<19 {
		t.Fatalf("MemoryBytes = %d, want %d", got, 1<<19)
	}
}

// Property: a counting filter never yields a false negative for live keys,
// under random add/remove interleavings (with counters wide enough not to
// saturate).
func TestQuickNoFalseNegatives(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNewCountingFilter(1<<12, 8, testSpec)
		live := map[string]bool{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(100))
			if live[k] {
				c.Remove(k, nil)
				delete(live, k)
			} else {
				c.Add(k, nil)
				live[k] = true
			}
		}
		for k := range live {
			if !c.Test(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: OnesCount always equals the popcount of the snapshot.
func TestQuickOnesCountConsistent(t *testing.T) {
	prop := func(keys []string) bool {
		f := MustNewFilter(4096, testSpec)
		for _, k := range keys {
			f.Add(k)
		}
		var pop uint64
		for _, b := range f.Snapshot() {
			for ; b != 0; b &= b - 1 {
				pop++
			}
		}
		return pop == f.OnesCount()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentFilterAccess(t *testing.T) {
	f := MustNewFilter(1<<16, testSpec)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i)
				f.Add(k)
				if !f.Test(k) {
					t.Errorf("concurrent false negative for %s", k)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func BenchmarkFilterAdd(b *testing.B) {
	f := MustNewFilter(1<<23, testSpec)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add("http://www.example.com/path/to/document.html")
	}
}

func BenchmarkFilterTest(b *testing.B) {
	f := MustNewFilter(1<<23, testSpec)
	f.Add("http://www.example.com/path/to/document.html")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Test("http://www.example.com/path/to/document.html")
	}
}

func BenchmarkCountingAdd(b *testing.B) {
	c := MustNewCountingFilter(1<<23, 4, testSpec)
	flips := make([]Flip, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		flips = c.Add("http://www.example.com/path/to/document.html", flips[:0])
	}
}

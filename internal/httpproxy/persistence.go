package httpproxy

import (
	"time"

	"summarycache/internal/obs"
	"summarycache/internal/persist"
)

// startPersistence opens the persist store, recovers whatever a previous
// run left behind, installs it (cache bodies, directory filter, peer
// replicas), takes a fresh boot checkpoint, and starts the periodic
// snapshot loop. Called from Start with the protocol endpoint already
// up; a persistence failure fails the boot — a proxy asked to be durable
// must not come up silently amnesiac.
func (p *Proxy) startPersistence(reg *obs.Registry, labels obs.Labels) error {
	if p.cfg.Persist == nil {
		return nil
	}
	pcfg := *p.cfg.Persist
	if pcfg.Logger == nil {
		pcfg.Logger = p.cfg.Logger
	}
	store, err := persist.Open(pcfg)
	if err != nil {
		return err
	}
	rec, err := store.Recover()
	if err != nil {
		_ = store.Close()
		return err
	}
	p.store = store
	p.recovery = rec.Stats
	if rec.Stats.Recovered {
		p.installRecovered(rec)
	}
	p.registerPersistMetrics(reg, labels)
	// The boot checkpoint re-captures the reconciled state under the next
	// generation: recovery work is never repeated, and the journal chain
	// the next crash replays starts here.
	if err := store.Checkpoint(p.captureSnapshot()); err != nil {
		_ = store.Close()
		p.store = nil
		return err
	}
	if interval := pcfg.SnapshotInterval; interval > 0 {
		p.snapStop = make(chan struct{})
		p.snapDone = make(chan struct{})
		go p.snapshotLoop(interval)
	}
	return nil
}

// installRecovered loads recovered state into the live structures:
// documents into the cache, the counting filter into the directory (with
// journal-replay removals applied), and the persisted peer replicas into
// the summary table.
func (p *Proxy) installRecovered(rec *persist.Recovered) {
	stored, dropped := p.cache.Restore(rec.Entries)
	if p.node != nil {
		dir := p.node.Directory()
		restored := false
		if rec.Directory != nil {
			if err := dir.RestoreState(rec.Directory); err == nil {
				restored = true
			} else if p.cfg.Logger != nil {
				p.cfg.Logger.Warn("directory state not restorable; rebuilding from keys", "err", err)
			}
		}
		if restored {
			// The blob claims the snapshot's documents; retire the ones the
			// journal evicted or staled (rec.Removed) and the ones the
			// current cache geometry could not readmit (dropped). The
			// counting filter's underflow guard absorbs any overlap-window
			// double-removal.
			for _, key := range rec.Removed {
				dir.Remove(key)
			}
			for _, key := range dropped {
				dir.Remove(key)
			}
		} else {
			// No blob, or the filter geometry changed across the restart:
			// rebuild the directory from the documents actually readmitted.
			for _, key := range p.cache.Keys() {
				dir.Insert(key)
			}
		}
		for _, st := range rec.Replicas {
			if err := p.node.PeerSummaries().RestoreReplica(st); err != nil && p.cfg.Logger != nil {
				p.cfg.Logger.Warn("peer replica not restorable", "peer", st.Peer, "err", err)
			}
		}
		p.node.NoteRecovery(stored, len(rec.Replicas))
	}
}

// registerPersistMetrics exposes the store's counters as scrape-time
// reads of the store's own accounting — one source of truth, like the
// cache metrics above.
func (p *Proxy) registerPersistMetrics(reg *obs.Registry, labels obs.Labels) {
	reg.CounterFunc("summarycache_persist_snapshots_total",
		"checkpoints completed", labels,
		func() uint64 { return p.store.Stats().Snapshots })
	reg.CounterFunc("summarycache_persist_snapshot_bytes_total",
		"bytes written across all snapshots", labels,
		func() uint64 { return p.store.Stats().SnapshotBytes })
	reg.CounterFunc("summarycache_persist_snapshot_errors_total",
		"checkpoints that failed", labels,
		func() uint64 { return p.store.Stats().SnapshotErrors })
	reg.CounterFunc("summarycache_persist_journal_records_total",
		"cache mutations journaled", labels,
		func() uint64 { return p.store.Stats().JournalRecords })
	reg.CounterFunc("summarycache_persist_journal_bytes_total",
		"journal bytes written", labels,
		func() uint64 { return p.store.Stats().JournalBytes })
	reg.CounterFunc("summarycache_persist_journal_fsyncs_total",
		"explicit journal syncs issued", labels,
		func() uint64 { return p.store.Stats().JournalFsyncs })
	reg.CounterFunc("summarycache_persist_journal_errors_total",
		"journal append or sync failures", labels,
		func() uint64 { return p.store.Stats().JournalErrors })
	reg.GaugeFunc("summarycache_persist_recovered_entries",
		"documents reinstalled by this boot's warm recovery", labels,
		func() float64 { return float64(p.recovery.Entries) })
}

// captureSnapshot assembles one checkpoint's state from the live
// structures. Each capture is weakly consistent under concurrent
// traffic; the journal records written around it reconcile the skew at
// replay.
func (p *Proxy) captureSnapshot() persist.SnapshotData {
	data := persist.SnapshotData{Entries: p.cache.Entries()}
	if p.node != nil {
		data.Directory = p.node.Directory().StateSnapshot()
		data.Replicas = p.node.PeerSummaries().ExportReplicas()
	}
	return data
}

// Checkpoint forces a snapshot now (no-op without persistence) — what
// the periodic loop and the clean shutdown both call.
func (p *Proxy) Checkpoint() error {
	if p.store == nil {
		return nil
	}
	return p.store.Checkpoint(p.captureSnapshot())
}

func (p *Proxy) snapshotLoop(interval time.Duration) {
	defer close(p.snapDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := p.Checkpoint(); err != nil && p.cfg.Logger != nil {
				p.cfg.Logger.Warn("periodic checkpoint failed", "err", err)
			}
		case <-p.snapStop:
			return
		}
	}
}

// shutdownPersist stops the snapshot loop and closes the store, taking
// one final checkpoint first when the shutdown is clean (final=false is
// the simulated crash: whatever the journal holds is what recovery gets).
func (p *Proxy) shutdownPersist(final bool) error {
	if p.store == nil {
		return nil
	}
	var err error
	p.persistOnce.Do(func() {
		if p.snapStop != nil {
			close(p.snapStop)
			<-p.snapDone
		}
		if final {
			err = p.store.Checkpoint(p.captureSnapshot())
		}
		if cerr := p.store.Close(); err == nil {
			err = cerr
		}
	})
	return err
}

// Recovery reports what this proxy's boot recovered from its persist
// directory (the zero value when persistence is off or the directory was
// empty).
func (p *Proxy) Recovery() persist.RecoveryStats { return p.recovery }

// PersistStats snapshots the persistence counters (zero without
// persistence), read from the same accounting /metrics scrapes.
func (p *Proxy) PersistStats() persist.Stats {
	if p.store == nil {
		return persist.Stats{}
	}
	return p.store.Stats()
}

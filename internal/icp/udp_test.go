package icp

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
	"summarycache/internal/tracing"
)

// echoResponder answers queries with HIT for URLs in its set, MISS
// otherwise.
func echoResponder(t *testing.T, hits map[string]bool) *Conn {
	t.Helper()
	var c *Conn
	var err error
	c, err = Listen("127.0.0.1:0", func(from *net.UDPAddr, m Message) {
		if m.Op != OpQuery {
			return
		}
		op := OpMiss
		if hits[m.URL] {
			op = OpHit
		}
		if err := c.Send(from, NewReply(op, m.ReqNum, m.URL)); err != nil {
			t.Logf("reply failed: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() { c.Close() })
	return c
}

func client(t *testing.T) *Conn {
	t.Helper()
	c, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() { c.Close() })
	return c
}

func TestQueryHitMiss(t *testing.T) {
	srv := echoResponder(t, map[string]bool{"http://hit/": true})
	cli := client(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	m, err := cli.Query(ctx, srv.Addr(), "http://hit/")
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != OpHit || m.URL != "http://hit/" {
		t.Fatalf("got %+v, want HIT", m)
	}
	m, err = cli.Query(ctx, srv.Addr(), "http://miss/")
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != OpMiss {
		t.Fatalf("got %+v, want MISS", m)
	}
	st := cli.Stats()
	if st.Sent != 2 || st.Received != 2 {
		t.Fatalf("client stats = %+v, want 2 sent / 2 received", st)
	}
}

func TestQueryTimeout(t *testing.T) {
	// A peer that never answers: queries must fail with ctx expiry.
	silent, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	silent.Start()
	defer silent.Close()
	cli := client(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cli.Query(ctx, silent.Addr(), "http://x/"); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestQueryAll(t *testing.T) {
	miss1 := echoResponder(t, nil)
	miss2 := echoResponder(t, nil)
	hitSrv := echoResponder(t, map[string]bool{"http://doc/": true})
	cli := client(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	hit, from, req1, err := cli.QueryAll(ctx, []*net.UDPAddr{miss1.Addr(), hitSrv.Addr(), miss2.Addr()}, "http://doc/")
	if err != nil {
		t.Fatal(err)
	}
	if !hit || from.Port != hitSrv.Addr().Port {
		t.Fatalf("hit=%v from=%v, want hit from %v", hit, from, hitSrv.Addr())
	}

	hit, _, req2, err := cli.QueryAll(ctx, []*net.UDPAddr{miss1.Addr(), miss2.Addr()}, "http://doc/")
	if err != nil || hit {
		t.Fatalf("hit=%v err=%v, want miss", hit, err)
	}
	if req2 == req1 {
		t.Fatalf("consecutive fan-outs share RequestNumber %d", req1)
	}

	// No peers: trivially a miss.
	hit, _, _, err = cli.QueryAll(ctx, nil, "http://doc/")
	if err != nil || hit {
		t.Fatal("empty peer set should be a clean miss")
	}
}

func TestQueryAllTimeoutsAreMisses(t *testing.T) {
	silent, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	silent.Start()
	defer silent.Close()
	cli := client(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	hit, _, _, err := cli.QueryAll(ctx, []*net.UDPAddr{silent.Addr()}, "http://x/")
	if err != nil {
		t.Fatalf("timeout should be a miss, got error %v", err)
	}
	if hit {
		t.Fatal("silent peer produced a hit")
	}
}

// TestRequestNumberWraparound crosses the 2^32 request-number boundary
// and checks that query bookkeeping (reply routing, pending-table cleanup)
// and trace-ID correlation both survive: reqNum 0 is an ordinary value,
// not a sentinel.
func TestRequestNumberWraparound(t *testing.T) {
	hitSrv := echoResponder(t, map[string]bool{"http://doc/": true})
	missSrv := echoResponder(t, nil)
	cli := client(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Position the counter so the six fan-outs below carry reqNums
	// MaxUint32-2, MaxUint32-1, MaxUint32, 0, 1, 2 — straddling the wrap.
	cli.SeedReqNum(math.MaxUint32 - 3)

	querier := cli.Addr().String()
	seenReq := make(map[uint32]bool)
	seenID := make(map[tracing.ID]bool)
	for i := 0; i < 6; i++ {
		hit, from, reqNum, err := cli.QueryAll(ctx,
			[]*net.UDPAddr{missSrv.Addr(), hitSrv.Addr()}, "http://doc/")
		if err != nil {
			t.Fatalf("fan-out %d: %v", i, err)
		}
		if !hit || from.Port != hitSrv.Addr().Port {
			t.Fatalf("fan-out %d: hit=%v from=%v, want hit from %v",
				i, hit, from, hitSrv.Addr())
		}
		if seenReq[reqNum] {
			t.Fatalf("fan-out %d: reqNum %d reused within the window", i, reqNum)
		}
		seenReq[reqNum] = true
		id := tracing.IDFromICP(querier, reqNum)
		if seenID[id] {
			t.Fatalf("fan-out %d: trace ID %v collides across the wrap", i, id)
		}
		seenID[id] = true
	}
	if !seenReq[0] || !seenReq[math.MaxUint32] {
		t.Fatalf("window %v did not straddle the wrap", seenReq)
	}

	// Every fan-out unregistered itself: a wrapped reqNum must not leak
	// or clobber pending-table entries.
	cli.mu.Lock()
	leaked := len(cli.pending)
	cli.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("pending table leaked %d entries across the wrap", leaked)
	}
}

func TestDirUpdateDelivery(t *testing.T) {
	var mu sync.Mutex
	received := bloom.MustNewFilter(1<<12, hashing.DefaultSpec)
	gotUpdate := make(chan struct{}, 16)
	srv, err := Listen("127.0.0.1:0", func(from *net.UDPAddr, m Message) {
		if m.Op != OpDirUpdate || m.Update == nil {
			return
		}
		mu.Lock()
		if err := received.Apply(m.Update.Flips); err != nil {
			t.Errorf("apply: %v", err)
		}
		mu.Unlock()
		gotUpdate <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	cli := client(t)

	// Build a local directory and ship its journal in chunks.
	counting := bloom.MustNewCountingFilter(1<<12, 4, hashing.DefaultSpec)
	var journal []bloom.Flip
	urls := []string{"http://a/", "http://b/", "http://c/"}
	for _, u := range urls {
		journal = counting.Add(u, journal)
	}
	msgs := SplitUpdate(1, hashing.DefaultSpec, 1<<12, journal, 5)
	for _, m := range msgs {
		if err := cli.Send(srv.Addr(), m); err != nil {
			t.Fatal(err)
		}
	}
	for range msgs {
		select {
		case <-gotUpdate:
		case <-time.After(2 * time.Second):
			t.Fatal("update not delivered")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, u := range urls {
		if !received.Test(u) {
			t.Fatalf("receiver filter missing %s", u)
		}
	}
}

func TestGarbageDatagramCounted(t *testing.T) {
	srv := echoResponder(t, nil)
	raw, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("not icp")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().Dropped >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("garbage not counted as dropped: %+v", srv.Stats())
}

func TestClosedConnOperations(t *testing.T) {
	c, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	addr := c.Addr()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	ctx := context.Background()
	if _, err := c.Query(ctx, addr, "http://x/"); err != ErrClosed {
		t.Fatalf("query on closed conn: err = %v, want ErrClosed", err)
	}
}

func TestCloseFailsInflightQueries(t *testing.T) {
	silent, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	silent.Start()
	defer silent.Close()
	cli, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	cli.Start()
	errCh := make(chan error, 1)
	go func() {
		_, err := cli.Query(context.Background(), silent.Addr(), "http://x/")
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the query register
	cli.Close()
	select {
	case err := <-errCh:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight query not released by Close")
	}
}

func TestConcurrentQueries(t *testing.T) {
	srv := echoResponder(t, map[string]bool{"http://hot/": true})
	cli := client(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := "http://miss/"
			wantHit := i%2 == 0
			if wantHit {
				url = "http://hot/"
			}
			m, err := cli.Query(ctx, srv.Addr(), url)
			if err != nil {
				errs <- err
				return
			}
			if wantHit != (m.Op == OpHit) {
				t.Errorf("url %s: op %v", url, m.Op)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// gatedSock blocks every transmission until the gate opens, then records
// each datagram in the order it actually left the endpoint.
type gatedSock struct {
	PacketConn
	gate chan struct{}
	mu   sync.Mutex
	sent [][]byte
}

func (g *gatedSock) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	<-g.gate
	g.mu.Lock()
	g.sent = append(g.sent, append([]byte(nil), b...))
	g.mu.Unlock()
	return g.PacketConn.WriteToUDP(b, addr)
}

func (g *gatedSock) transmitted() [][]byte {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([][]byte(nil), g.sent...)
}

// TestSendAsyncFullRingPreservesOrder fills the send ring while the
// socket is blocked and asserts that every DIRUPDATE leaves the endpoint
// in submission order, and that a replica applying the stream in that
// order lands bit-exactly on the sender's final state. The old full-ring
// behavior degraded to a synchronous in-line send, which let an older
// queued flip record for a bit be delivered AFTER a newer one — absolute
// records are last-write-wins per bit, so that overtake left the
// receiver's replica permanently stale.
func TestSendAsyncFullRingPreservesOrder(t *testing.T) {
	gate := make(chan struct{})
	var gs *gatedSock
	c, err := ListenWith("127.0.0.1:0", ListenConfig{
		Wrap: func(pc PacketConn) PacketConn {
			gs = &gatedSock{PacketConn: pc, gate: gate}
			return gs
		},
		Config: Config{SendQueue: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	// Alternate set/clear on one bit; the last record clears it, so the
	// in-order final replica state is the empty filter.
	const sends = 12
	const bit = 7
	spec := hashing.DefaultSpec
	dst := c.Addr()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < sends; i++ {
			m := NewDirUpdate(uint32(i+1), spec, 64, []bloom.Flip{{Index: bit, Set: i%2 == 0}})
			if err := c.SendAsync(dst, m); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	// Wait until the drainer holds one datagram and the ring is full, so
	// the sender goroutine is parked on the back-pressure path, then open
	// the gate.
	deadline := time.Now().Add(5 * time.Second)
	for len(c.sendQ) < cap(c.sendQ) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		if len(gs.transmitted()) == sends {
			break
		}
		time.Sleep(time.Millisecond)
	}

	replica, err := bloom.NewFilter(64, spec)
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	for i, raw := range gs.transmitted() {
		m, err := dec.Decode(raw)
		if err != nil {
			t.Fatalf("decode datagram %d: %v", i, err)
		}
		if m.ReqNum != uint32(i+1) {
			t.Fatalf("datagram %d transmitted out of order: ReqNum %d", i, m.ReqNum)
		}
		if err := replica.Apply(m.Update.Flips); err != nil {
			t.Fatalf("apply datagram %d: %v", i, err)
		}
	}
	if got := len(gs.transmitted()); got != sends {
		t.Fatalf("transmitted %d datagrams, want %d", got, sends)
	}
	empty, err := bloom.NewFilter(64, spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(replica.Snapshot()) != string(empty.Snapshot()) {
		t.Fatal("replica diverged: in-order delivery must end with the bit cleared")
	}
}

// Package ok is the stray-printing negative fixture: writing to an
// explicit destination is fine; only ambient stdout/stderr printing is
// a smell in library code.
package ok

import (
	"fmt"
	"io"
	"strings"
)

func render(w io.Writer, n int) {
	fmt.Fprintf(w, "n=%d\n", n)
	fmt.Fprintln(w, "done")
}

func format(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", n)
	return b.String() + fmt.Sprintf(" (%d)", n)
}

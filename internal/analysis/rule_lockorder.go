package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrderRule builds the static lock-acquisition graph of the whole
// universe — an edge A→B whenever a lock of class B is acquired (in the
// same body or through a statically resolved call chain) while a lock
// of class A is held — and reports the shapes that deadlock:
//
//   - a cycle: two call paths acquire the same classes in opposite
//     orders, so two goroutines interleaving them can each hold what the
//     other wants;
//   - a self-edge: nested acquisition of the same class (two shard
//     mutexes, two stripe mutexes) deadlocks unless every path orders
//     the instances identically.
//
// Intentional hierarchies are declared, not silenced. A declaration
//
//	//lint:lockorder pkg.Type.field < pkg.Type.field2 <reason>
//
// anywhere in the universe sanctions edges in the declared direction
// (including A < A for canonical-instance-order nesting, e.g. "stripes
// are always locked in ascending index order") and turns any edge in
// the opposite direction into a direct violation report — stronger than
// a suppression, because the declared order keeps being checked.
type lockOrderRule struct {
	u      *Universe
	perPkg map[*Package][]pendingFinding
}

type pendingFinding struct {
	pos token.Pos
	msg string
}

func (r *lockOrderRule) Name() string { return RuleLockOrder }

func (r *lockOrderRule) Doc() string {
	return "lock acquisition order must be acyclic across the module; declare intended hierarchies with //lint:lockorder A < B <reason>"
}

func (r *lockOrderRule) Check(pkg *Package, report ReportFunc) {
	if pkg.Universe == nil {
		return
	}
	if r.u != pkg.Universe {
		r.analyze(pkg.Universe)
		r.u = pkg.Universe
	}
	for _, f := range r.perPkg[pkg] {
		report(f.pos, "%s", f.msg)
	}
}

// lockEdge is one ordered acquisition: to acquired while from is held.
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos // the site creating the edge (acquisition or call)
	via      string    // non-empty when the acquisition is inside a callee
	deepPos  token.Pos // acquisition site inside the callee
	pkg      *Package  // package owning pos, for finding bucketing
}

const lockOrderPrefix = "//lint:lockorder "

// lockOrderDecl is one parsed hierarchy declaration.
type lockOrderDecl struct {
	a, b   string
	reason string
}

func (r *lockOrderRule) analyze(u *Universe) {
	r.perPkg = map[*Package][]pendingFinding{}
	s := u.summaries()
	emit := func(pkg *Package, pos token.Pos, format string, args ...any) {
		r.perPkg[pkg] = append(r.perPkg[pkg], pendingFinding{pos: pos, msg: fmt.Sprintf(format, args...)})
	}

	// Hierarchy declarations, universe-wide. A malformed declaration is
	// itself a finding: it would otherwise silently sanction nothing.
	declared := map[[2]string]lockOrderDecl{}
	for _, pkg := range u.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, lockOrderPrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 4 || fields[1] != "<" {
						emit(pkg, c.Pos(),
							"malformed //lint:lockorder; want \"//lint:lockorder pkg.Type.field < pkg.Type.field <reason>\"")
						continue
					}
					d := lockOrderDecl{a: fields[0], b: fields[2], reason: strings.Join(fields[3:], " ")}
					declared[[2]string{d.a, d.b}] = d
				}
			}
		}
	}

	// Edges from every function and literal body.
	labels := map[*types.Var]string{}
	label := func(v *types.Var) string {
		if l, ok := labels[v]; ok {
			return l
		}
		l := lockLabel(v)
		labels[v] = l
		return l
	}
	var edges []lockEdge
	collect := func(fi *funcInfo) {
		for _, acq := range fi.acquires {
			for _, h := range acq.held {
				edges = append(edges, lockEdge{from: h.class, to: acq.class, pos: acq.pos, pkg: fi.pkg})
			}
		}
		for _, cs := range fi.calls {
			if len(cs.held) == 0 {
				continue
			}
			for class, deep := range s.mayAcquire(cs.callee) {
				for _, h := range cs.held {
					edges = append(edges, lockEdge{
						from: h.class, to: class, pos: cs.pos,
						via: funcName(cs.callee), deepPos: deep, pkg: fi.pkg,
					})
				}
			}
		}
	}
	for _, fi := range s.funcs {
		collect(fi)
	}
	for _, fi := range s.lits {
		collect(fi)
	}

	// Deterministic order, then one representative edge per (from, to).
	sort.Slice(edges, func(i, j int) bool {
		pi, pj := u.Fset.Position(edges[i].pos), u.Fset.Position(edges[j].pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return label(edges[i].to) < label(edges[j].to)
	})
	seen := map[[2]*types.Var]bool{}
	uniq := edges[:0]
	for _, e := range edges {
		k := [2]*types.Var{e.from, e.to}
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, e)
	}
	edges = uniq

	// Split: sanctioned edges drop out, reversed-declaration edges are
	// violations, the rest feed cycle detection.
	var graph []lockEdge
	for _, e := range edges {
		la, lb := label(e.from), label(e.to)
		if _, ok := declared[[2]string{la, lb}]; ok {
			continue
		}
		if d, ok := declared[[2]string{lb, la}]; ok && la != lb {
			emit(e.pkg, e.pos,
				"acquiring %s while holding %s contradicts the declared hierarchy //lint:lockorder %s < %s (%s)%s",
				lb, la, d.a, d.b, d.reason, r.viaSuffix(u, e))
			continue
		}
		graph = append(graph, e)
	}

	// Self-edges are 1-cycles; larger knots come out of the SCCs.
	inCycle := cycleMembers(graph)
	for _, e := range graph {
		la, lb := label(e.from), label(e.to)
		switch {
		case e.from == e.to:
			emit(e.pkg, e.pos,
				"lock %s is acquired while another %s is already held; nested same-class acquisition deadlocks unless instances are always taken in one canonical order — declare //lint:lockorder %s < %s <reason> if that order exists%s",
				lb, la, la, la, r.viaSuffix(u, e))
		case inCycle[e.from] && inCycle[e.to] && inSameSCC(graph, e):
			emit(e.pkg, e.pos,
				"acquiring %s while holding %s is part of a lock-order cycle [%s]; goroutines interleaving these acquisitions in opposite orders deadlock — declare the intended hierarchy with //lint:lockorder or restructure%s",
				lb, la, cycleList(graph, e, label), r.viaSuffix(u, e))
		}
	}
}

func (r *lockOrderRule) viaSuffix(u *Universe, e lockEdge) string {
	if e.via == "" {
		return ""
	}
	p := u.Fset.Position(e.deepPos)
	return fmt.Sprintf(" (via call to %s, which locks at %s:%d)", e.via, filepathBase(p.Filename), p.Line)
}

// --- cycle detection --------------------------------------------------

// sccOf computes strongly connected components (Tarjan) over the edge
// list and returns each node's component id.
func sccOf(edges []lockEdge) map[*types.Var]int {
	adj := map[*types.Var][]*types.Var{}
	nodes := map[*types.Var]bool{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	index := map[*types.Var]int{}
	low := map[*types.Var]int{}
	onStack := map[*types.Var]bool{}
	comp := map[*types.Var]int{}
	var stack []*types.Var
	next, ncomp := 0, 0
	var strong func(v *types.Var)
	strong = func(v *types.Var) {
		next++
		index[v], low[v] = next, next
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			ncomp++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
		}
	}
	for v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	return comp
}

// cycleMembers marks nodes inside a multi-node SCC.
func cycleMembers(edges []lockEdge) map[*types.Var]bool {
	comp := sccOf(edges)
	size := map[int]int{}
	for _, c := range comp {
		size[c]++
	}
	out := map[*types.Var]bool{}
	for v, c := range comp {
		if size[c] > 1 {
			out[v] = true
		}
	}
	return out
}

// inSameSCC reports whether e's endpoints share a component (the edge is
// a link in a cycle rather than an entry into one).
func inSameSCC(edges []lockEdge, e lockEdge) bool {
	comp := sccOf(edges)
	return comp[e.from] == comp[e.to]
}

// cycleList renders the sorted labels of the component e belongs to.
func cycleList(edges []lockEdge, e lockEdge, label func(*types.Var) string) string {
	comp := sccOf(edges)
	id := comp[e.from]
	seen := map[string]bool{}
	var names []string
	for v, c := range comp {
		if c == id && !seen[label(v)] {
			seen[label(v)] = true
			names = append(names, label(v))
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// lockLabel names a lock class the way declarations spell it:
// pkg.Type.field for struct fields, pkg.var for package-level mutexes.
func lockLabel(v *types.Var) string {
	pkg := "?"
	if v.Pkg() != nil {
		pkg = v.Pkg().Name()
	}
	if v.IsField() {
		if owner := fieldOwner(v); owner != "" {
			return pkg + "." + owner + "." + v.Name()
		}
	}
	return pkg + "." + v.Name()
}

// fieldOwner finds the package-scope named type whose struct declares
// field v ("" when the owner is unnamed or function-local).
func fieldOwner(v *types.Var) string {
	if v.Pkg() == nil {
		return ""
	}
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return name
			}
		}
	}
	return ""
}

// Package obs is a miniature stand-in for the real metrics registry,
// just enough surface for the stats-drift rule to recognise
// reg.Counter/Gauge/Histogram(...) registrations in the sibling fixtures.
package obs

// Label is one metric dimension.
type Label struct{ Name, Value string }

// Labels is the label set attached at registration time.
type Labels []Label

// Counter is a monotonically increasing metric.
type Counter struct{ n uint64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.n++ }

// Gauge is a metric that can go up and down.
type Gauge struct{ n int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.n = n }

// Histogram buckets observations.
type Histogram struct{ n uint64 }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.n++; _ = v }

// HistogramSnapshot is the scalar Stats-struct form of a Histogram.
type HistogramSnapshot struct {
	Count uint64
	Sum   float64
}

// Registry registers metrics by name.
type Registry struct{}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	_ = name
	_ = help
	_ = labels
	return &Counter{}
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	_ = name
	_ = help
	_ = labels
	return &Gauge{}
}

// Histogram registers and returns a histogram.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	_ = name
	_ = help
	_ = labels
	_ = bounds
	return &Histogram{}
}

// CounterFunc registers a callback-backed counter; the stats-drift rule
// deliberately ignores it.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	_ = name
	_ = help
	_ = labels
	_ = fn
}

// GaugeFunc registers a callback-backed gauge; the stats-drift rule
// deliberately ignores it.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	_ = name
	_ = help
	_ = labels
	_ = fn
}

// Package ok uses the very constructs the determinism rule flags — but
// lives outside the scoped replay paths, so none of them is reported.
package ok

import (
	"math/rand"
	"time"
)

func wall() int64 { return time.Now().UnixNano() }

func sinceBoot(t time.Time) time.Duration { return time.Since(t) }

func roll() int { return rand.Intn(6) }

func keys(m map[string]int) int {
	var n int
	for range m {
		n++
	}
	return n
}

package httpproxy

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/origin"
)

// mesh starts an origin plus n proxies in the given mode, fully peered.
type mesh struct {
	origin  *origin.Server
	proxies []*Proxy
}

func newMesh(t *testing.T, n int, mode Mode, originLatency time.Duration) *mesh {
	t.Helper()
	org, err := origin.Start(origin.Config{Latency: originLatency})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	m := &mesh{origin: org}
	for i := 0; i < n; i++ {
		p, err := Start(Config{
			Mode:       mode,
			CacheBytes: 8 << 20,
			Summary: core.DirectoryConfig{
				ExpectedDocs: 2000, UpdateThreshold: 0.01,
			},
			QueryTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		m.proxies = append(m.proxies, p)
	}
	if mode != ModeNone {
		for i, p := range m.proxies {
			for j, q := range m.proxies {
				if i != j {
					if err := p.AddPeer(q.ICPAddr(), q.URL()); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	return m
}

// fetch requests target through proxy p using the explicit proxy form.
func (m *mesh) fetch(t *testing.T, p *Proxy, target string) []byte {
	t.Helper()
	resp, err := http.Get(p.URL() + ProxyPath + "?url=" + url.QueryEscape(target))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	return body
}

func (m *mesh) docURL(path string, size int64) string {
	return origin.DocURL(m.origin.URL(), path, size, 0)
}

func TestModeStrings(t *testing.T) {
	for _, mo := range []Mode{ModeNone, ModeICP, ModeSCICP, Mode(9)} {
		if mo.String() == "" {
			t.Errorf("empty string for mode %d", int(mo))
		}
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{CacheBytes: 0}); err == nil {
		t.Error("accepted zero cache")
	}
	if _, err := Start(Config{CacheBytes: 1 << 20, Mode: Mode(9)}); err == nil {
		t.Error("accepted unknown mode")
	}
}

func TestLocalHitAndMiss(t *testing.T) {
	m := newMesh(t, 1, ModeNone, 0)
	p := m.proxies[0]
	u := m.docURL("doc1", 4096)

	body := m.fetch(t, p, u)
	if len(body) != 4096 {
		t.Fatalf("body %d bytes", len(body))
	}
	body = m.fetch(t, p, u) // second request: local hit
	if len(body) != 4096 {
		t.Fatalf("hit body %d bytes", len(body))
	}
	st := p.Stats()
	if st.ClientRequests != 2 || st.LocalHits != 1 || st.Misses != 1 || st.OriginFetches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if m.origin.Stats().Requests != 1 {
		t.Fatalf("origin saw %d requests, want 1", m.origin.Stats().Requests)
	}
}

func TestAbsoluteFormProxying(t *testing.T) {
	m := newMesh(t, 1, ModeNone, 0)
	p := m.proxies[0]
	u := m.docURL("abs", 1000)
	proxyURL, _ := url.Parse(p.URL())
	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)}}
	resp, err := client.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 1000 {
		t.Fatalf("status %d, %d bytes", resp.StatusCode, len(body))
	}
	if p.Stats().ClientRequests != 1 {
		t.Fatal("absolute-form request not served by proxy")
	}
}

func TestBadRequests(t *testing.T) {
	m := newMesh(t, 1, ModeNone, 0)
	p := m.proxies[0]
	resp, err := http.Get(p.URL() + ProxyPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing url: status %d", resp.StatusCode)
	}
	resp, err = http.Get(p.URL() + "/random")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("origin-form request: status %d", resp.StatusCode)
	}
}

func TestOriginDown(t *testing.T) {
	m := newMesh(t, 1, ModeNone, 0)
	resp, err := http.Get(m.proxies[0].URL() + ProxyPath + "?url=" +
		url.QueryEscape("http://127.0.0.1:1/unreachable"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
}

func TestICPRemoteHit(t *testing.T) {
	m := newMesh(t, 2, ModeICP, 0)
	u := m.docURL("shared", 2048)

	m.fetch(t, m.proxies[0], u) // miss → origin; proxy 0 caches
	m.fetch(t, m.proxies[1], u) // miss → ICP finds proxy 0 → remote hit

	st1 := m.proxies[1].Stats()
	if st1.RemoteHits != 1 || st1.Misses != 0 {
		t.Fatalf("proxy1 stats = %+v, want one remote hit", st1)
	}
	if m.origin.Stats().Requests != 1 {
		t.Fatalf("origin saw %d requests, want 1 (remote hit avoided a fetch)",
			m.origin.Stats().Requests)
	}
	// After a remote hit, simple sharing caches locally: a third request on
	// proxy 1 is a local hit.
	m.fetch(t, m.proxies[1], u)
	if m.proxies[1].Stats().LocalHits != 1 {
		t.Fatal("remote hit was not cached locally")
	}
	// ICP traffic flowed.
	if st1.UDP.Sent == 0 || st1.UDP.Received == 0 {
		t.Fatalf("no ICP traffic recorded: %+v", st1.UDP)
	}
}

func TestICPAllMissQueriesEveryone(t *testing.T) {
	m := newMesh(t, 4, ModeICP, 0)
	u := m.docURL("lonely", 512)
	m.fetch(t, m.proxies[0], u)
	st := m.proxies[0].Stats()
	// One miss → 3 queries out, 3 replies back.
	if st.UDP.Sent != 3 || st.UDP.Received != 3 {
		t.Fatalf("UDP stats = %+v, want 3 sent / 3 received", st.UDP)
	}
}

func TestSCICPRemoteHit(t *testing.T) {
	m := newMesh(t, 2, ModeSCICP, 0)
	u := m.docURL("scdoc", 2048)

	m.fetch(t, m.proxies[0], u) // proxy 0 caches; summary update flows
	m.proxies[0].FlushSummary() // force publication
	waitForCandidate(t, m.proxies[1], u)

	m.fetch(t, m.proxies[1], u)
	st := m.proxies[1].Stats()
	if st.RemoteHits != 1 {
		t.Fatalf("stats = %+v, want one remote hit", st)
	}
	if m.origin.Stats().Requests != 1 {
		t.Fatalf("origin saw %d requests", m.origin.Stats().Requests)
	}
	if st.Node.QueriesSent != 1 {
		t.Fatalf("SC-ICP sent %d queries, want exactly 1 (only the promising peer)",
			st.Node.QueriesSent)
	}
}

func waitForCandidate(t *testing.T, p *Proxy, u string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(p.node.PeerSummaries().Candidates(u)) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("summary never replicated")
}

func TestSCICPNoQueriesWhenSummariesSayNo(t *testing.T) {
	m := newMesh(t, 3, ModeSCICP, 0)
	// Unique documents per proxy: summaries rule peers out, so SC-ICP sends
	// (almost) no queries — the paper's core claim.
	for i, p := range m.proxies {
		for j := 0; j < 20; j++ {
			m.fetch(t, p, m.docURL(fmt.Sprintf("p%d/doc%d", i, j), 1024))
		}
	}
	var totalQueries uint64
	for _, p := range m.proxies {
		totalQueries += p.Stats().Node.QueriesSent
	}
	// 60 misses × 2 peers = 120 ICP queries under classic ICP; summaries
	// should eliminate nearly all (false positives allow a few).
	if totalQueries > 12 {
		t.Fatalf("SC-ICP sent %d queries for disjoint working sets, want ≈0", totalQueries)
	}
}

func TestCacheOnlyEndpoint(t *testing.T) {
	m := newMesh(t, 1, ModeNone, 0)
	p := m.proxies[0]
	u := m.docURL("co", 100)
	m.fetch(t, p, u)

	resp, err := http.Get(p.URL() + CacheOnlyPath + "?url=" + url.QueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 100 {
		t.Fatalf("cacheonly: status %d, %d bytes", resp.StatusCode, len(body))
	}
	// Cache-only miss must 404, not fetch.
	before := m.origin.Stats().Requests
	resp, err = http.Get(p.URL() + CacheOnlyPath + "?url=" + url.QueryEscape(m.docURL("absent", 10)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cacheonly miss: status %d", resp.StatusCode)
	}
	if m.origin.Stats().Requests != before {
		t.Fatal("cache-only miss triggered an origin fetch")
	}
}

func TestUncacheableLargeDocServed(t *testing.T) {
	m := newMesh(t, 1, ModeNone, 0)
	p := m.proxies[0]
	u := m.docURL("big", 300*1024) // over the 250 KB limit
	body := m.fetch(t, p, u)
	if len(body) != 300*1024 {
		t.Fatalf("body %d", len(body))
	}
	if p.CacheLen() != 0 {
		t.Fatal("uncacheable document was cached")
	}
	// Second request fetches again.
	m.fetch(t, p, u)
	if m.origin.Stats().Requests != 2 {
		t.Fatal("large doc should not be served from cache")
	}
}

func TestAddPeerModeNoneRejected(t *testing.T) {
	m := newMesh(t, 2, ModeNone, 0)
	if err := m.proxies[0].AddPeer(nil, m.proxies[1].URL()); err == nil {
		t.Fatal("ModeNone accepted a peer")
	}
}

func TestConcurrentClients(t *testing.T) {
	m := newMesh(t, 2, ModeSCICP, 0)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 25; i++ {
				u := m.docURL(fmt.Sprintf("c%d", i%10), 1024)
				resp, err := http.Get(m.proxies[g%2].URL() + ProxyPath + "?url=" + url.QueryEscape(u))
				if err != nil {
					done <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	total := m.proxies[0].Stats().ClientRequests + m.proxies[1].Stats().ClientRequests
	if total != 200 {
		t.Fatalf("served %d requests, want 200", total)
	}
}

// Two children behind a parent: a document fetched by one child is a
// parent hit for the other, and the origin is contacted only once — the
// paper's §VIII parent/child configuration.
func TestParentChildHierarchy(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	parent, err := Start(Config{Mode: ModeNone, CacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { parent.Close() })
	var children []*Proxy
	for i := 0; i < 2; i++ {
		c, err := Start(Config{Mode: ModeNone, CacheBytes: 8 << 20, ParentURL: parent.URL()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		children = append(children, c)
	}
	u := origin.DocURL(org.URL(), "hier", 2048, 0)
	get := func(p *Proxy) int {
		resp, err := http.Get(p.URL() + ProxyPath + "?url=" + url.QueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return len(body)
	}
	if n := get(children[0]); n != 2048 {
		t.Fatalf("child 0 got %d bytes", n)
	}
	if n := get(children[1]); n != 2048 {
		t.Fatalf("child 1 got %d bytes", n)
	}
	if got := org.Stats().Requests; got != 1 {
		t.Fatalf("origin saw %d requests, want 1 (second child served by parent)", got)
	}
	if parent.Stats().LocalHits != 1 {
		t.Fatalf("parent stats: %+v, want one local hit", parent.Stats())
	}
}

// Single-copy sharing: a sibling-served document is not cached locally, so
// repeated requests keep fetching from the sibling (space conserved).
func TestSingleCopySharing(t *testing.T) {
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	owner, err := Start(Config{Mode: ModeICP, CacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { owner.Close() })
	requester, err := Start(Config{Mode: ModeICP, CacheBytes: 8 << 20, SingleCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { requester.Close() })
	if err := requester.AddPeer(owner.ICPAddr(), owner.URL()); err != nil {
		t.Fatal(err)
	}
	if err := owner.AddPeer(requester.ICPAddr(), requester.URL()); err != nil {
		t.Fatal(err)
	}

	u := origin.DocURL(org.URL(), "sc-doc", 1024, 0)
	fetch := func(p *Proxy) {
		resp, err := http.Get(p.URL() + ProxyPath + "?url=" + url.QueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	fetch(owner) // owner caches from origin
	fetch(requester)
	fetch(requester) // still a remote hit: nothing cached locally
	st := requester.Stats()
	if st.RemoteHits != 2 {
		t.Fatalf("remote hits = %d, want 2 (single-copy keeps refetching)", st.RemoteHits)
	}
	if st.LocalHits != 0 || requester.CacheLen() != 0 {
		t.Fatalf("single-copy requester cached a sibling document: %+v", st)
	}
	if org.Stats().Requests != 1 {
		t.Fatalf("origin saw %d requests, want 1", org.Stats().Requests)
	}
}

package httpproxy

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/obs"
	"summarycache/internal/origin"
)

// parseProm reads Prometheus text exposition into series -> value, keyed
// exactly as rendered ("name{a=\"b\"}").
func parseProm(t *testing.T, r io.Reader) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("bad exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitQuiesce waits until every proxy's stats stop changing, so that a
// scrape and a Stats() call taken afterwards observe the same world.
func waitQuiesce(t *testing.T, proxies []*Proxy) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	prev := make([]Stats, len(proxies))
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		stable := true
		for i, p := range proxies {
			st := p.Stats()
			if st != prev[i] {
				stable = false
				prev[i] = st
			}
		}
		if stable {
			return
		}
	}
	t.Fatal("mesh never quiesced")
}

// TestMetricsScrapeMatchesStats stands up a 3-proxy SC-ICP mesh sharing one
// registry, drives local hits, misses, and a remote hit through it, then
// scrapes /metrics and asserts the scraped series equal the values reported
// by Proxy.Stats() / Node.Stats() — the "one source of truth" invariant.
func TestMetricsScrapeMatchesStats(t *testing.T) {
	reg := obs.NewRegistry()
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })

	var proxies []*Proxy
	for i := 0; i < 3; i++ {
		p, err := Start(Config{
			Mode:       ModeSCICP,
			CacheBytes: 8 << 20,
			Summary: core.DirectoryConfig{
				ExpectedDocs: 2000, UpdateThreshold: 0.01,
			},
			QueryTimeout: 2 * time.Second,
			Metrics:      reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
	}
	for i, p := range proxies {
		for j, q := range proxies {
			if i != j {
				if err := p.AddPeer(q.ICPAddr(), q.URL()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	m := &mesh{origin: org, proxies: proxies}

	// Traffic: per proxy, 5 unique misses and 2 repeat local hits.
	for i, p := range proxies {
		for j := 0; j < 5; j++ {
			m.fetch(t, p, m.docURL(fmt.Sprintf("obs/p%d/doc%d", i, j), 1024))
		}
		m.fetch(t, p, m.docURL(fmt.Sprintf("obs/p%d/doc0", i), 1024))
		m.fetch(t, p, m.docURL(fmt.Sprintf("obs/p%d/doc1", i), 1024))
	}
	// A remote hit: proxy 1 fetches a document proxy 0 holds.
	proxies[0].FlushSummary()
	shared := m.docURL("obs/p0/doc0", 1024)
	waitForCandidate(t, proxies[1], shared)
	m.fetch(t, proxies[1], shared)

	waitQuiesce(t, proxies)

	srv := httptest.NewServer(obs.NewHandler(reg, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	series := parseProm(t, resp.Body)

	var sawRemoteHit bool
	for i, p := range proxies {
		st := p.Stats()
		paddr := strings.TrimPrefix(p.URL(), "http://")
		naddr := p.ICPAddr().String()
		if st.RemoteHits > 0 {
			sawRemoteHit = true
		}

		checks := []struct {
			series string
			want   uint64
		}{
			{fmt.Sprintf(`summarycache_proxy_requests_total{proxy=%q}`, paddr), st.ClientRequests},
			{fmt.Sprintf(`summarycache_proxy_local_hits_total{proxy=%q}`, paddr), st.LocalHits},
			{fmt.Sprintf(`summarycache_proxy_remote_hits_total{proxy=%q}`, paddr), st.RemoteHits},
			{fmt.Sprintf(`summarycache_proxy_misses_total{proxy=%q}`, paddr), st.Misses},
			{fmt.Sprintf(`summarycache_proxy_false_hits_total{proxy=%q}`, paddr), st.FalseHits},
			{fmt.Sprintf(`summarycache_proxy_origin_fetches_total{proxy=%q}`, paddr), st.OriginFetches},
			{fmt.Sprintf(`summarycache_proxy_peer_fetches_total{proxy=%q}`, paddr), st.PeerFetches},
			{fmt.Sprintf(`summarycache_node_queries_sent_total{node=%q}`, naddr), st.Node.QueriesSent},
			{fmt.Sprintf(`summarycache_node_queries_received_total{node=%q}`, naddr), st.Node.QueriesReceived},
			{fmt.Sprintf(`summarycache_node_remote_hits_total{node=%q}`, naddr), st.Node.RemoteHits},
			{fmt.Sprintf(`summarycache_node_false_hits_total{node=%q}`, naddr), st.Node.FalseHits},
			{fmt.Sprintf(`summarycache_node_updates_sent_total{node=%q}`, naddr), st.Node.UpdatesSent},
			{fmt.Sprintf(`summarycache_node_updates_received_total{node=%q}`, naddr), st.Node.UpdatesReceived},
			{fmt.Sprintf(`summarycache_node_update_events_total{node=%q}`, naddr), st.Node.UpdateEvents},
			{fmt.Sprintf(`summarycache_node_flips_published_total{node=%q}`, naddr), st.Node.FlipsPublished},
			{fmt.Sprintf(`summarycache_node_filter_rebuilds_total{node=%q}`, naddr), st.Node.FilterRebuilds},
			{fmt.Sprintf(`summarycache_udp_sent_total{node=%q}`, naddr), st.Node.UDP.Sent},
			{fmt.Sprintf(`summarycache_udp_received_total{node=%q}`, naddr), st.Node.UDP.Received},
			{fmt.Sprintf(`summarycache_udp_send_errors_total{node=%q}`, naddr), st.Node.UDP.SendErrors},
		}
		for _, c := range checks {
			got, ok := series[c.series]
			if !ok {
				t.Errorf("proxy %d: series %s missing from scrape", i, c.series)
				continue
			}
			if got != float64(c.want) {
				t.Errorf("proxy %d: scraped %s = %v, Stats says %d", i, c.series, got, c.want)
			}
		}

		// Every classified request landed in exactly one outcome histogram.
		var observed float64
		for _, o := range []string{"local_hit", "remote_hit", "miss", "false_hit"} {
			k := fmt.Sprintf(`summarycache_proxy_request_seconds_count{outcome=%q,proxy=%q}`, o, paddr)
			v, ok := series[k]
			if !ok {
				t.Errorf("proxy %d: histogram series %s missing", i, k)
			}
			observed += v
		}
		if observed != float64(st.ClientRequests) {
			t.Errorf("proxy %d: histogram outcomes sum to %v, want %d requests", i, observed, st.ClientRequests)
		}

		// Spot-check a scrape-time gauge: both siblings are known peers.
		if got := series[fmt.Sprintf(`summarycache_node_peers_known{node=%q}`, naddr)]; got != 2 {
			t.Errorf("proxy %d: peers_known = %v, want 2", i, got)
		}
	}
	if !sawRemoteHit {
		t.Error("mesh produced no remote hit; test drove the wrong traffic")
	}
}

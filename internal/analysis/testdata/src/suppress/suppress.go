// Package suppress exercises the //lint:ignore directive: a reasoned
// directive silences its line and the next, a reasonless one is itself
// a finding and silences nothing.
package suppress

import "fmt"

func mixed(n int) {
	//lint:ignore sclint/stray-printing fixture: reasoned directive covers the next line
	fmt.Println("quiet")
	fmt.Printf("loud %d\n", n)  // want stray-printing
	fmt.Println("quiet inline") //lint:ignore sclint/stray-printing fixture: trailing form covers its own line
	//lint:ignore sclint/stray-printing
	fmt.Println("still loud") // want stray-printing (directive above has no reason)
}

package core

import (
	"context"
	"net"
	"sync"
	"time"
)

// Peer health monitoring: the paper's prototype "leverages Squid's
// built-in support to detect failure and recovery of neighbor proxies,
// and reinitializes a failed neighbor's bit array when it recovers". This
// file supplies that support for Node: periodic ICP SECHO probes mark
// peers down after consecutive misses (dropping their summary so a dead
// neighbor cannot attract queries), and on recovery re-ship our full
// state so the neighbor's replica of *us* restarts correct.

// HealthConfig parameterizes StartHealthChecks.
type HealthConfig struct {
	// Interval between probe rounds (default 1s).
	Interval time.Duration
	// Timeout per probe (default half the interval).
	Timeout time.Duration
	// FailureThreshold marks a peer down after this many consecutive
	// unanswered probes (default 3).
	FailureThreshold int
	// OnChange, if non-nil, observes up/down transitions.
	OnChange func(peer *net.UDPAddr, up bool)
}

func (c *HealthConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval / 2
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
}

// healthMonitor tracks per-peer probe state.
type healthMonitor struct {
	node *Node
	cfg  HealthConfig

	mu     sync.Mutex
	misses map[string]int
	down   map[string]bool
	stop   chan struct{}
	done   chan struct{}
}

// StartHealthChecks begins probing registered peers; it returns a stop
// function. Peers that fail FailureThreshold consecutive probes have their
// summary replicas dropped (no more queries routed to them); when a downed
// peer answers again, the node re-ships its full summary state to it.
func (n *Node) StartHealthChecks(cfg HealthConfig) (stop func()) {
	cfg.applyDefaults()
	h := &healthMonitor{
		node:   n,
		cfg:    cfg,
		misses: make(map[string]int),
		down:   make(map[string]bool),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go h.loop()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(h.stop)
			<-h.done
		})
	}
}

func (h *healthMonitor) loop() {
	defer close(h.done)
	t := time.NewTicker(h.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			h.probeAll()
		case <-h.stop:
			return
		}
	}
}

func (h *healthMonitor) probeAll() {
	peers := h.node.PeerAddrs()
	var wg sync.WaitGroup
	for _, addr := range peers {
		wg.Add(1)
		go func(addr *net.UDPAddr) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), h.cfg.Timeout)
			defer cancel()
			// An SECHO (or any query) answered within the timeout counts
			// as alive; Squid uses the same probe.
			_, err := h.node.conn.Query(ctx, addr, "summarycache:ping")
			h.record(addr, err == nil)
		}(addr)
	}
	wg.Wait()
}

func (h *healthMonitor) record(addr *net.UDPAddr, alive bool) {
	id := addr.String()
	h.mu.Lock()
	var becameUp, becameDown bool
	if alive {
		h.misses[id] = 0
		if h.down[id] {
			h.down[id] = false
			becameUp = true
		}
	} else {
		h.misses[id]++
		if !h.down[id] && h.misses[id] >= h.cfg.FailureThreshold {
			h.down[id] = true
			becameDown = true
		}
	}
	h.mu.Unlock()

	switch {
	case becameDown:
		// A dead neighbor must not attract queries: drop its replica.
		// (Its address registration stays; recovery re-learns the rest.)
		h.node.peers.Drop(id)
		h.node.health.SetPeer(id, false)
		h.node.log.Warn("peer down", "peer", id,
			"consecutive_misses", h.cfg.FailureThreshold)
		if h.cfg.OnChange != nil {
			h.cfg.OnChange(addr, false)
		}
	case becameUp:
		// The neighbor restarted with an empty replica of us: re-ship the
		// full state ("reinitializes a failed neighbor's bit array when it
		// recovers").
		_ = h.node.sendFullState(addr)
		h.node.health.SetPeer(id, true)
		h.node.log.Info("peer up", "peer", id)
		if h.cfg.OnChange != nil {
			h.cfg.OnChange(addr, true)
		}
	}
}

// Package pos spawns goroutines with no way to exit: unconditional
// loops without a binding break or return, reached directly, through a
// literal, or through the call graph — plus the classic near-miss where
// break binds to the select instead of the loop.
package pos

var n int

func work() { n++ }

// spin loops with no exit path.
func spin() {
	for {
		work()
	}
}

// run reaches spin through a call.
func run() { spin() }

type pump struct {
	stop chan struct{}
	in   chan int
}

func (p *pump) Start() {
	go spin()   // want goroutine-lifecycle: named callee loops forever
	go run()    // want goroutine-lifecycle: forever via call chain
	go func() { // want goroutine-lifecycle: literal loops forever
		for {
			work()
		}
	}()
	go func() { // want goroutine-lifecycle: break binds to the select
		for {
			select {
			case <-p.stop:
				break
			case v := <-p.in:
				n += v
			}
		}
	}()
	go func() { // want goroutine-lifecycle: select{} blocks forever
		select {}
	}()
}

package httpproxy

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/faultnet"
	"summarycache/internal/origin"
	"summarycache/internal/sim"
	"summarycache/internal/trace"
)

// e2eAvgDocBytes / e2eEntries pin the live and offline Bloom geometries to
// the same filter: sim sizes its filter from CacheBytes/AvgDocBytes
// entries, the live directory from ExpectedDocs — both through
// bloom.SizeForLoadFactor with the default load factor and hash family.
const (
	e2eAvgDocBytes = 8192
	e2eEntries     = 16
	e2eCacheBytes  = e2eEntries * e2eAvgDocBytes
)

// e2eTrace builds the seeded workload: a Zipf-skewed stream over a doc
// universe larger than one cache (eviction pressure → nonzero false
// decisions), with per-doc version bumps (stale local and remote hits).
// The returned requests carry the *live cache key* as URL, so the offline
// replay hashes exactly the strings the live summaries hash.
func e2eTrace(originURL string, n int) []trace.Request {
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.05, 1, 119)
	counts := make(map[int]int)
	reqs := make([]trace.Request, 0, n)
	for i := 0; i < n; i++ {
		d := int(zipf.Uint64())
		counts[d]++
		version := int64(1 + counts[d]/6)
		size := int64(2048 + (d%5)*1024)
		key, _ := splitVersion(origin.DocURL(originURL, fmt.Sprintf("doc%02d", d), size, version))
		reqs = append(reqs, trace.Request{
			Time:    int64(i),
			Client:  rng.Intn(3),
			URL:     key,
			Size:    size,
			Version: version,
		})
	}
	return reqs
}

// liveCounts aggregates the mesh-wide decision taxonomy.
type liveCounts struct {
	localHits, remoteHits, falseHits, falseMisses, staleHits, localStale uint64
}

func (c liveCounts) String() string {
	return fmt.Sprintf("local=%d remote=%d false_hits=%d false_misses=%d stale_hits=%d local_stale=%d",
		c.localHits, c.remoteHits, c.falseHits, c.falseMisses, c.staleHits, c.localStale)
}

// TestE2EClassificationMatchesSim replays one seeded trace through BOTH a
// live 3-proxy SC-ICP mesh (riding the faultnet harness with a zero-fault
// scenario, so the injected transport layer is in the path but silent) and
// internal/sim's offline engine with identical filter geometry, then
// checks the live false-decision accounting against the simulator's ground
// truth.
//
// The two engines share the lru package, the hash family, the filter size,
// and — because the trace URLs are the live cache keys — the exact hash
// inputs, so after each request the mesh is driven to convergence
// (FlushSummary + update-count equality) to make replicas bit-identical to
// the simulator's. Residual divergence is inherent and bounded: the live
// mesh picks the first ICP HIT (the simulator prefers fresh copies over
// stale), its ICP answers are version-blind, and the false-miss audit only
// runs on rounds with no ICP HIT. Hence tolerances, not equality.
func TestE2EClassificationMatchesSim(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e comparison is slow")
	}
	org, err := origin.Start(origin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { org.Close() })
	reqs := e2eTrace(org.URL(), 400)

	// Offline ground truth.
	simRes, err := sim.Run(sim.Config{
		NumProxies: 3,
		CacheBytes: e2eCacheBytes,
		Scheme:     sim.SimpleSharing,
		Summary: sim.SummaryConfig{
			Kind:            sim.Bloom,
			UpdateThreshold: 0.01,
			MinUpdateDocs:   1,
			AvgDocBytes:     e2eAvgDocBytes,
		},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// The seeded trace must actually exercise the taxonomy, or the
	// comparison below is vacuous.
	if simRes.RemoteStaleHits == 0 || simRes.LocalStale == 0 || simRes.FalseHits == 0 {
		t.Fatalf("seeded trace does not exercise the taxonomy: %+v", simRes)
	}

	// Live mesh.
	var proxies []*Proxy
	for i := 0; i < 3; i++ {
		p, err := Start(Config{
			Mode:                ModeSCICP,
			CacheBytes:          e2eCacheBytes,
			CacheShards:         1, // exact LRU, as the simulator models
			VersionAware:        true,
			MinUpdateFlips:      1,
			FalseMissAuditEvery: 1,
			Summary: core.DirectoryConfig{
				ExpectedDocs:    e2eEntries,
				UpdateThreshold: 0.01,
			},
			QueryTimeout: 2 * time.Second,
			Faults:       faultnet.New(faultnet.Scenario{}), // harness in path, zero faults
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
	}
	for i, p := range proxies {
		for j, q := range proxies {
			if i != j {
				if err := p.AddPeer(q.ICPAddr(), q.URL()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	m := &mesh{origin: org, proxies: proxies}

	converge := func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			var sent, recv uint64
			for _, p := range proxies {
				st := p.Stats().Node
				sent += st.UpdatesSent
				recv += st.UpdatesReceived
			}
			if sent == recv {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatal("mesh did not converge")
	}

	for _, r := range reqs {
		p := proxies[r.Group(3)]
		// r.URL is the version-stripped cache key (…?size=N); re-attach
		// the wanted version to form the client's target.
		u := fmt.Sprintf("%s&%s=%d", r.URL, versionParam, r.Version)
		m.fetch(t, p, u)
		// Publish everything pending (the simulator drains eviction clear
		// flips at insert time; the live node defers them), then wait for
		// every update to land before the next request.
		for _, q := range proxies {
			q.FlushSummary()
		}
		converge()
	}

	var live liveCounts
	for _, p := range proxies {
		st := p.Stats()
		live.localHits += st.LocalHits
		live.remoteHits += st.RemoteHits
		live.falseHits += st.FalseHits
		live.falseMisses += st.Node.FalseMisses
		live.staleHits += st.StaleHits
		live.localStale += st.LocalStale
	}
	t.Logf("live: %v", live)
	t.Logf("sim:  local=%d remote=%d false_hits=%d false_misses=%d stale_hits=%d local_stale=%d",
		simRes.LocalHits, simRes.RemoteHits, simRes.FalseHits, simRes.FalseMisses,
		simRes.RemoteStaleHits, simRes.LocalStale)

	within := func(name string, got, want uint64) {
		t.Helper()
		diff := got - want
		if want > got {
			diff = want - got
		}
		mx := max(got, want)
		limit := max(6, (mx+1)/2) // ±50%, floor of 6 events
		if diff > limit {
			t.Errorf("%s: live %d vs sim %d differ by %d (limit %d)", name, got, want, diff, limit)
		}
	}
	within("false hits", live.falseHits, simRes.FalseHits)
	within("false misses", live.falseMisses, simRes.FalseMisses)
	within("stale hits", live.staleHits, simRes.RemoteStaleHits)
	within("local stale", live.localStale, simRes.LocalStale)
	within("local hits", live.localHits, simRes.LocalHits)
	within("remote hits", live.remoteHits, simRes.RemoteHits)
}

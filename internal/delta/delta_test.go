package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, old, target []byte, blockSize int) []byte {
	t.Helper()
	sig := NewSignature(old, blockSize)
	d := Encode(sig, target)
	got, err := Apply(old, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(target))
	}
	return d
}

func TestIdenticalVersions(t *testing.T) {
	doc := bytes.Repeat([]byte("summary cache "), 400) // 5600 bytes
	d := roundTrip(t, doc, doc, 512)
	// An unchanged document should cost a tiny fraction of its size.
	if len(d) > len(doc)/20 {
		t.Errorf("delta of identical doc = %d bytes for %d-byte doc", len(d), len(doc))
	}
}

func TestSmallEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	old := make([]byte, 16384)
	rng.Read(old)
	target := append([]byte(nil), old...)
	copy(target[7000:], []byte("EDITED CONTENT HERE"))
	d := roundTrip(t, old, target, 512)
	if len(d) > 3*512 {
		t.Errorf("small edit cost %d bytes", len(d))
	}
}

func TestInsertionShiftsBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	old := make([]byte, 8192)
	rng.Read(old)
	// Insert 10 bytes near the front: everything after shifts, which only
	// a rolling (not block-aligned) match can recover.
	target := append(append(append([]byte(nil), old[:100]...), []byte("0123456789")...), old[100:]...)
	d := roundTrip(t, old, target, 512)
	if len(d) > len(target)/4 {
		t.Errorf("insertion delta %d bytes of %d; rolling match failed", len(d), len(target))
	}
}

func TestCompletelyDifferent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	old := make([]byte, 4096)
	target := make([]byte, 4096)
	rng.Read(old)
	rng.Read(target)
	d := roundTrip(t, old, target, 512)
	// All literals plus small framing.
	if len(d) < len(target) || len(d) > len(target)+64 {
		t.Errorf("unrelated delta = %d bytes for %d-byte target", len(d), len(target))
	}
}

func TestEmptyCases(t *testing.T) {
	roundTrip(t, nil, []byte("fresh content"), 512)
	roundTrip(t, []byte("old content"), nil, 512)
	roundTrip(t, nil, nil, 512)
}

func TestShortTailBlockReuse(t *testing.T) {
	old := append(bytes.Repeat([]byte{7}, 1024), []byte("tail!")...)
	// Same tail, new middle.
	target := append(bytes.Repeat([]byte{9}, 1024), []byte("tail!")...)
	sig := NewSignature(old, 512)
	d := Encode(sig, target)
	got, err := Apply(old, d)
	if err != nil || !bytes.Equal(got, target) {
		t.Fatalf("short-tail round trip failed: %v", err)
	}
}

func TestApplyRejectsCorruption(t *testing.T) {
	old := bytes.Repeat([]byte("x"), 2048)
	sig := NewSignature(old, 512)
	d := Encode(sig, old)
	for _, bad := range [][]byte{
		nil,
		{0x00},
		append([]byte{}, 0xFF),
		func() []byte { c := append([]byte(nil), d...); c[len(c)-1] ^= 0; return c[:len(c)-1] }(),
	} {
		if _, err := Apply(old, bad); err == nil && len(bad) > 0 {
			t.Errorf("accepted corrupt delta %v", bad)
		}
	}
	// Copy beyond the base must fail.
	if _, err := Apply(old[:100], d); err == nil {
		t.Error("accepted delta against wrong base")
	}
}

func TestSignatureBytes(t *testing.T) {
	sig := NewSignature(make([]byte, 512*10), 512)
	if sig.Blocks() != 10 {
		t.Fatalf("blocks = %d", sig.Blocks())
	}
	if sig.SignatureBytes() != 16+10*20 {
		t.Fatalf("signature bytes = %d", sig.SignatureBytes())
	}
}

// Property: Apply(old, Encode(Sig(old), target)) == target for arbitrary
// byte strings and block sizes.
func TestQuickRoundTrip(t *testing.T) {
	prop := func(old, target []byte, bsRaw uint8) bool {
		bs := int(bsRaw%64) + 4
		sig := NewSignature(old, bs)
		d := Encode(sig, target)
		got, err := Apply(old, d)
		if err != nil {
			return false
		}
		return bytes.Equal(got, target)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The paper's use case: a remote stale hit transfers signature + delta
// instead of the full document; for a typical small-change update this
// must win by a wide margin.
func TestPlanEconomics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	old := make([]byte, 32768)
	rng.Read(old)
	target := append([]byte(nil), old...)
	copy(target[10000:], []byte("a modest content update in a mostly unchanged page"))

	d, tr := Plan(old, target, 0)
	if got, err := Apply(old, d); err != nil || !bytes.Equal(got, target) {
		t.Fatalf("plan round trip failed: %v", err)
	}
	if tr.FullBytes != len(target) {
		t.Fatalf("economics: %+v", tr)
	}
	if tr.Saved() < tr.FullBytes/2 {
		t.Errorf("delta transfer saved only %d of %d bytes", tr.Saved(), tr.FullBytes)
	}
}

func BenchmarkEncode32K(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	old := make([]byte, 32768)
	rng.Read(old)
	target := append([]byte(nil), old...)
	copy(target[16000:], []byte("small edit"))
	sig := NewSignature(old, DefaultBlockSize)
	b.ReportAllocs()
	b.SetBytes(int64(len(target)))
	for i := 0; i < b.N; i++ {
		Encode(sig, target)
	}
}

func BenchmarkApply32K(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	old := make([]byte, 32768)
	rng.Read(old)
	sig := NewSignature(old, DefaultBlockSize)
	d := Encode(sig, old)
	b.ReportAllocs()
	b.SetBytes(int64(len(old)))
	for i := 0; i < b.N; i++ {
		if _, err := Apply(old, d); err != nil {
			b.Fatal(err)
		}
	}
}

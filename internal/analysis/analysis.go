package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Canonical rule names, exported so callers (cmd/sclint, the public
// facade) and suppression directives refer to one spelling.
const (
	RuleAtomicMixing       = "atomic-mixing"
	RuleDeterminism        = "determinism"
	RuleStatsDrift         = "stats-drift"
	RuleUncheckedClose     = "unchecked-close"
	RuleStrayPrinting      = "stray-printing"
	RuleLockOrder          = "lock-order"
	RuleGoroutineLifecycle = "goroutine-lifecycle"
	RuleBorrowEscape       = "borrow-escape"
	// RuleLintDirective is the analyzer's own hygiene rule: a
	// //lint:ignore directive without a reason neither suppresses nor
	// passes silently.
	RuleLintDirective = "lint-directive"
)

// Finding is one diagnostic. File is relative to the universe root.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the canonical plain form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Message)
}

// Rule is one checker. Check inspects a single package and reports
// findings through report; the driver handles suppression, ordering and
// exit status.
type Rule interface {
	Name() string
	Doc() string
	Check(pkg *Package, report ReportFunc)
}

// ReportFunc records a finding at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

// Rules returns the full default rule suite in stable order.
func Rules() []Rule {
	return []Rule{
		&atomicMixingRule{},
		&determinismRule{},
		&statsDriftRule{},
		&uncheckedCloseRule{},
		&strayPrintingRule{},
		&lockOrderRule{},
		&goroutineLifecycleRule{},
		&borrowEscapeRule{},
	}
}

// RuleNames lists the names of the default suite.
func RuleNames() []string {
	rules := Rules()
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.Name()
	}
	return out
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int
	rules  map[string]bool
	reason string
}

const ignorePrefix = "//lint:ignore "

// parseIgnores scans a file's comments for suppression directives:
//
//	//lint:ignore sclint/<rule>[,sclint/<rule>...] reason
//
// A directive covers findings on its own line (trailing comment) and on
// the line directly below (standalone comment above the offending code).
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, ignorePrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			d := ignoreDirective{file: pos.Filename, line: pos.Line, rules: map[string]bool{}}
			fields := strings.Fields(text)
			if len(fields) > 0 {
				for _, r := range strings.Split(fields[0], ",") {
					r = strings.TrimPrefix(r, "sclint/")
					if r != "" {
						d.rules[r] = true
					}
				}
				d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
			}
			out = append(out, d)
		}
	}
	return out
}

// Run executes rules over every package of the universe, applies
// //lint:ignore suppressions, and returns the surviving findings sorted
// by file, line and rule. Directives missing a reason are themselves
// reported under the lint-directive rule.
func Run(u *Universe, rules []Rule) []Finding {
	type lineKey struct {
		file string
		line int
	}
	suppress := map[lineKey]map[string]bool{}
	var findings []Finding
	for _, pkg := range u.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range parseIgnores(u.Fset, f) {
				if d.reason == "" || len(d.rules) == 0 {
					findings = append(findings, Finding{
						Rule: RuleLintDirective,
						File: u.relFile(d.file), Line: d.line,
						Message: "//lint:ignore needs a rule and a reason: //lint:ignore sclint/<rule> <why>",
					})
					continue
				}
				for _, l := range []int{d.line, d.line + 1} {
					k := lineKey{d.file, l}
					if suppress[k] == nil {
						suppress[k] = map[string]bool{}
					}
					for r := range d.rules {
						suppress[k][r] = true
					}
				}
			}
		}
	}
	for _, pkg := range u.Pkgs {
		pkg := pkg
		for _, rule := range rules {
			name := rule.Name()
			rule.Check(pkg, func(pos token.Pos, format string, args ...any) {
				p := u.Fset.Position(pos)
				if suppress[lineKey{p.Filename, p.Line}][name] {
					return
				}
				findings = append(findings, Finding{
					Rule: name,
					File: u.relFile(p.Filename), Line: p.Line, Col: p.Column,
					Message: fmt.Sprintf(format, args...),
				})
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return findings
}

func (u *Universe) relFile(file string) string {
	if rel, err := filepath.Rel(u.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// WritePlain renders findings one per line in the canonical
// "file:line: [rule] message" form.
func WritePlain(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}

// WriteJSON renders findings as a JSON array (empty slice, not null,
// when clean — stable shape for tooling).
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// LintDir loads the universe rooted at dir and runs the default suite —
// the one-call form behind summarycache.LintPackages and cmd/sclint.
func LintDir(dir string) ([]Finding, error) {
	u, err := Load(dir)
	if err != nil {
		return nil, err
	}
	return Run(u, Rules()), nil
}

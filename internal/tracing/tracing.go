// Package tracing is a request-scoped distributed-tracing subsystem for
// the SC-ICP mesh (stdlib-only). Every proxy request can carry a Trace
// whose spans cover the local cache lookup, the per-peer summary probes,
// the ICP query round-trip, the sibling fetch, and the origin fetch. The
// summary-probe spans carry a decision audit — the exact Bloom bit
// indices probed, the peer replica's generation and age at probe time,
// the predicted verdict, and the actual outcome once the ICP reply
// resolves — so every false hit and false miss in the mesh is
// self-explaining rather than an anonymous tick of a counter.
//
// Trace context crosses the wire without any protocol change: an ICP
// query fan-out uses a single RequestNumber (see icp.Conn.QueryAll), and
// both the querying and the answering proxy derive the same trace ID from
// the pair (querier UDP address, RequestNumber) via IDFromICP. Fetching
// /debug/traces from two mesh members therefore yields spans that join on
// one ID with zero extra bytes on the wire.
//
// Completed traces land in a bounded lock-free ring buffer. Retention is
// head-based probabilistic sampling (Config.HeadRate) combined with
// tail-based always-keep for anomalous outcomes — false hits, query
// timeouts, peer-down fallbacks — so the interesting traces survive even
// at a head rate of zero. Sampled/dropped/kept-by-tail counters register
// in the obs registry so a scrape can be cross-checked against the store.
package tracing

import (
	"context"
	"hash/fnv"
	"log/slog"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"summarycache/internal/obs"
)

// ctxKey keys the trace in a context.
type ctxKey struct{}

// NewContext returns ctx carrying tr, so layers below the HTTP handler
// (the SC-ICP node's Lookup) can attach spans to the request's trace.
// Callers attach a context only for traced requests; the untraced hot
// path never pays the context allocation.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// ID identifies a trace. IDs of traces that performed an ICP exchange are
// derived from the exchange (IDFromICP); purely local traces get a
// process-local ID.
type ID uint64

// String renders the ID as fixed-width hex, the form /debug/traces uses.
func (id ID) String() string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseID parses the hex form produced by String.
func ParseID(s string) (ID, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			return 0, false
		}
	}
	return ID(v), true
}

// IDFromICP derives the shared trace ID of one ICP query exchange from
// what both ends can see on the wire: the querier's UDP source address
// (its bound ICP endpoint) and the query's RequestNumber. No wire change
// is needed; correlation requires the querier to bind a concrete address
// (as the mesh does), since the answering side sees the datagram's
// source, not the unspecified wildcard.
func IDFromICP(querier string, reqNum uint32) ID {
	h := fnv.New64a()
	h.Write([]byte(querier))
	var b [4]byte
	b[0] = byte(reqNum >> 24)
	b[1] = byte(reqNum >> 16)
	b[2] = byte(reqNum >> 8)
	b[3] = byte(reqNum)
	h.Write(b[:])
	return ID(h.Sum64())
}

// Span names used across the mesh.
const (
	SpanLocalLookup  = "local_lookup"  // document cache probe
	SpanSummaryProbe = "summary_probe" // one peer summary consulted
	SpanICPQuery     = "icp_query"     // the ICP fan-out round-trip
	SpanICPAnswer    = "icp_answer"    // answering side of a peer query
	SpanPeerFetch    = "peer_fetch"    // sibling cache-only HTTP fetch
	SpanOriginFetch  = "origin_fetch"  // origin (or parent) HTTP fetch
)

// Trace kinds.
const (
	KindRequest   = "request"    // a client request through a proxy
	KindICPAnswer = "icp_answer" // the answering side of a peer's query
)

// Audit is the decision audit attached to a summary-probe span: why this
// peer was (or was not) nominated, against which replica state.
type Audit struct {
	// BitIndexes are the k Bloom bit positions probed in the peer replica.
	BitIndexes []uint64 `json:"bit_indexes"`
	// Generation is the number of DIRUPDATE messages applied to the
	// replica when it was probed — the "filter generation" a stale
	// prediction can be blamed on.
	Generation uint64 `json:"generation"`
	// AgeMS is how long ago the replica last changed, in milliseconds.
	AgeMS float64 `json:"age_ms"`
	// FilterBits is the replica's bit-array size (the modulus of the
	// probed indices).
	FilterBits uint64 `json:"filter_bits,omitempty"`
}

// Span is one step of a trace.
type Span struct {
	Name string `json:"name"`
	// Peer is the remote party for per-peer spans (summary probes, ICP
	// answers, sibling fetches).
	Peer  string    `json:"peer,omitempty"`
	Start time.Time `json:"start"`
	// DurationUS is the span length in microseconds.
	DurationUS int64 `json:"duration_us"`
	// ReqNum is the ICP RequestNumber for query/answer spans — the
	// correlation key IDFromICP hashes.
	ReqNum uint32 `json:"icp_reqnum,omitempty"`
	// Predicted is the verdict the summary gave ("hit"/"miss") before the
	// network was consulted.
	Predicted string `json:"predicted,omitempty"`
	// Actual is what really happened once the ICP reply or fetch resolved
	// ("hit", "miss", "no_reply", "not_queried", "ok", "failed",
	// "breaker_open").
	Actual string `json:"actual,omitempty"`
	// Retries is how many extra attempts an origin-fetch span needed after
	// retryable failures (0 means it succeeded or died on the first try).
	Retries int    `json:"retries,omitempty"`
	Err     string `json:"error,omitempty"`
	Audit   *Audit `json:"audit,omitempty"`
}

// Trace is one request's (or one answered query's) span collection. All
// methods are safe on a nil receiver and do nothing, which is how the
// disabled-tracing hot path stays allocation-free.
type Trace struct {
	tracer *Tracer

	mu        sync.Mutex
	id        ID
	node      string
	kind      string
	url       string
	start     time.Time
	outcome   string
	anomaly   string // non-empty: tail-based always-keep fires
	headKeep  bool
	spans     []Span
	finished  bool
	dur       time.Duration // start-to-Finish, set by Finish
	keptLabel string        // "head", "tail", or "" (dropped); set by Finish
}

// view is the JSON shape of a stored trace.
type view struct {
	ID      string    `json:"id"`
	Node    string    `json:"node"`
	Kind    string    `json:"kind"`
	URL     string    `json:"url"`
	Start   time.Time `json:"start"`
	Outcome string    `json:"outcome"`
	Anomaly string    `json:"anomaly,omitempty"`
	Kept    string    `json:"kept"`
	// DurationUS is start-to-Finish in microseconds.
	DurationUS int64  `json:"duration_us"`
	Spans      []Span `json:"spans"`
}

// SpanSink observes every span and every completed trace as they happen,
// regardless of the retention (sampling) decision — spans are recorded on
// all traces, sampled or not, so a sink sees the full population. It is
// the hook the perfwatch subsystem uses to decompose end-to-end latency
// into per-stage histograms and to evaluate latency SLOs.
//
// OnFinish runs before the retention decision and may return a non-empty
// anomaly reason (e.g. "slo:client_p99") to force tail-based keep of the
// trace, so requests that breach an objective always survive the head
// sampler. Implementations must be concurrency-safe and must not call
// back into the Trace or Tracer (OnFinish is invoked under the trace's
// lock).
type SpanSink interface {
	// OnSpan is called once per recorded span.
	OnSpan(node string, s Span)
	// OnFinish is called once per completed trace with its kind (request
	// or icp_answer), final outcome and end-to-end duration. A non-empty
	// return marks the trace anomalous (first reason sticks).
	OnFinish(node, kind, outcome string, d time.Duration) (anomaly string)
}

// Config parameterizes a Tracer.
type Config struct {
	// HeadRate is the head-sampling probability in [0,1]: the chance a
	// trace with an ordinary outcome is kept. Anomalous traces are always
	// kept (tail-based sampling), regardless of HeadRate.
	HeadRate float64
	// Buffer is the ring-buffer capacity in traces (default 2048). The
	// ring overwrites oldest-first; it never blocks and never grows.
	Buffer int
	// Registry, when set, receives the tracer's sampled/dropped/kept-
	// by-tail counters so the scrape and the trace store can be
	// cross-checked. Nil: a private registry.
	Registry *obs.Registry
	// Labels are attached to the tracer's metric series (e.g. the node
	// address when several tracers share a registry).
	Labels obs.Labels
	// Logger, when set, receives one structured event per kept trace at
	// completion (anomalous traces at Info, head-sampled ones at Debug).
	Logger *slog.Logger
	// Sink, when set, observes every span and completed trace (sampled or
	// not) and may flag traces anomalous at Finish time — see SpanSink.
	// Nil keeps the hot path exactly as before (zero extra work).
	Sink SpanSink
}

// DefaultBuffer is the ring capacity used when Config.Buffer is zero.
const DefaultBuffer = 2048

// Tracer owns the trace store and the sampling policy. A single Tracer
// may be shared by every proxy in a mesh (like a shared obs.Registry) or
// be private to one node; traces carry their node identity either way.
// A nil *Tracer is a valid disabled tracer: StartRequest returns nil and
// every downstream call is a no-op.
type Tracer struct {
	headRate float64
	ring     ring
	log      *slog.Logger
	sink     SpanSink

	localSeq atomic.Uint64 // provisional IDs for traces with no ICP exchange

	sampled  *obs.Counter // kept by head sampling
	keptTail *obs.Counter // kept only because the outcome was anomalous
	dropped  *obs.Counter // completed but not retained
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &Tracer{
		headRate: cfg.HeadRate,
		log:      obs.OrNop(cfg.Logger),
		sink:     cfg.Sink,
		sampled: reg.Counter("summarycache_trace_sampled_total",
			"traces kept by head-based probabilistic sampling", cfg.Labels),
		keptTail: reg.Counter("summarycache_trace_kept_tail_total",
			"anomalous traces kept by tail-based sampling despite the head decision", cfg.Labels),
		dropped: reg.Counter("summarycache_trace_dropped_total",
			"completed traces not retained in the ring buffer", cfg.Labels),
	}
	t.ring.init(cfg.Buffer)
	return t
}

// StartRequest begins a client-request trace on node for url. On a nil
// (disabled) Tracer it returns nil, and every method of the nil *Trace is
// a no-op — the local-hit hot path pays no allocation.
func (t *Tracer) StartRequest(node, url string) *Trace {
	if t == nil {
		return nil
	}
	return t.start(node, url, KindRequest)
}

func (t *Tracer) start(node, url, kind string) *Trace {
	tr := &Trace{
		tracer:   t,
		node:     node,
		kind:     kind,
		url:      url,
		start:    time.Now(),
		headKeep: t.headRate >= 1 || (t.headRate > 0 && rand.Float64() < t.headRate),
	}
	// Provisional ID; an ICP exchange re-keys it to the shared derived ID.
	tr.id = ID(t.localSeq.Add(1))<<32 | ID(uint32(time.Now().UnixNano()))
	return tr
}

// ICPAnswer records the answering side of one peer query as a complete
// single-span trace whose ID is derived from (querier, reqNum) — the same
// ID the querying proxy's request trace adopts. missAnomalous marks a
// MISS answer as a tail-keep anomaly: under SC-ICP a query only arrives
// because the querier's replica of this node's summary predicted a hit,
// so answering MISS is a false hit observed from the answering side.
// Under classic ICP queries go to everyone and a MISS answer is ordinary.
func (t *Tracer) ICPAnswer(node, querier string, reqNum uint32, url string, hit bool, start time.Time, missAnomalous bool) {
	if t == nil {
		return
	}
	tr := t.start(node, url, KindICPAnswer)
	tr.id = IDFromICP(querier, reqNum)
	actual, outcome := "miss", "icp_miss"
	if hit {
		actual, outcome = "hit", "icp_hit"
	} else if missAnomalous {
		tr.MarkAnomalous("false_hit_answered")
	}
	tr.AddSpan(Span{
		Name:       SpanICPAnswer,
		Peer:       querier,
		Start:      start,
		DurationUS: time.Since(start).Microseconds(),
		ReqNum:     reqNum,
		Predicted:  "hit", // the querier's replica nominated us
		Actual:     actual,
	})
	tr.Finish(outcome)
}

// Traces returns the retained traces, newest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// Find returns the retained traces with the given ID (a request trace and
// any answer traces sharing its ICP exchange, when one store serves a
// whole mesh), newest first.
func (t *Tracer) Find(id ID) []*Trace {
	var out []*Trace
	for _, tr := range t.Traces() {
		if tr.ID() == id {
			out = append(out, tr)
		}
	}
	return out
}

// --- Trace methods (all nil-safe) ---

// AddSpan appends a span. When the tracer has a SpanSink, the span is
// also delivered to it (outside the trace lock).
func (tr *Trace) AddSpan(s Span) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	node := tr.node
	tr.mu.Unlock()
	if sink := tr.tracer.sink; sink != nil {
		sink.OnSpan(node, s)
	}
}

// SetICPExchange re-keys the trace to the shared ID of the ICP exchange
// it performed, so the answering proxies' traces join it.
func (tr *Trace) SetICPExchange(querier string, reqNum uint32) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.id = IDFromICP(querier, reqNum)
	tr.mu.Unlock()
}

// MarkAnomalous flags the trace for tail-based always-keep (false hit,
// query timeout, peer-down fallback, ...). The first reason sticks.
func (tr *Trace) MarkAnomalous(reason string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.anomaly == "" {
		tr.anomaly = reason
	}
	tr.mu.Unlock()
}

// ID returns the trace's current ID.
func (tr *Trace) ID() ID {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.id
}

// Outcome returns the outcome set by Finish ("" before completion).
func (tr *Trace) Outcome() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.outcome
}

// Kept reports how the retention decision went: "head", "tail", or ""
// (dropped or unfinished).
func (tr *Trace) Kept() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.keptLabel
}

// Spans returns a copy of the spans recorded so far.
func (tr *Trace) Spans() []Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]Span(nil), tr.spans...)
}

// Finish completes the trace with its outcome and applies the retention
// policy: keep when head sampling said so or the trace was marked
// anomalous (tail-based), drop otherwise. Kept traces are stored in the
// ring and emitted as one structured log event; dropped ones only tick
// the dropped counter. Finish is idempotent.
func (tr *Trace) Finish(outcome string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	tr.outcome = outcome
	tr.dur = time.Since(tr.start)
	// The sink sees every completed trace before the retention decision,
	// so it can both account the full population (per-stage histograms,
	// SLO windows) and flag SLO-breaching traces for tail-based keep.
	if sink := tr.tracer.sink; sink != nil {
		if reason := sink.OnFinish(tr.node, tr.kind, outcome, tr.dur); reason != "" && tr.anomaly == "" {
			tr.anomaly = reason
		}
	}
	keep := tr.headKeep || tr.anomaly != ""
	switch {
	case !keep:
		tr.keptLabel = ""
	case tr.headKeep:
		tr.keptLabel = "head"
	default:
		tr.keptLabel = "tail"
	}
	t := tr.tracer
	id, anomaly, kept := tr.id, tr.anomaly, tr.keptLabel
	node, url, kind, nspans := tr.node, tr.url, tr.kind, len(tr.spans)
	dur := tr.dur
	tr.mu.Unlock()

	if !keep {
		t.dropped.Inc()
		return
	}
	if kept == "head" {
		t.sampled.Inc()
	} else {
		t.keptTail.Inc()
	}
	t.ring.put(tr)
	lvl := t.log.Debug
	if anomaly != "" {
		lvl = t.log.Info
	}
	lvl("trace completed",
		"trace_id", id.String(), "node", node, "kind", kind, "url", url,
		"outcome", outcome, "anomaly", anomaly, "kept", kept,
		"spans", nspans, "duration", dur)
}

// snapshotView renders the trace for JSON exposition.
func (tr *Trace) snapshotView() view {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	v := view{
		ID:      tr.id.String(),
		Node:    tr.node,
		Kind:    tr.kind,
		URL:     tr.url,
		Start:   tr.start,
		Outcome: tr.outcome,
		Anomaly: tr.anomaly,
		Kept:    tr.keptLabel,
		Spans:   append([]Span(nil), tr.spans...),
	}
	v.DurationUS = tr.dur.Microseconds()
	return v
}

package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestParseBlock(t *testing.T) {
	cases := []struct {
		in    string
		id    int64
		state string
		ok    bool
	}{
		{"goroutine 1 [running]:\nmain.main()\n\t/x/main.go:1 +0x1", 1, "running", true},
		{"goroutine 42 [chan receive, 3 minutes]:\nx.y()\n\t/x/y.go:9", 42, "chan receive", true},
		{"goroutine 7 [select]:\na.b()", 7, "select", true},
		{"not a goroutine header", 0, "", false},
		{"", 0, "", false},
	}
	for _, c := range cases {
		g, ok := parseBlock(c.in)
		if ok != c.ok || g.id != c.id || g.state != c.state {
			t.Errorf("parseBlock(%q) = {id:%d state:%q} ok=%v, want {id:%d state:%q} ok=%v",
				c.in, g.id, g.state, ok, c.id, c.state, c.ok)
		}
	}
}

// TestNoFalsePositive: a snapshot followed immediately by a diff must be
// empty — the test harness's own goroutines are either in the snapshot
// or filtered as benign.
func TestNoFalsePositive(t *testing.T) {
	snap := Take()
	if leaked := wait(snap, 2*time.Second); len(leaked) != 0 {
		for _, g := range leaked {
			t.Errorf("false positive: goroutine %d [%s]:\n%s", g.id, g.state, g.stack)
		}
	}
}

// TestDetectsLeak: a goroutine parked on a never-closed channel must
// show up in the diff, with its blocking site in the reported stack.
func TestDetectsLeak(t *testing.T) {
	snap := Take()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	leaked := wait(snap, 100*time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("got %d leaked goroutines, want 1: %+v", len(leaked), leaked)
	}
	if !strings.Contains(leaked[0].stack, "leakcheck.TestDetectsLeak") {
		t.Errorf("leak stack does not point at the leaking function:\n%s", leaked[0].stack)
	}

	close(block)
	if leaked := wait(snap, 2*time.Second); len(leaked) != 0 {
		t.Errorf("leak still reported after goroutine exit: %+v", leaked)
	}
}

// TestWaitRidesOutSlowShutdown: a goroutine that exits shortly after
// the check starts must not be reported — wait's retry window absorbs
// shutdown races.
func TestWaitRidesOutSlowShutdown(t *testing.T) {
	snap := Take()
	go time.Sleep(150 * time.Millisecond)
	if leaked := wait(snap, 3*time.Second); len(leaked) != 0 {
		t.Errorf("slow-exiting goroutine reported as leak: %+v", leaked)
	}
}

// Package ok is the atomic-mixing negative fixture: disciplined atomic
// use and ordinary plain fields, none of it flagged.
package ok

import (
	"sync"
	"sync/atomic"
)

type gauge struct {
	n     atomic.Int64
	words []atomic.Uint64
}

func (g *gauge) inc()                { g.n.Add(1) }
func (g *gauge) read() int64         { return g.n.Load() }
func (g *gauge) probe(i int) uint64  { return g.words[i].Load() }
func (g *gauge) addr() *atomic.Int64 { return &g.n }
func (g *gauge) grow(n int)          { g.words = make([]atomic.Uint64, n) }

func (g *gauge) sum() uint64 {
	var t uint64
	for i := range g.words { // index-only range: no element copy
		t += g.words[i].Load()
	}
	return t
}

// plain is never touched atomically, so mutex-guarded plain access is fine.
type plain struct {
	mu sync.Mutex
	n  uint64
}

func (p *plain) inc() {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

// fnStyle uses function-style atomics consistently: every access goes
// through the sync/atomic API.
type fnStyle struct{ n uint64 }

func (f *fnStyle) inc() uint64 {
	atomic.AddUint64(&f.n, 1)
	return atomic.LoadUint64(&f.n)
}

package lru

import (
	"testing"
	"time"
)

// TestTimingPathAllocs pins the OpTiming hook's zero-allocation contract:
// the conditional defer in Get/Put must stay open-coded (no heap-escaping
// closure), with and without the hook installed.
func TestTimingPathAllocs(t *testing.T) {
	for _, timed := range []bool{false, true} {
		cfg := Config{Capacity: 1 << 20, MaxObjectSize: -1, Shards: 1}
		if timed {
			cfg.OpTiming = func(op string, d time.Duration) {}
		}
		c := MustNewCache(cfg)
		c.Put(Entry{Key: "k", Size: 1})
		if n := testing.AllocsPerRun(100, func() { c.Get("k") }); n != 0 {
			t.Errorf("Get allocs (timed=%v) = %v, want 0", timed, n)
		}
	}
}

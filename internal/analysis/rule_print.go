package analysis

import (
	"go/ast"
	"go/types"
)

// strayPrintingRule keeps process streams out of library code: only main
// packages (cmd/, examples/) may print. Libraries report through
// log/slog (internal/obs events) so output is structured, leveled and
// routable; a stray fmt.Print in a hot path is also an allocation and a
// mutex on os.Stdout. Writer-directed forms (fmt.Fprintf(w, ...)) stay
// legal — the destination is explicit.
type strayPrintingRule struct{}

func (strayPrintingRule) Name() string { return RuleStrayPrinting }

func (strayPrintingRule) Doc() string {
	return "fmt.Print*/log.Print*/println are forbidden outside main packages; library code uses slog/obs"
}

// printFuncs maps package path → forbidden package-level functions.
var printFuncs = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

func (strayPrintingRule) Check(pkg *Package, report ReportFunc) {
	if pkg.IsMain() {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch callee := calleeOf(pkg, call).(type) {
			case *types.Func:
				if callee.Pkg() != nil && printFuncs[callee.Pkg().Path()][callee.Name()] {
					report(call.Pos(),
						"%s.%s writes to a process stream from library code; emit a structured slog/obs event instead",
						callee.Pkg().Name(), callee.Name())
				}
			case *types.Builtin:
				if name := callee.Name(); name == "print" || name == "println" {
					report(call.Pos(),
						"builtin %s writes to stderr from library code; emit a structured slog/obs event instead", name)
				}
			}
			return true
		})
	}
}

package tracing

import (
	"encoding/json"
	"net/http"
)

// Handler serves the trace store as JSON, meant to be mounted at
// /debug/traces on the obs admin endpoint:
//
//	GET /debug/traces                 newest-first summary list
//	GET /debug/traces?id=<hex>        every retained trace with that ID
//	GET /debug/traces?outcome=<o>     list filtered by outcome (e.g. false_hit)
//	GET /debug/traces?kind=<k>        list filtered by kind (request, icp_answer)
//
// The list view elides spans; the id view includes them (the single-trace
// view, plus — when one store serves a whole mesh — the answering-side
// traces that share the exchange ID).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		q := req.URL.Query()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")

		if idStr := q.Get("id"); idStr != "" {
			id, ok := ParseID(idStr)
			if !ok {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			matches := t.Find(id)
			if len(matches) == 0 {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			out := make([]view, 0, len(matches))
			for _, tr := range matches {
				out = append(out, tr.snapshotView())
			}
			enc.Encode(out)
			return
		}

		outcome, kind := q.Get("outcome"), q.Get("kind")
		type summary struct {
			ID         string `json:"id"`
			Node       string `json:"node"`
			Kind       string `json:"kind"`
			URL        string `json:"url"`
			Outcome    string `json:"outcome"`
			Anomaly    string `json:"anomaly,omitempty"`
			Kept       string `json:"kept"`
			DurationUS int64  `json:"duration_us"`
			Spans      int    `json:"spans"`
		}
		var list []summary
		for _, tr := range t.Traces() {
			v := tr.snapshotView()
			if outcome != "" && v.Outcome != outcome {
				continue
			}
			if kind != "" && v.Kind != kind {
				continue
			}
			list = append(list, summary{
				ID: v.ID, Node: v.Node, Kind: v.Kind, URL: v.URL,
				Outcome: v.Outcome, Anomaly: v.Anomaly, Kept: v.Kept,
				DurationUS: v.DurationUS, Spans: len(v.Spans),
			})
		}
		enc.Encode(struct {
			Count  int       `json:"count"`
			Traces []summary `json:"traces"`
		}{len(list), list})
	})
}

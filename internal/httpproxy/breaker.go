package httpproxy

import (
	"sync"
	"time"
)

// Per-sibling circuit breaker for the cache-only fetch path. A sibling
// whose ICP endpoint answers HIT but whose HTTP endpoint cannot deliver
// (crashed listener, partition, overload) would otherwise cost every
// nominated request a failed fetch before the origin fallback. The
// breaker trips after BreakerThreshold consecutive fetch failures —
// fetches stop, requests go straight to the origin (still counted as
// false hits, never surfaced as client errors) — and after
// BreakerCooldown it admits a single half-open probe fetch; success
// closes it again. Trips and recoveries feed the SC-ICP node's health
// monitor (Node.MarkPeerDown / MarkPeerUp), so a tripped sibling's
// summary replica is dropped and it stops attracting nominations until
// it proves itself alive again.

// BreakerState is a circuit's position, exposed by the
// summarycache_proxy_breaker_state gauge.
type BreakerState int32

// The breaker states (the gauge's values).
const (
	BreakerClosed   BreakerState = 0 // healthy: fetches flow
	BreakerOpen     BreakerState = 1 // tripped: fetches skipped
	BreakerHalfOpen BreakerState = 2 // probing: one trial fetch in flight
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is one sibling's circuit. The zero value is not usable; see
// newBreaker.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a fetch may be attempted now. In the open state
// it transitions to half-open once the cooldown has elapsed, admitting
// exactly one probe; concurrent callers see half-open and are refused
// until the probe resolves via Success or Failure.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: the admitted probe is still in flight
		return false
	}
}

// Success records a delivered fetch. It returns true when the circuit
// just recovered (half-open probe succeeded), which the proxy turns into
// a MarkPeerUp.
func (b *breaker) Success() (recovered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	if b.state != BreakerClosed {
		b.state = BreakerClosed
		return true
	}
	return false
}

// Failure records a failed fetch. It returns true when the circuit just
// tripped (closed crossed the threshold), which the proxy turns into a
// MarkPeerDown. A failed half-open probe re-opens silently — the peer is
// already marked down.
func (b *breaker) Failure() (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = time.Now()
			return true
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = time.Now()
	case BreakerOpen:
		// A fetch admitted before the trip resolved late: refresh the
		// cooldown window.
		b.openedAt = time.Now()
	}
	return false
}

// ForceOpen trips the circuit from outside — the health prober reporting
// the peer down. The cooldown restarts from now.
func (b *breaker) ForceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerOpen
	b.consecutive = 0
	b.openedAt = time.Now()
}

// Reset closes the circuit from outside — the health prober reporting
// the peer up again (UDP liveness is the mesh-level half-open probe).
func (b *breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecutive = 0
}

// State reports the circuit's position.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

package icp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts datagrams through a Conn; the networked benchmark's analog
// of the paper's netstat UDP counters.
type Stats struct {
	Sent       uint64
	Received   uint64
	SentBytes  uint64
	RecvBytes  uint64
	Dropped    uint64 // undecodable or unroutable datagrams
	SendErrors uint64 // transmissions the network layer rejected
}

// Handler consumes unsolicited inbound messages (queries from peers,
// directory updates). Replies to in-flight queries are routed internally
// and never reach the handler. Handlers run on the receive goroutine;
// blocking ones stall the socket.
type Handler func(from *net.UDPAddr, m Message)

// ErrClosed is returned by operations on a closed Conn.
var ErrClosed = errors.New("icp: connection closed")

// Conn is an ICP endpoint over UDP: it serves peer queries via a Handler
// and issues queries with request-number matching and timeouts.
type Conn struct {
	pc      *net.UDPConn
	handler Handler

	sent, recv, sentB, recvB, dropped, sendErrs atomic.Uint64
	nextReq                                     atomic.Uint32

	mu      sync.Mutex
	pending map[uint32]chan Message
	closed  bool
	started bool
	done    chan struct{}
}

// Listen opens an ICP endpoint on addr ("127.0.0.1:0" for an ephemeral
// test port) with handler (which may be nil to ignore unsolicited
// traffic). The receive loop does NOT run until Start is called: callers
// typically finish wiring the state their handler closes over first —
// starting to serve inside the constructor would race with those
// assignments.
func Listen(addr string, handler Handler) (*Conn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("icp: resolve %q: %w", addr, err)
	}
	pc, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("icp: listen %q: %w", addr, err)
	}
	c := &Conn{
		pc:      pc,
		handler: handler,
		pending: make(map[uint32]chan Message),
		done:    make(chan struct{}),
	}
	return c, nil
}

// Start begins the receive loop. It must be called exactly once, after the
// handler's dependencies are fully initialized. Datagrams arriving before
// Start sit in the socket buffer and are processed once it runs.
func (c *Conn) Start() {
	c.mu.Lock()
	if c.started || c.closed {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	go c.readLoop()
}

// Addr returns the bound UDP address.
func (c *Conn) Addr() *net.UDPAddr { return c.pc.LocalAddr().(*net.UDPAddr) }

// Stats snapshots the traffic counters.
func (c *Conn) Stats() Stats {
	return Stats{
		Sent:       c.sent.Load(),
		Received:   c.recv.Load(),
		SentBytes:  c.sentB.Load(),
		RecvBytes:  c.recvB.Load(),
		Dropped:    c.dropped.Load(),
		SendErrors: c.sendErrs.Load(),
	}
}

// Close shuts the endpoint down and fails all in-flight queries.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, ch := range c.pending {
		close(ch)
	}
	c.pending = make(map[uint32]chan Message)
	started := c.started
	c.mu.Unlock()
	err := c.pc.Close()
	if started {
		<-c.done
	}
	return err
}

// Send encodes and transmits m to the peer.
func (c *Conn) Send(to *net.UDPAddr, m Message) error {
	buf, err := m.MarshalBinary()
	if err != nil {
		return err
	}
	n, err := c.pc.WriteToUDP(buf, to)
	if err != nil {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return ErrClosed
		}
		// A rejected transmission is the only trace a flaky peer link
		// leaves on the sender; count it rather than losing it with the
		// discarded error.
		c.sendErrs.Add(1)
		return fmt.Errorf("icp: send to %v: %w", to, err)
	}
	c.sent.Add(1)
	c.sentB.Add(uint64(n))
	return nil
}

// NextReqNum returns a fresh request number.
func (c *Conn) NextReqNum() uint32 { return c.nextReq.Add(1) }

// Query sends an ICP query for url to the peer and waits for its reply
// (HIT, MISS, MISS_NOFETCH, DENIED or ERR) until ctx is done. A lost
// datagram surfaces as ctx expiry — the caller treats it as a miss,
// exactly as Squid does.
func (c *Conn) Query(ctx context.Context, to *net.UDPAddr, url string) (Message, error) {
	reqNum := c.NextReqNum()
	ch := make(chan Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Message{}, ErrClosed
	}
	c.pending[reqNum] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, reqNum)
		c.mu.Unlock()
	}()

	if err := c.Send(to, NewQuery(reqNum, url)); err != nil {
		return Message{}, err
	}
	select {
	case m, ok := <-ch:
		if !ok {
			return Message{}, ErrClosed
		}
		return m, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// QueryAll queries several peers concurrently and returns the first HIT,
// or the last non-hit reply when none hits (zero Message if every peer
// timed out). It implements the ICP multicast-query/first-hit pattern.
func (c *Conn) QueryAll(ctx context.Context, peers []*net.UDPAddr, url string) (hit bool, from *net.UDPAddr, err error) {
	if len(peers) == 0 {
		return false, nil, nil
	}
	type result struct {
		m    Message
		from *net.UDPAddr
		err  error
	}
	ch := make(chan result, len(peers))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for _, p := range peers {
		go func(p *net.UDPAddr) {
			m, err := c.Query(cctx, p, url)
			ch <- result{m, p, err}
		}(p)
	}
	var lastErr error
	for range peers {
		r := <-ch
		if r.err != nil {
			lastErr = r.err
			continue
		}
		if r.m.Op == OpHit || r.m.Op == OpHitObj {
			return true, r.from, nil
		}
	}
	if errors.Is(lastErr, context.Canceled) || errors.Is(lastErr, context.DeadlineExceeded) {
		lastErr = nil // timeouts are ordinary misses
	}
	return false, nil, lastErr
}

func (c *Conn) readLoop() {
	defer close(c.done)
	buf := make([]byte, MaxDatagram)
	for {
		n, from, err := c.pc.ReadFromUDP(buf)
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			// Socket gone for another reason: stop the loop.
			return
		}
		c.recv.Add(1)
		c.recvB.Add(uint64(n))
		m, err := Parse(buf[:n])
		if err != nil {
			c.dropped.Add(1)
			continue
		}
		if isReply(m.Op) {
			c.mu.Lock()
			ch := c.pending[m.ReqNum]
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- m:
				default:
				}
				continue
			}
			// Late reply after timeout: drop silently.
			c.dropped.Add(1)
			continue
		}
		if c.handler != nil {
			c.handler(from, m)
		}
	}
}

func isReply(op Opcode) bool {
	switch op {
	case OpHit, OpMiss, OpMissNoFetch, OpDenied, OpErr, OpHitObj:
		return true
	}
	return false
}

// WaitSettled polls until no datagrams arrive for the quiet duration or
// the deadline passes; tests use it to avoid sleeping fixed amounts.
func (c *Conn) WaitSettled(quiet, deadline time.Duration) {
	end := time.Now().Add(deadline)
	last := c.recv.Load()
	lastChange := time.Now()
	for time.Now().Before(end) {
		time.Sleep(quiet / 4)
		cur := c.recv.Load()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) >= quiet {
			return
		}
	}
}

package sim

import (
	"strings"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
)

// probeKey is a request URL prepared once per discovery so that probing
// N-1 peer summaries does not recompute hashes or parse the URL N-1 times.
type probeKey struct {
	url    string
	server string   // set for ServerName summaries
	idx    []uint64 // Bloom indices, set for Bloom summaries
}

// summarizer is one proxy's summary pipeline: the live side mirrors the
// proxy's own directory as documents enter and leave its cache; publish
// drains accumulated changes into the published view — the (delayed) copy
// every peer holds; probe asks the published view about a URL.
type summarizer interface {
	insert(url string)
	remove(url string)
	// pending returns directory changes accumulated since the last publish
	// (the quantity the update threshold is measured against counts only
	// new documents; see proxyState.newDocs in the engine).
	pending() int
	// publish applies pending changes to the published view and returns
	// the size in bytes of one unicast update message carrying them.
	publish() (msgBytes int)
	probe(k probeKey) bool
	// memoryBytes is the size of one published summary — what each peer
	// must dedicate per neighbor (Table III).
	memoryBytes() uint64
	// counterBytes is any additional local-only maintenance memory (the
	// counting filter's counters for Bloom; zero otherwise).
	counterBytes() uint64
}

// ServerOf extracts the server-name component of a URL (host, without
// scheme, path, or port), the key of the server-name summary.
func ServerOf(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/?"); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i]
	}
	return s
}

// oracleSummary consults the true contents with zero traffic; the
// discovery idealization used for the Fig. 1 scheme comparison. The engine
// resolves oracle probes directly against peer caches, so probe here is
// never called; the methods exist to satisfy the interface cheaply.
type oracleSummary struct{}

func (oracleSummary) insert(string)        {}
func (oracleSummary) remove(string)        {}
func (oracleSummary) pending() int         { return 0 }
func (oracleSummary) publish() int         { return 0 }
func (oracleSummary) probe(probeKey) bool  { return true }
func (oracleSummary) memoryBytes() uint64  { return 0 }
func (oracleSummary) counterBytes() uint64 { return 0 }

// icpSummary answers "maybe" for everything: ICP queries every peer on
// every miss and keeps no state.
type icpSummary struct{}

func (icpSummary) insert(string)        {}
func (icpSummary) remove(string)        {}
func (icpSummary) pending() int         { return 0 }
func (icpSummary) publish() int         { return 0 }
func (icpSummary) probe(probeKey) bool  { return true }
func (icpSummary) memoryBytes() uint64  { return 0 }
func (icpSummary) counterBytes() uint64 { return 0 }

// dirChange is one journal entry for directory-delta summaries.
type dirChange struct {
	key string
	add bool
}

// exactDirSummary is the exact-directory representation: the summary is
// the cache directory itself, each URL represented on the wire and in
// memory by its 16-byte MD5 signature.
type exactDirSummary struct {
	model     MessageModel
	journal   []dirChange
	published map[string]struct{}
}

func newExactDirSummary(model MessageModel) *exactDirSummary {
	return &exactDirSummary{model: model, published: make(map[string]struct{})}
}

func (s *exactDirSummary) insert(url string) { s.journal = append(s.journal, dirChange{url, true}) }
func (s *exactDirSummary) remove(url string) { s.journal = append(s.journal, dirChange{url, false}) }
func (s *exactDirSummary) pending() int      { return len(s.journal) }

func (s *exactDirSummary) publish() int {
	n := len(s.journal)
	for _, ch := range s.journal {
		if ch.add {
			s.published[ch.key] = struct{}{}
		} else {
			delete(s.published, ch.key)
		}
	}
	s.journal = s.journal[:0]
	return s.model.DirUpdateHeader + n*s.model.DirUpdatePerEntry
}

func (s *exactDirSummary) probe(k probeKey) bool {
	_, ok := s.published[k.url]
	return ok
}

// memoryBytes: 16 bytes (MD5 signature) per published entry.
func (s *exactDirSummary) memoryBytes() uint64  { return uint64(len(s.published)) * 16 }
func (s *exactDirSummary) counterBytes() uint64 { return 0 }

// serverNameSummary keeps the set of server names of cached URLs. Because
// many URLs share a server, the live side reference-counts and only
// journals 0↔1 transitions.
type serverNameSummary struct {
	model     MessageModel
	refs      map[string]int
	journal   []dirChange
	published map[string]struct{}
}

func newServerNameSummary(model MessageModel) *serverNameSummary {
	return &serverNameSummary{
		model:     model,
		refs:      make(map[string]int),
		published: make(map[string]struct{}),
	}
}

func (s *serverNameSummary) insert(url string) {
	sv := ServerOf(url)
	s.refs[sv]++
	if s.refs[sv] == 1 {
		s.journal = append(s.journal, dirChange{sv, true})
	}
}

func (s *serverNameSummary) remove(url string) {
	sv := ServerOf(url)
	if s.refs[sv] == 0 {
		return // remove without insert; ignore like counter underflow
	}
	s.refs[sv]--
	if s.refs[sv] == 0 {
		delete(s.refs, sv)
		s.journal = append(s.journal, dirChange{sv, false})
	}
}

func (s *serverNameSummary) pending() int { return len(s.journal) }

func (s *serverNameSummary) publish() int {
	n := len(s.journal)
	for _, ch := range s.journal {
		if ch.add {
			s.published[ch.key] = struct{}{}
		} else {
			delete(s.published, ch.key)
		}
	}
	s.journal = s.journal[:0]
	return s.model.DirUpdateHeader + n*s.model.DirUpdatePerEntry
}

func (s *serverNameSummary) probe(k probeKey) bool {
	_, ok := s.published[k.server]
	return ok
}

// memoryBytes: the name bytes plus small per-entry overhead.
func (s *serverNameSummary) memoryBytes() uint64 {
	var b uint64
	//lint:ignore sclint/determinism summation commutes; iteration order cannot change the total
	for name := range s.published {
		b += uint64(len(name)) + 8
	}
	return b
}
func (s *serverNameSummary) counterBytes() uint64 { return 0 }

// bloomSummary is the paper's proposal: the live side is a counting Bloom
// filter journaling bit flips; the published view is the plain bit filter
// peers hold and probe.
type bloomSummary struct {
	model      MessageModel
	counting   *bloom.CountingFilter
	journal    []bloom.Flip
	published  *bloom.Filter
	wholeArray bool // BloomDigest: updates ship the full bit array

	flipEvents  uint64
	flipsTotal  uint64
	scratchFlip []bloom.Flip
}

func newBloomSummary(model MessageModel, mBits uint64, counterBits uint, spec hashing.Spec, wholeArray bool) *bloomSummary {
	return &bloomSummary{
		model:      model,
		counting:   bloom.MustNewCountingFilter(mBits, counterBits, spec),
		published:  bloom.MustNewFilter(mBits, spec),
		wholeArray: wholeArray,
	}
}

func (s *bloomSummary) insert(url string) {
	s.scratchFlip = s.counting.Add(url, s.scratchFlip[:0])
	s.journal = append(s.journal, s.scratchFlip...)
}

func (s *bloomSummary) remove(url string) {
	s.scratchFlip = s.counting.Remove(url, s.scratchFlip[:0])
	s.journal = append(s.journal, s.scratchFlip...)
}

func (s *bloomSummary) pending() int { return len(s.journal) }

func (s *bloomSummary) publish() int {
	n := len(s.journal)
	// Apply cannot fail: flips come from a same-geometry counting filter.
	if err := s.published.Apply(s.journal); err != nil {
		panic("sim: bloom flip out of range: " + err.Error())
	}
	s.journal = s.journal[:0]
	if n > 0 {
		s.flipEvents++
		s.flipsTotal += uint64(n)
	}
	if s.wholeArray {
		// Cache-digest style: header plus the full bit array.
		return s.model.BloomUpdateHeader + int((s.published.Size()+7)/8)
	}
	return s.model.BloomUpdateHeader + n*s.model.BloomUpdatePerBit
}

func (s *bloomSummary) probe(k probeKey) bool { return s.published.TestIndexes(k.idx) }

// memoryBytes: the published bit array.
func (s *bloomSummary) memoryBytes() uint64 { return (s.published.Size() + 7) / 8 }

// counterBytes: the local counting filter's counters.
func (s *bloomSummary) counterBytes() uint64 { return s.counting.MemoryBytes() }

package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Welford accumulates mean and variance online (Welford's algorithm). The
// zero value is ready to use. Not safe for concurrent use; wrap in a mutex
// or use one per goroutine and Merge.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into this one (Chan et al. parallel
// variance combination).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n, w.mean, w.m2 = n, mean, m2
}

// N returns the observation count.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (0 when n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// String implements fmt.Stringer.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f", w.n, w.Mean(), w.Stddev(), w.min, w.max)
}

// LatencyRecorder collects request latencies concurrently and reports
// summary percentiles — the "average latency seen by the clients" column of
// Tables II, IV and V, plus the tail the paper discusses qualitatively.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record appends one latency sample. Safe for concurrent use.
func (l *LatencyRecorder) Record(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, d)
	l.mu.Unlock()
}

// Count returns the number of samples.
func (l *LatencyRecorder) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Mean returns the mean latency.
func (l *LatencyRecorder) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range l.samples {
		sum += d
	}
	return sum / time.Duration(len(l.samples))
}

// Percentile returns the p-th percentile latency, p in [0,100].
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(l.samples))
	copy(sorted, l.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Ratio is a hit-ratio style counter pair with convenience accessors.
type Ratio struct {
	Num, Den uint64
}

// Add increments the denominator and, when hit, the numerator.
func (r *Ratio) Add(hit bool) {
	r.Den++
	if hit {
		r.Num++
	}
}

// Value returns Num/Den (0 when empty).
func (r Ratio) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Percent returns the ratio as a percentage.
func (r Ratio) Percent() float64 { return 100 * r.Value() }

func (r Ratio) String() string {
	return fmt.Sprintf("%d/%d (%.2f%%)", r.Num, r.Den, r.Percent())
}

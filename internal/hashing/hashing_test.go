package hashing

import (
	"crypto/md5"
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"default", DefaultSpec, true},
		{"one function", Spec{1, 8}, true},
		{"max bits", Spec{2, 64}, true},
		{"zero functions", Spec{0, 32}, false},
		{"negative functions", Spec{-1, 32}, false},
		{"zero bits", Spec{4, 0}, false},
		{"too many bits", Spec{4, 65}, false},
		{"ten of sixteen", Spec{10, 16}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate(%+v) error = %v, want ok=%v", c.spec, err, c.ok)
			}
		})
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Spec{0, 0}); err == nil {
		t.Fatal("New accepted invalid spec")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid spec")
		}
	}()
	MustNew(Spec{-1, 32})
}

func TestDigestRounds(t *testing.T) {
	cases := []struct {
		spec Spec
		want int
	}{
		{Spec{4, 32}, 1},  // 128 bits exactly
		{Spec{5, 32}, 2},  // 160 bits -> two digests
		{Spec{10, 16}, 2}, // 160 bits
		{Spec{8, 16}, 1},  // 128 bits
		{Spec{1, 8}, 1},
		{Spec{16, 32}, 4}, // 512 bits
	}
	for _, c := range cases {
		if got := c.spec.DigestRounds(); got != c.want {
			t.Errorf("DigestRounds(%+v) = %d, want %d", c.spec, got, c.want)
		}
	}
}

// The paper specifies that the four default functions are exactly the four
// 32-bit words of the MD5 digest, reduced mod m. Pin that wire behaviour.
func TestIndexesMatchMD5Words(t *testing.T) {
	f := MustNew(DefaultSpec)
	const key = "http://www.cs.wisc.edu/~cao/papers/summary-cache/"
	const m = uint64(1 << 20)
	sum := md5.Sum([]byte(key))
	var want []uint64
	for i := 0; i < 4; i++ {
		w := uint64(sum[4*i])<<24 | uint64(sum[4*i+1])<<16 | uint64(sum[4*i+2])<<8 | uint64(sum[4*i+3])
		want = append(want, w%m)
	}
	got, err := f.Indexes(nil, key, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d indexes, want 4", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("index %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestIndexesDeterministic(t *testing.T) {
	f := MustNew(Spec{10, 16})
	a, err := f.Indexes(nil, "http://example.com/a", 999983)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Indexes(nil, "http://example.com/a", 999983)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic index %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestIndexesRange(t *testing.T) {
	f := MustNew(Spec{10, 16})
	for _, m := range []uint64{1, 2, 7, 256, 1 << 30} {
		idx, err := f.Indexes(nil, "key", m)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range idx {
			if v >= m {
				t.Fatalf("index %d out of range for m=%d", v, m)
			}
		}
	}
}

func TestIndexesZeroModulus(t *testing.T) {
	f := MustNew(DefaultSpec)
	if _, err := f.Indexes(nil, "key", 0); err != ErrZeroModulus {
		t.Fatalf("err = %v, want ErrZeroModulus", err)
	}
	var buf [4]uint64
	if _, err := f.IndexesInto(buf[:], "key", 0); err != ErrZeroModulus {
		t.Fatalf("IndexesInto err = %v, want ErrZeroModulus", err)
	}
}

func TestIndexesIntoMatchesIndexes(t *testing.T) {
	f := MustNew(Spec{6, 24})
	const m = 131071
	keys := []string{"", "a", "http://x/y?z=1", "日本語"}
	for _, k := range keys {
		want, err := f.Indexes(nil, k, m)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]uint64, 6)
		n, err := f.IndexesInto(got, k, m)
		if err != nil {
			t.Fatal(err)
		}
		if n != 6 {
			t.Fatalf("n = %d, want 6", n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("key %q index %d: IndexesInto=%d Indexes=%d", k, i, got[i], want[i])
			}
		}
	}
}

func TestIndexesIntoShortDst(t *testing.T) {
	f := MustNew(DefaultSpec)
	var buf [2]uint64
	if _, err := f.IndexesInto(buf[:], "key", 100); err == nil {
		t.Fatal("IndexesInto accepted short dst")
	}
}

func TestIndexesAppend(t *testing.T) {
	f := MustNew(DefaultSpec)
	prefix := []uint64{42}
	out, err := f.Indexes(prefix, "key", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 || out[0] != 42 {
		t.Fatalf("append semantics broken: %v", out)
	}
}

// Beyond-128-bit families must still be deterministic and in-range, and the
// extension digests must differ from the first round (MD5(k) != MD5(k||k)).
func TestExtendedFamilyDistinctRounds(t *testing.T) {
	f4 := MustNew(Spec{4, 32})
	f8 := MustNew(Spec{8, 32})
	const key = "http://example.org/long"
	const m = uint64(1) << 31
	a, _ := f4.Indexes(nil, key, m)
	b, _ := f8.Indexes(nil, key, m)
	for i := 0; i < 4; i++ {
		if a[i] != b[i] {
			t.Fatalf("first four indices must agree between k=4 and k=8 families: %v vs %v", a, b)
		}
	}
	same := true
	for i := 4; i < 8; i++ {
		if b[i] != b[i-4] {
			same = false
		}
	}
	if same {
		t.Fatal("extension round reproduced first digest; MD5(key||key) not applied")
	}
}

func TestSignatureMatchesMD5(t *testing.T) {
	const key = "http://example.com/"
	if Signature(key) != md5.Sum([]byte(key)) {
		t.Fatal("Signature does not match crypto/md5")
	}
}

// Property: indices are always in range and deterministic for arbitrary keys.
func TestQuickIndexesInvariant(t *testing.T) {
	f := MustNew(Spec{5, 30})
	prop := func(key string, mRaw uint32) bool {
		m := uint64(mRaw%1e6) + 1
		a, err := f.Indexes(nil, key, m)
		if err != nil || len(a) != 5 {
			return false
		}
		b, _ := f.Indexes(nil, key, m)
		for i := range a {
			if a[i] >= m || a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: different keys rarely collide on the full index vector when the
// table is large (sanity that we're actually hashing, not truncating).
func TestQuickDispersion(t *testing.T) {
	f := MustNew(DefaultSpec)
	const m = uint64(1) << 32
	seen := make(map[[4]uint64]string)
	prop := func(key string) bool {
		idx, err := f.Indexes(nil, key, m)
		if err != nil {
			return false
		}
		var v [4]uint64
		copy(v[:], idx)
		if prev, ok := seen[v]; ok {
			return prev == key // identical key is fine
		}
		seen[v] = key
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIndexesDefault(b *testing.B) {
	f := MustNew(DefaultSpec)
	buf := make([]uint64, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.IndexesInto(buf, "http://www.example.com/some/moderate/path.html", 1<<23)
	}
}

func BenchmarkIndexesTenFunctions(b *testing.B) {
	f := MustNew(Spec{10, 32})
	buf := make([]uint64, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.IndexesInto(buf, "http://www.example.com/some/moderate/path.html", 1<<23)
	}
}

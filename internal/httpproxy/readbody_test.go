package httpproxy

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

// fakeResp builds a response with the given body reader and declared
// length (-1: unknown / chunked).
func fakeResp(body string, declared int64) *http.Response {
	return &http.Response{
		ContentLength: declared,
		Body:          io.NopCloser(strings.NewReader(body)),
	}
}

// TestReadBodyCapConsistency pins the invariant behind the cap: a body
// that exceeds it is an error — never a silently truncated prefix the
// proxy would cache or forward as the complete document — and the cap
// applies identically whether the length was declared or unknown.
func TestReadBodyCapConsistency(t *testing.T) {
	const limit = 16

	t.Run("declared over cap fails without reading", func(t *testing.T) {
		resp := fakeResp(strings.Repeat("x", 32), 32)
		if _, err := readBodyLimit(resp, limit); !errors.Is(err, errBodyTooLarge) {
			t.Fatalf("want errBodyTooLarge, got %v", err)
		}
	})

	t.Run("unknown length over cap fails", func(t *testing.T) {
		resp := fakeResp(strings.Repeat("x", 32), -1)
		if _, err := readBodyLimit(resp, limit); !errors.Is(err, errBodyTooLarge) {
			t.Fatalf("want errBodyTooLarge, got %v", err)
		}
	})

	t.Run("unknown length within cap reads fully", func(t *testing.T) {
		resp := fakeResp("hello", -1)
		body, err := readBodyLimit(resp, limit)
		if err != nil || string(body) != "hello" {
			t.Fatalf("got %q, %v", body, err)
		}
	})

	t.Run("unknown length exactly at cap reads fully", func(t *testing.T) {
		resp := fakeResp(strings.Repeat("x", limit), -1)
		body, err := readBodyLimit(resp, limit)
		if err != nil || len(body) != limit {
			t.Fatalf("got %d bytes, %v", len(body), err)
		}
	})

	t.Run("declared length truncated body is an error", func(t *testing.T) {
		resp := fakeResp("short", 10)
		if _, err := readBodyLimit(resp, limit); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("want unexpected EOF, got %v", err)
		}
	})
}

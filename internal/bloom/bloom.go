// Package bloom implements the Bloom filter machinery of Fan et al.,
// "Summary Cache" (SIGCOMM '98): plain bit-vector filters used to hold
// peers' cache summaries, counting Bloom filters (the paper's contribution
// popularizing them) used to maintain the local summary under insertions and
// deletions, bit-flip journaling for the delta-based directory-update wire
// protocol, and the analytic results of §V-C (false-positive probability,
// optimal number of hash functions, counter-overflow bounds).
//
// Figure 3 of the paper illustrates the structure implemented here: a
// vector of m bits and k independent hash functions; inserting a key sets
// the k addressed bits, and a membership probe conjectures presence iff all
// k bits are set.
package bloom

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"summarycache/internal/hashing"
)

// Flip records one bit transition in a filter: the paper's directory-update
// messages are streams of exactly these (a 32-bit word whose most
// significant bit says set-vs-clear and whose remaining 31 bits index the
// bit array).
type Flip struct {
	Index uint32 // bit position, < 2^31 per the wire format
	Set   bool   // true: 0→1, false: 1→0
}

// MaxBits is the largest supported filter size. The paper's wire format
// indexes bits with 31-bit integers ("the design limits the hash table size
// to be less than 2 billion, which for the time being is large enough").
const MaxBits = uint64(1) << 31

var (
	// ErrBadSize reports an unusable bit-array size.
	ErrBadSize = errors.New("bloom: filter size must be in [1, 2^31] bits")
	// ErrIndexRange reports a bit index outside the filter.
	ErrIndexRange = errors.New("bloom: bit index out of range")
	// ErrSpecMismatch reports an attempt to combine filters built with
	// different hash specifications or sizes.
	ErrSpecMismatch = errors.New("bloom: filter geometry mismatch")
)

// Filter is a plain Bloom filter over string keys. It is what a proxy keeps
// per neighbor: a bit array plus the hash-function specification announced
// in the neighbor's update messages. Filter is safe for concurrent use.
//
// The bit array is a slice of atomic 64-bit words: membership probes (Test,
// TestIndexes) are plain atomic loads and never take a lock, so the peer
// summary probes on every request's hot path scale with cores. Writers
// (Apply, SetBit, ClearBit, Add) use per-word compare-and-swap; bulk
// replacement (Reset, LoadSnapshot) swaps whole words while keeping the
// population count exact via per-word deltas.
type Filter struct {
	m       uint64 // number of bits
	words   []atomic.Uint64
	ones    atomic.Int64 // population count, maintained incrementally
	family  *hashing.Family
	scratch sync.Pool  // *[]uint64 probe buffers
	bulkMu  sync.Mutex // serializes bulk replacements against each other
}

// NewFilter creates a filter of mBits bits probed by the given hash spec.
func NewFilter(mBits uint64, spec hashing.Spec) (*Filter, error) {
	if mBits == 0 || mBits > MaxBits {
		return nil, ErrBadSize
	}
	fam, err := hashing.New(spec)
	if err != nil {
		return nil, err
	}
	f := &Filter{
		m:      mBits,
		words:  make([]atomic.Uint64, (mBits+63)/64),
		family: fam,
	}
	k := spec.FunctionNum
	f.scratch.New = func() any { b := make([]uint64, k); return &b }
	return f, nil
}

// MustNewFilter is NewFilter, panicking on error.
func MustNewFilter(mBits uint64, spec hashing.Spec) *Filter {
	f, err := NewFilter(mBits, spec)
	if err != nil {
		panic(err)
	}
	return f
}

// Size returns the filter's size in bits.
func (f *Filter) Size() uint64 { return f.m }

// Spec returns the hash-function specification.
func (f *Filter) Spec() hashing.Spec { return f.family.Spec() }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.family.Spec().FunctionNum }

// Add inserts key (sets its k bits). Plain filters cannot support deletion;
// use CountingFilter for mutable directories.
func (f *Filter) Add(key string) {
	bufp := f.scratch.Get().(*[]uint64)
	defer f.scratch.Put(bufp)
	n, _ := f.family.IndexesInto(*bufp, key, f.m)
	for _, i := range (*bufp)[:n] {
		f.set(i)
	}
}

// Test reports whether key may be in the set. False positives occur with
// the probability given by FalsePositiveRate; false negatives never occur
// for keys that were added and not cleared. Lock-free: k atomic word loads.
func (f *Filter) Test(key string) bool {
	bufp := f.scratch.Get().(*[]uint64)
	defer f.scratch.Put(bufp)
	n, _ := f.family.IndexesInto(*bufp, key, f.m)
	for _, i := range (*bufp)[:n] {
		if f.words[i>>6].Load()&(1<<(i&63)) == 0 {
			return false
		}
	}
	return true
}

// Indexes returns the k probe positions for key under this filter's
// geometry (its hash family reduced modulo its size). The audited lookup
// path records these so a false hit can name the exact bits that lied.
func (f *Filter) Indexes(key string) []uint64 {
	out := make([]uint64, f.family.Spec().FunctionNum)
	n, _ := f.family.IndexesInto(out, key, f.m)
	return out[:n]
}

// TestIndexes probes the filter with precomputed indices (from the same
// hashing.Family and modulus). Callers probing many peer filters for one
// URL hash once and reuse the indices across filters. Lock-free.
func (f *Filter) TestIndexes(idx []uint64) bool {
	for _, i := range idx {
		if i >= f.m || f.words[i>>6].Load()&(1<<(i&63)) == 0 {
			return false
		}
	}
	return true
}

// set turns bit i on via CAS, reporting whether it changed.
func (f *Filter) set(i uint64) bool {
	w, b := &f.words[i>>6], uint64(1)<<(i&63)
	for {
		old := w.Load()
		if old&b != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|b) {
			f.ones.Add(1)
			return true
		}
	}
}

// clear turns bit i off via CAS, reporting whether it changed.
func (f *Filter) clear(i uint64) bool {
	w, b := &f.words[i>>6], uint64(1)<<(i&63)
	for {
		old := w.Load()
		if old&b == 0 {
			return false
		}
		if w.CompareAndSwap(old, old&^b) {
			f.ones.Add(-1)
			return true
		}
	}
}

// SetBit sets bit i, reporting whether it changed. Used when applying a
// neighbor's directory-update stream.
func (f *Filter) SetBit(i uint64) (changed bool, err error) {
	if i >= f.m {
		return false, ErrIndexRange
	}
	return f.set(i), nil
}

// ClearBit clears bit i, reporting whether it changed.
func (f *Filter) ClearBit(i uint64) (changed bool, err error) {
	if i >= f.m {
		return false, ErrIndexRange
	}
	return f.clear(i), nil
}

// Apply applies a batch of flips (a decoded directory-update message).
// Flips are absolute ("set this bit to 0/1"), so replaying or losing a
// message never corrupts the filter beyond the bits that message carried —
// the paper's rationale for not sending relative toggles.
func (f *Filter) Apply(flips []Flip) error {
	for _, fl := range flips {
		i := uint64(fl.Index)
		if i >= f.m {
			return fmt.Errorf("%w: %d >= %d", ErrIndexRange, i, f.m)
		}
		if fl.Set {
			f.set(i)
		} else {
			f.clear(i)
		}
	}
	return nil
}

// OnesCount returns the number of set bits.
func (f *Filter) OnesCount() uint64 {
	n := f.ones.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

// FillRatio returns the fraction of set bits, the quantity that determines
// the instantaneous false-positive probability (fill^k).
func (f *Filter) FillRatio() float64 {
	return float64(f.OnesCount()) / float64(f.m)
}

// replaceWords swaps new contents into the bit array word by word, keeping
// the population count exact under concurrent CAS writers: each word's
// delta is the popcount difference between what was swapped out and what
// was swapped in. newWord receives the word index.
func (f *Filter) replaceWords(newWord func(int) uint64) {
	f.bulkMu.Lock()
	defer f.bulkMu.Unlock()
	var delta int64
	for i := range f.words {
		w := newWord(i)
		old := f.words[i].Swap(w)
		delta += int64(bits.OnesCount64(w)) - int64(bits.OnesCount64(old))
	}
	f.ones.Add(delta)
}

// Reset clears every bit.
func (f *Filter) Reset() {
	f.replaceWords(func(int) uint64 { return 0 })
}

// Snapshot returns the bit array as bytes (little-endian words, trailing
// bits zero). This is what a proxy ships when sending the whole array is
// cheaper than sending deltas (the Squid "cache digest" variant).
func (f *Filter) Snapshot() []byte {
	out := make([]byte, len(f.words)*8)
	for i := range f.words {
		w := f.words[i].Load()
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(w >> (8 * j))
		}
	}
	return out[:(f.m+7)/8]
}

// LoadSnapshot replaces the filter contents with a snapshot produced by a
// filter of identical geometry.
func (f *Filter) LoadSnapshot(b []byte) error {
	if uint64(len(b)) != (f.m+7)/8 {
		return fmt.Errorf("%w: snapshot %d bytes, want %d", ErrSpecMismatch, len(b), (f.m+7)/8)
	}
	f.replaceWords(func(i int) uint64 {
		var w uint64
		for j := 0; j < 8; j++ {
			idx := i*8 + j
			if idx < len(b) {
				w |= uint64(b[idx]) << (8 * j)
			}
		}
		return w
	})
	return nil
}

// Clone returns a deep copy.
func (f *Filter) Clone() *Filter {
	g := MustNewFilter(f.m, f.family.Spec())
	var ones int64
	for i := range f.words {
		w := f.words[i].Load()
		g.words[i].Store(w)
		ones += int64(bits.OnesCount64(w))
	}
	g.ones.Store(ones)
	return g
}

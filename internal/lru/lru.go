// Package lru implements the Web-proxy document cache used throughout the
// paper's evaluation: least-recently-used replacement over a byte-capacity
// budget, with the paper's policy that "documents larger than 250 KB are
// not cached", version (last-modified/size) tracking for staleness
// detection, an eviction callback that feeds cache-summary deltas, and a
// Touch operation supporting the single-copy sharing scheme ("the other
// proxy marks the document as most-recently-accessed").
//
// The cache is hash-striped into power-of-two shards (memcached-style
// segmented LRU): each shard owns a slice of the byte budget and its own
// recency list, so concurrent requests on different shards never contend.
// Replacement is LRU within a shard — an approximation of global LRU whose
// error vanishes as documents spread uniformly over shards. Shard count is
// clamped so every cacheable document fits any single shard's budget;
// small caches therefore degenerate to one shard and exact global LRU.
package lru

import (
	"container/list"
	"errors"
	"hash/maphash"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxObjectSize is the paper's cacheability limit: 250 KB.
const DefaultMaxObjectSize = 250 * 1024

// Entry is one cached document.
type Entry struct {
	Key     string // document URL
	Size    int64  // body size in bytes
	Version int64  // last-modified timestamp or content fingerprint; a
	// mismatch on a later request is a staleness signal (the
	// paper counts such hits as misses / remote stale hits)

	// Body optionally carries the document payload, so a caller serving
	// real documents (the HTTP proxy) needs no side table keyed by the
	// same string — one lock and one lookup per hit, and eviction drops
	// entry and payload atomically. The cache never reads it; Size is the
	// accounting truth regardless of len(Body).
	Body []byte
}

// Event describes why an entry left or entered the cache, for observers.
type Event int

// Eviction causes reported to the OnEvict callback.
const (
	EvictCapacity Event = iota // displaced by LRU replacement
	EvictRemoved               // explicitly removed (e.g. consistency purge)
	EvictUpdated               // replaced by a new version of the same key
)

// Config customizes a Cache.
type Config struct {
	// Capacity is the cache's byte budget. NewCache requires it positive;
	// the deprecated positional constructors fill it in.
	Capacity int64
	// Shards requests a stripe count (rounded up to a power of two;
	// 0: derived from runtime.GOMAXPROCS). The effective count is clamped
	// so every cacheable document fits one shard's budget — tiny caches
	// always get exactly one shard and exact global LRU order.
	Shards int
	// MaxObjectSize rejects documents larger than this many bytes
	// (DefaultMaxObjectSize when 0; negative disables the limit).
	MaxObjectSize int64
	// OnInsert, if non-nil, observes every insertion of a key not already
	// cached. Version-only refreshes of a cached key do not fire it (the
	// directory membership — what cache summaries track — is unchanged);
	// they fire OnEvict with EvictUpdated instead.
	OnInsert func(Entry)
	// OnEvict, if non-nil, observes every departure with its cause.
	OnEvict func(Entry, Event)
	// OpTiming, if non-nil, observes the duration of every Get (op OpGet)
	// and every stored Put (op OpInsert) — the perfwatch stage-timing
	// hook. Nil (the default) leaves the hot path untouched: the timing
	// branch costs one predictable nil check and zero allocations.
	OpTiming func(op string, d time.Duration)
}

// Op names reported to Config.OpTiming.
const (
	OpGet    = "get"
	OpInsert = "insert"
)

// ErrBadCapacity reports a non-positive cache capacity.
var ErrBadCapacity = errors.New("lru: capacity must be positive")

// node is a cached entry plus its global recency stamp. Stamps come from
// one atomic clock shared by all shards, so merging shard lists by stamp
// reconstructs a global most-recently-used order for Keys and Entries.
type node struct {
	e     Entry
	stamp uint64
}

// shard is one stripe: a private byte budget, recency list and index, plus
// its slice of the lifetime counters. The counters are plain integers
// mutated under mu — the lock is already held on every path that touches
// them, so they cost nothing on the hot path; Stats and Counters sum
// across shards.
type shard struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses                     uint64
	evCapacity, evRemoved, evUpdated uint64

	// contended counts per-key operations that found the shard lock held
	// and had to block. It is atomic because the count is taken before the
	// lock is acquired; everything else above stays lock-guarded.
	contended atomic.Uint64
}

// lockSlow is the contended half of the per-key locking idiom
//
//	if !s.mu.TryLock() {
//		s.lockSlow()
//	}
//
// open-coded at every call site so the uncontended path is exactly one
// inlined CAS (a wrapper method exceeds the inlining budget and would tax
// every operation with a call frame); only acquisitions that actually
// found the lock held pay this call and the extra atomic increment.
//
//go:noinline
func (s *shard) lockSlow() {
	s.contended.Add(1)
	s.mu.Lock()
}

// Cache is a byte-budget LRU cache of documents. It is safe for concurrent
// use; operations on keys hashing to different shards proceed in parallel.
type Cache struct {
	capacity int64
	maxObj   int64
	shards   []shard
	mask     uint64
	seed     maphash.Seed
	clock    atomic.Uint64 // recency stamps; see node
	onInsert func(Entry)
	onEvict  func(Entry, Event)
	timing   func(op string, d time.Duration)
}

// shardCount resolves the effective stripe count: the requested (or
// GOMAXPROCS-derived) count rounded up to a power of two, clamped down to
// the largest power of two for which every shard's budget still holds the
// largest cacheable document.
func shardCount(requested int, capacity, effMaxObj int64) int {
	n := requested
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	n = 1 << bits.Len(uint(n-1)) // round up to power of two (1 stays 1)
	maxShards := 1
	if effMaxObj > 0 {
		if m := capacity / effMaxObj; m >= 1 {
			maxShards = 1 << (bits.Len(uint(m)) - 1) // round down to power of two
		}
	}
	if n > maxShards {
		n = maxShards
	}
	return n
}

// NewCache creates a cache from cfg. Config.Capacity must be positive.
func NewCache(cfg Config) (*Cache, error) {
	if cfg.Capacity <= 0 {
		return nil, ErrBadCapacity
	}
	maxObj := cfg.MaxObjectSize
	if maxObj == 0 {
		maxObj = DefaultMaxObjectSize
	}
	// The largest document Cacheable admits: bounded by capacity always,
	// and by maxObj when the limit is enabled and tighter.
	effMaxObj := cfg.Capacity
	if maxObj > 0 && maxObj < effMaxObj {
		effMaxObj = maxObj
	}
	n := shardCount(cfg.Shards, cfg.Capacity, effMaxObj)
	c := &Cache{
		capacity: cfg.Capacity,
		maxObj:   maxObj,
		shards:   make([]shard, n),
		mask:     uint64(n - 1),
		seed:     maphash.MakeSeed(),
		onInsert: cfg.OnInsert,
		onEvict:  cfg.OnEvict,
		timing:   cfg.OpTiming,
	}
	base, rem := cfg.Capacity/int64(n), cfg.Capacity%int64(n)
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = base
		if int64(i) < rem {
			s.capacity++
		}
		s.ll = list.New()
		s.items = make(map[string]*list.Element)
	}
	return c, nil
}

// MustNewCache is NewCache, panicking on error.
func MustNewCache(cfg Config) *Cache {
	c, err := NewCache(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Capacity returns the byte budget.
func (c *Cache) Capacity() int64 { return c.capacity }

// MaxObjectSize returns the per-document cacheability limit (<0: none).
func (c *Cache) MaxObjectSize() int64 { return c.maxObj }

// Shards returns the effective stripe count.
func (c *Cache) Shards() int { return len(c.shards) }

// shardFor maps a key to its stripe. maphash uses the hardware-accelerated
// runtime string hash, so the lookup costs a few ns rather than a per-byte
// FNV loop; a single-shard cache skips hashing entirely, keeping the
// degenerate (exact global LRU) configuration as cheap as the pre-sharding
// code.
func (c *Cache) shardFor(key string) *shard {
	if c.mask == 0 {
		return &c.shards[0]
	}
	return &c.shards[maphash.String(c.seed, key)&c.mask]
}

// tick advances the recency clock.
func (c *Cache) tick() uint64 { return c.clock.Add(1) }

// Len returns the number of cached documents.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the bytes currently cached.
func (c *Cache) Bytes() int64 {
	var b int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		b += s.bytes
		s.mu.Unlock()
	}
	return b
}

// Cacheable reports whether a document of the given size may be stored.
func (c *Cache) Cacheable(size int64) bool {
	if size < 0 {
		return false
	}
	if c.maxObj >= 0 && size > c.maxObj {
		return false
	}
	return size <= c.capacity
}

// Get returns the entry for key and promotes it to most recently used.
// The second result reports presence; it does not imply freshness — compare
// Entry.Version against the request's expected version for that.
func (c *Cache) Get(key string) (Entry, bool) {
	if c.timing != nil {
		// Conditional open-coded defer: when timing is off this costs one
		// branch, not an extra call frame around the hot path.
		start := time.Now()
		defer func() { c.timing(OpGet, time.Since(start)) }()
	}
	s := c.shardFor(key)
	if !s.mu.TryLock() {
		s.lockSlow()
	}
	el, ok := s.items[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return Entry{}, false
	}
	nd := el.Value.(*node)
	if c.mask != 0 && nd.stamp != c.clock.Load() {
		// Holding the newest stamp means this node is already the global
		// MRU; re-touching it cannot change the merged order, so the
		// atomic read-modify-write is skipped — the common case when one
		// hot document absorbs a run of hits.
		nd.stamp = c.tick()
	}
	s.ll.MoveToFront(el)
	e := nd.e
	s.hits++
	s.mu.Unlock()
	return e, true
}

// Peek returns the entry without promoting it and without touching hit
// accounting. Summaries and tests use this.
func (c *Cache) Peek(key string) (Entry, bool) {
	s := c.shardFor(key)
	if !s.mu.TryLock() {
		s.lockSlow()
	}
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return Entry{}, false
	}
	return el.Value.(*node).e, true
}

// Contains reports presence without promotion or accounting.
func (c *Cache) Contains(key string) bool {
	_, ok := c.Peek(key)
	return ok
}

// Touch promotes key to most recently used without reading it, the
// operation single-copy sharing performs on the owning proxy when a peer
// serves a remote hit. It reports whether the key was present.
func (c *Cache) Touch(key string) bool {
	s := c.shardFor(key)
	if !s.mu.TryLock() {
		s.lockSlow()
	}
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return false
	}
	nd := el.Value.(*node)
	if c.mask != 0 && nd.stamp != c.clock.Load() {
		nd.stamp = c.tick() // see Get: global-MRU re-touches skip the RMW
	}
	s.ll.MoveToFront(el)
	return true
}

// event is a deferred callback notification; callbacks fire after the
// shard lock is released so they may do slow work (network sends) or
// re-enter the cache without deadlocking.
type event struct {
	entry Entry
	evict bool
	why   Event
}

func (c *Cache) fire(evs []event) {
	for _, ev := range evs {
		if ev.evict {
			if c.onEvict != nil {
				c.onEvict(ev.entry, ev.why)
			}
		} else if c.onInsert != nil {
			c.onInsert(ev.entry)
		}
	}
}

// Put inserts or updates a document, evicting LRU entries as needed to fit.
// It reports whether the document was stored; uncacheable documents (too
// large) are rejected with stored == false and leave the cache unchanged.
func (c *Cache) Put(e Entry) (stored bool) {
	if !c.Cacheable(e.Size) {
		return false
	}
	if c.timing != nil {
		start := time.Now()
		defer func() { c.timing(OpInsert, time.Since(start)) }()
	}
	s := c.shardFor(e.Key)
	var evs []event
	if !s.mu.TryLock() {
		s.lockSlow()
	}
	if el, ok := s.items[e.Key]; ok {
		nd := el.Value.(*node)
		old := nd.e
		s.bytes += e.Size - old.Size
		nd.e = e
		if c.mask != 0 {
			nd.stamp = c.tick()
		}
		s.ll.MoveToFront(el)
		if old.Version != e.Version {
			s.evUpdated++
			evs = append(evs, event{entry: old, evict: true, why: EvictUpdated})
		}
		evs = c.evictOverflowLocked(s, evs)
		s.mu.Unlock()
		c.fire(evs)
		return true
	}
	s.bytes += e.Size
	nd := &node{e: e}
	if c.mask != 0 {
		nd.stamp = c.tick()
	}
	s.items[e.Key] = s.ll.PushFront(nd)
	evs = append(evs, event{entry: e})
	evs = c.evictOverflowLocked(s, evs)
	s.mu.Unlock()
	c.fire(evs)
	return true
}

// Remove deletes key, reporting whether it was present.
func (c *Cache) Remove(key string) bool {
	s := c.shardFor(key)
	if !s.mu.TryLock() {
		s.lockSlow()
	}
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		return false
	}
	evs := c.removeElementLocked(s, el, EvictRemoved, nil)
	s.mu.Unlock()
	c.fire(evs)
	return true
}

func (c *Cache) evictOverflowLocked(s *shard, evs []event) []event {
	for s.bytes > s.capacity {
		back := s.ll.Back()
		if back == nil {
			return evs
		}
		evs = c.removeElementLocked(s, back, EvictCapacity, evs)
	}
	return evs
}

func (c *Cache) removeElementLocked(s *shard, el *list.Element, why Event, evs []event) []event {
	e := el.Value.(*node).e
	s.ll.Remove(el)
	delete(s.items, e.Key)
	s.bytes -= e.Size
	switch why {
	case EvictCapacity:
		s.evCapacity++
	case EvictRemoved:
		s.evRemoved++
	}
	return append(evs, event{entry: e, evict: true, why: why})
}

// snapshot collects every shard's nodes (entry + recency stamp) and sorts
// them most recently used first using the global clock. A single-shard
// cache skips stamping entirely (its list order is the global order), so
// its walk is returned as-is.
func (c *Cache) snapshot() []node {
	out := make([]node, 0, 64)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			out = append(out, *el.Value.(*node))
		}
		s.mu.Unlock()
	}
	if c.mask != 0 {
		sort.Slice(out, func(i, j int) bool { return out[i].stamp > out[j].stamp })
	}
	return out
}

// Keys returns all cached keys from most to least recently used.
func (c *Cache) Keys() []string {
	nodes := c.snapshot()
	out := make([]string, len(nodes))
	for i, nd := range nodes {
		out[i] = nd.e.Key
	}
	return out
}

// Entries returns all cached entries from most to least recently used.
func (c *Cache) Entries() []Entry {
	nodes := c.snapshot()
	out := make([]Entry, len(nodes))
	for i, nd := range nodes {
		out[i] = nd.e
	}
	return out
}

// Restore bulk-loads entries captured by Entries on a previous run,
// given most-recently-used first — the warm-restart boot path. It fires
// no callbacks (recovery reconciles the directory itself) and never
// evicts: when the snapshot does not fit the current geometry (capacity,
// shard count or object-size limit changed since it was taken), the
// least recently used entries are the ones dropped, and their keys are
// returned so the caller can reconcile the restored directory. Keys
// already present are left untouched and count as stored.
func (c *Cache) Restore(entries []Entry) (stored int, dropped []string) {
	// Admission pass, MRU first so recency wins budget contention: plan
	// per-shard byte usage without mutating anything.
	planned := make([]int64, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		planned[i] = s.bytes
		s.mu.Unlock()
	}
	shardIdx := func(key string) int {
		if c.mask == 0 {
			return 0
		}
		return int(maphash.String(c.seed, key) & c.mask)
	}
	accepted := make([]Entry, 0, len(entries))
	for _, e := range entries {
		i := shardIdx(e.Key)
		if !c.Cacheable(e.Size) || planned[i]+e.Size > c.shards[i].capacity {
			dropped = append(dropped, e.Key)
			continue
		}
		planned[i] += e.Size
		accepted = append(accepted, e)
	}
	// Insertion pass, LRU first: each PushFront with a fresh stamp lands
	// the entry above its older siblings, reproducing both the per-shard
	// list order and the merged global recency order.
	for i := len(accepted) - 1; i >= 0; i-- {
		e := accepted[i]
		s := &c.shards[shardIdx(e.Key)]
		if !s.mu.TryLock() {
			s.lockSlow()
		}
		if _, ok := s.items[e.Key]; ok {
			s.mu.Unlock()
			stored++ // already cached: present is what Restore promises
			continue
		}
		if s.bytes+e.Size > s.capacity {
			// A concurrent writer consumed the planned budget; shed the
			// entry rather than evicting what it stored.
			s.mu.Unlock()
			dropped = append(dropped, e.Key)
			continue
		}
		s.bytes += e.Size
		nd := &node{e: e}
		if c.mask != 0 {
			nd.stamp = c.tick()
		}
		s.items[e.Key] = s.ll.PushFront(nd)
		s.mu.Unlock()
		stored++
	}
	return stored, dropped
}

// Stats returns lifetime (hits, misses) counted by Get.
func (c *Cache) Stats() (hits, misses uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// Counters is a snapshot of the cache's lifetime activity.
type Counters struct {
	Hits, Misses uint64
	// EvictedCapacity counts LRU displacements, Removed explicit
	// removals (consistency purges), Updated version replacements —
	// the staleness invalidations of the paper's modified-document
	// accounting.
	EvictedCapacity, Removed, Updated uint64
	// LockContentions counts per-key operations that found their shard
	// lock held — the contention signal behind the ROADMAP hot-path
	// reclaim item.
	LockContentions uint64
}

// Counters snapshots all lifetime counters at once.
func (c *Cache) Counters() Counters {
	var out Counters
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.EvictedCapacity += s.evCapacity
		out.Removed += s.evRemoved
		out.Updated += s.evUpdated
		s.mu.Unlock()
		out.LockContentions += s.contended.Load()
	}
	return out
}

// ShardStats describes one stripe's occupancy and activity — the
// distribution view behind the per-shard gauges at /metrics. Uneven
// Entries/Bytes across shards means the key hash is clumping; a high
// LockContentions on one shard means a hot key set serializes there.
type ShardStats struct {
	Shard           int
	Entries         int
	Bytes, Capacity int64
	Hits, Misses    uint64
	LockContentions uint64
}

// ShardStat snapshots one stripe (zero value for an out-of-range index).
func (c *Cache) ShardStat(i int) ShardStats {
	if i < 0 || i >= len(c.shards) {
		return ShardStats{}
	}
	s := &c.shards[i]
	s.mu.Lock()
	out := ShardStats{
		Shard:    i,
		Entries:  s.ll.Len(),
		Bytes:    s.bytes,
		Capacity: s.capacity,
		Hits:     s.hits,
		Misses:   s.misses,
	}
	s.mu.Unlock()
	out.LockContentions = s.contended.Load()
	return out
}

// ShardStats snapshots every stripe. Shards are snapshotted one at a time;
// the view is per-shard consistent, not globally atomic.
func (c *Cache) ShardStats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i := range c.shards {
		out[i] = c.ShardStat(i)
	}
	return out
}

// ClockTicks returns the number of advances of the global recency clock —
// every tick is one atomic.Add on a cache line shared by all shards, so
// the tick rate bounds how hard the stamp counter can contend.
func (c *Cache) ClockTicks() uint64 { return c.clock.Load() }

// Clear empties the cache without firing eviction callbacks.
func (c *Cache) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		s.items = make(map[string]*list.Element)
		s.bytes = 0
		s.mu.Unlock()
	}
}

package summarycache_test

import (
	"context"
	"testing"
	"time"

	"summarycache"
)

// The facade must expose a working end-to-end protocol path: two nodes,
// directory summaries, replication, and lookup — all through the public
// aliases.
func TestPublicAPIEndToEnd(t *testing.T) {
	docs := map[string]bool{}
	a, err := summarycache.NewNode(summarycache.NodeConfig{
		ListenAddr:        "127.0.0.1:0",
		Directory:         summarycache.DirectoryConfig{ExpectedDocs: 100},
		HasDocument:       func(u string) bool { return docs[u] },
		MinFlipsToPublish: 1,
		QueryTimeout:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := summarycache.NewNode(summarycache.NodeConfig{
		ListenAddr:        "127.0.0.1:0",
		Directory:         summarycache.DirectoryConfig{ExpectedDocs: 100},
		HasDocument:       func(string) bool { return false },
		MinFlipsToPublish: 1,
		QueryTimeout:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(a.Addr()); err != nil {
		t.Fatal(err)
	}

	const url = "http://public-api/doc"
	docs[url] = true
	a.HandleInsert(url)
	a.PublishNow()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(b.PeerSummaries().Candidates(url)) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	hit, _, err := b.Lookup(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if hit == nil || hit.String() != a.Addr().String() {
		t.Fatalf("lookup through public API: hit=%v", hit)
	}
}

func TestPublicAPIFilters(t *testing.T) {
	f, err := summarycache.NewFilter(1024, summarycache.DefaultHashSpec)
	if err != nil {
		t.Fatal(err)
	}
	f.Add("key")
	if !f.Test("key") {
		t.Fatal("filter through facade broken")
	}
	c, err := summarycache.NewCountingFilter(1024, 4, summarycache.DefaultHashSpec)
	if err != nil {
		t.Fatal(err)
	}
	var flips []summarycache.Flip
	flips = c.Add("key", flips)
	if len(flips) == 0 {
		t.Fatal("counting filter through facade broken")
	}
	if summarycache.OptimalK(16<<20, 1<<20) != 11 {
		t.Fatal("math through facade broken")
	}
	if p := summarycache.FalsePositiveRate(8<<20, 1<<20, 4); p < 0.02 || p > 0.03 {
		t.Fatalf("fp rate through facade: %v", p)
	}
}

func TestPublicAPICacheAndRecommend(t *testing.T) {
	cache, err := summarycache.NewCache(summarycache.CacheConfig{Capacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(summarycache.CacheEntry{Key: "k", Size: 100})
	if !cache.Contains("k") {
		t.Fatal("cache through facade broken")
	}
	rec, err := summarycache.Recommend(8<<30, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SummaryBytesPerPeer != 2<<20 {
		t.Fatalf("recommendation through facade: %+v", rec)
	}
}

func TestPublicAPIWire(t *testing.T) {
	m := summarycache.ICPMessage{}
	_ = m
	if _, err := summarycache.ParseICP([]byte{1, 2}); err == nil {
		t.Fatal("parse accepted garbage")
	}
}

package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"

	"summarycache/internal/hashing"
)

// Counting-filter state serialization: the snapshot half of warm
// restarts. The packed counter words are persisted verbatim, so a
// restored filter is bit-for-bit the captured one — including saturated
// counters, which by design never decrement and therefore must survive a
// restart (rebuilding from keys would silently forget saturation).
//
// Layout (all integers little-endian / uvarint):
//
//	magic "scF1"
//	uvarint m, cbits, FunctionNum, FunctionBits, n, saturations
//	len(counters) × 8 bytes of packed counter words
//
// The geometry fields are validated on restore: a filter sized or hashed
// differently cannot take these words (callers fall back to rebuilding
// from the restored key set instead).

// cfStateMagic brands a serialized counting-filter state.
const cfStateMagic = "scF1"

// ErrStateMismatch reports a state blob whose geometry (size, counter
// width, or hash spec) does not match the receiving filter.
var ErrStateMismatch = errors.New("bloom: state geometry mismatch")

// ErrStateCorrupt reports a state blob that does not parse.
var ErrStateCorrupt = errors.New("bloom: state corrupt")

// StateSnapshot serializes the filter's counter array and accounting for
// persistence. Under concurrent writers the words are captured one
// atomic load at a time — a weakly consistent snapshot, which the warm
// restart design tolerates the same way BitFilter does: document-level
// divergence is repaired by journal replay and the summary protocol
// tolerates per-bit slop by construction.
func (c *CountingFilter) StateSnapshot() []byte {
	spec := c.family.Spec()
	out := make([]byte, 0, len(cfStateMagic)+6*binary.MaxVarintLen64+len(c.counters)*8)
	out = append(out, cfStateMagic...)
	out = binary.AppendUvarint(out, c.m)
	out = binary.AppendUvarint(out, uint64(c.cbits))
	out = binary.AppendUvarint(out, uint64(spec.FunctionNum))
	out = binary.AppendUvarint(out, uint64(spec.FunctionBits))
	out = binary.AppendUvarint(out, c.Entries())
	out = binary.AppendUvarint(out, c.saturations.Load())
	for i := range c.counters {
		out = binary.LittleEndian.AppendUint64(out, c.counters[i].Load())
	}
	return out
}

// RestoreState loads a StateSnapshot blob into the filter, replacing its
// contents. The blob's geometry must match the filter's exactly
// (ErrStateMismatch otherwise). OnesCount is recomputed from the words
// rather than trusted from the blob; any journaled flips are discarded,
// as a restored node re-announces full state anyway.
func (c *CountingFilter) RestoreState(data []byte) error {
	if len(data) < len(cfStateMagic) || string(data[:len(cfStateMagic)]) != cfStateMagic {
		return fmt.Errorf("%w: bad magic", ErrStateCorrupt)
	}
	rest := data[len(cfStateMagic):]
	var hdr [6]uint64
	for i := range hdr {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("%w: truncated header", ErrStateCorrupt)
		}
		hdr[i] = v
		rest = rest[n:]
	}
	m, cbits, fnum, fbits, entries, sat := hdr[0], hdr[1], hdr[2], hdr[3], hdr[4], hdr[5]
	spec := c.family.Spec()
	if m != c.m || uint(cbits) != c.cbits ||
		spec != (hashing.Spec{FunctionNum: int(fnum), FunctionBits: int(fbits)}) {
		return fmt.Errorf("%w: blob m=%d cbits=%d k=%d/%d vs filter %s",
			ErrStateMismatch, m, cbits, fnum, fbits, c)
	}
	if len(rest) != len(c.counters)*8 {
		return fmt.Errorf("%w: %d counter bytes, want %d", ErrStateCorrupt, len(rest), len(c.counters)*8)
	}
	for s := range c.stripes {
		c.stripes[s].mu.Lock()
	}
	var ones int64
	for i := range c.counters {
		c.counters[i].Store(binary.LittleEndian.Uint64(rest[i*8:]))
	}
	for i := uint64(0); i < c.m; i++ {
		if c.get(i) != 0 {
			ones++
		}
	}
	c.ones.Store(ones)
	c.n.Store(int64(entries))
	c.saturations.Store(sat)
	for s := range c.stripes {
		c.pending.Add(-int64(len(c.stripes[s].journal)))
		c.stripes[s].journal = nil
	}
	for s := len(c.stripes) - 1; s >= 0; s-- {
		c.stripes[s].mu.Unlock()
	}
	return nil
}

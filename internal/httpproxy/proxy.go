// Package httpproxy implements the caching Web proxy of the paper's
// prototype experiments: an HTTP forward proxy with an LRU document cache
// that can cooperate with sibling proxies in one of three modes — no
// cooperation (the paper's "no-ICP" baseline), classic ICP (query every
// sibling on every miss), or summary-cache enhanced ICP (probe the local
// replicas of sibling summaries and query only promising siblings). It is
// the Go analog of the paper's modified Squid.
package httpproxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/icp"
	"summarycache/internal/lru"
)

// Mode selects the cooperation protocol.
type Mode int

// The three configurations of Tables II, IV and V.
const (
	// ModeNone: proxies do not cooperate (the "no-ICP" rows).
	ModeNone Mode = iota
	// ModeICP: classic ICP — multicast a query to every sibling on every
	// local miss (the "ICP" rows).
	ModeICP
	// ModeSCICP: summary-cache enhanced ICP (the "SC-ICP" rows).
	ModeSCICP
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "no-ICP"
	case ModeICP:
		return "ICP"
	case ModeSCICP:
		return "SC-ICP"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// CacheOnlyPath is the sibling-fetch endpoint: it serves a document from
// the cache without ever fetching on a miss, so sibling fetches cannot
// recurse (a sibling proxy "can not ask a sibling proxy to fetch a
// document from the server").
const CacheOnlyPath = "/__summarycache/cacheonly"

// ProxyPath is the explicit-form proxy endpoint for clients that do not
// speak absolute-form HTTP: GET /__summarycache/proxy?url=<target>.
const ProxyPath = "/__summarycache/proxy"

// Config parameterizes a Proxy.
type Config struct {
	// ListenAddr is the HTTP listen address (default "127.0.0.1:0").
	ListenAddr string
	// ICPAddr is the UDP listen address for ICP traffic (default
	// "127.0.0.1:0"; unused in ModeNone).
	ICPAddr string
	// Mode selects the cooperation protocol.
	Mode Mode
	// CacheBytes is the document-cache capacity (the paper's benchmark
	// gives each proxy 75 MB).
	CacheBytes int64
	// MaxObjectSize caps cacheable documents (0: the paper's 250 KB).
	MaxObjectSize int64
	// Summary configures the local directory summary (ModeSCICP).
	Summary core.DirectoryConfig
	// MinUpdateFlips forwards to core.NodeConfig.MinFlipsToPublish
	// (ModeSCICP): 0 keeps the prototype's fill-an-IP-packet batching.
	MinUpdateFlips int
	// ParentURL, when set, routes misses through a parent proxy's
	// ProxyPath endpoint instead of contacting origins directly — the
	// hierarchical configuration of the paper's §VIII ("a proxy ... can
	// ask a parent proxy to [fetch a document from the server]").
	ParentURL string
	// SingleCopy enables the paper's single-copy sharing scheme: a
	// document served by a sibling is NOT cached locally ("a proxy does
	// not cache documents fetched from another proxy"), conserving space
	// at the cost of repeated sibling fetches. Default (false) is the
	// ICP-style simple sharing the paper's prototype implements.
	SingleCopy bool
	// QueryTimeout bounds ICP query waits.
	QueryTimeout time.Duration
}

// Stats counts proxy activity.
type Stats struct {
	ClientRequests uint64
	LocalHits      uint64
	RemoteHits     uint64 // misses served from a sibling cache
	Misses         uint64 // served from the origin
	OriginFetches  uint64
	PeerFetches    uint64 // sibling cache-only fetches issued
	// HTTPMessages approximates the paper's TCP packet accounting at the
	// application level: every HTTP transaction is a request plus a
	// response.
	HTTPMessages uint64
	// UDP mirrors the paper's netstat UDP counters (zero in ModeNone).
	UDP icp.Stats
	// Node carries summary-protocol counters (ModeSCICP only).
	Node core.NodeStats
}

// Proxy is a running caching proxy.
type Proxy struct {
	cfg   Config
	cache *lru.Cache

	bodyMu sync.RWMutex
	bodies map[string][]byte

	node    *core.Node // ModeSCICP
	icpConn *icp.Conn  // ModeICP

	peerMu   sync.RWMutex
	icpPeers []*net.UDPAddr
	peerHTTP map[string]string // ICP addr string -> sibling HTTP base URL

	ln     net.Listener
	srv    *http.Server
	client *http.Client

	clientReqs, localHits, remoteHits, misses atomic.Uint64
	originFetches, peerFetches                atomic.Uint64
}

// Start launches a proxy.
func Start(cfg Config) (*Proxy, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.ICPAddr == "" {
		cfg.ICPAddr = "127.0.0.1:0"
	}
	if cfg.CacheBytes <= 0 {
		return nil, fmt.Errorf("httpproxy: CacheBytes must be positive, got %d", cfg.CacheBytes)
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = core.DefaultQueryTimeout
	}
	p := &Proxy{
		cfg:      cfg,
		bodies:   make(map[string][]byte),
		peerHTTP: make(map[string]string),
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     30 * time.Second,
			},
		},
	}
	cache, err := lru.New(cfg.CacheBytes, lru.Config{
		MaxObjectSize: cfg.MaxObjectSize,
		OnInsert:      p.onInsert,
		OnEvict:       p.onEvict,
	})
	if err != nil {
		return nil, err
	}
	p.cache = cache

	switch cfg.Mode {
	case ModeNone:
		// no protocol endpoint
	case ModeICP:
		conn, err := icp.Listen(cfg.ICPAddr, p.handleICP)
		if err != nil {
			return nil, err
		}
		p.icpConn = conn
		conn.Start()
	case ModeSCICP:
		node, err := core.NewNode(core.NodeConfig{
			ListenAddr:        cfg.ICPAddr,
			Directory:         cfg.Summary,
			HasDocument:       p.cache.Contains,
			MinFlipsToPublish: cfg.MinUpdateFlips,
			QueryTimeout:      cfg.QueryTimeout,
		})
		if err != nil {
			return nil, err
		}
		p.node = node
	default:
		return nil, fmt.Errorf("httpproxy: unknown mode %v", cfg.Mode)
	}

	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		p.closeProtocol()
		return nil, fmt.Errorf("httpproxy: listen %q: %w", cfg.ListenAddr, err)
	}
	p.ln = ln
	p.srv = &http.Server{Handler: p}
	go p.srv.Serve(ln)
	return p, nil
}

func (p *Proxy) closeProtocol() {
	if p.icpConn != nil {
		p.icpConn.Close()
	}
	if p.node != nil {
		p.node.Close()
	}
}

// Close shuts the proxy down.
func (p *Proxy) Close() error {
	err := p.srv.Close()
	p.closeProtocol()
	return err
}

// URL returns the proxy's HTTP base URL.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// ICPAddr returns the proxy's ICP endpoint (nil in ModeNone).
func (p *Proxy) ICPAddr() *net.UDPAddr {
	switch p.cfg.Mode {
	case ModeICP:
		return p.icpConn.Addr()
	case ModeSCICP:
		return p.node.Addr()
	}
	return nil
}

// Mode returns the cooperation mode.
func (p *Proxy) Mode() Mode { return p.cfg.Mode }

// AddPeer registers a sibling by its ICP endpoint and HTTP base URL.
func (p *Proxy) AddPeer(icpAddr *net.UDPAddr, httpURL string) error {
	if p.cfg.Mode == ModeNone {
		return errors.New("httpproxy: ModeNone proxies have no peers")
	}
	p.peerMu.Lock()
	p.icpPeers = append(p.icpPeers, icpAddr)
	p.peerHTTP[icpAddr.String()] = httpURL
	p.peerMu.Unlock()
	if p.cfg.Mode == ModeSCICP {
		return p.node.AddPeer(icpAddr)
	}
	return nil
}

// Stats snapshots the counters.
func (p *Proxy) Stats() Stats {
	s := Stats{
		ClientRequests: p.clientReqs.Load(),
		LocalHits:      p.localHits.Load(),
		RemoteHits:     p.remoteHits.Load(),
		Misses:         p.misses.Load(),
		OriginFetches:  p.originFetches.Load(),
		PeerFetches:    p.peerFetches.Load(),
	}
	s.HTTPMessages = 2 * (s.ClientRequests + s.OriginFetches + s.PeerFetches)
	switch p.cfg.Mode {
	case ModeICP:
		s.UDP = p.icpConn.Stats()
	case ModeSCICP:
		s.Node = p.node.Stats()
		s.UDP = s.Node.UDP
	}
	return s
}

// CacheLen returns the number of cached documents (tests/diagnostics).
func (p *Proxy) CacheLen() int { return p.cache.Len() }

// FlushSummary forces publication of pending summary deltas (ModeSCICP).
func (p *Proxy) FlushSummary() {
	if p.node != nil {
		p.node.PublishNow()
	}
}

// --- cache body bookkeeping ---

func (p *Proxy) onInsert(e lru.Entry) {
	if p.node != nil {
		p.node.HandleInsert(e.Key)
	}
}

func (p *Proxy) onEvict(e lru.Entry, ev lru.Event) {
	if ev == lru.EvictUpdated {
		return
	}
	p.bodyMu.Lock()
	delete(p.bodies, e.Key)
	p.bodyMu.Unlock()
	if p.node != nil {
		p.node.HandleEvict(e.Key)
	}
}

func (p *Proxy) cachedBody(key string) ([]byte, bool) {
	if _, ok := p.cache.Get(key); !ok {
		return nil, false
	}
	p.bodyMu.RLock()
	body, ok := p.bodies[key]
	p.bodyMu.RUnlock()
	return body, ok
}

func (p *Proxy) storeBody(key string, version int64, body []byte) {
	p.bodyMu.Lock()
	p.bodies[key] = body
	p.bodyMu.Unlock()
	if !p.cache.Put(lru.Entry{Key: key, Size: int64(len(body)), Version: version}) {
		// Uncacheable (too large): drop the body again.
		p.bodyMu.Lock()
		delete(p.bodies, key)
		p.bodyMu.Unlock()
	}
}

// --- ICP handling (ModeICP) ---

func (p *Proxy) handleICP(from *net.UDPAddr, m icp.Message) {
	if m.Op != icp.OpQuery {
		return
	}
	op := icp.OpMiss
	if p.cache.Contains(m.URL) {
		op = icp.OpHit
	}
	_ = p.icpConn.Send(from, icp.NewReply(op, m.ReqNum, m.URL))
}

// --- HTTP serving ---

// ServeHTTP implements http.Handler: absolute-form requests are proxied;
// ProxyPath?url= is the explicit form; CacheOnlyPath?url= serves siblings.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == CacheOnlyPath:
		p.serveCacheOnly(w, r)
	case r.URL.Path == ProxyPath:
		target := r.URL.Query().Get("url")
		if target == "" {
			http.Error(w, "missing url parameter", http.StatusBadRequest)
			return
		}
		p.serveProxy(w, r, target)
	case r.URL.IsAbs():
		p.serveProxy(w, r, r.URL.String())
	default:
		http.Error(w, "not a proxy request", http.StatusBadRequest)
	}
}

func (p *Proxy) serveCacheOnly(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("url")
	body, ok := p.cachedBody(key)
	if !ok {
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (p *Proxy) serveProxy(w http.ResponseWriter, r *http.Request, target string) {
	p.clientReqs.Add(1)
	if _, err := url.Parse(target); err != nil {
		http.Error(w, "bad target url", http.StatusBadRequest)
		return
	}

	if body, ok := p.cachedBody(target); ok {
		p.localHits.Add(1)
		writeDoc(w, body)
		return
	}

	// Local miss: try siblings per the cooperation mode.
	if body, ok := p.tryRemote(r.Context(), target); ok {
		p.remoteHits.Add(1)
		if !p.cfg.SingleCopy {
			p.storeBody(target, 0, body) // simple sharing: cache the remote copy
		}
		writeDoc(w, body)
		return
	}

	body, version, err := p.fetchOrigin(r.Context(), target)
	if err != nil {
		http.Error(w, "origin fetch failed: "+err.Error(), http.StatusBadGateway)
		return
	}
	p.misses.Add(1)
	p.storeBody(target, version, body)
	writeDoc(w, body)
}

func writeDoc(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// tryRemote resolves a local miss against the siblings. It returns the
// document when some sibling both claimed and delivered it.
func (p *Proxy) tryRemote(ctx context.Context, target string) ([]byte, bool) {
	switch p.cfg.Mode {
	case ModeICP:
		p.peerMu.RLock()
		peers := append([]*net.UDPAddr(nil), p.icpPeers...)
		p.peerMu.RUnlock()
		if len(peers) == 0 {
			return nil, false
		}
		qctx, cancel := context.WithTimeout(ctx, p.cfg.QueryTimeout)
		defer cancel()
		hit, from, err := p.icpConn.QueryAll(qctx, peers, target)
		if err != nil || !hit {
			return nil, false
		}
		return p.fetchPeer(ctx, from, target)
	case ModeSCICP:
		from, _, err := p.node.Lookup(ctx, target)
		if err != nil || from == nil {
			return nil, false
		}
		return p.fetchPeer(ctx, from, target)
	}
	return nil, false
}

func (p *Proxy) fetchPeer(ctx context.Context, peer *net.UDPAddr, target string) ([]byte, bool) {
	p.peerMu.RLock()
	base := p.peerHTTP[peer.String()]
	p.peerMu.RUnlock()
	if base == "" {
		return nil, false
	}
	p.peerFetches.Add(1)
	u := base + CacheOnlyPath + "?url=" + url.QueryEscape(target)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false // race: sibling evicted it (a false hit after all)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false
	}
	return body, true
}

func (p *Proxy) fetchOrigin(ctx context.Context, target string) (body []byte, version int64, err error) {
	p.originFetches.Add(1)
	fetchURL := target
	if p.cfg.ParentURL != "" {
		fetchURL = p.cfg.ParentURL + ProxyPath + "?url=" + url.QueryEscape(target)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fetchURL, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, 0, fmt.Errorf("origin status %d", resp.StatusCode)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if v := resp.Header.Get("X-Doc-Version"); v != "" {
		version, _ = strconv.ParseInt(v, 10, 64)
	}
	return body, version, nil
}

// Package persist implements warm restarts: a crash-consistent binary
// snapshot of a proxy's cache state — the LRU entries (keys, bodies,
// recency order), the local counting filter, and the per-peer replica
// filters — plus an append-only journal of cache mutations, so hot-path
// writes cost O(one record), never O(filter).
//
// On-disk layout (all files length+CRC framed via internal/delta):
//
//	snap-<gen>   full snapshot, terminated by an end frame whose absence
//	             marks a torn write (recovery falls back one generation)
//	jrnl-<gen>   mutations appended since snapshot <gen> was BEGUN
//
// A checkpoint first rotates the journal to generation g+1, then writes
// snap-<g+1> from live state. Records landing between the rotation and
// the capture therefore appear in BOTH snap-<g+1> and jrnl-<g+1> — the
// overlap window. Replay is idempotent against it: re-inserting a
// present key at the same version is a no-op, and evicting an absent
// key is a counted no-op (the counting filter's underflow guard makes
// the corresponding decrement saturate at zero).
//
// Recovery loads the newest snapshot that validates end-to-end, then
// replays every journal of that generation and newer, tolerating a torn
// or corrupt tail (the expected shape of a crash). The caller installs
// the result and re-announces a reset-flagged full DIRUPDATE so
// siblings converge bit-exactly on the restored state.
package persist

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"summarycache/internal/core"
	"summarycache/internal/delta"
	"summarycache/internal/lru"
)

// FsyncPolicy selects when journal appends reach stable storage. A
// SIGKILL alone never loses page-cache writes — fsync only matters for
// OS crashes and power loss — so the default trades a bounded window of
// those for hot-path latency.
type FsyncPolicy string

const (
	// FsyncAlways syncs the journal after every append: no loss window,
	// one fsync per cache mutation.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs dirty journal data on a background ticker
	// (Config.FsyncInterval); the default.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves journal durability to the OS writeback and the
	// syncs at rotation/close.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy validates a policy string from a flag.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	case "":
		return FsyncInterval, nil
	}
	return "", fmt.Errorf("persist: unknown fsync policy %q (want always|interval|never)", s)
}

// Config parameterizes a Store.
type Config struct {
	// Dir is the persistence directory, created if absent. Required.
	Dir string
	// Fsync is the journal durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync cadence under FsyncInterval
	// (default 1s).
	FsyncInterval time.Duration
	// SnapshotInterval is the cadence of periodic checkpoints; the store
	// itself never ticks — the owning proxy runs the loop — but the knob
	// rides here so one struct configures the whole subsystem. 0: only
	// the boot and shutdown checkpoints.
	SnapshotInterval time.Duration
	// Logger receives recovery and checkpoint events (nil: discarded).
	Logger *slog.Logger
}

// Stats counts the store's activity. Scrapes read it via CounterFunc, so
// the exposition and this snapshot can never disagree.
type Stats struct {
	Snapshots      uint64 // checkpoints completed
	SnapshotBytes  uint64 // bytes written across all snapshots
	SnapshotErrors uint64 // checkpoints that failed
	JournalRecords uint64 // records appended
	JournalBytes   uint64 // journal bytes written
	JournalFsyncs  uint64 // explicit journal syncs issued
	JournalErrors  uint64 // append/sync failures
}

// SnapshotData is one checkpoint's captured state.
type SnapshotData struct {
	// Entries is the cache content, most recently used first
	// (lru.Cache.Entries order), bodies included.
	Entries []lru.Entry
	// Directory is the local counting filter's serialized state
	// (core.Directory.StateSnapshot); nil when the proxy runs without a
	// summary directory.
	Directory []byte
	// Replicas are the peer summary replicas (PeerTable.ExportReplicas).
	Replicas []core.ReplicaState
}

// Store owns one persistence directory: the current journal handle and
// the checkpoint machinery.
type Store struct {
	cfg Config
	log *slog.Logger

	mu     sync.Mutex
	gen    uint64 // current journal generation
	jf     *os.File
	jbuf   []byte // reusable record-encoding scratch
	dirty  bool   // journal bytes written since the last sync
	closed bool

	snapshots, snapshotBytes, snapshotErrors atomic.Uint64
	journalRecords, journalBytes             atomic.Uint64
	journalFsyncs, journalErrors             atomic.Uint64

	recovered RecoveryStats

	stopTick chan struct{}
	tickDone chan struct{}
}

// Open prepares a store over cfg.Dir, creating it if needed, and scans
// existing generations. Call Recover before the first Checkpoint.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("persist: Config.Dir required")
	}
	if cfg.Fsync == "" {
		cfg.Fsync = FsyncInterval
	}
	if cfg.FsyncInterval <= 0 {
		cfg.FsyncInterval = time.Second
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Store{cfg: cfg, log: log}
	snaps, jrnls, err := s.scan()
	if err != nil {
		return nil, err
	}
	for _, g := range snaps {
		if g > s.gen {
			s.gen = g
		}
	}
	for _, g := range jrnls {
		if g > s.gen {
			s.gen = g
		}
	}
	if cfg.Fsync == FsyncInterval {
		s.stopTick = make(chan struct{})
		s.tickDone = make(chan struct{})
		go s.fsyncLoop()
	}
	return s, nil
}

// scan lists the snapshot and journal generations present on disk.
func (s *Store) scan() (snaps, jrnls []uint64, err error) {
	ents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	for _, de := range ents {
		name := de.Name()
		switch {
		case strings.HasPrefix(name, snapPrefix):
			if g, ok := parseGen(name, snapPrefix); ok {
				snaps = append(snaps, g)
			}
		case strings.HasPrefix(name, jrnlPrefix):
			if g, ok := parseGen(name, jrnlPrefix); ok {
				jrnls = append(jrnls, g)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(jrnls, func(i, j int) bool { return jrnls[i] < jrnls[j] })
	return snaps, jrnls, nil
}

const (
	snapPrefix = "snap-"
	jrnlPrefix = "jrnl-"
)

func genName(prefix string, gen uint64) string {
	return fmt.Sprintf("%s%016d", prefix, gen)
}

func parseGen(name, prefix string) (uint64, bool) {
	g, err := strconv.ParseUint(strings.TrimPrefix(name, prefix), 10, 64)
	return g, err == nil
}

func (s *Store) path(prefix string, gen uint64) string {
	return filepath.Join(s.cfg.Dir, genName(prefix, gen))
}

// AppendInsert journals a document entering the cache (or changing
// version in place). O(record): one framed append, no filter walk.
func (s *Store) AppendInsert(key string, size, version int64) error {
	return s.append(delta.JournalRecord{Op: delta.JournalInsert, Key: key, Size: size, Version: version})
}

// AppendEvict journals a document leaving the cache.
func (s *Store) AppendEvict(key string) error {
	return s.append(delta.JournalRecord{Op: delta.JournalEvict, Key: key})
}

func (s *Store) append(rec delta.JournalRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: store closed")
	}
	if err := s.ensureJournalLocked(); err != nil {
		s.journalErrors.Add(1)
		return err
	}
	s.jbuf = delta.AppendJournalRecord(s.jbuf[:0], rec)
	n, err := s.jf.Write(s.jbuf)
	if err != nil {
		s.journalErrors.Add(1)
		return fmt.Errorf("persist: journal append: %w", err)
	}
	s.journalRecords.Add(1)
	s.journalBytes.Add(uint64(n))
	s.dirty = true
	if s.cfg.Fsync == FsyncAlways {
		return s.syncJournalLocked()
	}
	return nil
}

// ensureJournalLocked opens the current generation's journal, writing
// its header frame if the file is new.
func (s *Store) ensureJournalLocked() error {
	if s.jf != nil {
		return nil
	}
	path := s.path(jrnlPrefix, s.gen)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: open journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // open failed midway; the stat error is the one to report
		return fmt.Errorf("persist: stat journal: %w", err)
	}
	if st.Size() == 0 {
		hdr := delta.AppendFrame(nil, journalHeader(s.gen))
		if _, err := f.Write(hdr); err != nil {
			_ = f.Close() // header write failed; report that error
			return fmt.Errorf("persist: journal header: %w", err)
		}
		s.journalBytes.Add(uint64(len(hdr)))
	}
	s.jf = f
	return nil
}

func (s *Store) syncJournalLocked() error {
	if s.jf == nil || !s.dirty {
		return nil
	}
	if err := s.jf.Sync(); err != nil {
		s.journalErrors.Add(1)
		return fmt.Errorf("persist: journal sync: %w", err)
	}
	s.dirty = false
	s.journalFsyncs.Add(1)
	return nil
}

// fsyncLoop is the FsyncInterval background syncer.
func (s *Store) fsyncLoop() {
	defer close(s.tickDone)
	t := time.NewTicker(s.cfg.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if err := s.syncJournalLocked(); err != nil {
				s.log.Warn("journal interval sync failed", "err", err)
			}
			s.mu.Unlock()
		case <-s.stopTick:
			return
		}
	}
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Snapshots:      s.snapshots.Load(),
		SnapshotBytes:  s.snapshotBytes.Load(),
		SnapshotErrors: s.snapshotErrors.Load(),
		JournalRecords: s.journalRecords.Load(),
		JournalBytes:   s.journalBytes.Load(),
		JournalFsyncs:  s.journalFsyncs.Load(),
		JournalErrors:  s.journalErrors.Load(),
	}
}

// Recovery returns the stats of the Recover call that opened this store
// (zero value if Recover has not run).
func (s *Store) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Close syncs and closes the journal. It does not checkpoint — callers
// that want a final snapshot (clean shutdown) call Checkpoint first.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.syncJournalLocked()
	if s.jf != nil {
		if cerr := s.jf.Close(); err == nil {
			err = cerr
		}
		s.jf = nil
	}
	s.mu.Unlock()
	if s.stopTick != nil {
		close(s.stopTick)
		<-s.tickDone
	}
	return err
}

// syncDir fsyncs the persistence directory so a rename is durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.cfg.Dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	// Some filesystems refuse directory fsync; the rename is still
	// ordered after the file's own sync, so degrade silently.
	if err != nil && errors.Is(err, fs.ErrInvalid) {
		return nil
	}
	return err
}

package core

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"summarycache/internal/icp"
)

// multicastAvailable probes whether multicast loopback actually works in
// this environment (containers and stripped-down network namespaces often
// lack it); tests skip rather than fail when it does not.
func multicastAvailable(t *testing.T, group string) bool {
	t.Helper()
	got := make(chan struct{}, 1)
	mg, err := icp.JoinMulticast(group, nil, func(*net.UDPAddr, icp.Message) {
		select {
		case got <- struct{}{}:
		default:
		}
	})
	if err != nil {
		t.Logf("multicast join failed: %v", err)
		return false
	}
	defer mg.Close()
	sender, err := icp.Listen("0.0.0.0:0", nil)
	if err != nil {
		return false
	}
	sender.Start()
	defer sender.Close()
	for i := 0; i < 5; i++ {
		if err := sender.Send(mg.Group(), icp.NewReply(icp.OpMiss, 1, "probe")); err != nil {
			t.Logf("multicast send failed: %v", err)
			return false
		}
		select {
		case <-got:
			return true
		case <-time.After(100 * time.Millisecond):
		}
	}
	return false
}

func TestJoinMulticastValidation(t *testing.T) {
	if _, err := icp.JoinMulticast("127.0.0.1:9999", nil, nil); err == nil {
		t.Error("accepted unicast address as group")
	}
	if _, err := icp.JoinMulticast("not-an-addr", nil, nil); err == nil {
		t.Error("accepted garbage address")
	}
}

// A multicast mesh: each update goes out once, yet every peer's replica
// converges — the paper's suggested optimization for update distribution.
func TestMulticastUpdateDistribution(t *testing.T) {
	const group = "239.255.77.78:48273"
	if !multicastAvailable(t, group) {
		t.Skip("multicast loopback unavailable in this environment")
	}
	const n = 3
	docs := make([]map[string]bool, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		i := i
		docs[i] = map[string]bool{}
		node, err := NewNode(NodeConfig{
			ListenAddr:        "0.0.0.0:0",
			Directory:         DirectoryConfig{ExpectedDocs: 500},
			HasDocument:       func(u string) bool { return docs[i][u] },
			MinFlipsToPublish: 1,
			MulticastGroup:    group,
			QueryTimeout:      2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
	}
	// Peers must still be registered for query routing (addresses), but
	// updates flow over the group.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nodes[i].mu.Lock()
				nodes[i].peerAddrs[nodes[j].Addr().String()] = nodes[j].Addr()
				nodes[i].mu.Unlock()
			}
		}
	}

	const url = "http://multicast/doc"
	docs[0][url] = true
	nodes[0].HandleInsert(url)
	nodes[0].PublishNow()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		ready := 0
		for i := 1; i < n; i++ {
			if len(nodes[i].PeerSummaries().Candidates(url)) > 0 {
				ready++
			}
		}
		if ready == n-1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 1; i < n; i++ {
		if len(nodes[i].PeerSummaries().Candidates(url)) == 0 {
			t.Fatalf("node %d never received the multicast update", i)
		}
	}

	// One update event → exactly one datagram sent (not N−1).
	if got := nodes[0].Stats().UpdatesSent; got != 1 {
		t.Fatalf("sender emitted %d update datagrams, want 1 (multicast)", got)
	}

	// The full lookup path still works over unicast queries.
	hit, _, err := nodes[1].Lookup(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if hit == nil || hit.Port != nodes[0].Addr().Port {
		t.Fatalf("lookup after multicast replication: hit=%v, want port %d",
			hit, nodes[0].Addr().Port)
	}

	// Senders must ignore their own loopbacked updates.
	if nodes[0].PeerSummaries().Len() != 0 {
		t.Fatal("sender absorbed its own multicast update as a peer")
	}
}

// Even without functioning multicast delivery, configuring a group must
// not break construction/teardown.
func TestMulticastConfigLifecycle(t *testing.T) {
	node, err := NewNode(NodeConfig{
		ListenAddr:     "127.0.0.1:0",
		Directory:      DirectoryConfig{ExpectedDocs: 10},
		HasDocument:    func(string) bool { return false },
		MulticastGroup: "239.255.77.79:48274",
	})
	if err != nil {
		t.Skipf("multicast join unavailable: %v", err)
	}
	for i := 0; i < 5; i++ {
		node.HandleInsert(fmt.Sprintf("http://x/%d", i))
	}
	node.PublishNow()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
}

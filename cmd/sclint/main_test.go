package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir switches the working directory and restores it on cleanup;
// moduleRoot resolves from the working directory, so every run() test
// must pin where it starts.
func chdir(t *testing.T, dir string) {
	t.Helper()
	prev, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatalf("chdir %s: %v", dir, err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(prev); err != nil {
			t.Fatalf("restore chdir %s: %v", prev, err)
		}
	})
}

// writeModule materialises a throwaway module for run() to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
	return root
}

// TestRunCleanModuleJSON pins the contract CI depends on: a clean tree
// exits 0 and -json renders an empty array, not null.
func TestRunCleanModuleJSON(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module tmpclean\n\ngo 1.22\n",
		"lib/lib.go": "package lib\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	chdir(t, root)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

// TestRunFindingsJSON checks exit code 1 and the stable JSON shape:
// one object per finding with fields in declaration order
// rule, file, line, col, message.
func TestRunFindingsJSON(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module tmpdirty\n\ngo 1.22\n",
		"internal/sim/sim.go": `package sim

import "time"

func Step() int64 { return time.Now().UnixNano() }
`,
	})
	chdir(t, root)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}

	var findings []struct {
		Rule    string `json:"rule"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(findings), stdout.String())
	}
	f := findings[0]
	if f.Rule != "determinism" || f.File != "internal/sim/sim.go" || f.Line != 5 || f.Col == 0 || f.Message == "" {
		t.Fatalf("finding = %+v", f)
	}

	// Key order is part of the schema (struct declaration order): diffs
	// of -json output must stay byte-stable across runs.
	out := stdout.String()
	last := -1
	for _, key := range []string{`"rule"`, `"file"`, `"line"`, `"col"`, `"message"`} {
		i := strings.Index(out, key)
		if i < 0 {
			t.Fatalf("key %s missing from output:\n%s", key, out)
		}
		if i < last {
			t.Fatalf("key %s out of order; want rule,file,line,col,message:\n%s", key, out)
		}
		last = i
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Fatalf("stderr = %q, want finding count summary", stderr.String())
	}
}

// TestRunUnknownRule exercises the usage-error path: exit 2 and a
// pointer at -list on stderr.
func TestRunUnknownRule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules", "no-such-rule"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown rule "no-such-rule"`) {
		t.Fatalf("stderr = %q, want unknown-rule message", stderr.String())
	}
}

// TestRunBadFlag: flag-parse failures are usage errors, exit 2.
func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestRunList checks the catalog includes the concurrency suite.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	for _, rule := range []string{"lock-order", "goroutine-lifecycle", "borrow-escape", "determinism", "atomic-mixing"} {
		if !strings.Contains(stdout.String(), rule) {
			t.Fatalf("-list output missing %s:\n%s", rule, stdout.String())
		}
	}
}

// Cachemesh: a live three-proxy summary-cache mesh on loopback. Three
// caching proxies peer via SC-ICP, a synthetic origin serves sized
// documents with injected latency, and a client demonstrates the paper's
// request flows: local miss → origin; sibling's local hit replicated via
// summary → one targeted query → remote hit; document nobody has →
// summaries rule everyone out → zero queries.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"time"

	sc "summarycache"
)

func main() {
	org, err := sc.StartOrigin(sc.OriginConfig{Latency: 100 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer org.Close()
	fmt.Println("origin server:", org.URL(), "(100ms latency per fetch)")

	var proxies []*sc.Proxy
	for i := 0; i < 3; i++ {
		p, err := sc.StartProxy(sc.ProxyConfig{
			Mode:       sc.ProxyModeSCICP,
			CacheBytes: 64 << 20,
			Summary: sc.DirectoryConfig{
				ExpectedDocs: 8000, LoadFactor: 16, UpdateThreshold: 0.01,
			},
			MinUpdateFlips: 1, // demo: propagate summaries immediately
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		proxies = append(proxies, p)
		fmt.Printf("proxy %d: HTTP %s  ICP %v\n", i, p.URL(), p.ICPAddr())
	}
	for i, p := range proxies {
		for j, q := range proxies {
			if i != j {
				if err := p.AddPeer(q.ICPAddr(), q.URL()); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	get := func(p *sc.Proxy, target string) time.Duration {
		start := time.Now()
		resp, err := http.Get(p.URL() + sc.ProxyPath + "?url=" + url.QueryEscape(target))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return time.Since(start)
	}

	doc := sc.DocURL(org.URL(), "popular/story.html", 16384, 0)

	fmt.Println("\n1. proxy 0 fetches the document (cold miss, pays origin latency):")
	fmt.Printf("   latency %v\n", get(proxies[0], doc).Round(time.Millisecond))

	fmt.Println("2. proxy 0 again (local hit, no latency):")
	fmt.Printf("   latency %v\n", get(proxies[0], doc).Round(time.Millisecond))

	// Give the summary update a moment to replicate.
	time.Sleep(150 * time.Millisecond)

	fmt.Println("3. proxy 1 requests it: summary points at proxy 0 → remote hit, no origin fetch:")
	fmt.Printf("   latency %v\n", get(proxies[1], doc).Round(time.Millisecond))

	fmt.Println("4. a document nobody has: summaries rule all peers out → zero ICP queries:")
	before := proxies[2].Stats().Node.QueriesSent
	get(proxies[2], sc.DocURL(org.URL(), "obscure/page.html", 2048, 0))
	fmt.Printf("   ICP queries sent by proxy 2: %d\n", proxies[2].Stats().Node.QueriesSent-before)

	fmt.Println("\nfinal accounting:")
	for i, p := range proxies {
		st := p.Stats()
		fmt.Printf("  proxy %d: reqs=%d localHits=%d remoteHits=%d misses=%d | ICP queries=%d updates=%d\n",
			i, st.ClientRequests, st.LocalHits, st.RemoteHits, st.Misses,
			st.Node.QueriesSent, st.Node.UpdatesSent)
	}
	fmt.Printf("  origin fetches: %d (three user requests for the popular doc cost ONE)\n",
		org.Stats().Requests-1)
}

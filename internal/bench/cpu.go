package bench

import (
	"os"
	"strconv"
	"strings"
	"time"
)

// CPUSample is a snapshot of this process's accumulated CPU time, the
// analog of the user/system CPU columns the paper reads from OS process
// accounting for the Squid process. Because the benchmark runs proxies,
// clients and origin in one process, mode-to-mode *differences* isolate
// protocol overhead (the client and origin work is identical across
// modes).
type CPUSample struct {
	User   time.Duration
	System time.Duration
	Valid  bool // false when /proc is unavailable (non-Linux)
}

// linuxClockTick is the kernel USER_HZ exposed to userspace; it has been
// fixed at 100 on every mainstream Linux ABI.
const linuxClockTick = 100

// ReadCPU samples the process CPU counters from /proc/self/stat (fields 14
// and 15: utime, stime in clock ticks).
func ReadCPU() CPUSample {
	b, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return CPUSample{}
	}
	return parseProcStat(string(b))
}

// parseProcStat extracts utime/stime from a /proc/<pid>/stat line. The
// comm field (2nd) is parenthesized and may itself contain spaces and
// parentheses, so parsing starts after the LAST closing parenthesis.
func parseProcStat(s string) CPUSample {
	i := strings.LastIndexByte(s, ')')
	if i < 0 || i+2 > len(s) {
		return CPUSample{}
	}
	fields := strings.Fields(s[i+2:])
	// fields[0] is field 3 (state); utime is field 14 → index 11.
	if len(fields) < 13 {
		return CPUSample{}
	}
	utime, err1 := strconv.ParseUint(fields[11], 10, 64)
	stime, err2 := strconv.ParseUint(fields[12], 10, 64)
	if err1 != nil || err2 != nil {
		return CPUSample{}
	}
	return CPUSample{
		User:   time.Duration(utime) * time.Second / linuxClockTick,
		System: time.Duration(stime) * time.Second / linuxClockTick,
		Valid:  true,
	}
}

// Sub returns the CPU consumed between two samples.
func (c CPUSample) Sub(start CPUSample) CPUSample {
	return CPUSample{
		User:   c.User - start.User,
		System: c.System - start.System,
		Valid:  c.Valid && start.Valid,
	}
}
